/**
 * @file
 * scan_server: the scan job service as a headless executable. Reads
 * vlq-scan-job/1 request lines (file, FIFO, or stdin), multiplexes
 * the submitted threshold-scan jobs over one warm engine with
 * priority scheduling and batch-boundary preemption, and streams
 * JSONL events (docs/job-protocol.md) to the events file.
 *
 * Usage:
 *   scan_server --requests <path|-> --events <path|-> --state-dir <dir>
 *               [--quantum <trials>] [--threads <n>]
 *               [--progress-every <trials>] [--checkpoint-every <trials>]
 *               [--follow] [--metrics-json <path>] [--trace-json <path>]
 *
 * Batch mode (default): read every request, run the queue dry, exit 0
 * (1 when any job ended in a terminal `error` event). --follow keeps
 * tailing the request file on a poller thread, so a higher-priority
 * submission lands while a job is running and preempts it at the next
 * batch boundary; a `shutdown` request line ends the session.
 *
 * Kill/resume: the server keeps all job state in per-job checkpoint
 * files under --state-dir. SIGKILL it at any moment, rerun the same
 * command, and every job resumes from its last committed batch --
 * final counts are bit-identical to a never-killed run (the CI smoke
 * proves this with cmp against solo threshold_scan checkpoints).
 * The events file is truncated per session; keep per-session paths
 * when the full history matters.
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/obs.h"
#include "service/job_service.h"
#include "util/env.h"

using namespace vlq;

namespace {

int
usage(std::ostream& os, const char* argv0)
{
    os << "usage: " << argv0
       << " --requests <path|-> --events <path|-> --state-dir <dir>\n"
          "  [--quantum <trials>] [--threads <n>]"
          " [--progress-every <trials>]\n"
          "  [--checkpoint-every <trials>] [--follow]\n"
          "  [--metrics-json <path>] [--trace-json <path>]\n"
          "\n"
          "Request lines (vlq-scan-job/1, see docs/job-protocol.md):\n"
          "  submit id=<id> [priority=<-100..100>] [setup=<0..4>]\n"
          "    [embedding=<name>] [schedule=aao|interleaved]\n"
          "    [distances=3,5,7] [ps=3e-3,...] [trials=<n>] [seed=<n>]\n"
          "    [decoder=<name>] [batch=<n>] [target=<n>]\n"
          "    [compute=<name>]\n"
          "  cancel id=<id>\n"
          "  requeue id=<id>\n"
          "  shutdown\n";
    return 1;
}

/**
 * Incremental reader of the request file: poll() feeds every new
 * *complete* line to the service, remembering the offset, so the
 * --follow poller never re-submits and never splits a line a client
 * is still appending.
 */
class RequestReader
{
  public:
    RequestReader(std::istream& in, service::JobService& service)
        : in_(in), service_(service)
    {
    }

    /** Read all complete lines currently available. */
    void poll()
    {
        std::string line;
        while (true) {
            std::streampos before = in_.tellg();
            if (!std::getline(in_, line)) {
                // EOF mid-line: rewind so the partial line is re-read
                // once the writer finishes it.
                in_.clear();
                if (before != std::streampos(-1))
                    in_.seekg(before);
                return;
            }
            service_.submitLine(line);
        }
    }

  private:
    std::istream& in_;
    service::JobService& service_;
};

} // namespace

int
main(int argc, char** argv)
{
    obs::initFromEnv();
    std::string requestsPath;
    std::string eventsPath;
    std::string metricsJsonPath;
    std::string traceJsonPath;
    service::JobServiceConfig config;
    bool follow = false;

    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        auto value = [&](std::string* out) {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                return false;
            }
            *out = argv[++i];
            return true;
        };
        auto count = [&](uint64_t* out) {
            std::string text;
            if (!value(&text))
                return false;
            auto parsed = parseInt64(text);
            if (!parsed || *parsed < 0) {
                std::cerr << "error: " << arg
                          << " expects a non-negative integer, got '"
                          << text << "'\n";
                return false;
            }
            *out = static_cast<uint64_t>(*parsed);
            return true;
        };
        uint64_t n = 0;
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, argv[0]) && 0;
        else if (arg == "--requests") {
            if (!value(&requestsPath))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--events") {
            if (!value(&eventsPath))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--state-dir") {
            if (!value(&config.stateDir))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--quantum") {
            if (!count(&config.quantumTrials))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--threads") {
            if (!count(&n))
                return usage(std::cerr, argv[0]);
            config.threads = static_cast<unsigned>(n);
        } else if (arg == "--progress-every") {
            if (!count(&config.progressEveryTrials))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--checkpoint-every") {
            if (!count(&config.checkpointEveryTrials))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--follow") {
            follow = true;
        } else if (arg == "--metrics-json") {
            if (!value(&metricsJsonPath))
                return usage(std::cerr, argv[0]);
        } else if (arg == "--trace-json") {
            if (!value(&traceJsonPath))
                return usage(std::cerr, argv[0]);
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n";
            return usage(std::cerr, argv[0]);
        }
    }
    obs::applyCliPaths(metricsJsonPath, traceJsonPath);
    if (requestsPath.empty() || eventsPath.empty()) {
        std::cerr << "error: --requests and --events are required\n";
        return usage(std::cerr, argv[0]);
    }

    // Open the event stream: stdout or a per-session file (truncated;
    // an appended file would restart seq mid-stream and break the
    // strictly-increasing guarantee).
    std::ofstream eventsFile;
    std::ostream* eventsOut = &std::cout;
    if (eventsPath != "-") {
        eventsFile.open(eventsPath, std::ios::trunc);
        if (!eventsFile) {
            std::cerr << "error: cannot open events file '" << eventsPath
                      << "'\n";
            return 1;
        }
        eventsOut = &eventsFile;
    }

    std::ifstream requestsFile;
    std::istream* requestsIn = &std::cin;
    if (requestsPath != "-") {
        requestsFile.open(requestsPath);
        if (!requestsFile) {
            std::cerr << "error: cannot open requests file '"
                      << requestsPath << "'\n";
            return 1;
        }
        requestsIn = &requestsFile;
    }

    service::EventSink events(eventsOut);
    service::JobService jobService(config, events);
    RequestReader reader(*requestsIn, jobService);

    reader.poll();
    int failed = 0;
    if (!follow) {
        failed = jobService.runUntilDrained();
    } else {
        // Poller thread: new requests land mid-job and preempt at the
        // next batch boundary; `shutdown` ends the session.
        std::thread poller([&]() {
            while (!jobService.shutdownRequested()) {
                reader.poll();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });
        while (!jobService.shutdownRequested()) {
            failed = jobService.runUntilDrained();
            if (jobService.shutdownRequested())
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        poller.join();
    }

    std::string obsErr;
    if (!obs::finalize(&obsErr)) {
        std::cerr << "error: " << obsErr << "\n";
        return 1;
    }
    return failed > 0 ? 1 : 0;
}
