/**
 * @file
 * Threshold scan example: sweep the physical error rate for one
 * evaluation setup and locate the error threshold, like one panel of
 * the paper's Fig. 11.
 *
 * Usage: threshold_scan [setup 0..4] [trials] [decoder] [target]
 *   0 Baseline, 1 Natural-AAO, 2 Natural-Interleaved,
 *   3 Compact-AAO, 4 Compact-Interleaved
 *   decoder: mwpm (default), union-find/uf, greedy; the VLQ_DECODER
 *   environment variable sets the default when the argument is absent.
 *   target: stop each point early after this many failures (0 = run
 *   every trial). VLQ_BATCH sets the Monte-Carlo batch size.
 *   VLQ_EMBEDDING overrides the setup's embedding with any registered
 *   generator backend (baseline, natural, compact, compact-rect), so
 *   new backends can be scanned without a new setup index.
 *
 * All numeric arguments are validated: non-numeric or out-of-range
 * input prints this usage instead of silently running a wrong setup.
 *
 * Points stream as they finish, with running failure counts for the
 * point being sampled -- the batched engine commits batches in trial
 * order, so the stream (and the final counts) are reproducible for
 * any thread count or batch size.
 */
#include <iostream>

#include "core/generator_registry.h"
#include "decoder/decoder_factory.h"
#include "mc/threshold.h"
#include "util/env.h"
#include "util/table.h"

using namespace vlq;

namespace {

int
usage(const char* argv0, const std::string& problem)
{
    std::cerr << "error: " << problem << "\n"
              << "usage: " << argv0
              << " [setup 0..4] [trials >= 1] [decoder] [target >= 0]\n"
              << "  decoders: " << decoderKindList() << "\n"
              << "  VLQ_EMBEDDING overrides the embedding ("
              << embeddingKindList() << ")\n";
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    auto setups = paperSetups();

    int setupIdx = 4;
    if (argc > 1) {
        auto parsed = parseInt64(argv[1]);
        if (!parsed || *parsed < 0
            || *parsed >= static_cast<int64_t>(setups.size())) {
            return usage(argv[0], "setup must be an integer in 0.."
                         + std::to_string(setups.size() - 1) + ", got '"
                         + argv[1] + "'");
        }
        setupIdx = static_cast<int>(*parsed);
    }
    EvaluationSetup setup = setups[static_cast<size_t>(setupIdx)];
    setup.embedding = embeddingKindFromEnv(setup.embedding);

    uint64_t trials = 1500;
    if (argc > 2) {
        auto parsed = parseInt64(argv[2]);
        if (!parsed || *parsed < 1) {
            return usage(argv[0], "trials must be a positive integer, "
                         "got '" + std::string(argv[2]) + "'");
        }
        trials = static_cast<uint64_t>(*parsed);
    }

    ThresholdScanConfig cfg;
    cfg.distances = {3, 5, 7};
    cfg.physicalPs = logspace(3e-3, 2e-2, 6);
    cfg.mc.trials = trials;
    cfg.mc.decoder = decoderKindFromEnv(DecoderKind::Mwpm);
    cfg.mc.batchSize = static_cast<uint32_t>(envU64("VLQ_BATCH", 256));
    cfg.mc.targetFailures = envU64("VLQ_TARGET_FAILURES", 0);
    if (argc > 3) {
        auto kind = parseDecoderKind(argv[3]);
        if (!kind) {
            return usage(argv[0], "unknown decoder '"
                         + std::string(argv[3]) + "'");
        }
        cfg.mc.decoder = *kind;
    }
    if (argc > 4) {
        auto parsed = parseInt64(argv[4]);
        if (!parsed || *parsed < 0) {
            return usage(argv[0], "target must be a non-negative "
                         "integer, got '" + std::string(argv[4]) + "'");
        }
        cfg.mc.targetFailures = static_cast<uint64_t>(*parsed);
    }

    // Stream running counts: overwrite one status line per basis run,
    // then print the finished point on its own line.
    cfg.mc.progress = [](const McProgress& p) {
        if (p.trialsDone == p.totalTrials
            || p.trialsDone % 16384 < 256)
            std::cout << "\r    sampling: " << p.failures
                      << " failures / " << p.trialsDone << " of "
                      << p.totalTrials << " trials " << std::flush;
    };
    cfg.pointProgress = [](const LogicalErrorPoint& pt) {
        std::cout << "\r  d=" << pt.distance << "  p="
                  << TablePrinter::sci(pt.physicalP, 2) << "  rate="
                  << TablePrinter::sci(pt.combinedRate(), 2) << "  ("
                  << pt.basisZ.successes + pt.basisX.successes
                  << " failures / " << pt.basisZ.trials + pt.basisX.trials
                  << " trials)          \n";
    };

    std::cout << "Scanning " << setup.name() << " with " << trials
              << " trials/point using the "
              << decoderKindName(cfg.mc.decoder) << " decoder (batch "
              << cfg.mc.batchSize;
    if (cfg.mc.targetFailures > 0)
        std::cout << ", early-stop at " << cfg.mc.targetFailures
                  << " failures";
    std::cout << ")...\n\n";
    ThresholdResult result = scanThreshold(setup, cfg);

    std::vector<std::string> headers{"p"};
    for (const auto& c : result.curves)
        headers.push_back("d=" + std::to_string(c.distance));
    TablePrinter t(headers);
    for (size_t j = 0; j < cfg.physicalPs.size(); ++j) {
        std::vector<std::string> row{
            TablePrinter::sci(cfg.physicalPs[j], 2)};
        for (const auto& c : result.curves)
            row.push_back(
                TablePrinter::sci(c.points[j].combinedRate(), 2));
        t.addRow(row);
    }
    std::cout << "\n";
    t.print(std::cout);

    if (result.pth > 0)
        std::cout << "\nEstimated threshold: pth ~ "
                  << TablePrinter::sci(result.pth, 2)
                  << " (paper: ~8e-3 to 9e-3)\n";
    else
        std::cout << "\nNo crossing found in range; increase trials.\n";
    return 0;
}
