/**
 * @file
 * Threshold scan example: sweep the physical error rate for one
 * evaluation setup and locate the error threshold, like one panel of
 * the paper's Fig. 11.
 *
 * Usage: threshold_scan [setup 0..4] [trials] [decoder] [target]
 *                       [--checkpoint <path>] [--compute <backend>]
 *   0 Baseline, 1 Natural-AAO, 2 Natural-Interleaved,
 *   3 Compact-AAO, 4 Compact-Interleaved
 *   decoder: mwpm (default), union-find/uf, greedy; the VLQ_DECODER
 *   environment variable sets the default when the argument is absent.
 *   target: stop each point early after this many failures (0 = run
 *   every trial). VLQ_BATCH sets the Monte-Carlo batch size.
 *   VLQ_EMBEDDING overrides the setup's embedding with any registered
 *   generator backend (baseline, natural, compact, compact-rect), so
 *   new backends can be scanned without a new setup index.
 *   --compute selects the compute backend running the batch pipeline
 *   (scalar, simd); the VLQ_COMPUTE environment variable sets the
 *   default. Backends are bit-identical -- this is a throughput knob
 *   that can never change counts.
 *
 * VLQ_SEED sets the RNG seed (default 0x5eed): split-seed cluster
 * shards run the same scan under different seeds and their checkpoint
 * files merge with tools/merge_checkpoints.py.
 *
 * Checkpoint/resume: --checkpoint (or VLQ_CHECKPOINT) names a state
 * file; the scan periodically persists the committed trial frontier of
 * every (d, p, basis) point (every VLQ_CHECKPOINT_EVERY committed
 * trials, default 65536) and, when restarted after a kill, skips
 * finished points and resumes the interrupted one from its first
 * uncommitted trial. The resumed scan's failure counts are
 * bit-identical to an uninterrupted run's -- including under early
 * stop -- because every trial samples its own RNG stream and batches
 * commit in trial order. A checkpoint recorded under different scan
 * knobs is rejected (config fingerprint mismatch).
 *
 * Observability: --metrics-json <path> (or VLQ_METRICS_JSON) writes a
 * structured end-of-run JSON report -- per-point shots/sec, stage
 * latency quantiles, decoder fast-path hit rate -- and --trace-json
 * <path> (or VLQ_TRACE) writes a Chrome trace_event timeline with one
 * lane per pool thread (load into chrome://tracing or Perfetto). Both
 * are off by default and cost nothing when off.
 *
 * All arguments are validated: non-numeric or out-of-range input --
 * and any unknown or extra argument -- prints this usage instead of
 * silently running a wrong scan.
 *
 * Points stream as they finish, with running failure counts for the
 * point being sampled -- the batched engine commits batches in trial
 * order, so the stream (and the final counts) are reproducible for
 * any thread count or batch size.
 */
#include <iostream>
#include <optional>
#include <vector>

#include "compute/compute_registry.h"
#include "core/generator_registry.h"
#include "decoder/decoder_factory.h"
#include "mc/threshold.h"
#include "obs/obs.h"
#include "util/env.h"
#include "util/table.h"

using namespace vlq;

namespace {

int
usage(const char* argv0, const std::string& problem)
{
    std::cerr << "error: " << problem << "\n"
              << "usage: " << argv0
              << " [setup 0..4] [trials >= 1] [decoder] [target >= 0]"
                 " [--checkpoint <path>]\n"
                 "  [--compute <backend>] [--metrics-json <path>]"
                 " [--trace-json <path>]\n"
              << "  decoders: " << decoderKindList() << "\n"
              << "  compute backends: " << computeKindList() << "\n"
              << "  VLQ_EMBEDDING overrides the embedding ("
              << embeddingKindList() << ")\n";
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    auto setups = paperSetups();

    // Split argv into the positional arguments and the flag set; any
    // unknown flag or surplus positional is an error, never silently
    // ignored.
    obs::initFromEnv();
    std::string checkpointPath = envString("VLQ_CHECKPOINT", "");
    std::optional<ComputeKind> computeOverride;
    std::string metricsJsonPath;
    std::string traceJsonPath;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg == "--checkpoint") {
            if (i + 1 >= argc)
                return usage(argv[0], "--checkpoint needs a value");
            checkpointPath = argv[++i];
        } else if (arg == "--compute") {
            if (i + 1 >= argc)
                return usage(argv[0], "--compute needs a value");
            auto kind = parseComputeKind(argv[++i]);
            if (!kind) {
                return usage(argv[0], "unknown compute backend '"
                             + std::string(argv[i]) + "'");
            }
            computeOverride = kind;
        } else if (arg == "--metrics-json") {
            if (i + 1 >= argc)
                return usage(argv[0], "--metrics-json needs a value");
            metricsJsonPath = argv[++i];
        } else if (arg == "--trace-json") {
            if (i + 1 >= argc)
                return usage(argv[0], "--trace-json needs a value");
            traceJsonPath = argv[++i];
        } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
            return usage(argv[0], "unknown flag '" + std::string(arg)
                         + "'");
        } else if (positional.size() >= 4) {
            return usage(argv[0], "unexpected extra argument '"
                         + std::string(arg) + "'");
        } else {
            positional.push_back(argv[i]);
        }
    }
    obs::applyCliPaths(metricsJsonPath, traceJsonPath);

    int setupIdx = 4;
    if (positional.size() > 0) {
        auto parsed = parseInt64(positional[0]);
        if (!parsed || *parsed < 0
            || *parsed >= static_cast<int64_t>(setups.size())) {
            return usage(argv[0], "setup must be an integer in 0.."
                         + std::to_string(setups.size() - 1) + ", got '"
                         + positional[0] + "'");
        }
        setupIdx = static_cast<int>(*parsed);
    }
    EvaluationSetup setup = setups[static_cast<size_t>(setupIdx)];
    setup.embedding = embeddingKindFromEnv(setup.embedding);

    uint64_t trials = 1500;
    if (positional.size() > 1) {
        auto parsed = parseInt64(positional[1]);
        if (!parsed || *parsed < 1) {
            return usage(argv[0], "trials must be a positive integer, "
                         "got '" + std::string(positional[1]) + "'");
        }
        trials = static_cast<uint64_t>(*parsed);
    }

    ThresholdScanConfig cfg;
    cfg.distances = {3, 5, 7};
    cfg.physicalPs = logspace(3e-3, 2e-2, 6);
    cfg.mc.trials = trials;
    cfg.mc.seed = envU64("VLQ_SEED", cfg.mc.seed);
    cfg.mc.decoder = decoderKindFromEnv(DecoderKind::Mwpm);
    cfg.mc.batchSize = static_cast<uint32_t>(envU64("VLQ_BATCH", 256));
    cfg.mc.targetFailures = envU64("VLQ_TARGET_FAILURES", 0);
    cfg.mc.checkpointPath = checkpointPath;
    cfg.mc.checkpointEveryTrials = envU64("VLQ_CHECKPOINT_EVERY", 0);
    if (computeOverride) // else the McOptions VLQ_COMPUTE default holds
        cfg.mc.compute = *computeOverride;
    if (positional.size() > 2) {
        auto kind = parseDecoderKind(positional[2]);
        if (!kind) {
            return usage(argv[0], "unknown decoder '"
                         + std::string(positional[2]) + "'");
        }
        cfg.mc.decoder = *kind;
    }
    if (positional.size() > 3) {
        auto parsed = parseInt64(positional[3]);
        if (!parsed || *parsed < 0) {
            return usage(argv[0], "target must be a non-negative "
                         "integer, got '" + std::string(positional[3])
                         + "'");
        }
        cfg.mc.targetFailures = static_cast<uint64_t>(*parsed);
    }

    // Stream running counts: overwrite one status line per basis run,
    // then print the finished point on its own line.
    cfg.mc.progress = [](const McProgress& p) {
        if (p.trialsDone == p.totalTrials
            || p.trialsDone % 16384 < 256) {
            std::cout << "\r    sampling: " << p.failures
                      << " failures / " << p.trialsDone << " of "
                      << p.totalTrials << " trials ";
            // Heartbeat: session throughput and projected time left.
            // heartbeatString clamps -- unknown or non-finite values
            // (e.g. the first heartbeat of a resumed session) render
            // as "--", never as inf or a garbage integer cast.
            std::cout << "(" << p.heartbeatString() << ") "
                      << std::flush;
        }
    };
    cfg.pointProgress = [](const LogicalErrorPoint& pt) {
        std::cout << "\r  d=" << pt.distance << "  p="
                  << TablePrinter::sci(pt.physicalP, 2) << "  rate="
                  << TablePrinter::sci(pt.combinedRate(), 2) << "  ("
                  << pt.basisZ.successes + pt.basisX.successes
                  << " failures / " << pt.basisZ.trials + pt.basisX.trials
                  << " trials)          \n";
    };

    std::cout << "Scanning " << setup.name() << " with " << trials
              << " trials/point using the "
              << decoderKindName(cfg.mc.decoder) << " decoder (batch "
              << cfg.mc.batchSize << ", compute "
              << computeKindName(cfg.mc.compute);
    if (cfg.mc.targetFailures > 0)
        std::cout << ", early-stop at " << cfg.mc.targetFailures
                  << " failures";
    if (!cfg.mc.checkpointPath.empty())
        std::cout << ", checkpointing to " << cfg.mc.checkpointPath;
    std::cout << ")...\n\n";
    ThresholdResult result = scanThreshold(setup, cfg);

    std::vector<std::string> headers{"p"};
    for (const auto& c : result.curves)
        headers.push_back("d=" + std::to_string(c.distance));
    TablePrinter t(headers);
    for (size_t j = 0; j < cfg.physicalPs.size(); ++j) {
        std::vector<std::string> row{
            TablePrinter::sci(cfg.physicalPs[j], 2)};
        for (const auto& c : result.curves)
            row.push_back(
                TablePrinter::sci(c.points[j].combinedRate(), 2));
        t.addRow(row);
    }
    std::cout << "\n";
    t.print(std::cout);

    if (result.pth > 0)
        std::cout << "\nEstimated threshold: pth ~ "
                  << TablePrinter::sci(result.pth, 2)
                  << " (paper: ~8e-3 to 9e-3)\n";
    else
        std::cout << "\nNo crossing found in range; increase trials.\n";

    std::string obsErr;
    if (!obs::finalize(&obsErr)) {
        std::cerr << "error: " << obsErr << "\n";
        return 1;
    }
    if (!obs::configuredMetricsJsonPath().empty())
        std::cout << "Metrics report: "
                  << obs::configuredMetricsJsonPath() << "\n";
    if (!obs::configuredTraceJsonPath().empty())
        std::cout << "Trace timeline: " << obs::configuredTraceJsonPath()
                  << "\n";
    return 0;
}
