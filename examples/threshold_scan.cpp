/**
 * @file
 * Threshold scan example: sweep the physical error rate for one
 * evaluation setup and locate the error threshold, like one panel of
 * the paper's Fig. 11.
 *
 * Usage: threshold_scan [setup 0..4] [trials] [decoder]
 *   0 Baseline, 1 Natural-AAO, 2 Natural-Interleaved,
 *   3 Compact-AAO, 4 Compact-Interleaved
 *   decoder: mwpm (default), union-find/uf, greedy; the VLQ_DECODER
 *   environment variable sets the default when the argument is absent.
 */
#include <cstdlib>
#include <iostream>

#include "decoder/decoder_factory.h"
#include "mc/threshold.h"
#include "util/table.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    int setupIdx = argc > 1 ? std::atoi(argv[1]) : 4;
    uint64_t trials = argc > 2
        ? static_cast<uint64_t>(std::atoll(argv[2])) : 1500;
    auto setups = paperSetups();
    if (setupIdx < 0 || setupIdx >= static_cast<int>(setups.size())) {
        std::cerr << "setup must be 0..4\n";
        return 1;
    }
    EvaluationSetup setup = setups[static_cast<size_t>(setupIdx)];

    ThresholdScanConfig cfg;
    cfg.distances = {3, 5, 7};
    cfg.physicalPs = logspace(3e-3, 2e-2, 6);
    cfg.mc.trials = trials;
    cfg.mc.decoder = decoderKindFromEnv(DecoderKind::Mwpm);
    if (argc > 3) {
        auto kind = parseDecoderKind(argv[3]);
        if (!kind) {
            std::cerr << "unknown decoder '" << argv[3]
                      << "' (try: mwpm, greedy, union-find)\n";
            return 1;
        }
        cfg.mc.decoder = *kind;
    }

    std::cout << "Scanning " << setup.name() << " with " << trials
              << " trials/point using the "
              << decoderKindName(cfg.mc.decoder) << " decoder...\n\n";
    ThresholdResult result = scanThreshold(setup, cfg);

    std::vector<std::string> headers{"p"};
    for (const auto& c : result.curves)
        headers.push_back("d=" + std::to_string(c.distance));
    TablePrinter t(headers);
    for (size_t j = 0; j < cfg.physicalPs.size(); ++j) {
        std::vector<std::string> row{
            TablePrinter::sci(cfg.physicalPs[j], 2)};
        for (const auto& c : result.curves)
            row.push_back(
                TablePrinter::sci(c.points[j].combinedRate(), 2));
        t.addRow(row);
    }
    t.print(std::cout);

    if (result.pth > 0)
        std::cout << "\nEstimated threshold: pth ~ "
                  << TablePrinter::sci(result.pth, 2)
                  << " (paper: ~8e-3 to 9e-3)\n";
    else
        std::cout << "\nNo crossing found in range; increase trials.\n";
    return 0;
}
