/**
 * @file
 * Magic-state factory example: build a VQubits T-state factory on a
 * 2.5D device, schedule 15-to-1 distillation rounds, and report
 * throughput and refresh health -- the workload the paper argues
 * dominates fault-tolerant machines (Sec. VII).
 */
#include <iostream>

#include "msd/factory.h"
#include "util/env.h"
#include "util/table.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    if (!requireNoArgs(argc, argv))
        return 1;
    DeviceConfig device;
    device.embedding = EmbeddingKind::Compact;
    device.distance = 5;
    device.gridWidth = 1;
    device.gridHeight = 1;
    device.cavityDepth = 10;

    PatchCost cost = patchCost(device.embedding, device.distance);
    std::cout << "VQubits T-state factory on one Compact d=5 stack: "
              << cost.transmons << " transmons, " << cost.cavities
              << " cavities.\n\n";

    FactoryScheduleResult run = scheduleFifteenToOne(device);
    TablePrinter t({"Metric", "Value"});
    t.addRow({"timesteps per T state (our scheduler)",
              std::to_string(run.timesteps)});
    t.addRow({"timesteps per T state (paper's schedule)", "110"});
    t.addRow({"timesteps in lock-step pairs (paper)", "99"});
    t.addRow({"transversal CNOTs used", std::to_string(run.transversalCnots)});
    t.addRow({"peak live logical qubits", std::to_string(run.peakQubits)});
    t.addRow({"max EC staleness (timesteps)",
              std::to_string(run.maxStaleness)});
    t.print(std::cout);

    std::cout << "\nThroughput per 100 patches of chip area"
                 " (paper Fig. 13a):\n\n";
    TablePrinter r({"Protocol", "T states / timestep"});
    for (const auto& row : figure13Rows(100.0))
        r.addRow({row.name, TablePrinter::num(row.rate, 3)});
    r.print(std::cout);

    std::cout << "\nEvery improvement here directly accelerates"
                 " Shor/Grover-class workloads: distillation is >90% of"
                 " their cost.\n";
    return 0;
}
