/**
 * @file
 * scan_client: thin client for the scan job service. Builds and
 * validates vlq-scan-job/1 request lines, appends them to a
 * scan_server request file (or FIFO), and summarizes JSONL event
 * streams (docs/job-protocol.md).
 *
 * Usage:
 *   scan_client submit --requests <path|-> --id <id>
 *     [--priority <-100..100>] [--setup <0..4>] [--embedding <name>]
 *     [--schedule aao|interleaved] [--distances 3,5,7]
 *     [--ps 3e-3,...] [--trials <n>] [--seed <n>] [--decoder <name>]
 *     [--batch <n>] [--target <n>] [--compute <name>] [--dry-run]
 *   scan_client cancel --requests <path|-> --id <id>
 *   scan_client requeue --requests <path|-> --id <id>
 *   scan_client shutdown --requests <path|->
 *   scan_client watch --events <path|-> [--job <id>]
 *
 * `submit` validates locally with the same validateJob pass the
 * server runs, so a typo'd decoder name fails here with the registry
 * listing instead of as a server-side error event. The written line
 * is the canonical requestLine() rendering (exact double round-trip).
 *
 * `watch` lints every event line as JSON, prints a one-line human
 * summary per event, and exits non-zero when the stream is malformed
 * or any watched job ended in a terminal `error`.
 */
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "service/job.h"
#include "service/job_validation.h"

using namespace vlq;

namespace {

int
usage(std::ostream& os, const char* argv0)
{
    os << "usage: " << argv0
       << " <submit|cancel|requeue|shutdown|watch> [flags]\n"
          "  submit --requests <path|-> --id <id>\n"
          "    [--priority <-100..100>] [--setup <0..4>]"
          " [--embedding <name>]\n"
          "    [--schedule aao|interleaved] [--distances 3,5,7]"
          " [--ps 3e-3,...]\n"
          "    [--trials <n>] [--seed <n>] [--decoder <name>]"
          " [--batch <n>]\n"
          "    [--target <n>] [--compute <name>] [--dry-run]\n"
          "  cancel --requests <path|-> --id <id>\n"
          "  requeue --requests <path|-> --id <id>\n"
          "  shutdown --requests <path|->\n"
          "  watch --events <path|-> [--job <id>]\n";
    return 1;
}

/** Append one request line to the file (or stdout for "-"). */
int
appendRequest(const std::string& path, const std::string& line)
{
    if (path == "-") {
        std::cout << line << "\n" << std::flush;
        return 0;
    }
    std::ofstream out(path, std::ios::app);
    if (!out) {
        std::cerr << "error: cannot open requests file '" << path
                  << "'\n";
        return 1;
    }
    out << line << "\n" << std::flush;
    if (!out) {
        std::cerr << "error: write to '" << path << "' failed\n";
        return 1;
    }
    return 0;
}

/**
 * Minimal field extraction for our own event lines: the sink renders
 * every string field as "key":"value" with no nested objects, so a
 * plain scan (after jsonLint has vouched for well-formedness) is
 * enough for a summary -- watch is a consumer example, not a parser.
 */
std::string
fieldString(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\":\"";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    size_t begin = at + needle.size();
    size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return "";
    return line.substr(begin, end - begin);
}

std::string
fieldRaw(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    size_t begin = at + needle.size();
    size_t end = begin;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    return line.substr(begin, end - begin);
}

int
runSubmit(const std::vector<std::pair<std::string, std::string>>& flags,
          bool dryRun)
{
    // Build the request line from the raw flag values and reuse the
    // wire-grammar parser, so client and server accept exactly the
    // same spellings (numbers, lists, ranges).
    static const std::map<std::string, std::string> flagToKey = {
        {"--id", "id"},           {"--priority", "priority"},
        {"--setup", "setup"},     {"--embedding", "embedding"},
        {"--schedule", "schedule"}, {"--distances", "distances"},
        {"--ps", "ps"},           {"--trials", "trials"},
        {"--seed", "seed"},       {"--decoder", "decoder"},
        {"--batch", "batch"},     {"--target", "target"},
        {"--compute", "compute"},
    };
    std::string requestsPath;
    std::ostringstream line;
    line << "submit";
    for (const auto& [flag, value] : flags) {
        if (flag == "--requests") {
            requestsPath = value;
            continue;
        }
        auto it = flagToKey.find(flag);
        if (it == flagToKey.end()) {
            std::cerr << "error: unknown submit flag '" << flag
                      << "'\n";
            return 1;
        }
        line << " " << it->second << "=" << value;
    }

    std::string problem;
    std::optional<service::Request> request =
        service::parseRequestLine(line.str(), &problem);
    if (!request) {
        std::cerr << "error: " << problem << "\n";
        return 1;
    }
    std::vector<std::string> problems =
        service::validateJob(request->job);
    if (!problems.empty()) {
        for (const std::string& p : problems)
            std::cerr << "error: " << p << "\n";
        return 1;
    }

    const std::string canonical = request->job.requestLine();
    if (dryRun) {
        std::cout << canonical << "\n";
        return 0;
    }
    if (requestsPath.empty()) {
        std::cerr << "error: submit needs --requests (or --dry-run)\n";
        return 1;
    }
    return appendRequest(requestsPath, canonical);
}

int
runWatch(const std::string& eventsPath, const std::string& jobFilter)
{
    std::ifstream file;
    std::istream* in = &std::cin;
    if (eventsPath != "-") {
        file.open(eventsPath);
        if (!file) {
            std::cerr << "error: cannot open events file '"
                      << eventsPath << "'\n";
            return 1;
        }
        in = &file;
    }

    std::map<std::string, std::string> lastEvent; // job -> event
    uint64_t lines = 0;
    std::string line;
    int status = 0;
    while (std::getline(*in, line)) {
        if (line.empty())
            continue;
        ++lines;
        std::string lintErr;
        if (!obs::jsonLint(line, &lintErr)) {
            std::cerr << "error: malformed event line " << lines
                      << ": " << lintErr << "\n";
            return 1;
        }
        const std::string job = fieldString(line, "job");
        const std::string event = fieldString(line, "event");
        if (!jobFilter.empty() && job != jobFilter)
            continue;
        if (!job.empty())
            lastEvent[job] = event;

        std::cout << fieldRaw(line, "seq") << " " << (job.empty()
            ? "-" : job) << " " << event;
        if (event == "progress")
            std::cout << " point=" << fieldRaw(line, "point")
                      << " trials_done="
                      << fieldRaw(line, "trials_done") << "/"
                      << fieldRaw(line, "trials_budget");
        else if (event == "point_done")
            std::cout << " point=" << fieldRaw(line, "point") << " d="
                      << fieldRaw(line, "d") << " p="
                      << fieldRaw(line, "p") << " basis="
                      << fieldString(line, "basis") << " failures="
                      << fieldRaw(line, "failures") << "/"
                      << fieldRaw(line, "trials")
                      << (fieldRaw(line, "cached") == "true"
                              ? " (cached)" : "");
        else if (event == "preempted")
            std::cout << " reason=" << fieldString(line, "reason");
        else if (event == "requeued")
            std::cout << " queue_depth="
                      << fieldRaw(line, "queue_depth");
        else if (event == "cancelled")
            std::cout << " stage=" << fieldString(line, "stage");
        else if (event == "error") {
            std::cout << " code=" << fieldString(line, "code")
                      << " message="
                      << obs::jsonQuote(fieldString(line, "message"));
            status = 1;
        } else if (event == "done")
            std::cout << " failures=" << fieldRaw(line, "failures")
                      << "/" << fieldRaw(line, "trials");
        std::cout << "\n";
    }

    for (const auto& [job, event] : lastEvent)
        if (event != "done" && event != "error" && event != "cancelled")
            std::cout << "# " << job << ": in flight (last event '"
                      << event << "')\n";
    return status;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage(std::cerr, argv[0]);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, argv[0]) && 0;

    bool dryRun = false;
    std::vector<std::pair<std::string, std::string>> flags;
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--dry-run") {
            dryRun = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "error: " << flag << " needs a value\n";
            return usage(std::cerr, argv[0]);
        }
        flags.emplace_back(flag, argv[++i]);
    }
    auto flagValue = [&](const std::string& name) {
        for (const auto& [flag, value] : flags)
            if (flag == name)
                return value;
        return std::string();
    };

    if (command == "submit")
        return runSubmit(flags, dryRun);
    if (command == "cancel" || command == "requeue") {
        const std::string path = flagValue("--requests");
        const std::string id = flagValue("--id");
        if (path.empty() || id.empty()) {
            std::cerr << "error: " << command
                      << " needs --requests and --id\n";
            return 1;
        }
        // Reuse the wire-grammar parser so a malformed id (spaces,
        // '=') fails here instead of as a server-side error event.
        const std::string line = command + " id=" + id;
        std::string problem;
        if (!service::parseRequestLine(line, &problem)) {
            std::cerr << "error: " << problem << "\n";
            return 1;
        }
        return appendRequest(path, line);
    }
    if (command == "shutdown") {
        const std::string path = flagValue("--requests");
        if (path.empty()) {
            std::cerr << "error: shutdown needs --requests\n";
            return 1;
        }
        return appendRequest(path, "shutdown");
    }
    if (command == "watch") {
        const std::string path = flagValue("--events");
        if (path.empty()) {
            std::cerr << "error: watch needs --events\n";
            return 1;
        }
        return runWatch(path, flagValue("--job"));
    }
    std::cerr << "error: unknown command '" << command << "'\n";
    return usage(std::cerr, argv[0]);
}
