/**
 * @file
 * Layout viewer: the textual counterpart of the paper's Figs. 2 and 7.
 * Shows the rotated surface code, the Compact merge (Z checks into
 * their NE data transmon, X checks into their SW), the extraction
 * orders, and the solved Fig. 10 compact schedule for a chosen patch.
 *
 * Usage: layout_viewer [distance]       (square patch)
 *        layout_viewer [dx] [dz]        (rectangular dx x dz patch)
 *
 * Arguments are validated: non-numeric, even, or < 3 input -- and any
 * extra argument -- prints the usage instead of silently rendering a
 * wrong layout.
 */
#include <iostream>

#include "core/embedding.h"
#include "surface/render.h"
#include "util/env.h"

using namespace vlq;

namespace {

int
usage(const char* argv0, const std::string& problem)
{
    std::cerr << "error: " << problem << "\n"
              << "usage: " << argv0 << " [distance]    (square patch)\n"
              << "       " << argv0 << " [dx] [dz]     (rectangular)\n"
              << "  each dimension must be an odd integer >= 3\n";
    return 1;
}

/** Parse one patch dimension or return -1 (after printing usage). */
int
parseDimension(const char* argv0, const char* text, const char* label)
{
    auto parsed = parseInt64(text);
    if (!parsed || *parsed < 3 || *parsed % 2 == 0 || *parsed > 99) {
        usage(argv0, std::string(label) + " must be an odd integer in "
              "3..99, got '" + text + "'");
        return -1;
    }
    return static_cast<int>(*parsed);
}

} // namespace

int
main(int argc, char** argv)
{
    int dx = 5;
    int dz = 5;
    if (argc > 3) {
        return usage(argv[0], "unexpected extra argument '"
                     + std::string(argv[3]) + "'");
    }
    if (argc > 1) {
        dx = parseDimension(argv[0], argv[1], "distance");
        if (dx < 0)
            return 1;
        dz = dx;
    }
    if (argc > 2) {
        dz = parseDimension(argv[0], argv[2], "dz");
        if (dz < 0)
            return 1;
    }
    SurfaceLayout layout(dx, dz);

    std::cout << "Rotated surface code, " << dx << " x " << dz
              << " patch (o = data, Z/X = checks; paper Fig. 2):\n\n"
              << LayoutRenderer::render(layout);

    std::cout << "\nCompact embedding (z/x = ancilla merged into that"
                 " data transmon, * = dedicated boundary ancilla;"
                 " paper Fig. 7):\n\n"
              << LayoutRenderer::renderCompact(layout);

    CompactMerge merge = CompactMerge::build(layout);
    std::cout << "\ntransmons: " << layout.numData() + merge.numUnmerged
              << " (" << layout.numData() << " data + "
              << merge.numUnmerged << " boundary ancillas), cavities: "
              << layout.numData() << "\n";

    std::cout << "\nExtraction order, Z checks (digits = step each data"
                 " is touched):\n\n"
              << LayoutRenderer::renderOrder(layout, CheckBasis::Z);
    std::cout << "\nExtraction order, X checks:\n\n"
              << LayoutRenderer::renderOrder(layout, CheckBasis::X);

    CompactSchedule sched = CompactSchedule::solve(layout);
    const char* groupNames[4] = {"A", "B", "C", "D"};
    std::cout << "\nSolved Compact schedule (paper Fig. 10):\n"
              << "  group start slots:";
    for (int g = 0; g < 4; ++g)
        std::cout << " " << groupNames[g] << "="
                  << sched.startSlot[static_cast<size_t>(g)];
    auto cornerName = [](int c) {
        switch (c) {
          case NW: return "NW";
          case NE: return "NE";
          case SW: return "SW";
          default: return "SE";
        }
    };
    std::cout << "\n  X corner order:";
    for (int s = 0; s < 4; ++s)
        std::cout << " " << cornerName(sched.orderX[static_cast<size_t>(s)]);
    std::cout << "\n  Z corner order:";
    for (int s = 0; s < 4; ++s)
        std::cout << " " << cornerName(sched.orderZ[static_cast<size_t>(s)]);
    std::cout << "\n  hook score: " << sched.hookScore() << "/2\n";
    return 0;
}
