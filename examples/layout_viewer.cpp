/**
 * @file
 * Layout viewer: the textual counterpart of the paper's Figs. 2 and 7.
 * Shows the rotated surface code, the Compact merge (Z checks into
 * their NE data transmon, X checks into their SW), the extraction
 * orders, and the solved Fig. 10 compact schedule for a chosen
 * distance.
 *
 * Usage: layout_viewer [distance]
 */
#include <cstdlib>
#include <iostream>

#include "core/embedding.h"
#include "surface/render.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    int d = argc > 1 ? std::atoi(argv[1]) : 5;
    if (d < 3 || d % 2 == 0) {
        std::cerr << "distance must be odd and >= 3\n";
        return 1;
    }
    SurfaceLayout layout(d);

    std::cout << "Rotated surface code, d = " << d << " (o = data, Z/X ="
                 " checks; paper Fig. 2):\n\n"
              << LayoutRenderer::render(layout);

    std::cout << "\nCompact embedding (z/x = ancilla merged into that"
                 " data transmon, * = dedicated boundary ancilla;"
                 " paper Fig. 7):\n\n"
              << LayoutRenderer::renderCompact(layout);

    CompactMerge merge = CompactMerge::build(layout);
    std::cout << "\ntransmons: " << layout.numData() + merge.numUnmerged
              << " (" << layout.numData() << " data + "
              << merge.numUnmerged << " boundary ancillas), cavities: "
              << layout.numData() << "\n";

    std::cout << "\nExtraction order, Z checks (digits = step each data"
                 " is touched):\n\n"
              << LayoutRenderer::renderOrder(layout, CheckBasis::Z);
    std::cout << "\nExtraction order, X checks:\n\n"
              << LayoutRenderer::renderOrder(layout, CheckBasis::X);

    CompactSchedule sched = CompactSchedule::solve(layout);
    const char* groupNames[4] = {"A", "B", "C", "D"};
    std::cout << "\nSolved Compact schedule (paper Fig. 10):\n"
              << "  group start slots:";
    for (int g = 0; g < 4; ++g)
        std::cout << " " << groupNames[g] << "="
                  << sched.startSlot[static_cast<size_t>(g)];
    auto cornerName = [](int c) {
        switch (c) {
          case NW: return "NW";
          case NE: return "NE";
          case SW: return "SW";
          default: return "SE";
        }
    };
    std::cout << "\n  X corner order:";
    for (int s = 0; s < 4; ++s)
        std::cout << " " << cornerName(sched.orderX[static_cast<size_t>(s)]);
    std::cout << "\n  Z corner order:";
    for (int s = 0; s < 4; ++s)
        std::cout << " " << cornerName(sched.orderZ[static_cast<size_t>(s)]);
    std::cout << "\n  hook score: " << sched.hookScore() << "/2\n";
    return 0;
}
