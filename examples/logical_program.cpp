/**
 * @file
 * Logical-program example: compile a small entangling workload (a
 * 6-qubit GHZ ladder) onto a 2x2 grid of stacks and print the
 * timestep-level schedule, showing virtual addresses, paging, qubit
 * movement, transversal CNOTs, and the refresh scheduler at work.
 */
#include <iostream>

#include "core/logical_machine.h"
#include "util/env.h"
#include "util/table.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    if (!requireNoArgs(argc, argv))
        return 1;
    DeviceConfig device;
    device.embedding = EmbeddingKind::Natural;
    device.distance = 5;
    device.gridWidth = 2;
    device.gridHeight = 2;
    device.cavityDepth = 10;

    LogicalMachine machine(device);
    std::cout << "Device: " << device.str() << ", capacity "
              << device.logicalCapacity() << " logical qubits\n\n";

    // Allocate a 6-qubit register; the allocator spreads across stacks.
    std::vector<LogicalQubit> reg;
    for (int i = 0; i < 6; ++i) {
        reg.push_back(machine.alloc());
        machine.initQubit(reg.back());
        std::cout << "q" << i << " -> "
                  << machine.addressOf(reg.back()).str() << "\n";
    }

    // GHZ ladder: H on q0, then CNOT q0->q1->...->q5. The machine
    // co-locates operands for fast transversal CNOTs.
    machine.singleQubitGate(reg[0], "H");
    for (int i = 0; i + 1 < 6; ++i)
        machine.cnotViaColocation(reg[static_cast<size_t>(i)],
                                  reg[static_cast<size_t>(i) + 1]);

    // Let the register idle: stored qubits are refreshed like DRAM.
    machine.idle(20);

    // Read out.
    for (int i = 0; i < 6; ++i)
        machine.measureQubit(reg[static_cast<size_t>(i)], "Z");

    std::cout << "\nSchedule (" << machine.currentStep()
              << " timesteps total):\n\n";
    TablePrinter t({"t", "dur", "operation"});
    for (const auto& op : machine.schedule())
        t.addRow({std::to_string(op.startStep),
                  std::to_string(op.duration), op.description});
    t.print(std::cout);

    std::cout << "\nRefresh health: max staleness "
              << machine.maxStaleness() << " timesteps, "
              << machine.refresh().refreshCount()
              << " background refreshes (every stored qubit must be"
                 " corrected at least every k = "
              << device.cavityDepth << " steps).\n";
    return 0;
}
