/**
 * @file
 * Quickstart: simulate one memory experiment on the paper's smallest
 * interesting device -- a Compact distance-3 patch (11 transmons,
 * 9 cavities) with cavity depth 10 -- and print its logical error rate
 * next to the 2D baseline's.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "arch/device.h"
#include "mc/monte_carlo.h"
#include "util/env.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    if (!requireNoArgs(argc, argv))
        return 1;
    // 1. Describe the hardware (Table I) and the operating point.
    HardwareParams hw = HardwareParams::transmonsWithMemory();
    double physicalErrorRate = 2e-3;

    // 2. Configure a distance-3 memory experiment on the Compact
    //    embedding with interleaved syndrome extraction.
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.cavityDepth = 10;
    cfg.schedule = ExtractionSchedule::Interleaved;
    cfg.noise = NoiseModel::atPhysicalRate(physicalErrorRate, hw);

    PatchCost cost = patchCost(EmbeddingKind::Compact, cfg.distance);
    std::cout << "Device: Compact d=3 patch -- " << cost.transmons
              << " transmons, " << cost.cavities
              << " cavities, stores up to " << cfg.cavityDepth
              << " logical qubits\n";

    // 3. Estimate the logical error rate per correction block
    //    (memory-Z and memory-X experiments, MWPM decoding).
    McOptions opt;
    opt.trials = 2000;
    LogicalErrorPoint compact =
        estimateLogicalError(EmbeddingKind::Compact, cfg, opt);

    // 4. Compare against the conventional 2D baseline.
    LogicalErrorPoint baseline =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);

    std::cout << "\nAt physical error rate p = " << physicalErrorRate
              << ":\n";
    std::cout << "  Compact (11 transmons):  p_L = "
              << compact.combinedRate() << " per block\n";
    std::cout << "  Baseline (17 transmons): p_L = "
              << baseline.combinedRate() << " per block\n";
    std::cout << "\nThe virtualized patch pays a small fidelity cost for"
                 " a ~10x transmon saving at k=10.\n";
    return 0;
}
