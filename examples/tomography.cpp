/**
 * @file
 * Process-tomography example (the paper's Sec. III-B verification):
 * reconstruct the Pauli transfer matrix of the transmon-mediated
 * mode-mode CNOT building block and compare it to an ideal CNOT, then
 * verify the full distance-3 transversal logical CNOT by Clifford
 * conjugation of the logical operators.
 */
#include <cstdio>
#include <iostream>

#include "circuit/circuit.h"
#include "sim/tableau.h"
#include "util/env.h"
#include "sim/tomography.h"
#include "surface/layout.h"

using namespace vlq;

int
main(int argc, char** argv)
{
    if (!requireNoArgs(argc, argv))
        return 1;
    std::cout << "=== Physical building block: mode-transmon-mode CNOT"
                 " ===\n";
    // Wires: 0 = control mode, 1 = target mode, 2 = shared transmon.
    Circuit block(3);
    block.swapGate(0, 2); // load control into the transmon
    block.cnot(2, 1);     // transmon-mode CNOT
    block.swapGate(0, 2); // store control back

    auto ptm = Tomography::ofCircuit(block, 3);
    Circuit idealC(3);
    idealC.cnot(0, 1);
    auto ideal = Tomography::ofCircuit(idealC, 3);
    std::cout << "PTM max |difference| vs ideal CNOT: "
              << Tomography::maxDifference(ptm, ideal) << "\n";
    std::cout << "process fidelity: "
              << Tomography::processFidelity(ptm, ideal) << "\n\n";

    // Show the 2-qubit PTM of the bare CNOT for reference.
    std::cout << "Ideal 2-qubit CNOT Pauli transfer matrix (rows/cols"
                 " over II, XI, YI, ZI, IX, ...):\n";
    Circuit c2(2);
    c2.cnot(0, 1);
    auto ptm2 = Tomography::ofCircuit(c2, 2);
    for (const auto& rowv : ptm2) {
        for (double v : rowv)
            std::printf("%5.1f", v);
        std::printf("\n");
    }

    std::cout << "\n=== Logical level: transversal CNOT on two d=3"
                 " patches ===\n";
    SurfaceLayout layout(3);
    const uint32_t n = static_cast<uint32_t>(layout.numData());
    Circuit logical(2 * n);
    for (uint32_t q = 0; q < n; ++q)
        logical.cnot(q, n + q);

    auto embed = [&](const PauliString& p, bool target) {
        PauliString out(2 * n);
        for (uint32_t q = 0; q < n; ++q)
            out.set(target ? n + q : q, p.get(q));
        return out;
    };
    struct Check
    {
        const char* name;
        PauliString in;
        PauliString expect;
    };
    PauliString xc = embed(layout.logicalX(), false);
    PauliString xt = embed(layout.logicalX(), true);
    PauliString zc = embed(layout.logicalZ(), false);
    PauliString zt = embed(layout.logicalZ(), true);
    PauliString xcxt = xc;
    xcxt *= xt;
    PauliString zczt = zc;
    zczt *= zt;
    std::vector<Check> checks{
        {"XC -> XC.XT", xc, xcxt},
        {"ZT -> ZC.ZT", zt, zczt},
        {"XT -> XT", xt, xt},
        {"ZC -> ZC", zc, zc},
    };
    bool allOk = true;
    for (auto& chk : checks) {
        PauliString p = chk.in;
        int sign = 1;
        PauliPropagator::conjugate(p, sign, logical);
        bool ok = (p == chk.expect) && sign == 1;
        allOk = allOk && ok;
        std::cout << "  " << chk.name << ": "
                  << (ok ? "verified" : "FAILED") << "\n";
    }
    std::cout << (allOk ? "\nTransversal CNOT implements the logical"
                          " CNOT exactly (phase +1).\n"
                        : "\nVerification FAILED.\n");
    return allOk ? 0 : 1;
}
