#!/usr/bin/env python3
"""Merge disjoint-shard Monte-Carlo checkpoint files.

Split-seed cluster runs shard one scan across machines by giving every
shard the same configuration but a different RNG seed: per-trial RNG
streams are derived from (seed, trial index), so shards with distinct
seeds sample disjoint trial streams and their per-point counts simply
add. This tool merges such shards into one combined checkpoint (for
reporting: summed trials and failures per point), after verifying that

  * every shard is a structurally valid `vlq-mc-checkpoint 1` file
    (version, fingerprint, end-marker intact),
  * all shards record the *same* configuration apart from the seed
    (same trial budget, batch, decoder, target, grid, ...), and
  * no two shards overlap: two files with the same seed cover the same
    trial range of every point (both start at trial 0), so merging
    them would double-count -- that is rejected, not summed.

The merged file records `seed=merged:<s1>,<s2>,...` and a fingerprint
recomputed over the merged summary; it is a reporting artifact, not a
resume point for further sampling.

Usage:
    merge_checkpoints.py --out merged.ckpt shard1.ckpt shard2.ckpt ...
"""

import argparse
import sys

MAGIC = "vlq-mc-checkpoint"
VERSION = 1


def fnv1a64(text):
    """FNV-1a 64-bit, matching src/mc/checkpoint.cc."""
    h = 0xCBF29CE484222325
    for byte in text.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class Shard:
    def __init__(self, path, summary, points):
        self.path = path
        self.summary = summary          # canonical config line
        self.fields = dict(
            token.split("=", 1) for token in summary.split()
            if "=" in token)
        self.points = points            # key -> (trials, failures, done)


def reject(path, why):
    sys.exit(f"{path}: rejected: {why}")


def load_shard(path):
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError as e:
        sys.exit(f"{path}: {e}")
    if not lines:
        reject(path, "empty file")

    head = lines[0].split()
    if len(head) != 2 or head[0] != MAGIC:
        reject(path, "not a vlq-mc-checkpoint file")
    if head[1] != str(VERSION):
        reject(path, f"unsupported format version {head[1]}")
    if len(lines) < 4:
        reject(path, "truncated file")

    fp = lines[1].split()
    if len(fp) != 2 or fp[0] != "fingerprint":
        reject(path, "malformed fingerprint line")
    if not lines[2].startswith("config "):
        reject(path, "malformed config line")
    summary = lines[2][len("config "):]
    if int(fp[1], 16) != fnv1a64(summary):
        reject(path, "fingerprint does not match config line "
                     "(corrupt or hand-edited file)")

    points = {}
    i = 3
    while i < len(lines) and not lines[i].startswith("end"):
        tokens = lines[i].split()
        if len(tokens) != 5 or tokens[0] != "point":
            reject(path, f"malformed line {i + 1}: {lines[i]!r}")
        key = tokens[1]

        def field(token, prefix):
            # Strict unsigned parse, matching the C++ loader: the
            # prefix must be present and the value all digits (no
            # sign, no junk) -- a corrupt "trials=-5" must not load.
            value = token[len(prefix):]
            if not token.startswith(prefix) or \
                    not (value.isascii() and value.isdigit()):
                reject(path, f"malformed point line {i + 1}")
            return int(token[len(prefix):])

        trials = field(tokens[2], "trials=")
        failures = field(tokens[3], "failures=")
        done = field(tokens[4], "done=")
        if key in points:
            reject(path, f"duplicate point key {key}")
        if failures > trials or done not in (0, 1):
            reject(path, f"corrupt counts on line {i + 1}")
        points[key] = (trials, failures, bool(done))
        i += 1
    if i >= len(lines):
        reject(path, "truncated file (no end marker)")
    end = lines[i].split()
    if len(end) != 2 or end[1] != str(len(points)):
        reject(path, "end marker count mismatch (file truncated?)")

    return Shard(path, summary, points)


def main():
    ap = argparse.ArgumentParser(
        description="Merge disjoint (split-seed) Monte-Carlo "
                    "checkpoint shards.")
    ap.add_argument("--out", required=True,
                    help="path for the merged checkpoint")
    ap.add_argument("shards", nargs="+", help="shard checkpoint files")
    args = ap.parse_args()

    shards = [load_shard(p) for p in args.shards]

    # Shards must agree on everything except the seed.
    base = shards[0]
    for shard in shards[1:]:
        base_rest = {k: v for k, v in base.fields.items() if k != "seed"}
        rest = {k: v for k, v in shard.fields.items() if k != "seed"}
        if base_rest != rest:
            diff = sorted(
                k for k in set(base_rest) | set(rest)
                if base_rest.get(k) != rest.get(k))
            sys.exit(f"{shard.path}: config mismatch vs {base.path} "
                     f"(differs in: {', '.join(diff)}) -- shards of "
                     f"different runs cannot be merged")

    # Overlap detection: every run samples each point's trials from 0,
    # so two shards with the same seed cover overlapping trial ranges.
    seen_seeds = {}
    for shard in shards:
        seed = shard.fields.get("seed", "?")
        if seed in seen_seeds:
            sys.exit(f"{shard.path}: overlaps {seen_seeds[seed]} -- "
                     f"both use seed={seed}, so their trial ranges "
                     f"overlap and merging would double-count")
        seen_seeds[seed] = shard.path

    merged = {}
    for shard in shards:
        for key, (trials, failures, done) in shard.points.items():
            t, f, d = merged.get(key, (0, 0, True))
            merged[key] = (t + trials, f + failures, d and done)

    seeds = ",".join(shard.fields.get("seed", "?") for shard in shards)
    summary_rest = " ".join(
        token for token in base.summary.split()
        if not token.startswith("seed="))
    summary = f"seed=merged:{seeds} {summary_rest}"

    out_lines = [f"{MAGIC} {VERSION}",
                 f"fingerprint {fnv1a64(summary):016x}",
                 f"config {summary}"]
    for key in sorted(merged):
        trials, failures, done = merged[key]
        out_lines.append(f"point {key} trials={trials} "
                         f"failures={failures} done={int(done)}")
    out_lines.append(f"end {len(merged)}")
    with open(args.out, "w") as fh:
        fh.write("\n".join(out_lines) + "\n")

    print(f"merged {len(shards)} shard(s), {len(merged)} point(s) "
          f"-> {args.out}")
    width = max(len(k) for k in merged)
    print(f"{'point key':{width}}  {'trials':>12}  {'failures':>10}  "
          f"rate")
    for key in sorted(merged):
        trials, failures, done = merged[key]
        rate = failures / trials if trials else 0.0
        flag = "" if done else "  (incomplete)"
        print(f"{key:{width}}  {trials:>12}  {failures:>10}  "
              f"{rate:.3e}{flag}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
