#!/usr/bin/env python3
"""Parallel clang-tidy runner with a checked-in baseline diff.

Runs the repository's curated `.clang-tidy` profile over every
first-party translation unit in a CMake compile_commands.json and
fails only on diagnostics that are NOT in tools/tidy-baseline.json.
That makes the gate incremental: enabling a new check (or upgrading
clang-tidy) never demands a flag-day cleanup -- the existing findings
are captured in the baseline with --update-baseline, CI holds the
line at "no new diagnostics", and the backlog burns down over time
(shrinking the baseline is always legal; growing it needs a reviewed
baseline update in the same PR).

Baseline matching is by (file, check, message), deliberately NOT by
line number: unrelated edits shift lines constantly, and a baseline
that rots on every edit would train people to rubber-stamp updates.
Duplicate findings are counted, so adding a second instance of an
already-baselined diagnostic still fails.

Usage:
    run_tidy.py --build <dir-with-compile_commands.json>
        [--baseline tools/tidy-baseline.json] [--update-baseline]
        [--jobs N] [--clang-tidy <binary>] [--require]

Exit status: 0 when clean against the baseline (or when clang-tidy
is not installed and --require was not given -- local trees build
with gcc only; the tidy toolchain lives in CI), 1 on new diagnostics
or tool failure.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

# One first-party source root per element; everything else in the
# compilation database (FetchContent deps, generated files) is not
# ours to lint.
FIRST_PARTY = ("src/", "tests/", "examples/", "bench/")

# clang-tidy diagnostic header: <file>:<line>:<col>: <level>: <msg>
# [<check>]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<level>warning|error):\s+(?P<message>.*?)\s+"
    r"\[(?P<check>[^\]\s]+)\]\s*$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path) as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot load {path}: {exc} "
                 f"(configure with the `tidy` preset, or any preset -- "
                 f"CMAKE_EXPORT_COMPILE_COMMANDS is always on)")
    root = repo_root()
    sources = []
    for entry in entries:
        source = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(source, root)
        if rel.startswith(FIRST_PARTY):
            sources.append(source)
    return sorted(set(sources))


def diag_key(file, check, message):
    """Baseline identity of one diagnostic (no line: see docstring)."""
    return f"{file}|{check}|{message}"


def parse_diagnostics(output, root):
    """(key, human-line) pairs from one clang-tidy invocation."""
    diags = []
    for line in output.splitlines():
        match = DIAG_RE.match(line)
        if not match:
            continue
        file = os.path.relpath(
            os.path.normpath(match.group("file")), root)
        if file.startswith(".."):
            continue  # diagnostic in a system/third-party header
        key = diag_key(file, match.group("check"),
                       match.group("message"))
        human = (f"{file}:{match.group('line')}: "
                 f"{match.group('message')} [{match.group('check')}]")
        diags.append((key, human))
    return diags


def run_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", source],
        capture_output=True, text=True)
    # clang-tidy exits non-zero on compile errors; those must surface,
    # not vanish as "no diagnostics".
    hard_error = proc.returncode != 0 and "error:" in proc.stderr \
        and not parse_diagnostics(proc.stdout, repo_root())
    return source, proc.stdout, proc.stderr if hard_error else ""


def main():
    ap = argparse.ArgumentParser(
        description="Run clang-tidy over first-party sources and "
                    "diff the diagnostics against a checked-in "
                    "baseline.")
    ap.add_argument("--build", required=True,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root(), "tools",
                                         "tidy-baseline.json"),
                    help="baseline JSON (default: "
                         "tools/tidy-baseline.json)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current "
                         "findings instead of failing on them")
    ap.add_argument("--jobs", type=int,
                    default=os.cpu_count() or 1, metavar="N",
                    help="parallel clang-tidy processes")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy binary to use")
    ap.add_argument("--require", action="store_true",
                    help="fail when clang-tidy is not installed "
                         "(CI sets this; local gcc-only trees skip)")
    args = ap.parse_args()

    if shutil.which(args.clang_tidy) is None:
        message = (f"{args.clang_tidy} not found -- the tidy gate "
                   f"runs in CI; install clang-tidy to run locally")
        if args.require:
            sys.exit(f"error: {message}")
        print(f"SKIPPED: {message}")
        return 0

    sources = load_compile_commands(args.build)
    if not sources:
        sys.exit("error: compile_commands.json lists no first-party "
                 "sources")

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh).get("diagnostics", {})
    except FileNotFoundError:
        baseline = {}
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot load baseline {args.baseline}: {exc}")

    root = repo_root()
    counts = {}     # key -> occurrences seen this run
    humans = {}     # key -> first human-readable line
    failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, args.clang_tidy, args.build,
                               source) for source in sources]
        for future in concurrent.futures.as_completed(futures):
            source, stdout, hard_error = future.result()
            if hard_error:
                failures.append(f"{os.path.relpath(source, root)}: "
                                f"clang-tidy failed:\n{hard_error}")
                continue
            for key, human in parse_diagnostics(stdout, root):
                counts[key] = counts.get(key, 0) + 1
                humans.setdefault(key, human)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if args.update_baseline:
        payload = {
            "comment": "clang-tidy baseline: known findings the gate "
                       "tolerates. Shrinking this file is always "
                       "welcome; growing it requires review. "
                       "Regenerate with run_tidy.py "
                       "--update-baseline.",
            "diagnostics": {key: counts[key] for key in sorted(counts)},
        }
        with open(args.baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"baseline updated: {len(counts)} diagnostic(s) over "
              f"{len(sources)} file(s)")
        return 0

    new = []
    for key in sorted(counts):
        extra = counts[key] - baseline.get(key, 0)
        if extra > 0:
            suffix = f" (x{extra} new)" if extra > 1 else ""
            new.append(f"{humans[key]}{suffix}")
    fixed = sorted(key for key in baseline if key not in counts)

    if new:
        for line in new:
            print(f"NEW: {line}")
        print(f"{len(new)} new clang-tidy diagnostic(s) not in "
              f"{os.path.relpath(args.baseline, root)} -- fix them, "
              f"or (with reviewer sign-off) --update-baseline")
        return 1
    print(f"OK: {len(sources)} file(s), {sum(counts.values())} "
          f"baselined diagnostic(s), 0 new"
          + (f", {len(fixed)} fixed (baseline can shrink)"
             if fixed else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
