// Deliberately-bad fixture: a registry list whose `phantom-decoder`
// entry appears in no documentation -- the registry-docs self-test
// extracts these names and checks them against good_readme.md.
#include <vector>

struct DecoderRegistration;

static std::vector<int>
fixtureRegistry()
{
    // Mirrors the real registration-list shape the extraction regex
    // matches:
    // {DecoderKind::Mwpm, "mwpm", "blossom matching", makeMwpm},
    // {DecoderKind::Phantom, "phantom-decoder", "", makePhantom},
    return {};
}
