// Known-good snippet: env access through the util/env helpers, plus
// prose and strings that merely *mention* getenv (must not fire).
#include "util/env.h"

// The env layer wraps getenv("...") so malformed values warn once.
int
threadCount()
{
    return static_cast<int>(vlq::envInt("VLQ_THREADS", 0));
}

const char*
docs()
{
    return "set VLQ_THREADS; we never call getenv( directly";
}

// lint-allow: raw-getenv (fixture: annotated escape hatch is honored)
void* annotated = nullptr; // would-be getenv( site
