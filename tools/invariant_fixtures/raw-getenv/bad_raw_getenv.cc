// Deliberately-bad snippet: raw environment access outside
// src/util/env.cc must fire [raw-getenv].
#include <cstdlib>

int
threadCount()
{
    const char* value = std::getenv("VLQ_THREADS");
    return value ? atoi(value) : 0;
}

void
forceBackend()
{
    setenv("VLQ_COMPUTE", "simd", 1);
}
