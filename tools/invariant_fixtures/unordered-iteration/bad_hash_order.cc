// Deliberately-bad snippet: loops over unordered containers without
// an annotation must fire [unordered-iteration].
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

void
dumpCounts(const std::unordered_map<int, long>& counts)
{
    std::unordered_map<int, long> local = counts;
    for (const auto& [key, value] : local)
        std::printf("%d,%ld\n", key, value); // hash-order CSV!
}

long
sumViaIterators()
{
    std::unordered_set<long> seen;
    long total = 0;
    for (auto it = seen.begin(); it != seen.end(); ++it)
        total += *it;
    return total;
}
