// Known-good snippet: ordered containers, lookups into unordered
// ones, and an annotated order-free reduction -- none may fire.
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

long
lookupOnly(const std::unordered_map<int, long>& cache, int key)
{
    auto it = cache.find(key); // point lookup, no iteration
    return it == cache.end() ? 0 : it->second;
}

long
sortedDump(const std::unordered_map<int, long>& counts)
{
    // Copy into an ordered map before anything order-sensitive.
    std::map<int, long> sorted(counts.begin(), counts.end());
    long total = 0;
    for (const auto& [key, value] : sorted)
        total += key + value;
    return total;
}

long
annotatedReduction(const std::unordered_map<int, long>& counts)
{
    long total = 0;
    // lint-allow: unordered-iteration (commutative sum; order-free)
    for (const auto& [key, value] : counts)
        total += value;
    return total + static_cast<long>(counts.size());
}
