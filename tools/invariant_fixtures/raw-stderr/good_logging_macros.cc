// Known-good snippet: the logging macros, stdout tables, and prose
// about fprintf(stderr, ...) -- none may fire.
#include <cstdio>

#include "util/logging.h"

void
warnProperly(int shots)
{
    if (shots < 0)
        VLQ_WARN_ONCE("negative shot count clamped");
    // Writing *stdout* is the CLIs' result channel, not logging:
    std::fprintf(stdout, "shots=%d\n", shots);
    std::printf("done\n");
}

const char*
prose()
{
    // A comment describing fprintf(stderr, "...") must not fire, and
    // neither must this string literal:
    return "never call fprintf(stderr, ...) in library code";
}
