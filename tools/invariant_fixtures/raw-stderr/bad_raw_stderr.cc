// Deliberately-bad snippet: raw stderr writes in library code must
// fire [raw-stderr].
#include <cstdio>

void
warnDirectly(int shots)
{
    std::fprintf(stderr, "suspicious shot count %d\n", shots);
    fputs("second channel\n", stderr);
}
