// Known-good snippet: seeded RNG streams and chrono clocks (the
// heartbeat path) -- none of these may fire.
#include <chrono>
#include <cstdint>

// Comment prose: relaxation time (ns) and rand() discussion is fine.
uint64_t
trialStream(uint64_t seed, uint64_t trial)
{
    // splitmix-style derivation: entropy comes from the run seed.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (trial + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 27);
}

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// Identifiers merely containing the tokens must not fire either.
int runtime_ = 0;
int
run_time(int x)
{
    return x + runtime_;
}
