// Deliberately-bad snippet: libc entropy / wall-clock seeding must
// fire [wallclock-entropy].
#include <cstdlib>
#include <ctime>
#include <random>

unsigned
badSeed()
{
    srand(static_cast<unsigned>(time(nullptr)));
    return static_cast<unsigned>(rand());
}

std::mt19937
badEngine()
{
    std::random_device entropy;
    return std::mt19937(entropy());
}
