#!/usr/bin/env python3
"""Project-invariant linter: repo-specific rules grep can't state.

clang-tidy and -Werror police general C++; this tool polices the
contracts this codebase defines for itself -- the ones a reviewer has
to remember today. Each rule names the invariant, the files it
covers, and the escape hatch. Comments and string literals are
stripped before matching, so prose about `fprintf` never fires.

Rules (run `--list` for this table, `--self-test` to prove each rule
fires on its fixture corpus under tools/invariant_fixtures/):

  raw-getenv           Environment access goes through src/util/env
                       helpers (envInt/envString/...), which warn once
                       on malformed values and centralize every knob.
                       Raw getenv/setenv anywhere else in src/ skips
                       that contract. Allowed file: src/util/env.cc.

  wallclock-entropy    src/ never calls rand()/srand()/time() or
                       touches std::random_device: every sampled bit
                       must come from the seeded RNG layer
                       (util/rng.h) or determinism -- bit-identical
                       resume, backend equivalence, CI reproducibility
                       -- silently dies. Wall-clock *reading* for
                       heartbeats uses std::chrono clocks, which the
                       rule does not match.

  unordered-iteration  Iterating an unordered_{map,set} yields a
                       hash-order -- libc++ vs libstdc++ vs seed-
                       dependent -- so any loop over one is one
                       refactor away from nondeterministic serialized
                       output (CSV rows, JSON fields, checkpoint
                       lines are all sorted by contract). Loops over
                       unordered containers therefore need an
                       explicit `lint-allow: unordered-iteration
                       (<why order cannot leak>)` annotation.

  raw-stderr           Library code (src/) reports through VLQ_WARN /
                       VLQ_WARN_ONCE / VLQ_FATAL / VLQ_PANIC
                       (util/logging.h): prefixed, single-write (no
                       cross-thread interleaving), and rate-limited
                       where it matters. Raw fprintf/fputs-to-stderr
                       bypasses all three. Allowed files:
                       src/util/logging.h (the implementation),
                       src/util/env.cc (CLI usage/arg-error printing,
                       which is user dialogue, not library logging).

  registry-docs        Every name registered in the decoder /
                       embedding / compute registries must appear in
                       README.md and docs/job-protocol.md, and -- when
                       --help-bin points at built binaries -- in some
                       binary's --help output. Registries grow by
                       editing a .cc list; nothing else forces the
                       docs to follow.

Escape hatch: a `lint-allow: <rule> (<reason>)` comment on the
flagged line or the line above suppresses that finding. The reason is
mandatory -- an allow without one is itself a finding.

Usage:
    check_invariants.py [--root DIR] [--help-bin BIN]...
    check_invariants.py --self-test
    check_invariants.py --list

Exit status: 0 clean, 1 with one line per finding.
"""

import argparse
import os
import re
import subprocess
import sys

ALLOW_RE = re.compile(
    r"lint-allow:\s*(?P<rule>[a-z-]+)\s*(?P<reason>\([^)]+\))?")

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

REGISTRY_SOURCES = (
    "src/decoder/decoder_factory.cc",
    "src/core/generator_registry.cc",
    "src/compute/compute_registry.cc",
)
REGISTRY_NAME_RE = re.compile(
    r"\{(?:DecoderKind|EmbeddingKind|ComputeKind)::\w+,\s*\n?\s*"
    r"\"(?P<name>[^\"]+)\"")
REGISTRY_DOC_TARGETS = ("README.md", "docs/job-protocol.md")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def strip_code(text):
    """Blank out comments and string/char literal contents, keeping
    line structure so finding line numbers stay true."""
    out = []
    i = 0
    n = len(text)
    mode = "code"  # code | line-comment | block-comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
            elif c == "'":
                mode = "chr"
            out.append(c)
        elif mode == "line-comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block-comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class File:
    """One source file: raw lines (for allows), stripped lines (for
    matching), and repo-relative path."""

    def __init__(self, rel, text):
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.lines = strip_code(text).splitlines()

    def allows(self, rule, lineno):
        """lint-allow on the flagged line or the line above. Returns
        (allowed, problem): an allow without a (reason) is reported
        instead of honored."""
        for at in (lineno, lineno - 1):
            if 1 <= at <= len(self.raw_lines):
                match = ALLOW_RE.search(self.raw_lines[at - 1])
                if match and match.group("rule") == rule:
                    if not match.group("reason"):
                        return True, (f"{self.rel}:{at}: lint-allow: "
                                      f"{rule} without a (reason)")
                    return True, None
        return False, None


def findings_for_pattern(files, rule, pattern, allowed_files,
                         message):
    regex = re.compile(pattern)
    findings = []
    for file in files:
        if file.rel in allowed_files:
            continue
        for lineno, line in enumerate(file.lines, start=1):
            if not regex.search(line):
                continue
            allowed, problem = file.allows(rule, lineno)
            if allowed:
                if problem:
                    findings.append(problem)
                continue
            findings.append(f"{file.rel}:{lineno}: {message}")
    return findings


def check_raw_getenv(files, _root, _help_bins):
    return findings_for_pattern(
        files, "raw-getenv",
        r"\b(?:secure_getenv|getenv|setenv|putenv|unsetenv)\s*\(",
        {"src/util/env.cc"},
        "raw environment access -- use the src/util/env helpers "
        "(envInt/envString/envLower), which warn on malformed values "
        "[raw-getenv]")


def check_wallclock_entropy(files, _root, _help_bins):
    return findings_for_pattern(
        files, "wallclock-entropy",
        r"\b(?:rand|srand)\s*\(|\btime\s*\(|\brandom_device\b",
        set(),
        "wall-clock or libc entropy -- all randomness must come from "
        "the seeded RNG layer (util/rng.h) or determinism breaks "
        "[wallclock-entropy]")


# Variables (locals, members, reference/pointer parameters) declared
# with an unordered container type in the same file.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{]*?>\s*[&*]?\s*"
    r"(?P<var>\w+)\s*[;{=,()]")
# A loop that walks one: range-for over the variable (possibly via
# obj.member), or an iterator for-loop calling begin()/cbegin() on it.
# Point lookups (find/count) and copy-into-sorted constructions
# (std::map sorted(c.begin(), c.end())) deliberately do not match.
LOOP_TEMPLATE = (r"for\s*\([^)]*:\s*(?:\w+(?:\.|->))*{var}\b"
                 r"|for\s*\([^)]*\b{var}\s*(?:\.|->)\s*"
                 r"(?:begin|cbegin)\s*\(")


def check_unordered_iteration(files, _root, _help_bins):
    findings = []
    for file in files:
        variables = set()
        for line in file.lines:
            for match in UNORDERED_DECL_RE.finditer(line):
                variables.add(match.group("var"))
        if not variables:
            continue
        loop_re = re.compile("|".join(
            LOOP_TEMPLATE.format(var=re.escape(var))
            for var in sorted(variables)))
        for lineno, line in enumerate(file.lines, start=1):
            if not loop_re.search(line):
                continue
            allowed, problem = file.allows("unordered-iteration",
                                           lineno)
            if allowed:
                if problem:
                    findings.append(problem)
                continue
            findings.append(
                f"{file.rel}:{lineno}: iteration over an unordered "
                f"container -- hash order must never feed serialized "
                f"output; sort first, or annotate why order cannot "
                f"leak [unordered-iteration]")
    return findings


def check_raw_stderr(files, _root, _help_bins):
    return findings_for_pattern(
        files, "raw-stderr",
        r"\bfprintf\s*\(\s*stderr\b|\bfputs\s*\([^;]*,\s*stderr\s*\)",
        {"src/util/logging.h", "src/util/env.cc"},
        "raw stderr write in library code -- use VLQ_WARN / "
        "VLQ_WARN_ONCE (or VLQ_FATAL/VLQ_PANIC for unrecoverable "
        "states) from util/logging.h [raw-stderr]")


def registry_names(root):
    names = []
    for rel in REGISTRY_SOURCES:
        try:
            with open(os.path.join(root, rel)) as fh:
                text = fh.read()
        except OSError as exc:
            return None, f"{rel}: unreadable registry source ({exc})"
        found = [m.group("name")
                 for m in REGISTRY_NAME_RE.finditer(text)]
        if not found:
            return None, (f"{rel}: no registry names matched -- the "
                          f"registration list moved; update "
                          f"check_invariants.py")
        names.extend((rel, name) for name in found)
    return names, None


def check_registry_docs(_files, root, help_bins):
    names, problem = registry_names(root)
    if problem:
        return [problem]
    findings = []
    docs = {}
    for rel in REGISTRY_DOC_TARGETS:
        try:
            with open(os.path.join(root, rel)) as fh:
                docs[rel] = fh.read()
        except OSError as exc:
            findings.append(f"{rel}: unreadable ({exc})")
    for rel, text in docs.items():
        for source, name in names:
            if name not in text:
                findings.append(
                    f"{rel}: registered name '{name}' (from {source}) "
                    f"is undocumented here [registry-docs]")
    if help_bins:
        combined = ""
        for binary in help_bins:
            try:
                proc = subprocess.run([binary, "--help"],
                                      capture_output=True, text=True,
                                      timeout=30)
            except (OSError, subprocess.TimeoutExpired) as exc:
                findings.append(f"{binary}: failed to run --help "
                                f"({exc}) [registry-docs]")
                continue
            combined += proc.stdout + proc.stderr
        for source, name in names:
            if name not in combined:
                findings.append(
                    f"--help output: registered name '{name}' (from "
                    f"{source}) appears in no binary's help text "
                    f"[registry-docs]")
    return findings


RULES = [
    ("raw-getenv", check_raw_getenv),
    ("wallclock-entropy", check_wallclock_entropy),
    ("unordered-iteration", check_unordered_iteration),
    ("raw-stderr", check_raw_stderr),
    ("registry-docs", check_registry_docs),
]


def load_sources(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for filename in sorted(filenames):
            if not filename.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path) as fh:
                files.append(File(rel, fh.read()))
    files.sort(key=lambda file: file.rel)
    return files


def self_test(root):
    """Prove every rule fires on its bad fixtures and stays silent on
    its good ones. Fixture naming contract:
    tools/invariant_fixtures/<rule>/{bad,good}*.cc -- each bad file
    must produce >= 1 finding for exactly its rule, each good file
    zero findings."""
    fixtures = os.path.join(root, "tools", "invariant_fixtures")
    problems = []
    covered = set()
    code_rules = {name: fn for name, fn in RULES
                  if name != "registry-docs"}
    for rule, fn in sorted(code_rules.items()):
        rule_dir = os.path.join(fixtures, rule)
        cases = sorted(os.listdir(rule_dir)) \
            if os.path.isdir(rule_dir) else []
        if not any(case.startswith("bad") for case in cases) \
                or not any(case.startswith("good") for case in cases):
            problems.append(f"{rule}: fixture corpus must contain at "
                            f"least one bad* and one good* file")
            continue
        covered.add(rule)
        for case in cases:
            path = os.path.join(rule_dir, case)
            with open(path) as fh:
                # Fixtures pose as files in src/ so allowlists (which
                # name real files) never exempt them.
                file = File(f"src/fixture/{rule}/{case}", fh.read())
            findings = fn([file], root, [])
            rel = os.path.relpath(path, root)
            if case.startswith("bad") and not findings:
                problems.append(f"{rel}: expected the {rule} rule to "
                                f"fire; it stayed silent")
            if case.startswith("good") and findings:
                problems.append(f"{rel}: expected no findings, got: "
                                f"{findings[0]}")
    # registry-docs self-test: a registry list naming an undocumented
    # backend must fire against fixture docs.
    reg_dir = os.path.join(fixtures, "registry-docs")
    sample = os.path.join(reg_dir, "bad_registry.cc")
    try:
        with open(sample) as fh:
            text = fh.read()
        names = [m.group("name")
                 for m in REGISTRY_NAME_RE.finditer(text)]
        with open(os.path.join(reg_dir, "good_readme.md")) as fh:
            readme = fh.read()
        undocumented = [name for name in names if name not in readme]
        if not names:
            problems.append("registry-docs: bad_registry.cc fixture "
                            "matched no names; the extraction regex "
                            "rotted")
        elif not undocumented:
            problems.append("registry-docs: fixture corpus no longer "
                            "contains an undocumented name")
        else:
            covered.add("registry-docs")
    except OSError as exc:
        problems.append(f"registry-docs fixtures unreadable: {exc}")

    missing = {name for name, _fn in RULES} - covered
    for rule in sorted(missing):
        problems.append(f"{rule}: no passing self-test coverage")
    if problems:
        for problem in problems:
            print(f"SELF-TEST FAIL: {problem}")
        return 1
    print(f"self-test OK: {len(RULES)} rule(s) fire on bad fixtures "
          f"and stay silent on good ones")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Lint repo-specific invariants: env access, "
                    "entropy sources, unordered-container iteration, "
                    "stderr discipline, registry/doc sync.")
    ap.add_argument("--root", default=repo_root(),
                    help="repository root (default: the checkout "
                         "containing this tool)")
    ap.add_argument("--help-bin", action="append", default=[],
                    metavar="BIN",
                    help="built binary whose --help must mention "
                         "every registry name (repeatable; CI passes "
                         "the scan CLIs after the build step)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules against the fixture corpus "
                         "instead of the tree")
    ap.add_argument("--list", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args()

    if args.list:
        print(__doc__)
        return 0
    if args.self_test:
        return self_test(args.root)

    files = load_sources(args.root)
    if not files:
        sys.exit(f"error: no sources under {args.root}/src")
    findings = []
    for _name, fn in RULES:
        findings.extend(fn(files, args.root, args.help_bin))

    if findings:
        for finding in findings:
            print(f"FAIL: {finding}")
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print(f"OK: {len(files)} source file(s), {len(RULES)} rule(s), "
          f"0 violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
