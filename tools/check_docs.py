#!/usr/bin/env python3
"""Doc-rot linter for the repository's markdown set.

Two checks, both aimed at the failure mode where code moves on and the
docs silently keep describing the old world:

 1. Every relative markdown link resolves: `[text](path)` targets
    (after stripping any #fragment) must exist on disk, relative to
    the file that links them. External links (http/https/mailto) are
    skipped -- CI must not depend on the network.

 2. Every documented CLI flag exists: each `--flag` token mentioned in
    the docs must appear in the --help/usage output of at least one of
    the binaries or tools passed via --bin. Binaries are run with
    --help and the exit status ignored (several print usage with a
    non-zero status); .py tools run under this interpreter.

Usage:
    check_docs.py README.md docs/*.md --bin build/examples/scan_server
        [--bin ...]

Exit status: 0 when all links resolve and all flags exist, 1 otherwise
with one line per problem.
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]+")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def help_output(binary):
    """The --help/usage text of one binary (stdout+stderr, exit status
    ignored)."""
    cmd = [binary, "--help"]
    if binary.endswith(".py"):
        cmd = [sys.executable] + cmd
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=30)
    except (OSError, subprocess.TimeoutExpired) as exc:
        return None, f"{binary}: failed to run --help: {exc}"
    return proc.stdout + proc.stderr, None


def check_links(problems, path, text):
    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_SCHEMES):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue  # intra-document #anchor
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(f"{path}:{lineno}: broken link "
                                f"'{target}' (resolved: {resolved})")


def main():
    ap = argparse.ArgumentParser(
        description="Check that markdown relative links resolve and "
                    "every documented --flag exists in some binary's "
                    "--help output.")
    ap.add_argument("docs", nargs="+", help="markdown files to check")
    ap.add_argument("--bin", action="append", default=[],
                    metavar="PATH",
                    help="binary or .py tool whose --help output "
                         "defines real flags (repeatable)")
    args = ap.parse_args()

    problems = []

    # Union of real flags across all provided binaries. --help itself
    # is seeded: it is the one flag usage text conventionally omits.
    known_flags = {"--help"}
    for binary in args.bin:
        out, err = help_output(binary)
        if err:
            problems.append(err)
            continue
        found = set(FLAG_RE.findall(out))
        if not found:
            problems.append(f"{binary}: --help output mentions no "
                            f"flags (is this the right binary?)")
        known_flags |= found

    for path in args.docs:
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            problems.append(f"{path}: {exc}")
            continue
        check_links(problems, path, text)
        if args.bin:
            for lineno, line in enumerate(text.splitlines(), start=1):
                for flag in FLAG_RE.findall(line):
                    if flag not in known_flags:
                        problems.append(
                            f"{path}:{lineno}: documented flag "
                            f"'{flag}' not in any --bin's --help "
                            f"output")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        print(f"{len(problems)} problem(s)")
        return 1
    print(f"OK: {len(args.docs)} doc(s), {len(known_flags)} known "
          f"flag(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
