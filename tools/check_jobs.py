#!/usr/bin/env python3
"""Validator for vlq-scan-job/1 event streams (scan_server --events).

Checks the guarantees docs/job-protocol.md declares normative, not the
values: every line is one JSON object carrying the schema tag, seq is
strictly increasing and t non-decreasing within a session, each job's
events follow the lifecycle state machine (queued -> requeued* ->
started/resumed -> progress*/point_done* -> preempted/resumed cycles
-> done|error|cancelled),
a `cancelled` event is terminal and only legal from a live state,
and the job-level trials_done counter is monotone -- including ACROSS
sessions, which is how CI turns "SIGKILL the server, rerun, resume"
into a checkable property. Pass the per-session event files in the
order the sessions ran; cross-file checks also pin the replay rules
(a point finished in an earlier session must replay as cached:true
with identical counts).

Usage:
    check_jobs.py events1.jsonl [events2.jsonl ...]
        [--require-done ID]...  [--require-jobs N]
        [--require-preemption] [--require-cached-replay]

Exit status: 0 when every stream validates, 1 otherwise with one line
per problem.
"""

import argparse
import json
import sys

SCHEMA = "vlq-scan-job/1"
EVENTS = {"queued", "started", "resumed", "progress", "point_done",
          "preempted", "requeued", "cancelled", "done", "error"}
TERMINAL = {"done", "error", "cancelled"}
# Legal (previous state -> event) transitions within one session.
# State None = job unseen this session.
RUNNING_EVENTS = {"progress", "point_done", "preempted", "done"}
# States in which the job is waiting in the queue: a `requeue` request
# may rotate it (non-terminal 'requeued'), and work may begin from it.
# 'preempted' counts because a preempted job is silently pushed back
# (no second 'queued' line).
WAITING = {"queued", "requeued", "preempted"}
# 'cancelled' is terminal from any live state: queued (removed before
# running), any running state (preempted at a batch boundary), or
# preempted/requeued (cancelled while waiting in the queue).
CANCELLABLE = {"queued", "started", "resumed", "progress",
               "point_done", "preempted", "requeued"}


class Checker:
    def __init__(self):
        self.problems = []

    def fail(self, msg):
        self.problems.append(msg)

    def check(self, cond, msg):
        if not cond:
            self.fail(msg)
        return cond


class JobHistory:
    """Cross-session memory of one job id."""

    def __init__(self):
        self.trials_done = 0          # high-water mark
        self.point_counts = {}        # point index -> (trials, failures)
        self.done_points = set()      # finished in an earlier session
        self.last_event = None        # final event overall


def check_line(ck, ctx, obj):
    """Envelope fields every event must carry."""
    ok = True
    for key, types in (("schema", str), ("seq", int), ("t", (int, float)),
                       ("event", str), ("job", str)):
        if not ck.check(key in obj, f"{ctx}: missing key '{key}'"):
            ok = False
            continue
        if not ck.check(isinstance(obj[key], types)
                        and not isinstance(obj[key], bool),
                        f"{ctx}.{key}: wrong type "
                        f"{type(obj[key]).__name__}"):
            ok = False
    if ok:
        ck.check(obj["schema"] == SCHEMA,
                 f"{ctx}.schema: expected {SCHEMA!r}, got "
                 f"{obj['schema']!r}")
        ck.check(obj["event"] in EVENTS,
                 f"{ctx}.event: unknown event {obj['event']!r}")
        ck.check(obj["t"] >= 0, f"{ctx}.t: negative timestamp")
    return ok


def job_trials_done(obj):
    """The job-level cumulative counter, where the event carries one."""
    if obj["event"] in ("progress", "preempted"):
        return obj.get("trials_done")
    if obj["event"] == "done":
        return obj.get("trials")
    return None


def check_transition(ck, ctx, state, event):
    """One step of the per-session lifecycle machine."""
    job_states = state  # session-local: job id -> last event
    if event == "queued":
        ck.check(job_states.get(ctx.job) is None,
                 f"{ctx}: 'queued' after {job_states.get(ctx.job)!r}")
    elif event == "started":
        # Requeue after preemption emits no second 'queued', so a
        # preempted job comes back with 'resumed', never 'started'.
        ck.check(job_states.get(ctx.job) in ("queued", "requeued"),
                 f"{ctx}: 'started' after "
                 f"{job_states.get(ctx.job)!r} (expected after "
                 f"'queued' or 'requeued')")
    elif event == "resumed":
        ck.check(job_states.get(ctx.job) in WAITING,
                 f"{ctx}: 'resumed' after "
                 f"{job_states.get(ctx.job)!r} (expected after "
                 f"'queued', 'requeued' or 'preempted')")
    elif event == "requeued":
        ck.check(job_states.get(ctx.job) in WAITING,
                 f"{ctx}: 'requeued' while job is "
                 f"{job_states.get(ctx.job)!r}, not waiting in the "
                 f"queue")
    elif event in RUNNING_EVENTS:
        ck.check(job_states.get(ctx.job) in
                 ("started", "resumed", "progress", "point_done"),
                 f"{ctx}: {event!r} while job is "
                 f"{job_states.get(ctx.job)!r}, not running")
    elif event == "cancelled":
        ck.check(job_states.get(ctx.job) in CANCELLABLE,
                 f"{ctx}: 'cancelled' while job is "
                 f"{job_states.get(ctx.job)!r}, not live")
    elif event == "error":
        # Terminal at any time: rejected submissions error before
        # 'queued', checkpoint mismatches error after it.
        ck.check(job_states.get(ctx.job) not in TERMINAL,
                 f"{ctx}: 'error' after a terminal event")
    if job_states.get(ctx.job) in TERMINAL:
        ck.check(event in (),  # any event after terminal is a problem
                 f"{ctx}: {event!r} after terminal "
                 f"{job_states.get(ctx.job)!r}")
    job_states[ctx.job] = event


class Ctx:
    """Problem-message context: file, line number, job id."""

    def __init__(self, path, lineno, job):
        self.path = path
        self.lineno = lineno
        self.job = job

    def __str__(self):
        who = f" job '{self.job}'" if self.job else ""
        return f"{self.path}:{self.lineno}{who}"

    def __getattr__(self, name):
        raise AttributeError(name)


def check_file(ck, path, history, session_index):
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        ck.fail(f"{path}: {exc}")
        return

    prev_seq = 0
    prev_t = 0.0
    session_state = {}        # job -> last event this session
    session_started = set()   # jobs that emitted started/resumed
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            # Only the final line may be clipped by a kill; an interior
            # blank line means the stream was corrupted.
            ck.check(lineno == len(lines),
                     f"{path}:{lineno}: interior blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            # A SIGKILL may clip the last line mid-write; that is part
            # of the contract ("at most the final line"), not an error.
            ck.check(lineno == len(lines),
                     f"{path}:{lineno}: malformed JSON ({exc})")
            continue
        ctx = Ctx(path, lineno, obj.get("job", ""))
        if not check_line(ck, ctx, obj):
            continue
        ck.check(obj["seq"] > prev_seq,
                 f"{ctx}: seq {obj['seq']} not > previous {prev_seq}")
        ck.check(obj["t"] >= prev_t,
                 f"{ctx}: t {obj['t']} went backwards from {prev_t}")
        prev_seq = max(prev_seq, obj["seq"])
        prev_t = max(prev_t, obj["t"])

        event = obj["event"]
        job = obj["job"]
        if not job:
            # Unparseable submission: only a bad_request error may
            # have an empty job id.
            ck.check(event == "error",
                     f"{ctx}: event {event!r} with empty job id")
            continue
        check_transition(ck, ctx, session_state, event)
        hist = history.setdefault(job, JobHistory())
        hist.last_event = event
        if event in ("started", "resumed"):
            # A restart or preemption must resume, never restart.
            if session_index > 0 and hist.done_points \
                    and job not in session_started:
                ck.check(event == "resumed",
                         f"{ctx}: job with prior checkpoint state "
                         f"emitted 'started', expected 'resumed'")
            session_started.add(job)

        trials = job_trials_done(obj)
        if trials is not None:
            if isinstance(trials, int):
                ck.check(trials >= hist.trials_done,
                         f"{ctx}: trials_done {trials} < high-water "
                         f"{hist.trials_done} (monotonicity broken)")
                hist.trials_done = max(hist.trials_done, trials)
            else:
                ck.fail(f"{ctx}: trials_done is not an integer")

        if event == "progress":
            for key in ("point", "d", "p", "basis", "point_trials_done",
                        "point_failures", "point_trials_budget",
                        "trials_budget"):
                ck.check(key in obj, f"{ctx}: progress missing '{key}'")
        elif event == "point_done":
            missing = [key for key in ("point", "d", "p", "basis",
                                       "trials", "failures", "cached")
                       if key not in obj]
            if missing:
                ck.fail(f"{ctx}: point_done missing {missing}")
                continue
            point = obj["point"]
            counts = (obj["trials"], obj["failures"])
            if point in hist.point_counts:
                ck.check(hist.point_counts[point] == counts,
                         f"{ctx}: point {point} counts {counts} differ "
                         f"from earlier {hist.point_counts[point]} "
                         f"(resume not bit-identical)")
            hist.point_counts[point] = counts
            if point in hist.done_points:
                ck.check(obj["cached"] is True,
                         f"{ctx}: replay of finished point {point} "
                         f"not marked cached")
            else:
                ck.check(obj["cached"] is False,
                         f"{ctx}: first completion of point {point} "
                         f"marked cached")
        elif event == "preempted":
            ck.check(obj.get("reason") in
                     ("priority", "quantum", "shutdown"),
                     f"{ctx}: bad preempted reason "
                     f"{obj.get('reason')!r}")
        elif event == "requeued":
            ck.check(isinstance(obj.get("queue_depth"), int)
                     and not isinstance(obj.get("queue_depth"), bool)
                     and obj["queue_depth"] >= 1,
                     f"{ctx}: requeued without a positive queue_depth")
        elif event == "cancelled":
            ck.check(obj.get("stage") in ("queued", "running"),
                     f"{ctx}: bad cancelled stage "
                     f"{obj.get('stage')!r}")
        elif event == "error":
            ck.check(isinstance(obj.get("code"), str) and obj["code"],
                     f"{ctx}: error without a code")
            ck.check(isinstance(obj.get("message"), str)
                     and obj["message"],
                     f"{ctx}: error without a message")

    # Every point with a point_done so far replays as cached:true in
    # later sessions (its counts live in the job's checkpoint).
    for hist in history.values():
        hist.done_points = set(hist.point_counts)


def main():
    ap = argparse.ArgumentParser(
        description="Validate vlq-scan-job/1 event streams: schema, "
                    "seq/t ordering, per-job lifecycle, and cross-"
                    "session monotonicity + cached-replay rules.")
    ap.add_argument("events", nargs="+",
                    help="event files, one per server session, in the "
                         "order the sessions ran")
    ap.add_argument("--require-done", action="append", default=[],
                    metavar="ID",
                    help="fail unless this job's final event is 'done' "
                         "(repeatable)")
    ap.add_argument("--require-jobs", type=int, default=0, metavar="N",
                    help="minimum number of distinct job ids")
    ap.add_argument("--require-preemption", action="store_true",
                    help="fail unless at least one 'preempted' event "
                         "occurred")
    ap.add_argument("--require-cached-replay", action="store_true",
                    help="fail unless at least one cached point_done "
                         "replay occurred (proves a resume happened)")
    args = ap.parse_args()

    ck = Checker()
    history = {}
    for i, path in enumerate(args.events):
        check_file(ck, path, history, i)

    preemptions = 0
    cached = 0
    for path in args.events:
        try:
            with open(path) as fh:
                for line in fh:
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if obj.get("event") == "preempted":
                        preemptions += 1
                    if obj.get("event") == "point_done" \
                            and obj.get("cached") is True:
                        cached += 1
        except OSError:
            pass

    ck.check(len(history) >= args.require_jobs,
             f"expected at least {args.require_jobs} jobs, saw "
             f"{len(history)}")
    for job in args.require_done:
        hist = history.get(job)
        ck.check(hist is not None and hist.last_event == "done",
                 f"job '{job}': expected final event 'done', got "
                 f"{hist.last_event if hist else None!r}")
    if args.require_preemption:
        ck.check(preemptions > 0, "expected at least one preemption")
    if args.require_cached_replay:
        ck.check(cached > 0, "expected at least one cached replay")

    if ck.problems:
        for problem in ck.problems:
            print(f"FAIL: {problem}")
        print(f"{len(ck.problems)} problem(s)")
        return 1
    print(f"OK: {len(args.events)} stream(s), {len(history)} job(s), "
          f"{preemptions} preemption(s), {cached} cached replay(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
