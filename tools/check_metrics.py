#!/usr/bin/env python3
"""Validator for the vlq-metrics-report/1 JSON report (and, optionally,
the Chrome trace_event timeline) written by --metrics-json/--trace-json.

Checks structure and semantics, not values: required keys exist with
the right types, counts are internally consistent (failures <= trials,
session_trials <= trials), histogram quantiles are ordered
(min <= p50 <= p90 <= p99 <= max, mean within [min, max]) and derived
rates land in [0, 1]. CI runs this against a fresh scan's output so a
schema regression in src/obs/report.cc fails the build rather than a
downstream dashboard.

Usage:
    check_metrics.py report.json [--trace trace.json]
        [--require-counter NAME]...  [--require-points N]

Exit status: 0 when the report (and trace, if given) validates,
1 otherwise with one line per problem.
"""

import argparse
import json
import sys


class Checker:
    def __init__(self):
        self.problems = []

    def fail(self, msg):
        self.problems.append(msg)

    def check(self, cond, msg):
        if not cond:
            self.fail(msg)
        return cond

    def number(self, obj, ctx, key, minimum=None):
        """Require obj[key] to be a number; return it (or None)."""
        if not self.check(key in obj, f"{ctx}: missing key '{key}'"):
            return None
        value = obj[key]
        if not self.check(isinstance(value, (int, float))
                          and not isinstance(value, bool),
                          f"{ctx}.{key}: expected a number, got "
                          f"{type(value).__name__}"):
            return None
        if minimum is not None:
            self.check(value >= minimum,
                       f"{ctx}.{key}: {value} < {minimum}")
        return value


def check_histogram(ck, name, h):
    ctx = f"histograms[{name}]"
    if not ck.check(isinstance(h, dict), f"{ctx}: expected an object"):
        return
    ck.check(h.get("unit") == "ns",
             f"{ctx}.unit: expected 'ns', got {h.get('unit')!r}")
    count = ck.number(h, ctx, "count", minimum=0)
    ck.number(h, ctx, "sum", minimum=0)
    quantiles = [ck.number(h, ctx, key, minimum=0)
                 for key in ("min", "p50", "p90", "p99", "max")]
    mean = ck.number(h, ctx, "mean", minimum=0)
    if count and all(v is not None for v in quantiles):
        labels = ("min", "p50", "p90", "p99", "max")
        for (la, a), (lb, b) in zip(zip(labels, quantiles),
                                    list(zip(labels, quantiles))[1:]):
            ck.check(a <= b, f"{ctx}: {la} ({a:g}) > {lb} ({b:g})")
        if mean is not None:
            ck.check(quantiles[0] <= mean <= quantiles[-1],
                     f"{ctx}: mean {mean:g} outside "
                     f"[min, max] = [{quantiles[0]:g}, "
                     f"{quantiles[-1]:g}]")


def check_point(ck, i, pt):
    ctx = f"points[{i}]"
    if not ck.check(isinstance(pt, dict), f"{ctx}: expected an object"):
        return
    ck.check(isinstance(pt.get("embedding"), str) and pt["embedding"],
             f"{ctx}.embedding: expected a non-empty string")
    ck.number(pt, ctx, "distance", minimum=1)
    ck.number(pt, ctx, "p", minimum=0)
    ck.check(pt.get("basis") in ("X", "Z"),
             f"{ctx}.basis: expected 'X' or 'Z', got "
             f"{pt.get('basis')!r}")
    trials = ck.number(pt, ctx, "trials", minimum=0)
    failures = ck.number(pt, ctx, "failures", minimum=0)
    session = ck.number(pt, ctx, "session_trials", minimum=0)
    ck.number(pt, ctx, "wall_seconds", minimum=0)
    ck.number(pt, ctx, "shots_per_sec", minimum=0)
    if trials is not None and failures is not None:
        ck.check(failures <= trials,
                 f"{ctx}: failures {failures} > trials {trials}")
    if trials is not None and session is not None:
        ck.check(session <= trials,
                 f"{ctx}: session_trials {session} > trials {trials}")


def check_report(ck, doc, args):
    if not ck.check(isinstance(doc, dict), "report: expected an object"):
        return
    ck.check(doc.get("schema") == "vlq-metrics-report/1",
             f"schema: expected 'vlq-metrics-report/1', got "
             f"{doc.get('schema')!r}")

    run = doc.get("run")
    if ck.check(isinstance(run, dict), "run: missing or not an object"):
        ck.number(run, "run", "wall_seconds", minimum=0)
        ck.number(run, "run", "cpu_seconds", minimum=0)
        ck.number(run, "run", "utilization", minimum=0)
        ck.number(run, "run", "hardware_threads", minimum=1)
        ck.number(run, "run", "trace_dropped_events", minimum=0)

    points = doc.get("points")
    if ck.check(isinstance(points, list), "points: missing or not a list"):
        for i, pt in enumerate(points):
            check_point(ck, i, pt)
        ck.check(len(points) >= args.require_points,
                 f"points: expected at least {args.require_points}, "
                 f"got {len(points)}")

    counters = doc.get("counters")
    if ck.check(isinstance(counters, dict),
                "counters: missing or not an object"):
        for name, value in counters.items():
            ck.check(isinstance(value, int) and value >= 0,
                     f"counters[{name}]: expected a non-negative "
                     f"integer, got {value!r}")
        for name in args.require_counter:
            ck.check(counters.get(name, 0) > 0,
                     f"counters[{name}]: required > 0, got "
                     f"{counters.get(name)!r}")

    gauges = doc.get("gauges")
    if ck.check(isinstance(gauges, dict),
                "gauges: missing or not an object"):
        for name, value in gauges.items():
            ck.check(isinstance(value, (int, float))
                     and not isinstance(value, bool),
                     f"gauges[{name}]: expected a number, got "
                     f"{value!r}")

    histograms = doc.get("histograms")
    if ck.check(isinstance(histograms, dict),
                "histograms: missing or not an object"):
        for name, h in histograms.items():
            check_histogram(ck, name, h)

    derived = doc.get("derived")
    if ck.check(isinstance(derived, dict),
                "derived: missing or not an object"):
        for rate_key in ("uf_fastpath_hit_rate", "trivial_shot_fraction"):
            if rate_key in derived:
                rate = ck.number(derived, "derived", rate_key, minimum=0)
                if rate is not None:
                    ck.check(rate <= 1.0,
                             f"derived.{rate_key}: {rate:g} > 1")
        if "total_shots_per_sec" in derived:
            ck.number(derived, "derived", "total_shots_per_sec",
                      minimum=0)


def check_trace(ck, doc):
    if not ck.check(isinstance(doc, dict), "trace: expected an object"):
        return
    events = doc.get("traceEvents")
    if not ck.check(isinstance(events, list),
                    "trace.traceEvents: missing or not a list"):
        return
    for i, ev in enumerate(events):
        ctx = f"traceEvents[{i}]"
        if not ck.check(isinstance(ev, dict), f"{ctx}: not an object"):
            continue
        ck.check(isinstance(ev.get("name"), str) and ev["name"],
                 f"{ctx}.name: expected a non-empty string")
        ph = ev.get("ph")
        if not ck.check(ph in ("X", "C", "M"),
                        f"{ctx}.ph: expected X, C or M, got {ph!r}"):
            continue
        ck.number(ev, ctx, "pid")
        ck.number(ev, ctx, "tid", minimum=0)
        if ph == "X":
            ck.number(ev, ctx, "ts", minimum=0)
            ck.number(ev, ctx, "dur", minimum=0)
        elif ph == "C":
            ck.number(ev, ctx, "ts", minimum=0)
            args = ev.get("args")
            if ck.check(isinstance(args, dict),
                        f"{ctx}.args: missing or not an object"):
                ck.number(args, f"{ctx}.args", "value", minimum=0)


def load_json(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"{path}: {exc}")


def main():
    ap = argparse.ArgumentParser(
        description="Validate a vlq metrics report (and optional "
                    "trace) against the vlq-metrics-report/1 schema.")
    ap.add_argument("report", help="path to the --metrics-json output")
    ap.add_argument("--trace", default=None,
                    help="also validate this --trace-json output")
    ap.add_argument("--require-counter", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this counter is present and > 0 "
                         "(repeatable)")
    ap.add_argument("--require-points", type=int, default=1,
                    metavar="N",
                    help="minimum number of report points (default 1)")
    args = ap.parse_args()

    ck = Checker()
    check_report(ck, load_json(args.report), args)
    if args.trace:
        check_trace(ck, load_json(args.trace))

    if ck.problems:
        for problem in ck.problems:
            print(f"FAIL: {problem}")
        print(f"{len(ck.problems)} problem(s)")
        return 1
    print(f"OK: {args.report} validates"
          + (f" (and {args.trace})" if args.trace else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
