#!/usr/bin/env python3
"""Tolerance differ for benchmark CSV output.

Compares a candidate CSV (fresh bench run) against a checked-in
reference (bench/reference/*.csv). Rows are keyed by every column
except the last; the last column is the numeric value under test.
A row passes when

    |candidate - reference| <= abs_tol + rel_tol * max(|ref|, |cand|)

Rows present only in the candidate are ignored (benches also emit
machine-dependent records -- timings, speedups -- that references
deliberately omit); rows present only in the reference fail, so a
bench cannot silently stop reporting a tracked quantity.

Machine-dependent records can still be gated with --floor: each
`--floor REGEX=MIN` requires every *candidate* row whose joined key
matches REGEX to carry a value >= MIN, and fails when no row matches
at all (a floor that stops matching anything is itself rot). This is
how CI pins the scalar-vs-simd compute-backend throughput ratios
(`pipeline_simd_speedup` rows from bench_ablation_decoder) without
checking machine-dependent timings into the reference.

Besides pass/fail, every run ends with a per-record drift summary:
for each record type (the first key column) the count of compared
values, the mean and worst relative drift, and the row that drifted
most. A bench can pass every tolerance while quietly walking toward
the edge; the summary makes that visible in CI logs before it trips.

Exit status: 0 when every reference row matches, 1 otherwise.

Usage:
    check_bench.py reference.csv candidate.csv \
        [--abs-tol A] [--rel-tol R] [--ignore REGEX] \
        [--floor REGEX=MIN ...]
"""

import argparse
import csv
import re
import sys


def load_rows(path):
    """Read a CSV as {key tuple: [values]} plus its header."""
    rows = {}
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            sys.exit(f"{path}: empty file")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                sys.exit(f"{path}:{lineno}: expected {len(header)} "
                         f"columns, got {len(row)}")
            key = tuple(row[:-1])
            try:
                value = float(row[-1])
            except ValueError:
                sys.exit(f"{path}:{lineno}: non-numeric value "
                         f"'{row[-1]}'")
            rows.setdefault(key, []).append(value)
    return header, rows


def main():
    ap = argparse.ArgumentParser(
        description="Diff bench CSV output against a reference "
                    "within tolerances.")
    ap.add_argument("reference")
    ap.add_argument("candidate")
    ap.add_argument("--abs-tol", type=float, default=0.005,
                    help="absolute tolerance (default 0.005)")
    ap.add_argument("--rel-tol", type=float, default=0.25,
                    help="relative tolerance (default 0.25)")
    ap.add_argument("--ignore", default=None, metavar="REGEX",
                    help="skip reference rows whose joined key "
                         "matches this regex")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="REGEX=MIN",
                    help="every candidate row whose joined key matches "
                         "REGEX must have value >= MIN; fails when "
                         "nothing matches (repeatable)")
    args = ap.parse_args()

    floors = []
    for spec in args.floor:
        pattern, sep, minimum = spec.rpartition("=")
        if not sep or not pattern:
            sys.exit(f"--floor {spec!r}: expected REGEX=MIN")
        try:
            floors.append((re.compile(pattern), float(minimum)))
        except (re.error, ValueError) as exc:
            sys.exit(f"--floor {spec!r}: {exc}")

    ref_header, ref = load_rows(args.reference)
    cand_header, cand = load_rows(args.candidate)
    if ref_header != cand_header:
        print(f"FAIL: header mismatch\n  reference: {ref_header}\n"
              f"  candidate: {cand_header}")
        return 1

    ignore = re.compile(args.ignore) if args.ignore else None
    failures = 0
    checked = 0
    # record type (first key column) -> [count, sum drift, worst
    # |drift|, worst drift (signed), worst row label]
    drift_by_record = {}
    for key, ref_values in sorted(ref.items()):
        label = ",".join(key)
        if ignore and ignore.search(label):
            continue
        cand_values = cand.get(key)
        if cand_values is None:
            print(f"FAIL: [{label}] missing from candidate")
            failures += 1
            continue
        if len(cand_values) != len(ref_values):
            print(f"FAIL: [{label}] row count {len(cand_values)} != "
                  f"reference {len(ref_values)}")
            failures += 1
            continue
        record = key[0] if key else ""
        for r, c in zip(ref_values, cand_values):
            checked += 1
            tol = args.abs_tol + args.rel_tol * max(abs(r), abs(c))
            # Relative drift against the tolerance scale, so zero-rate
            # reference rows (r == 0) still report meaningfully.
            drift = (c - r) / max(abs(r), args.abs_tol)
            stats = drift_by_record.setdefault(
                record, [0, 0.0, -1.0, 0.0, ""])
            stats[0] += 1
            stats[1] += drift
            if abs(drift) > stats[2]:
                stats[2] = abs(drift)
                stats[3] = drift
                stats[4] = label
            if abs(c - r) > tol:
                print(f"FAIL: [{label}] candidate {c:g} vs "
                      f"reference {r:g} (|diff| {abs(c - r):g} > "
                      f"tol {tol:g})")
                failures += 1

    # Floors run over the *candidate*: machine-dependent rows are
    # absent from the reference by design, but a pinned ratio (e.g. a
    # compute-backend speedup) must still never regress below its
    # floor.
    for pattern, minimum in floors:
        matched = 0
        for key, values in sorted(cand.items()):
            label = ",".join(key)
            if not pattern.search(label):
                continue
            matched += len(values)
            for value in values:
                checked += 1
                if value < minimum:
                    print(f"FAIL: [{label}] value {value:g} below "
                          f"floor {minimum:g} "
                          f"(--floor {pattern.pattern})")
                    failures += 1
        if matched == 0:
            print(f"FAIL: --floor {pattern.pattern} matched no "
                  f"candidate rows")
            failures += 1

    if drift_by_record:
        print("\nDrift summary (relative to max(|ref|, abs_tol)):")
        print(f"  {'record':<20} {'n':>5} {'mean':>9} {'worst':>9} "
              f"  worst row")
        for record, (n, total, _, worst, worst_label) in sorted(
                drift_by_record.items()):
            print(f"  {record:<20} {n:>5} {total / n:>+9.2%} "
                  f"{worst:>+9.2%}   {worst_label}")

    if failures:
        print(f"\n{failures} mismatch(es) across {checked} compared "
              f"value(s)")
        return 1
    print(f"\nOK: {checked} value(s) within tolerance "
          f"(abs {args.abs_tol:g}, rel {args.rel_tol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
