#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <map>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "mc/checkpoint.h"
#include "mc/monte_carlo.h"
#include "mc/threshold.h"
#include "obs/json.h"
#include "service/events.h"
#include "service/job.h"
#include "service/job_service.h"
#include "service/job_validation.h"
#include "service/scheduler.h"

namespace vlq {
namespace {

using service::EventSink;
using service::JobService;
using service::JobServiceConfig;
using service::ScanJob;
using service::Scheduler;

ScanJob
smallJob(const std::string& id)
{
    ScanJob job;
    job.id = id;
    job.setup = 2;
    job.distances = {3};
    job.physicalPs = {8e-3};
    job.trials = 600;
    job.batchSize = 64;
    job.seed = 21;
    return job;
}

/** True when some problem message contains `needle`. */
bool
anyProblemContains(const std::vector<std::string>& problems,
                   const std::string& needle)
{
    for (const std::string& problem : problems)
        if (problem.find(needle) != std::string::npos)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Request wire grammar

TEST(ServiceRequest, RoundTripIsExact)
{
    ScanJob job = smallJob("round-trip_1");
    job.priority = -7;
    job.physicalPs = {3e-3, 7.77e-3};
    job.decoder = "union-find";
    job.targetFailures = 50;

    std::string error;
    auto parsed = service::parseRequestLine(job.requestLine(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->kind, service::Request::Kind::Submit);
    const ScanJob& back = parsed->job;
    EXPECT_EQ(back.id, job.id);
    EXPECT_EQ(back.priority, job.priority);
    EXPECT_EQ(back.setup, job.setup);
    EXPECT_EQ(back.distances, job.distances);
    EXPECT_EQ(back.physicalPs, job.physicalPs); // exact, not approx
    EXPECT_EQ(back.trials, job.trials);
    EXPECT_EQ(back.seed, job.seed);
    EXPECT_EQ(back.decoder, job.decoder);
    EXPECT_EQ(back.batchSize, job.batchSize);
    EXPECT_EQ(back.targetFailures, job.targetFailures);
    // And the canonical rendering is a fixed point.
    EXPECT_EQ(back.requestLine(), job.requestLine());
}

TEST(ServiceRequest, CommentsAndBlanksAreSilentlySkipped)
{
    std::string error = "sentinel";
    EXPECT_FALSE(service::parseRequestLine("", &error).has_value());
    EXPECT_TRUE(error.empty());
    error = "sentinel";
    EXPECT_FALSE(
        service::parseRequestLine("  # a comment", &error).has_value());
    EXPECT_TRUE(error.empty());
}

TEST(ServiceRequest, UnknownKeyIsAnErrorNotIgnored)
{
    // A typo'd key must not silently submit a default-budget job.
    std::string error;
    auto parsed = service::parseRequestLine(
        "submit id=x trails=100", &error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_NE(error.find("trails"), std::string::npos) << error;
}

TEST(ServiceRequest, ShutdownVerb)
{
    std::string error;
    auto parsed = service::parseRequestLine("shutdown", &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kind, service::Request::Kind::Shutdown);
}

TEST(ServiceRequest, CancelVerb)
{
    std::string error;
    auto parsed = service::parseRequestLine("cancel id=job-7", &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kind, service::Request::Kind::Cancel);
    EXPECT_EQ(parsed->targetId, "job-7");

    // Strictness: a garbled line must never cancel the wrong job.
    EXPECT_FALSE(service::parseRequestLine("cancel", &error)
                     .has_value());
    EXPECT_FALSE(service::parseRequestLine("cancel id=", &error)
                     .has_value());
    EXPECT_FALSE(service::parseRequestLine("cancel job-7", &error)
                     .has_value());
    EXPECT_FALSE(
        service::parseRequestLine("cancel id=a id=b", &error)
            .has_value());
}

TEST(ServiceRequest, RequeueVerb)
{
    std::string error;
    auto parsed = service::parseRequestLine("requeue id=job-9", &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kind, service::Request::Kind::Requeue);
    EXPECT_EQ(parsed->targetId, "job-9");

    // Same strictness as cancel: never rotate the wrong job.
    EXPECT_FALSE(service::parseRequestLine("requeue", &error)
                     .has_value());
    EXPECT_FALSE(service::parseRequestLine("requeue id=", &error)
                     .has_value());
    EXPECT_FALSE(
        service::parseRequestLine("requeue id=a id=b", &error)
            .has_value());
}

TEST(ServiceRequest, ComputeKeyRoundTripsOnlyWhenSet)
{
    // Default (inherit the server's ambient backend): the canonical
    // line carries no compute= token, byte-compatible with older
    // clients.
    ScanJob job = smallJob("compute-rt");
    EXPECT_EQ(job.requestLine().find("compute="), std::string::npos);

    job.compute = "simd";
    std::string error;
    auto parsed = service::parseRequestLine(job.requestLine(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->job.compute, "simd");
    EXPECT_EQ(parsed->job.requestLine(), job.requestLine());
}

TEST(ServiceRequest, BadNumbersAreRejected)
{
    std::string error;
    EXPECT_FALSE(service::parseRequestLine("submit id=x trials=abc",
                                           &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(service::parseRequestLine("submit id=x ps=1e", &error)
                     .has_value());
    EXPECT_FALSE(service::parseRequestLine("submit trials=5", &error)
                     .has_value())
        << "missing id must not parse";
}

// ---------------------------------------------------------------------
// Validation

TEST(ServiceValidation, DefaultJobIsValid)
{
    ScanJob job;
    job.id = "default";
    EXPECT_TRUE(service::validateJob(job).empty());
}

TEST(ServiceValidation, RejectsBadDecoderWithRegistryListing)
{
    ScanJob job = smallJob("bad-decoder");
    job.decoder = "nope";
    auto problems = service::validateJob(job);
    ASSERT_FALSE(problems.empty());
    EXPECT_TRUE(anyProblemContains(problems, "unknown decoder 'nope'"));
    EXPECT_TRUE(anyProblemContains(problems, "registered decoders:"));
    EXPECT_TRUE(anyProblemContains(problems, "mwpm"));
}

TEST(ServiceValidation, RejectsBadEmbeddingWithRegistryListing)
{
    ScanJob job = smallJob("bad-embedding");
    job.embedding = "toroidal";
    auto problems = service::validateJob(job);
    EXPECT_TRUE(
        anyProblemContains(problems, "unknown embedding 'toroidal'"));
    EXPECT_TRUE(anyProblemContains(problems, "registered embeddings:"));
}

TEST(ServiceValidation, RejectsBadComputeWithRegistryListing)
{
    ScanJob job = smallJob("bad-compute");
    job.compute = "gpu";
    auto problems = service::validateJob(job);
    ASSERT_FALSE(problems.empty());
    EXPECT_TRUE(
        anyProblemContains(problems, "unknown compute backend 'gpu'"));
    EXPECT_TRUE(anyProblemContains(problems, "registered backends:"));
    EXPECT_TRUE(anyProblemContains(problems, "scalar"));

    job.compute = "simd"; // a registered name validates
    EXPECT_TRUE(service::validateJob(job).empty());
}

TEST(ServiceValidation, RejectsBadDistanceViaGeneratorValidate)
{
    ScanJob job = smallJob("bad-distance");
    job.distances = {4}; // even distances are invalid patches
    auto problems = service::validateJob(job);
    ASSERT_FALSE(problems.empty());
    EXPECT_TRUE(anyProblemContains(problems, "distance 4 is invalid"));
}

TEST(ServiceValidation, RejectsOverBudgetTarget)
{
    ScanJob job = smallJob("bad-target");
    job.trials = 100;
    job.targetFailures = 101;
    auto problems = service::validateJob(job);
    EXPECT_TRUE(anyProblemContains(problems, "early stop"));
}

TEST(ServiceValidation, RejectsBadIdAndPriorityAndGrid)
{
    ScanJob job = smallJob("has space");
    job.id = "has space";
    job.priority = 999;
    job.physicalPs = {0.7};
    auto problems = service::validateJob(job);
    EXPECT_TRUE(anyProblemContains(problems, "[A-Za-z0-9._-]"));
    EXPECT_TRUE(anyProblemContains(problems, "outside [-100, 100]"));
    EXPECT_TRUE(anyProblemContains(problems, "outside (0, 0.5]"));
}

TEST(ServiceValidation, RejectsOutOfRangeSetupIndex)
{
    ScanJob job = smallJob("bad-setup");
    job.setup = 99;
    EXPECT_TRUE(anyProblemContains(service::validateJob(job),
                                   "out of range"));
    job.setup = -1; // the "use the default" sentinel stays valid
    EXPECT_TRUE(service::validateJob(job).empty());
}

// ---------------------------------------------------------------------
// Scheduler policy

TEST(ServiceScheduler, PriorityThenFifo)
{
    Scheduler sched;
    ScanJob lowA = smallJob("low-a");
    ScanJob lowB = smallJob("low-b");
    ScanJob high = smallJob("high");
    high.priority = 10;
    sched.push(lowA);
    sched.push(lowB);
    sched.push(high);
    EXPECT_EQ(sched.topPriority(), 10);
    EXPECT_EQ(sched.pop()->id, "high");
    EXPECT_EQ(sched.pop()->id, "low-a"); // FIFO within a level
    EXPECT_EQ(sched.pop()->id, "low-b");
    EXPECT_FALSE(sched.pop().has_value());
}

TEST(ServiceScheduler, RequeueGoesBehindEqualPriorityPeers)
{
    Scheduler sched;
    sched.push(smallJob("first"));
    sched.push(smallJob("second"));
    ScanJob first = *sched.pop();
    sched.push(first); // preempted: fresh arrival stamp
    EXPECT_EQ(sched.pop()->id, "second") << "round-robin broken";
    EXPECT_EQ(sched.pop()->id, "first");
}

TEST(ServiceScheduler, RequeueVerbRestampsArrival)
{
    Scheduler sched;
    sched.push(smallJob("first"));
    sched.push(smallJob("second"));
    ScanJob high = smallJob("high");
    high.priority = 10;
    sched.push(high);

    // Client-driven rotation: "first" moves behind its equal-priority
    // peer, but never behind (or ahead of) another priority level.
    EXPECT_TRUE(sched.requeue("first"));
    EXPECT_EQ(sched.pop()->id, "high");
    EXPECT_EQ(sched.pop()->id, "second");
    EXPECT_EQ(sched.pop()->id, "first");

    // Ids without a queue position cannot rotate.
    EXPECT_FALSE(sched.requeue("first")) << "no longer queued";
    EXPECT_FALSE(sched.requeue("never-submitted"));
}

TEST(ServiceScheduler, PreemptReasons)
{
    Scheduler sched(1000);
    // Empty queue: nothing to yield to, whatever the slice size.
    EXPECT_FALSE(sched.shouldPreempt("run", 0, 999999).has_value());

    sched.push(smallJob("waiter"));
    // Equal priority, quantum not yet expired: keep running.
    EXPECT_FALSE(sched.shouldPreempt("run", 0, 999).has_value());
    // Equal priority, quantum expired: round-robin yield.
    ASSERT_TRUE(sched.shouldPreempt("run", 0, 1000).has_value());
    EXPECT_EQ(*sched.shouldPreempt("run", 0, 1000), "quantum");
    // Running job outranks the waiter: no quantum preemption.
    EXPECT_FALSE(sched.shouldPreempt("run", 5, 1000000).has_value());

    ScanJob urgent = smallJob("urgent");
    urgent.priority = 50;
    sched.push(urgent);
    ASSERT_TRUE(sched.shouldPreempt("run", 5, 0).has_value());
    EXPECT_EQ(*sched.shouldPreempt("run", 5, 0), "priority");

    sched.stop();
    EXPECT_EQ(*sched.shouldPreempt("run", 100, 0), "shutdown");
}

TEST(ServiceScheduler, CancelQueuedAndFlaggedRunning)
{
    Scheduler sched(1000);
    sched.push(smallJob("a"));
    sched.push(smallJob("b"));
    EXPECT_TRUE(sched.cancelQueued("a"));
    EXPECT_FALSE(sched.cancelQueued("a")) << "already removed";
    EXPECT_EQ(sched.size(), 1u);
    EXPECT_EQ(sched.pop()->id, "b");

    // A flagged running job preempts with "cancelled", which outranks
    // every other reason, and the flag persists until consumed.
    sched.flagCancel("run");
    sched.stop(); // even shutdown loses to cancellation
    ASSERT_TRUE(sched.shouldPreempt("run", 0, 0).has_value());
    EXPECT_EQ(*sched.shouldPreempt("run", 0, 0), "cancelled");
    EXPECT_TRUE(sched.takeCancelFlag("run"));
    EXPECT_FALSE(sched.takeCancelFlag("run")) << "flag must consume";
    EXPECT_EQ(*sched.shouldPreempt("run", 0, 0), "shutdown");
}

// ---------------------------------------------------------------------
// Event stream

/** Crude field scraping, good enough for our own single-level lines. */
std::string
field(const std::string& line, const std::string& key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    size_t begin = at + needle.size();
    size_t end = begin;
    if (line[begin] == '"') {
        end = line.find('"', ++begin);
    } else {
        while (end < line.size() && line[end] != ','
               && line[end] != '}')
            ++end;
    }
    return line.substr(begin, end - begin);
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

TEST(ServiceEvents, EveryLineIsValidVersionedJson)
{
    std::ostringstream out;
    EventSink sink(&out);
    ScanJob job = smallJob("ev");
    sink.queued(job, 1);
    sink.started(job.id);
    McProgress mc;
    mc.trialsDone = 128;
    mc.totalTrials = 600;
    mc.failures = 3;
    mc.shotsPerSec = 0.0; // unknown rate renders as null, not Infinity
    mc.etaSeconds = -1.0;
    sink.progress(job.id, 0, 3, 8e-3, 'Z', mc, 128, 1200);
    sink.pointDone(job.id, 0, 3, 8e-3, 'Z', 600, 7, false);
    sink.preempted(job.id, "quantum", 600);
    sink.resumed(job.id);
    sink.done(job.id, 1200, 11, 2);
    sink.error("", "bad_request", "quote \"me\" right");

    std::vector<std::string> lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 8u);
    ASSERT_EQ(sink.eventsEmitted(), 8u);
    uint64_t prevSeq = 0;
    for (const std::string& line : lines) {
        std::string lintErr;
        EXPECT_TRUE(obs::jsonLint(line, &lintErr))
            << line << "\n" << lintErr;
        EXPECT_EQ(field(line, "schema"), service::kJobEventSchema);
        uint64_t seq = std::stoull(field(line, "seq"));
        EXPECT_GT(seq, prevSeq) << "seq must strictly increase";
        prevSeq = seq;
    }
    EXPECT_EQ(field(lines[2], "shots_per_sec"), "null")
        << "unknown rate must be JSON null: " << lines[2];
    EXPECT_EQ(field(lines[2], "eta_seconds"), "null");
    EXPECT_EQ(field(lines[4], "reason"), "quantum");
}

// ---------------------------------------------------------------------
// Service end to end (in process)

std::string
tmpStateDir()
{
    // gtest's TempDir always exists; files are per-test-name.
    return testing::TempDir();
}

void
removeJobState(const JobService& svc, const std::string& id)
{
    std::remove(svc.checkpointPath(id).c_str());
    std::remove((svc.checkpointPath(id) + ".tmp").c_str());
}

TEST(ServiceEndToEnd, RejectionEmitsErrorEventAndRunsNothing)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    JobService svc(cfg, sink);

    ScanJob bad = smallJob("rejected");
    bad.decoder = "nope";
    EXPECT_FALSE(svc.submit(bad));
    EXPECT_EQ(svc.queueDepth(), 0u);
    EXPECT_EQ(svc.runUntilDrained(), 0)
        << "a rejected job never enters the queue, so it is not a "
           "failed run";

    std::vector<std::string> lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(field(lines[0], "event"), "error");
    EXPECT_EQ(field(lines[0], "code"), "bad_request");
    EXPECT_NE(lines[0].find("registered decoders"), std::string::npos);
}

TEST(ServiceEndToEnd, DuplicateIdIsRejected)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    JobService svc(cfg, sink);
    EXPECT_TRUE(svc.submit(smallJob("dup")));
    EXPECT_FALSE(svc.submit(smallJob("dup")));
    EXPECT_EQ(svc.queueDepth(), 1u);
}

TEST(ServiceEndToEnd, CancelQueuedJobIsImmediateAndTerminal)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    JobService svc(cfg, sink);

    ScanJob keep = smallJob("cq-keep");
    ScanJob drop = smallJob("cq-drop");
    removeJobState(svc, keep.id);
    removeJobState(svc, drop.id);
    ASSERT_TRUE(svc.submit(keep));
    ASSERT_TRUE(svc.submit(drop));
    ASSERT_EQ(svc.queueDepth(), 2u);

    // Unknown ids and double-cancels are errors, never silent.
    EXPECT_FALSE(svc.cancel("never-submitted"));
    EXPECT_TRUE(svc.submitLine("cancel id=cq-drop"));
    EXPECT_EQ(svc.queueDepth(), 1u);
    EXPECT_FALSE(svc.cancel(drop.id)) << "already terminal";

    EXPECT_EQ(svc.runUntilDrained(), 0)
        << "cancellation is not a failed job";

    std::string lastDropEvent;
    bool dropRan = false;
    for (const std::string& line : splitLines(out.str())) {
        if (field(line, "job") != drop.id)
            continue;
        lastDropEvent = field(line, "event");
        if (lastDropEvent == "started" || lastDropEvent == "progress")
            dropRan = true;
        if (lastDropEvent == "cancelled") {
            EXPECT_EQ(field(line, "stage"), "queued") << line;
        }
    }
    EXPECT_FALSE(dropRan) << "cancelled while queued must never run";
    EXPECT_EQ(lastDropEvent, "error") << "double cancel errors last";
    removeJobState(svc, keep.id);
}

TEST(ServiceEndToEnd, RequeueRotatesQueuedJobBehindItsPeer)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    JobService svc(cfg, sink);

    ScanJob first = smallJob("rq-first");
    ScanJob second = smallJob("rq-second");
    second.seed = 23;
    removeJobState(svc, first.id);
    removeJobState(svc, second.id);
    ASSERT_TRUE(svc.submit(first));
    ASSERT_TRUE(svc.submit(second));

    // Unknown ids error; a known queued id rotates via the wire verb.
    EXPECT_FALSE(svc.requeue("never-submitted"));
    EXPECT_TRUE(svc.submitLine("requeue id=rq-first"));
    EXPECT_EQ(svc.queueDepth(), 2u) << "requeue never drops a job";

    ASSERT_EQ(svc.runUntilDrained(), 0);

    // The rotated job must still finish -- after its untouched peer.
    std::vector<std::string> started;
    bool sawRequeued = false;
    for (const std::string& line : splitLines(out.str())) {
        std::string event = field(line, "event");
        if (event == "started")
            started.push_back(field(line, "job"));
        if (event == "requeued") {
            sawRequeued = true;
            EXPECT_EQ(field(line, "job"), first.id) << line;
            EXPECT_EQ(field(line, "queue_depth"), "2") << line;
        }
    }
    EXPECT_TRUE(sawRequeued);
    ASSERT_EQ(started.size(), 2u);
    EXPECT_EQ(started[0], second.id);
    EXPECT_EQ(started[1], first.id);

    // Terminal ids have no queue position left to rotate.
    EXPECT_FALSE(svc.requeue(first.id));
    removeJobState(svc, first.id);
    removeJobState(svc, second.id);
}


/**
 * The tentpole invariant: two interleaving jobs, forced through many
 * quantum preemptions, finish with per-point counts identical to solo
 * uninterrupted engine runs of the same configuration.
 */
TEST(ServiceEndToEnd, InterleavedJobsMatchSoloRunsBitIdentically)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    cfg.quantumTrials = 128; // tiny: force round-robin churn
    cfg.progressEveryTrials = 64;
    JobService svc(cfg, sink);

    ScanJob jobA = smallJob("twin-a");
    ScanJob jobB = smallJob("twin-b");
    jobB.seed = 22;
    jobB.setup = 4;
    removeJobState(svc, jobA.id);
    removeJobState(svc, jobB.id);
    ASSERT_TRUE(svc.submit(jobA));
    ASSERT_TRUE(svc.submit(jobB));
    ASSERT_EQ(svc.runUntilDrained(), 0);

    // Stream sanity: monotone per-job trials_done, >=1 preemption.
    std::vector<std::string> lines = splitLines(out.str());
    std::map<std::string, uint64_t> highWater;
    int preemptions = 0;
    for (const std::string& line : lines) {
        std::string lintErr;
        ASSERT_TRUE(obs::jsonLint(line, &lintErr)) << lintErr;
        std::string event = field(line, "event");
        ASSERT_NE(event, "error") << line;
        if (event == "preempted")
            ++preemptions;
        if (event == "progress" || event == "preempted") {
            uint64_t done = std::stoull(field(line, "trials_done"));
            uint64_t& prev = highWater[field(line, "job")];
            EXPECT_GE(done, prev) << line;
            prev = std::max(prev, done);
        }
    }
    EXPECT_GE(preemptions, 2) << "quantum 128 over 600-trial points "
                                 "must interleave the two jobs";

    // Count comparison: every point_done must equal a solo
    // uninterrupted run with the same knobs.
    for (const ScanJob& job : {jobA, jobB}) {
        EvaluationSetup setup = service::jobSetup(job);
        ThresholdScanConfig scan = service::jobScanConfig(job);
        for (CheckBasis basis : {CheckBasis::Z, CheckBasis::X}) {
            GeneratorConfig gc;
            gc.distance = scan.distances[0];
            gc.cavityDepth = scan.cavityDepth;
            gc.schedule = setup.schedule;
            gc.gapModel = scan.gapModel;
            gc.noise = NoiseModel::atPhysicalRate(
                scan.physicalPs[0], scan.hardware,
                scan.scaleCoherence);
            gc.memoryBasis = basis;
            BinomialEstimate solo = estimateLogicalErrorBasis(
                setup.embedding, gc, scan.mc);

            bool matched = false;
            for (const std::string& line : lines) {
                if (field(line, "event") != "point_done"
                    || field(line, "job") != job.id
                    || field(line, "basis")
                           != (basis == CheckBasis::X ? "X" : "Z"))
                    continue;
                matched = true;
                EXPECT_EQ(std::stoull(field(line, "trials")),
                          solo.trials)
                    << line;
                EXPECT_EQ(std::stoull(field(line, "failures")),
                          solo.successes)
                    << line;
            }
            EXPECT_TRUE(matched)
                << "no point_done for " << job.id << " basis "
                << (basis == CheckBasis::X ? 'X' : 'Z');
        }
        removeJobState(svc, job.id);
    }
}

/**
 * An ostream that watches the event stream passing through it and
 * fires `onProgress` at the first `progress` event -- a deterministic
 * way to request shutdown mid-run (every EventSink line arrives as one
 * xsputn call, so matching inside a write sees whole lines).
 */
class TriggerStream : public std::streambuf, public std::ostream
{
  public:
    explicit TriggerStream(std::function<void()> onProgress)
        : std::ostream(this), onProgress_(std::move(onProgress))
    {
    }

    std::string str() const { return text_; }

  protected:
    std::streamsize xsputn(const char* s, std::streamsize n) override
    {
        text_.append(s, static_cast<size_t>(n));
        if (!fired_
            && text_.find("\"event\":\"progress\"") != std::string::npos) {
            fired_ = true;
            onProgress_();
        }
        return n;
    }

    int overflow(int c) override
    {
        if (c != EOF)
            text_ += static_cast<char>(c);
        return c;
    }

  private:
    std::function<void()> onProgress_;
    std::string text_;
    bool fired_ = false;
};

TEST(ServiceEndToEnd, ShutdownSuspendsAndASecondServiceResumes)
{
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    cfg.quantumTrials = 64;
    cfg.progressEveryTrials = 64;

    ScanJob job = smallJob("susp");
    job.trials = 900;
    job.batchSize = 32;

    JobService* running = nullptr;
    TriggerStream out1([&]() { running->requestShutdown(); });
    {
        EventSink sink(&out1);
        JobService svc(cfg, sink);
        running = &svc;
        removeJobState(svc, job.id);
        ASSERT_TRUE(svc.submit(job));
        // The first progress event requests shutdown; the next batch
        // boundary suspends the job into its checkpoint.
        svc.runUntilDrained();
        running = nullptr;
    }
    ASSERT_NE(out1.str().find("\"event\":\"preempted\""),
              std::string::npos)
        << "expected a shutdown preemption:\n" << out1.str();
    ASSERT_NE(out1.str().find("\"reason\":\"shutdown\""),
              std::string::npos);

    // Second session, same state dir: resumes and finishes.
    std::ostringstream out2;
    EventSink sink2(&out2);
    JobService svc2(cfg, sink2);
    ASSERT_TRUE(svc2.submit(job));
    ASSERT_EQ(svc2.runUntilDrained(), 0);
    EXPECT_NE(out2.str().find("\"event\":\"resumed\""),
              std::string::npos)
        << out2.str();
    EXPECT_NE(out2.str().find("\"event\":\"done\""), std::string::npos);

    // Resumed final counts equal a solo uninterrupted run.
    EvaluationSetup setup = service::jobSetup(job);
    ThresholdScanConfig scan = service::jobScanConfig(job);
    GeneratorConfig gc;
    gc.distance = scan.distances[0];
    gc.cavityDepth = scan.cavityDepth;
    gc.schedule = setup.schedule;
    gc.gapModel = scan.gapModel;
    gc.noise = NoiseModel::atPhysicalRate(
        scan.physicalPs[0], scan.hardware, scan.scaleCoherence);
    gc.memoryBasis = CheckBasis::Z;
    BinomialEstimate solo =
        estimateLogicalErrorBasis(setup.embedding, gc, scan.mc);
    bool matched = false;
    for (const std::string& line : splitLines(out2.str())) {
        if (field(line, "event") != "point_done"
            || field(line, "basis") != "Z")
            continue;
        matched = true;
        EXPECT_EQ(std::stoull(field(line, "trials")), solo.trials);
        EXPECT_EQ(std::stoull(field(line, "failures")),
                  solo.successes);
    }
    EXPECT_TRUE(matched);
    removeJobState(svc2, job.id);
}

TEST(ServiceEndToEnd, CancelRunningJobStopsAtBatchBoundary)
{
    JobServiceConfig cfg;
    cfg.stateDir = tmpStateDir();
    cfg.progressEveryTrials = 64;

    ScanJob job = smallJob("cr");
    job.trials = 900;
    job.batchSize = 32;

    JobService* running = nullptr;
    TriggerStream out([&]() { running->cancel("cr"); });
    EventSink sink(&out);
    JobService svc(cfg, sink);
    running = &svc;
    removeJobState(svc, job.id);
    ASSERT_TRUE(svc.submit(job));
    EXPECT_EQ(svc.runUntilDrained(), 0);
    running = nullptr;

    std::string lastEvent;
    for (const std::string& line : splitLines(out.str())) {
        if (field(line, "job") != job.id)
            continue;
        lastEvent = field(line, "event");
        if (lastEvent == "cancelled") {
            EXPECT_EQ(field(line, "stage"), "running") << line;
        }
    }
    EXPECT_EQ(lastEvent, "cancelled")
        << "terminal event must be 'cancelled', stream:\n" << out.str();

    // The frontier survives: a later session resumes the job and its
    // final counts match a solo uninterrupted run bit-identically.
    std::ostringstream out2;
    EventSink sink2(&out2);
    JobService svc2(cfg, sink2);
    ASSERT_TRUE(svc2.submit(job));
    ASSERT_EQ(svc2.runUntilDrained(), 0);
    EXPECT_NE(out2.str().find("\"event\":\"resumed\""),
              std::string::npos)
        << out2.str();
    EXPECT_NE(out2.str().find("\"event\":\"done\""), std::string::npos);
    removeJobState(svc2, job.id);
}

// ---------------------------------------------------------------------
// Heartbeat rendering (the resumed-session inf/garbage ETA bugfix)

TEST(ServiceHeartbeat, UnknownRateRendersDashesNotInf)
{
    McProgress p;
    p.trialsDone = 100;
    p.totalTrials = 400;
    p.failures = 2;
    p.shotsPerSec = 0.0;
    p.etaSeconds = -1.0;
    std::string line = p.heartbeatString();
    EXPECT_NE(line.find("-- shots/s"), std::string::npos) << line;
    EXPECT_NE(line.find("eta --"), std::string::npos) << line;
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
}

TEST(ServiceHeartbeat, KnownRateRendersNumbers)
{
    McProgress p;
    p.trialsDone = 100;
    p.totalTrials = 400;
    p.failures = 2;
    p.shotsPerSec = 1.25e5;
    p.etaSeconds = 3.0;
    std::string line = p.heartbeatString();
    EXPECT_NE(line.find("shots/s"), std::string::npos) << line;
    EXPECT_EQ(line.find("--"), std::string::npos) << line;
}

} // namespace
} // namespace vlq
