#include <gtest/gtest.h>

#include "core/embedding.h"
#include "core/generator_common.h"
#include "mc/monte_carlo.h"
#include "sim/tableau.h"

namespace vlq {
namespace {

/**
 * End-to-end: the transversal CNOT (loads + transmon-mode CNOTs) on two
 * full distance-3 logical patches conjugates logical operators exactly
 * as a logical CNOT must: XC -> XC XT, ZT -> ZC ZT, XT -> XT, ZC -> ZC,
 * and maps every stabilizer to a product of stabilizers. This is the
 * code-level counterpart of the paper's process-tomography check.
 */
TEST(TransversalCnot, ConjugatesLogicalOperators)
{
    SurfaceLayout layout(3);
    const uint32_t n = static_cast<uint32_t>(layout.numData());
    // Wires: control patch data (0..n-1) = transmons; target patch data
    // (n..2n-1) = cavity modes of the same stacks.
    Circuit c(2 * n);
    for (uint32_t q = 0; q < n; ++q)
        c.cnot(q, n + q); // transmon-mode CNOT per data qubit

    auto embed = [&](const PauliString& p, bool target) {
        PauliString out(2 * n);
        for (uint32_t q = 0; q < n; ++q)
            out.set(target ? n + q : q, p.get(q));
        return out;
    };

    struct Case
    {
        PauliString in;
        PauliString expect;
    };
    std::vector<Case> cases;
    // XC -> XC XT
    {
        PauliString in = embed(layout.logicalX(), false);
        PauliString ex = in;
        ex *= embed(layout.logicalX(), true);
        cases.push_back({in, ex});
    }
    // ZT -> ZC ZT
    {
        PauliString in = embed(layout.logicalZ(), true);
        PauliString ex = in;
        ex *= embed(layout.logicalZ(), false);
        cases.push_back({in, ex});
    }
    // XT -> XT and ZC -> ZC
    cases.push_back({embed(layout.logicalX(), true),
                     embed(layout.logicalX(), true)});
    cases.push_back({embed(layout.logicalZ(), false),
                     embed(layout.logicalZ(), false)});

    for (auto& cs : cases) {
        PauliString p = cs.in;
        int sign = 1;
        PauliPropagator::conjugate(p, sign, c);
        EXPECT_EQ(p, cs.expect);
        EXPECT_EQ(sign, 1);
    }

    // Stabilizers of the joint code map to joint-stabilizer products:
    // verify each conjugated stabilizer commutes with all stabilizers
    // and with the logical operators it should commute with.
    std::vector<PauliString> stabilizers;
    for (uint32_t i = 0; i < layout.plaquettes().size(); ++i) {
        stabilizers.push_back(embed(layout.stabilizer(i), false));
        stabilizers.push_back(embed(layout.stabilizer(i), true));
    }
    for (const auto& s : stabilizers) {
        PauliString p = s;
        int sign = 1;
        PauliPropagator::conjugate(p, sign, c);
        EXPECT_EQ(sign, 1);
        for (const auto& s2 : stabilizers)
            EXPECT_TRUE(p.commutesWith(s2));
    }
}

/**
 * The headline fault-tolerance comparison at a fixed below-threshold
 * operating point: all five setups must error-correct (rates well below
 * the physical error rate per block at d=3 would not be meaningful;
 * instead we check each setup corrects all single faults at d=3 via
 * the decoder tests, and here that Monte-Carlo rates are sane and
 * ordered sensibly: baseline <= memory variants within noise).
 */
TEST(EndToEnd, FiveSetupsProduceFiniteRates)
{
    McOptions opt;
    opt.trials = 400;
    struct Row
    {
        EmbeddingKind emb;
        ExtractionSchedule sched;
    };
    std::vector<Row> rows{
        {EmbeddingKind::Baseline2D, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::Interleaved},
        {EmbeddingKind::Compact, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Compact, ExtractionSchedule::Interleaved},
    };
    for (const auto& row : rows) {
        GeneratorConfig cfg;
        cfg.distance = 3;
        cfg.cavityDepth = 10;
        cfg.schedule = row.sched;
        cfg.noise = NoiseModel::atPhysicalRate(
            2e-3, HardwareParams::transmonsWithMemory());
        LogicalErrorPoint pt = estimateLogicalError(row.emb, cfg, opt);
        EXPECT_GE(pt.combinedRate(), 0.0);
        EXPECT_LT(pt.combinedRate(), 0.5)
            << embeddingName(row.emb) << " " << scheduleName(row.sched);
    }
}

/** Compact at the paper's smallest instance really uses 11 transmons. */
TEST(EndToEnd, CompactCircuitUsesElevenTransmons)
{
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.cavityDepth = 2;
    cfg.noise = NoiseModel::atPhysicalRate(
        1e-3, HardwareParams::transmonsWithMemory());
    GeneratedCircuit gen = generateCompactMemory(cfg);
    // Wires = 9 data transmons + 2 unmerged ancillas + 9 modes = 20.
    EXPECT_EQ(gen.circuit.numQubits(), 20u);
}

} // namespace
} // namespace vlq
