#include <gtest/gtest.h>

#include <cmath>

#include "mc/memory_experiment.h"
#include "mc/monte_carlo.h"
#include "mc/threshold.h"

namespace vlq {
namespace {

GeneratorConfig
mcConfig(int d, double p)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.cavityDepth = 10;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

TEST(MonteCarlo, ZeroNoiseZeroErrors)
{
    GeneratorConfig cfg = mcConfig(3, 0.0);
    cfg.noise.idleScale = 0.0;
    McOptions opt;
    opt.trials = 200;
    LogicalErrorPoint pt =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_EQ(pt.basisZ.successes, 0u);
    EXPECT_EQ(pt.basisX.successes, 0u);
    EXPECT_EQ(pt.combinedRate(), 0.0);
}

TEST(MonteCarlo, Deterministic)
{
    GeneratorConfig cfg = mcConfig(3, 5e-3);
    McOptions opt;
    opt.trials = 500;
    opt.seed = 77;
    LogicalErrorPoint a =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    LogicalErrorPoint b =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_EQ(a.basisZ.successes, b.basisZ.successes);
    EXPECT_EQ(a.basisX.successes, b.basisX.successes);
}

TEST(MonteCarlo, IndependentOfThreadCount)
{
    GeneratorConfig cfg = mcConfig(3, 5e-3);
    McOptions opt;
    opt.trials = 400;
    opt.seed = 99;
    opt.threads = 1;
    LogicalErrorPoint a =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    opt.threads = 4;
    LogicalErrorPoint b =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_EQ(a.basisZ.successes, b.basisZ.successes);
    EXPECT_EQ(a.basisX.successes, b.basisX.successes);
}

TEST(MonteCarlo, HighNoiseProducesErrors)
{
    GeneratorConfig cfg = mcConfig(3, 3e-2);
    McOptions opt;
    opt.trials = 400;
    LogicalErrorPoint pt =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_GT(pt.combinedRate(), 0.01);
}

TEST(MonteCarlo, LargerDistanceBetterBelowThreshold)
{
    // Well below threshold, d=5 must beat d=3 (statistical smoke test).
    McOptions opt;
    opt.trials = 3000;
    LogicalErrorPoint d3 = estimateLogicalError(
        EmbeddingKind::Baseline2D, mcConfig(3, 2e-3), opt);
    LogicalErrorPoint d5 = estimateLogicalError(
        EmbeddingKind::Baseline2D, mcConfig(5, 2e-3), opt);
    EXPECT_LT(d5.combinedRate(), d3.combinedRate() + 0.01);
    EXPECT_GT(d3.combinedRate(), 0.0);
}

TEST(MonteCarlo, CombinedRateFormula)
{
    LogicalErrorPoint pt;
    pt.basisZ = BinomialEstimate{10, 100};
    pt.basisX = BinomialEstimate{20, 100};
    EXPECT_NEAR(pt.combinedRate(), 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(MonteCarlo, RectangularCompactSmoke)
{
    // d=3 rectangular Monte-Carlo end to end through the registry
    // backend: a 3 x 5 compact-rect patch at a moderate rate must run
    // all trials and land at a sane logical error rate.
    GeneratorConfig cfg = mcConfig(3, 5e-3);
    cfg.distanceX = 3;
    cfg.distanceZ = 5;
    cfg.cavityDepth = 4;
    McOptions opt;
    opt.trials = 300;
    LogicalErrorPoint pt =
        estimateLogicalError(EmbeddingKind::CompactRect, cfg, opt);
    EXPECT_EQ(pt.basisZ.trials, 300u);
    EXPECT_EQ(pt.basisX.trials, 300u);
    EXPECT_LT(pt.combinedRate(), 0.5);

    // And with zero noise the rectangle is exactly quiet.
    GeneratorConfig quiet = mcConfig(3, 0.0);
    quiet.noise.idleScale = 0.0;
    quiet.distanceX = 3;
    quiet.distanceZ = 5;
    McOptions few;
    few.trials = 50;
    LogicalErrorPoint zero =
        estimateLogicalError(EmbeddingKind::CompactRect, quiet, few);
    EXPECT_EQ(zero.combinedRate(), 0.0);
}

TEST(MonteCarlo, RectangularProtectsTheTallBasis)
{
    // On a 3 x 7 patch the memory-Z experiment (distance 7 = rows)
    // must fail far less often than memory-X (distance 3 = columns).
    GeneratorConfig cfg = mcConfig(3, 8e-3);
    cfg.distanceX = 3;
    cfg.distanceZ = 7;
    cfg.cavityDepth = 4;
    McOptions opt;
    opt.trials = 1200;
    LogicalErrorPoint pt =
        estimateLogicalError(EmbeddingKind::CompactRect, cfg, opt);
    EXPECT_LT(pt.basisZ.rate(), pt.basisX.rate());
    EXPECT_GT(pt.basisX.successes, 0u);
}

TEST(Setups, PaperListAndNames)
{
    auto setups = paperSetups();
    ASSERT_EQ(setups.size(), 5u);
    EXPECT_EQ(setups[0].name(), "Baseline");
    EXPECT_EQ(setups[1].name(), "Natural, All-at-once");
    EXPECT_EQ(setups[2].name(), "Natural, Interleaved");
    EXPECT_EQ(setups[3].name(), "Compact, All-at-once");
    EXPECT_EQ(setups[4].name(), "Compact, Interleaved");
}

TEST(Threshold, CrossingEstimator)
{
    // Synthetic curves crossing at p = 0.01.
    auto makeCurve = [](int d, double slope) {
        ThresholdCurve c;
        c.distance = d;
        for (double p : {0.004, 0.008, 0.016, 0.032}) {
            c.physicalPs.push_back(p);
            LogicalErrorPoint pt;
            pt.distance = d;
            pt.physicalP = p;
            // rate = (p/0.01)^slope * 0.1, so curves with different
            // slopes cross exactly at p = 0.01.
            double rate = 0.1 * std::pow(p / 0.01, slope);
            uint64_t n = 1000000;
            pt.basisZ = BinomialEstimate{
                static_cast<uint64_t>(rate * n), n};
            pt.basisX = BinomialEstimate{0, n};
            c.points.push_back(pt);
        }
        return c;
    };
    std::vector<ThresholdCurve> curves{makeCurve(3, 1.0),
                                       makeCurve(5, 2.0),
                                       makeCurve(7, 3.0)};
    double pth = estimateThresholdFromCurves(curves);
    EXPECT_NEAR(pth, 0.01, 0.0005);
}

TEST(Threshold, NoCrossingGivesNegative)
{
    auto flat = [](int d, double level) {
        ThresholdCurve c;
        c.distance = d;
        for (double p : {0.001, 0.002}) {
            c.physicalPs.push_back(p);
            LogicalErrorPoint pt;
            pt.basisZ = BinomialEstimate{
                static_cast<uint64_t>(level * 1000), 1000};
            c.points.push_back(pt);
        }
        return c;
    };
    std::vector<ThresholdCurve> curves{flat(3, 0.1), flat(5, 0.2)};
    EXPECT_LT(estimateThresholdFromCurves(curves), 0.0);
}

TEST(Threshold, SuppressionFactorOnSyntheticCurves)
{
    auto makeCurve = [](int d, double rate) {
        ThresholdCurve c;
        c.distance = d;
        c.physicalPs = {1e-3};
        LogicalErrorPoint pt;
        pt.basisZ = BinomialEstimate{
            static_cast<uint64_t>(rate * 1000000), 1000000};
        c.points.push_back(pt);
        return c;
    };
    // Each distance step suppresses by 4x.
    std::vector<ThresholdCurve> curves{
        makeCurve(3, 0.16), makeCurve(5, 0.04), makeCurve(7, 0.01)};
    EXPECT_NEAR(suppressionFactor(curves, 1e-3), 4.0, 0.05);
    // Zero rates give no estimate.
    std::vector<ThresholdCurve> zero{makeCurve(3, 0.0),
                                     makeCurve(5, 0.0)};
    EXPECT_LT(suppressionFactor(zero, 1e-3), 0.0);
}

TEST(Threshold, SuppressionFactorPicksNearestP)
{
    auto curve = [](int d, double r1, double r2) {
        ThresholdCurve c;
        c.distance = d;
        c.physicalPs = {1e-3, 1e-2};
        for (double r : {r1, r2}) {
            LogicalErrorPoint pt;
            pt.basisZ = BinomialEstimate{
                static_cast<uint64_t>(r * 1000000), 1000000};
            c.points.push_back(pt);
        }
        return c;
    };
    std::vector<ThresholdCurve> curves{curve(3, 0.2, 0.4),
                                       curve(5, 0.1, 0.4)};
    EXPECT_NEAR(suppressionFactor(curves, 1.2e-3), 2.0, 0.01);
    EXPECT_NEAR(suppressionFactor(curves, 9e-3), 1.0, 0.01);
}

TEST(Threshold, ScanSmoke)
{
    // A tiny end-to-end scan: 2 distances, 2 p values, few trials.
    EvaluationSetup setup{EmbeddingKind::Baseline2D,
                          ExtractionSchedule::AllAtOnce};
    ThresholdScanConfig cfg;
    cfg.distances = {3, 5};
    cfg.physicalPs = {5e-3, 2e-2};
    cfg.mc.trials = 150;
    ThresholdResult result = scanThreshold(setup, cfg);
    ASSERT_EQ(result.curves.size(), 2u);
    ASSERT_EQ(result.curves[0].points.size(), 2u);
    EXPECT_EQ(result.curves[0].distance, 3);
    // At p=2e-2 (above threshold) error rates must be substantial.
    EXPECT_GT(result.curves[0].points[1].combinedRate(), 0.05);
}

TEST(MonteCarlo, CompactDistanceScalingBelowThreshold)
{
    // The paper's core fault-tolerance claim for the 2.5D machine:
    // below threshold, distance helps in the Compact embedding too.
    McOptions opt;
    opt.trials = 2500;
    GeneratorConfig c3 = mcConfig(3, 2e-3);
    c3.schedule = ExtractionSchedule::Interleaved;
    GeneratorConfig c5 = mcConfig(5, 2e-3);
    c5.schedule = ExtractionSchedule::Interleaved;
    LogicalErrorPoint d3 =
        estimateLogicalError(EmbeddingKind::Compact, c3, opt);
    LogicalErrorPoint d5 =
        estimateLogicalError(EmbeddingKind::Compact, c5, opt);
    EXPECT_LT(d5.combinedRate(), d3.combinedRate() + 0.01);
}

TEST(MonteCarlo, AboveThresholdDistanceHurts)
{
    McOptions opt;
    opt.trials = 1000;
    LogicalErrorPoint d3 = estimateLogicalError(
        EmbeddingKind::Baseline2D, mcConfig(3, 2.5e-2), opt);
    LogicalErrorPoint d7 = estimateLogicalError(
        EmbeddingKind::Baseline2D, mcConfig(7, 2.5e-2), opt);
    EXPECT_GT(d7.combinedRate(), d3.combinedRate());
}

TEST(MonteCarlo, GapModelAffectsMemoryVariantsOnly)
{
    McOptions opt;
    opt.trials = 800;
    GeneratorConfig cfg = mcConfig(3, 5e-3);
    cfg.schedule = ExtractionSchedule::Interleaved;
    cfg.gapModel = PagingGapModel::BlockOnce;
    LogicalErrorPoint blockOnce =
        estimateLogicalError(EmbeddingKind::Natural, cfg, opt);
    cfg.gapModel = PagingGapModel::PerRound;
    LogicalErrorPoint perRound =
        estimateLogicalError(EmbeddingKind::Natural, cfg, opt);
    // Strict accounting must not *reduce* the error rate.
    EXPECT_GE(perRound.combinedRate() + 0.01, blockOnce.combinedRate());

    // The baseline is untouched by the gap model.
    cfg.gapModel = PagingGapModel::BlockOnce;
    LogicalErrorPoint b1 =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    cfg.gapModel = PagingGapModel::PerRound;
    LogicalErrorPoint b2 =
        estimateLogicalError(EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_EQ(b1.basisZ.successes, b2.basisZ.successes);
}

TEST(MonteCarlo, GreedyDecoderIsWorseOrEqual)
{
    GeneratorConfig cfg = mcConfig(5, 8e-3);
    McOptions mwpm;
    mwpm.trials = 1500;
    McOptions greedy = mwpm;
    greedy.decoder = DecoderKind::Greedy;
    LogicalErrorPoint a = estimateLogicalError(
        EmbeddingKind::Baseline2D, cfg, mwpm);
    LogicalErrorPoint b = estimateLogicalError(
        EmbeddingKind::Baseline2D, cfg, greedy);
    // Greedy should not beat exact MWPM by more than noise.
    EXPECT_GE(b.combinedRate() + 0.02, a.combinedRate());
}

} // namespace
} // namespace vlq
