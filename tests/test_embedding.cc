#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/embedding.h"
#include "core/generator_registry.h"
#include "surface/layout.h"

namespace vlq {
namespace {

class MergeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MergeTest, UnmergedCountIsDMinusOne)
{
    SurfaceLayout layout(GetParam());
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_EQ(merge.numUnmerged, GetParam() - 1);
}

TEST_P(MergeTest, MergeTargetsAreUniqueAndCorrectCorner)
{
    SurfaceLayout layout(GetParam());
    CompactMerge merge = CompactMerge::build(layout);
    std::set<int32_t> targets;
    for (uint32_t c = 0; c < layout.plaquettes().size(); ++c) {
        int32_t m = merge.mergedData[c];
        if (m < 0) {
            EXPECT_GE(merge.unmergedIndex[c], 0);
            continue;
        }
        EXPECT_TRUE(targets.insert(m).second) << "data transmon reused";
        const Plaquette& p = layout.plaquettes()[c];
        int corner = (p.basis == CheckBasis::Z) ? NE : SW;
        EXPECT_EQ(p.corner[static_cast<size_t>(corner)], m);
        EXPECT_EQ(merge.checkAtData[static_cast<size_t>(m)],
                  static_cast<int32_t>(c));
    }
}

TEST_P(MergeTest, TransmonCountMatchesPatchCost)
{
    int d = GetParam();
    SurfaceLayout layout(d);
    CompactMerge merge = CompactMerge::build(layout);
    // data transmons + unmerged ancilla transmons
    int transmons = layout.numData() + merge.numUnmerged;
    EXPECT_EQ(transmons, d * d + d - 1);
}

INSTANTIATE_TEST_SUITE_P(Distances, MergeTest,
                         ::testing::Values(3, 5, 7, 9));

TEST(CompactScheduleTest, SolverFindsValidSchedule)
{
    SurfaceLayout layout(3);
    CompactSchedule sched = CompactSchedule::solve(layout);
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_TRUE(sched.conflictFree(layout, merge));
    EXPECT_TRUE(sched.measuresStabilizers(layout));
}

TEST(CompactScheduleTest, ScheduleValidAtDistanceFive)
{
    SurfaceLayout layout(5);
    CompactSchedule sched = CompactSchedule::solve(layout);
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_TRUE(sched.conflictFree(layout, merge));
    EXPECT_TRUE(sched.measuresStabilizers(layout));
}

TEST(CompactScheduleTest, ScheduleValidAtDistanceSeven)
{
    SurfaceLayout layout(7);
    CompactSchedule sched = CompactSchedule::solve(layout);
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_TRUE(sched.conflictFree(layout, merge));
}

TEST(CompactScheduleTest, SolverPrefersBenignHooks)
{
    // A fully hook-optimal schedule (score 2) exists and is found.
    SurfaceLayout layout(5);
    CompactSchedule sched = CompactSchedule::solve(layout);
    EXPECT_EQ(sched.hookScore(), 2);
}

TEST(CompactScheduleTest, SolvedScheduleIsDeterministic)
{
    SurfaceLayout layout(3);
    CompactSchedule a = CompactSchedule::solve(layout);
    CompactSchedule b = CompactSchedule::solve(layout);
    EXPECT_EQ(a.startSlot, b.startSlot);
    EXPECT_EQ(a.orderX, b.orderX);
    EXPECT_EQ(a.orderZ, b.orderZ);
    EXPECT_EQ(a.xGroupByColumn, b.xGroupByColumn);
    EXPECT_EQ(a.zGroupByColumn, b.zGroupByColumn);
}

TEST(CompactScheduleTest, WindowConstraintsHold)
{
    // The merged-data TT partners never need a transmon during its
    // ancilla window (redundant with conflictFree, but checks the
    // slotOfStep helper directly).
    SurfaceLayout layout(5);
    CompactSchedule sched = CompactSchedule::solve(layout);
    CompactMerge merge = CompactMerge::build(layout);
    const auto& plaquettes = layout.plaquettes();
    for (uint32_t c = 0; c < plaquettes.size(); ++c) {
        int32_t m = merge.mergedData[c];
        if (m < 0)
            continue;
        int start = sched.startSlot[sched.groupOf(plaquettes[c])];
        for (const auto& p2 : plaquettes) {
            if (&p2 == &plaquettes[c])
                continue;
            for (int corner = 0; corner < 4; ++corner) {
                if (p2.corner[static_cast<size_t>(corner)] != m)
                    continue;
                int step = 0;
                const auto& order = sched.orderOf(p2.basis);
                for (int s = 0; s < 4; ++s)
                    if (order[static_cast<size_t>(s)] == corner)
                        step = s;
                int slot = (sched.startSlot[sched.groupOf(p2)] + step) % 8;
                int rel = ((slot - start) % 8 + 8) % 8;
                EXPECT_GT(rel, 3) << "check " << c << " window clash";
            }
        }
    }
}

TEST(CompactScheduleTest, GroupStartsMatchPaperPattern)
{
    SurfaceLayout layout(3);
    CompactSchedule sched = CompactSchedule::solve(layout);
    // X groups and Z groups must occupy distinct phases and the two
    // groups of one type must be 4 slots apart (the A..B / C..D offsets
    // of Fig. 10).
    std::set<int> xs{sched.startSlot[CompactSchedule::A],
                     sched.startSlot[CompactSchedule::B]};
    std::set<int> zs{sched.startSlot[CompactSchedule::C],
                     sched.startSlot[CompactSchedule::D]};
    EXPECT_EQ(std::abs(*xs.begin() - *xs.rbegin()), 4);
    EXPECT_EQ(std::abs(*zs.begin() - *zs.rbegin()), 4);
    for (int x : xs)
        EXPECT_EQ(zs.count(x), 0u);
}

TEST(CompactScheduleTest, SameTypeGroupsPartitionChecks)
{
    SurfaceLayout layout(5);
    CompactSchedule sched = CompactSchedule::solve(layout);
    int counts[4] = {0, 0, 0, 0};
    for (const auto& p : layout.plaquettes()) {
        CompactSchedule::Group g = sched.groupOf(p);
        ++counts[g];
        if (p.basis == CheckBasis::X)
            EXPECT_TRUE(g == CompactSchedule::A || g == CompactSchedule::B);
        else
            EXPECT_TRUE(g == CompactSchedule::C || g == CompactSchedule::D);
    }
    for (int g = 0; g < 4; ++g)
        EXPECT_GT(counts[g], 0) << "group " << g << " empty";
}

TEST(CompactScheduleTest, DefaultOrdersContainEachCornerOnce)
{
    SurfaceLayout layout(3);
    CompactSchedule sched = CompactSchedule::solve(layout);
    std::set<int> sx(sched.orderX.begin(), sched.orderX.end());
    std::set<int> sz(sched.orderZ.begin(), sched.orderZ.end());
    EXPECT_EQ(sx.size(), 4u);
    EXPECT_EQ(sz.size(), 4u);
}

// ---------------------------------------------------------------------------
// Rectangular dx x dz patches
// ---------------------------------------------------------------------------

class RectMergeTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RectMergeTest, UnmergedCountMatchesBoundaryFormula)
{
    auto [dx, dz] = GetParam();
    SurfaceLayout layout(dx, dz);
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_EQ(merge.numUnmerged, (dx - 1) / 2 + (dz - 1) / 2);
}

TEST_P(RectMergeTest, MergeTargetsStayUniqueOnRectangles)
{
    auto [dx, dz] = GetParam();
    SurfaceLayout layout(dx, dz);
    CompactMerge merge = CompactMerge::build(layout);
    std::set<int32_t> targets;
    int merged = 0;
    for (uint32_t c = 0; c < layout.plaquettes().size(); ++c) {
        int32_t m = merge.mergedData[c];
        if (m < 0) {
            EXPECT_GE(merge.unmergedIndex[c], 0);
            continue;
        }
        ++merged;
        EXPECT_TRUE(targets.insert(m).second) << "data transmon reused";
        const Plaquette& p = layout.plaquettes()[c];
        int corner = (p.basis == CheckBasis::Z) ? NE : SW;
        EXPECT_EQ(p.corner[static_cast<size_t>(corner)], m);
    }
    EXPECT_EQ(merged + merge.numUnmerged, layout.numChecks());
}

TEST_P(RectMergeTest, TransmonCountMatchesRectPatchCost)
{
    auto [dx, dz] = GetParam();
    SurfaceLayout layout(dx, dz);
    CompactMerge merge = CompactMerge::build(layout);
    PatchCost cost = patchCost(EmbeddingKind::CompactRect, dx, dz);
    EXPECT_EQ(layout.numData() + merge.numUnmerged, cost.transmons);
    EXPECT_EQ(layout.numData(), cost.cavities);
}

TEST_P(RectMergeTest, SolverFindsValidRectSchedule)
{
    auto [dx, dz] = GetParam();
    SurfaceLayout layout(dx, dz);
    CompactSchedule sched = CompactSchedule::solve(layout);
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_TRUE(sched.conflictFree(layout, merge));
    EXPECT_TRUE(sched.measuresStabilizers(layout));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RectMergeTest,
    ::testing::Values(std::pair<int, int>{3, 5},
                      std::pair<int, int>{5, 3},
                      std::pair<int, int>{3, 7},
                      std::pair<int, int>{5, 9}));

TEST(RectLayoutTest, LogicalWeightsFollowPatchShape)
{
    SurfaceLayout layout(3, 7);
    EXPECT_EQ(layout.width(), 3);
    EXPECT_EQ(layout.height(), 7);
    EXPECT_EQ(layout.distance(), 3);
    EXPECT_EQ(layout.numData(), 21);
    EXPECT_EQ(layout.numChecks(), 20);
    // Logical Z runs along a row (weight dx), logical X down a column
    // (weight dz).
    EXPECT_EQ(layout.logicalZSupport().size(), 3u);
    EXPECT_EQ(layout.logicalXSupport().size(), 7u);
}

TEST(RectLayoutTest, SquareConstructorMatchesRectangular)
{
    SurfaceLayout sq(5);
    SurfaceLayout rect(5, 5);
    ASSERT_EQ(sq.plaquettes().size(), rect.plaquettes().size());
    for (size_t i = 0; i < sq.plaquettes().size(); ++i) {
        EXPECT_EQ(sq.plaquettes()[i].basis, rect.plaquettes()[i].basis);
        EXPECT_EQ(sq.plaquettes()[i].cx, rect.plaquettes()[i].cx);
        EXPECT_EQ(sq.plaquettes()[i].cy, rect.plaquettes()[i].cy);
        EXPECT_EQ(sq.plaquettes()[i].data, rect.plaquettes()[i].data);
    }
}

TEST(CompactScheduleTest, BrokenScheduleDetected)
{
    // A schedule with both Z groups at the same start cannot be
    // conflict-free: diagonal same-type neighbors collide.
    SurfaceLayout layout(5);
    CompactSchedule bad = CompactSchedule::solve(layout);
    bad.startSlot[CompactSchedule::D] = bad.startSlot[CompactSchedule::C];
    CompactMerge merge = CompactMerge::build(layout);
    EXPECT_FALSE(bad.conflictFree(layout, merge));
}

} // namespace
} // namespace vlq
