#include <gtest/gtest.h>

#include <cstdlib>

#include "core/generator_common.h"
#include "core/generator_registry.h"
#include "sim/frame.h"
#include "sim/tableau.h"
#include "util/rng.h"

namespace vlq {
namespace {

GeneratorConfig
noiselessConfig(int d, CheckBasis basis,
                ExtractionSchedule schedule = ExtractionSchedule::AllAtOnce)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.memoryBasis = basis;
    cfg.schedule = schedule;
    cfg.cavityDepth = 4;
    cfg.noise = NoiseModel::atPhysicalRate(
        0.0, HardwareParams::transmonsWithMemory());
    cfg.noise.idleScale = 0.0;
    return cfg;
}

GeneratorConfig
noisyConfig(int d, CheckBasis basis, ExtractionSchedule schedule, double p)
{
    GeneratorConfig cfg = noiselessConfig(d, basis, schedule);
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

/** All detectors of a noiseless run must be quiet (tableau-verified). */
void
expectNoiselessDetectorsQuiet(const Circuit& circuit, uint64_t seed)
{
    TableauSimulator sim(circuit.numQubits(), seed);
    std::vector<bool> records = sim.runCircuit(circuit);
    for (size_t i = 0; i < circuit.detectors().size(); ++i) {
        bool parity = false;
        for (uint32_t m : circuit.detectors()[i].measurements)
            parity ^= records[m];
        EXPECT_FALSE(parity) << "detector " << i << " fired noiselessly";
    }
}

struct SetupParam
{
    EmbeddingKind embedding;
    ExtractionSchedule schedule;
    CheckBasis basis;
};

class GeneratorQuiescence
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GeneratorQuiescence, NoiselessDetectorsAreDeterministicallyQuiet)
{
    auto [embInt, schedInt, basisInt] = GetParam();
    EmbeddingKind emb = static_cast<EmbeddingKind>(embInt);
    ExtractionSchedule sched = static_cast<ExtractionSchedule>(schedInt);
    CheckBasis basis = static_cast<CheckBasis>(basisInt);

    GeneratorConfig cfg = noiselessConfig(3, basis, sched);
    GeneratedCircuit gen = generateMemoryCircuit(emb, cfg);
    // Two different tableau seeds: results must be quiet regardless of
    // the random first-round outcomes of the opposite-basis checks.
    expectNoiselessDetectorsQuiet(gen.circuit, 11);
    expectNoiselessDetectorsQuiet(gen.circuit, 22);
}

INSTANTIATE_TEST_SUITE_P(
    AllSetups, GeneratorQuiescence,
    ::testing::Combine(::testing::Values(0, 1, 2), // embedding
                       ::testing::Values(0, 1),    // schedule
                       ::testing::Values(0, 1)));  // basis

TEST(Generators, BaselineStructure)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    const Circuit& c = gen.circuit;
    // d rounds of 8 ancilla measurements + 9 final data measurements.
    EXPECT_EQ(c.numMeasurements(), 3u * 8u + 9u);
    // Detectors: 4 Z-checks x (3 rounds + final).
    EXPECT_EQ(c.detectors().size(), 4u * 4u);
    EXPECT_EQ(c.observables().size(), 1u);
    EXPECT_EQ(gen.loadStoreCount, 0);
    // 4 CNOT slots/round on 4-weight and 2-weight plaquettes:
    // total CNOTs/round = sum of weights = 4*4 + 4*2 = 24.
    EXPECT_EQ(c.countOps(OpCode::CNOT), 3u * 24u);
}

TEST(Generators, NaturalAaoLoadStoreCount)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z,
                                          ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateNaturalMemory(cfg);
    // One load + one store of 9 data qubits.
    EXPECT_EQ(gen.loadStoreCount, 2 * 9);
}

TEST(Generators, NaturalInterleavedLoadStoreCount)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z,
                                          ExtractionSchedule::Interleaved);
    GeneratedCircuit gen = generateNaturalMemory(cfg);
    // Load+store per round per data qubit.
    EXPECT_EQ(gen.loadStoreCount, 2 * 9 * 3);
}

TEST(Generators, CompactUsesTransmonModeCnots)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z);
    GeneratedCircuit gen = generateCompactMemory(cfg);
    // Merged checks talk to their co-located data without loads; the
    // rest go through load/CNOT/store. Every round still runs 24 CNOTs
    // (in SWAP-wrapped form for the loaded ones).
    EXPECT_GT(gen.loadStoreCount, 0);
    EXPECT_EQ(gen.circuit.countOps(OpCode::CNOT),
              3u * 24u + static_cast<size_t>(gen.loadStoreCount) * 0u);
}

TEST(Generators, InterleavedTakesLongerThanAao)
{
    GeneratorConfig aao = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 1e-3);
    GeneratorConfig il = noisyConfig(3, CheckBasis::Z,
                                     ExtractionSchedule::Interleaved, 1e-3);
    GeneratedCircuit a = generateNaturalMemory(aao);
    GeneratedCircuit b = generateNaturalMemory(il);
    EXPECT_GT(b.activeDurationNs, a.activeDurationNs);
    EXPECT_GT(b.loadStoreCount, a.loadStoreCount);
}

TEST(Generators, PagingGapScalesWithCavityDepthPerRound)
{
    GeneratorConfig cfg = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 1e-3);
    cfg.gapModel = PagingGapModel::PerRound;
    cfg.cavityDepth = 2;
    double t2 = generateNaturalMemory(cfg).totalDurationNs;
    cfg.cavityDepth = 10;
    double t10 = generateNaturalMemory(cfg).totalDurationNs;
    // Strict steady-state AAO: total duration = k x active duration.
    EXPECT_NEAR(t10 / t2, 5.0, 0.01);
}

TEST(Generators, PagingGapBlockOnceIsOneRoundDose)
{
    GeneratorConfig cfg = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 1e-3);
    cfg.gapModel = PagingGapModel::BlockOnce;
    cfg.cavityDepth = 1;
    GeneratedCircuit noGap = generateNaturalMemory(cfg);
    cfg.cavityDepth = 10;
    GeneratedCircuit gap = generateNaturalMemory(cfg);
    double roundDur = noGap.activeDurationNs / 3.0;
    EXPECT_NEAR(gap.totalDurationNs - gap.activeDurationNs,
                9.0 * roundDur, 1.0);
    EXPECT_NEAR(gap.activeDurationNs, noGap.activeDurationNs, 1.0);
}

TEST(Generators, PerRoundGapExceedsBlockOnce)
{
    GeneratorConfig cfg = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::Interleaved,
                                      1e-3);
    cfg.gapModel = PagingGapModel::BlockOnce;
    double tBlock = generateCompactMemory(cfg).totalDurationNs;
    cfg.gapModel = PagingGapModel::PerRound;
    double tRound = generateCompactMemory(cfg).totalDurationNs;
    EXPECT_GT(tRound, tBlock);
}

TEST(Generators, NoiseMassGrowsWithP)
{
    GeneratorConfig lo = noisyConfig(3, CheckBasis::Z,
                                     ExtractionSchedule::AllAtOnce, 1e-3);
    GeneratorConfig hi = noisyConfig(3, CheckBasis::Z,
                                     ExtractionSchedule::AllAtOnce, 1e-2);
    double mLo = generateNaturalMemory(lo).circuit.totalNoiseMass();
    double mHi = generateNaturalMemory(hi).circuit.totalNoiseMass();
    EXPECT_GT(mHi, 5.0 * mLo);
}

TEST(Generators, RoundsDefaultToDistance)
{
    GeneratorConfig cfg = noiselessConfig(5, CheckBasis::Z);
    EXPECT_EQ(cfg.effectiveRounds(), 5);
    cfg.rounds = 2;
    EXPECT_EQ(cfg.effectiveRounds(), 2);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    EXPECT_EQ(gen.circuit.numMeasurements(), 2u * 24u + 25u);
}

TEST(Generators, MemoryXDetectorsUseXChecks)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::X);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    for (const auto& det : gen.circuit.detectors())
        EXPECT_EQ(det.basis, CheckBasis::X);
}

TEST(Generators, BudgetCategoriesMatchSetupStructure)
{
    GeneratorConfig cfg = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 2e-3);
    GeneratedCircuit base = generateBaselineMemory(cfg);
    // The baseline has no memory hardware at all.
    EXPECT_EQ(base.budget.loadStore, 0.0);
    EXPECT_EQ(base.budget.gateTM, 0.0);
    EXPECT_EQ(base.budget.idleCavity, 0.0);
    EXPECT_GT(base.budget.gateTT, 0.0);
    EXPECT_GT(base.budget.measurement, 0.0);
    EXPECT_GT(base.budget.idleTransmon, 0.0);

    GeneratedCircuit nat = generateNaturalMemory(cfg);
    EXPECT_GT(nat.budget.loadStore, 0.0);
    EXPECT_GT(nat.budget.idleCavity, 0.0);
    EXPECT_EQ(nat.budget.gateTM, 0.0); // Natural has no TM CNOTs

    GeneratedCircuit comp = generateCompactMemory(cfg);
    EXPECT_GT(comp.budget.gateTM, 0.0); // co-located checks use TM
    EXPECT_GT(comp.budget.loadStore, 0.0);
}

TEST(Generators, BudgetTotalMatchesCircuitNoiseMass)
{
    GeneratorConfig cfg = noisyConfig(3, CheckBasis::Z,
                                      ExtractionSchedule::Interleaved,
                                      2e-3);
    GeneratedCircuit gen = generateCompactMemory(cfg);
    EXPECT_NEAR(gen.budget.total(), gen.circuit.totalNoiseMass(), 1e-9);
}

TEST(Generators, InterleavedPaysMoreLoadStoreMassThanAao)
{
    GeneratorConfig aao = noisyConfig(5, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 2e-3);
    GeneratorConfig il = noisyConfig(5, CheckBasis::Z,
                                     ExtractionSchedule::Interleaved,
                                     2e-3);
    EXPECT_GT(generateNaturalMemory(il).budget.loadStore,
              generateNaturalMemory(aao).budget.loadStore);
}

TEST(Generators, CompactLazyLoadsBeatStoreBackPolicy)
{
    // With lazy load/store, Compact's per-round load/store count must
    // stay within ~3x Natural-Interleaved's 2 per data per round
    // (the paper: "similar cost as Natural, Interleaved").
    GeneratorConfig cfg = noisyConfig(5, CheckBasis::Z,
                                      ExtractionSchedule::AllAtOnce, 2e-3);
    GeneratedCircuit comp = generateCompactMemory(cfg);
    int perDataPerRound = comp.loadStoreCount / (5 * 25);
    EXPECT_LE(perDataPerRound, 3);
}

// ---------------------------------------------------------------------------
// Generator registry
// ---------------------------------------------------------------------------

TEST(GeneratorRegistry, RoundTripsNameKindAndFactory)
{
    ASSERT_GE(generatorRegistry().size(), 4u);
    for (const GeneratorBackend& entry : generatorRegistry()) {
        EXPECT_EQ(parseEmbeddingKind(entry.name), entry.kind)
            << entry.name;
        EXPECT_STREQ(embeddingKindName(entry.kind), entry.name);
        EXPECT_EQ(makeGenerator(entry.kind), entry.generate)
            << entry.name;
        EXPECT_EQ(makeGenerator(entry.name), entry.generate)
            << entry.name;
        EXPECT_EQ(generatorBackend(entry.kind).cost, entry.cost);
        ASSERT_NE(entry.shape, nullptr) << entry.name;
    }
}

TEST(GeneratorRegistry, ShapeHooksResolvePatchDimensions)
{
    auto square = generatorBackend(EmbeddingKind::Compact).shape;
    EXPECT_EQ(square(7, 0, 0), (std::pair<int, int>{7, 7}));
    EXPECT_EQ(square(7, 3, 0), (std::pair<int, int>{3, 7}));
    auto rect = generatorBackend(EmbeddingKind::CompactRect).shape;
    EXPECT_EQ(rect(7, 0, 0), (std::pair<int, int>{3, 7}));
    EXPECT_EQ(rect(7, 5, 0), (std::pair<int, int>{5, 7}));
    EXPECT_EQ(rect(7, 5, 9), (std::pair<int, int>{5, 9}));
}

TEST(GeneratorRegistry, BiasAwareRectShapeDerivesColumnsFromPauliMass)
{
    // A disabled (uniform) source keeps the 3-arg hook's answer
    // bit-identically -- the historical narrow default.
    BiasedPauliSource uniform;
    EXPECT_EQ(compactRectPatchShape(7, 0, 0, uniform),
              compactRectPatchShape(7, 0, 0));
    EXPECT_EQ(compactRectPatchShape(11, 0, 0, uniform),
              (std::pair<int, int>{3, 11}));
    // Explicit overrides always win, bias or not.
    BiasedPauliSource mild{1.0, 1.0, 4.0};
    EXPECT_EQ(compactRectPatchShape(7, 5, 0, mild),
              (std::pair<int, int>{5, 7}));
    EXPECT_EQ(compactRectPatchShape(7, 5, 9, mild),
              (std::pair<int, int>{5, 9}));
    // Strong Z bias narrows to the 3-column floor.
    BiasedPauliSource strong{0.005, 0.005, 0.99};
    EXPECT_EQ(compactRectPatchShape(11, 0, 0, strong),
              (std::pair<int, int>{3, 11}));
    // Mild Z bias lands between floor and square, rounded up to odd:
    // mZ = 2/3, mXY = 1/3, 11 * ln(2/3)/ln(1/3) = 4.06 -> 4 -> 5.
    EXPECT_EQ(compactRectPatchShape(11, 0, 0, mild),
              (std::pair<int, int>{5, 11}));
    // X-leaning noise can shed no protection: the full square.
    BiasedPauliSource xLeaning{4.0, 1.0, 1.0};
    EXPECT_EQ(compactRectPatchShape(11, 0, 0, xLeaning),
              (std::pair<int, int>{11, 11}));
    // Degenerate all-Z noise pins the floor rather than dividing by
    // ln(0).
    BiasedPauliSource allZ{0.0, 0.0, 1.0};
    EXPECT_EQ(compactRectPatchShape(11, 0, 0, allZ),
              (std::pair<int, int>{3, 11}));
}

TEST(Generators, UniformBiasKeepsCompactRectCircuitBitIdentical)
{
    // The bias-aware default must not perturb uniform-noise runs: the
    // implicit default circuit equals the explicit historical {3, d}
    // patch on every structural diagnostic.
    GeneratorConfig implicit = noisyConfig(
        5, CheckBasis::Z, ExtractionSchedule::AllAtOnce, 2e-3);
    GeneratorConfig pinned = implicit;
    pinned.distanceX = 3;
    pinned.distanceZ = 5;
    GeneratedCircuit a = generateCompactRectMemory(implicit);
    GeneratedCircuit b = generateCompactRectMemory(pinned);
    EXPECT_EQ(a.circuit.numMeasurements(), b.circuit.numMeasurements());
    EXPECT_EQ(a.circuit.detectors().size(),
              b.circuit.detectors().size());
    EXPECT_EQ(a.loadStoreCount, b.loadStoreCount);
    EXPECT_DOUBLE_EQ(a.totalDurationNs, b.totalDurationNs);
    EXPECT_DOUBLE_EQ(a.budget.total(), b.budget.total());
}

TEST(Generators, BiasedNoiseWidensTheDefaultRectPatch)
{
    // With a mild Z bias at d = 11 the default patch is 5 x 11 (see
    // the shape test above); the generated circuit must match the
    // explicitly-pinned 5 x 11 patch, not the uniform 3 x 11 one.
    GeneratorConfig biased = noisyConfig(
        11, CheckBasis::Z, ExtractionSchedule::AllAtOnce, 2e-3);
    biased.noise.bias = BiasedPauliSource{1.0, 1.0, 4.0};
    GeneratorConfig pinned = biased;
    pinned.distanceX = 5;
    pinned.distanceZ = 11;
    GeneratorConfig narrow = biased;
    narrow.distanceX = 3;
    narrow.distanceZ = 11;
    GeneratedCircuit implicitRect = generateCompactRectMemory(biased);
    GeneratedCircuit wide = generateCompactRectMemory(pinned);
    GeneratedCircuit narrowRect = generateCompactRectMemory(narrow);
    EXPECT_EQ(implicitRect.circuit.numMeasurements(),
              wide.circuit.numMeasurements());
    EXPECT_EQ(implicitRect.loadStoreCount, wide.loadStoreCount);
    EXPECT_NE(implicitRect.circuit.numMeasurements(),
              narrowRect.circuit.numMeasurements());
}

TEST(GeneratorRegistry, ParsesAliasesCaseInsensitively)
{
    EXPECT_EQ(parseEmbeddingKind("Baseline"), EmbeddingKind::Baseline2D);
    EXPECT_EQ(parseEmbeddingKind("baseline2d"), EmbeddingKind::Baseline2D);
    EXPECT_EQ(parseEmbeddingKind("2d"), EmbeddingKind::Baseline2D);
    EXPECT_EQ(parseEmbeddingKind("NATURAL"), EmbeddingKind::Natural);
    EXPECT_EQ(parseEmbeddingKind("compact"), EmbeddingKind::Compact);
    EXPECT_EQ(parseEmbeddingKind("Compact-Rect"),
              EmbeddingKind::CompactRect);
    EXPECT_EQ(parseEmbeddingKind("rect"), EmbeddingKind::CompactRect);
    EXPECT_FALSE(parseEmbeddingKind("compct").has_value());
    EXPECT_FALSE(parseEmbeddingKind("").has_value());
    EXPECT_EQ(makeGenerator("compct"), nullptr);
}

TEST(GeneratorRegistry, EveryBackendGeneratesAViableCircuit)
{
    for (const GeneratorBackend& entry : generatorRegistry()) {
        GeneratorConfig cfg = noisyConfig(
            3, CheckBasis::Z, ExtractionSchedule::AllAtOnce, 2e-3);
        GeneratedCircuit gen = entry.generate(cfg);
        EXPECT_GT(gen.circuit.numMeasurements(), 0u) << entry.name;
        EXPECT_EQ(gen.circuit.observables().size(), 1u) << entry.name;
        EXPECT_GT(gen.circuit.detectors().size(), 0u) << entry.name;
    }
}

TEST(GeneratorRegistry, DispatchMatchesDirectCalls)
{
    GeneratorConfig cfg = noisyConfig(
        3, CheckBasis::Z, ExtractionSchedule::Interleaved, 2e-3);
    GeneratedCircuit viaRegistry =
        generateMemoryCircuit(EmbeddingKind::Compact, cfg);
    GeneratedCircuit direct = generateCompactMemory(cfg);
    EXPECT_EQ(viaRegistry.circuit.numMeasurements(),
              direct.circuit.numMeasurements());
    EXPECT_EQ(viaRegistry.loadStoreCount, direct.loadStoreCount);
    EXPECT_DOUBLE_EQ(viaRegistry.totalDurationNs,
                     direct.totalDurationNs);
}

TEST(GeneratorRegistry, EnvKnobSelectsBackendOrDiesOnTypos)
{
    ::setenv("VLQ_EMBEDDING_TESTVAR", "Compact-Rect", 1);
    EXPECT_EQ(embeddingKindFromEnv(EmbeddingKind::Baseline2D,
                                   "VLQ_EMBEDDING_TESTVAR"),
              EmbeddingKind::CompactRect);
    ::unsetenv("VLQ_EMBEDDING_TESTVAR");
    EXPECT_EQ(embeddingKindFromEnv(EmbeddingKind::Natural,
                                   "VLQ_EMBEDDING_TESTVAR"),
              EmbeddingKind::Natural);
    // A typo'd value must be a hard error listing the valid keys,
    // never a silent fallback to some default backend.
    ::setenv("VLQ_EMBEDDING_TESTVAR", "compct", 1);
    EXPECT_EXIT(embeddingKindFromEnv(EmbeddingKind::Compact,
                                     "VLQ_EMBEDDING_TESTVAR"),
                ::testing::ExitedWithCode(1),
                "not a registered embedding backend \\(valid: "
                "baseline, natural, compact, compact-rect\\)");
    ::unsetenv("VLQ_EMBEDDING_TESTVAR");
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(GeneratorValidation, AcceptsTheDefaultAndRectConfigs)
{
    GeneratorConfig cfg;
    EXPECT_EQ(cfg.validate(), "");
    cfg.distanceX = 3;
    cfg.distanceZ = 7;
    EXPECT_EQ(cfg.validate(), "");
    EXPECT_EQ(cfg.effectiveDx(), 3);
    EXPECT_EQ(cfg.effectiveDz(), 7);
}

TEST(GeneratorValidation, RejectsBadDistancesRoundsAndCavityDepth)
{
    GeneratorConfig cfg;
    cfg.distance = 4;
    EXPECT_NE(cfg.validate().find("odd"), std::string::npos);
    cfg.distance = 1;
    EXPECT_NE(cfg.validate().find(">= 3"), std::string::npos);
    cfg.distance = -3;
    EXPECT_NE(cfg.validate().find(">= 3"), std::string::npos);

    cfg = GeneratorConfig{};
    cfg.distanceX = 4;
    EXPECT_NE(cfg.validate().find("distanceX"), std::string::npos);
    cfg.distanceX = 0;
    cfg.distanceZ = 2;
    EXPECT_NE(cfg.validate().find("distanceZ"), std::string::npos);

    cfg = GeneratorConfig{};
    cfg.rounds = -1;
    EXPECT_NE(cfg.validate().find("rounds"), std::string::npos);

    cfg = GeneratorConfig{};
    cfg.cavityDepth = 0;
    EXPECT_NE(cfg.validate().find("cavityDepth"), std::string::npos);
}

TEST(GeneratorValidation, EveryBackendDiesFastOnInvalidConfig)
{
    for (const GeneratorBackend& entry : generatorRegistry()) {
        GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z);
        cfg.distance = 4;
        EXPECT_EXIT(entry.generate(cfg), ::testing::ExitedWithCode(1),
                    "invalid GeneratorConfig.*odd")
            << entry.name;
    }
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z);
    cfg.cavityDepth = 0;
    EXPECT_EXIT(generateCompactMemory(cfg),
                ::testing::ExitedWithCode(1), "cavityDepth");
}

// ---------------------------------------------------------------------------
// Rectangular patches through the generators
// ---------------------------------------------------------------------------

class RectGeneratorQuiescence
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(RectGeneratorQuiescence, NoiselessRectDetectorsAreQuiet)
{
    auto [kindInt, dxInt, basisInt] = GetParam();
    // Shapes: (3,5) and (5,3) exercise both aspect orientations.
    GeneratorConfig cfg = noiselessConfig(
        3, static_cast<CheckBasis>(basisInt),
        ExtractionSchedule::Interleaved);
    cfg.distanceX = dxInt;
    cfg.distanceZ = dxInt == 3 ? 5 : 3;
    const GeneratorBackend& backend =
        generatorBackend(static_cast<EmbeddingKind>(kindInt));
    GeneratedCircuit gen = backend.generate(cfg);
    expectNoiselessDetectorsQuiet(gen.circuit, 11);
    expectNoiselessDetectorsQuiet(gen.circuit, 22);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, RectGeneratorQuiescence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), // embedding
                       ::testing::Values(3, 5),       // dx (dz = other)
                       ::testing::Values(0, 1)));     // basis

TEST(RectGenerators, CompactRectDefaultsToNarrowPatch)
{
    // Without explicit distanceX/distanceZ the biased-noise backend
    // keeps dz = distance rows but narrows to dx = 3 columns.
    GeneratorConfig cfg = noiselessConfig(5, CheckBasis::Z);
    GeneratedCircuit gen = generateCompactRectMemory(cfg);
    // 5 rounds x (3*5 - 1) checks + 15 final data readouts.
    EXPECT_EQ(gen.circuit.numMeasurements(), 5u * 14u + 15u);

    // Explicit square dimensions override the narrow default.
    cfg.distanceX = 5;
    cfg.distanceZ = 5;
    GeneratedCircuit sq = generateCompactRectMemory(cfg);
    EXPECT_EQ(sq.circuit.numMeasurements(), 5u * 24u + 25u);
}

TEST(RectGenerators, RectangularFrameSampleIsQuiet)
{
    GeneratorConfig cfg = noiselessConfig(3, CheckBasis::Z);
    cfg.distanceX = 3;
    cfg.distanceZ = 7;
    GeneratedCircuit gen = generateCompactRectMemory(cfg);
    FrameSimulator sim(gen.circuit);
    Rng rng(7);
    BitVec flips = sim.sampleMeasurementFlips(rng);
    BitVec det = FrameSimulator::detectorFlips(gen.circuit, flips);
    EXPECT_TRUE(det.none());
    EXPECT_EQ(FrameSimulator::observableFlips(gen.circuit, flips), 0u);
}

TEST(Generators, SampledNoiselessRunIsQuiet)
{
    // The frame simulator agrees: with zero noise no detector fires.
    GeneratorConfig cfg = noiselessConfig(5, CheckBasis::Z);
    GeneratedCircuit gen = generateCompactMemory(cfg);
    FrameSimulator sim(gen.circuit);
    Rng rng(7);
    BitVec flips = sim.sampleMeasurementFlips(rng);
    BitVec det = FrameSimulator::detectorFlips(gen.circuit, flips);
    EXPECT_TRUE(det.none());
    EXPECT_EQ(FrameSimulator::observableFlips(gen.circuit, flips), 0u);
}

} // namespace
} // namespace vlq
