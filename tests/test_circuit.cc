#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/moment_tracker.h"

namespace vlq {
namespace {

TEST(Circuit, AppendAndCount)
{
    Circuit c(4);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(1, 2);
    c.reset(3);
    uint32_t m0 = c.measureZ(3, 0.01);
    EXPECT_EQ(m0, 0u);
    EXPECT_EQ(c.numMeasurements(), 1u);
    EXPECT_EQ(c.countOps(OpCode::CNOT), 2u);
    EXPECT_EQ(c.countOps(OpCode::H), 1u);
    EXPECT_EQ(c.ops().size(), 5u);
}

TEST(Circuit, NoiseSkippedWhenZero)
{
    Circuit c(2);
    c.depolarize1(0, 0.0);
    c.depolarize2(0, 1, -1.0);
    c.xError(0, 0.0);
    EXPECT_TRUE(c.ops().empty());
    c.depolarize1(0, 0.1);
    EXPECT_EQ(c.ops().size(), 1u);
}

TEST(Circuit, MeasurementIndicesSequential)
{
    Circuit c(3);
    EXPECT_EQ(c.measureZ(0), 0u);
    EXPECT_EQ(c.measureZ(1), 1u);
    EXPECT_EQ(c.measureZ(2), 2u);
}

TEST(Circuit, DetectorValidation)
{
    Circuit c(2);
    uint32_t m = c.measureZ(0);
    Detector d;
    d.measurements = {m};
    EXPECT_EQ(c.addDetector(d), 0u);
    EXPECT_EQ(c.detectors().size(), 1u);
}

TEST(Circuit, ObservableAccumulates)
{
    Circuit c(2);
    uint32_t m0 = c.measureZ(0);
    uint32_t m1 = c.measureZ(1);
    uint32_t obs = c.addObservable();
    c.observableInclude(obs, m0);
    c.observableInclude(obs, m1);
    ASSERT_EQ(c.observables().size(), 1u);
    EXPECT_EQ(c.observables()[0].measurements.size(), 2u);
}

TEST(Circuit, TotalNoiseMass)
{
    Circuit c(2);
    c.depolarize1(0, 0.1);
    c.depolarize2(0, 1, 0.2);
    c.measureZ(0, 0.05);
    EXPECT_NEAR(c.totalNoiseMass(), 0.35, 1e-12);
}

TEST(Circuit, StrDump)
{
    Circuit c(2);
    c.cnot(0, 1);
    c.measureZ(1, 0.01);
    std::string s = c.str();
    EXPECT_NE(s.find("CNOT 0 1"), std::string::npos);
    EXPECT_NE(s.find("MEASURE_Z 1"), std::string::npos);
    EXPECT_NE(s.find("m0"), std::string::npos);
}

TEST(OpCode, Classification)
{
    EXPECT_TRUE(opIsNoise(OpCode::DEPOLARIZE1));
    EXPECT_TRUE(opIsNoise(OpCode::X_ERROR));
    EXPECT_FALSE(opIsNoise(OpCode::CNOT));
    EXPECT_TRUE(opIsTwoQubit(OpCode::CNOT));
    EXPECT_TRUE(opIsTwoQubit(OpCode::SWAP));
    EXPECT_TRUE(opIsTwoQubit(OpCode::DEPOLARIZE2));
    EXPECT_FALSE(opIsTwoQubit(OpCode::H));
}

TEST(MomentTracker, IdleReportedForLiveUntouched)
{
    MomentTracker mt(3);
    mt.setLive(0, true);
    mt.setLive(1, true);
    // wire 2 not live
    std::vector<std::pair<uint32_t, double>> idles;
    mt.beginMoment(100.0);
    mt.touch(0);
    mt.endMoment([&](uint32_t w, double dt) { idles.push_back({w, dt}); });
    ASSERT_EQ(idles.size(), 1u);
    EXPECT_EQ(idles[0].first, 1u);
    EXPECT_DOUBLE_EQ(idles[0].second, 100.0);
    EXPECT_DOUBLE_EQ(mt.now(), 100.0);
}

TEST(MomentTracker, WaitIdlesAllLive)
{
    MomentTracker mt(3);
    mt.setLive(0, true);
    mt.setLive(2, true);
    int count = 0;
    mt.wait(500.0, [&](uint32_t, double dt) {
        EXPECT_DOUBLE_EQ(dt, 500.0);
        ++count;
    });
    EXPECT_EQ(count, 2);
    EXPECT_DOUBLE_EQ(mt.now(), 500.0);
}

TEST(MomentTracker, ZeroDurationMomentNoIdle)
{
    MomentTracker mt(2);
    mt.setLive(0, true);
    int count = 0;
    mt.beginMoment(0.0);
    mt.endMoment([&](uint32_t, double) { ++count; });
    EXPECT_EQ(count, 0);
}

TEST(MomentTracker, IdleTotalsAccumulate)
{
    MomentTracker mt(2);
    mt.setLive(0, true);
    mt.setLive(1, true);
    mt.beginMoment(10.0);
    mt.touch(0);
    mt.endMoment(nullptr);
    mt.wait(5.0, nullptr);
    EXPECT_DOUBLE_EQ(mt.idleTotals()[0], 5.0);
    EXPECT_DOUBLE_EQ(mt.idleTotals()[1], 15.0);
    EXPECT_EQ(mt.liveCount(), 2u);
}

} // namespace
} // namespace vlq
