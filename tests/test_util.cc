#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace vlq {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.nextU64() == b.nextU64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(99);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.nextDouble());
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(123);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextBelow(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng root(77);
    Rng s0 = root.split(0);
    Rng s1 = root.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (s0.nextU64() == s1.nextU64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng root(77);
    Rng a = root.split(5);
    Rng b = Rng(77).split(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RunningStat, MeanVariance)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stderrOfMean(), 0.0);
}

TEST(Binomial, RateAndWilson)
{
    BinomialEstimate e{10, 100};
    EXPECT_DOUBLE_EQ(e.rate(), 0.1);
    auto [lo, hi] = e.wilson();
    EXPECT_LT(lo, 0.1);
    EXPECT_GT(hi, 0.1);
    EXPECT_GT(lo, 0.0);
    EXPECT_LT(hi, 1.0);
}

TEST(Binomial, ZeroTrials)
{
    BinomialEstimate e{0, 0};
    EXPECT_EQ(e.rate(), 0.0);
    auto [lo, hi] = e.wilson();
    EXPECT_EQ(lo, 0.0);
    EXPECT_EQ(hi, 1.0);
}

TEST(Binomial, WilsonShrinksWithTrials)
{
    BinomialEstimate small{5, 50};
    BinomialEstimate large{500, 5000};
    auto [lo1, hi1] = small.wilson();
    auto [lo2, hi2] = large.wilson();
    EXPECT_LT(hi2 - lo2, hi1 - lo1);
}

TEST(Stats, LogLogCrossingFindsIntersection)
{
    // y1 = x, y2 = x^2: cross at x = 1.
    std::vector<double> xs;
    std::vector<double> y1;
    std::vector<double> y2;
    for (double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        xs.push_back(x);
        y1.push_back(x);
        y2.push_back(x * x);
    }
    double c = logLogCrossing(xs, y1, y2);
    EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(Stats, LogLogCrossingNoneReturnsNegative)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> y1{1, 2, 3};
    std::vector<double> y2{2, 4, 6};
    EXPECT_LT(logLogCrossing(xs, y1, y2), 0.0);
}

TEST(Stats, LogLogCrossingSkipsZeros)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> y1{0.0, 2, 3, 4};
    std::vector<double> y2{0.0, 4, 3.5, 3.9};
    double c = logLogCrossing(xs, y1, y2);
    EXPECT_GT(c, 2.0);
    EXPECT_LT(c, 4.0);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Stats, Logspace)
{
    auto v = logspace(1.0, 100.0, 3);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_NEAR(v[0], 1.0, 1e-12);
    EXPECT_NEAR(v[1], 10.0, 1e-9);
    EXPECT_NEAR(v[2], 100.0, 1e-9);
}

TEST(Table, AlignedOutput)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    std::ostringstream ss;
    t.print(ss);
    std::string out = ss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::sci(0.00123, 2), "1.23e-03");
}

TEST(Env, FallbackWhenUnset)
{
    unsetenv("VLQ_TEST_UNSET");
    EXPECT_EQ(envInt("VLQ_TEST_UNSET", 7), 7);
    EXPECT_EQ(envDouble("VLQ_TEST_UNSET", 1.5), 1.5);
    EXPECT_EQ(envString("VLQ_TEST_UNSET", "d"), "d");
}

TEST(Env, ParsesValues)
{
    setenv("VLQ_TEST_SET", "42", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 0), 42);
    setenv("VLQ_TEST_SET", "2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 0.0), 2.5);
    setenv("VLQ_TEST_SET", "abc", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 9), 9); // malformed -> fallback
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, RejectsTrailingGarbage)
{
    setenv("VLQ_TEST_SET", "42x", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    EXPECT_EQ(envU64("VLQ_TEST_SET", 7u), 7u);
    setenv("VLQ_TEST_SET", "42 ", 1); // trailing space is garbage too
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    setenv("VLQ_TEST_SET", "2.5e3q", 1);
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 1.5), 1.5);
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, RejectsOverflowInsteadOfTruncating)
{
    // One past INT64_MAX: strtoll would saturate to LLONG_MAX; the
    // env readers must fall back instead of running 9.2e18 trials.
    setenv("VLQ_TEST_SET", "9223372036854775808", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    EXPECT_EQ(envU64("VLQ_TEST_SET", 7u), 7u);
    setenv("VLQ_TEST_SET", "99999999999999999999", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    setenv("VLQ_TEST_SET", "1e999", 1); // strtod saturates to HUGE_VAL
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 1.5), 1.5);
    // Literal non-finite spellings are the same garbage-run hazard.
    setenv("VLQ_TEST_SET", "inf", 1);
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 1.5), 1.5);
    setenv("VLQ_TEST_SET", "nan", 1);
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 1.5), 1.5);
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, RejectsLeadingWhitespace)
{
    setenv("VLQ_TEST_SET", " 42", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    EXPECT_EQ(envU64("VLQ_TEST_SET", 7u), 7u);
    setenv("VLQ_TEST_SET", "   ", 1); // whitespace-only
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), 7);
    setenv("VLQ_TEST_SET", " 2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("VLQ_TEST_SET", 1.5), 1.5);
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, NegativeCountFallsBack)
{
    setenv("VLQ_TEST_SET", "-5", 1);
    EXPECT_EQ(envInt("VLQ_TEST_SET", 7), -5);  // signed reader: fine
    EXPECT_EQ(envU64("VLQ_TEST_SET", 9u), 9u); // count reader: fallback
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, U64RoundTripsThroughText)
{
    for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{65536},
                      int64_t{9223372036854775807LL}}) {
        setenv("VLQ_TEST_SET", std::to_string(v).c_str(), 1);
        EXPECT_EQ(envU64("VLQ_TEST_SET", 424242u),
                  static_cast<uint64_t>(v));
        EXPECT_EQ(envInt("VLQ_TEST_SET", 424242), v);
    }
    unsetenv("VLQ_TEST_SET");
}

TEST(Env, ParseInt64RejectsJunk)
{
    EXPECT_EQ(parseInt64("42"), 42);
    EXPECT_EQ(parseInt64("-7"), -7);
    EXPECT_EQ(parseInt64("+3"), 3);
    EXPECT_FALSE(parseInt64("").has_value());
    EXPECT_FALSE(parseInt64("abc").has_value());
    EXPECT_FALSE(parseInt64("12abc").has_value());
    EXPECT_FALSE(parseInt64("1.5").has_value());
    EXPECT_FALSE(parseInt64("99999999999999999999").has_value());
    EXPECT_FALSE(parseInt64(" 42").has_value());
    EXPECT_FALSE(parseInt64("42 ").has_value());
    EXPECT_FALSE(parseInt64("  ").has_value());
    // Exact int64 bounds parse; one past either bound does not.
    EXPECT_EQ(parseInt64("9223372036854775807"),
              int64_t{9223372036854775807LL});
    EXPECT_EQ(parseInt64("-9223372036854775808"),
              std::numeric_limits<int64_t>::min());
    EXPECT_FALSE(parseInt64("9223372036854775808").has_value());
    EXPECT_FALSE(parseInt64("-9223372036854775809").has_value());
}

TEST(Env, ParseInt64RoundTripsBoundaryValues)
{
    for (int64_t v : {std::numeric_limits<int64_t>::min(), int64_t{-1},
                      int64_t{0}, int64_t{1},
                      std::numeric_limits<int64_t>::max()}) {
        auto parsed = parseInt64(std::to_string(v));
        ASSERT_TRUE(parsed.has_value()) << v;
        EXPECT_EQ(*parsed, v);
    }
}

TEST(Flags, ParsesKnownFlagPairs)
{
    std::string csv;
    std::string ckpt = "preset"; // flag absent -> preset survives
    char prog[] = "prog";
    char f1[] = "--csv";
    char v1[] = "out.csv";
    char* argv[] = {prog, f1, v1};
    EXPECT_TRUE(parseFlagArgs(3, argv,
                              {{"--csv", &csv},
                               {"--checkpoint", &ckpt}}));
    EXPECT_EQ(csv, "out.csv");
    EXPECT_EQ(ckpt, "preset");
}

TEST(Flags, RejectsUnknownAndTypoedFlags)
{
    std::string csv;
    char prog[] = "prog";
    char typo[] = "--cvs"; // the classic bench-wasting typo
    char v1[] = "out.csv";
    char* argv[] = {prog, typo, v1};
    EXPECT_FALSE(parseFlagArgs(3, argv, {{"--csv", &csv}}));

    char stray[] = "positional";
    char* argv2[] = {prog, stray};
    EXPECT_FALSE(parseFlagArgs(2, argv2, {{"--csv", &csv}}));
}

TEST(Flags, RejectsFlagMissingItsValue)
{
    std::string csv;
    char prog[] = "prog";
    char f1[] = "--csv";
    char* argv[] = {prog, f1};
    EXPECT_FALSE(parseFlagArgs(2, argv, {{"--csv", &csv}}));
}

TEST(Flags, CsvFlagStillParses)
{
    std::string csv;
    char prog[] = "prog";
    char f1[] = "--csv";
    char v1[] = "x.csv";
    char* argv[] = {prog, f1, v1};
    EXPECT_TRUE(parseCsvFlag(3, argv, csv));
    EXPECT_EQ(csv, "x.csv");
    char* argv2[] = {prog};
    EXPECT_TRUE(parseCsvFlag(1, argv2, csv));
    EXPECT_EQ(csv, "");
}

TEST(Flags, RequireNoArgs)
{
    char prog[] = "prog";
    char* argv1[] = {prog};
    EXPECT_TRUE(requireNoArgs(1, argv1));
    char extra[] = "--surprise";
    char* argv2[] = {prog, extra};
    EXPECT_FALSE(requireNoArgs(2, argv2));
}

TEST(Env, NameListContains)
{
    EXPECT_TRUE(nameListContains("uf unionfind", "uf"));
    EXPECT_TRUE(nameListContains("uf unionfind", "unionfind"));
    EXPECT_FALSE(nameListContains("uf unionfind", "union"));
    EXPECT_FALSE(nameListContains("", "uf"));
}

TEST(ThreadPool, CoversRangeOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](uint64_t b, uint64_t e, unsigned) {
        for (uint64_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    uint64_t sum = 0;
    pool.parallelFor(100, [&](uint64_t b, uint64_t e, unsigned w) {
        EXPECT_EQ(w, 0u);
        for (uint64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, EmptyRange)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&](uint64_t, uint64_t, unsigned) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv({"x", "y"});
    csv.addRow({"1", "2"});
    csv.addNumericRow({3.5, 4.25});
    std::string s = csv.str();
    EXPECT_EQ(s, "x,y\n1,2\n3.5,4.25\n");
}

TEST(Csv, EscapesSpecialCells)
{
    CsvWriter csv({"a"});
    csv.addRow({"hello, world"});
    csv.addRow({"quote\"inside"});
    std::string s = csv.str();
    EXPECT_NE(s.find("\"hello, world\""), std::string::npos);
    EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, WritesFile)
{
    CsvWriter csv({"v"});
    csv.addNumericRow({42.0});
    std::string path = "/tmp/vlq_test_csv.csv";
    ASSERT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "v");
    std::getline(in, line);
    EXPECT_EQ(line, "42");
}

TEST(Csv, FailsOnBadPath)
{
    CsvWriter csv({"v"});
    EXPECT_FALSE(csv.writeFile("/nonexistent-dir/x.csv"));
}

} // namespace
} // namespace vlq
