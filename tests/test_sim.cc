#include <gtest/gtest.h>

#include <cmath>

#include "sim/frame.h"
#include "sim/statevector.h"
#include "sim/tableau.h"
#include "sim/tomography.h"
#include "util/rng.h"

namespace vlq {
namespace {

TEST(StateVector, BellState)
{
    StateVector sv(2);
    sv.h(0);
    sv.cnot(0, 1);
    const auto& a = sv.amplitudes();
    double inv = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(a[0]), inv, 1e-12);
    EXPECT_NEAR(std::abs(a[3]), inv, 1e-12);
    EXPECT_NEAR(std::abs(a[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(a[2]), 0.0, 1e-12);
}

TEST(StateVector, PauliExpectations)
{
    StateVector sv(1);
    EXPECT_NEAR(sv.expectation(PauliString::fromString("Z")), 1.0, 1e-12);
    sv.x(0);
    EXPECT_NEAR(sv.expectation(PauliString::fromString("Z")), -1.0, 1e-12);
    StateVector plus(1);
    plus.h(0);
    EXPECT_NEAR(plus.expectation(PauliString::fromString("X")), 1.0, 1e-12);
    EXPECT_NEAR(plus.expectation(PauliString::fromString("Z")), 0.0, 1e-12);
}

TEST(StateVector, SGateOnPlus)
{
    StateVector sv(1);
    sv.h(0);
    sv.s(0);
    // S|+> = |+i>, the +1 eigenstate of Y.
    EXPECT_NEAR(sv.expectation(PauliString::fromString("Y")), 1.0, 1e-12);
}

TEST(StateVector, TGateSquaredIsS)
{
    StateVector a(1);
    a.h(0);
    a.t(0);
    a.t(0);
    StateVector b(1);
    b.h(0);
    b.s(0);
    EXPECT_NEAR(std::abs(a.overlap(b)), 1.0, 1e-12);
}

TEST(StateVector, MeasureCollapses)
{
    Rng rng(3);
    StateVector sv(2);
    sv.h(0);
    sv.cnot(0, 1);
    bool m0 = sv.measureZ(0, rng);
    bool m1 = sv.measureZ(1, rng);
    EXPECT_EQ(m0, m1); // Bell correlations
    EXPECT_NEAR(sv.probOne(0), m0 ? 1.0 : 0.0, 1e-12);
}

TEST(StateVector, ResetGivesZero)
{
    Rng rng(4);
    StateVector sv(1);
    sv.h(0);
    sv.reset(0, rng);
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
}

TEST(StateVector, SwapMovesState)
{
    StateVector sv(2);
    sv.x(0);
    sv.swapGate(0, 1);
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
    EXPECT_NEAR(sv.probOne(1), 1.0, 1e-12);
}

TEST(Tableau, DeterministicMeasurementOfZero)
{
    TableauSimulator sim(3);
    bool det = false;
    EXPECT_FALSE(sim.measureZ(0, &det));
    EXPECT_TRUE(det);
}

TEST(Tableau, PlusStateRandomThenRepeatable)
{
    TableauSimulator sim(1, 99);
    sim.h(0);
    bool det = true;
    bool first = sim.measureZ(0, &det);
    EXPECT_FALSE(det);
    bool second = sim.measureZ(0, &det);
    EXPECT_TRUE(det);
    EXPECT_EQ(first, second);
}

TEST(Tableau, BellCorrelations)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        TableauSimulator sim(2, seed);
        sim.h(0);
        sim.cnot(0, 1);
        bool a = sim.measureZ(0);
        bool det = false;
        bool b = sim.measureZ(1, &det);
        EXPECT_TRUE(det);
        EXPECT_EQ(a, b);
    }
}

TEST(Tableau, PauliSignTracksState)
{
    TableauSimulator sim(2);
    EXPECT_EQ(sim.pauliSign(PauliString::fromString("ZI")), 1);
    sim.x(0);
    EXPECT_EQ(sim.pauliSign(PauliString::fromString("ZI")), -1);
    sim.h(1);
    EXPECT_EQ(sim.pauliSign(PauliString::fromString("IX")), 1);
    EXPECT_EQ(sim.pauliSign(PauliString::fromString("IZ")), 0); // random
    // Entangled stabilizer: ZZ on Bell pair.
    TableauSimulator bell(2);
    bell.h(0);
    bell.cnot(0, 1);
    EXPECT_EQ(bell.pauliSign(PauliString::fromString("ZZ")), 1);
    EXPECT_EQ(bell.pauliSign(PauliString::fromString("XX")), 1);
    EXPECT_EQ(bell.pauliSign(PauliString::fromString("ZI")), 0);
}

TEST(Tableau, ResetFromEntangled)
{
    TableauSimulator sim(2, 5);
    sim.h(0);
    sim.cnot(0, 1);
    sim.reset(0);
    bool det = false;
    EXPECT_FALSE(sim.measureZ(0, &det));
    EXPECT_TRUE(det);
}

/** Cross-validation: tableau vs state vector on random Clifford
 *  circuits, comparing the sign of random Pauli observables. */
class CrossSim : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CrossSim, TableauMatchesStateVector)
{
    Rng rng(GetParam());
    const size_t n = 5;
    TableauSimulator tab(n, GetParam());
    StateVector sv(n);

    for (int step = 0; step < 60; ++step) {
        switch (rng.nextBelow(4)) {
          case 0: {
            size_t q = rng.nextBelow(n);
            tab.h(q);
            sv.h(q);
            break;
          }
          case 1: {
            size_t q = rng.nextBelow(n);
            tab.s(q);
            sv.s(q);
            break;
          }
          case 2: {
            size_t a = rng.nextBelow(n);
            size_t b = rng.nextBelow(n);
            if (a == b)
                break;
            tab.cnot(a, b);
            sv.cnot(a, b);
            break;
          }
          default: {
            size_t q = rng.nextBelow(n);
            tab.x(q);
            sv.x(q);
            break;
          }
        }
    }

    for (int trial = 0; trial < 20; ++trial) {
        PauliString p(n);
        for (size_t i = 0; i < n; ++i)
            p.set(i, static_cast<Pauli>(rng.nextBelow(4)));
        int sign = tab.pauliSign(p);
        double expect = sv.expectation(p);
        if (sign == 0)
            EXPECT_NEAR(expect, 0.0, 1e-9) << p.str();
        else
            EXPECT_NEAR(expect, static_cast<double>(sign), 1e-9)
                << p.str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSim,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Frame, CnotPropagatesX)
{
    Circuit c(2);
    c.xError(0, 1.0); // deterministic X on qubit 0
    c.cnot(0, 1);
    c.measureZ(0);
    c.measureZ(1);
    FrameSimulator sim(c);
    Rng rng(1);
    BitVec flips = sim.sampleMeasurementFlips(rng);
    EXPECT_TRUE(flips.get(0));
    EXPECT_TRUE(flips.get(1));
}

TEST(Frame, ZErrorInvisibleInZBasis)
{
    Circuit c(1);
    c.zError(0, 1.0);
    c.measureZ(0);
    FrameSimulator sim(c);
    Rng rng(1);
    EXPECT_FALSE(sim.sampleMeasurementFlips(rng).get(0));
}

TEST(Frame, HConvertsZToX)
{
    Circuit c(1);
    c.zError(0, 1.0);
    c.h(0);
    c.measureZ(0);
    FrameSimulator sim(c);
    Rng rng(1);
    EXPECT_TRUE(sim.sampleMeasurementFlips(rng).get(0));
}

TEST(Frame, ResetClearsFrame)
{
    Circuit c(1);
    c.xError(0, 1.0);
    c.reset(0);
    c.measureZ(0);
    FrameSimulator sim(c);
    Rng rng(1);
    EXPECT_FALSE(sim.sampleMeasurementFlips(rng).get(0));
}

TEST(Frame, SwapMovesFrame)
{
    Circuit c(2);
    c.xError(0, 1.0);
    c.swapGate(0, 1);
    c.measureZ(0);
    c.measureZ(1);
    FrameSimulator sim(c);
    Rng rng(1);
    BitVec flips = sim.sampleMeasurementFlips(rng);
    EXPECT_FALSE(flips.get(0));
    EXPECT_TRUE(flips.get(1));
}

TEST(Frame, MeasurementFlipProbability)
{
    Circuit c(1);
    c.measureZ(0, 0.25);
    FrameSimulator sim(c);
    Rng rng(42);
    int flips = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        if (sim.sampleMeasurementFlips(rng).get(0))
            ++flips;
    EXPECT_NEAR(static_cast<double>(flips) / n, 0.25, 0.01);
}

TEST(Frame, InjectedFaultPropagation)
{
    Circuit c(2);
    c.depolarize1(0, 0.001); // op 0: the injection site
    c.cnot(0, 1);
    c.measureZ(0);
    c.measureZ(1);
    FrameSimulator sim(c);
    BitVec x = sim.propagateInjected(0, Pauli::X);
    EXPECT_TRUE(x.get(0));
    EXPECT_TRUE(x.get(1));
    BitVec z = sim.propagateInjected(0, Pauli::Z);
    EXPECT_FALSE(z.get(0));
    EXPECT_FALSE(z.get(1));
}

TEST(Frame, DetectorAndObservableHelpers)
{
    Circuit c(1);
    uint32_t m0 = c.measureZ(0);
    uint32_t m1 = c.measureZ(0);
    Detector d;
    d.measurements = {m0, m1};
    c.addDetector(d);
    uint32_t obs = c.addObservable();
    c.observableInclude(obs, m1);

    BitVec flips(2);
    flips.set(0, true);
    BitVec det = FrameSimulator::detectorFlips(c, flips);
    EXPECT_TRUE(det.get(0));
    EXPECT_EQ(FrameSimulator::observableFlips(c, flips), 0u);
    flips.set(1, true);
    det = FrameSimulator::detectorFlips(c, flips);
    EXPECT_FALSE(det.get(0));
    EXPECT_EQ(FrameSimulator::observableFlips(c, flips), 1u);
}

TEST(PauliPropagatorTest, CnotConjugation)
{
    Circuit c(2);
    c.cnot(0, 1);
    PauliString p = PauliString::fromString("XI");
    int sign = 1;
    PauliPropagator::conjugate(p, sign, c);
    EXPECT_EQ(p.str(), "XX");
    EXPECT_EQ(sign, 1);

    p = PauliString::fromString("IZ");
    PauliPropagator::conjugate(p, sign, c);
    EXPECT_EQ(p.str(), "ZZ");
    EXPECT_EQ(sign, 1);

    p = PauliString::fromString("XZ");
    sign = 1;
    PauliPropagator::conjugate(p, sign, c);
    EXPECT_EQ(p.str(), "YY");
    EXPECT_EQ(sign, -1); // CNOT (X o Z) CNOT = -Y o Y
}

TEST(PauliPropagatorTest, HAndSConjugation)
{
    Circuit c(1);
    c.h(0);
    PauliString p = PauliString::fromString("X");
    int sign = 1;
    PauliPropagator::conjugate(p, sign, c);
    EXPECT_EQ(p.str(), "Z");
    EXPECT_EQ(sign, 1);

    p = PauliString::fromString("Y");
    sign = 1;
    PauliPropagator::conjugate(p, sign, c);
    EXPECT_EQ(p.str(), "Y");
    EXPECT_EQ(sign, -1);

    Circuit cs(1);
    cs.s(0);
    p = PauliString::fromString("X");
    sign = 1;
    PauliPropagator::conjugate(p, sign, cs);
    EXPECT_EQ(p.str(), "Y");
    EXPECT_EQ(sign, 1);
}

TEST(TomographyTest, CnotCircuitMatchesIdealCnot)
{
    Circuit c(2);
    c.cnot(0, 1);
    auto ptm = Tomography::ofCircuit(c, 2);
    auto ideal = Tomography::idealCnot(2, 0, 1);
    EXPECT_LT(Tomography::maxDifference(ptm, ideal), 1e-9);
    EXPECT_NEAR(Tomography::processFidelity(ptm, ideal), 1.0, 1e-9);
}

TEST(TomographyTest, SwapConjugatedCnot)
{
    // CNOT(0->1) implemented by swapping, CNOT(1->0), swapping back.
    Circuit c(2);
    c.swapGate(0, 1);
    c.cnot(1, 0);
    c.swapGate(0, 1);
    auto ptm = Tomography::ofCircuit(c, 2);
    auto ideal = Tomography::idealCnot(2, 0, 1);
    EXPECT_LT(Tomography::maxDifference(ptm, ideal), 1e-9);
}

TEST(TomographyTest, DistinguishesDifferentGates)
{
    Circuit c(2);
    c.cnot(1, 0); // reversed control/target
    auto ptm = Tomography::ofCircuit(c, 2);
    auto ideal = Tomography::idealCnot(2, 0, 1);
    EXPECT_GT(Tomography::maxDifference(ptm, ideal), 0.5);
}

/**
 * The paper's transversal CNOT verification (Sec. III-B, X3 in
 * DESIGN.md): the mode-transmon-mediated CNOT sequence -- load the
 * control into the transmon, CNOT to the mode of the target, store --
 * implements an exact CNOT between two cavity modes.
 */
TEST(TomographyTest, TransversalCnotBuildingBlock)
{
    // Wires: 0 = control mode, 1 = target mode, 2 = transmon.
    Circuit c(3);
    c.swapGate(0, 2);  // load control
    c.cnot(2, 1);      // transmon-mode CNOT onto target mode
    c.swapGate(0, 2);  // store control
    auto ptm = Tomography::ofCircuit(c, 3);
    Circuit ideal(3);
    ideal.cnot(0, 1);
    auto ptmIdeal = Tomography::ofCircuit(ideal, 3);
    EXPECT_LT(Tomography::maxDifference(ptm, ptmIdeal), 1e-9);
}

} // namespace
} // namespace vlq
