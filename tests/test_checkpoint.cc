#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mc/checkpoint.h"
#include "mc/monte_carlo.h"
#include "mc/sensitivity.h"
#include "mc/threshold.h"

namespace vlq {
namespace {

std::string
tmpPath(const std::string& name)
{
    return testing::TempDir() + "vlq_ckpt_" + name;
}

void
removeFile(const std::string& path)
{
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
}

GeneratorConfig
ckptConfig(int d, double p)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.cavityDepth = 10;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

TEST(Checkpoint, RoundTrip)
{
    std::string path = tmpPath("roundtrip.ckpt");
    removeFile(path);

    McCheckpoint a;
    ASSERT_EQ(a.open(path, "seed=1 trials=100"), "");
    EXPECT_TRUE(a.enabled());
    EXPECT_EQ(a.numPoints(), 0u);
    a.update(0x1111, CheckpointEntry{64, 3, false});
    a.update(0x2222, CheckpointEntry{100, 7, true});
    ASSERT_EQ(a.save(), "");

    // Header is self-describing.
    std::string text = readFile(path);
    EXPECT_EQ(text.rfind("vlq-mc-checkpoint 1\n", 0), 0u);
    EXPECT_NE(text.find("config seed=1 trials=100"), std::string::npos);
    EXPECT_NE(text.find("end 2"), std::string::npos);

    McCheckpoint b;
    ASSERT_EQ(b.open(path, "seed=1 trials=100"), "");
    ASSERT_EQ(b.numPoints(), 2u);
    const CheckpointEntry* e1 = b.find(0x1111);
    const CheckpointEntry* e2 = b.find(0x2222);
    ASSERT_NE(e1, nullptr);
    ASSERT_NE(e2, nullptr);
    EXPECT_EQ(e1->trialsDone, 64u);
    EXPECT_EQ(e1->failures, 3u);
    EXPECT_FALSE(e1->done);
    EXPECT_EQ(e2->trialsDone, 100u);
    EXPECT_EQ(e2->failures, 7u);
    EXPECT_TRUE(e2->done);
    EXPECT_EQ(b.find(0x3333), nullptr);
    removeFile(path);
}

TEST(Checkpoint, SavedFilesAreByteDeterministic)
{
    std::string pa = tmpPath("det_a.ckpt");
    std::string pb = tmpPath("det_b.ckpt");
    removeFile(pa);
    removeFile(pb);
    // Same entries inserted in different orders serialize identically
    // (points are sorted by key), which is what lets the CI smoke step
    // compare a clean and a kill/resume run with cmp.
    McCheckpoint a;
    ASSERT_EQ(a.open(pa, "seed=9"), "");
    a.update(2, CheckpointEntry{10, 1, true});
    a.update(1, CheckpointEntry{20, 2, true});
    ASSERT_EQ(a.save(), "");
    McCheckpoint b;
    ASSERT_EQ(b.open(pb, "seed=9"), "");
    b.update(1, CheckpointEntry{20, 2, true});
    b.update(2, CheckpointEntry{10, 1, true});
    ASSERT_EQ(b.save(), "");
    EXPECT_EQ(readFile(pa), readFile(pb));
    removeFile(pa);
    removeFile(pb);
}

TEST(Checkpoint, RejectsCorrupt)
{
    std::string path = tmpPath("corrupt.ckpt");
    writeFile(path, "total garbage\nnot a checkpoint\n");
    McCheckpoint c;
    std::string err = c.open(path, "seed=1");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("not a vlq-mc-checkpoint"), std::string::npos);
    EXPECT_FALSE(c.enabled());

    writeFile(path, "vlq-mc-checkpoint 1\nfingerprint zzzz\nconfig x\n"
                    "end 0\n");
    EXPECT_NE(c.open(path, "x"), "");

    // Malformed point line ("\npoint": the magic line itself contains
    // the substring "point").
    McCheckpoint good;
    removeFile(path);
    ASSERT_EQ(good.open(path, "seed=1"), "");
    good.update(7, CheckpointEntry{10, 2, false});
    ASSERT_EQ(good.save(), "");
    std::string text = readFile(path);
    std::string header = text.substr(0, text.find("\npoint") + 1);
    writeFile(path, header +
                    "point xyz trials=banana failures=2 done=0\nend 1\n");
    EXPECT_NE(c.open(path, "seed=1"), "");

    // failures > trials is rejected as corrupt.
    writeFile(path, header +
                    "point 0000000000000007 trials=1 failures=2 done=0\n"
                    "end 1\n");
    std::string countErr = c.open(path, "seed=1");
    EXPECT_NE(countErr.find("failures > trials"), std::string::npos);
    removeFile(path);
}

TEST(Checkpoint, RejectsTruncated)
{
    std::string path = tmpPath("truncated.ckpt");
    removeFile(path);
    McCheckpoint a;
    ASSERT_EQ(a.open(path, "seed=1"), "");
    a.update(1, CheckpointEntry{10, 1, false});
    a.update(2, CheckpointEntry{20, 2, false});
    ASSERT_EQ(a.save(), "");

    // Drop the trailing end marker: a partially-flushed file.
    std::string text = readFile(path);
    writeFile(path, text.substr(0, text.find("end")));
    McCheckpoint b;
    std::string err = b.open(path, "seed=1");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("truncated"), std::string::npos);

    // Drop a point line but keep the end marker: count mismatch.
    std::string cut = text;
    size_t p2 = cut.rfind("point");
    cut.erase(p2, cut.find('\n', p2) - p2 + 1);
    writeFile(path, cut);
    err = b.open(path, "seed=1");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("count mismatch"), std::string::npos);
    removeFile(path);
}

TEST(Checkpoint, RejectsVersionMismatch)
{
    std::string path = tmpPath("version.ckpt");
    writeFile(path,
              "vlq-mc-checkpoint 99\nfingerprint 0000000000000000\n"
              "config x\nend 0\n");
    McCheckpoint c;
    std::string err = c.open(path, "x");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("version"), std::string::npos);
    removeFile(path);
}

TEST(Checkpoint, RejectsFingerprintMismatch)
{
    std::string path = tmpPath("fingerprint.ckpt");
    removeFile(path);
    McCheckpoint a;
    ASSERT_EQ(a.open(path, "seed=1 trials=100 decoder=mwpm"), "");
    ASSERT_EQ(a.save(), "");

    McCheckpoint b;
    std::string err = b.open(path, "seed=2 trials=100 decoder=mwpm");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("fingerprint mismatch"), std::string::npos);
    // The error shows both configs so the operator can see what moved.
    EXPECT_NE(err.find("seed=1"), std::string::npos);
    EXPECT_NE(err.find("seed=2"), std::string::npos);
    removeFile(path);
}

TEST(Checkpoint, IgnoresLeftoverTempFile)
{
    std::string path = tmpPath("leftover.ckpt");
    removeFile(path);

    // Crash before the first rename: only a temp file exists. The tmp
    // was never committed, so the run starts fresh.
    writeFile(path + ".tmp", "half-written garb");
    McCheckpoint a;
    ASSERT_EQ(a.open(path, "seed=1"), "");
    EXPECT_EQ(a.numPoints(), 0u);
    a.update(1, CheckpointEntry{5, 0, false});
    ASSERT_EQ(a.save(), "");

    // Crash mid-save after a good commit: stale tmp next to a valid
    // main file. The main file is the consistent state.
    writeFile(path + ".tmp", "half-written garb");
    McCheckpoint b;
    ASSERT_EQ(b.open(path, "seed=1"), "");
    ASSERT_EQ(b.numPoints(), 1u);
    EXPECT_EQ(b.find(1)->trialsDone, 5u);
    removeFile(path);
}

TEST(Checkpoint, PointKeySeparatesConfigs)
{
    GeneratorConfig base = ckptConfig(3, 5e-3);
    uint64_t key = checkpointPointKey(EmbeddingKind::Compact, base);
    EXPECT_EQ(checkpointPointKey(EmbeddingKind::Compact, base), key);

    GeneratorConfig other = base;
    other.memoryBasis = CheckBasis::X;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, other), key);
    other = base;
    other.distance = 5;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, other), key);
    other = base;
    other.noise.p2 *= 1.0000001;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, other), key);
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Natural, base), key);
}

TEST(Checkpoint, PointKeyCoversCompositeNoiseSources)
{
    GeneratorConfig base = ckptConfig(3, 5e-3);
    uint64_t key = checkpointPointKey(EmbeddingKind::Compact, base);

    // A composite model with every source at its default is the same
    // run as the flat model: existing checkpoint files must keep
    // resuming, so the key is unchanged.
    GeneratorConfig uniform = base;
    uniform.noise.bias.rX = uniform.noise.bias.rY =
        uniform.noise.bias.rZ = 1.0;
    uniform.noise.readout.p0to1 = -1.0;
    uniform.noise.erasure.fraction = 0.0;
    ASSERT_TRUE(uniform.noise.isUniform());
    EXPECT_EQ(checkpointPointKey(EmbeddingKind::Compact, uniform), key);

    // Each source, once active, changes the generated circuit and so
    // must change the key -- and distinct settings get distinct keys.
    GeneratorConfig biased = base;
    biased.noise.bias.rZ = 10.0;
    uint64_t biasedKey =
        checkpointPointKey(EmbeddingKind::Compact, biased);
    EXPECT_NE(biasedKey, key);
    biased.noise.bias.rZ = 100.0;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, biased),
              biasedKey);

    GeneratorConfig readout = base;
    readout.noise.readout.p0to1 = 0.02;
    readout.noise.readout.p1to0 = 0.005;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, readout), key);

    GeneratorConfig erased = base;
    erased.noise.erasure.fraction = 0.5;
    uint64_t erasedKey =
        checkpointPointKey(EmbeddingKind::Compact, erased);
    EXPECT_NE(erasedKey, key);
    erased.noise.erasure.heralded = false;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, erased),
              erasedKey);

    GeneratorConfig damped = base;
    damped.noise.damping.gamma = 1e-3;
    EXPECT_NE(checkpointPointKey(EmbeddingKind::Compact, damped), key);
}

/** Progress snapshots of an uninterrupted run = every possible kill
 *  frontier (batches commit in trial order, so a kill leaves exactly
 *  one of these committed states on disk). */
std::vector<McProgress>
collectSnapshots(EmbeddingKind embedding, const GeneratorConfig& config,
                 McOptions options, BinomialEstimate& reference)
{
    std::vector<McProgress> snapshots;
    options.progress = [&](const McProgress& p) {
        snapshots.push_back(p);
    };
    reference = estimateLogicalErrorBasis(embedding, config, options);
    return snapshots;
}

void
expectResumeBitIdentity(const McOptions& baseOptions, uint64_t target)
{
    GeneratorConfig cfg = ckptConfig(3, 9e-3);
    McOptions options = baseOptions;
    options.targetFailures = target;

    BinomialEstimate reference;
    std::vector<McProgress> snapshots = collectSnapshots(
        EmbeddingKind::Baseline2D, cfg, options, reference);
    ASSERT_GT(snapshots.size(), 2u);
    EXPECT_GT(reference.successes, 0u);

    uint64_t pointKey =
        checkpointPointKey(EmbeddingKind::Baseline2D, cfg);
    std::string fingerprint = mcRunFingerprintSummary(options);
    // Tests run as parallel ctest processes: keep scratch paths unique.
    std::string path =
        tmpPath("resume_" + std::to_string(target) + ".ckpt");

    // Kill after every batch: for each committed frontier, materialize
    // the checkpoint a kill at that moment leaves behind, resume from
    // it, and demand counts bit-identical to the uninterrupted run.
    for (const McProgress& snap : snapshots) {
        if (snap.trialsDone >= reference.trials)
            continue; // the final commit: nothing left to resume
        removeFile(path);
        McCheckpoint state;
        ASSERT_EQ(state.open(path, fingerprint), "");
        state.update(pointKey,
                     CheckpointEntry{snap.trialsDone, snap.failures,
                                     false});
        ASSERT_EQ(state.save(), "");

        McOptions resumed = options;
        resumed.checkpointPath = path;
        BinomialEstimate est = estimateLogicalErrorBasis(
            EmbeddingKind::Baseline2D, cfg, resumed);
        EXPECT_EQ(est.successes, reference.successes)
            << "kill at trial " << snap.trialsDone;
        EXPECT_EQ(est.trials, reference.trials)
            << "kill at trial " << snap.trialsDone;

        // The file now records the finished point.
        McCheckpoint after;
        ASSERT_EQ(after.open(path, fingerprint), "");
        const CheckpointEntry* entry = after.find(pointKey);
        ASSERT_NE(entry, nullptr);
        EXPECT_TRUE(entry->done);
        EXPECT_EQ(entry->trialsDone, reference.trials);
        EXPECT_EQ(entry->failures, reference.successes);
    }
    removeFile(path);
}

TEST(CheckpointResume, BitIdenticalFullBudget)
{
    McOptions options;
    options.trials = 600;
    options.seed = 1234;
    options.batchSize = 64;
    expectResumeBitIdentity(options, 0);
}

TEST(CheckpointResume, BitIdenticalUnderEarlyStop)
{
    McOptions options;
    options.trials = 4000;
    options.seed = 4321;
    // Small batches so the early stop lands several committed batches
    // in: every one of those frontiers is a tested kill point.
    options.batchSize = 8;
    expectResumeBitIdentity(options, 12);
}

TEST(CheckpointResume, ResumeWithDifferentBatchSizeStillBitIdentical)
{
    // batchSize only controls commit granularity, so a checkpoint cut
    // at any frontier resumes bit-identically even when the resumed
    // process uses a different batch size -- but the fingerprint pins
    // batchSize (it changes the kill frontiers), so exercise the
    // engine path via an explicit shared fingerprint.
    GeneratorConfig cfg = ckptConfig(3, 9e-3);
    McOptions options;
    options.trials = 500;
    options.seed = 99;
    options.batchSize = 64;

    BinomialEstimate reference;
    std::vector<McProgress> snapshots = collectSnapshots(
        EmbeddingKind::Baseline2D, cfg, options, reference);
    ASSERT_GT(snapshots.size(), 1u);
    const McProgress& snap = snapshots[snapshots.size() / 2];
    ASSERT_LT(snap.trialsDone, reference.trials);

    std::string path = tmpPath("rebatch.ckpt");
    removeFile(path);
    McCheckpoint state;
    ASSERT_EQ(state.open(path, "shared-fingerprint"), "");
    state.update(checkpointPointKey(EmbeddingKind::Baseline2D, cfg),
                 CheckpointEntry{snap.trialsDone, snap.failures, false});
    ASSERT_EQ(state.save(), "");

    McOptions resumed = options;
    resumed.batchSize = 17;
    resumed.checkpointPath = path;
    resumed.checkpointFingerprint = "shared-fingerprint";
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, resumed);
    EXPECT_EQ(est.successes, reference.successes);
    EXPECT_EQ(est.trials, reference.trials);
    removeFile(path);
}

TEST(CheckpointResume, DonePointSkipsSampling)
{
    GeneratorConfig cfg = ckptConfig(3, 5e-3);
    McOptions options;
    options.trials = 1000000; // would take minutes if actually sampled
    options.seed = 7;

    std::string path = tmpPath("done.ckpt");
    removeFile(path);
    McCheckpoint state;
    ASSERT_EQ(state.open(path, mcRunFingerprintSummary(options)), "");
    // Fabricated counts a real run could never produce under this
    // budget: getting them back proves no sampling happened.
    state.update(checkpointPointKey(EmbeddingKind::Baseline2D, cfg),
                 CheckpointEntry{123, 45, true});
    ASSERT_EQ(state.save(), "");

    options.checkpointPath = path;
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, options);
    EXPECT_EQ(est.trials, 123u);
    EXPECT_EQ(est.successes, 45u);
    removeFile(path);
}

TEST(CheckpointResume, ProgressIsGlobalAndMonotoneAcrossResume)
{
    GeneratorConfig cfg = ckptConfig(3, 9e-3);
    McOptions options;
    options.trials = 400;
    options.seed = 11;
    options.batchSize = 32;

    BinomialEstimate reference;
    std::vector<McProgress> snapshots = collectSnapshots(
        EmbeddingKind::Baseline2D, cfg, options, reference);
    ASSERT_GT(snapshots.size(), 3u);
    const McProgress& snap = snapshots[1];

    std::string path = tmpPath("progress.ckpt");
    removeFile(path);
    McCheckpoint state;
    ASSERT_EQ(state.open(path, mcRunFingerprintSummary(options)), "");
    state.update(checkpointPointKey(EmbeddingKind::Baseline2D, cfg),
                 CheckpointEntry{snap.trialsDone, snap.failures, false});
    ASSERT_EQ(state.save(), "");

    // The resumed session must report the full-run budget and global
    // committed counts, continuing monotonically past the frontier --
    // never restarting a per-session count at zero.
    McOptions resumed = options;
    resumed.checkpointPath = path;
    uint64_t lastTrials = snap.trialsDone;
    uint64_t lastFailures = snap.failures;
    resumed.progress = [&](const McProgress& p) {
        EXPECT_EQ(p.totalTrials, resumed.trials);
        EXPECT_GT(p.trialsDone, snap.trialsDone);
        EXPECT_GE(p.trialsDone, lastTrials);
        EXPECT_GE(p.failures, lastFailures);
        lastTrials = p.trialsDone;
        lastFailures = p.failures;
    };
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, resumed);
    EXPECT_EQ(est.successes, reference.successes);
    EXPECT_EQ(lastTrials, reference.trials);
    removeFile(path);
}

TEST(CheckpointResume, EngineRejectsMismatchedFingerprint)
{
    GeneratorConfig cfg = ckptConfig(3, 5e-3);
    McOptions options;
    options.trials = 100;
    options.seed = 5;

    std::string path = tmpPath("engine_mismatch.ckpt");
    removeFile(path);
    McCheckpoint state;
    ASSERT_EQ(state.open(path, "some other run"), "");
    ASSERT_EQ(state.save(), "");

    options.checkpointPath = path;
    EXPECT_EXIT(
        estimateLogicalErrorBasis(EmbeddingKind::Baseline2D, cfg,
                                  options),
        testing::ExitedWithCode(1), "fingerprint mismatch");
    removeFile(path);
}

TEST(CheckpointResume, ThresholdScanSkipsCompletedPoints)
{
    EvaluationSetup setup{EmbeddingKind::Baseline2D,
                          ExtractionSchedule::AllAtOnce};
    ThresholdScanConfig cfg;
    cfg.distances = {3, 5};
    cfg.physicalPs = {8e-3, 2e-2};
    cfg.mc.trials = 150;
    cfg.mc.seed = 21;
    cfg.mc.checkpointPath = tmpPath("scan.ckpt");
    removeFile(cfg.mc.checkpointPath);

    ThresholdResult first = scanThreshold(setup, cfg);

    // All 8 (d, p, basis) points are recorded; the second scan is
    // served entirely from the checkpoint and must reproduce the
    // counts exactly.
    ThresholdResult second = scanThreshold(setup, cfg);
    ASSERT_EQ(second.curves.size(), first.curves.size());
    for (size_t i = 0; i < first.curves.size(); ++i) {
        for (size_t j = 0; j < first.curves[i].points.size(); ++j) {
            const LogicalErrorPoint& a = first.curves[i].points[j];
            const LogicalErrorPoint& b = second.curves[i].points[j];
            EXPECT_EQ(a.basisZ.successes, b.basisZ.successes);
            EXPECT_EQ(a.basisZ.trials, b.basisZ.trials);
            EXPECT_EQ(a.basisX.successes, b.basisX.successes);
            EXPECT_EQ(a.basisX.trials, b.basisX.trials);
        }
    }

    // And an un-checkpointed run agrees too (the checkpoint changed
    // nothing about the sampled counts).
    ThresholdScanConfig plain = cfg;
    plain.mc.checkpointPath.clear();
    ThresholdResult third = scanThreshold(setup, plain);
    EXPECT_EQ(third.curves[0].points[0].basisZ.successes,
              first.curves[0].points[0].basisZ.successes);
    removeFile(cfg.mc.checkpointPath);
}

TEST(CheckpointResume, SensitivityPanelReproducesFromCheckpoint)
{
    GeneratorConfig base = ckptConfig(3, 5e-3);
    SensitivitySpec spec;
    spec.name = "test panel";
    spec.axisLabel = "x";
    spec.values = {1e-3, 8e-3};
    spec.apply = [](GeneratorConfig& c, double x) { c.noise.p2 = x; };

    McOptions mc;
    mc.trials = 120;
    mc.seed = 33;
    mc.checkpointPath = tmpPath("panel.ckpt");
    removeFile(mc.checkpointPath);

    std::vector<int> distances{3};
    SensitivityResult first =
        runSensitivity(EmbeddingKind::Compact, base, spec, distances, mc);
    SensitivityResult second =
        runSensitivity(EmbeddingKind::Compact, base, spec, distances, mc);
    for (size_t i = 0; i < first.points.size(); ++i) {
        EXPECT_EQ(first.points[i][0].basisZ.successes,
                  second.points[i][0].basisZ.successes);
        EXPECT_EQ(first.points[i][0].basisX.successes,
                  second.points[i][0].basisX.successes);
    }
    removeFile(mc.checkpointPath);
}

} // namespace
} // namespace vlq
