#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/generator_common.h"
#include "decoder/union_find.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "mc/checkpoint.h"
#include "mc/monte_carlo.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace vlq {
namespace {

/**
 * Test-order note: gtest runs suites in registration order, and the
 * AObsDisabled suite MUST run before anything flips the obs flags on
 * -- its whole point is observing the process before the registry
 * exists. Keep it first in this file and don't enable metrics in any
 * earlier suite.
 */

GeneratorConfig
obsConfig(int d, double p)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.cavityDepth = 10;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

/** Keep a value observable without pulling in google-benchmark. */
template <typename T>
void
doNotOptimize(const T& value)
{
    volatile T sink = value;
    (void)sink;
}

TEST(AObsDisabled, PipelineNeverAllocatesRegistry)
{
    ASSERT_FALSE(obs::metricsEnabled());
    ASSERT_FALSE(obs::traceEnabled());

    // Run the fully instrumented pipeline end to end: sampler, batched
    // union-find decode, sequencer commit, progress callbacks.
    McOptions options;
    options.trials = 300;
    options.seed = 5;
    options.decoder = DecoderKind::UnionFind;
    options.batchSize = 64;
    options.progress = [](const McProgress&) {};
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, obsConfig(3, 9e-3), options);
    EXPECT_EQ(est.trials, 300u);

    // The zero-cost contract: every instrumentation site was crossed,
    // yet the registry singleton was never even constructed, and a
    // scrape returns nothing without creating it either.
    EXPECT_FALSE(obs::registryCreated());
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.histograms.empty());
    EXPECT_FALSE(obs::registryCreated());
    EXPECT_TRUE(obs::reportedPoints().empty());
}

TEST(AObsDisabled, DisabledSiteCostIsUnderOnePercentOfDecode)
{
    ASSERT_FALSE(obs::metricsEnabled());

    // Pin the decode input: one pre-sampled 256-shot batch, decoded
    // repeatedly (the BM_DecodeBatchUf loop from bench_micro).
    GeneratorConfig cfg = obsConfig(5, 8e-3);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    UnionFindDecoder decoder(dem);
    const uint32_t shots = 256;
    ShotBatch batch;
    batch.reset(dem.numDetectors(), dem.numObservables(), shots, 0);
    sampler.sampleBatchInto(Rng(1), batch);
    std::vector<uint32_t> predictions(shots);

    decoder.decodeBatch(batch, std::span<uint32_t>(predictions));
    auto t0 = std::chrono::steady_clock::now();
    const int reps = 20;
    for (int i = 0; i < reps; ++i)
        decoder.decodeBatch(batch, std::span<uint32_t>(predictions));
    auto t1 = std::chrono::steady_clock::now();
    doNotOptimize(predictions[0]);
    double decodeNsPerBatch =
        std::chrono::duration<double, std::nano>(t1 - t0).count()
        / reps;

    // Cost of one disabled instrumentation site: a StageTimer whose
    // flags load comes back zero, plus the metricsEnabled() branch a
    // counter site performs. Amortized over a large loop.
    const int siteReps = 1000000;
    auto t2 = std::chrono::steady_clock::now();
    uint64_t guardSink = 0;
    for (int i = 0; i < siteReps; ++i) {
        obs::StageTimer timer("test.obs.disabled_site");
        if (obs::metricsEnabled())
            guardSink += 1;
    }
    auto t3 = std::chrono::steady_clock::now();
    doNotOptimize(guardSink);
    double siteNs =
        std::chrono::duration<double, std::nano>(t3 - t2).count()
        / siteReps;

    // The batched decode path crosses a handful of sites per batch
    // (batch timer, gather timer, counter guards, per-shot fast-path
    // guards are behind the same single load). Budget 300 sites per
    // batch -- more than one per shot -- and demand they stay under 1%
    // of the measured decode time.
    EXPECT_LT(300.0 * siteNs, 0.01 * decodeNsPerBatch)
        << "disabled site " << siteNs << " ns, decode batch "
        << decodeNsPerBatch << " ns";
    EXPECT_FALSE(obs::registryCreated());
}

TEST(ObsMetrics, CountersAndHistogramsMergeAcrossPoolThreads)
{
    obs::setMetricsEnabled(true);
    const obs::Counter counter = obs::Counter::get("test.obs.merge");
    const obs::Histogram hist =
        obs::Histogram::get("test.obs.merge_hist");

    // Spread adds over short-lived pool threads: their shards retire
    // on thread exit and must still be visible to a later scrape.
    ThreadPool pool(4);
    const uint64_t items = 64;
    pool.parallelFor(items, [&](uint64_t begin, uint64_t end, unsigned) {
        for (uint64_t i = begin; i < end; ++i) {
            counter.add(i + 1);
            hist.record(i + 1);
        }
    });

    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const uint64_t expected = items * (items + 1) / 2; // sum 1..64
    EXPECT_EQ(snap.counter("test.obs.merge"), expected);
    const obs::HistogramSnapshot* h =
        snap.histogram("test.obs.merge_hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, items);
    EXPECT_EQ(h->sum, expected);
    EXPECT_EQ(h->min, 1u);
    EXPECT_EQ(h->max, items);
    obs::setMetricsEnabled(false);
}

TEST(ObsMetrics, GaugeLastWriteWins)
{
    obs::setMetricsEnabled(true);
    const obs::Gauge g = obs::Gauge::get("test.obs.gauge");
    g.set(7);
    g.set(-3);
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    bool found = false;
    for (const auto& [name, value] : snap.gauges) {
        if (name == "test.obs.gauge") {
            EXPECT_EQ(value, -3);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    obs::setMetricsEnabled(false);
}

TEST(ObsMetrics, HistogramQuantilesAreOrderedAndClamped)
{
    obs::setMetricsEnabled(true);
    const obs::Histogram hist = obs::Histogram::get("test.obs.quant");
    hist.record(1);
    for (int i = 0; i < 1000; ++i)
        hist.record(100);
    hist.record(10000);
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::HistogramSnapshot* h = snap.histogram("test.obs.quant");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1002u);
    EXPECT_EQ(h->min, 1u);
    EXPECT_EQ(h->max, 10000u);
    double p50 = h->quantile(0.50);
    double p90 = h->quantile(0.90);
    double p99 = h->quantile(0.99);
    EXPECT_LE(static_cast<double>(h->min), p50);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, static_cast<double>(h->max));
    // The mass sits in the [64, 128) bucket; geometric interpolation
    // must place the median inside it.
    EXPECT_GE(p50, 64.0);
    EXPECT_LE(p50, 128.0);
    EXPECT_DOUBLE_EQ(h->mean(),
                     static_cast<double>(h->sum) / 1002.0);
    obs::setMetricsEnabled(false);
}

TEST(ObsTrace, TimelineJsonIsSchemaValid)
{
    obs::setTraceEnabled(true);
    {
        obs::StageTimer span("test.obs.span");
    }
    obs::traceCounter("test.obs.counter", 42);
    // Worker spans land on per-worker lanes (w+1).
    ThreadPool pool(3);
    pool.parallelFor(3, [](uint64_t, uint64_t, unsigned) {
        obs::StageTimer span("test.obs.worker_span");
    });
    obs::setTraceEnabled(false);

    std::string json = obs::traceToJson();
    std::string err;
    EXPECT_TRUE(obs::jsonLint(json, &err)) << err;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("test.obs.span"), std::string::npos);
    EXPECT_NE(json.find("test.obs.worker_span"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_EQ(obs::traceDroppedEvents(), 0u);
}

TEST(ObsReport, EndOfRunReportIsValidJsonWithPipelineMetrics)
{
    obs::setMetricsEnabled(true);
    McOptions options;
    options.trials = 400;
    options.seed = 21;
    options.decoder = DecoderKind::UnionFind;
    options.batchSize = 64;
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, obsConfig(3, 9e-3), options);
    obs::setMetricsEnabled(false);

    // The engine reported the finished point with global counts.
    std::vector<obs::PointReport> points = obs::reportedPoints();
    ASSERT_FALSE(points.empty());
    const obs::PointReport& p = points.back();
    EXPECT_EQ(p.embedding, "baseline");
    EXPECT_EQ(p.distance, 3);
    EXPECT_EQ(p.trials, est.trials);
    EXPECT_EQ(p.failures, est.successes);
    EXPECT_EQ(p.sessionTrials, est.trials);
    EXPECT_GE(p.wallSeconds, 0.0);

    // Pipeline counters flowed end to end.
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    EXPECT_GE(snap.counter("sampler.shots"), 400u);
    EXPECT_EQ(snap.counter("mc.trials_committed"),
              snap.counter("sampler.shots"));
    EXPECT_GT(snap.counter("uf.decode.exact_fastpath")
                  + snap.counter("uf.decode.growth"),
              0u);
    EXPECT_NE(snap.histogram("decode.batch"), nullptr);
    EXPECT_NE(snap.histogram("mc.batch"), nullptr);

    std::string json = obs::buildReportJson();
    std::string err;
    EXPECT_TRUE(obs::jsonLint(json, &err)) << err;
    EXPECT_NE(json.find("\"schema\":\"vlq-metrics-report/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"uf_fastpath_hit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"sampler.sample_batch\""), std::string::npos);
}

TEST(ObsReport, MetricsOnDoesNotPerturbCounts)
{
    GeneratorConfig cfg = obsConfig(3, 9e-3);
    McOptions options;
    options.trials = 500;
    options.seed = 77;
    options.decoder = DecoderKind::UnionFind;
    options.batchSize = 32;

    ASSERT_FALSE(obs::metricsEnabled());
    BinomialEstimate off = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, options);

    obs::setMetricsEnabled(true);
    obs::setTraceEnabled(true);
    BinomialEstimate on = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, options);
    obs::setMetricsEnabled(false);
    obs::setTraceEnabled(false);

    // Instrumentation reads clocks and bumps counters but never
    // touches the RNG streams or the commit order.
    EXPECT_EQ(on.trials, off.trials);
    EXPECT_EQ(on.successes, off.successes);
}

TEST(ObsHeartbeat, ProgressIsMonotoneCompleteAndCarriesThroughput)
{
    GeneratorConfig cfg = obsConfig(3, 9e-3);
    McOptions options;
    options.trials = 600;
    options.seed = 13;
    options.batchSize = 32;

    std::vector<McProgress> events;
    options.progress = [&](const McProgress& p) {
        events.push_back(p);
    };
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, options);

    ASSERT_FALSE(events.empty());
    uint64_t lastTrials = 0;
    uint64_t lastFailures = 0;
    double lastElapsed = 0.0;
    for (const McProgress& p : events) {
        EXPECT_GE(p.trialsDone, lastTrials);
        EXPECT_GE(p.failures, lastFailures);
        EXPECT_GE(p.elapsedSeconds, lastElapsed);
        EXPECT_GE(p.shotsPerSec, 0.0);
        if (p.shotsPerSec == 0.0) {
            EXPECT_EQ(p.etaSeconds, -1.0);
        } else {
            EXPECT_GE(p.etaSeconds, 0.0);
        }
        lastTrials = p.trialsDone;
        lastFailures = p.failures;
        lastElapsed = p.elapsedSeconds;
    }
    // Completeness: the final event IS the committed totals.
    EXPECT_EQ(events.back().trialsDone, est.trials);
    EXPECT_EQ(events.back().failures, est.successes);
    EXPECT_EQ(events.back().totalTrials, options.trials);
    if (events.back().shotsPerSec > 0.0) {
        EXPECT_EQ(events.back().etaSeconds, 0.0);
    }
}

TEST(ObsHeartbeat, ResumedSessionStaysMonotoneAndSessionRelative)
{
    GeneratorConfig cfg = obsConfig(3, 9e-3);
    McOptions options;
    options.trials = 480;
    options.seed = 31;
    options.batchSize = 32;

    // Reference run, capturing every commit frontier.
    std::vector<McProgress> snapshots;
    options.progress = [&](const McProgress& p) {
        snapshots.push_back(p);
    };
    BinomialEstimate reference = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, options);
    ASSERT_GT(snapshots.size(), 3u);
    const McProgress frontier = snapshots[snapshots.size() / 2];
    ASSERT_LT(frontier.trialsDone, reference.trials);

    // Materialize the checkpoint a kill at that frontier leaves.
    std::string path =
        testing::TempDir() + "vlq_obs_heartbeat_resume.ckpt";
    std::remove(path.c_str());
    McCheckpoint state;
    ASSERT_EQ(state.open(path, mcRunFingerprintSummary(options)), "");
    state.update(checkpointPointKey(EmbeddingKind::Baseline2D, cfg),
                 CheckpointEntry{frontier.trialsDone, frontier.failures,
                                 false});
    ASSERT_EQ(state.save(), "");

    McOptions resumed = options;
    resumed.checkpointPath = path;
    uint64_t lastTrials = frontier.trialsDone;
    double lastElapsed = 0.0;
    std::vector<McProgress> resumedEvents;
    resumed.progress = [&](const McProgress& p) {
        // Counts stay global and monotone across the resume boundary;
        // the heartbeat restarts session-relative (elapsed from this
        // process's start, throughput over session trials only).
        EXPECT_GT(p.trialsDone, frontier.trialsDone);
        EXPECT_GE(p.trialsDone, lastTrials);
        EXPECT_GE(p.elapsedSeconds, lastElapsed);
        if (p.shotsPerSec > 0.0 && p.elapsedSeconds > 0.0) {
            double impliedSession = p.shotsPerSec * p.elapsedSeconds;
            EXPECT_LE(impliedSession,
                      static_cast<double>(p.trialsDone
                                          - frontier.trialsDone)
                          + 1.0);
        }
        lastTrials = p.trialsDone;
        lastElapsed = p.elapsedSeconds;
        resumedEvents.push_back(p);
    };
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, resumed);

    // Completeness after resume: final event == committed totals ==
    // the uninterrupted run's counts.
    EXPECT_EQ(est.trials, reference.trials);
    EXPECT_EQ(est.successes, reference.successes);
    ASSERT_FALSE(resumedEvents.empty());
    EXPECT_EQ(resumedEvents.back().trialsDone, est.trials);
    EXPECT_EQ(resumedEvents.back().failures, est.successes);
    std::remove(path.c_str());
}

TEST(ObsJson, LintAcceptsValidAndRejectsBroken)
{
    std::string err;
    EXPECT_TRUE(obs::jsonLint("{\"a\":[1,2.5e-3,null,true,\"x\"]}",
                              &err))
        << err;
    EXPECT_FALSE(obs::jsonLint("{\"a\":}", &err));
    EXPECT_FALSE(obs::jsonLint("{\"a\":1} trailing", &err));
    EXPECT_FALSE(obs::jsonLint("{\"a\":+1}", &err));
}

} // namespace
} // namespace vlq
