#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "surface/layout.h"
#include "surface/render.h"

namespace vlq {
namespace {

class LayoutTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutTest, Counts)
{
    int d = GetParam();
    SurfaceLayout layout(d);
    EXPECT_EQ(layout.numData(), d * d);
    EXPECT_EQ(layout.numChecks(), d * d - 1);
    EXPECT_EQ(static_cast<int>(layout.plaquettes().size()), d * d - 1);
    // Balanced check types.
    EXPECT_EQ(layout.checksOf(CheckBasis::Z).size(),
              layout.checksOf(CheckBasis::X).size());
}

TEST_P(LayoutTest, PlaquetteWeights)
{
    SurfaceLayout layout(GetParam());
    int half = 0;
    for (const auto& p : layout.plaquettes()) {
        EXPECT_TRUE(p.weight() == 2 || p.weight() == 4);
        if (p.weight() == 2)
            ++half;
    }
    // 2(d-1) boundary half-checks.
    EXPECT_EQ(half, 2 * (GetParam() - 1));
}

TEST_P(LayoutTest, EveryDataInTwoToFourChecks)
{
    SurfaceLayout layout(GetParam());
    std::vector<int> count(static_cast<size_t>(layout.numData()), 0);
    for (const auto& p : layout.plaquettes())
        for (uint32_t q : p.data)
            ++count[q];
    for (int c : count) {
        EXPECT_GE(c, 2);
        EXPECT_LE(c, 4);
    }
}

TEST_P(LayoutTest, StabilizersCommutePairwise)
{
    SurfaceLayout layout(GetParam());
    for (uint32_t i = 0; i < layout.plaquettes().size(); ++i) {
        PauliString si = layout.stabilizer(i);
        for (uint32_t j = i + 1; j < layout.plaquettes().size(); ++j)
            EXPECT_TRUE(si.commutesWith(layout.stabilizer(j)))
                << "checks " << i << " and " << j;
    }
}

TEST_P(LayoutTest, LogicalOperatorsValid)
{
    SurfaceLayout layout(GetParam());
    PauliString lz = layout.logicalZ();
    PauliString lx = layout.logicalX();
    EXPECT_EQ(lz.weight(), static_cast<size_t>(GetParam()));
    EXPECT_EQ(lx.weight(), static_cast<size_t>(GetParam()));
    EXPECT_FALSE(lz.commutesWith(lx));
    for (uint32_t i = 0; i < layout.plaquettes().size(); ++i) {
        EXPECT_TRUE(lz.commutesWith(layout.stabilizer(i)));
        EXPECT_TRUE(lx.commutesWith(layout.stabilizer(i)));
    }
}

TEST_P(LayoutTest, NoDataTouchedTwiceInOneStep)
{
    SurfaceLayout layout(GetParam());
    for (int step = 0; step < 4; ++step) {
        std::set<int32_t> touched;
        for (const auto& p : layout.plaquettes()) {
            int32_t q = layout.dataAtStep(p, step);
            if (q >= 0) {
                EXPECT_TRUE(touched.insert(q).second)
                    << "data " << q << " reused in step " << step;
            }
        }
    }
}

TEST_P(LayoutTest, ExtractionOrderCoversAllData)
{
    SurfaceLayout layout(GetParam());
    for (const auto& p : layout.plaquettes()) {
        std::set<int32_t> seen;
        for (int step = 0; step < 4; ++step) {
            int32_t q = layout.dataAtStep(p, step);
            if (q >= 0)
                seen.insert(q);
        }
        EXPECT_EQ(seen.size(), p.weight());
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, LayoutTest,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(Layout, DataIndexRoundTrip)
{
    SurfaceLayout layout(5);
    for (int iy = 0; iy < 5; ++iy) {
        for (int ix = 0; ix < 5; ++ix) {
            uint32_t q = layout.dataIndex(ix, iy);
            auto [jx, jy] = layout.dataCell(q);
            EXPECT_EQ(jx, ix);
            EXPECT_EQ(jy, iy);
            auto [px, py] = layout.dataPos(q);
            EXPECT_EQ(px, 2 * ix + 1);
            EXPECT_EQ(py, 2 * iy + 1);
        }
    }
}

TEST(Layout, BoundaryCheckPlacement)
{
    SurfaceLayout layout(5);
    for (const auto& p : layout.plaquettes()) {
        if (p.cy == 0 || p.cy == 10) {
            EXPECT_EQ(p.basis, CheckBasis::X) << "top/bottom must be X";
        }
        if (p.cx == 0 || p.cx == 10) {
            EXPECT_EQ(p.basis, CheckBasis::Z) << "left/right must be Z";
        }
    }
}

TEST(Render, PlainLayoutShape)
{
    SurfaceLayout layout(3);
    std::string art = LayoutRenderer::render(layout);
    // 9 data, 4 Z checks, 4 X checks visible.
    EXPECT_EQ(std::count(art.begin(), art.end(), 'o'), 9);
    EXPECT_EQ(std::count(art.begin(), art.end(), 'Z'), 4);
    EXPECT_EQ(std::count(art.begin(), art.end(), 'X'), 4);
    // 7 rows of 7 columns.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 7);
}

TEST(Render, CompactViewMergesAncillas)
{
    SurfaceLayout layout(3);
    std::string art = LayoutRenderer::renderCompact(layout);
    // Merged ancillas overwrite their data cell: o + z + x + * = 9 + 2.
    int data = static_cast<int>(std::count(art.begin(), art.end(), 'o'));
    int z = static_cast<int>(std::count(art.begin(), art.end(), 'z'));
    int x = static_cast<int>(std::count(art.begin(), art.end(), 'x'));
    int ded = static_cast<int>(std::count(art.begin(), art.end(), '*'));
    EXPECT_EQ(data + z + x, 9);   // every data transmon drawn once
    EXPECT_EQ(ded, 2);            // d-1 dedicated ancillas
    EXPECT_EQ(z + x, 6);          // merged checks
}

TEST(Render, OrderViewUsesDigits)
{
    SurfaceLayout layout(3);
    std::string art = LayoutRenderer::renderOrder(layout, CheckBasis::Z);
    for (char c : {'0', '1', '2', '3'})
        EXPECT_NE(art.find(c), std::string::npos);
    EXPECT_NE(art.find('Z'), std::string::npos);
    EXPECT_EQ(art.find('X'), std::string::npos);
}

TEST(Layout, RejectsBadDistance)
{
    EXPECT_DEATH(SurfaceLayout(4), "odd");
    EXPECT_DEATH(SurfaceLayout(1), "odd");
}

} // namespace
} // namespace vlq
