#include <gtest/gtest.h>

#include "arch/address.h"
#include "arch/device.h"

namespace vlq {
namespace {

TEST(Address, Formatting)
{
    VirtualAddress a{{2, 3}, 5};
    EXPECT_EQ(a.str(), "P(2,3)[5]");
    EXPECT_EQ(a.stack.str(), "P(2,3)");
}

TEST(Address, EqualityAndHash)
{
    VirtualAddress a{{1, 2}, 3};
    VirtualAddress b{{1, 2}, 3};
    VirtualAddress c{{1, 2}, 4};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(std::hash<VirtualAddress>()(a),
              std::hash<VirtualAddress>()(b));
}

TEST(Address, StackDistance)
{
    EXPECT_EQ(stackDistance({0, 0}, {3, 4}), 7);
    EXPECT_EQ(stackDistance({2, 2}, {2, 2}), 0);
    EXPECT_EQ(stackDistance({5, 1}, {1, 5}), 8);
}

TEST(PatchCostTest, BaselineFormula)
{
    for (int d : {3, 5, 7, 9, 11}) {
        PatchCost c = patchCost(EmbeddingKind::Baseline2D, d);
        EXPECT_EQ(c.transmons, 2 * d * d - 1);
        EXPECT_EQ(c.cavities, 0);
    }
}

TEST(PatchCostTest, NaturalFormula)
{
    for (int d : {3, 5, 7}) {
        PatchCost c = patchCost(EmbeddingKind::Natural, d);
        EXPECT_EQ(c.transmons, 2 * d * d - 1);
        EXPECT_EQ(c.cavities, d * d);
    }
}

TEST(PatchCostTest, CompactFormula)
{
    for (int d : {3, 5, 7}) {
        PatchCost c = patchCost(EmbeddingKind::Compact, d);
        EXPECT_EQ(c.transmons, d * d + d - 1);
        EXPECT_EQ(c.cavities, d * d);
    }
}

TEST(PatchCostTest, PaperSmallestInstance)
{
    // Paper abstract: "requiring only 11 transmons and 9 attached
    // cavities" for the smallest Compact instance (d=3).
    PatchCost c = patchCost(EmbeddingKind::Compact, 3);
    EXPECT_EQ(c.transmons, 11);
    EXPECT_EQ(c.cavities, 9);
}

TEST(PatchCostTest, TableTwoVQubitsRows)
{
    // Table II, d=5: Natural 49 transmons + 25 cavities = 299 total;
    // Compact 29 transmons + 25 cavities = 279 total (depth 10).
    PatchCost nat = patchCost(EmbeddingKind::Natural, 5);
    EXPECT_EQ(nat.transmons, 49);
    EXPECT_EQ(nat.cavities, 25);
    EXPECT_EQ(nat.totalQubits(10), 299);
    PatchCost comp = patchCost(EmbeddingKind::Compact, 5);
    EXPECT_EQ(comp.transmons, 29);
    EXPECT_EQ(comp.cavities, 25);
    EXPECT_EQ(comp.totalQubits(10), 279);
}

TEST(PatchCostTest, TransmonSavingsFactor)
{
    // The headline ~10x savings: Natural with k=10 stores 10 patches in
    // the transmons of one, and Compact halves the transmons again.
    int d = 7;
    double baselinePer10 =
        10.0 * patchCost(EmbeddingKind::Baseline2D, d).transmons;
    double natural = patchCost(EmbeddingKind::Natural, d).transmons;
    double compact = patchCost(EmbeddingKind::Compact, d).transmons;
    EXPECT_NEAR(baselinePer10 / natural, 10.0, 1e-9);
    // "approximately 2x": (2d^2-1)/(d^2+d-1) -> 2 as d grows.
    EXPECT_GT(natural / compact, 1.7);
    EXPECT_LT(natural / compact, 2.2);
    double d11 = patchCost(EmbeddingKind::Natural, 11).transmons /
        static_cast<double>(patchCost(EmbeddingKind::Compact, 11).transmons);
    EXPECT_GT(d11, natural / compact); // converges upward to 2
}

TEST(DeviceConfigTest, Totals)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Compact;
    cfg.distance = 3;
    cfg.gridWidth = 2;
    cfg.gridHeight = 3;
    cfg.cavityDepth = 10;
    EXPECT_EQ(cfg.numStacks(), 6);
    EXPECT_EQ(cfg.totalTransmons(), 6 * 11);
    EXPECT_EQ(cfg.totalCavities(), 6 * 9);
    EXPECT_EQ(cfg.logicalCapacity(true), 6 * 9);
    EXPECT_EQ(cfg.logicalCapacity(false), 6 * 10);
}

TEST(DeviceConfigTest, Names)
{
    EXPECT_STREQ(embeddingName(EmbeddingKind::Natural), "Natural");
    EXPECT_STREQ(embeddingName(EmbeddingKind::Compact), "Compact");
    EXPECT_STREQ(scheduleName(ExtractionSchedule::AllAtOnce),
                 "All-at-once");
    EXPECT_STREQ(scheduleName(ExtractionSchedule::Interleaved),
                 "Interleaved");
    DeviceConfig cfg;
    EXPECT_NE(cfg.str().find("Compact"), std::string::npos);
}

} // namespace
} // namespace vlq
