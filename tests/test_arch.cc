#include <gtest/gtest.h>

#include "arch/address.h"
#include "arch/device.h"

namespace vlq {
namespace {

TEST(Address, Formatting)
{
    VirtualAddress a{{2, 3}, 5};
    EXPECT_EQ(a.str(), "P(2,3)[5]");
    EXPECT_EQ(a.stack.str(), "P(2,3)");
}

TEST(Address, EqualityAndHash)
{
    VirtualAddress a{{1, 2}, 3};
    VirtualAddress b{{1, 2}, 3};
    VirtualAddress c{{1, 2}, 4};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(std::hash<VirtualAddress>()(a),
              std::hash<VirtualAddress>()(b));
}

TEST(Address, StackDistance)
{
    EXPECT_EQ(stackDistance({0, 0}, {3, 4}), 7);
    EXPECT_EQ(stackDistance({2, 2}, {2, 2}), 0);
    EXPECT_EQ(stackDistance({5, 1}, {1, 5}), 8);
}

TEST(PatchCostTest, BaselineFormula)
{
    for (int d : {3, 5, 7, 9, 11}) {
        PatchCost c = patchCost(EmbeddingKind::Baseline2D, d);
        EXPECT_EQ(c.transmons, 2 * d * d - 1);
        EXPECT_EQ(c.cavities, 0);
    }
}

TEST(PatchCostTest, NaturalFormula)
{
    for (int d : {3, 5, 7}) {
        PatchCost c = patchCost(EmbeddingKind::Natural, d);
        EXPECT_EQ(c.transmons, 2 * d * d - 1);
        EXPECT_EQ(c.cavities, d * d);
    }
}

TEST(PatchCostTest, CompactFormula)
{
    for (int d : {3, 5, 7}) {
        PatchCost c = patchCost(EmbeddingKind::Compact, d);
        EXPECT_EQ(c.transmons, d * d + d - 1);
        EXPECT_EQ(c.cavities, d * d);
    }
}

TEST(PatchCostTest, PaperSmallestInstance)
{
    // Paper abstract: "requiring only 11 transmons and 9 attached
    // cavities" for the smallest Compact instance (d=3).
    PatchCost c = patchCost(EmbeddingKind::Compact, 3);
    EXPECT_EQ(c.transmons, 11);
    EXPECT_EQ(c.cavities, 9);
}

TEST(PatchCostTest, TableTwoVQubitsRows)
{
    // Table II, d=5: Natural 49 transmons + 25 cavities = 299 total;
    // Compact 29 transmons + 25 cavities = 279 total (depth 10).
    PatchCost nat = patchCost(EmbeddingKind::Natural, 5);
    EXPECT_EQ(nat.transmons, 49);
    EXPECT_EQ(nat.cavities, 25);
    EXPECT_EQ(nat.totalQubits(10), 299);
    PatchCost comp = patchCost(EmbeddingKind::Compact, 5);
    EXPECT_EQ(comp.transmons, 29);
    EXPECT_EQ(comp.cavities, 25);
    EXPECT_EQ(comp.totalQubits(10), 279);
}

TEST(PatchCostTest, TransmonSavingsFactor)
{
    // The headline ~10x savings: Natural with k=10 stores 10 patches in
    // the transmons of one, and Compact halves the transmons again.
    int d = 7;
    double baselinePer10 =
        10.0 * patchCost(EmbeddingKind::Baseline2D, d).transmons;
    double natural = patchCost(EmbeddingKind::Natural, d).transmons;
    double compact = patchCost(EmbeddingKind::Compact, d).transmons;
    EXPECT_NEAR(baselinePer10 / natural, 10.0, 1e-9);
    // "approximately 2x": (2d^2-1)/(d^2+d-1) -> 2 as d grows.
    EXPECT_GT(natural / compact, 1.7);
    EXPECT_LT(natural / compact, 2.2);
    double d11 = patchCost(EmbeddingKind::Natural, 11).transmons /
        static_cast<double>(patchCost(EmbeddingKind::Compact, 11).transmons);
    EXPECT_GT(d11, natural / compact); // converges upward to 2
}

TEST(PatchCostTest, RectangularPatches)
{
    // A dx x dz Compact patch keeps one cavity per data qubit and
    // dedicates (dx-1)/2 + (dz-1)/2 boundary ancilla transmons.
    PatchCost rect = patchCost(EmbeddingKind::CompactRect, 3, 7);
    EXPECT_EQ(rect.transmons, 21 + 1 + 3);
    EXPECT_EQ(rect.cavities, 21);
    // Square rectangles price exactly like the square backends.
    for (int d : {3, 5, 7}) {
        PatchCost sq = patchCost(EmbeddingKind::Compact, d);
        PatchCost viaRect = patchCost(EmbeddingKind::CompactRect, d, d);
        EXPECT_EQ(sq.transmons, viaRect.transmons);
        EXPECT_EQ(sq.cavities, viaRect.cavities);
        PatchCost base2 = patchCost(EmbeddingKind::Baseline2D, d, d);
        EXPECT_EQ(base2.transmons,
                  patchCost(EmbeddingKind::Baseline2D, d).transmons);
    }
    // The narrow biased-noise patch is far cheaper than the square.
    EXPECT_LT(patchCost(EmbeddingKind::CompactRect, 3, 7).transmons,
              patchCost(EmbeddingKind::Compact, 7).transmons);
}

TEST(DeviceConfigTest, RectangularPatchOverrides)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::CompactRect;
    cfg.distance = 7;
    cfg.patchDx = 3;
    cfg.cavityDepth = 10;
    EXPECT_EQ(cfg.effectiveDx(), 3);
    EXPECT_EQ(cfg.effectiveDz(), 7);
    EXPECT_EQ(cfg.totalTransmons(), 21 + 1 + 3);
    EXPECT_EQ(cfg.totalCavities(), 21);
    EXPECT_NE(cfg.str().find("patch=3x7"), std::string::npos);
}

TEST(DeviceConfigTest, ShapePolicyMatchesTheBackend)
{
    // With no overrides, device costing follows each backend's shape
    // policy, so the priced patch is the patch the generator builds:
    // compact-rect defaults to the narrow 3 x d rectangle, the paper
    // embeddings to the square.
    DeviceConfig rect;
    rect.embedding = EmbeddingKind::CompactRect;
    rect.distance = 7;
    EXPECT_EQ(rect.effectiveDx(), 3);
    EXPECT_EQ(rect.effectiveDz(), 7);
    EXPECT_EQ(rect.totalTransmons(), 21 + 1 + 3);

    DeviceConfig square;
    square.embedding = EmbeddingKind::Compact;
    square.distance = 7;
    EXPECT_EQ(square.effectiveDx(), 7);
    EXPECT_EQ(square.effectiveDz(), 7);
    EXPECT_EQ(square.totalTransmons(), 49 + 6);
}

TEST(DeviceConfigTest, Totals)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Compact;
    cfg.distance = 3;
    cfg.gridWidth = 2;
    cfg.gridHeight = 3;
    cfg.cavityDepth = 10;
    EXPECT_EQ(cfg.numStacks(), 6);
    EXPECT_EQ(cfg.totalTransmons(), 6 * 11);
    EXPECT_EQ(cfg.totalCavities(), 6 * 9);
    EXPECT_EQ(cfg.logicalCapacity(true), 6 * 9);
    EXPECT_EQ(cfg.logicalCapacity(false), 6 * 10);
}

TEST(DeviceConfigTest, Names)
{
    EXPECT_STREQ(embeddingName(EmbeddingKind::Natural), "Natural");
    EXPECT_STREQ(embeddingName(EmbeddingKind::Compact), "Compact");
    EXPECT_STREQ(scheduleName(ExtractionSchedule::AllAtOnce),
                 "All-at-once");
    EXPECT_STREQ(scheduleName(ExtractionSchedule::Interleaved),
                 "Interleaved");
    DeviceConfig cfg;
    EXPECT_NE(cfg.str().find("Compact"), std::string::npos);
}

} // namespace
} // namespace vlq
