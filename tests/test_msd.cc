#include <gtest/gtest.h>

#include "msd/distillation_circuit.h"
#include "msd/factory.h"
#include "msd/protocols.h"

namespace vlq {
namespace {

TEST(Protocols, PaperConstants)
{
    DistillationProtocol fast = fastLatticeProtocol();
    EXPECT_EQ(fast.transmonsAtD5, 1499);
    EXPECT_DOUBLE_EQ(fast.patchesPerCopy, 30.0);
    EXPECT_DOUBLE_EQ(fast.stepsPerTState, 6.0);

    DistillationProtocol small = smallLatticeProtocol();
    EXPECT_EQ(small.transmonsAtD5, 549);
    EXPECT_DOUBLE_EQ(small.patchesPerCopy, 11.0);
    EXPECT_DOUBLE_EQ(small.stepsPerTState, 11.0);

    DistillationProtocol vq = vqubitsProtocol(true, true);
    EXPECT_EQ(vq.transmonsAtD5, 49);
    EXPECT_EQ(vq.cavitiesAtD5, 25);
    EXPECT_EQ(vq.totalQubitsAtD5(), 299);
    EXPECT_DOUBLE_EQ(vq.stepsPerTState, 99.0);

    DistillationProtocol vqc = vqubitsProtocol(false, true);
    EXPECT_EQ(vqc.transmonsAtD5, 29);
    EXPECT_EQ(vqc.totalQubitsAtD5(), 279);

    EXPECT_DOUBLE_EQ(vqubitsProtocol(true, false).stepsPerTState, 110.0);
}

TEST(Protocols, Figure13aRates)
{
    // Paper Fig. 13a with 100 patches: VQubits ~1.01, Small ~0.83,
    // Fast ~0.56; speedups 1.22x over Small and 1.82x over Fast.
    double patches = 100.0;
    double fast = fastLatticeProtocol().ratePerStep(patches);
    double small = smallLatticeProtocol().ratePerStep(patches);
    double vq = vqubitsProtocol(true, true).ratePerStep(patches);
    EXPECT_NEAR(fast, 100.0 / 180.0, 1e-9);
    EXPECT_NEAR(small, 100.0 / 121.0, 1e-9);
    EXPECT_NEAR(vq, 100.0 / 99.0, 1e-9);
    EXPECT_NEAR(vq / small, 1.22, 0.01);
    EXPECT_NEAR(vq / fast, 1.82, 0.01);
}

TEST(Protocols, Figure13bSpace)
{
    EXPECT_NEAR(fastLatticeProtocol().patchesForUnitRate(), 180.0, 1e-9);
    EXPECT_NEAR(smallLatticeProtocol().patchesForUnitRate(), 121.0, 1e-9);
    EXPECT_NEAR(vqubitsProtocol(true, true).patchesForUnitRate(), 99.0,
                1e-9);
}

TEST(Protocols, Figure13RowOrder)
{
    auto rows = figure13Rows(100.0);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "Fast");
    EXPECT_EQ(rows[1].name, "Small");
    EXPECT_EQ(rows[2].name, "VQubits (natural)");
    // VQubits wins.
    EXPECT_GT(rows[2].rate, rows[1].rate);
    EXPECT_GT(rows[1].rate, rows[0].rate);
}

TEST(DistillationProgramTest, PaperOpCounts)
{
    DistillationProgram prog = DistillationProgram::fifteenToOne();
    int inits = prog.countOps(LogicalOpKind::InitZero)
              + prog.countOps(LogicalOpKind::InitPlus)
              + prog.countOps(LogicalOpKind::InitT);
    EXPECT_EQ(inits, 16);
    EXPECT_EQ(prog.countOps(LogicalOpKind::Cnot), 35);
    EXPECT_EQ(prog.countOps(LogicalOpKind::MeasureZ)
                  + prog.countOps(LogicalOpKind::MeasureX),
              15);
    EXPECT_EQ(prog.numQubits, 16);
    EXPECT_EQ(prog.maxLiveQubits, 6);
}

TEST(DistillationProgramTest, OpsUseValidQubits)
{
    DistillationProgram prog = DistillationProgram::fifteenToOne();
    for (const auto& op : prog.ops) {
        EXPECT_GE(op.q0, 0);
        EXPECT_LT(op.q0, prog.numQubits);
        if (op.kind == LogicalOpKind::Cnot) {
            EXPECT_GE(op.q1, 0);
            EXPECT_LT(op.q1, prog.numQubits);
            EXPECT_NE(op.q0, op.q1);
        }
    }
    EXPECT_FALSE(prog.ops.front().str().empty());
}

TEST(Factory, ScheduleFitsSingleStack)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Natural;
    cfg.distance = 5;
    cfg.gridWidth = 1;
    cfg.gridHeight = 1;
    cfg.cavityDepth = 10;
    FactoryScheduleResult result = scheduleFifteenToOne(cfg);
    EXPECT_EQ(result.transversalCnots, 35);
    EXPECT_LE(result.peakQubits, 6);
    // Every op serializes on the single stack: 16 + 35 + 15 = 66
    // timesteps is the lower bound our scheduler must meet exactly.
    EXPECT_EQ(result.timesteps, 66);
    // The paper quotes 110 steps for its (more conservative) schedule;
    // ours must not exceed that.
    EXPECT_LE(result.timesteps, 110);
}

TEST(Factory, RequiresEnoughModes)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Natural;
    cfg.gridWidth = 1;
    cfg.gridHeight = 1;
    cfg.cavityDepth = 5;
    EXPECT_DEATH(scheduleFifteenToOne(cfg), "15-to-1");
}

} // namespace
} // namespace vlq
