#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/generator_common.h"
#include "decoder/decoder_factory.h"
#include "decoder/matching_graph.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/union_find.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "mc/monte_carlo.h"
#include "util/rng.h"

namespace vlq {
namespace {

GeneratorConfig
configFor(int d, double p, ExtractionSchedule sched,
          CheckBasis basis = CheckBasis::Z)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.memoryBasis = basis;
    cfg.schedule = sched;
    cfg.cavityDepth = 3;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

BitVec
syndromeOf(const std::vector<uint32_t>& detectors, uint32_t numDetectors)
{
    BitVec v(numDetectors);
    for (uint32_t d : detectors)
        v.flip(d);
    return v;
}

/**
 * Enumerate every pairing of the events (event-event via shortest
 * paths, or event-boundary) and record its (weight, observable mask).
 * This is the exact search MWPM optimizes over, so it defines the
 * ground truth for "equal-weight correction" acceptance.
 */
void
enumeratePairings(const std::vector<uint32_t>& events,
                  const MatchingGraph& g, std::vector<bool>& used,
                  double w, uint32_t obs,
                  std::vector<std::pair<double, uint32_t>>& out)
{
    size_t i = 0;
    while (i < events.size() && used[i])
        ++i;
    if (i == events.size()) {
        out.push_back({w, obs});
        return;
    }
    used[i] = true;
    double wb = g.boundaryDistance(events[i]);
    if (std::isfinite(wb))
        enumeratePairings(events, g, used, w + wb,
                          obs ^ g.boundaryObservables(events[i]), out);
    for (size_t j = i + 1; j < events.size(); ++j) {
        if (used[j])
            continue;
        double wij = g.distance(events[i], events[j]);
        if (!std::isfinite(wij))
            continue;
        used[j] = true;
        enumeratePairings(events, g, used, w + wij,
                          obs ^ g.pathObservables(events[i], events[j]),
                          out);
        used[j] = false;
    }
    used[i] = false;
}

/**
 * Accept a union-find prediction when some pairing achieving it is
 * within `relTol` of the minimum pairing weight: either the decoders
 * agree, or the syndrome is (near-)degenerate and both corrections are
 * minimum-weight. The tolerance absorbs the UF weight quantization
 * (1/granularity per edge); genuinely wrong pairings differ by at
 * least one full edge weight and stay rejected.
 */
::testing::AssertionResult
ufPredictionIsMinWeight(uint32_t ufObs,
                        const std::vector<uint32_t>& events,
                        const MatchingGraph& g, double relTol = 0.05)
{
    std::vector<std::pair<double, uint32_t>> pairings;
    std::vector<bool> used(events.size(), false);
    enumeratePairings(events, g, used, 0.0, 0, pairings);
    if (pairings.empty())
        return ::testing::AssertionFailure() << "no pairing exists";
    double best = pairings[0].first;
    for (const auto& [w, o] : pairings)
        best = std::min(best, w);
    double bestForUf = -1.0;
    for (const auto& [w, o] : pairings)
        if (o == ufObs && (bestForUf < 0.0 || w < bestForUf))
            bestForUf = w;
    if (bestForUf < 0.0)
        return ::testing::AssertionFailure()
            << "no pairing yields uf obs " << ufObs;
    if (bestForUf > best * (1.0 + relTol) + 1e-9)
        return ::testing::AssertionFailure()
            << "uf obs " << ufObs << " costs " << bestForUf
            << " but optimum costs " << best;
    return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// DecodingGraph construction
// ---------------------------------------------------------------------------

TEST(DecodingGraphTest, HandBuiltAccumulation)
{
    DecodingGraph g(3);
    EXPECT_EQ(g.numDetectors(), 3u);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.boundaryNode(), 3u);

    g.addContribution(0, 1, 0.01, 5);
    g.addContribution(1, 0, 0.02, 7); // same edge, stronger, new obs
    g.addContribution(1, 2, 0.01, 0);
    g.addContribution(0, g.boundaryNode(), 0.03, 1);
    g.finalize();

    ASSERT_EQ(g.edges().size(), 3u);
    const DecodingEdge& e01 = g.edges()[0];
    EXPECT_EQ(e01.a, 0u);
    EXPECT_EQ(e01.b, 1u);
    EXPECT_NEAR(e01.probability, 0.01 + 0.02 - 2 * 0.01 * 0.02, 1e-12);
    EXPECT_EQ(e01.observables, 7u); // the stronger contribution wins
    EXPECT_EQ(g.stats().observableConflicts, 1u);

    EXPECT_EQ(g.incidentEdges(0).size(), 2u);
    EXPECT_EQ(g.incidentEdges(1).size(), 2u);
    EXPECT_EQ(g.incidentEdges(2).size(), 1u);
    EXPECT_EQ(g.incidentEdges(3).size(), 1u);
    EXPECT_EQ(g.otherEndpoint(0, 0u), 1u);
    EXPECT_EQ(g.otherEndpoint(0, 1u), 0u);

    // Weight = ln((1-p)/p); the boundary edge (p=0.03) is cheapest.
    double w03 = std::log((1.0 - 0.03) / 0.03);
    EXPECT_NEAR(g.minWeight(), w03, 1e-12);
}

TEST(DecodingGraphTest, DemBuildMatchesMatchingGraph)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    DecodingGraph sparse = DecodingGraph::build(dem);
    MatchingGraph dense = MatchingGraph::build(sparse);

    EXPECT_EQ(sparse.numDetectors(), dem.numDetectors());
    EXPECT_GT(sparse.edges().size(), 0u);
    EXPECT_EQ(dense.numEdges(), sparse.edges().size());
    EXPECT_EQ(dense.stats().forcedPairings,
              sparse.stats().forcedPairings);

    // Every single edge is itself a shortest-path upper bound.
    for (const DecodingEdge& e : sparse.edges()) {
        double d = e.b == sparse.boundaryNode()
            ? dense.boundaryDistance(e.a)
            : dense.distance(e.a, e.b);
        EXPECT_LE(d, e.weight + 1e-5);
        EXPECT_GT(d, 0.0);
    }
}

// ---------------------------------------------------------------------------
// Union-find on hand-built graphs: growth, merging, peeling
// ---------------------------------------------------------------------------

/** Options forcing the growth+peel machinery (no exact fast path). */
UnionFindOptions
growthOnly()
{
    UnionFindOptions opt;
    opt.exactSyndromeThreshold = 0;
    return opt;
}

/**
 * Chain: B -(p=.03,obs 1)- 0 -(p=.01)- 1 -(p=.02,obs 2)- 2 -(p=.03)- B
 * Weights: 3.48 / 4.60 / 3.89 / 3.48.
 */
DecodingGraph
chainGraph()
{
    DecodingGraph g(3);
    g.addContribution(0, g.boundaryNode(), 0.03, 1);
    g.addContribution(0, 1, 0.01, 0);
    g.addContribution(1, 2, 0.02, 2);
    g.addContribution(2, g.boundaryNode(), 0.03, 0);
    g.finalize();
    return g;
}

TEST(UnionFindTest, EmptySyndromeNoCorrection)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    EXPECT_EQ(uf.decode(BitVec(3), &info), 0u);
    EXPECT_EQ(info.growthRounds, 0u);
    EXPECT_EQ(info.matchedPairs, 0u);
    EXPECT_EQ(info.boundaryMatches, 0u);
}

TEST(UnionFindTest, SingleDefectMatchesToNearestBoundary)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    EXPECT_EQ(uf.decode(syndromeOf({0}, 3)), 1u);
    EXPECT_EQ(uf.decode(syndromeOf({2}, 3)), 0u);
}

TEST(UnionFindTest, AdjacentDefectsMergeThroughDirectEdge)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    // 0-1 direct (4.60, grown from both ends) beats 0's boundary
    // (3.48, grown from one end only).
    EXPECT_EQ(uf.decode(syndromeOf({0, 1}, 3), &info), 0u);
    EXPECT_EQ(info.initialClusters, 2u);
    EXPECT_EQ(info.matchedPairs, 1u);
    EXPECT_EQ(info.boundaryMatches, 0u);
    EXPECT_EQ(uf.decode(syndromeOf({1, 2}, 3)), 2u);
}

TEST(UnionFindTest, FarDefectsFreezeAtTheirBoundaries)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    // Boundary pairing (3.48 + 3.48) beats the middle path (8.49):
    // both clusters freeze on boundary contact and peel separately.
    EXPECT_EQ(uf.decode(syndromeOf({0, 2}, 3), &info), 1u);
    EXPECT_EQ(info.matchedPairs, 0u);
    EXPECT_EQ(info.boundaryMatches, 2u);
}

TEST(UnionFindTest, MiddleDefectTakesCheaperBoundaryPath)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    // From 1: right path 3.89+3.48=7.37 beats left 4.60+3.48=8.07.
    EXPECT_EQ(uf.decode(syndromeOf({1}, 3)), 2u);
}

/**
 * Tree: 0 -(obs 1)- 1 -(obs 0)- 2, 1 -(obs 8)- 3 -(obs 4)- B,
 * uniform p=0.01. Exercises absorption of pristine vertices and
 * multi-edge peeling.
 */
DecodingGraph
treeGraph()
{
    DecodingGraph g(4);
    g.addContribution(0, 1, 0.01, 1);
    g.addContribution(1, 2, 0.01, 0);
    g.addContribution(1, 3, 0.01, 8);
    g.addContribution(3, g.boundaryNode(), 0.01, 4);
    g.finalize();
    return g;
}

TEST(UnionFindTest, ClustersGrowThroughPristineVertices)
{
    UnionFindDecoder uf(treeGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    // Defects at 0 and 2 meet around vertex 1.
    EXPECT_EQ(uf.decode(syndromeOf({0, 2}, 4), &info), 1u);
    EXPECT_EQ(info.matchedPairs, 1u);
    EXPECT_EQ(info.boundaryMatches, 0u);
    EXPECT_GT(info.growthRounds, 0u);
}

TEST(UnionFindTest, PeelingWalksWholeBoundaryPath)
{
    UnionFindDecoder uf(treeGraph(), growthOnly());
    // Lone defect at 0: only escape is 0-1-3-B, XOR 1^8^4 = 13.
    EXPECT_EQ(uf.decode(syndromeOf({0}, 4)), 13u);
}

TEST(UnionFindTest, EvenClusterOfFourResolvesInternally)
{
    UnionFindDecoder uf(treeGraph(), growthOnly());
    // All four defects: peeling pairs 0-1 and 2..3 along tree edges;
    // total correction is XOR of all tree edges used with odd defect
    // counts below them: 0-1 (obs 1), 1-2 (obs 0), 1-3 (obs 8)...
    // exact expectation: peel leaves 0,2,3: obs 1 ^ 0 ^ 8 = 9, leaving
    // vertex 1 defect-free (it absorbed three flips + its own).
    EXPECT_EQ(uf.decode(syndromeOf({0, 1, 2, 3}, 4)), 9u);
}

TEST(UnionFindTest, WeightQuantizationTracksRatios)
{
    UnionFindDecoder uf(chainGraph(), UnionFindOptions{});
    const auto& edges = uf.graph().edges();
    double minW = uf.graph().minWeight();
    for (uint32_t e = 0; e < edges.size(); ++e) {
        double exact = edges[e].weight / minW * 32.0;
        EXPECT_NEAR(uf.edgeCapacity(e), exact, 0.51) << "edge " << e;
    }
}

TEST(UnionFindTest, ExactSyndromeFastPathMatchesGrowthPath)
{
    // The default decoder short-circuits small syndromes into one
    // exact global matching; it must reproduce (or improve to an
    // equal-weight solution of) every hand-built growth-path answer.
    UnionFindDecoder grown(chainGraph(), growthOnly());
    UnionFindDecoder fast(chainGraph());
    for (const std::vector<uint32_t>& defects :
         std::vector<std::vector<uint32_t>>{
             {0}, {1}, {2}, {0, 1}, {1, 2}, {0, 2}, {0, 1, 2}}) {
        BitVec det = syndromeOf(defects, 3);
        EXPECT_EQ(fast.decode(det), grown.decode(det))
            << "defect set size " << defects.size();
    }

    UnionFindDecoder grownTree(treeGraph(), growthOnly());
    UnionFindDecoder fastTree(treeGraph());
    EXPECT_EQ(fastTree.decode(syndromeOf({0}, 4)), 13u);
    EXPECT_EQ(fastTree.decode(syndromeOf({0, 1, 2, 3}, 4)), 9u);
}

// ---------------------------------------------------------------------------
// Agreement with MWPM on real detector error models
// ---------------------------------------------------------------------------

TEST(UnionFindAgreementTest, AllSingleFaultsAtDistanceThree)
{
    for (int embInt : {0, 1, 2}) {
        GeneratorConfig cfg = configFor(3, 2e-3,
                                        ExtractionSchedule::AllAtOnce);
        GeneratedCircuit gen = generateMemoryCircuit(
            static_cast<EmbeddingKind>(embInt), cfg);
        DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
        MwpmDecoder mwpm(dem);
        UnionFindDecoder uf(dem);
        int checked = 0;
        for (const auto& ch : dem.channels()) {
            for (const auto& o : ch.outcomes) {
                BitVec det = syndromeOf(o.detectors,
                                        dem.numDetectors());
                uint32_t predicted = uf.decode(det);
                if (predicted != mwpm.decode(det)) {
                    std::vector<uint32_t> events = det.onesIndices();
                    EXPECT_TRUE(ufPredictionIsMinWeight(
                        predicted, events, mwpm.graph()))
                        << "embedding " << embInt << " op "
                        << ch.opIndex;
                }
                ++checked;
            }
        }
        EXPECT_GT(checked, 100);
    }
}

TEST(UnionFindAgreementTest, AllFaultPairsAtDistanceThree)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder mwpm(dem);
    UnionFindDecoder uf(dem);

    const auto& chs = dem.channels();
    // The full cross product: cheap because the equal-weight
    // enumeration only runs on (rare) disagreements.
    int checked = 0;
    int disagreements = 0;
    for (size_t i = 0; i < chs.size(); ++i) {
        for (size_t j = i + 1; j < chs.size(); ++j) {
            const auto& oi = chs[i].outcomes.front();
            const auto& oj = chs[j].outcomes.front();
            BitVec det = syndromeOf(oi.detectors, dem.numDetectors());
            for (uint32_t d : oj.detectors)
                det.flip(d);
            uint32_t predicted = uf.decode(det);
            if (predicted != mwpm.decode(det)) {
                ++disagreements;
                std::vector<uint32_t> events = det.onesIndices();
                ASSERT_TRUE(ufPredictionIsMinWeight(predicted, events,
                                                    mwpm.graph()))
                    << "pair " << i << "," << j;
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 30000);
    // Disagreements must be rare degenerate ties, not the norm.
    EXPECT_LT(disagreements, checked / 10);
}

TEST(UnionFindAgreementTest, FaultPairsAtDistanceFive)
{
    GeneratorConfig cfg = configFor(5, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder mwpm(dem);
    UnionFindDecoder uf(dem);

    const auto& chs = dem.channels();
    int checked = 0;
    for (size_t i = 0; i < chs.size(); i += 37) {
        for (size_t j = i + 1; j < chs.size(); j += 53) {
            const auto& oi = chs[i].outcomes.front();
            const auto& oj = chs[j].outcomes.front();
            BitVec det = syndromeOf(oi.detectors, dem.numDetectors());
            for (uint32_t d : oj.detectors)
                det.flip(d);
            uint32_t predicted = uf.decode(det);
            if (predicted != mwpm.decode(det)) {
                std::vector<uint32_t> events = det.onesIndices();
                ASSERT_TRUE(ufPredictionIsMinWeight(predicted, events,
                                                    mwpm.graph()))
                    << "pair " << i << "," << j;
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 50);
}

TEST(UnionFindAgreementTest, SampledShotsMostlyAgreeWithMwpm)
{
    GeneratorConfig cfg = configFor(3, 5e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    MwpmDecoder mwpm(dem);
    UnionFindDecoder uf(dem);

    Rng root(0x5eedf00d);
    const int shots = 400;
    int agree = 0;
    BitVec det(dem.numDetectors());
    uint32_t obsFlips = 0;
    for (int i = 0; i < shots; ++i) {
        Rng rng = root.split(static_cast<uint64_t>(i));
        sampler.sampleInto(rng, det, obsFlips);
        if (uf.decode(det) == mwpm.decode(det))
            ++agree;
    }
    EXPECT_GE(agree, shots * 9 / 10) << agree << "/" << shots;
}

// ---------------------------------------------------------------------------
// Factory and registry
// ---------------------------------------------------------------------------

TEST(DecoderFactoryTest, RegistryHasBuiltins)
{
    ASSERT_GE(decoderRegistry().size(), 3u);
    EXPECT_STREQ(decoderKindName(DecoderKind::Mwpm), "mwpm");
    EXPECT_STREQ(decoderKindName(DecoderKind::Greedy), "greedy");
    EXPECT_STREQ(decoderKindName(DecoderKind::UnionFind), "union-find");
}

TEST(DecoderFactoryTest, ParsesNamesAndAliases)
{
    EXPECT_EQ(parseDecoderKind("mwpm"), DecoderKind::Mwpm);
    EXPECT_EQ(parseDecoderKind("MWPM"), DecoderKind::Mwpm);
    EXPECT_EQ(parseDecoderKind("blossom"), DecoderKind::Mwpm);
    EXPECT_EQ(parseDecoderKind("greedy"), DecoderKind::Greedy);
    EXPECT_EQ(parseDecoderKind("union-find"), DecoderKind::UnionFind);
    EXPECT_EQ(parseDecoderKind("UnionFind"), DecoderKind::UnionFind);
    EXPECT_EQ(parseDecoderKind("uf"), DecoderKind::UnionFind);
    EXPECT_FALSE(parseDecoderKind("bogus").has_value());
    EXPECT_FALSE(parseDecoderKind("").has_value());
}

TEST(DecoderFactoryTest, MakesEveryRegisteredBackend)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    BitVec empty(dem.numDetectors());
    for (const DecoderRegistration& entry : decoderRegistry()) {
        std::unique_ptr<Decoder> dec = makeDecoder(entry.kind, dem);
        ASSERT_NE(dec, nullptr) << entry.name;
        EXPECT_EQ(dec->decode(empty), 0u) << entry.name;
    }
    EXPECT_NE(makeDecoder("uf", dem), nullptr);
    EXPECT_EQ(makeDecoder("bogus", dem), nullptr);
}

TEST(DecoderFactoryTest, EnvKnobSelectsBackend)
{
    ::setenv("VLQ_DECODER_TESTVAR", "Union-Find", 1);
    EXPECT_EQ(decoderKindFromEnv(DecoderKind::Mwpm,
                                 "VLQ_DECODER_TESTVAR"),
              DecoderKind::UnionFind);
    ::setenv("VLQ_DECODER_TESTVAR", "greedy", 1);
    EXPECT_EQ(decoderKindFromEnv(DecoderKind::Mwpm,
                                 "VLQ_DECODER_TESTVAR"),
              DecoderKind::Greedy);
    // A typo'd value must be a hard error listing the valid keys,
    // never a silent fallback to some default backend.
    ::setenv("VLQ_DECODER_TESTVAR", "nonsense", 1);
    EXPECT_EXIT(decoderKindFromEnv(DecoderKind::UnionFind,
                                   "VLQ_DECODER_TESTVAR"),
                ::testing::ExitedWithCode(1),
                "not a registered decoder \\(valid: mwpm, greedy, "
                "union-find\\)");
    ::unsetenv("VLQ_DECODER_TESTVAR");
    EXPECT_EQ(decoderKindFromEnv(DecoderKind::Greedy,
                                 "VLQ_DECODER_TESTVAR"),
              DecoderKind::Greedy);
}

// ---------------------------------------------------------------------------
// End to end through Monte-Carlo
// ---------------------------------------------------------------------------

TEST(UnionFindMcTest, LogicalErrorWithinTwiceMwpmBelowThreshold)
{
    GeneratorConfig cfg = configFor(3, 5e-3,
                                    ExtractionSchedule::AllAtOnce);
    McOptions mwpmOpts;
    mwpmOpts.trials = 1200;
    mwpmOpts.seed = 0x5eed;
    McOptions ufOpts = mwpmOpts;
    ufOpts.decoder = DecoderKind::UnionFind;

    LogicalErrorPoint a = estimateLogicalError(EmbeddingKind::Baseline2D,
                                               cfg, mwpmOpts);
    LogicalErrorPoint b = estimateLogicalError(EmbeddingKind::Baseline2D,
                                               cfg, ufOpts);
    EXPECT_GT(a.combinedRate(), 0.0);
    EXPECT_GT(b.combinedRate(), 0.0);
    // Acceptance bar: UF stays within 2x of MWPM below threshold (with
    // a small absolute slack for binomial noise at these trial counts).
    EXPECT_LE(b.combinedRate(), 2.0 * a.combinedRate() + 0.02)
        << "uf " << b.combinedRate() << " mwpm " << a.combinedRate();
}

// ---------------------------------------------------------------------------
// Erasure-aware decoding (zero-weight cluster seeding)
// ---------------------------------------------------------------------------

// chainGraph edge indices follow insertion order:
// 0 = (0,B) obs 1, 1 = (0,1) obs 0, 2 = (1,2) obs 2, 3 = (2,B) obs 0.

TEST(UnionFindErasureTest, ErasedEdgeSeedsClusterAtZeroWeight)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    // Defects 0 and 1 with the 0-1 edge erased: the edge is pre-grown
    // to full support before any growth round, so the pair resolves
    // with zero rounds even though 0's boundary edge is cheaper.
    EXPECT_EQ(uf.decodeErasedEdges(syndromeOf({0, 1}, 3), {1}, &info),
              0u);
    EXPECT_EQ(info.growthRounds, 0u);
}

TEST(UnionFindErasureTest, ErasedBoundaryEdgeIsAFreeExit)
{
    UnionFindDecoder uf(chainGraph(), growthOnly());
    UnionFindDecoder::DecodeInfo info;
    // Lone defect at 0, its boundary edge erased: the defect leaves
    // through the free exit without growing at all.
    EXPECT_EQ(uf.decodeErasedEdges(syndromeOf({0}, 3), {0}, &info), 1u);
    EXPECT_EQ(info.growthRounds, 0u);
    EXPECT_EQ(info.boundaryMatches, 1u);

    // Erasing an edge the syndrome never touches changes nothing.
    EXPECT_EQ(uf.decodeErasedEdges(syndromeOf({0}, 3), {2}), 1u);
}

TEST(UnionFindErasureTest, ErasedBoundaryExitBeatsGlobalTable)
{
    // 1's own boundary edge is so unlikely (p = 0.001) that every
    // weighted path routes 1 -> 0 -> B (obs 4 ^ 1 = 5). Erasing the
    // 1-B edge must override that: the erased edge is free NOW, no
    // matter what the precomputed distance table says.
    DecodingGraph g(2);
    g.addContribution(0, g.boundaryNode(), 0.2, 1);  // edge 0
    g.addContribution(0, 1, 0.2, 4);                 // edge 1
    g.addContribution(1, g.boundaryNode(), 0.001, 2); // edge 2
    g.finalize();

    UnionFindDecoder uf(g, growthOnly());
    EXPECT_EQ(uf.decode(syndromeOf({1}, 2)), 5u);
    EXPECT_EQ(uf.decodeErasedEdges(syndromeOf({1}, 2), {2}), 2u);
    // The exact-matching fast path must reach the same answer (it has
    // to be bypassed whenever erasures are present).
    UnionFindDecoder fast(g);
    EXPECT_EQ(fast.decodeErasedEdges(syndromeOf({1}, 2), {2}), 2u);
}

TEST(UnionFindErasureTest, ErasureOnlyShotsDecodeExactly)
{
    GeneratorConfig cfg = configFor(3, 5e-3,
                                    ExtractionSchedule::AllAtOnce);
    cfg.noise.erasure.fraction = 1.0;
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    ASSERT_GT(dem.numErasureSites(), 0u);
    UnionFindDecoder uf(dem);

    // Delfosse-Nickerson peeling is exact on erased supports: for every
    // outcome of every heralded channel, decoding its syndrome with the
    // herald raised recovers the exact observable flip.
    int checked = 0;
    for (const auto& ch : dem.channels()) {
        if (ch.erasureSite < 0)
            continue;
        BitVec erasures(dem.numErasureSites());
        erasures.set(static_cast<size_t>(ch.erasureSite), true);
        for (const auto& o : ch.outcomes) {
            if (o.detectors.empty())
                continue;
            BitVec det = syndromeOf(o.detectors, dem.numDetectors());
            EXPECT_EQ(uf.decodeWithErasures(det, erasures),
                      o.observables)
                << "op " << ch.opIndex << " site " << ch.erasureSite;
            ++checked;
        }
    }
    EXPECT_GT(checked, 100);
}

TEST(UnionFindErasureTest, BatchDecodeMatchesScalarWithErasures)
{
    GeneratorConfig cfg = configFor(3, 8e-3,
                                    ExtractionSchedule::AllAtOnce);
    cfg.noise.erasure.fraction = 0.6;
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    UnionFindDecoder uf(dem);

    const uint32_t shots = 96;
    Rng root(0xe7a5eb17);
    ShotBatch batch;
    batch.reset(dem.numDetectors(), dem.numObservables(), shots, 0,
                dem.numErasureSites());
    sampler.sampleBatchInto(root, batch);
    std::vector<uint32_t> predictions(shots);
    uf.decodeBatch(batch, predictions);

    // Erasure-mask propagation: decoding each shot's extracted
    // detector column with the heralds recorded in the batch's
    // transposed erasure rows must reproduce the batched predictions
    // shot for shot.
    BitVec det(dem.numDetectors());
    size_t heraldsSeen = 0;
    for (uint32_t s = 0; s < shots; ++s) {
        batch.extractShot(s, det);
        BitVec era(dem.numErasureSites());
        for (uint32_t site = 0; site < dem.numErasureSites(); ++site)
            if (batch.erased(s, site))
                era.set(site, true);
        heraldsSeen += era.popcount();
        EXPECT_EQ(predictions[s], uf.decodeWithErasures(det, era))
            << "shot " << s;
    }
    // The config is chosen so heralds actually fire in this batch.
    EXPECT_GT(heraldsSeen, 0u);

    // The scalar sampling path raises heralds too (the two paths draw
    // different streams but the same distribution).
    BitVec era(dem.numErasureSites());
    uint32_t obs = 0;
    size_t scalarHeralds = 0;
    for (uint32_t s = 0; s < shots; ++s) {
        Rng rng = root.split(s);
        sampler.sampleInto(rng, det, obs, era);
        scalarHeralds += era.popcount();
    }
    EXPECT_GT(scalarHeralds, 0u);
}

TEST(UnionFindErasureTest, HeraldedErasureLowersLogicalError)
{
    // Same total error budget, d = 5: converting every fault to
    // heralded erasure must beat the pure-Pauli rate (the decoder pays
    // nothing to span heralded faults). Deterministic under the fixed
    // seed.
    GeneratorConfig pauli = configFor(5, 5e-3,
                                      ExtractionSchedule::AllAtOnce);
    GeneratorConfig erased = pauli;
    erased.noise.erasure.fraction = 1.0;
    McOptions opts;
    opts.trials = 800;
    opts.seed = 0x5eed;
    opts.decoder = DecoderKind::UnionFind;
    double pauliRate = estimateLogicalError(EmbeddingKind::Baseline2D,
                                            pauli, opts)
                           .combinedRate();
    double erasedRate = estimateLogicalError(EmbeddingKind::Baseline2D,
                                             erased, opts)
                            .combinedRate();
    EXPECT_LT(erasedRate, pauliRate)
        << "erased " << erasedRate << " pauli " << pauliRate;
}

} // namespace
} // namespace vlq
