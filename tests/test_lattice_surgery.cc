#include <gtest/gtest.h>

#include <string>

#include "arch/device.h"
#include "core/lattice_surgery.h"
#include "core/logical_machine.h"

namespace vlq {
namespace {

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(LatticeSurgerySequenceTest, TotalDurationMatchesCostModel)
{
    auto seq = latticeSurgeryCnotSequence();
    int total = 0;
    for (const auto& s : seq) {
        EXPECT_GE(s.timesteps, 1);
        total += s.timesteps;
    }
    EXPECT_EQ(total, LogicalOpCosts::latticeSurgeryCnot);
}

TEST(LatticeSurgerySequenceTest, EveryMergeIsFollowedByASplit)
{
    auto seq = latticeSurgeryCnotSequence();
    int merges = 0;
    int splits = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
        if (contains(seq[i].description, "merge")) {
            ++merges;
            ASSERT_LT(i + 1, seq.size())
                << "sequence ends on an open merge";
            EXPECT_TRUE(contains(seq[i + 1].description, "split"))
                << "merge at step " << i << " not followed by a split: "
                << seq[i + 1].description;
        }
        if (contains(seq[i].description, "split"))
            ++splits;
    }
    // Fig. 4: X-basis merge with the target, Z-basis merge with the
    // control, each undone by a split.
    EXPECT_EQ(merges, 2);
    EXPECT_EQ(splits, 2);
}

TEST(LatticeSurgerySequenceTest, AncillaIsCreatedFirstAndMeasuredLast)
{
    auto seq = latticeSurgeryCnotSequence();
    ASSERT_GE(seq.size(), 2u);
    EXPECT_TRUE(contains(seq.front().description, "ancilla"));
    EXPECT_TRUE(contains(seq.back().description, "measure"));
    // The two merges use complementary bases (X parity with the target,
    // Z parity with the control).
    bool sawX = false;
    bool sawZ = false;
    for (const auto& s : seq) {
        if (!contains(s.description, "merge"))
            continue;
        if (contains(s.description, "X parity"))
            sawX = true;
        if (contains(s.description, "Z parity"))
            sawZ = true;
    }
    EXPECT_TRUE(sawX);
    EXPECT_TRUE(sawZ);
}

TEST(LatticeSurgerySequenceTest, CostModelRanksOperations)
{
    // The surgery CNOT is the most expensive primitive in the model; the
    // rest are single-timestep operations.
    EXPECT_GT(LogicalOpCosts::latticeSurgeryCnot,
              LogicalOpCosts::transversalCnot);
    EXPECT_EQ(LogicalOpCosts::transversalCnot, 1);
    EXPECT_EQ(LogicalOpCosts::move, 1);
    EXPECT_EQ(LogicalOpCosts::init, 1);
    EXPECT_EQ(LogicalOpCosts::measure, 1);
    EXPECT_EQ(LogicalOpCosts::singleQubit, 1);
}

TEST(LatticeSurgerySequenceTest, MachineCnotTakesSixTimesteps)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Compact;
    cfg.distance = 3;
    cfg.gridWidth = 2;
    cfg.gridHeight = 2;
    cfg.cavityDepth = 4;

    LogicalMachine machine(cfg);
    LogicalQubit c = machine.alloc();
    LogicalQubit t = machine.alloc();
    machine.initQubit(c);
    machine.initQubit(t);

    int before = machine.currentStep();
    machine.cnotLatticeSurgery(c, t);
    EXPECT_EQ(machine.currentStep() - before,
              LogicalOpCosts::latticeSurgeryCnot);
}

} // namespace
} // namespace vlq
