#include <gtest/gtest.h>

#include "core/generator_common.h"
#include "decoder/decoding_graph.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "sim/frame.h"
#include "util/rng.h"

namespace vlq {
namespace {

GeneratorConfig
smallConfig(EmbeddingKind, double p,
            ExtractionSchedule sched = ExtractionSchedule::AllAtOnce,
            CheckBasis basis = CheckBasis::Z)
{
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.memoryBasis = basis;
    cfg.schedule = sched;
    cfg.cavityDepth = 3;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

TEST(Dem, RepetitionToyCircuit)
{
    // Two-qubit "repetition code": one parity check measured twice.
    Circuit c(3);
    c.xError(0, 0.1); // channel 0
    c.cnot(0, 2);
    c.cnot(1, 2);
    uint32_t m0 = c.measureZ(2);
    c.reset(2);
    c.cnot(0, 2);
    c.cnot(1, 2);
    uint32_t m1 = c.measureZ(2);
    uint32_t md = c.measureZ(0);
    Detector d0;
    d0.measurements = {m0};
    c.addDetector(d0);
    Detector d1;
    d1.measurements = {m0, m1};
    c.addDetector(d1);
    uint32_t obs = c.addObservable();
    c.observableInclude(obs, md);

    DetectorErrorModel dem = DetectorErrorModel::build(c);
    ASSERT_EQ(dem.channels().size(), 1u);
    const auto& ch = dem.channels()[0];
    ASSERT_EQ(ch.outcomes.size(), 1u);
    // X on qubit 0 flips m0 and m1 and the data readout: detector 0
    // (m0) fires, detector 1 (m0 xor m1) stays quiet, observable flips.
    EXPECT_EQ(ch.outcomes[0].detectors,
              (std::vector<uint32_t>{0}));
    EXPECT_EQ(ch.outcomes[0].observables, 1u);
    EXPECT_NEAR(ch.outcomes[0].probability, 0.1, 1e-12);
}

TEST(Dem, MeasurementFlipChannel)
{
    Circuit c(1);
    uint32_t m0 = c.measureZ(0, 0.2);
    uint32_t m1 = c.measureZ(0, 0.0);
    Detector d;
    d.measurements = {m0, m1};
    c.addDetector(d);
    DetectorErrorModel dem = DetectorErrorModel::build(c);
    ASSERT_EQ(dem.channels().size(), 1u);
    EXPECT_EQ(dem.channels()[0].outcomes[0].detectors,
              (std::vector<uint32_t>{0}));
    EXPECT_NEAR(dem.channels()[0].outcomes[0].probability, 0.2, 1e-12);
}

TEST(Dem, DepolarizeSplitsOutcomes)
{
    Circuit c(1);
    c.depolarize1(0, 0.3);
    uint32_t m = c.measureZ(0);
    Detector d;
    d.measurements = {m};
    c.addDetector(d);
    DetectorErrorModel dem = DetectorErrorModel::build(c);
    ASSERT_EQ(dem.channels().size(), 1u);
    // X and Y flip the Z measurement; Z does not (empty, dropped).
    EXPECT_EQ(dem.channels()[0].outcomes.size(), 2u);
    EXPECT_NEAR(dem.channels()[0].totalProbability(), 0.2, 1e-12);
}

/**
 * Cross-validation on real circuits: the backward-built DEM must match
 * forward Pauli-frame injection for every outcome of every channel.
 */
class DemForwardBackward
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(DemForwardBackward, SignaturesMatchForwardInjection)
{
    auto [embInt, schedInt] = GetParam();
    EmbeddingKind emb = static_cast<EmbeddingKind>(embInt);
    GeneratorConfig cfg = smallConfig(
        emb, 2e-3, static_cast<ExtractionSchedule>(schedInt));
    GeneratedCircuit gen = generateMemoryCircuit(emb, cfg);
    const Circuit& circuit = gen.circuit;
    DetectorErrorModel dem = DetectorErrorModel::build(circuit);
    FrameSimulator frame(circuit);

    for (const auto& ch : dem.channels()) {
        const Operation& op = circuit.ops()[ch.opIndex];
        // Enumerate the op's physical outcomes and forward-propagate.
        std::vector<std::pair<std::vector<uint32_t>, uint32_t>> expected;
        auto addExpected = [&](const BitVec& measFlips) {
            BitVec det = FrameSimulator::detectorFlips(circuit, measFlips);
            uint32_t obs =
                FrameSimulator::observableFlips(circuit, measFlips);
            auto ones = det.onesIndices();
            if (!ones.empty() || obs != 0)
                expected.push_back({ones, obs});
        };
        switch (op.code) {
          case OpCode::DEPOLARIZE1:
            for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z})
                addExpected(frame.propagateInjected(ch.opIndex, p));
            break;
          case OpCode::DEPOLARIZE2:
            for (int code = 1; code < 16; ++code) {
                Pauli pa = static_cast<Pauli>(code >> 2);
                Pauli pb = static_cast<Pauli>(code & 3);
                addExpected(
                    frame.propagateInjected(ch.opIndex, pa, pb));
            }
            break;
          case OpCode::MEASURE_Z:
            addExpected(frame.propagateMeasurementFlip(ch.opIndex));
            break;
          case OpCode::X_ERROR:
            addExpected(frame.propagateInjected(ch.opIndex, Pauli::X));
            break;
          default:
            FAIL() << "unexpected channel op";
        }
        // Compare as multisets.
        ASSERT_EQ(ch.outcomes.size(), expected.size())
            << "op " << ch.opIndex;
        for (const auto& o : ch.outcomes) {
            bool found = false;
            for (auto& e : expected) {
                if (e.first == o.detectors && e.second == o.observables) {
                    found = true;
                    e.second = 0xffffffff; // consume
                    e.first.clear();
                    break;
                }
            }
            EXPECT_TRUE(found) << "op " << ch.opIndex;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Setups, DemForwardBackward,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1)));

TEST(Dem, FaultMassMatchesCircuitNoise)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Natural, 2e-3);
    GeneratedCircuit gen = generateNaturalMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    // Fault mass <= raw noise mass (invisible outcomes are dropped).
    EXPECT_LE(dem.totalFaultMass(),
              gen.circuit.totalNoiseMass() + 1e-9);
    EXPECT_GT(dem.totalFaultMass(), 0.0);
}

TEST(Sampler, MatchesFrameSimulatorStatistically)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Baseline2D, 8e-3);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    FrameSimulator frame(gen.circuit);

    const int trials = 6000;
    Rng rngA(42);
    Rng rngB(43);
    double sumA = 0.0;
    double sumB = 0.0;
    int obsA = 0;
    int obsB = 0;
    BitVec det(dem.numDetectors());
    uint32_t obsMask = 0;
    for (int i = 0; i < trials; ++i) {
        sampler.sampleInto(rngA, det, obsMask);
        sumA += static_cast<double>(det.popcount());
        obsA += (obsMask & 1u) ? 1 : 0;
        BitVec flips = frame.sampleMeasurementFlips(rngB);
        BitVec det2 = FrameSimulator::detectorFlips(gen.circuit, flips);
        sumB += static_cast<double>(det2.popcount());
        obsB += (FrameSimulator::observableFlips(gen.circuit, flips) & 1u)
            ? 1 : 0;
    }
    double meanA = sumA / trials;
    double meanB = sumB / trials;
    EXPECT_NEAR(meanA, meanB, 0.12 * std::max(meanA, meanB));
    EXPECT_NEAR(static_cast<double>(obsA) / trials,
                static_cast<double>(obsB) / trials, 0.02);
}

TEST(Dem, DetectorMetadataCarriesGeometry)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Baseline2D, 2e-3);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    ASSERT_EQ(dem.detectorMeta().size(), dem.numDetectors());
    float maxT = 0.0f;
    for (const auto& meta : dem.detectorMeta()) {
        EXPECT_EQ(meta.basis, CheckBasis::Z);
        EXPECT_GE(meta.x, 0.0f);
        EXPECT_GE(meta.y, 0.0f);
        maxT = std::max(maxT, meta.t);
    }
    // Final (data-readout) detector layer is at t = rounds.
    EXPECT_EQ(maxT, 3.0f);
}

TEST(Dem, InterleavedXBasisBuilds)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Natural, 2e-3,
                                      ExtractionSchedule::Interleaved,
                                      CheckBasis::X);
    GeneratedCircuit gen = generateNaturalMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    EXPECT_GT(dem.numDetectors(), 0u);
    EXPECT_EQ(dem.numObservables(), 1u);
    for (const auto& meta : dem.detectorMeta())
        EXPECT_EQ(meta.basis, CheckBasis::X);
}

TEST(Dem, ChannelsOrderedByOpIndex)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Compact, 2e-3);
    GeneratedCircuit gen = generateCompactMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    for (size_t i = 1; i < dem.channels().size(); ++i)
        EXPECT_LE(dem.channels()[i - 1].opIndex,
                  dem.channels()[i].opIndex);
}

TEST(Dem, ExclusiveOutcomesSumExactlyInDecodingGraph)
{
    // One channel whose X and Y branches land on the same edge: the
    // branches are mutually exclusive, so the edge probability is the
    // plain sum 0.1 + 0.1 = 0.2 -- NOT the independent-flip combination
    // 0.1 + 0.1 - 2*0.1*0.1 = 0.18. Run at p >= 0.1 where the two
    // disagree by far more than rounding.
    Circuit c(1);
    c.reset(0);
    c.pauliChannel1(0, 0.1, 0.1, 0.05);
    uint32_t m = c.measureZ(0);
    Detector d;
    d.measurements = {m};
    c.addDetector(d);
    DetectorErrorModel dem = DetectorErrorModel::build(c);
    ASSERT_EQ(dem.channels().size(), 1u);
    DecodingGraph g = DecodingGraph::build(dem);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_NEAR(g.edges()[0].probability, 0.2, 1e-12);

    // Two INDEPENDENT channels with the same signature keep the XOR
    // rule: either flips alone, both cancel.
    Circuit c2(1);
    c2.reset(0);
    c2.xError(0, 0.1);
    c2.xError(0, 0.1);
    uint32_t m2 = c2.measureZ(0);
    Detector d2;
    d2.measurements = {m2};
    c2.addDetector(d2);
    DetectorErrorModel dem2 = DetectorErrorModel::build(c2);
    ASSERT_EQ(dem2.channels().size(), 2u);
    DecodingGraph g2 = DecodingGraph::build(dem2);
    ASSERT_EQ(g2.edges().size(), 1u);
    EXPECT_NEAR(g2.edges()[0].probability,
                0.1 + 0.1 - 2 * 0.1 * 0.1, 1e-12);
}

TEST(Dem, ZeroProbabilityNoiseEmitsNothing)
{
    // pReset = 0 (the atPhysicalRate default) must suppress the
    // reset-flip ops entirely: fewer circuit ops, strictly fewer DEM
    // channels than the same config with reset noise on, and never a
    // zero-probability outcome anywhere.
    GeneratorConfig cfg0 = smallConfig(EmbeddingKind::Baseline2D, 2e-3);
    ASSERT_EQ(cfg0.noise.pReset, 0.0);
    GeneratedCircuit without = generateBaselineMemory(cfg0);
    GeneratorConfig cfg = cfg0;
    cfg.noise.pReset = 2e-3;
    GeneratedCircuit with = generateBaselineMemory(cfg);
    EXPECT_LT(without.circuit.ops().size(), with.circuit.ops().size());

    DetectorErrorModel demWith = DetectorErrorModel::build(with.circuit);
    DetectorErrorModel demWithout =
        DetectorErrorModel::build(without.circuit);
    EXPECT_LT(demWithout.channels().size(), demWith.channels().size());
    for (const auto& ch : demWithout.channels())
        for (const auto& o : ch.outcomes)
            EXPECT_GT(o.probability, 0.0);
}

TEST(Sampler, ZeroNoiseSamplesNothing)
{
    GeneratorConfig cfg = smallConfig(EmbeddingKind::Compact, 0.0);
    cfg.noise.idleScale = 0.0;
    GeneratedCircuit gen = generateCompactMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    Rng rng(1);
    auto shot = sampler.sample(rng);
    EXPECT_TRUE(shot.detectors.none());
    EXPECT_EQ(shot.observables, 0u);
}

} // namespace
} // namespace vlq
