#include <gtest/gtest.h>

#include "mc/sensitivity.h"

namespace vlq {
namespace {

GeneratorConfig
operatingPoint()
{
    GeneratorConfig cfg;
    cfg.cavityDepth = 10;
    cfg.schedule = ExtractionSchedule::Interleaved;
    cfg.noise = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory(), false);
    return cfg;
}

TEST(Sensitivity, PanelsCoverPaperFigure)
{
    auto panels = figure12Panels(4);
    ASSERT_EQ(panels.size(), 7u);
    EXPECT_EQ(panels[0].name, "SC-SC error sensitivity");
    EXPECT_EQ(panels[6].name, "Cavity size sensitivity");
    for (const auto& p : panels) {
        EXPECT_FALSE(p.values.empty());
        EXPECT_TRUE(static_cast<bool>(p.apply));
    }
}

TEST(Sensitivity, ApplyMutatesOnlyItsParameter)
{
    auto panels = figure12Panels(4);
    GeneratorConfig cfg = operatingPoint();
    panels[1].apply(cfg, 5e-3); // load/store error
    EXPECT_DOUBLE_EQ(cfg.noise.pLoadStore, 5e-3);
    EXPECT_DOUBLE_EQ(cfg.noise.p2, 2e-3); // untouched

    GeneratorConfig cfg2 = operatingPoint();
    panels[6].apply(cfg2, 20.0); // cavity size
    EXPECT_EQ(cfg2.cavityDepth, 20);
    EXPECT_DOUBLE_EQ(cfg2.noise.pLoadStore, 2e-3);
}

TEST(Sensitivity, RunProducesGridOfEstimates)
{
    SensitivitySpec spec{
        "toy", "p2", {1e-3, 8e-3},
        [](GeneratorConfig& c, double x) { c.noise.p2 = x; }};

    McOptions mc;
    mc.trials = 200;
    SensitivityResult result = runSensitivity(
        EmbeddingKind::Baseline2D, operatingPoint(), spec, {3, 5}, mc);
    ASSERT_EQ(result.points.size(), 2u);
    ASSERT_EQ(result.points[0].size(), 2u);
    // Monotone in the swept parameter (coarse statistical check).
    double lowP = result.points[0][0].combinedRate();
    double highP = result.points[1][0].combinedRate();
    EXPECT_LE(lowP, highP + 0.05);
}

TEST(Sensitivity, CavityT1SweepMonotone)
{
    // Shorter cavity T1 must not reduce the logical error rate.
    auto panels = figure12Panels(4);
    const SensitivitySpec& t1Panel = panels[3];
    ASSERT_EQ(t1Panel.name, "Cavity T1 sensitivity");
    McOptions mc;
    mc.trials = 300;
    SensitivityResult result = runSensitivity(
        EmbeddingKind::Compact, operatingPoint(), t1Panel, {3}, mc);
    double shortT1 = result.points.front()[0].combinedRate();
    double longT1 = result.points.back()[0].combinedRate();
    EXPECT_GT(shortT1, longT1);
}

} // namespace
} // namespace vlq
