#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mc/monte_carlo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/events.h"
#include "service/job.h"
#include "service/job_service.h"
#include "util/threadpool.h"

/**
 * Concurrency stress harness. These tests pass under any build, but
 * they exist to give ThreadSanitizer short racy windows to inspect:
 * control-plane requests (submit/cancel/requeue/shutdown) hammered
 * against a service mid-drain, metrics-shard churn from short-lived
 * threads racing snapshotMetrics(), and batch commits + checkpoint
 * saves issued from pool worker threads. CI runs the tier-1 suite --
 * including this file -- under -fsanitize=thread with both compute
 * backends (the `tsan` preset); a data race here is a bug, never a
 * suppression (see docs/ARCHITECTURE.md, "Static analysis &
 * sanitizers").
 */

namespace vlq {
namespace {

using service::EventSink;
using service::JobService;
using service::JobServiceConfig;
using service::ScanJob;

ScanJob
stressJob(const std::string& id, uint64_t trials)
{
    ScanJob job;
    job.id = id;
    job.setup = 2;
    job.distances = {3};
    job.physicalPs = {8e-3};
    job.trials = trials;
    job.batchSize = 32;
    job.seed = 29;
    return job;
}

void
removeJobState(const JobService& svc, const std::string& id)
{
    std::remove(svc.checkpointPath(id).c_str());
    std::remove((svc.checkpointPath(id) + ".tmp").c_str());
}

/**
 * Control-plane churn: one thread drains the queue while two hammer
 * threads fire the full request grammar -- submits, requeues of
 * queued/running/terminal ids, cancels, and garbage lines -- at the
 * live service. The scheduler quantum is tiny so the long job gets
 * preempted into and out of the queue while the hammers rotate it.
 */
TEST(TsanStress, ControlPlaneChurnWhileDraining)
{
    std::ostringstream out;
    EventSink sink(&out);
    JobServiceConfig cfg;
    cfg.stateDir = testing::TempDir();
    cfg.quantumTrials = 96;
    cfg.progressEveryTrials = 64;
    cfg.threads = 2;
    JobService svc(cfg, sink);

    std::vector<std::string> ids = {"ts-long", "ts-a", "ts-b"};
    removeJobState(svc, "ts-long");
    ASSERT_TRUE(svc.submit(stressJob("ts-long", 2400)));
    for (const char* id : {"ts-a", "ts-b"}) {
        removeJobState(svc, id);
        ASSERT_TRUE(svc.submit(stressJob(id, 600)));
    }

    std::thread runner([&] { svc.runUntilDrained(); });

    auto hammer = [&](int t) {
        for (int i = 0; i < 24; ++i) {
            std::string id = "ts-h" + std::to_string(t) + "-"
                + std::to_string(i);
            if (i % 3 == 0) {
                removeJobState(svc, id);
                svc.submitLine(stressJob(id, 200).requestLine());
                if (i % 6 == 0)
                    svc.submitLine("cancel id=" + id);
            }
            // Rotations race the scheduler pop: each either succeeds
            // (job still queued) or errors (running/terminal) -- both
            // must be race-free and emit exactly one event.
            svc.submitLine("requeue id=" + ids[i % ids.size()]);
            svc.submitLine("requeue id=never-submitted");
            svc.submitLine("bogus-verb id=x");
            std::this_thread::yield();
        }
    };
    std::thread h1(hammer, 1);
    std::thread h2(hammer, 2);
    h1.join();
    h2.join();
    runner.join();

    // Drain whatever the hammers enqueued after the runner exited.
    svc.runUntilDrained();

    // The stream survived the churn: parseable, strictly ordered.
    uint64_t prevSeq = 0;
    size_t preemptions = 0;
    std::istringstream is(out.str());
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::string lintErr;
        ASSERT_TRUE(obs::jsonLint(line, &lintErr))
            << line << "\n" << lintErr;
        std::string needle = "\"seq\":";
        size_t at = line.find(needle);
        ASSERT_NE(at, std::string::npos) << line;
        uint64_t seq = std::stoull(line.substr(at + needle.size()));
        EXPECT_GT(seq, prevSeq) << "seq must strictly increase";
        prevSeq = seq;
        if (line.find("\"event\":\"preempted\"") != std::string::npos)
            ++preemptions;
    }
    EXPECT_GE(preemptions, 1u)
        << "quantum 96 with queued peers must preempt the long job";
}

/**
 * Shard churn: waves of short-lived writer threads (raw std::thread
 * and fresh ThreadPool workers) exit -- retiring their thread-local
 * shards -- while the main thread scrapes snapshots mid-wave. The
 * final joined snapshot must account for every single increment.
 */
TEST(TsanStress, MetricsShardChurnRacesSnapshots)
{
    const bool wasEnabled = obs::metricsEnabled();
    obs::setMetricsEnabled(true);
    const uint64_t before =
        obs::snapshotMetrics().counter("tsan.stress.increments");

    constexpr int kWaves = 6;
    constexpr int kThreadsPerWave = 4;
    constexpr uint64_t kAddsPerThread = 2048;
    for (int wave = 0; wave < kWaves; ++wave) {
        std::vector<std::thread> writers;
        writers.reserve(kThreadsPerWave);
        for (int t = 0; t < kThreadsPerWave; ++t) {
            writers.emplace_back([] {
                obs::Counter counter =
                    obs::Counter::get("tsan.stress.increments");
                obs::Histogram histo =
                    obs::Histogram::get("tsan.stress.latency");
                for (uint64_t i = 0; i < kAddsPerThread; ++i) {
                    counter.add(1);
                    histo.record(i & 1023);
                }
            });
        }
        // ThreadPool workers are born and joined inside parallelFor:
        // their shards retire while the raw writers are still alive.
        ThreadPool pool(3);
        pool.parallelFor(
            kAddsPerThread,
            [](uint64_t begin, uint64_t end, unsigned) {
                obs::Counter counter =
                    obs::Counter::get("tsan.stress.increments");
                for (uint64_t i = begin; i < end; ++i)
                    counter.add(1);
            });
        // Scrape while writers run and shards retire underneath us.
        for (int s = 0; s < 8; ++s)
            (void)obs::snapshotMetrics();
        for (std::thread& writer : writers)
            writer.join();
    }

    const uint64_t after =
        obs::snapshotMetrics().counter("tsan.stress.increments");
    EXPECT_EQ(after - before,
              uint64_t{kWaves} * (kThreadsPerWave + 1) * kAddsPerThread)
        << "retired shards must fold in without losing increments";
    obs::setMetricsEnabled(wasEnabled);
}

GeneratorConfig
stressPoint()
{
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.cavityDepth = 10;
    cfg.noise = NoiseModel::atPhysicalRate(
        8e-3, HardwareParams::transmonsWithMemory());
    return cfg;
}

/**
 * Cross-thread checkpoint commits: four pool workers drive batches
 * through the sequencer, which commits in trial order and saves the
 * checkpoint every 128 trials from whichever worker holds the commit
 * lock; the progress and preempt callbacks run on those workers too.
 * Preempting mid-run and resuming must reproduce the uninterrupted
 * counts bit-identically -- the determinism contract TSan guards the
 * locking of.
 */
TEST(TsanStress, CrossThreadCheckpointCommitsResumeBitIdentically)
{
    const std::string path =
        testing::TempDir() + "tsan-stress-ckpt.txt";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    McOptions opt;
    opt.trials = 1500;
    opt.seed = 31;
    opt.threads = 4;
    opt.batchSize = 32;
    opt.decoder = DecoderKind::Greedy;

    BinomialEstimate solo = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, stressPoint(), opt);

    McOptions first = opt;
    first.checkpointPath = path;
    first.checkpointEveryTrials = 128;
    std::atomic<uint64_t> committed{0};
    first.progress = [&](const McProgress& p) {
        committed.store(p.trialsDone, std::memory_order_relaxed);
    };
    bool preempted = false;
    first.preempt = [&] {
        return committed.load(std::memory_order_relaxed) >= 600;
    };
    first.preempted = &preempted;
    (void)estimateLogicalErrorBasis(EmbeddingKind::Baseline2D,
                                    stressPoint(), first);
    ASSERT_TRUE(preempted) << "the preempt hook must fire mid-run";

    McOptions second = opt;
    second.checkpointPath = path;
    second.checkpointEveryTrials = 128;
    BinomialEstimate resumed = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, stressPoint(), second);

    EXPECT_EQ(resumed.trials, solo.trials);
    EXPECT_EQ(resumed.successes, solo.successes)
        << "preempt/resume across worker threads changed the counts";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

} // namespace
} // namespace vlq
