#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/generator_common.h"
#include "decoder/decoder_factory.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "mc/monte_carlo.h"
#include "util/rng.h"

namespace vlq {
namespace {

GeneratorConfig
batchConfig(int d, double p)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.cavityDepth = 10;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

DetectorErrorModel
buildDem(int d, double p)
{
    GeneratedCircuit gen = generateMemoryCircuit(
        EmbeddingKind::Baseline2D, batchConfig(d, p));
    return DetectorErrorModel::build(gen.circuit);
}

// ---------------------------------------------------------------------------
// ShotBatch layout
// ---------------------------------------------------------------------------

TEST(ShotBatchTest, LayoutRoundTrips)
{
    ShotBatch batch;
    // 130 shots forces multi-word rows (wordsPerRow == 3).
    batch.reset(5, 2, 130, 1000);
    EXPECT_EQ(batch.numShots(), 130u);
    EXPECT_EQ(batch.wordsPerRow(), 3u);
    EXPECT_EQ(batch.firstTrial(), 1000u);

    // Flip detector 3 in shots 0, 64, 129 and observable 1 in shot 64.
    batch.detectorRow(3)[0] ^= 1ull;
    batch.detectorRow(3)[1] ^= 1ull;
    batch.detectorRow(3)[2] ^= 1ull << 1;
    batch.observableRow(1)[1] ^= 1ull;

    EXPECT_TRUE(batch.detector(0, 3));
    EXPECT_TRUE(batch.detector(64, 3));
    EXPECT_TRUE(batch.detector(129, 3));
    EXPECT_FALSE(batch.detector(1, 3));
    EXPECT_FALSE(batch.detector(0, 2));
    EXPECT_EQ(batch.observables(64), 2u);
    EXPECT_EQ(batch.observables(0), 0u);

    BitVec det;
    batch.extractShot(64, det);
    ASSERT_EQ(det.size(), 5u);
    EXPECT_TRUE(det.get(3));
    EXPECT_EQ(det.popcount(), 1u);
    batch.extractShot(1, det);
    EXPECT_TRUE(det.none());

    EXPECT_EQ(batch.nonTrivialMask(0), 1ull);
    EXPECT_EQ(batch.nonTrivialMask(1), 1ull);
    EXPECT_EQ(batch.nonTrivialMask(2), 1ull << 1);

    std::vector<std::vector<uint32_t>> events;
    batch.gatherEvents(events);
    ASSERT_GE(events.size(), 130u);
    EXPECT_EQ(events[0], std::vector<uint32_t>{3});
    EXPECT_EQ(events[64], std::vector<uint32_t>{3});
    EXPECT_EQ(events[129], std::vector<uint32_t>{3});
    EXPECT_TRUE(events[1].empty());

    // reset() zeroes everything for reuse.
    batch.reset(5, 2, 130, 0);
    EXPECT_FALSE(batch.detector(0, 3));
    EXPECT_EQ(batch.observables(64), 0u);
}

TEST(ShotBatchTest, GatherEventsSortedWithinShot)
{
    ShotBatch batch;
    batch.reset(8, 1, 3, 0);
    for (uint32_t d : {6, 1, 4})
        batch.detectorRow(d)[0] ^= 1ull << 2;
    std::vector<std::vector<uint32_t>> events;
    batch.gatherEvents(events);
    EXPECT_EQ(events[2], (std::vector<uint32_t>{1, 4, 6}));
}

// ---------------------------------------------------------------------------
// Batched sampler
// ---------------------------------------------------------------------------

TEST(BatchSamplerTest, ZeroNoiseSamplesNothing)
{
    GeneratorConfig cfg = batchConfig(3, 0.0);
    cfg.noise.idleScale = 0.0;
    GeneratedCircuit gen =
        generateMemoryCircuit(EmbeddingKind::Baseline2D, cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);
    ShotBatch batch;
    batch.reset(dem.numDetectors(), dem.numObservables(), 128, 0);
    sampler.sampleBatchInto(Rng(7), batch);
    for (uint32_t wi = 0; wi < batch.wordsPerRow(); ++wi)
        EXPECT_EQ(batch.nonTrivialMask(wi), 0u);
}

TEST(BatchSamplerTest, ShotsAreAPureFunctionOfTheTrialIndex)
{
    DetectorErrorModel dem = buildDem(3, 8e-3);
    FaultSampler sampler(dem);
    const Rng root(0x5eed);

    // Trials [0, 256) in one batch...
    ShotBatch whole;
    whole.reset(dem.numDetectors(), dem.numObservables(), 256, 0);
    sampler.sampleBatchInto(root, whole);

    // ... must equal any other batching of the same trials.
    for (uint32_t batchSize : {1u, 64u, 100u}) {
        ShotBatch part;
        for (uint32_t begin = 0; begin < 256; begin += batchSize) {
            uint32_t count = std::min(batchSize, 256 - begin);
            part.reset(dem.numDetectors(), dem.numObservables(), count,
                       begin);
            sampler.sampleBatchInto(root, part);
            for (uint32_t s = 0; s < count; ++s) {
                for (uint32_t d = 0; d < dem.numDetectors(); ++d)
                    ASSERT_EQ(part.detector(s, d),
                              whole.detector(begin + s, d))
                        << "trial " << begin + s << " detector " << d
                        << " batchSize " << batchSize;
                ASSERT_EQ(part.observables(s),
                          whole.observables(begin + s));
            }
        }
    }
}

TEST(BatchSamplerTest, StatisticallyMatchesScalarSampler)
{
    DetectorErrorModel dem = buildDem(3, 8e-3);
    FaultSampler sampler(dem);
    const uint32_t N = 6000;
    const uint32_t D = dem.numDetectors();

    // Scalar reference: one draw per channel per trial.
    std::vector<uint32_t> scalarFlips(D, 0);
    uint64_t scalarObs = 0;
    double scalarEvents = 0;
    {
        Rng root(0x1234);
        BitVec det(D);
        uint32_t obs = 0;
        for (uint32_t i = 0; i < N; ++i) {
            Rng rng = root.split(i);
            sampler.sampleInto(rng, det, obs);
            for (uint32_t d = 0; d < D; ++d)
                scalarFlips[d] += det.get(d);
            scalarObs += obs != 0;
            scalarEvents += static_cast<double>(det.popcount());
        }
    }

    // Batched path: skip-sampling into transposed words.
    std::vector<uint32_t> batchFlips(D, 0);
    uint64_t batchObs = 0;
    double batchEvents = 0;
    {
        const Rng root(0x9876);
        ShotBatch batch;
        for (uint32_t begin = 0; begin < N; begin += 256) {
            uint32_t count = std::min(256u, N - begin);
            batch.reset(D, dem.numObservables(), count, begin);
            sampler.sampleBatchInto(root, batch);
            for (uint32_t s = 0; s < count; ++s) {
                for (uint32_t d = 0; d < D; ++d)
                    batchFlips[d] += batch.detector(s, d);
                batchObs += batch.observables(s) != 0;
            }
            std::vector<std::vector<uint32_t>> ev;
            batch.gatherEvents(ev);
            for (uint32_t s = 0; s < count; ++s)
                batchEvents += static_cast<double>(ev[s].size());
        }
    }

    // Per-detector marginal flip rates agree within ~4 sigma.
    for (uint32_t d = 0; d < D; ++d) {
        double ps = scalarFlips[d] / static_cast<double>(N);
        double pb = batchFlips[d] / static_cast<double>(N);
        double sigma = std::sqrt(
            std::max(ps * (1 - ps), 1e-4) / N);
        EXPECT_NEAR(pb, ps, 5 * sigma + 0.005) << "detector " << d;
    }
    EXPECT_NEAR(batchEvents / N, scalarEvents / N,
                0.05 * std::max(1.0, scalarEvents / N));
    EXPECT_NEAR(static_cast<double>(batchObs) / N,
                static_cast<double>(scalarObs) / N, 0.02);
}

// ---------------------------------------------------------------------------
// decodeBatch == decode, for every registered backend
// ---------------------------------------------------------------------------

TEST(DecodeBatchTest, AgreesShotForShotWithScalarDecode)
{
    DetectorErrorModel dem = buildDem(3, 8e-3);
    FaultSampler sampler(dem);
    const Rng root(0xabcdef);
    ShotBatch batch;
    batch.reset(dem.numDetectors(), dem.numObservables(), 300, 0);
    sampler.sampleBatchInto(root, batch);

    for (const DecoderRegistration& reg : decoderRegistry()) {
        std::unique_ptr<Decoder> dec = makeDecoder(reg.kind, dem);
        ASSERT_NE(dec, nullptr) << reg.name;
        std::vector<uint32_t> predictions(batch.numShots(), 0xdead);
        dec->decodeBatch(batch, std::span<uint32_t>(predictions));
        BitVec det;
        for (uint32_t s = 0; s < batch.numShots(); ++s) {
            batch.extractShot(s, det);
            ASSERT_EQ(predictions[s], dec->decode(det))
                << reg.name << " shot " << s;
        }
    }
}

// ---------------------------------------------------------------------------
// Batched Monte-Carlo engine: reproducibility and early stop
// ---------------------------------------------------------------------------

TEST(BatchedMcTest, CountsInvariantUnderThreadsAndBatchSize)
{
    GeneratorConfig cfg = batchConfig(3, 8e-3);
    McOptions base;
    base.trials = 500;
    base.seed = 99;
    base.decoder = DecoderKind::UnionFind;

    McOptions first = base;
    first.threads = 1;
    first.batchSize = 1;
    BinomialEstimate ref = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, first);
    EXPECT_EQ(ref.trials, 500u);
    EXPECT_GT(ref.successes, 0u);

    for (unsigned threads : {1u, 4u}) {
        for (uint32_t batchSize : {1u, 64u, 256u}) {
            McOptions opt = base;
            opt.threads = threads;
            opt.batchSize = batchSize;
            BinomialEstimate est = estimateLogicalErrorBasis(
                EmbeddingKind::Baseline2D, cfg, opt);
            EXPECT_EQ(est.successes, ref.successes)
                << threads << " threads, batch " << batchSize;
            EXPECT_EQ(est.trials, ref.trials)
                << threads << " threads, batch " << batchSize;
        }
    }
}

TEST(BatchedMcTest, MwpmBackendAlsoInvariant)
{
    GeneratorConfig cfg = batchConfig(3, 8e-3);
    McOptions a;
    a.trials = 300;
    a.seed = 41;
    a.threads = 1;
    a.batchSize = 64;
    McOptions b = a;
    b.threads = 4;
    b.batchSize = 256;
    BinomialEstimate ea = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, a);
    BinomialEstimate eb = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, b);
    EXPECT_EQ(ea.successes, eb.successes);
    EXPECT_EQ(ea.trials, eb.trials);
}

TEST(BatchedMcTest, EarlyStopIsDeterministicAcrossConfigurations)
{
    GeneratorConfig cfg = batchConfig(3, 1.5e-2);
    McOptions base;
    base.trials = 4000;
    base.seed = 7;
    base.targetFailures = 5;
    base.decoder = DecoderKind::UnionFind;

    McOptions first = base;
    first.threads = 1;
    first.batchSize = 1;
    BinomialEstimate ref = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, first);
    ASSERT_EQ(ref.successes, 5u);
    ASSERT_LT(ref.trials, 4000u);

    for (unsigned threads : {1u, 4u}) {
        for (uint32_t batchSize : {1u, 64u, 256u}) {
            McOptions opt = base;
            opt.threads = threads;
            opt.batchSize = batchSize;
            BinomialEstimate est = estimateLogicalErrorBasis(
                EmbeddingKind::Baseline2D, cfg, opt);
            EXPECT_EQ(est.successes, ref.successes)
                << threads << " threads, batch " << batchSize;
            EXPECT_EQ(est.trials, ref.trials)
                << threads << " threads, batch " << batchSize;
        }
    }

    // The stop point is a property of the sampled outcomes: running
    // exactly est.trials full trials reproduces exactly the target
    // failure count, and one fewer trial loses the last failure.
    McOptions full = base;
    full.targetFailures = 0;
    full.trials = ref.trials;
    BinomialEstimate exact = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, full);
    EXPECT_EQ(exact.successes, 5u);
    full.trials = ref.trials - 1;
    BinomialEstimate oneLess = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, full);
    EXPECT_EQ(oneLess.successes, 4u);
}

TEST(BatchedMcTest, TargetBeyondAvailableFailuresRunsAllTrials)
{
    GeneratorConfig cfg = batchConfig(3, 5e-3);
    McOptions opt;
    opt.trials = 200;
    opt.targetFailures = 1000000; // unreachable
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, opt);
    EXPECT_EQ(est.trials, 200u);
}

TEST(BatchedMcTest, ProgressStreamsInOrder)
{
    GeneratorConfig cfg = batchConfig(3, 8e-3);
    McOptions opt;
    opt.trials = 700;
    opt.threads = 4;
    opt.batchSize = 64;
    opt.decoder = DecoderKind::UnionFind;
    std::vector<McProgress> seen;
    opt.progress = [&](const McProgress& p) { seen.push_back(p); };
    BinomialEstimate est = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, opt);

    ASSERT_FALSE(seen.empty());
    uint64_t lastTrials = 0;
    uint64_t lastFailures = 0;
    for (const McProgress& p : seen) {
        EXPECT_GE(p.trialsDone, lastTrials);
        EXPECT_GE(p.failures, lastFailures);
        EXPECT_EQ(p.totalTrials, 700u);
        lastTrials = p.trialsDone;
        lastFailures = p.failures;
    }
    EXPECT_EQ(lastTrials, est.trials);
    EXPECT_EQ(lastFailures, est.successes);
    // One commit per batch, in order.
    EXPECT_EQ(seen.size(), (700 + 63) / 64u);
}

} // namespace
} // namespace vlq
