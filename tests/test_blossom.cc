#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "decoder/blossom.h"
#include "util/rng.h"

namespace vlq {
namespace {

/** Brute-force maximum-weight matching by recursion (n <= 10). */
struct BruteForce
{
    int n;
    std::vector<std::vector<double>> w;
    std::vector<std::vector<bool>> has;

    BruteForce(int n_, const std::vector<MatchEdge>& edges)
        : n(n_), w(static_cast<size_t>(n_),
                   std::vector<double>(static_cast<size_t>(n_), 0.0)),
          has(static_cast<size_t>(n_),
              std::vector<bool>(static_cast<size_t>(n_), false))
    {
        for (const auto& e : edges) {
            w[static_cast<size_t>(e.u)][static_cast<size_t>(e.v)] =
                e.weight;
            w[static_cast<size_t>(e.v)][static_cast<size_t>(e.u)] =
                e.weight;
            has[static_cast<size_t>(e.u)][static_cast<size_t>(e.v)] = true;
            has[static_cast<size_t>(e.v)][static_cast<size_t>(e.u)] = true;
        }
    }

    /** Best (cardinality, weight), lexicographic if maxCard. */
    std::pair<int, double>
    best(std::vector<bool>& used, bool maxCard) const
    {
        int first = -1;
        for (int v = 0; v < n; ++v) {
            if (!used[static_cast<size_t>(v)]) {
                first = v;
                break;
            }
        }
        if (first < 0)
            return {0, 0.0};
        used[static_cast<size_t>(first)] = true;
        // Option: leave `first` unmatched.
        auto bestResult = best(used, maxCard);
        for (int v = first + 1; v < n; ++v) {
            if (used[static_cast<size_t>(v)] ||
                !has[static_cast<size_t>(first)][static_cast<size_t>(v)])
                continue;
            used[static_cast<size_t>(v)] = true;
            auto sub = best(used, maxCard);
            std::pair<int, double> cand{
                sub.first + 1,
                sub.second +
                    w[static_cast<size_t>(first)][static_cast<size_t>(v)]};
            used[static_cast<size_t>(v)] = false;
            bool better;
            if (maxCard) {
                better = cand.first > bestResult.first ||
                         (cand.first == bestResult.first &&
                          cand.second > bestResult.second + 1e-9);
            } else {
                better = cand.second > bestResult.second + 1e-9;
            }
            if (better)
                bestResult = cand;
        }
        used[static_cast<size_t>(first)] = false;
        return bestResult;
    }
};

double
matchingWeight(const std::vector<int>& mate,
               const std::vector<MatchEdge>& edges, int* cardinality)
{
    double total = 0.0;
    int card = 0;
    for (const auto& e : edges) {
        if (mate[static_cast<size_t>(e.u)] == e.v) {
            total += e.weight;
            ++card;
        }
    }
    if (cardinality)
        *cardinality = card;
    return total;
}

TEST(Blossom, SingleEdge)
{
    std::vector<MatchEdge> edges{{0, 1, 5.0}};
    auto mate = maxWeightMatching(2, edges, false);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[1], 0);
}

TEST(Blossom, PrefersHeavyEdge)
{
    // Path 0-1-2: only one edge can match; takes the heavier.
    std::vector<MatchEdge> edges{{0, 1, 1.0}, {1, 2, 3.0}};
    auto mate = maxWeightMatching(3, edges, false);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[0], -1);
}

TEST(Blossom, MaxCardinalityOverridesWeight)
{
    // Path 0-1(10)-2(1)-3(10): pure weight would take a single heavy
    // edge plus one other; max cardinality must take {0-1, 2-3}.
    std::vector<MatchEdge> edges{{0, 1, 10.0}, {1, 2, 11.0}, {2, 3, 10.0}};
    auto mate = maxWeightMatching(4, edges, true);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[2], 3);
}

TEST(Blossom, TriangleBlossom)
{
    // Odd cycle forces blossom machinery.
    std::vector<MatchEdge> edges{
        {0, 1, 6.0}, {1, 2, 6.0}, {0, 2, 6.0}, {2, 3, 5.0}};
    auto mate = maxWeightMatching(4, edges, false);
    EXPECT_EQ(mate[2], 3);
    // 0 or 1 matched together.
    EXPECT_EQ(mate[0], 1);
}

TEST(Blossom, NestedBlossomExample)
{
    // Classic networkx test: nested S-blossom, relabeled and expanded.
    std::vector<MatchEdge> edges{
        {1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18},
        {3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7}};
    // Shift to 0-based.
    for (auto& e : edges) {
        --e.u;
        --e.v;
    }
    auto mate = maxWeightMatching(8, edges, false);
    // Expected (1-based): {1:8, 2:3, 4:7, 5:6} from networkx test suite.
    EXPECT_EQ(mate[0], 7);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[3], 6);
    EXPECT_EQ(mate[4], 5);
}

TEST(Blossom, SBlossomRelabelExpand)
{
    // networkx: create S-blossom, relabel as T, expand.
    std::vector<MatchEdge> edges{
        {1, 2, 23}, {1, 5, 22}, {1, 6, 15}, {2, 3, 25},
        {3, 4, 22}, {4, 5, 25}, {4, 8, 14}, {5, 7, 13}};
    for (auto& e : edges) {
        --e.u;
        --e.v;
    }
    auto mate = maxWeightMatching(8, edges, false);
    // Expected: {1:6, 2:3, 4:8, 5:7} (1-based).
    EXPECT_EQ(mate[0], 5);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[3], 7);
    EXPECT_EQ(mate[4], 6);
}

TEST(Blossom, TBlossomAugmenting)
{
    // networkx: create blossom, relabel as T in more than one way,
    // expand, augment.
    std::vector<MatchEdge> edges{
        {1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
        {1, 6, 30}, {3, 9, 35}, {4, 8, 35}, {5, 7, 26}, {9, 10, 5}};
    for (auto& e : edges) {
        --e.u;
        --e.v;
    }
    auto mate = maxWeightMatching(10, edges, false);
    // Expected: {1:6, 2:3, 4:8, 5:7, 9:10}.
    EXPECT_EQ(mate[0], 5);
    EXPECT_EQ(mate[1], 2);
    EXPECT_EQ(mate[3], 7);
    EXPECT_EQ(mate[4], 6);
    EXPECT_EQ(mate[8], 9);
}

TEST(MinWeightPerfect, SimpleSquare)
{
    // Square 0-1-2-3 with cheap opposite pairs.
    std::vector<MatchEdge> edges{
        {0, 1, 1.0}, {1, 2, 9.0}, {2, 3, 1.0}, {3, 0, 9.0},
        {0, 2, 10.0}, {1, 3, 10.0}};
    auto mate = minWeightPerfectMatching(4, edges);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[2], 3);
}

TEST(MinWeightPerfect, RejectsImpossible)
{
    std::vector<MatchEdge> edges{{0, 1, 1.0}};
    EXPECT_DEATH(minWeightPerfectMatching(4, edges), "perfect");
}

class BlossomRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BlossomRandom, MatchesBruteForceWeight)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        int n = 4 + static_cast<int>(rng.nextBelow(5)); // 4..8
        std::vector<MatchEdge> edges;
        for (int u = 0; u < n; ++u) {
            for (int v = u + 1; v < n; ++v) {
                if (rng.nextDouble() < 0.6) {
                    double w =
                        std::round(rng.nextDouble() * 20.0) / 2.0;
                    edges.push_back(MatchEdge{u, v, w});
                }
            }
        }
        if (edges.empty())
            continue;
        for (bool maxCard : {false, true}) {
            auto mate = maxWeightMatching(n, edges, maxCard);
            int card = 0;
            double got = matchingWeight(mate, edges, &card);
            BruteForce bf(n, edges);
            std::vector<bool> used(static_cast<size_t>(n), false);
            auto [bestCard, bestW] = bf.best(used, maxCard);
            if (maxCard) {
                EXPECT_EQ(card, bestCard)
                    << "n=" << n << " trial=" << trial;
                EXPECT_NEAR(got, bestW, 1e-6)
                    << "n=" << n << " trial=" << trial;
            } else {
                EXPECT_NEAR(got, bestW, 1e-6)
                    << "n=" << n << " trial=" << trial;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomRandom,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808, 909, 1010));

TEST(Blossom, ZeroWeightEdgesMatchUnderMaxCardinality)
{
    // The decoder relies on zero-weight boundary-boundary edges being
    // usable under max cardinality.
    std::vector<MatchEdge> edges{
        {0, 1, 4.0}, {2, 3, 0.0}, {0, 2, 0.0}, {1, 3, 0.0}};
    auto mate = maxWeightMatching(4, edges, true);
    for (int v = 0; v < 4; ++v)
        EXPECT_GE(mate[static_cast<size_t>(v)], 0);
}

TEST(Blossom, TiedWeightsDeterministic)
{
    std::vector<MatchEdge> edges{
        {0, 1, 2.0}, {1, 2, 2.0}, {2, 3, 2.0}, {3, 0, 2.0}};
    auto a = maxWeightMatching(4, edges, true);
    auto b = maxWeightMatching(4, edges, true);
    EXPECT_EQ(a, b);
    int card = 0;
    matchingWeight(a, edges, &card);
    EXPECT_EQ(card, 2);
}

TEST(Blossom, FractionalWeightsExact)
{
    // Weights quantized at 2^-20; nearby values must still order
    // correctly.
    std::vector<MatchEdge> edges{{0, 1, 1.0000, }, {1, 2, 1.0001}};
    auto mate = maxWeightMatching(3, edges, false);
    EXPECT_EQ(mate[1], 2);
}

TEST(Blossom, EmptyGraph)
{
    auto mate = maxWeightMatching(3, {}, false);
    for (int v = 0; v < 3; ++v)
        EXPECT_EQ(mate[static_cast<size_t>(v)], -1);
}

TEST(MinWeightPerfect, PrefersCheapPerfectOverGreedyChoice)
{
    // Greedy would grab the 0.1 edge and strand the rest expensively;
    // exact matching takes the globally cheapest perfect matching.
    std::vector<MatchEdge> edges{
        {0, 1, 0.1}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 10.0},
        {0, 3, 10.0}, {1, 2, 10.0}};
    auto mate = minWeightPerfectMatching(4, edges);
    EXPECT_EQ(mate[0], 2);
    EXPECT_EQ(mate[1], 3);
}

TEST(Blossom, LargeCompleteGraphRuns)
{
    // Smoke test at decoder-relevant scale.
    Rng rng(12345);
    const int n = 60;
    std::vector<MatchEdge> edges;
    for (int u = 0; u < n; ++u)
        for (int v = u + 1; v < n; ++v)
            edges.push_back(MatchEdge{u, v, rng.nextDouble() * 10.0});
    auto mate = maxWeightMatching(n, edges, true);
    for (int v = 0; v < n; ++v)
        EXPECT_GE(mate[static_cast<size_t>(v)], 0);
}

} // namespace
} // namespace vlq
