#include <gtest/gtest.h>

#include "core/lattice_surgery.h"
#include "core/logical_machine.h"
#include "core/paging.h"

namespace vlq {
namespace {

DeviceConfig
device(int w = 2, int h = 2, int k = 10)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Compact;
    cfg.distance = 3;
    cfg.gridWidth = w;
    cfg.gridHeight = h;
    cfg.cavityDepth = k;
    return cfg;
}

TEST(LatticeSurgeryTest, CnotSequenceIsSixSteps)
{
    auto seq = latticeSurgeryCnotSequence();
    int total = 0;
    for (const auto& s : seq)
        total += s.timesteps;
    EXPECT_EQ(total, LogicalOpCosts::latticeSurgeryCnot);
    EXPECT_EQ(total, 6);
}

TEST(LatticeSurgeryTest, TransversalSixTimesFaster)
{
    EXPECT_EQ(LogicalOpCosts::latticeSurgeryCnot /
                  LogicalOpCosts::transversalCnot,
              6);
}

TEST(RefreshSchedulerTest, IdleStaleBoundedByResidents)
{
    RefreshScheduler sched(1, 10);
    std::vector<int> slots;
    for (int i = 0; i < 5; ++i)
        slots.push_back(sched.addResident(0));
    std::vector<bool> busy{false};
    for (int t = 0; t < 100; ++t)
        sched.step(busy);
    // Round-robin over 5 residents: staleness stays below 5(+1 edge).
    EXPECT_LE(sched.maxStalenessObserved(), 5);
    EXPECT_EQ(sched.refreshCount(), 100u);
}

TEST(RefreshSchedulerTest, BusyStackDelaysRefresh)
{
    RefreshScheduler sched(1, 10);
    int slot = sched.addResident(0);
    std::vector<bool> busy{true};
    for (int t = 0; t < 7; ++t)
        sched.step(busy);
    EXPECT_EQ(sched.staleness(slot), 7);
    sched.step({false});
    EXPECT_EQ(sched.staleness(slot), 1); // refreshed then aged
}

TEST(RefreshSchedulerTest, TouchResetsStaleness)
{
    RefreshScheduler sched(2, 4);
    int a = sched.addResident(0);
    int b = sched.addResident(0);
    (void)b;
    std::vector<bool> busy{true, false};
    sched.step(busy);
    sched.step(busy);
    EXPECT_EQ(sched.staleness(a), 2);
    sched.touch(a);
    EXPECT_EQ(sched.staleness(a), 0);
}

TEST(RefreshSchedulerTest, CapacityEnforced)
{
    RefreshScheduler sched(1, 2);
    sched.addResident(0);
    sched.addResident(0);
    EXPECT_DEATH(sched.addResident(0), "capacity");
}

TEST(LogicalMachineTest, AllocAssignsDistinctAddresses)
{
    LogicalMachine machine(device());
    LogicalQubit a = machine.alloc();
    LogicalQubit b = machine.alloc();
    LogicalQubit c = machine.alloc();
    EXPECT_FALSE(machine.addressOf(a) == machine.addressOf(b));
    EXPECT_FALSE(machine.addressOf(a) == machine.addressOf(c));
    EXPECT_EQ(machine.numAllocated(), 3);
    machine.release(b);
    EXPECT_EQ(machine.numAllocated(), 2);
}

TEST(LogicalMachineTest, StackKeepsOneFreeMode)
{
    DeviceConfig cfg = device(1, 1, 4);
    LogicalMachine machine(cfg);
    // Capacity = k - 1 = 3.
    machine.allocAt({0, 0});
    machine.allocAt({0, 0});
    machine.allocAt({0, 0});
    EXPECT_DEATH(machine.allocAt({0, 0}), "full");
}

TEST(LogicalMachineTest, TransversalCnotRequiresColocation)
{
    LogicalMachine machine(device(2, 1));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({1, 0});
    EXPECT_DEATH(machine.cnotTransversal(a, b), "co-located");
}

TEST(LogicalMachineTest, TransversalCnotTakesOneStep)
{
    LogicalMachine machine(device(1, 1));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({0, 0});
    int before = machine.currentStep();
    machine.cnotTransversal(a, b);
    EXPECT_EQ(machine.currentStep() - before, 1);
}

TEST(LogicalMachineTest, LatticeSurgeryCnotTakesSixSteps)
{
    LogicalMachine machine(device(2, 2));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({1, 1});
    int before = machine.currentStep();
    machine.cnotLatticeSurgery(a, b);
    EXPECT_EQ(machine.currentStep() - before, 6);
}

TEST(LogicalMachineTest, CnotViaColocation)
{
    LogicalMachine machine(device(2, 1));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({1, 0});
    int before = machine.currentStep();
    machine.cnotViaColocation(a, b);
    // Move (1) + transversal CNOT (1) = 2 steps; 6x -> 3x faster than
    // lattice surgery depending on the move.
    EXPECT_EQ(machine.currentStep() - before, 2);
    EXPECT_EQ(machine.addressOf(b).stack, machine.addressOf(a).stack);

    // With move back: 3 steps total.
    LogicalQubit c = machine.allocAt({1, 0});
    before = machine.currentStep();
    machine.cnotViaColocation(a, c, true);
    EXPECT_EQ(machine.currentStep() - before, 3);
    EXPECT_EQ(machine.addressOf(c).stack, (PhysicalAddress{1, 0}));
}

TEST(LogicalMachineTest, MoveUpdatesAddress)
{
    LogicalMachine machine(device(3, 1));
    LogicalQubit q = machine.allocAt({0, 0});
    machine.moveQubit(q, {2, 0});
    EXPECT_EQ(machine.addressOf(q).stack, (PhysicalAddress{2, 0}));
    EXPECT_EQ(machine.currentStep(), 1);
}

TEST(LogicalMachineTest, RefreshKeepsIdleQubitsFresh)
{
    DeviceConfig cfg = device(1, 1, 10);
    LogicalMachine machine(cfg);
    for (int i = 0; i < 5; ++i)
        machine.alloc();
    machine.idle(100);
    // 5 residents, idle stack: staleness bounded by resident count.
    EXPECT_LE(machine.maxStaleness(), 5);
}

TEST(LogicalMachineTest, BusyOpsGrowStaleness)
{
    DeviceConfig cfg = device(1, 1, 10);
    LogicalMachine machine(cfg);
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({0, 0});
    machine.alloc(); // a third resident that never gets touched
    for (int i = 0; i < 20; ++i)
        machine.cnotTransversal(a, b);
    // The untouched resident aged during all 20 busy steps.
    EXPECT_GE(machine.maxStaleness(), 20);
}

TEST(LogicalMachineTest, ScheduleRecordsOps)
{
    LogicalMachine machine(device());
    LogicalQubit a = machine.allocAt({0, 0});
    machine.initQubit(a);
    machine.singleQubitGate(a, "H");
    machine.measureQubit(a, "Z");
    ASSERT_EQ(machine.schedule().size(), 3u);
    EXPECT_NE(machine.schedule()[0].description.find("init"),
              std::string::npos);
    EXPECT_NE(machine.schedule()[2].description.find("measure_Z"),
              std::string::npos);
}

TEST(LogicalMachineTest, MoveManyPacksDisjointRoutes)
{
    // Two moves with disjoint routes share one timestep.
    LogicalMachine machine(device(4, 2));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({0, 1});
    int steps = machine.moveMany({{a, {1, 0}}, {b, {1, 1}}});
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(machine.addressOf(a).stack, (PhysicalAddress{1, 0}));
    EXPECT_EQ(machine.addressOf(b).stack, (PhysicalAddress{1, 1}));
}

TEST(LogicalMachineTest, MoveManySerializesIntersectingRoutes)
{
    // Both routes cross stack (1,0): the second move waits a wave.
    LogicalMachine machine(device(4, 1));
    LogicalQubit a = machine.allocAt({0, 0});
    LogicalQubit b = machine.allocAt({1, 0});
    int steps = machine.moveMany({{a, {2, 0}}, {b, {3, 0}}});
    EXPECT_EQ(steps, 2);
}

TEST(LogicalMachineTest, MoveManyNoOpMovesAreFree)
{
    LogicalMachine machine(device(2, 1));
    LogicalQubit a = machine.allocAt({0, 0});
    int steps = machine.moveMany({{a, {0, 0}}});
    EXPECT_EQ(steps, 0);
}

TEST(LogicalMachineTest, MeasureReleasesCapacity)
{
    DeviceConfig cfg = device(1, 1, 3); // capacity 2
    LogicalMachine machine(cfg);
    LogicalQubit a = machine.allocAt({0, 0});
    machine.allocAt({0, 0});
    machine.measureQubit(a, "Z");
    // Slot freed: allocation succeeds again.
    LogicalQubit c = machine.allocAt({0, 0});
    EXPECT_GE(c, 0);
}

} // namespace
} // namespace vlq
