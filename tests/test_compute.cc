#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "compute/compute_backend.h"
#include "compute/compute_registry.h"
#include "core/generator_common.h"
#include "decoder/decoder_factory.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "mc/monte_carlo.h"
#include "util/rng.h"

namespace vlq {
namespace {

// ---------------------------------------------------------------------------
// Registry plumbing
// ---------------------------------------------------------------------------

TEST(ComputeRegistry, RoundTripsNamesAliasesAndKinds)
{
    ASSERT_GE(computeRegistry().size(), 2u);
    for (const ComputeRegistration& entry : computeRegistry()) {
        EXPECT_EQ(parseComputeKind(entry.name), entry.kind)
            << entry.name;
        EXPECT_STREQ(computeKindName(entry.kind), entry.name);
        ASSERT_NE(entry.maker, nullptr) << entry.name;
    }
    EXPECT_EQ(parseComputeKind("SIMD"), ComputeKind::Simd);
    EXPECT_EQ(parseComputeKind("Scalar"), ComputeKind::Scalar);
    EXPECT_FALSE(parseComputeKind("gpu").has_value());
    EXPECT_FALSE(parseComputeKind("").has_value());
    EXPECT_EQ(computeKindList(), "scalar, simd");
}

TEST(ComputeRegistry, EnvKnobSelectsBackendOrDiesOnTypos)
{
    ::setenv("VLQ_COMPUTE_TESTVAR", "simd", 1);
    EXPECT_EQ(computeKindFromEnv(ComputeKind::Scalar,
                                 "VLQ_COMPUTE_TESTVAR"),
              ComputeKind::Simd);
    ::unsetenv("VLQ_COMPUTE_TESTVAR");
    EXPECT_EQ(computeKindFromEnv(ComputeKind::Scalar,
                                 "VLQ_COMPUTE_TESTVAR"),
              ComputeKind::Scalar);
    // A typo'd value must be a hard error listing the valid keys,
    // never a silent fallback to some default backend.
    ::setenv("VLQ_COMPUTE_TESTVAR", "smid", 1);
    EXPECT_EXIT(computeKindFromEnv(ComputeKind::Scalar,
                                   "VLQ_COMPUTE_TESTVAR"),
                ::testing::ExitedWithCode(1),
                "not a registered compute backend \\(valid: "
                "scalar, simd\\)");
    ::unsetenv("VLQ_COMPUTE_TESTVAR");
}

// ---------------------------------------------------------------------------
// Randomized cross-backend fuzz: the determinism contract
// ---------------------------------------------------------------------------

/** One randomly drawn pipeline configuration. */
struct FuzzDraw
{
    GeneratorConfig config;
    EmbeddingKind embedding = EmbeddingKind::Baseline2D;
    DecoderKind decoder = DecoderKind::Mwpm;
    uint32_t batchSize = 256;
    uint64_t seed = 0;
};

/**
 * Draw a random but valid pipeline configuration. Deliberately spans
 * the classifier's interesting regimes: small distances (lots of
 * trivial/near-trivial syndromes), every registered decoder, batch
 * sizes around the 64-shot word boundary, and sometimes biased or
 * heralded-erasure noise (erased lanes must route to the general
 * decoder identically on every backend).
 */
FuzzDraw
drawPipeline(Rng& rng)
{
    FuzzDraw draw;
    draw.config.distance = rng.nextBelow(2) == 0 ? 3 : 5;
    double p = 2e-3 * (1.0 + 9.0 * rng.nextDouble());
    draw.config.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    switch (rng.nextBelow(3)) {
    case 0:
        draw.embedding = EmbeddingKind::Baseline2D;
        break;
    case 1:
        draw.embedding = EmbeddingKind::Compact;
        break;
    default:
        draw.embedding = EmbeddingKind::CompactRect;
        break;
    }
    if (rng.nextBelow(2) == 1)
        draw.config.schedule = ExtractionSchedule::Interleaved;
    if (rng.nextBelow(3) == 0)
        draw.config.noise.bias = BiasedPauliSource{1.0, 1.0, 4.0};
    if (rng.nextBelow(3) == 0) {
        draw.config.noise.erasure.fraction = 0.3;
        draw.config.noise.erasure.heralded = true;
    }
    const auto& decoders = decoderRegistry();
    draw.decoder = decoders[rng.nextBelow(decoders.size())].kind;
    const uint32_t sizes[] = {1, 7, 63, 64, 65, 130, 256};
    draw.batchSize = sizes[rng.nextBelow(std::size(sizes))];
    draw.seed = rng.nextU64();
    return draw;
}

/** Expect two batches to hold bit-identical sampled words. */
void
expectBatchesIdentical(const ShotBatch& a, const ShotBatch& b,
                       const DetectorErrorModel& dem, int iteration)
{
    ASSERT_EQ(a.numShots(), b.numShots());
    ASSERT_EQ(a.wordsPerRow(), b.wordsPerRow());
    const size_t rowBytes = a.wordsPerRow() * sizeof(uint64_t);
    for (uint32_t d = 0; d < dem.numDetectors(); ++d)
        ASSERT_EQ(std::memcmp(a.detectorRow(d), b.detectorRow(d),
                              rowBytes),
                  0)
            << "iteration " << iteration << " detector row " << d;
    for (uint32_t o = 0; o < dem.numObservables(); ++o)
        ASSERT_EQ(std::memcmp(a.observableRow(o), b.observableRow(o),
                              rowBytes),
                  0)
            << "iteration " << iteration << " observable row " << o;
    for (uint32_t e = 0; e < a.numErasureSites(); ++e)
        ASSERT_EQ(std::memcmp(a.erasureRow(e), b.erasureRow(e),
                              rowBytes),
                  0)
            << "iteration " << iteration << " erasure row " << e;
}

TEST(ComputeFuzzTest, BackendsBitIdenticalOnRandomPipelines)
{
    Rng fuzz(0xf022ed5eed);
    for (int iteration = 0; iteration < 10; ++iteration) {
        FuzzDraw draw = drawPipeline(fuzz);
        GeneratedCircuit gen =
            generateMemoryCircuit(draw.embedding, draw.config);
        DetectorErrorModel dem =
            DetectorErrorModel::build(gen.circuit);
        FaultSampler sampler(dem);
        std::unique_ptr<Decoder> decA = makeDecoder(draw.decoder, dem);
        std::unique_ptr<Decoder> decB = makeDecoder(draw.decoder, dem);
        auto scalar = makeComputeBackend(ComputeKind::Scalar, dem,
                                         sampler, *decA);
        auto simd = makeComputeBackend(ComputeKind::Simd, dem, sampler,
                                       *decB);
        ASSERT_NE(scalar, nullptr);
        ASSERT_NE(simd, nullptr);

        const Rng root(draw.seed);
        ShotBatch batchA;
        ShotBatch batchB;
        std::vector<uint32_t> predA;
        std::vector<uint32_t> predB;
        std::vector<uint64_t> failA;
        std::vector<uint64_t> failB;
        uint64_t totalShots = 0;
        // Two consecutive batches so non-zero firstTrial is covered.
        for (uint64_t begin : {uint64_t{0}, uint64_t{draw.batchSize}}) {
            batchA.reset(dem.numDetectors(), dem.numObservables(),
                         draw.batchSize, begin, dem.numErasureSites());
            batchB.reset(dem.numDetectors(), dem.numObservables(),
                         draw.batchSize, begin, dem.numErasureSites());
            scalar->sampleBatch(root, batchA);
            simd->sampleBatch(root, batchB);
            expectBatchesIdentical(batchA, batchB, dem, iteration);

            predA.assign(draw.batchSize, 0xdead);
            predB.assign(draw.batchSize, 0xbeef);
            scalar->decodeBatch(batchA, std::span<uint32_t>(predA));
            simd->decodeBatch(batchB, std::span<uint32_t>(predB));
            ASSERT_EQ(predA, predB) << "iteration " << iteration
                                    << " batch at " << begin;

            scalar->countFailures(batchA, predA, failA);
            simd->countFailures(batchB, predB, failB);
            ASSERT_EQ(failA, failB) << "iteration " << iteration
                                    << " batch at " << begin;
            totalShots += draw.batchSize;
        }

        // The routing buckets partition the decoded shots, on both
        // backends; the scalar reference routes everything general.
        for (const auto* backend : {scalar.get(), simd.get()}) {
            ComputeBackend::Stats st = backend->stats();
            EXPECT_EQ(st.shots, totalShots)
                << backend->name() << " iteration " << iteration;
            EXPECT_EQ(st.trivial + st.single + st.pair + st.general,
                      st.shots)
                << backend->name() << " iteration " << iteration;
        }
        ComputeBackend::Stats ref = scalar->stats();
        EXPECT_EQ(ref.general, ref.shots);
    }
}

TEST(ComputeFuzzTest, EndToEndCountsIdenticalAcrossBackends)
{
    Rng fuzz(0xc0dec0de);
    for (int iteration = 0; iteration < 3; ++iteration) {
        FuzzDraw draw = drawPipeline(fuzz);
        McOptions scalarOpt;
        scalarOpt.trials = 400;
        scalarOpt.seed = draw.seed;
        scalarOpt.threads = 1 + iteration; // vary threading too
        scalarOpt.decoder = draw.decoder;
        scalarOpt.batchSize = draw.batchSize;
        scalarOpt.compute = ComputeKind::Scalar;
        McOptions simdOpt = scalarOpt;
        simdOpt.compute = ComputeKind::Simd;
        simdOpt.threads = 4;

        BinomialEstimate a = estimateLogicalErrorBasis(
            draw.embedding, draw.config, scalarOpt);
        BinomialEstimate b = estimateLogicalErrorBasis(
            draw.embedding, draw.config, simdOpt);
        EXPECT_EQ(a.trials, b.trials) << "iteration " << iteration;
        EXPECT_EQ(a.successes, b.successes)
            << "iteration " << iteration;
    }
}

TEST(ComputeFuzzTest, EarlyStopIdenticalAcrossBackends)
{
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.noise = NoiseModel::atPhysicalRate(
        1.5e-2, HardwareParams::transmonsWithMemory());
    McOptions scalarOpt;
    scalarOpt.trials = 4000;
    scalarOpt.seed = 7;
    scalarOpt.targetFailures = 5;
    scalarOpt.decoder = DecoderKind::UnionFind;
    scalarOpt.compute = ComputeKind::Scalar;
    McOptions simdOpt = scalarOpt;
    simdOpt.compute = ComputeKind::Simd;

    BinomialEstimate a = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, scalarOpt);
    BinomialEstimate b = estimateLogicalErrorBasis(
        EmbeddingKind::Baseline2D, cfg, simdOpt);
    ASSERT_EQ(a.successes, 5u);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.successes, b.successes);
}

} // namespace
} // namespace vlq
