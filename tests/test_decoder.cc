#include <gtest/gtest.h>

#include <cmath>

#include "core/generator_common.h"
#include "decoder/matching_graph.h"
#include "decoder/mwpm_decoder.h"
#include "dem/detector_model.h"
#include "sim/frame.h"

namespace vlq {
namespace {

GeneratorConfig
configFor(int d, double p, ExtractionSchedule sched,
          CheckBasis basis = CheckBasis::Z)
{
    GeneratorConfig cfg;
    cfg.distance = d;
    cfg.memoryBasis = basis;
    cfg.schedule = sched;
    cfg.cavityDepth = 3;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

TEST(MatchingGraphTest, BuildsFromBaseline)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MatchingGraph g = MatchingGraph::build(dem);
    EXPECT_EQ(g.numNodes(), dem.numDetectors());
    EXPECT_GT(g.numEdges(), 0u);
    // Every detector should reach the boundary.
    for (uint32_t i = 0; i < g.numNodes(); ++i)
        EXPECT_TRUE(std::isfinite(g.boundaryDistance(i))) << i;
}

TEST(MatchingGraphTest, DistanceIsMetricLike)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MatchingGraph g = MatchingGraph::build(dem);
    for (uint32_t a = 0; a < g.numNodes(); ++a) {
        EXPECT_EQ(g.distance(a, a), 0.0f);
        for (uint32_t b = a + 1; b < std::min(g.numNodes(), a + 5); ++b) {
            EXPECT_FLOAT_EQ(g.distance(a, b), g.distance(b, a));
            EXPECT_GT(g.distance(a, b), 0.0);
        }
    }
}

/**
 * The defining property of a distance-d code with MWPM decoding: every
 * single fault outcome is corrected (no logical error from any one
 * fault). Run for every setup at d=3.
 */
class SingleFaultCorrection
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SingleFaultCorrection, EverySingleFaultIsCorrected)
{
    auto [embInt, schedInt, basisInt] = GetParam();
    EmbeddingKind emb = static_cast<EmbeddingKind>(embInt);
    GeneratorConfig cfg =
        configFor(3, 2e-3, static_cast<ExtractionSchedule>(schedInt),
                  static_cast<CheckBasis>(basisInt));
    GeneratedCircuit gen = generateMemoryCircuit(emb, cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder decoder(dem);

    int checked = 0;
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            BitVec det(dem.numDetectors());
            for (uint32_t dIdx : o.detectors)
                det.flip(dIdx);
            uint32_t predicted = decoder.decode(det);
            EXPECT_EQ(predicted, o.observables)
                << "channel at op " << ch.opIndex << " not corrected";
            ++checked;
        }
    }
    EXPECT_GT(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllSetups, SingleFaultCorrection,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

TEST(MwpmDecoderTest, EmptySyndromeNoCorrection)
{
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder decoder(dem);
    BitVec det(dem.numDetectors());
    EXPECT_EQ(decoder.decode(det), 0u);
}

TEST(MwpmDecoderTest, TwoFaultsAtDistanceFive)
{
    // At d=5, any combination of two single faults must be corrected.
    GeneratorConfig cfg = configFor(5, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder decoder(dem);

    // Sample a subset of channel pairs (the full cross product is
    // large); stride through deterministically.
    const auto& chs = dem.channels();
    int checked = 0;
    for (size_t i = 0; i < chs.size(); i += 97) {
        for (size_t j = i + 1; j < chs.size(); j += 131) {
            const auto& oi = chs[i].outcomes.front();
            const auto& oj = chs[j].outcomes.front();
            BitVec det(dem.numDetectors());
            for (uint32_t d : oi.detectors)
                det.flip(d);
            for (uint32_t d : oj.detectors)
                det.flip(d);
            uint32_t truth = oi.observables ^ oj.observables;
            EXPECT_EQ(decoder.decode(det), truth)
                << "pair " << i << "," << j;
            ++checked;
        }
    }
    EXPECT_GT(checked, 50);
}

TEST(GreedyDecoderTest, CorrectsMostSingleFaults)
{
    // Greedy matching is the decoder-quality ablation: unlike exact
    // MWPM it may mispair even a single fault's two events when a
    // boundary edge looks locally cheaper, so we only require a high
    // correction fraction (MWPM is required to reach 100% above).
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    GreedyDecoder decoder(dem);
    int total = 0;
    int wrong = 0;
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            BitVec det(dem.numDetectors());
            for (uint32_t dIdx : o.detectors)
                det.flip(dIdx);
            if (decoder.decode(det) != o.observables)
                ++wrong;
            ++total;
        }
    }
    EXPECT_GT(total, 100);
    // Empirically greedy mispredicts ~28% of single faults at d=3
    // (boundary edges accumulate probability and look locally cheap);
    // the point of this test is that it is far from random (50%) while
    // MWPM achieves 0% -- the gap IS the ablation.
    EXPECT_LT(static_cast<double>(wrong) / total, 0.40)
        << wrong << "/" << total;
    EXPECT_GT(wrong, 0) << "greedy unexpectedly optimal";
}

TEST(MwpmDecoderTest, OddEventCountUsesBoundary)
{
    // A single boundary-adjacent fault fires one detector; the decoder
    // must match it to the boundary, not fail on odd parity.
    GeneratorConfig cfg = configFor(3, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder decoder(dem);
    int oddCases = 0;
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            if (o.detectors.size() != 1)
                continue;
            BitVec det(dem.numDetectors());
            det.flip(o.detectors[0]);
            EXPECT_EQ(decoder.decode(det), o.observables);
            ++oddCases;
        }
    }
    EXPECT_GT(oddCases, 10);
}

TEST(MwpmDecoderTest, ThreeFaultsStillDecodedAtDistanceSeven)
{
    // d=7 corrects any 3 faults; sample triples deterministically.
    GeneratorConfig cfg = configFor(7, 2e-3,
                                    ExtractionSchedule::AllAtOnce);
    GeneratedCircuit gen = generateBaselineMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MwpmDecoder decoder(dem);
    const auto& chs = dem.channels();
    int checked = 0;
    for (size_t i = 0; i < chs.size(); i += 487) {
        for (size_t j = i + 151; j < chs.size(); j += 911) {
            for (size_t k = j + 77; k < chs.size(); k += 1303) {
                const auto& oi = chs[i].outcomes.front();
                const auto& oj = chs[j].outcomes.front();
                const auto& ok = chs[k].outcomes.front();
                BitVec det(dem.numDetectors());
                for (uint32_t d : oi.detectors)
                    det.flip(d);
                for (uint32_t d : oj.detectors)
                    det.flip(d);
                for (uint32_t d : ok.detectors)
                    det.flip(d);
                uint32_t truth = oi.observables ^ oj.observables
                               ^ ok.observables;
                EXPECT_EQ(decoder.decode(det), truth)
                    << i << "," << j << "," << k;
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 20);
}

TEST(MatchingGraphTest, CompactGraphAlsoGraphlike)
{
    GeneratorConfig cfg = configFor(5, 2e-3,
                                    ExtractionSchedule::Interleaved);
    GeneratedCircuit gen = generateCompactMemory(cfg);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    MatchingGraph g = MatchingGraph::build(dem);
    EXPECT_EQ(g.stats().forcedPairings, 0u);
    for (uint32_t i = 0; i < g.numNodes(); ++i)
        EXPECT_TRUE(std::isfinite(g.boundaryDistance(i)));
}

TEST(MatchingGraphTest, FewForcedPairings)
{
    // The standard extraction circuits should produce an almost
    // perfectly graph-like error model.
    for (int embInt : {0, 1, 2}) {
        GeneratorConfig cfg = configFor(3, 2e-3,
                                        ExtractionSchedule::AllAtOnce);
        GeneratedCircuit gen = generateMemoryCircuit(
            static_cast<EmbeddingKind>(embInt), cfg);
        DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
        MatchingGraph g = MatchingGraph::build(dem);
        EXPECT_EQ(g.stats().forcedPairings, 0u)
            << "embedding " << embInt;
    }
}

} // namespace
} // namespace vlq
