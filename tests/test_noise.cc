#include <gtest/gtest.h>

#include <cmath>

#include "core/generator_common.h"
#include "dem/detector_model.h"
#include "noise/hardware_params.h"
#include "noise/noise_model.h"
#include "noise/noise_sources.h"
#include "sim/frame.h"
#include "util/rng.h"

namespace vlq {
namespace {

TEST(HardwareParams, TableOneDefaults)
{
    HardwareParams hw = HardwareParams::transmonsWithMemory();
    EXPECT_DOUBLE_EQ(hw.t1Transmon, 100.0e3); // 100 us
    EXPECT_DOUBLE_EQ(hw.t1Cavity, 1.0e6);     // 1 ms
    EXPECT_DOUBLE_EQ(hw.tGate1, 50.0);
    EXPECT_DOUBLE_EQ(hw.tGate2, 200.0);
    EXPECT_DOUBLE_EQ(hw.tGateTm, 200.0);
    EXPECT_DOUBLE_EQ(hw.tLoadStore, 150.0);
}

TEST(NoiseModel, DerivedRates)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        4e-3, HardwareParams::transmonsWithMemory());
    EXPECT_DOUBLE_EQ(nm.p2, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pTm, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pLoadStore, 4e-3);
    EXPECT_DOUBLE_EQ(nm.p1, 4e-4);
    EXPECT_DOUBLE_EQ(nm.pMeas, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pReset, 0.0);
    EXPECT_DOUBLE_EQ(nm.idleScale, 2.0); // 4e-3 / 2e-3
}

TEST(NoiseModel, FixedCoherenceOption)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        8e-3, HardwareParams::transmonsWithMemory(), false);
    EXPECT_DOUBLE_EQ(nm.idleScale, 1.0);
}

TEST(NoiseModel, IdleErrorFormula)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    // lambda = 1 - exp(-dt/T1) at the reference point.
    double dt = 1000.0; // 1 us
    double expectT = 1.0 - std::exp(-dt / 100.0e3);
    double expectC = 1.0 - std::exp(-dt / 1.0e6);
    EXPECT_NEAR(nm.idleError(WireKind::Transmon, dt), expectT, 1e-12);
    EXPECT_NEAR(nm.idleError(WireKind::CavityMode, dt), expectC, 1e-12);
    // Cavity storage is ~10x less error-prone.
    EXPECT_NEAR(nm.idleError(WireKind::Transmon, dt)
                    / nm.idleError(WireKind::CavityMode, dt),
                10.0, 0.1);
}

TEST(NoiseModel, IdleErrorScalesLinearly)
{
    NoiseModel nm2 = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    NoiseModel nm4 = NoiseModel::atPhysicalRate(
        4e-3, HardwareParams::transmonsWithMemory());
    double dt = 500.0;
    EXPECT_NEAR(nm4.idleError(WireKind::Transmon, dt),
                2.0 * nm2.idleError(WireKind::Transmon, dt), 1e-12);
}

TEST(NoiseModel, IdleErrorCapped)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-1, HardwareParams::transmonsWithMemory());
    EXPECT_LE(nm.idleError(WireKind::Transmon, 1e9), 0.75);
}

TEST(NoiseModel, IdleErrorCapBindingIsCounted)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-1, HardwareParams::transmonsWithMemory());
    NoiseModel::resetIdleCapDiagnostics();
    EXPECT_EQ(NoiseModel::idleCapBindCount(), 0u);
    // Ordinary durations never bind the cap.
    (void)nm.idleError(WireKind::Transmon, 100.0);
    EXPECT_EQ(NoiseModel::idleCapBindCount(), 0u);
    // Every saturated evaluation is counted (the warning itself fires
    // once per run so billion-trial scans aren't spammed).
    (void)nm.idleError(WireKind::Transmon, 1e9);
    (void)nm.idleError(WireKind::CavityMode, 1e12);
    EXPECT_EQ(NoiseModel::idleCapBindCount(), 2u);
    NoiseModel::resetIdleCapDiagnostics();
    EXPECT_EQ(NoiseModel::idleCapBindCount(), 0u);
}

TEST(NoiseModel, ZeroAndNegativeDurations)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    EXPECT_EQ(nm.idleError(WireKind::Transmon, 0.0), 0.0);
    EXPECT_EQ(nm.idleError(WireKind::Transmon, -5.0), 0.0);
}

// ---------------------------------------------------------------------------
// Composite noise sources
// ---------------------------------------------------------------------------

TEST(NoiseSources, BiasedSplitPreservesBudget)
{
    BiasedPauliSource bias;
    EXPECT_FALSE(bias.enabled()); // 1:1:1 is uniform depolarizing
    bias.rZ = 2.0;
    EXPECT_TRUE(bias.enabled());

    double px, py, pz;
    bias.split(0.04, px, py, pz);
    EXPECT_NEAR(px, 0.01, 1e-15);
    EXPECT_NEAR(py, 0.01, 1e-15);
    EXPECT_NEAR(pz, 0.02, 1e-15);
    EXPECT_NEAR(px + py + pz, 0.04, 1e-15);

    // Pure dephasing limit: the whole budget lands on Z.
    bias.rX = bias.rY = 0.0;
    bias.rZ = 1.0;
    bias.split(0.04, px, py, pz);
    EXPECT_EQ(px, 0.0);
    EXPECT_EQ(py, 0.0);
    EXPECT_NEAR(pz, 0.04, 1e-15);
}

TEST(NoiseSources, ReadoutFlipAveragesAsymmetry)
{
    ReadoutFlipSource readout;
    EXPECT_FALSE(readout.enabled());
    // Both sides inherit: exactly pMeas, bit-for-bit (the uniform
    // bit-identity contract leans on this IEEE identity).
    EXPECT_EQ(readout.effectiveFlip(3e-3), 3e-3);

    readout.p0to1 = 0.02;
    readout.p1to0 = 0.0;
    EXPECT_TRUE(readout.enabled());
    EXPECT_NEAR(readout.effectiveFlip(3e-3), 0.01, 1e-15);

    // One-sided override: the other side still inherits the flat rate.
    readout.p1to0 = -1.0;
    EXPECT_NEAR(readout.effectiveFlip(4e-3), (0.02 + 4e-3) / 2.0,
                1e-15);
}

TEST(NoiseSources, IdleDephasingFollowsTphi)
{
    IdleDephasingSource deph;
    EXPECT_FALSE(deph.enabled());
    deph.tPhiTransmonNs = 200.0e3;
    EXPECT_TRUE(deph.enabled());

    double dt = 1000.0;
    double expect = 0.5 * (1.0 - std::exp(-dt / 200.0e3));
    EXPECT_NEAR(deph.dephasingError(WireKind::Transmon, dt), expect,
                1e-15);
    // Cavity Tphi is still disabled.
    EXPECT_EQ(deph.dephasingError(WireKind::CavityMode, dt), 0.0);
    EXPECT_EQ(deph.dephasingError(WireKind::Transmon, 0.0), 0.0);
}

TEST(NoiseSources, AmplitudeDampingTwirlIsAProbability)
{
    double px, py, pz;
    AmplitudeDampingSource::twirl(0.1, px, py, pz);
    EXPECT_NEAR(px, 0.025, 1e-15);
    EXPECT_NEAR(py, 0.025, 1e-15);
    double expectZ = std::pow((1.0 - std::sqrt(0.9)) / 2.0, 2.0);
    EXPECT_NEAR(pz, expectZ, 1e-15);
    // The twirled channel is trace-preserving: pI + px + py + pz = 1
    // with pI = ((1 + sqrt(1-gamma)) / 2)^2.
    double pi = std::pow((1.0 + std::sqrt(0.9)) / 2.0, 2.0);
    EXPECT_NEAR(pi + px + py + pz, 1.0, 1e-12);
}

TEST(NoiseSources, CompositeUniformityTracksEverySource)
{
    CompositeNoiseModel cn(NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory()));
    EXPECT_TRUE(cn.isUniform());

    auto expectNonUniform = [](CompositeNoiseModel m) {
        EXPECT_FALSE(m.isUniform());
    };
    { CompositeNoiseModel m = cn; m.bias.rZ = 10.0; expectNonUniform(m); }
    { CompositeNoiseModel m = cn; m.readout.p0to1 = 0.01;
      expectNonUniform(m); }
    { CompositeNoiseModel m = cn; m.dephasing.tPhiCavityNs = 1e6;
      expectNonUniform(m); }
    { CompositeNoiseModel m = cn; m.damping.gamma = 0.01;
      expectNonUniform(m); }
    { CompositeNoiseModel m = cn; m.erasure.fraction = 0.3;
      expectNonUniform(m); }

    // Re-assigning a flat model resets every source.
    CompositeNoiseModel m = cn;
    m.erasure.fraction = 0.3;
    m = NoiseModel::atPhysicalRate(
        4e-3, HardwareParams::transmonsWithMemory());
    EXPECT_TRUE(m.isUniform());
    EXPECT_DOUBLE_EQ(m.p2, 4e-3);
}

// ---------------------------------------------------------------------------
// Composite sources through the generators
// ---------------------------------------------------------------------------

GeneratorConfig
compositeConfig(double p)
{
    GeneratorConfig cfg;
    cfg.distance = 3;
    cfg.cavityDepth = 3;
    cfg.schedule = ExtractionSchedule::AllAtOnce;
    cfg.noise = NoiseModel::atPhysicalRate(
        p, HardwareParams::transmonsWithMemory());
    return cfg;
}

TEST(CompositeGenerators, UniformCompositeIsBitIdenticalToFlat)
{
    for (int embInt : {0, 1, 2}) {
        GeneratorConfig flat = compositeConfig(3e-3);
        GeneratorConfig composite = flat;
        // Equal bias ratios ARE the uniform channel, whatever their
        // absolute scale; explicit inherit markers are the defaults.
        composite.noise.bias.rX = composite.noise.bias.rY =
            composite.noise.bias.rZ = 2.0;
        composite.noise.readout.p0to1 = -1.0;
        ASSERT_TRUE(composite.noise.isUniform());

        auto emb = static_cast<EmbeddingKind>(embInt);
        GeneratedCircuit a = generateMemoryCircuit(emb, flat);
        GeneratedCircuit b = generateMemoryCircuit(emb, composite);
        // Byte-identical operation streams: same ops, same
        // probabilities, same order -- the contract that keeps seeded
        // Monte-Carlo counts and reference CSVs unchanged.
        EXPECT_EQ(a.circuit.str(), b.circuit.str())
            << "embedding " << embInt;
        EXPECT_EQ(DetectorErrorModel::build(a.circuit).channels().size(),
                  DetectorErrorModel::build(b.circuit).channels().size());
    }
}

TEST(CompositeGenerators, BiasAndErasurePreserveTotalNoiseMass)
{
    GeneratorConfig flat = compositeConfig(3e-3);
    GeneratedCircuit ref = generateBaselineMemory(flat);
    double refMass = ref.circuit.totalNoiseMass();

    GeneratorConfig biased = flat;
    biased.noise.bias.rZ = 10.0;
    EXPECT_NEAR(generateBaselineMemory(biased).circuit.totalNoiseMass(),
                refMass, refMass * 1e-9);

    GeneratorConfig erased = flat;
    erased.noise.erasure.fraction = 0.4;
    EXPECT_NEAR(generateBaselineMemory(erased).circuit.totalNoiseMass(),
                refMass, refMass * 1e-9);
}

TEST(CompositeGenerators, ErasureEmitsHeraldedOps)
{
    GeneratorConfig cfg = compositeConfig(3e-3);
    cfg.noise.erasure.fraction = 0.5;
    GeneratedCircuit heralded = generateBaselineMemory(cfg);
    size_t heraldOps = 0;
    for (const Operation& op : heralded.circuit.ops())
        if (op.code == OpCode::HERALDED_ERASE)
            ++heraldOps;
    EXPECT_GT(heraldOps, 0u);
    // The DEM exposes one erasure site per heralded op, in op order.
    DetectorErrorModel dem = DetectorErrorModel::build(heralded.circuit);
    EXPECT_EQ(dem.numErasureSites(), heraldOps);

    // Unheralded loss degrades to depolarizing: no heralds anywhere.
    cfg.noise.erasure.heralded = false;
    GeneratedCircuit silent = generateBaselineMemory(cfg);
    for (const Operation& op : silent.circuit.ops())
        EXPECT_NE(op.code, OpCode::HERALDED_ERASE);
    EXPECT_EQ(DetectorErrorModel::build(silent.circuit).numErasureSites(),
              0u);
}

TEST(CompositeGenerators, PauliChannelSamplingStatistics)
{
    // One qubit, one biased channel, one perfect measurement: the
    // recorded flip rate is px + py (X and Y components flip a Z
    // readout; Z does not).
    Circuit c(1);
    c.reset(0);
    c.pauliChannel1(0, 0.05, 0.03, 0.10);
    c.measureZ(0, 0.0);
    FrameSimulator sim(c);
    const int shots = 20000;
    Rng root(0xb1a5);
    int flips = 0;
    for (int i = 0; i < shots; ++i) {
        Rng rng = root.split(static_cast<uint64_t>(i));
        if (sim.sampleMeasurementFlips(rng).get(0))
            ++flips;
    }
    double rate = static_cast<double>(flips) / shots;
    // 4 sigma ~ 0.0077 at p = 0.08.
    EXPECT_NEAR(rate, 0.08, 0.008);
}

TEST(CompositeGenerators, HeraldedEraseSamplingStatistics)
{
    // An erased qubit is replaced by the maximally mixed state: X and
    // Y arms (p/4 each) flip a Z readout, so the flip rate is p/2.
    Circuit c(1);
    c.reset(0);
    c.heraldedErase(0, 0.2);
    c.measureZ(0, 0.0);
    FrameSimulator sim(c);
    const int shots = 20000;
    Rng root(0xe7a5e);
    int flips = 0;
    for (int i = 0; i < shots; ++i) {
        Rng rng = root.split(static_cast<uint64_t>(i));
        if (sim.sampleMeasurementFlips(rng).get(0))
            ++flips;
    }
    double rate = static_cast<double>(flips) / shots;
    // 4 sigma ~ 0.0085 at p = 0.1.
    EXPECT_NEAR(rate, 0.1, 0.009);
}

} // namespace
} // namespace vlq
