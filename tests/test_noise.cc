#include <gtest/gtest.h>

#include <cmath>

#include "noise/hardware_params.h"
#include "noise/noise_model.h"

namespace vlq {
namespace {

TEST(HardwareParams, TableOneDefaults)
{
    HardwareParams hw = HardwareParams::transmonsWithMemory();
    EXPECT_DOUBLE_EQ(hw.t1Transmon, 100.0e3); // 100 us
    EXPECT_DOUBLE_EQ(hw.t1Cavity, 1.0e6);     // 1 ms
    EXPECT_DOUBLE_EQ(hw.tGate1, 50.0);
    EXPECT_DOUBLE_EQ(hw.tGate2, 200.0);
    EXPECT_DOUBLE_EQ(hw.tGateTm, 200.0);
    EXPECT_DOUBLE_EQ(hw.tLoadStore, 150.0);
}

TEST(NoiseModel, DerivedRates)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        4e-3, HardwareParams::transmonsWithMemory());
    EXPECT_DOUBLE_EQ(nm.p2, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pTm, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pLoadStore, 4e-3);
    EXPECT_DOUBLE_EQ(nm.p1, 4e-4);
    EXPECT_DOUBLE_EQ(nm.pMeas, 4e-3);
    EXPECT_DOUBLE_EQ(nm.pReset, 0.0);
    EXPECT_DOUBLE_EQ(nm.idleScale, 2.0); // 4e-3 / 2e-3
}

TEST(NoiseModel, FixedCoherenceOption)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        8e-3, HardwareParams::transmonsWithMemory(), false);
    EXPECT_DOUBLE_EQ(nm.idleScale, 1.0);
}

TEST(NoiseModel, IdleErrorFormula)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    // lambda = 1 - exp(-dt/T1) at the reference point.
    double dt = 1000.0; // 1 us
    double expectT = 1.0 - std::exp(-dt / 100.0e3);
    double expectC = 1.0 - std::exp(-dt / 1.0e6);
    EXPECT_NEAR(nm.idleError(WireKind::Transmon, dt), expectT, 1e-12);
    EXPECT_NEAR(nm.idleError(WireKind::CavityMode, dt), expectC, 1e-12);
    // Cavity storage is ~10x less error-prone.
    EXPECT_NEAR(nm.idleError(WireKind::Transmon, dt)
                    / nm.idleError(WireKind::CavityMode, dt),
                10.0, 0.1);
}

TEST(NoiseModel, IdleErrorScalesLinearly)
{
    NoiseModel nm2 = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    NoiseModel nm4 = NoiseModel::atPhysicalRate(
        4e-3, HardwareParams::transmonsWithMemory());
    double dt = 500.0;
    EXPECT_NEAR(nm4.idleError(WireKind::Transmon, dt),
                2.0 * nm2.idleError(WireKind::Transmon, dt), 1e-12);
}

TEST(NoiseModel, IdleErrorCapped)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-1, HardwareParams::transmonsWithMemory());
    EXPECT_LE(nm.idleError(WireKind::Transmon, 1e9), 0.75);
}

TEST(NoiseModel, ZeroAndNegativeDurations)
{
    NoiseModel nm = NoiseModel::atPhysicalRate(
        2e-3, HardwareParams::transmonsWithMemory());
    EXPECT_EQ(nm.idleError(WireKind::Transmon, 0.0), 0.0);
    EXPECT_EQ(nm.idleError(WireKind::Transmon, -5.0), 0.0);
}

} // namespace
} // namespace vlq
