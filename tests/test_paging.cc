#include <gtest/gtest.h>

#include <vector>

#include "arch/device.h"
#include "core/logical_machine.h"
#include "core/paging.h"

namespace vlq {
namespace {

TEST(PagingTest, PageInPageOutRoundTripReusesSlots)
{
    RefreshScheduler sched(2, 4);

    int a = sched.addResident(0);
    int b = sched.addResident(0);
    int c = sched.addResident(1);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);

    // Page b out; the freed slot is reused by the next page-in.
    sched.removeResident(b);
    int d = sched.addResident(1);
    EXPECT_EQ(d, b);

    // A fresh resident starts with zero staleness.
    EXPECT_EQ(sched.staleness(d), 0);

    // Paging everyone out leaves the scheduler reusable.
    sched.removeResident(a);
    sched.removeResident(c);
    sched.removeResident(d);
    int e = sched.addResident(0);
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 3);
}

TEST(PagingTest, PagedOutSlotDoesNotAge)
{
    RefreshScheduler sched(1, 4);
    int a = sched.addResident(0);
    int b = sched.addResident(0);

    sched.removeResident(b);
    std::vector<bool> busy = {true};
    sched.step(busy);
    sched.step(busy);

    // Only the live resident aged; the freed slot stayed untouched and a
    // re-added resident in that slot starts fresh.
    EXPECT_EQ(sched.staleness(a), 2);
    int b2 = sched.addResident(0);
    ASSERT_EQ(b2, b);
    EXPECT_EQ(sched.staleness(b2), 0);
}

TEST(PagingTest, RefreshEvictsStalestResidentFirst)
{
    RefreshScheduler sched(1, 3);
    int a = sched.addResident(0);
    int b = sched.addResident(0);
    int c = sched.addResident(0);

    // Make staleness strictly ordered: a oldest, then b, then c.
    std::vector<bool> busy = {true};
    sched.step(busy);
    sched.touch(b);
    sched.touch(c);
    sched.step(busy);
    sched.touch(c);
    ASSERT_GT(sched.staleness(a), sched.staleness(b));
    ASSERT_GT(sched.staleness(b), sched.staleness(c));

    // A free step refreshes exactly the stalest resident (a), then ages
    // everyone.
    std::vector<bool> free = {false};
    uint64_t before = sched.refreshCount();
    sched.step(free);
    EXPECT_EQ(sched.refreshCount(), before + 1);
    EXPECT_EQ(sched.staleness(a), 1);
    EXPECT_GT(sched.staleness(b), sched.staleness(a));

    // Next free step picks b: a was just corrected, c is the freshest.
    sched.step(free);
    EXPECT_EQ(sched.staleness(b), 1);
    // a and c now tie for stalest; ties resolve to the earlier slot, so
    // a goes first and c is corrected the step after.
    sched.step(free);
    sched.step(free);
    EXPECT_EQ(sched.staleness(c), 1);
}

TEST(PagingTest, RoundRobinStalenessBoundedByOccupancy)
{
    const int depth = 5;
    RefreshScheduler sched(1, depth);
    for (int i = 0; i < depth; ++i)
        sched.addResident(0);

    std::vector<bool> free = {false};
    for (int t = 0; t < 10 * depth; ++t)
        sched.step(free);

    // Steady-state round-robin: every resident corrected within r steps.
    EXPECT_EQ(sched.idleBound(0), depth);
    EXPECT_LE(sched.maxStalenessObserved(), depth);
    for (int slot = 0; slot < depth; ++slot)
        EXPECT_LE(sched.staleness(slot), depth);
}

TEST(PagingTest, BusyStacksDelayRefresh)
{
    RefreshScheduler sched(2, 2);
    int a = sched.addResident(0);
    int b = sched.addResident(1);

    // Stack 0 busy, stack 1 free: only b's stack performs refresh, but a
    // single resident still ages by the post-refresh aging pass.
    std::vector<bool> busy = {true, false};
    uint64_t before = sched.refreshCount();
    sched.step(busy);
    EXPECT_EQ(sched.refreshCount(), before + 1);
    EXPECT_EQ(sched.staleness(a), 1);
    EXPECT_EQ(sched.staleness(b), 1);

    sched.step(busy);
    sched.step(busy);
    EXPECT_EQ(sched.staleness(a), 3);
}

TEST(PagingTest, TouchCountsAsRefresh)
{
    RefreshScheduler sched(1, 2);
    int a = sched.addResident(0);
    std::vector<bool> busy = {true};
    sched.step(busy);
    sched.step(busy);
    ASSERT_EQ(sched.staleness(a), 2);

    sched.touch(a);
    EXPECT_EQ(sched.staleness(a), 0);
}

TEST(PagingTest, CapacityEnforcedPerStack)
{
    RefreshScheduler sched(2, 2);
    sched.addResident(0);
    sched.addResident(0);
    // Stack 0 full; stack 1 still has room.
    int c = sched.addResident(1);
    EXPECT_GE(c, 0);
    EXPECT_EQ(sched.idleBound(0), 2);
    EXPECT_EQ(sched.idleBound(1), 1);
}

TEST(PagingTest, MachineIdleKeepsStalenessWithinCavityDepth)
{
    DeviceConfig cfg;
    cfg.embedding = EmbeddingKind::Compact;
    cfg.distance = 3;
    cfg.gridWidth = 2;
    cfg.gridHeight = 2;
    cfg.cavityDepth = 6;

    LogicalMachine machine(cfg);
    std::vector<LogicalQubit> qs;
    for (int i = 0; i < 8; ++i)
        qs.push_back(machine.alloc());

    machine.idle(50);
    EXPECT_LE(machine.maxStaleness(), cfg.cavityDepth);
    EXPECT_GT(machine.refresh().refreshCount(), 0u);
}

} // namespace
} // namespace vlq
