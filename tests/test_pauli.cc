#include <gtest/gtest.h>

#include "pauli/bitvec.h"
#include "pauli/pauli.h"
#include "pauli/pauli_string.h"
#include "util/rng.h"

namespace vlq {
namespace {

TEST(Pauli, Components)
{
    EXPECT_FALSE(pauliX(Pauli::I));
    EXPECT_FALSE(pauliZ(Pauli::I));
    EXPECT_TRUE(pauliX(Pauli::X));
    EXPECT_FALSE(pauliZ(Pauli::X));
    EXPECT_FALSE(pauliX(Pauli::Z));
    EXPECT_TRUE(pauliZ(Pauli::Z));
    EXPECT_TRUE(pauliX(Pauli::Y));
    EXPECT_TRUE(pauliZ(Pauli::Y));
}

TEST(Pauli, MakeRoundTrip)
{
    for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
        EXPECT_EQ(makePauli(pauliX(p), pauliZ(p)), p);
}

TEST(Pauli, ProductGroupStructure)
{
    // Every element squares to identity (mod phase).
    for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
        EXPECT_EQ(pauliProduct(p, p), Pauli::I);
    EXPECT_EQ(pauliProduct(Pauli::X, Pauli::Z), Pauli::Y);
    EXPECT_EQ(pauliProduct(Pauli::X, Pauli::Y), Pauli::Z);
    EXPECT_EQ(pauliProduct(Pauli::Z, Pauli::Y), Pauli::X);
}

TEST(Pauli, ProductPhases)
{
    // XZ = -iY, ZX = +iY, XY = iZ, YX = -iZ, YZ = iX, ZY = -iX.
    EXPECT_EQ(pauliProductPhase(Pauli::X, Pauli::Z), 3);
    EXPECT_EQ(pauliProductPhase(Pauli::Z, Pauli::X), 1);
    EXPECT_EQ(pauliProductPhase(Pauli::X, Pauli::Y), 1);
    EXPECT_EQ(pauliProductPhase(Pauli::Y, Pauli::X), 3);
    EXPECT_EQ(pauliProductPhase(Pauli::Y, Pauli::Z), 1);
    EXPECT_EQ(pauliProductPhase(Pauli::Z, Pauli::Y), 3);
    EXPECT_EQ(pauliProductPhase(Pauli::I, Pauli::X), 0);
}

TEST(Pauli, Commutation)
{
    EXPECT_TRUE(pauliCommutes(Pauli::I, Pauli::X));
    EXPECT_TRUE(pauliCommutes(Pauli::X, Pauli::X));
    EXPECT_FALSE(pauliCommutes(Pauli::X, Pauli::Z));
    EXPECT_FALSE(pauliCommutes(Pauli::X, Pauli::Y));
    EXPECT_FALSE(pauliCommutes(Pauli::Y, Pauli::Z));
}

TEST(Pauli, Names)
{
    EXPECT_EQ(pauliName(Pauli::X), "X");
    EXPECT_EQ(pauliFromName('y'), Pauli::Y);
    EXPECT_EQ(pauliFromName('I'), Pauli::I);
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    v.set(0, true);
    v.set(129, true);
    v.flip(64);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(64);
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, XorAndParity)
{
    BitVec a(100);
    BitVec b(100);
    a.set(3, true);
    a.set(70, true);
    b.set(70, true);
    b.set(99, true);
    a ^= b;
    EXPECT_TRUE(a.get(3));
    EXPECT_FALSE(a.get(70));
    EXPECT_TRUE(a.get(99));
    EXPECT_TRUE(a.parity() == false); // two bits set
}

TEST(BitVec, OnesIndices)
{
    BitVec v(200);
    v.set(5, true);
    v.set(64, true);
    v.set(199, true);
    auto ones = v.onesIndices();
    ASSERT_EQ(ones.size(), 3u);
    EXPECT_EQ(ones[0], 5u);
    EXPECT_EQ(ones[1], 64u);
    EXPECT_EQ(ones[2], 199u);
}

TEST(BitVec, AndParity)
{
    BitVec a(64);
    BitVec b(64);
    a.set(1, true);
    a.set(2, true);
    b.set(2, true);
    b.set(3, true);
    EXPECT_TRUE(a.andParity(b)); // overlap = {2}, odd
    b.set(1, true);
    EXPECT_FALSE(a.andParity(b)); // overlap = {1,2}, even
}

TEST(BitVec, ResizePreservesAndZeroes)
{
    BitVec v(10);
    v.set(9, true);
    v.resize(100);
    EXPECT_TRUE(v.get(9));
    EXPECT_FALSE(v.get(50));
    v.resize(5);
    v.resize(100);
    EXPECT_FALSE(v.get(9)); // truncated away
}

TEST(PauliString, FromStringRoundTrip)
{
    PauliString p = PauliString::fromString("XIZY");
    EXPECT_EQ(p.size(), 4u);
    EXPECT_EQ(p.get(0), Pauli::X);
    EXPECT_EQ(p.get(1), Pauli::I);
    EXPECT_EQ(p.get(2), Pauli::Z);
    EXPECT_EQ(p.get(3), Pauli::Y);
    EXPECT_EQ(p.str(), "XIZY");
}

TEST(PauliString, WeightAndIdentity)
{
    PauliString p = PauliString::fromString("IXIYZ");
    EXPECT_EQ(p.weight(), 3u);
    EXPECT_FALSE(p.isIdentity());
    PauliString id(5);
    EXPECT_TRUE(id.isIdentity());
}

TEST(PauliString, MultiplicationMatchesSitewise)
{
    PauliString a = PauliString::fromString("XXYZI");
    PauliString b = PauliString::fromString("XZIYY");
    PauliString c = a;
    c *= b;
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(c.get(i), pauliProduct(a.get(i), b.get(i)));
}

TEST(PauliString, CommutationExamples)
{
    // Single anticommuting site -> anticommute.
    EXPECT_FALSE(PauliString::fromString("XI").commutesWith(
        PauliString::fromString("ZI")));
    // Two anticommuting sites -> commute.
    EXPECT_TRUE(PauliString::fromString("XX").commutesWith(
        PauliString::fromString("ZZ")));
    // Identity commutes with everything.
    EXPECT_TRUE(PauliString(4).commutesWith(
        PauliString::fromString("XYZX")));
}

class PauliStringProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PauliStringProperty, CommutationMatchesSiteCount)
{
    // commutesWith must equal the parity of anticommuting sites.
    Rng rng(static_cast<uint64_t>(GetParam()));
    const size_t n = 20;
    for (int trial = 0; trial < 50; ++trial) {
        PauliString a(n);
        PauliString b(n);
        for (size_t i = 0; i < n; ++i) {
            a.set(i, static_cast<Pauli>(rng.nextBelow(4)));
            b.set(i, static_cast<Pauli>(rng.nextBelow(4)));
        }
        int anti = 0;
        for (size_t i = 0; i < n; ++i)
            if (!pauliCommutes(a.get(i), b.get(i)))
                ++anti;
        EXPECT_EQ(a.commutesWith(b), anti % 2 == 0);
    }
}

TEST_P(PauliStringProperty, MultiplicationIsAssociative)
{
    Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
    const size_t n = 16;
    for (int trial = 0; trial < 30; ++trial) {
        PauliString a(n);
        PauliString b(n);
        PauliString c(n);
        for (size_t i = 0; i < n; ++i) {
            a.set(i, static_cast<Pauli>(rng.nextBelow(4)));
            b.set(i, static_cast<Pauli>(rng.nextBelow(4)));
            c.set(i, static_cast<Pauli>(rng.nextBelow(4)));
        }
        PauliString ab = a;
        ab *= b;
        PauliString abc1 = ab;
        abc1 *= c;
        PauliString bc = b;
        bc *= c;
        PauliString abc2 = a;
        abc2 *= bc;
        EXPECT_EQ(abc1, abc2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PauliStringProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace vlq
