#ifndef VLQ_SURFACE_RENDER_H
#define VLQ_SURFACE_RENDER_H

#include <string>

#include "surface/layout.h"

namespace vlq {

/**
 * ASCII renderers for surface-code layouts (the textual counterpart of
 * the paper's Figs. 2 and 7). Data qubits are 'o', Z checks 'Z',
 * X checks 'X'; in the Compact view, merged checks are lowercase at
 * their host data transmon and unmerged boundary ancillas are '*'.
 */
class LayoutRenderer
{
  public:
    /** Plain rotated layout: data and check positions on the grid. */
    static std::string render(const SurfaceLayout& layout);

    /**
     * Compact embedding view: each merged ancilla drawn at the data
     * transmon that hosts it (z/x), dedicated boundary ancillas as '*'.
     */
    static std::string renderCompact(const SurfaceLayout& layout);

    /**
     * Extraction-order view for one plaquette basis: each data qubit
     * labeled with the step (0-3) at which the basis' checks touch it,
     * from the given corner order.
     */
    static std::string renderOrder(const SurfaceLayout& layout,
                                   CheckBasis basis);
};

} // namespace vlq

#endif // VLQ_SURFACE_RENDER_H
