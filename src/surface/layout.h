#ifndef VLQ_SURFACE_LAYOUT_H
#define VLQ_SURFACE_LAYOUT_H

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "pauli/pauli_string.h"

namespace vlq {

/**
 * Geometric corner slots of a plaquette, in grid coordinates where y
 * grows downward. Boundary half-plaquettes have two of these missing.
 */
enum PlaquetteCorner { NW = 0, NE = 1, SW = 2, SE = 3 };

/**
 * One parity check of the rotated surface code: its basis, its center
 * coordinates (even, even), its ancilla, and its data qubits by corner.
 */
struct Plaquette
{
    CheckBasis basis = CheckBasis::Z;
    int cx = 0;
    int cy = 0;

    /** Data qubit index at each geometric corner, or -1 if absent. */
    std::array<int32_t, 4> corner{-1, -1, -1, -1};

    /** Data indices present, in extraction order (see cnotOrder). */
    std::vector<uint32_t> data;

    /** Number of data qubits (2 for boundary half-checks, else 4). */
    size_t weight() const { return data.size(); }
};

/**
 * Rotated surface code on a rectangular patch of dx x dz data qubits
 * (dx odd columns, dz odd rows) over a (2dx+1) x (2dz+1) coordinate
 * grid: dx*dz data qubits at odd coordinates, dx*dz - 1 checks centered
 * at even coordinates. X half-checks live on the top/bottom boundaries
 * and Z half-checks on the left/right boundaries, so the logical Z
 * operator is a horizontal row of Z's (weight dx) and the logical X a
 * vertical column of X's (weight dz).
 *
 * Distances: a memory-X experiment fails on a logical Z error, so its
 * code distance is dx; a memory-Z experiment fails on a logical X
 * error, so its distance is dz. The square dx == dz == d patch is the
 * paper's surface code; rectangular patches trade protection of one
 * basis for hardware (useful under biased noise, where the dominant
 * Pauli deserves the larger distance).
 *
 * The extraction CNOT order is the standard two-pattern schedule
 * (Z checks: NW, SW, NE, SE; X checks: NW, NE, SW, SE) which keeps
 * simultaneously-extracted neighboring checks commuting; this is
 * verified by the tableau-determinism tests.
 */
class SurfaceLayout
{
  public:
    /** Build the square layout for an odd code distance d >= 3. */
    explicit SurfaceLayout(int distance);

    /** Build a rectangular dx x dz patch (both odd, >= 3). */
    SurfaceLayout(int dx, int dz);

    /** Code distance: the smaller of the two logical weights. */
    int distance() const { return dx_ < dz_ ? dx_ : dz_; }

    /** Data columns == weight of logical Z == memory-X distance. */
    int width() const { return dx_; }

    /** Data rows == weight of logical X == memory-Z distance. */
    int height() const { return dz_; }

    int numData() const { return dx_ * dz_; }
    int numChecks() const { return dx_ * dz_ - 1; }

    const std::vector<Plaquette>& plaquettes() const { return plaquettes_; }

    /** Checks of one basis, as indices into plaquettes(). */
    const std::vector<uint32_t>& checksOf(CheckBasis basis) const;

    /** Data index for grid cell (ix, iy), ix in [0, dx), iy in [0, dz). */
    uint32_t dataIndex(int ix, int iy) const;

    /** Grid cell of a data index. */
    std::pair<int, int> dataCell(uint32_t index) const;

    /** Odd grid coordinates (x, y) of a data index. */
    std::pair<int, int> dataPos(uint32_t index) const;

    /**
     * Extraction order of the plaquette's data: the geometric corner
     * visited at step s (0..3), or -1 when that corner is absent
     * (boundary half-checks simply skip the step).
     */
    int32_t dataAtStep(const Plaquette& p, int step) const;

    /** Data indices of the logical Z operator (row iy = 0). */
    std::vector<uint32_t> logicalZSupport() const;

    /** Data indices of the logical X operator (column ix = 0). */
    std::vector<uint32_t> logicalXSupport() const;

    /** Logical Z as a Pauli string over the dx*dz data qubits. */
    PauliString logicalZ() const;

    /** Logical X as a Pauli string over the dx*dz data qubits. */
    PauliString logicalX() const;

    /** Stabilizer generator of plaquette i over the data qubits. */
    PauliString stabilizer(uint32_t plaquette) const;

  private:
    int dx_;
    int dz_;
    std::vector<Plaquette> plaquettes_;
    std::vector<uint32_t> zChecks_;
    std::vector<uint32_t> xChecks_;
};

} // namespace vlq

#endif // VLQ_SURFACE_LAYOUT_H
