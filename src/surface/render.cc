#include "surface/render.h"

#include <vector>

namespace vlq {

namespace {

/** Character canvas over the (2dx+1) x (2dz+1) coordinate grid. */
class Canvas
{
  public:
    Canvas(int spanX, int spanY)
        : rows_(static_cast<size_t>(spanY + 1),
                std::string(static_cast<size_t>(spanX + 1), ' '))
    {
    }

    void
    put(int x, int y, char c)
    {
        rows_[static_cast<size_t>(y)][static_cast<size_t>(x)] = c;
    }

    std::string
    str() const
    {
        std::string out;
        for (const auto& row : rows_) {
            out += row;
            out += '\n';
        }
        return out;
    }

  private:
    std::vector<std::string> rows_;
};

} // namespace

std::string
LayoutRenderer::render(const SurfaceLayout& layout)
{
    Canvas canvas(2 * layout.width(), 2 * layout.height());
    for (uint32_t q = 0; q < static_cast<uint32_t>(layout.numData());
         ++q) {
        auto [x, y] = layout.dataPos(q);
        canvas.put(x, y, 'o');
    }
    for (const auto& p : layout.plaquettes())
        canvas.put(p.cx, p.cy, p.basis == CheckBasis::Z ? 'Z' : 'X');
    return canvas.str();
}

std::string
LayoutRenderer::renderCompact(const SurfaceLayout& layout)
{
    Canvas canvas(2 * layout.width(), 2 * layout.height());
    for (uint32_t q = 0; q < static_cast<uint32_t>(layout.numData());
         ++q) {
        auto [x, y] = layout.dataPos(q);
        canvas.put(x, y, 'o');
    }
    for (const auto& p : layout.plaquettes()) {
        int corner = (p.basis == CheckBasis::Z) ? NE : SW;
        int32_t merged = p.corner[static_cast<size_t>(corner)];
        if (merged >= 0) {
            auto [x, y] =
                layout.dataPos(static_cast<uint32_t>(merged));
            canvas.put(x, y, p.basis == CheckBasis::Z ? 'z' : 'x');
        } else {
            canvas.put(p.cx, p.cy, '*');
        }
    }
    return canvas.str();
}

std::string
LayoutRenderer::renderOrder(const SurfaceLayout& layout, CheckBasis basis)
{
    Canvas canvas(2 * layout.width(), 2 * layout.height());
    for (const auto& p : layout.plaquettes()) {
        if (p.basis != basis)
            continue;
        canvas.put(p.cx, p.cy, basis == CheckBasis::Z ? 'Z' : 'X');
        for (int step = 0; step < 4; ++step) {
            int32_t q = layout.dataAtStep(p, step);
            if (q < 0)
                continue;
            auto [x, y] = layout.dataPos(static_cast<uint32_t>(q));
            canvas.put(x, y, static_cast<char>('0' + step));
        }
    }
    return canvas.str();
}

} // namespace vlq
