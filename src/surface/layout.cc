#include "surface/layout.h"

#include "util/logging.h"

namespace vlq {

SurfaceLayout::SurfaceLayout(int distance)
    : SurfaceLayout(distance, distance)
{
}

SurfaceLayout::SurfaceLayout(int dx, int dz)
    : dx_(dx), dz_(dz)
{
    VLQ_ASSERT(dx >= 3 && dx % 2 == 1 && dz >= 3 && dz % 2 == 1,
               "patch dimensions must be odd and >= 3");

    const int spanX = 2 * dx_;
    const int spanY = 2 * dz_;
    auto dataAt = [&](int x, int y) -> int32_t {
        // Data sit at odd coordinates (2i+1, 2j+1).
        if (x < 1 || x > spanX - 1 || y < 1 || y > spanY - 1)
            return -1;
        if (x % 2 == 0 || y % 2 == 0)
            return -1;
        int ix = (x - 1) / 2;
        int iy = (y - 1) / 2;
        return static_cast<int32_t>(dataIndex(ix, iy));
    };

    for (int cy = 0; cy <= spanY; cy += 2) {
        for (int cx = 0; cx <= spanX; cx += 2) {
            // Checkerboard type: X when (cx+cy)/2 is even.
            CheckBasis basis = (((cx + cy) / 2) % 2 == 0) ? CheckBasis::X
                                                          : CheckBasis::Z;
            bool topBottom = (cy == 0 || cy == spanY);
            bool leftRight = (cx == 0 || cx == spanX);
            if (topBottom && leftRight)
                continue; // corners host nothing
            // X half-checks only on top/bottom, Z only on left/right.
            if (topBottom && basis != CheckBasis::X)
                continue;
            if (leftRight && basis != CheckBasis::Z)
                continue;

            Plaquette p;
            p.basis = basis;
            p.cx = cx;
            p.cy = cy;
            p.corner[NW] = dataAt(cx - 1, cy - 1);
            p.corner[NE] = dataAt(cx + 1, cy - 1);
            p.corner[SW] = dataAt(cx - 1, cy + 1);
            p.corner[SE] = dataAt(cx + 1, cy + 1);

            int present = 0;
            for (int c = 0; c < 4; ++c)
                if (p.corner[c] >= 0)
                    ++present;
            if (present < 2)
                continue;
            VLQ_ASSERT(present == 2 || present == 4,
                       "plaquette with odd corner count");

            for (int step = 0; step < 4; ++step) {
                int32_t q = dataAtStep(p, step);
                if (q >= 0)
                    p.data.push_back(static_cast<uint32_t>(q));
            }

            uint32_t index = static_cast<uint32_t>(plaquettes_.size());
            if (basis == CheckBasis::Z)
                zChecks_.push_back(index);
            else
                xChecks_.push_back(index);
            plaquettes_.push_back(std::move(p));
        }
    }

    VLQ_ASSERT(static_cast<int>(plaquettes_.size()) == numChecks(),
               "wrong number of checks");
}

const std::vector<uint32_t>&
SurfaceLayout::checksOf(CheckBasis basis) const
{
    return basis == CheckBasis::Z ? zChecks_ : xChecks_;
}

uint32_t
SurfaceLayout::dataIndex(int ix, int iy) const
{
    VLQ_ASSERT(ix >= 0 && ix < dx_ && iy >= 0 && iy < dz_,
               "data cell out of range");
    return static_cast<uint32_t>(iy * dx_ + ix);
}

std::pair<int, int>
SurfaceLayout::dataCell(uint32_t index) const
{
    VLQ_ASSERT(index < static_cast<uint32_t>(numData()),
               "data index out of range");
    return {static_cast<int>(index) % dx_, static_cast<int>(index) / dx_};
}

std::pair<int, int>
SurfaceLayout::dataPos(uint32_t index) const
{
    auto [ix, iy] = dataCell(index);
    return {2 * ix + 1, 2 * iy + 1};
}

int32_t
SurfaceLayout::dataAtStep(const Plaquette& p, int step) const
{
    // Two-pattern schedule: vertical-first for Z checks, horizontal-first
    // for X checks. Shared data pairs between adjacent opposite-basis
    // checks are visited in the same relative order, which keeps the
    // interleaved extraction circuits commuting.
    static const int zOrder[4] = {NW, SW, NE, SE};
    static const int xOrder[4] = {NW, NE, SW, SE};
    int corner = (p.basis == CheckBasis::Z) ? zOrder[step] : xOrder[step];
    return p.corner[corner];
}

std::vector<uint32_t>
SurfaceLayout::logicalZSupport() const
{
    std::vector<uint32_t> support;
    for (int ix = 0; ix < dx_; ++ix)
        support.push_back(dataIndex(ix, 0));
    return support;
}

std::vector<uint32_t>
SurfaceLayout::logicalXSupport() const
{
    std::vector<uint32_t> support;
    for (int iy = 0; iy < dz_; ++iy)
        support.push_back(dataIndex(0, iy));
    return support;
}

PauliString
SurfaceLayout::logicalZ() const
{
    PauliString p(static_cast<size_t>(numData()));
    for (uint32_t q : logicalZSupport())
        p.set(q, Pauli::Z);
    return p;
}

PauliString
SurfaceLayout::logicalX() const
{
    PauliString p(static_cast<size_t>(numData()));
    for (uint32_t q : logicalXSupport())
        p.set(q, Pauli::X);
    return p;
}

PauliString
SurfaceLayout::stabilizer(uint32_t plaquette) const
{
    VLQ_ASSERT(plaquette < plaquettes_.size(), "plaquette out of range");
    const Plaquette& pl = plaquettes_[plaquette];
    PauliString p(static_cast<size_t>(numData()));
    Pauli pauli = (pl.basis == CheckBasis::Z) ? Pauli::Z : Pauli::X;
    for (uint32_t q : pl.data)
        p.set(q, pauli);
    return p;
}

} // namespace vlq
