#ifndef VLQ_SERVICE_JOB_SERVICE_H
#define VLQ_SERVICE_JOB_SERVICE_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "service/events.h"
#include "service/job.h"
#include "service/scheduler.h"

namespace vlq {
namespace service {

/** Knobs of one server session. */
struct JobServiceConfig
{
    /** Directory for per-job checkpoint files (job-<id>.ckpt). Must
     *  exist; the same directory across restarts is what makes jobs
     *  resumable. */
    std::string stateDir = ".";

    /** Committed trials per scheduling slice before an equal-priority
     *  waiter gets a turn (0 = the 65536 default). */
    uint64_t quantumTrials = 0;

    /** Engine threads per running job (0 = hardware concurrency). */
    unsigned threads = 0;

    /** Emit a `progress` event at most every this many committed
     *  trials per point (0 = the 16384 default; the final commit of a
     *  point always emits one). */
    uint64_t progressEveryTrials = 0;

    /** Committed trials between periodic checkpoint saves
     *  (McOptions::checkpointEveryTrials; 0 = the engine default). */
    uint64_t checkpointEveryTrials = 0;
};

/**
 * The scan job service: multiplexes many interactive threshold scans
 * over one warm engine, one process-wide ThreadPool and one event
 * stream, instead of one process per CLI run.
 *
 * Lifecycle of a job (full wire protocol: docs/job-protocol.md):
 * submit -> validateJob (reject with `error` before any engine work)
 * -> `queued` -> scheduler pops by (priority, arrival) -> `started`
 * or `resumed` -> the job's grid points run through
 * estimateLogicalErrorBasis with the job's own checkpoint file ->
 * `progress`/`point_done` stream -> either `done`, or `preempted` at
 * a batch boundary (quantum expiry, higher-priority arrival, or
 * shutdown) with the frontier persisted, and the job requeued.
 *
 * Determinism contract: a job's checkpoint is stamped with the same
 * thresholdScanFingerprint a solo threshold_scan run computes, its
 * points run in the same order with per-trial RNG streams, and
 * preemption suspends only at committed-batch boundaries -- so the
 * final per-point counts (and the checkpoint file bytes) are
 * identical to a solo run with the same knobs, no matter how often
 * the job was preempted, interleaved, or the server killed.
 *
 * Threading: runUntilDrained executes jobs sequentially on the
 * caller's thread (each job internally fans out over the engine
 * ThreadPool -- the pool, not the job count, is the parallelism);
 * submit/submitLine/requestShutdown are safe to call concurrently
 * from other threads and take effect at the next batch boundary.
 */
class JobService
{
  public:
    JobService(const JobServiceConfig& config, EventSink& events);

    /**
     * Validate and enqueue one job. Emits `queued` on success or a
     * terminal `error` (code bad_request) on rejection.
     * @return true when the job was accepted.
     */
    bool submit(const ScanJob& job);

    /**
     * Parse one request line (submit/cancel/shutdown/comment) and act
     * on it.
     * @return false only for lines that were rejected (parse or
     *         validation failure, each emitting an `error` event).
     */
    bool submitLine(const std::string& line);

    /**
     * Cancel a job submitted in this session. A queued job is removed
     * immediately; the running job is flagged and suspends at its
     * next batch boundary. Either way the job's last event is the
     * terminal `cancelled`, its checkpoint survives (resubmit the id
     * in a later session to resume), and its id stays reserved for
     * this session. Unknown or already-terminal ids emit a
     * `bad_request` error event.
     * @return true when a queued or running job was cancelled.
     */
    bool cancel(const std::string& jobId);

    /**
     * Rotate a still-queued job of this session behind its
     * equal-priority peers (fresh arrival stamp; `requeue` request
     * verb). Emits a non-terminal `requeued` event on success. The
     * running job has no queue position -- requeueing it (or an
     * unknown/terminal id) emits a `bad_request` error event.
     * @return true when a queued job was rotated.
     */
    bool requeue(const std::string& jobId);

    /** Stop after the running job's next batch boundary; queued jobs
     *  stay suspended in their checkpoints. */
    void requestShutdown();
    bool shutdownRequested() const { return scheduler_.stopped(); }

    /**
     * Run queued jobs until the queue drains or shutdown is
     * requested.
     * @return the number of jobs that ended in a terminal `error`.
     */
    int runUntilDrained();

    size_t queueDepth() const { return scheduler_.size(); }

    /** The checkpoint path of a job id under this service's stateDir. */
    std::string checkpointPath(const std::string& jobId) const;

  private:
    enum class Outcome : uint8_t { Done, Preempted, Cancelled, Error };

    Outcome runJob(const ScanJob& job);

    /** Per-session memory of a job between scheduling slices. */
    struct RunState
    {
        bool startedThisSession = false;
        std::set<int> announcedPoints; // point_done emitted this session
    };

    const JobServiceConfig config_;
    EventSink& events_;
    Scheduler scheduler_;
    // Guards knownIds_ and runningId_ (submit/cancel arrive from any
    // thread while runUntilDrained owns the run loop).
    std::mutex submitMutex_;
    std::set<std::string> knownIds_;
    std::string runningId_;
    std::map<std::string, RunState> runStates_;
    int failedJobs_ = 0;
};

} // namespace service
} // namespace vlq

#endif // VLQ_SERVICE_JOB_SERVICE_H
