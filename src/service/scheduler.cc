#include "service/scheduler.h"

namespace vlq {
namespace service {

Scheduler::Scheduler(uint64_t quantumTrials)
    : quantumTrials_(quantumTrials > 0 ? quantumTrials : uint64_t{65536})
{
}

void
Scheduler::push(const ScanJob& job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.insert(Entry{job, nextArrival_++});
}

std::optional<ScanJob>
Scheduler::pop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return std::nullopt;
    auto it = queue_.begin();
    ScanJob job = it->job;
    queue_.erase(it);
    return job;
}

bool
Scheduler::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.empty();
}

size_t
Scheduler::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

int
Scheduler::topPriority() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return std::numeric_limits<int>::min();
    return queue_.begin()->job.priority;
}

void
Scheduler::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
}

bool
Scheduler::stopped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopped_;
}

bool
Scheduler::cancelQueued(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->job.id == id) {
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

bool
Scheduler::requeue(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->job.id == id) {
            Entry entry{it->job, nextArrival_++};
            queue_.erase(it);
            queue_.insert(std::move(entry));
            return true;
        }
    }
    return false;
}

void
Scheduler::flagCancel(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cancelFlags_.insert(id);
}

bool
Scheduler::takeCancelFlag(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelFlags_.erase(id) > 0;
}

std::optional<std::string>
Scheduler::shouldPreempt(const std::string& jobId, int priority,
                         uint64_t sliceTrials) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Cancellation outranks shutdown: both suspend at this boundary,
    // but a cancelled job must end with its terminal event, not hang
    // suspended as a resumable checkpoint.
    if (cancelFlags_.count(jobId))
        return std::string("cancelled");
    if (stopped_)
        return std::string("shutdown");
    if (queue_.empty())
        return std::nullopt;
    if (queue_.begin()->job.priority > priority)
        return std::string("priority");
    // Quantum expiry only yields to an equal-priority peer: yielding
    // to a lower-priority waiter would cost a checkpoint save just for
    // the scheduler to pick this same job straight back up.
    if (queue_.begin()->job.priority == priority
        && sliceTrials >= quantumTrials_)
        return std::string("quantum");
    return std::nullopt;
}

} // namespace service
} // namespace vlq
