#include "service/job_service.h"

#include <optional>
#include <vector>

#include "mc/checkpoint.h"
#include "obs/metrics.h"
#include "service/job_validation.h"

namespace vlq {
namespace service {

namespace {

/** One (distance, p, basis) grid point, in the fixed scan order. */
struct GridPoint
{
    int index = 0;
    int distance = 0;
    double physicalP = 0.0;
    CheckBasis basis = CheckBasis::Z;
};

/**
 * Enumerate the job's grid in exactly the order scanThreshold and
 * estimateLogicalError visit it (d-major, then p, then basis Z before
 * X). The fixed order is load-bearing twice: the job-level cumulative
 * trial count stays monotone across preempt/resume, and a resumed
 * server replays points in the same order the killed one ran them.
 */
std::vector<GridPoint>
gridPoints(const ThresholdScanConfig& cfg)
{
    std::vector<GridPoint> points;
    int index = 0;
    for (int d : cfg.distances) {
        for (double p : cfg.physicalPs) {
            for (CheckBasis basis : {CheckBasis::Z, CheckBasis::X})
                points.push_back(GridPoint{index++, d, p, basis});
        }
    }
    return points;
}

/** The GeneratorConfig scanThreshold builds for one grid point. */
GeneratorConfig
pointConfig(const EvaluationSetup& setup, const ThresholdScanConfig& cfg,
            const GridPoint& point)
{
    GeneratorConfig gc;
    gc.distance = point.distance;
    gc.cavityDepth = cfg.cavityDepth;
    gc.schedule = setup.schedule;
    gc.gapModel = cfg.gapModel;
    gc.noise = NoiseModel::atPhysicalRate(point.physicalP, cfg.hardware,
                                          cfg.scaleCoherence);
    gc.memoryBasis = point.basis;
    return gc;
}

char
basisChar(CheckBasis basis)
{
    return basis == CheckBasis::X ? 'X' : 'Z';
}

} // namespace

JobService::JobService(const JobServiceConfig& config, EventSink& events)
    : config_(config), events_(events),
      scheduler_(config.quantumTrials)
{
}

std::string
JobService::checkpointPath(const std::string& jobId) const
{
    return config_.stateDir + "/job-" + jobId + ".ckpt";
}

bool
JobService::submit(const ScanJob& job)
{
    std::string problems = validationSummary(job);
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        if (problems.empty() && knownIds_.count(job.id))
            problems = "duplicate job id '" + job.id
                + "': already submitted in this session";
        if (problems.empty())
            knownIds_.insert(job.id);
    }
    if (!problems.empty()) {
        events_.error(job.id, kErrBadRequest, problems);
        if (obs::metricsEnabled())
            obs::Counter::get("service.jobs_rejected").add(1);
        return false;
    }
    scheduler_.push(job);
    events_.queued(job, scheduler_.size());
    if (obs::metricsEnabled()) {
        obs::Counter::get("service.jobs_submitted").add(1);
        obs::Gauge::get("service.queue_depth")
            .set(static_cast<int64_t>(scheduler_.size()));
    }
    return true;
}

bool
JobService::submitLine(const std::string& line)
{
    std::string problem;
    std::optional<Request> request = parseRequestLine(line, &problem);
    if (!request) {
        if (problem.empty())
            return true; // blank line or comment
        // The id is unknown when parsing failed; quote the offending
        // line instead so the client can still find the request.
        events_.error("", kErrBadRequest,
                      problem + " (in request: '" + line + "')");
        if (obs::metricsEnabled())
            obs::Counter::get("service.jobs_rejected").add(1);
        return false;
    }
    if (request->kind == Request::Kind::Shutdown) {
        requestShutdown();
        return true;
    }
    if (request->kind == Request::Kind::Cancel)
        return cancel(request->targetId);
    if (request->kind == Request::Kind::Requeue)
        return requeue(request->targetId);
    return submit(request->job);
}

bool
JobService::cancel(const std::string& jobId)
{
    bool running = false;
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        if (!knownIds_.count(jobId)) {
            events_.error(jobId, kErrBadRequest,
                          "cancel of unknown job id '" + jobId
                          + "': not submitted in this session");
            if (obs::metricsEnabled())
                obs::Counter::get("service.jobs_rejected").add(1);
            return false;
        }
        // Flag under the same lock that runUntilDrained uses to set
        // runningId_, so the running job cannot slip to terminal
        // between the check and the flag.
        if (runningId_ == jobId) {
            scheduler_.flagCancel(jobId);
            running = true;
        }
    }
    if (running)
        return true; // the terminal event is emitted at the boundary
    if (scheduler_.cancelQueued(jobId)) {
        events_.cancelled(jobId, "queued");
        if (obs::metricsEnabled()) {
            obs::Counter::get("service.jobs_cancelled").add(1);
            obs::Gauge::get("service.queue_depth")
                .set(static_cast<int64_t>(scheduler_.size()));
        }
        return true;
    }
    events_.error(jobId, kErrBadRequest,
                  "cancel of job '" + jobId
                  + "': not queued or running (already finished?)");
    if (obs::metricsEnabled())
        obs::Counter::get("service.jobs_rejected").add(1);
    return false;
}

bool
JobService::requeue(const std::string& jobId)
{
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        if (!knownIds_.count(jobId)) {
            events_.error(jobId, kErrBadRequest,
                          "requeue of unknown job id '" + jobId
                          + "': not submitted in this session");
            if (obs::metricsEnabled())
                obs::Counter::get("service.jobs_rejected").add(1);
            return false;
        }
    }
    // The scheduler holds the only queue-position state; a running or
    // terminal id simply is not in the queue. (A running job's arrival
    // is re-stamped anyway when it is preempted and requeued.)
    if (scheduler_.requeue(jobId)) {
        events_.requeued(jobId, scheduler_.size());
        if (obs::metricsEnabled())
            obs::Counter::get("service.jobs_requeued").add(1);
        return true;
    }
    events_.error(jobId, kErrBadRequest,
                  "requeue of job '" + jobId
                  + "': not waiting in the queue (running or already "
                    "finished?)");
    if (obs::metricsEnabled())
        obs::Counter::get("service.jobs_rejected").add(1);
    return false;
}

void
JobService::requestShutdown()
{
    scheduler_.stop();
}

int
JobService::runUntilDrained()
{
    while (!scheduler_.stopped()) {
        std::optional<ScanJob> job = scheduler_.pop();
        if (!job)
            break;
        if (obs::metricsEnabled())
            obs::Gauge::get("service.queue_depth")
                .set(static_cast<int64_t>(scheduler_.size()));
        {
            std::lock_guard<std::mutex> lock(submitMutex_);
            runningId_ = job->id;
        }
        Outcome outcome = runJob(*job);
        {
            std::lock_guard<std::mutex> lock(submitMutex_);
            runningId_.clear();
        }
        // A cancel that raced the job's natural completion lost: the
        // job is terminal with `done`, so drop the stale flag.
        if (outcome != Outcome::Cancelled)
            scheduler_.takeCancelFlag(job->id);
        if (outcome == Outcome::Preempted) {
            if (scheduler_.stopped())
                break; // suspended in its checkpoint; not requeued
            scheduler_.push(*job);
        } else if (outcome == Outcome::Cancelled) {
            if (obs::metricsEnabled())
                obs::Counter::get("service.jobs_cancelled").add(1);
        } else if (outcome == Outcome::Error) {
            ++failedJobs_;
            if (obs::metricsEnabled())
                obs::Counter::get("service.jobs_failed").add(1);
        } else if (obs::metricsEnabled()) {
            obs::Counter::get("service.jobs_done").add(1);
        }
    }
    return failedJobs_;
}

JobService::Outcome
JobService::runJob(const ScanJob& job)
{
    const EvaluationSetup setup = jobSetup(job);
    ThresholdScanConfig cfg = jobScanConfig(job);
    if (cfg.physicalPs.empty())
        cfg.physicalPs = defaultPhysicalPs();
    const std::string fingerprint = thresholdScanFingerprint(setup, cfg);
    const std::string ckptPath = checkpointPath(job.id);

    // Validate the job's prior state up front, where a stale or
    // corrupt checkpoint is a per-job `error` event -- inside the
    // engine it would be fatal for the whole server.
    McCheckpoint prior;
    std::string err = prior.open(ckptPath, fingerprint);
    if (!err.empty()) {
        events_.error(job.id, kErrCheckpointMismatch, err);
        return Outcome::Error;
    }

    RunState& state = runStates_[job.id];
    if (state.startedThisSession || prior.numPoints() > 0)
        events_.resumed(job.id);
    else
        events_.started(job.id);
    state.startedThisSession = true;

    const std::vector<GridPoint> points = gridPoints(cfg);
    const uint64_t jobBudget =
        job.trials * static_cast<uint64_t>(points.size());
    const uint64_t progressEvery = config_.progressEveryTrials > 0
        ? config_.progressEveryTrials : uint64_t{16384};

    // Per-job labeled counters (satellite of the obs layer): the
    // service is the first multiplexed producer, so its counts carry
    // the job id as a label instead of blending into global totals.
    // Guarded construction -- interning a name would allocate the
    // registry, which must never happen while metrics are off.
    std::optional<obs::Counter> jobTrialsCtr;
    if (obs::metricsEnabled())
        jobTrialsCtr = obs::Counter::get(
            obs::labeledName("service.job.trials", "job", job.id));

    uint64_t sliceTrials = 0; // session trials committed this slice
    uint64_t jobTrials = 0;   // cumulative over finished points
    uint64_t jobFailures = 0;
    std::string preemptReason;

    for (const GridPoint& point : points) {
        GeneratorConfig gc = pointConfig(setup, cfg, point);
        const uint64_t pointKey =
            checkpointPointKey(setup.embedding, gc);

        // Refresh the frontier view: the engine rewrote the file
        // after every finished point and periodic save.
        McCheckpoint cur;
        err = cur.open(ckptPath, fingerprint);
        if (!err.empty()) {
            events_.error(job.id, kErrCheckpointMismatch, err);
            return Outcome::Error;
        }
        const CheckpointEntry* entry = cur.find(pointKey);

        if (entry && entry->done) {
            // Finished in an earlier session or slice: account for it
            // and replay its announcement at most once per session.
            if (!state.announcedPoints.count(point.index)) {
                events_.pointDone(job.id, point.index, point.distance,
                                  point.physicalP,
                                  basisChar(point.basis),
                                  entry->trialsDone, entry->failures,
                                  /*cached=*/true);
                state.announcedPoints.insert(point.index);
            }
            jobTrials += entry->trialsDone;
            jobFailures += entry->failures;
            continue;
        }
        uint64_t lastCommitted = entry ? entry->trialsDone : 0;
        uint64_t lastProgressEmit = lastCommitted;

        McOptions opts = cfg.mc;
        opts.threads = config_.threads;
        opts.checkpointPath = ckptPath;
        opts.checkpointFingerprint = fingerprint;
        opts.checkpointEveryTrials = config_.checkpointEveryTrials;
        bool preempted = false;
        opts.preempted = &preempted;
        opts.progress = [&](const McProgress& mc) {
            const uint64_t delta = mc.trialsDone - lastCommitted;
            lastCommitted = mc.trialsDone;
            sliceTrials += delta;
            if (jobTrialsCtr)
                jobTrialsCtr->add(delta);
            if (mc.trialsDone - lastProgressEmit >= progressEvery
                || mc.trialsDone >= mc.totalTrials) {
                events_.progress(job.id, point.index, point.distance,
                                 point.physicalP,
                                 basisChar(point.basis), mc,
                                 jobTrials + mc.trialsDone, jobBudget);
                lastProgressEmit = mc.trialsDone;
            }
        };
        opts.preempt = [&]() {
            std::optional<std::string> reason =
                scheduler_.shouldPreempt(job.id, job.priority,
                                         sliceTrials);
            if (reason)
                preemptReason = *reason;
            return reason.has_value();
        };

        BinomialEstimate est =
            estimateLogicalErrorBasis(setup.embedding, gc, opts);
        if (preempted) {
            if (preemptReason == "cancelled") {
                // Terminal: consume the flag, keep the checkpoint
                // (resubmitting the id in a later session resumes).
                scheduler_.takeCancelFlag(job.id);
                events_.cancelled(job.id, "running");
                return Outcome::Cancelled;
            }
            events_.preempted(job.id, preemptReason,
                              jobTrials + est.trials);
            if (obs::metricsEnabled())
                obs::Counter::get("service.preemptions").add(1);
            return Outcome::Preempted;
        }
        events_.pointDone(job.id, point.index, point.distance,
                          point.physicalP, basisChar(point.basis),
                          est.trials, est.successes,
                          /*cached=*/false);
        state.announcedPoints.insert(point.index);
        jobTrials += est.trials;
        jobFailures += est.successes;
    }

    events_.done(job.id, jobTrials, jobFailures, points.size());
    return Outcome::Done;
}

} // namespace service
} // namespace vlq
