#ifndef VLQ_SERVICE_SCHEDULER_H
#define VLQ_SERVICE_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "service/job.h"

namespace vlq {
namespace service {

/**
 * Priority queue + preemption policy of the scan job service.
 *
 * Ordering: strictly by priority (higher first), FIFO by arrival
 * within a priority level. A job preempted and requeued receives a
 * fresh arrival stamp, which is what turns quantum expiry into
 * round-robin fair shares: equal-priority jobs take turns, one
 * quantum of committed trials each, instead of running to completion
 * in arrival order.
 *
 * Preemption triggers (polled by the engine at batch-commit
 * boundaries via McOptions::preempt, so suspending costs one
 * checkpoint save):
 *  - "cancelled": the running job was flagged by flagCancel() (a
 *                `cancel` request named it); the service emits the
 *                terminal `cancelled` event and does not requeue;
 *  - "priority": a strictly higher-priority job is waiting;
 *  - "quantum":  the running slice has committed at least
 *                quantumTrials trials and an equal-priority job is
 *                waiting (lower-priority waiters never trigger it:
 *                the scheduler would pick this job straight back up);
 *  - "shutdown": stop() was called (server exiting; the job is left
 *                suspended in its checkpoint, not requeued).
 *
 * Thread-safety: every method takes the internal mutex; submissions
 * may arrive from any thread (e.g. a request poller) while the
 * scheduler's owner is mid-slice.
 */
class Scheduler
{
  public:
    /** Trials one slice may commit before an equal-priority waiter
     *  gets a turn. 0 keeps the 65536 default. */
    explicit Scheduler(uint64_t quantumTrials = 0);

    /** Enqueue a (validated) job. */
    void push(const ScanJob& job);

    /** Dequeue the highest-priority, earliest-arrival job. */
    std::optional<ScanJob> pop();

    bool empty() const;
    size_t size() const;

    /** Priority of the best waiting job (INT_MIN when empty). */
    int topPriority() const;

    /** Request shutdown: shouldPreempt returns "shutdown" from now
     *  on and the service loop stops dequeuing. */
    void stop();
    bool stopped() const;

    /**
     * Remove a still-queued job.
     * @return true when `id` was waiting in the queue (it is gone and
     *         will never be popped); false when no queued entry
     *         carries that id (it may be the running job -- see
     *         flagCancel -- or already finished).
     */
    bool cancelQueued(const std::string& id);

    /**
     * Re-stamp a queued job's arrival (the `requeue` request verb):
     * the job moves behind every waiter of its priority level, as if
     * it had just been pushed -- the same fair-share rotation a
     * quantum-expiry preemption performs, but client-driven.
     * @return true when `id` was waiting in the queue; false when no
     *         queued entry carries that id (running or finished jobs
     *         have no queue position to rotate).
     */
    bool requeue(const std::string& id);

    /** Flag a (running) job for cancellation: its next shouldPreempt
     *  poll returns "cancelled". The flag persists until consumed
     *  with takeCancelFlag(). */
    void flagCancel(const std::string& id);

    /** Consume a cancel flag. @return true when `id` was flagged. */
    bool takeCancelFlag(const std::string& id);

    /**
     * The preemption decision for a running slice: the reason to
     * suspend now, or std::nullopt to keep running. `jobId` and
     * `priority` identify the running job; `sliceTrials` is the
     * trials this slice has committed so far.
     */
    std::optional<std::string> shouldPreempt(const std::string& jobId,
                                             int priority,
                                             uint64_t sliceTrials) const;

    uint64_t quantumTrials() const { return quantumTrials_; }

  private:
    struct Entry
    {
        ScanJob job;
        uint64_t arrival = 0;

        bool operator<(const Entry& other) const
        {
            if (job.priority != other.job.priority)
                return job.priority > other.job.priority;
            return arrival < other.arrival;
        }
    };

    const uint64_t quantumTrials_;
    mutable std::mutex mutex_;
    std::set<Entry> queue_;
    std::set<std::string> cancelFlags_;
    uint64_t nextArrival_ = 0;
    bool stopped_ = false;
};

} // namespace service
} // namespace vlq

#endif // VLQ_SERVICE_SCHEDULER_H
