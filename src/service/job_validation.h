#ifndef VLQ_SERVICE_JOB_VALIDATION_H
#define VLQ_SERVICE_JOB_VALIDATION_H

#include <string>
#include <vector>

#include "service/job.h"

namespace vlq {
namespace service {

/**
 * Validate one ScanJob before it touches the engine, reusing the same
 * sources of truth the CLI tools use -- GeneratorConfig::validate for
 * patch geometry and the decoder/embedding registries for backend
 * names -- so the service can never accept a request a solo run would
 * reject (or vice versa).
 *
 * @return every problem found (not just the first), each a complete
 *         actionable sentence: what was wrong, what was given, and
 *         what would be accepted. Empty means the job is valid and
 *         jobSetup()/jobScanConfig() are safe to call.
 */
std::vector<std::string> validateJob(const ScanJob& job);

/** validateJob joined to one "; "-separated diagnostic (empty = OK). */
std::string validationSummary(const ScanJob& job);

} // namespace service
} // namespace vlq

#endif // VLQ_SERVICE_JOB_VALIDATION_H
