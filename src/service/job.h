#ifndef VLQ_SERVICE_JOB_H
#define VLQ_SERVICE_JOB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/memory_experiment.h"
#include "mc/threshold.h"

namespace vlq {
namespace service {

/**
 * One scan request of the scan job service: a full threshold-scan
 * grid (setup-or-embedding x distances x physical error rates, both
 * memory bases) plus the Monte-Carlo budget and a scheduling
 * priority. A ScanJob maps 1:1 onto one `submit` line of the
 * vlq-scan-job/1 request grammar (docs/job-protocol.md) and, once
 * validated (job_validation.h), onto the same EvaluationSetup +
 * ThresholdScanConfig a solo threshold_scan run would build -- which
 * is why a job's checkpoint file is byte-identical to a solo run's
 * and the service's results are provably bit-identical.
 *
 * Name fields (embedding, schedule, decoder) stay *unresolved
 * strings* here so validateJob can reject a typo with an actionable
 * message listing the registered names, instead of a parse-time
 * failure that loses the job id.
 */
struct ScanJob
{
    /** Client-chosen identity: [A-Za-z0-9._-], at most 64 chars. It
     *  names the job's checkpoint file and labels its events and
     *  metrics, so it must be filesystem- and JSON-safe. */
    std::string id;

    /** Higher runs first; FIFO then round-robin within a level. */
    int priority = 0;

    /**
     * Evaluation setup, one of two spellings:
     *  - `setup` = paperSetups() index 0..4 (the Fig. 11 setups),
     *    used when `embedding` is empty; or
     *  - `embedding` = any registered generator-backend name plus
     *    `schedule` = "aao" | "interleaved".
     * The default is setup 4 (Compact-Interleaved), matching the
     * threshold_scan example's default.
     */
    int setup = -1;
    std::string embedding;
    std::string schedule = "aao";

    /** Scan grid; the defaults are threshold_scan's grid, so a
     *  default job is comparable against a solo run out of the box. */
    std::vector<int> distances{3, 5, 7};
    std::vector<double> physicalPs; // empty = defaultPhysicalPs()

    /** Monte-Carlo budget and engine knobs (per grid point). */
    uint64_t trials = 1500;
    uint64_t seed = 0x5eed;
    std::string decoder = "mwpm";
    uint32_t batchSize = 256;
    uint64_t targetFailures = 0;

    /**
     * Compute backend name ("scalar", "simd"), or empty to inherit
     * the server's ambient default (the VLQ_COMPUTE environment
     * variable via McOptions). Backends are bit-identical by
     * contract, so this is a throughput knob, not part of the job's
     * checkpoint fingerprint -- a job checkpointed under one backend
     * resumes under another.
     */
    std::string compute;

    /**
     * Serialize back to one request line. parseRequestLine() of the
     * result yields an equal job: the round-trip is exact because
     * doubles are rendered with canonicalDouble (mc/checkpoint.h).
     */
    std::string requestLine() const;
};

/** threshold_scan's default p grid: logspace(3e-3, 2e-2, 6). */
std::vector<double> defaultPhysicalPs();

/** One parsed request line of the vlq-scan-job/1 wire protocol. */
struct Request
{
    enum class Kind : uint8_t { Submit, Shutdown, Cancel, Requeue };
    Kind kind = Kind::Submit;
    ScanJob job;          // meaningful when kind == Submit
    std::string targetId; // meaningful when kind == Cancel | Requeue
};

/**
 * Parse one request line: `submit key=value ...`, `cancel id=<id>`,
 * `requeue id=<id>`, or `shutdown`.
 * Blank lines and `#` comments parse to std::nullopt with *error left
 * empty; malformed lines (unknown verb or key, bad number, missing
 * id) parse to std::nullopt with *error describing the problem.
 * Unknown keys are errors, never silently ignored: a typo'd
 * `trails=1e6` must not submit a default-budget job.
 */
std::optional<Request> parseRequestLine(const std::string& line,
                                        std::string* error);

/**
 * Resolve a *validated* job (see job_validation.h) to its evaluation
 * setup and full threshold-scan configuration. The returned config
 * carries no callbacks or checkpoint path -- the scheduler fills
 * those per slice. Calling either on an unvalidated job with a bad
 * name is a fatal error.
 */
EvaluationSetup jobSetup(const ScanJob& job);
ThresholdScanConfig jobScanConfig(const ScanJob& job);

} // namespace service
} // namespace vlq

#endif // VLQ_SERVICE_JOB_H
