#ifndef VLQ_SERVICE_EVENTS_H
#define VLQ_SERVICE_EVENTS_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

#include "mc/monte_carlo.h"
#include "service/job.h"

namespace vlq {
namespace service {

/**
 * Schema tag carried by every event line. Versioning policy (see
 * docs/job-protocol.md): additive field changes keep the version;
 * removing or re-typing a field, or changing an ordering guarantee,
 * bumps it.
 */
constexpr const char* kJobEventSchema = "vlq-scan-job/1";

/** Machine-readable codes of the terminal `error` event. */
constexpr const char* kErrBadRequest = "bad_request";
constexpr const char* kErrCheckpointMismatch = "checkpoint_mismatch";

/**
 * The client event stream of the scan job service: one JSON object
 * per line (JSONL), written in one buffered write and flushed per
 * line so a SIGKILL can clip at most the final line. Every event
 * carries {schema, seq, t, event, job}; seq is strictly increasing
 * within a server session and t is seconds since the sink was
 * created. Guarantees (normative spec: docs/job-protocol.md):
 *
 *  - per job, the first event is `queued` and the last is `done`,
 *    `error`, or `cancelled` (all terminal);
 *  - work begins with `started` (no prior checkpoint) or `resumed`
 *    (after a preemption or a server restart);
 *  - `progress.trials_done` and `point_done` replay are monotone:
 *    counts never decrease, in-session or across kill/resume, because
 *    they are the engine's *global* committed counts (McProgress);
 *  - after `preempted`, the next event of that job is `resumed` (or
 *    nothing, when the server exited first).
 *
 * Emission is mutex-serialized: engine progress callbacks fire on
 * worker threads while the control loop emits queue events.
 */
class EventSink
{
  public:
    /** Write events to `out` (borrowed; nullptr discards). */
    explicit EventSink(std::ostream* out);

    void queued(const ScanJob& job, size_t queueDepth);
    void started(const std::string& jobId);
    void resumed(const std::string& jobId);

    /**
     * Heartbeat for the point being sampled. `jobTrialsDone` is the
     * job-level cumulative committed-trial count (previous points'
     * totals plus this point's McProgress::trialsDone), the field
     * check_jobs.py holds to monotonicity.
     */
    void progress(const std::string& jobId, int pointIndex, int distance,
                  double physicalP, char basis, const McProgress& mc,
                  uint64_t jobTrialsDone, uint64_t jobTrialsBudget);

    /**
     * One grid point finished. `cached` marks a replay: the point was
     * already complete in the job's checkpoint when this server
     * session started (clients treat cached replays as idempotent).
     */
    void pointDone(const std::string& jobId, int pointIndex,
                   int distance, double physicalP, char basis,
                   uint64_t trials, uint64_t failures, bool cached);

    /** reason: "priority" | "quantum" | "shutdown". */
    void preempted(const std::string& jobId, const std::string& reason,
                   uint64_t jobTrialsDone);

    /**
     * A `requeue` request rotated a still-queued job behind its
     * equal-priority peers (fresh arrival stamp). Non-terminal: the
     * job is still queued and will run later this session.
     */
    void requeued(const std::string& jobId, size_t queueDepth);

    /**
     * Terminal cancellation (a `cancel` request named the job).
     * `stage` is "queued" (removed before it ever ran this session)
     * or "running" (preempted at a batch boundary, frontier saved --
     * resubmitting the id in a later session resumes it). Carries no
     * trials count: a queued job's committed work lives in its
     * checkpoint, which this session may never have opened.
     */
    void cancelled(const std::string& jobId, const std::string& stage);

    void done(const std::string& jobId, uint64_t trials,
              uint64_t failures, size_t points);

    /** Terminal failure; `jobId` may be empty for unparseable
     *  submissions that never yielded an id. */
    void error(const std::string& jobId, const std::string& code,
               const std::string& message);

    /** Events emitted so far (== the last line's seq). */
    uint64_t eventsEmitted() const;

  private:
    /** Serialize the common prefix + `fields` as one line. */
    void emit(const std::string& event, const std::string& jobId,
              const std::string& fields);

    std::ostream* out_;
    mutable std::mutex mutex_;
    uint64_t seq_ = 0;
    const std::chrono::steady_clock::time_point start_;
};

} // namespace service
} // namespace vlq

#endif // VLQ_SERVICE_EVENTS_H
