#include "service/job.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "compute/compute_registry.h"
#include "core/generator_registry.h"
#include "decoder/decoder_factory.h"
#include "mc/checkpoint.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"

namespace vlq {
namespace service {

namespace {

/**
 * Strict double parse for request values: the whole token must be one
 * finite number (no leading whitespace, no trailing junk) -- the same
 * contract parseInt64 enforces for integers.
 */
std::optional<double>
parseDoubleStrict(const std::string& text)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || errno == ERANGE
        || !std::isfinite(value))
        return std::nullopt;
    return value;
}

/** Split "3,5,7" on commas (empty fields are the caller's error). */
std::vector<std::string>
splitCommas(const std::string& text)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= text.size()) {
        size_t comma = text.find(',', begin);
        if (comma == std::string::npos) {
            out.push_back(text.substr(begin));
            break;
        }
        out.push_back(text.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return out;
}

bool
fail(std::string* error, const std::string& message)
{
    if (error)
        *error = message;
    return false;
}

/** Apply one key=value token to the job under construction. */
bool
applyKeyValue(ScanJob& job, const std::string& key,
              const std::string& value, std::string* error)
{
    auto needInt = [&](int64_t lo, int64_t hi,
                       int64_t* out) {
        auto parsed = parseInt64(value);
        if (!parsed || *parsed < lo || *parsed > hi)
            return fail(error, "bad value for '" + key + "': '" + value
                        + "' (expected an integer in ["
                        + std::to_string(lo) + ", " + std::to_string(hi)
                        + "])");
        *out = *parsed;
        return true;
    };
    int64_t n = 0;
    if (key == "id") {
        job.id = value;
        return true;
    }
    if (key == "priority") {
        if (!needInt(-100, 100, &n))
            return false;
        job.priority = static_cast<int>(n);
        return true;
    }
    if (key == "setup") {
        if (!needInt(0, static_cast<int64_t>(paperSetups().size()) - 1,
                     &n))
            return false;
        job.setup = static_cast<int>(n);
        return true;
    }
    if (key == "embedding") {
        job.embedding = value;
        return true;
    }
    if (key == "schedule") {
        job.schedule = value;
        return true;
    }
    if (key == "distances") {
        job.distances.clear();
        for (const std::string& field : splitCommas(value)) {
            auto parsed = parseInt64(field);
            if (!parsed)
                return fail(error, "bad value for 'distances': '" + field
                            + "' is not an integer");
            job.distances.push_back(static_cast<int>(*parsed));
        }
        return true;
    }
    if (key == "ps") {
        job.physicalPs.clear();
        for (const std::string& field : splitCommas(value)) {
            auto parsed = parseDoubleStrict(field);
            if (!parsed)
                return fail(error, "bad value for 'ps': '" + field
                            + "' is not a finite number");
            job.physicalPs.push_back(*parsed);
        }
        return true;
    }
    if (key == "trials") {
        if (!needInt(1, INT64_MAX, &n))
            return false;
        job.trials = static_cast<uint64_t>(n);
        return true;
    }
    if (key == "seed") {
        if (!needInt(0, INT64_MAX, &n))
            return false;
        job.seed = static_cast<uint64_t>(n);
        return true;
    }
    if (key == "decoder") {
        job.decoder = value;
        return true;
    }
    if (key == "batch") {
        if (!needInt(1, UINT32_MAX, &n))
            return false;
        job.batchSize = static_cast<uint32_t>(n);
        return true;
    }
    if (key == "target") {
        if (!needInt(0, INT64_MAX, &n))
            return false;
        job.targetFailures = static_cast<uint64_t>(n);
        return true;
    }
    if (key == "compute") {
        job.compute = value;
        return true;
    }
    return fail(error, "unknown request key '" + key
                + "' (valid: id priority setup embedding schedule"
                  " distances ps trials seed decoder batch target"
                  " compute)");
}

} // namespace

std::vector<double>
defaultPhysicalPs()
{
    return logspace(3e-3, 2e-2, 6);
}

std::string
ScanJob::requestLine() const
{
    std::ostringstream os;
    os << "submit id=" << id << " priority=" << priority;
    if (!embedding.empty())
        os << " embedding=" << embedding << " schedule=" << schedule;
    else if (setup >= 0)
        os << " setup=" << setup;
    os << " distances=";
    for (size_t i = 0; i < distances.size(); ++i)
        os << (i ? "," : "") << distances[i];
    if (!physicalPs.empty()) {
        os << " ps=";
        for (size_t i = 0; i < physicalPs.size(); ++i)
            os << (i ? "," : "") << canonicalDouble(physicalPs[i]);
    }
    os << " trials=" << trials << " seed=" << seed << " decoder="
       << decoder << " batch=" << batchSize << " target="
       << targetFailures;
    // Rendered only when set: "inherit the server default" stays
    // distinguishable from an explicit backend choice, and lines from
    // older clients round-trip byte-identically.
    if (!compute.empty())
        os << " compute=" << compute;
    return os.str();
}

std::optional<Request>
parseRequestLine(const std::string& line, std::string* error)
{
    if (error)
        error->clear();

    // Tokenize on runs of spaces/tabs.
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    if (tokens.empty() || tokens[0][0] == '#')
        return std::nullopt;

    Request request;
    if (tokens[0] == "shutdown") {
        if (tokens.size() > 1) {
            fail(error, "shutdown takes no arguments");
            return std::nullopt;
        }
        request.kind = Request::Kind::Shutdown;
        return request;
    }
    if (tokens[0] == "cancel" || tokens[0] == "requeue") {
        // Deliberately strict: exactly `<verb> id=<id>`, so a garbled
        // line can never cancel (or rotate) the wrong job.
        if (tokens.size() != 2 || tokens[1].rfind("id=", 0) != 0
            || tokens[1].size() == 3) {
            fail(error, tokens[0]
                 + " takes exactly one argument: id=<id>");
            return std::nullopt;
        }
        request.kind = tokens[0] == "cancel" ? Request::Kind::Cancel
                                             : Request::Kind::Requeue;
        request.targetId = tokens[1].substr(3);
        return request;
    }
    if (tokens[0] != "submit") {
        fail(error, "unknown request verb '" + tokens[0]
             + "' (valid: submit, cancel, requeue, shutdown)");
        return std::nullopt;
    }
    request.kind = Request::Kind::Submit;
    for (size_t i = 1; i < tokens.size(); ++i) {
        size_t eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0) {
            fail(error, "malformed token '" + tokens[i]
                 + "' (expected key=value)");
            return std::nullopt;
        }
        if (!applyKeyValue(request.job, tokens[i].substr(0, eq),
                           tokens[i].substr(eq + 1), error))
            return std::nullopt;
    }
    if (request.job.id.empty()) {
        fail(error, "submit requires a non-empty id=");
        return std::nullopt;
    }
    return request;
}

EvaluationSetup
jobSetup(const ScanJob& job)
{
    if (!job.embedding.empty()) {
        EvaluationSetup setup;
        auto kind = parseEmbeddingKind(job.embedding);
        if (!kind)
            VLQ_FATAL("jobSetup on unvalidated job: bad embedding");
        setup.embedding = *kind;
        std::string lower = asciiLower(job.schedule);
        setup.schedule = lower == "interleaved"
            ? ExtractionSchedule::Interleaved
            : ExtractionSchedule::AllAtOnce;
        return setup;
    }
    auto setups = paperSetups();
    int index = job.setup >= 0 ? job.setup : 4;
    if (index >= static_cast<int>(setups.size()))
        VLQ_FATAL("jobSetup on unvalidated job: bad setup index");
    return setups[static_cast<size_t>(index)];
}

ThresholdScanConfig
jobScanConfig(const ScanJob& job)
{
    ThresholdScanConfig cfg;
    cfg.distances = job.distances;
    cfg.physicalPs = job.physicalPs.empty() ? defaultPhysicalPs()
                                            : job.physicalPs;
    cfg.mc.trials = job.trials;
    cfg.mc.seed = job.seed;
    auto decoder = parseDecoderKind(job.decoder);
    if (!decoder)
        VLQ_FATAL("jobScanConfig on unvalidated job: bad decoder");
    cfg.mc.decoder = *decoder;
    cfg.mc.batchSize = job.batchSize;
    cfg.mc.targetFailures = job.targetFailures;
    if (!job.compute.empty()) {
        auto compute = parseComputeKind(job.compute);
        if (!compute)
            VLQ_FATAL("jobScanConfig on unvalidated job: bad compute");
        cfg.mc.compute = *compute;
    } // else keep the McOptions default (VLQ_COMPUTE ambient)
    return cfg;
}

} // namespace service
} // namespace vlq
