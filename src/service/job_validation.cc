#include "service/job_validation.h"

#include <set>
#include <sstream>

#include "compute/compute_registry.h"
#include "core/generator_common.h"
#include "core/generator_registry.h"
#include "decoder/decoder_factory.h"
#include "mc/memory_experiment.h"
#include "util/env.h"

namespace vlq {
namespace service {

namespace {

bool
validIdChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

} // namespace

std::vector<std::string>
validateJob(const ScanJob& job)
{
    std::vector<std::string> problems;
    auto bad = [&](const std::string& message) {
        problems.push_back(message);
    };

    // Identity: the id names the checkpoint file and labels events and
    // metrics, so it must be safe in paths and JSON.
    if (job.id.empty())
        bad("job id must not be empty");
    else if (job.id.size() > 64)
        bad("job id '" + job.id.substr(0, 16)
            + "...' is longer than 64 characters");
    else {
        for (char c : job.id) {
            if (!validIdChar(c)) {
                bad("job id '" + job.id + "' contains '"
                    + std::string(1, c)
                    + "'; allowed characters are [A-Za-z0-9._-]");
                break;
            }
        }
    }

    if (job.priority < -100 || job.priority > 100)
        bad("priority " + std::to_string(job.priority)
            + " is outside [-100, 100]");

    // Setup selection: either a paper-setup index or a registered
    // embedding name (exactly the registry threshold_scan consults).
    if (!job.embedding.empty()) {
        if (!parseEmbeddingKind(job.embedding))
            bad("unknown embedding '" + job.embedding
                + "'; registered embeddings: " + embeddingKindList());
        std::string schedule = asciiLower(job.schedule);
        if (schedule != "aao" && schedule != "interleaved")
            bad("unknown schedule '" + job.schedule
                + "'; valid schedules: aao, interleaved");
    } else if (job.setup != -1
               && (job.setup < 0
                   || job.setup >= static_cast<int>(paperSetups().size()))) {
        // -1 is the "unset, use the default setup" sentinel.
        bad("setup index " + std::to_string(job.setup)
            + " is out of range 0.."
            + std::to_string(paperSetups().size() - 1));
    }

    // Grid: every distance must build a valid patch. Reuse
    // GeneratorConfig::validate, the single source of truth the
    // generator backends themselves enforce, so the rejection message
    // here matches what a solo run would print.
    if (job.distances.empty())
        bad("distances must name at least one code distance");
    std::set<int> seenDistances;
    for (int d : job.distances) {
        if (!seenDistances.insert(d).second) {
            bad("distance " + std::to_string(d)
                + " appears more than once");
            continue;
        }
        GeneratorConfig gc;
        gc.distance = d;
        std::string problem = gc.validate();
        if (!problem.empty())
            bad("distance " + std::to_string(d) + " is invalid: "
                + problem);
    }
    std::set<double> seenPs;
    for (double p : job.physicalPs) {
        if (!seenPs.insert(p).second) {
            std::ostringstream os;
            os << "physical rate " << p << " appears more than once";
            bad(os.str());
            continue;
        }
        if (!(p > 0.0) || p > 0.5) {
            std::ostringstream os;
            os << "physical rate " << p << " is outside (0, 0.5]";
            bad(os.str());
        }
    }

    // Budget and engine knobs.
    if (job.trials < 1)
        bad("trials must be at least 1");
    if (job.batchSize < 1)
        bad("batch must be at least 1");
    if (job.targetFailures > job.trials)
        bad("target (" + std::to_string(job.targetFailures)
            + ") exceeds the trial budget ("
            + std::to_string(job.trials)
            + "), so the early stop could never fire");
    if (!parseDecoderKind(job.decoder))
        bad("unknown decoder '" + job.decoder
            + "'; registered decoders: " + decoderKindList());
    // Empty means "inherit the server's ambient default" -- only an
    // explicit name must resolve.
    if (!job.compute.empty() && !parseComputeKind(job.compute))
        bad("unknown compute backend '" + job.compute
            + "'; registered backends: " + computeKindList());

    return problems;
}

std::string
validationSummary(const ScanJob& job)
{
    std::vector<std::string> problems = validateJob(job);
    std::string summary;
    for (const std::string& problem : problems) {
        if (!summary.empty())
            summary += "; ";
        summary += problem;
    }
    return summary;
}

} // namespace service
} // namespace vlq
