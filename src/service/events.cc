#include "service/events.h"

#include <sstream>

#include "obs/json.h"

namespace vlq {
namespace service {

using obs::jsonNumber;
using obs::jsonQuote;

EventSink::EventSink(std::ostream* out)
    : out_(out), start_(std::chrono::steady_clock::now())
{
}

void
EventSink::emit(const std::string& event, const std::string& jobId,
                const std::string& fields)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++seq_;
    if (!out_)
        return;
    double t = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    std::ostringstream os;
    os << "{\"schema\":" << jsonQuote(kJobEventSchema)
       << ",\"seq\":" << seq_ << ",\"t\":" << jsonNumber(t)
       << ",\"event\":" << jsonQuote(event) << ",\"job\":"
       << jsonQuote(jobId);
    if (!fields.empty())
        os << ',' << fields;
    os << "}\n";
    // One write + flush per line: a kill can truncate only the tail
    // line, never interleave two events.
    (*out_) << os.str() << std::flush;
}

void
EventSink::queued(const ScanJob& job, size_t queueDepth)
{
    std::ostringstream os;
    os << "\"priority\":" << job.priority << ",\"queue_depth\":"
       << queueDepth << ",\"request\":" << jsonQuote(job.requestLine());
    emit("queued", job.id, os.str());
}

void
EventSink::started(const std::string& jobId)
{
    emit("started", jobId, "");
}

void
EventSink::resumed(const std::string& jobId)
{
    emit("resumed", jobId, "");
}

void
EventSink::progress(const std::string& jobId, int pointIndex,
                    int distance, double physicalP, char basis,
                    const McProgress& mc, uint64_t jobTrialsDone,
                    uint64_t jobTrialsBudget)
{
    std::ostringstream os;
    os << "\"point\":" << pointIndex << ",\"d\":" << distance
       << ",\"p\":" << jsonNumber(physicalP) << ",\"basis\":"
       << jsonQuote(std::string(1, basis))
       << ",\"point_trials_done\":" << mc.trialsDone
       << ",\"point_failures\":" << mc.failures
       << ",\"point_trials_budget\":" << mc.totalTrials
       << ",\"trials_done\":" << jobTrialsDone
       << ",\"trials_budget\":" << jobTrialsBudget
       // jsonNumber maps non-finite to null; unknown heartbeat values
       // (0 rate / -1 eta sentinels) are emitted as null too, so
       // consumers never see a sentinel dressed up as a measurement.
       << ",\"shots_per_sec\":"
       << (mc.shotsPerSec > 0.0 ? jsonNumber(mc.shotsPerSec) : "null")
       << ",\"eta_seconds\":"
       << (mc.etaSeconds >= 0.0 ? jsonNumber(mc.etaSeconds) : "null");
    emit("progress", jobId, os.str());
}

void
EventSink::pointDone(const std::string& jobId, int pointIndex,
                     int distance, double physicalP, char basis,
                     uint64_t trials, uint64_t failures, bool cached)
{
    std::ostringstream os;
    os << "\"point\":" << pointIndex << ",\"d\":" << distance
       << ",\"p\":" << jsonNumber(physicalP) << ",\"basis\":"
       << jsonQuote(std::string(1, basis)) << ",\"trials\":" << trials
       << ",\"failures\":" << failures << ",\"cached\":"
       << (cached ? "true" : "false");
    emit("point_done", jobId, os.str());
}

void
EventSink::preempted(const std::string& jobId, const std::string& reason,
                     uint64_t jobTrialsDone)
{
    std::ostringstream os;
    os << "\"reason\":" << jsonQuote(reason) << ",\"trials_done\":"
       << jobTrialsDone;
    emit("preempted", jobId, os.str());
}

void
EventSink::requeued(const std::string& jobId, size_t queueDepth)
{
    std::ostringstream os;
    os << "\"queue_depth\":" << queueDepth;
    emit("requeued", jobId, os.str());
}

void
EventSink::cancelled(const std::string& jobId, const std::string& stage)
{
    std::ostringstream os;
    os << "\"stage\":" << jsonQuote(stage);
    emit("cancelled", jobId, os.str());
}

void
EventSink::done(const std::string& jobId, uint64_t trials,
                uint64_t failures, size_t points)
{
    std::ostringstream os;
    os << "\"trials\":" << trials << ",\"failures\":" << failures
       << ",\"points\":" << points;
    emit("done", jobId, os.str());
}

void
EventSink::error(const std::string& jobId, const std::string& code,
                 const std::string& message)
{
    std::ostringstream os;
    os << "\"code\":" << jsonQuote(code) << ",\"message\":"
       << jsonQuote(message);
    emit("error", jobId, os.str());
}

uint64_t
EventSink::eventsEmitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

} // namespace service
} // namespace vlq
