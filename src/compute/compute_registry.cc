#include "compute/compute_registry.h"

#include "util/env.h"
#include "util/logging.h"

namespace vlq {

// Built-in backend factories (scalar_backend.cc, simd_backend.cc).
std::unique_ptr<ComputeBackend>
makeScalarComputeBackend(const DetectorErrorModel& dem,
                         const FaultSampler& sampler,
                         const Decoder& decoder);
std::unique_ptr<ComputeBackend>
makeSimdComputeBackend(const DetectorErrorModel& dem,
                       const FaultSampler& sampler,
                       const Decoder& decoder);

namespace {

std::vector<ComputeRegistration>&
mutableRegistry()
{
    static std::vector<ComputeRegistration> registry{
        {ComputeKind::Scalar, "scalar", "reference ref",
         makeScalarComputeBackend},
        {ComputeKind::Simd, "simd", "word-parallel vector",
         makeSimdComputeBackend},
    };
    return registry;
}

} // namespace

const std::vector<ComputeRegistration>&
computeRegistry()
{
    return mutableRegistry();
}

void
registerComputeBackend(const ComputeRegistration& registration)
{
    for (ComputeRegistration& entry : mutableRegistry()) {
        if (entry.kind == registration.kind) {
            entry = registration;
            return;
        }
    }
    mutableRegistry().push_back(registration);
}

std::unique_ptr<ComputeBackend>
makeComputeBackend(ComputeKind kind, const DetectorErrorModel& dem,
                   const FaultSampler& sampler, const Decoder& decoder)
{
    for (const ComputeRegistration& entry : computeRegistry())
        if (entry.kind == kind)
            return entry.maker(dem, sampler, decoder);
    // Unreachable for the built-in kinds; fail safe to the reference
    // backend rather than crash.
    return makeScalarComputeBackend(dem, sampler, decoder);
}

std::unique_ptr<ComputeBackend>
makeComputeBackend(std::string_view name, const DetectorErrorModel& dem,
                   const FaultSampler& sampler, const Decoder& decoder)
{
    std::optional<ComputeKind> kind = parseComputeKind(name);
    if (!kind)
        return nullptr;
    return makeComputeBackend(*kind, dem, sampler, decoder);
}

const char*
computeKindName(ComputeKind kind)
{
    for (const ComputeRegistration& entry : computeRegistry())
        if (entry.kind == kind)
            return entry.name;
    return "unknown";
}

std::optional<ComputeKind>
parseComputeKind(std::string_view name)
{
    std::string lowered = asciiLower(name);
    if (lowered.empty())
        return std::nullopt;
    for (const ComputeRegistration& entry : computeRegistry()) {
        if (lowered == entry.name
            || nameListContains(entry.aliases, lowered))
            return entry.kind;
    }
    return std::nullopt;
}

std::string
computeKindList()
{
    std::string out;
    for (const ComputeRegistration& entry : computeRegistry()) {
        if (!out.empty())
            out += ", ";
        out += entry.name;
    }
    return out;
}

ComputeKind
computeKindFromEnv(ComputeKind fallback, const char* variable)
{
    std::string value = envLower(variable, "");
    if (value.empty())
        return fallback;
    std::optional<ComputeKind> kind = parseComputeKind(value);
    if (!kind) {
        const std::string msg = std::string(variable) + "=" + value
            + " is not a registered compute backend (valid: "
            + computeKindList() + ")";
        VLQ_FATAL(msg.c_str());
    }
    return *kind;
}

} // namespace vlq
