#ifndef VLQ_COMPUTE_COMPUTE_BACKEND_H
#define VLQ_COMPUTE_COMPUTE_BACKEND_H

#include <cstdint>
#include <span>
#include <vector>

namespace vlq {

class Rng;
class ShotBatch;

/**
 * The compute seam of the Monte-Carlo hot path: everything between
 * "here is a batch of trial indices" and "here are the failing
 * trials" runs behind this interface, so the whole
 * sample -> classify -> decode -> count pipeline can be swapped as a
 * unit. Two backends ship in the registry (compute_registry.h):
 *
 * - `scalar`: the reference implementation, calling today's
 *   FaultSampler/Decoder batch paths unchanged.
 * - `simd`: word-parallel throughput path -- blocked RNG generation
 *   for the skip-sampler, a branch-free trivial/near-trivial shot
 *   classifier that answers <=2-event syndromes from a lookup table
 *   and masks them out of the general decode, and word-parallel
 *   failure counting over the transposed observable rows.
 *
 * Determinism contract: for a given (root seed, trial index) every
 * backend must produce bit-identical samples, per-shot predictions,
 * and failing-trial sets. The scalar backend defines the reference
 * stream; the cross-backend fuzz suite (tests/test_compute.cc)
 * enforces the identity. A future GPU backend plugs in behind the
 * same registry without touching the driver.
 *
 * Instances are created per Monte-Carlo point (they hold references
 * to that point's sampler and decoder) and shared by all worker
 * threads: implementations keep per-shot scratch thread-local and
 * their statistics atomic.
 */
class ComputeBackend
{
  public:
    virtual ~ComputeBackend() = default;

    /**
     * Classifier-routing totals accumulated over every decodeBatch
     * call on this backend. The four buckets partition the shots:
     * trivial + single + pair + general == shots. Backends without a
     * classifier route everything to `general`.
     */
    struct Stats
    {
        uint64_t shots = 0;   // total shots decoded
        uint64_t trivial = 0; // event-free lanes answered with 0
        uint64_t single = 0;  // 1-event lanes answered from the table
        uint64_t pair = 0;    // 2-event lanes answered from the table
        uint64_t general = 0; // lanes handed to the general decoder
    };

    /** Canonical registry name ("scalar", "simd"). */
    virtual const char* name() const = 0;

    /**
     * Sample the batch's trials (the batch must be reset() for the
     * backend's model): shot s samples trial batch.firstTrial() + s
     * from root.split(that trial).
     */
    virtual void sampleBatch(const Rng& root, ShotBatch& batch) const = 0;

    /**
     * Predict observable flips for every shot: predictions[s] gets
     * the predicted mask for shot s (size >= batch.numShots()).
     */
    virtual void decodeBatch(const ShotBatch& batch,
                             std::span<uint32_t> predictions) const = 0;

    /**
     * Append the global trial indices whose prediction disagrees with
     * the sampled observables, ascending. `failingTrials` is cleared
     * first.
     */
    virtual void countFailures(
        const ShotBatch& batch, std::span<const uint32_t> predictions,
        std::vector<uint64_t>& failingTrials) const = 0;

    /** Snapshot of the routing totals (coherent per field). */
    virtual Stats stats() const = 0;
};

} // namespace vlq

#endif // VLQ_COMPUTE_COMPUTE_BACKEND_H
