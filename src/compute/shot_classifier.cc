#include "compute/shot_classifier.h"

#include <bit>

#include "decoder/decoder.h"
#include "decoder/decoding_graph.h"
#include "dem/detector_model.h"
#include "dem/shot_batch.h"
#include "pauli/bitvec.h"

namespace vlq {

ShotClassifier::ShotClassifier(const DetectorErrorModel& dem,
                               const Decoder& decoder)
{
    const uint32_t n = dem.numDetectors();
    BitVec syndrome(n);
    const DecodingGraph graph = DecodingGraph::build(dem);
    const uint32_t boundary = graph.boundaryNode();

    // A lone event is only decodable when its detector can reach the
    // boundary: an unreachable one (possible in degenerate models,
    // e.g. zero noise) has no defined correction, and eagerly calling
    // decode() on it would panic decoders that require a perfect
    // matching. Unreachable singles stay out of the table and route
    // to the general decoder -- where, like in the scalar backend,
    // they can only arise from syndromes the model cannot produce.
    std::vector<uint8_t> reachable(graph.numNodes(), 0);
    {
        std::vector<uint32_t> stack{boundary};
        reachable[boundary] = 1;
        const DecodingGraph::SoA& soa = graph.soa();
        while (!stack.empty()) {
            const uint32_t v = stack.back();
            stack.pop_back();
            for (uint32_t at = soa.vertexBegin[v];
                 at < soa.vertexBegin[v + 1]; ++at) {
                const uint32_t o = soa.slotOther[at];
                if (!reachable[o]) {
                    reachable[o] = 1;
                    stack.push_back(o);
                }
            }
        }
    }
    single_.assign(n, 0);
    hasSingle_.assign(n, 0);
    for (uint32_t d = 0; d < n; ++d) {
        if (!reachable[d])
            continue;
        syndrome.set(d, true);
        single_[d] = decoder.decode(syndrome);
        hasSingle_[d] = 1;
        syndrome.set(d, false);
    }
    // Candidate pairs are the decoding graph's non-boundary edges:
    // exactly the 2-event signatures a single fault can produce, which
    // dominate the 2-event population below threshold. The edge itself
    // gives every pair a finite matching, so these decodes are safe
    // regardless of boundary reachability.
    pair_.reserve(graph.edges().size());
    for (const DecodingEdge& e : graph.edges()) {
        if (e.b == boundary || e.a == e.b)
            continue;
        syndrome.set(e.a, true);
        syndrome.set(e.b, true);
        uint64_t key = (static_cast<uint64_t>(e.a) << 32) | e.b;
        pair_.emplace(key, decoder.decode(syndrome));
        syndrome.set(e.a, false);
        syndrome.set(e.b, false);
    }
}

ShotClassifier::Stats
ShotClassifier::classify(const ShotBatch& batch,
                         std::span<uint32_t> predictions,
                         std::vector<uint64_t>& generalMask) const
{
    Stats stats;
    const uint32_t words = batch.wordsPerRow();
    const uint32_t numDet = batch.numDetectors();
    const uint32_t shots = batch.numShots();
    generalMask.assign(words, 0);
    for (uint32_t wi = 0; wi < words; ++wi) {
        const uint32_t base = wi * ShotBatch::kWordBits;
        const uint32_t lanes = std::min<uint32_t>(ShotBatch::kWordBits,
                                                  shots - base);
        const uint64_t valid = lanes == ShotBatch::kWordBits
            ? ~uint64_t{0}
            : (uint64_t{1} << lanes) - 1;
        // Carry-save event count saturating at 3: after the sweep,
        // c1/c2/c3 flag lanes with >= 1 / >= 2 / >= 3 events.
        uint64_t c1 = 0, c2 = 0, c3 = 0;
        for (uint32_t d = 0; d < numDet; ++d) {
            const uint64_t r = batch.detectorRow(d)[wi];
            c3 |= c2 & r;
            c2 |= c1 & r;
            c1 |= r;
        }
        const uint64_t erased = batch.numErasureSites() > 0
            ? batch.erasedLanesMask(wi)
            : 0;
        uint64_t general = (c3 | erased) & valid;
        const uint64_t trivial = ~c1 & ~erased & valid;
        uint64_t few = c1 & ~c3 & ~erased & valid; // 1 or 2 events
        uint64_t w = trivial;
        while (w) {
            predictions[base + std::countr_zero(w)] = 0;
            w &= w - 1;
        }
        stats.trivial += static_cast<uint64_t>(std::popcount(trivial));
        if (few) {
            // Gather the (at most two) event indices of each few-lane
            // with one more masked sweep.
            uint32_t ev[ShotBatch::kWordBits][2];
            uint8_t cnt[ShotBatch::kWordBits] = {};
            for (uint32_t d = 0; d < numDet; ++d) {
                uint64_t r = batch.detectorRow(d)[wi] & few;
                while (r) {
                    const uint32_t lane =
                        static_cast<uint32_t>(std::countr_zero(r));
                    ev[lane][cnt[lane]++] = d;
                    r &= r - 1;
                }
            }
            w = few;
            while (w) {
                const uint32_t lane =
                    static_cast<uint32_t>(std::countr_zero(w));
                w &= w - 1;
                if (cnt[lane] == 1) {
                    if (hasSingle_[ev[lane][0]]) {
                        predictions[base + lane] = single_[ev[lane][0]];
                        ++stats.single;
                    } else {
                        general |= uint64_t{1} << lane;
                    }
                    continue;
                }
                const uint64_t key =
                    (static_cast<uint64_t>(ev[lane][0]) << 32)
                    | ev[lane][1];
                auto it = pair_.find(key);
                if (it != pair_.end()) {
                    predictions[base + lane] = it->second;
                    ++stats.pair;
                } else {
                    general |= uint64_t{1} << lane;
                }
            }
        }
        generalMask[wi] = general;
        stats.general += static_cast<uint64_t>(std::popcount(general));
    }
    return stats;
}

} // namespace vlq
