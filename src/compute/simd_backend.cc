#include <atomic>
#include <bit>
#include <memory>
#include <vector>

#include "compute/compute_backend.h"
#include "compute/compute_registry.h"
#include "compute/shot_classifier.h"
#include "decoder/decoder.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "obs/obs.h"

namespace vlq {

namespace {

/**
 * Word-parallel throughput backend:
 *
 * - sampling uses the blocked-RNG skip-sampler variant (uniforms
 *   generated a block at a time with the xoshiro state held in
 *   registers);
 * - decoding first routes the batch through the ShotClassifier --
 *   trivial and table-answerable <=2-event lanes never reach the
 *   decoder -- and hands the general decoder only the remaining lane
 *   mask;
 * - failure counting scatters the sparse predictions into transposed
 *   rows and XORs them against the batch's observable rows, 64 lanes
 *   per word op.
 *
 * Every step is bit-identical to the scalar backend by construction
 * (same per-trial RNG streams, classifier tables filled by the
 * decoder itself, masked decode untouched lanes aside); the
 * cross-backend fuzz suite enforces it.
 */
class SimdBackend final : public ComputeBackend
{
  public:
    SimdBackend(const DetectorErrorModel& dem,
                const FaultSampler& sampler, const Decoder& decoder)
        : sampler_(sampler), decoder_(decoder),
          classifier_(dem, decoder)
    {
    }

    const char* name() const override { return "simd"; }

    void sampleBatch(const Rng& root, ShotBatch& batch) const override
    {
        sampler_.sampleBatchIntoBlocked(root, batch);
    }

    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions) const override
    {
        static thread_local std::vector<uint64_t> generalMask;
        ShotClassifier::Stats st;
        {
            obs::StageTimer classifyTimer("compute.classify");
            st = classifier_.classify(batch, predictions, generalMask);
        }
        decoder_.decodeBatch(batch, predictions, generalMask);
        shots_.fetch_add(batch.numShots(), std::memory_order_relaxed);
        trivial_.fetch_add(st.trivial, std::memory_order_relaxed);
        single_.fetch_add(st.single, std::memory_order_relaxed);
        pair_.fetch_add(st.pair, std::memory_order_relaxed);
        general_.fetch_add(st.general, std::memory_order_relaxed);
        if (obs::metricsEnabled()) {
            static const obs::Counter trivialCtr =
                obs::Counter::get("compute.classified_trivial");
            static const obs::Counter singleCtr =
                obs::Counter::get("compute.classified_single");
            static const obs::Counter pairCtr =
                obs::Counter::get("compute.classified_pair");
            static const obs::Counter generalCtr =
                obs::Counter::get("compute.general_decoded");
            trivialCtr.add(st.trivial);
            singleCtr.add(st.single);
            pairCtr.add(st.pair);
            generalCtr.add(st.general);
        }
    }

    void countFailures(const ShotBatch& batch,
                       std::span<const uint32_t> predictions,
                       std::vector<uint64_t>& failingTrials) const override
    {
        failingTrials.clear();
        const uint32_t words = batch.wordsPerRow();
        const uint32_t numObs = batch.numObservables();
        const uint32_t shots = batch.numShots();
        // Scatter the (mostly zero) predictions into transposed rows;
        // cost is proportional to the predicted flip count, not the
        // shot count.
        static thread_local std::vector<uint64_t> predRows;
        predRows.assign(static_cast<size_t>(numObs) * words, 0);
        for (uint32_t s = 0; s < shots; ++s) {
            uint32_t m = predictions[s];
            while (m) {
                const uint32_t b =
                    static_cast<uint32_t>(std::countr_zero(m));
                predRows[static_cast<size_t>(b) * words + s / 64] |=
                    uint64_t{1} << (s % 64);
                m &= m - 1;
            }
        }
        // A shot fails iff any observable row disagrees: OR of XORs,
        // 64 lanes at a time. Lanes past numShots are zero on both
        // sides, so no tail masking is needed.
        for (uint32_t wi = 0; wi < words; ++wi) {
            uint64_t mismatch = 0;
            for (uint32_t o = 0; o < numObs; ++o)
                mismatch |=
                    predRows[static_cast<size_t>(o) * words + wi]
                    ^ batch.observableRow(o)[wi];
            while (mismatch) {
                const uint32_t lane =
                    static_cast<uint32_t>(std::countr_zero(mismatch));
                failingTrials.push_back(batch.firstTrial()
                                        + wi * ShotBatch::kWordBits
                                        + lane);
                mismatch &= mismatch - 1;
            }
        }
    }

    Stats stats() const override
    {
        Stats st;
        st.shots = shots_.load(std::memory_order_relaxed);
        st.trivial = trivial_.load(std::memory_order_relaxed);
        st.single = single_.load(std::memory_order_relaxed);
        st.pair = pair_.load(std::memory_order_relaxed);
        st.general = general_.load(std::memory_order_relaxed);
        return st;
    }

  private:
    const FaultSampler& sampler_;
    const Decoder& decoder_;
    ShotClassifier classifier_;
    mutable std::atomic<uint64_t> shots_{0};
    mutable std::atomic<uint64_t> trivial_{0};
    mutable std::atomic<uint64_t> single_{0};
    mutable std::atomic<uint64_t> pair_{0};
    mutable std::atomic<uint64_t> general_{0};
};

} // namespace

std::unique_ptr<ComputeBackend>
makeSimdComputeBackend(const DetectorErrorModel& dem,
                       const FaultSampler& sampler,
                       const Decoder& decoder)
{
    return std::make_unique<SimdBackend>(dem, sampler, decoder);
}

} // namespace vlq
