#include <atomic>
#include <memory>

#include "compute/compute_backend.h"
#include "compute/compute_registry.h"
#include "decoder/decoder.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"

namespace vlq {

namespace {

/**
 * The reference backend: today's batch pipeline, verbatim. Sampling
 * is FaultSampler::sampleBatchInto, decoding is the decoder's own
 * decodeBatch over every lane, and failure counting is the per-shot
 * observables() compare. Its output defines the bit-identity contract
 * every other backend is fuzzed against; keep it boring.
 */
class ScalarBackend final : public ComputeBackend
{
  public:
    ScalarBackend(const FaultSampler& sampler, const Decoder& decoder)
        : sampler_(sampler), decoder_(decoder)
    {
    }

    const char* name() const override { return "scalar"; }

    void sampleBatch(const Rng& root, ShotBatch& batch) const override
    {
        sampler_.sampleBatchInto(root, batch);
    }

    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions) const override
    {
        decoder_.decodeBatch(batch, predictions);
        shots_.fetch_add(batch.numShots(), std::memory_order_relaxed);
    }

    void countFailures(const ShotBatch& batch,
                       std::span<const uint32_t> predictions,
                       std::vector<uint64_t>& failingTrials) const override
    {
        failingTrials.clear();
        for (uint32_t s = 0; s < batch.numShots(); ++s)
            if (predictions[s] != batch.observables(s))
                failingTrials.push_back(batch.firstTrial() + s);
    }

    Stats stats() const override
    {
        Stats st;
        st.shots = shots_.load(std::memory_order_relaxed);
        st.general = st.shots; // no classifier: every lane is general
        return st;
    }

  private:
    const FaultSampler& sampler_;
    const Decoder& decoder_;
    mutable std::atomic<uint64_t> shots_{0};
};

} // namespace

std::unique_ptr<ComputeBackend>
makeScalarComputeBackend(const DetectorErrorModel& dem,
                         const FaultSampler& sampler,
                         const Decoder& decoder)
{
    (void)dem;
    return std::make_unique<ScalarBackend>(sampler, decoder);
}

} // namespace vlq
