#ifndef VLQ_COMPUTE_SHOT_CLASSIFIER_H
#define VLQ_COMPUTE_SHOT_CLASSIFIER_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace vlq {

class Decoder;
class DetectorErrorModel;
class ShotBatch;

/**
 * Branch-free trivial/near-trivial shot router for the simd compute
 * backend.
 *
 * Far below threshold most shots carry 0, 1, or 2 detection events
 * (at d=5, p=3.5e-3 that is ~36% of shots), and their corrections are
 * pure functions of at most two detector indices. The classifier
 * answers those lanes from lookup tables and masks them out of the
 * general decode:
 *
 * - lane counting is word-parallel: one carry-save sweep over the
 *   batch's transposed detector rows computes "this lane has >= 1 /
 *   >= 2 / >= 3 events" for 64 shots at a time, with no per-shot
 *   branching;
 * - 0-event lanes predict 0;
 * - 1-event lanes read a per-detector table; 2-event lanes read a
 *   hash table keyed by the detector pair, populated for every
 *   decoding-graph edge (the only pairs single faults produce);
 * - everything else -- >= 3 events, a 2-event pair with no table
 *   entry (two independent faults far apart), or any lane with a
 *   heralded erasure (those need the erasure-aware decode path) --
 *   stays selected in the general-decoder lane mask.
 *
 * Both tables are filled by calling decoder.decode() on the 1- and
 * 2-bit syndromes at construction, so table answers are
 * bit-identical to what the general decoder would have produced --
 * routing through the classifier can never change a prediction, only
 * skip redundant work. Tables are immutable after construction;
 * classify() is const and uses only stack scratch, so one classifier
 * serves all worker threads.
 */
class ShotClassifier
{
  public:
    /** Per-call routing counts; buckets partition the batch's shots. */
    struct Stats
    {
        uint64_t trivial = 0;
        uint64_t single = 0;
        uint64_t pair = 0;
        uint64_t general = 0;
    };

    ShotClassifier(const DetectorErrorModel& dem, const Decoder& decoder);

    /**
     * Route one batch: classified lanes get their `predictions` entry
     * written; the rest have their bit set in `generalMask` (sized to
     * batch.wordsPerRow(), the laneMask layout Decoder::decodeBatch
     * takes). Returns the routing counts for the call.
     */
    Stats classify(const ShotBatch& batch,
                   std::span<uint32_t> predictions,
                   std::vector<uint64_t>& generalMask) const;

  private:
    std::vector<uint32_t> single_;  // prediction per lone detector
    std::vector<uint8_t> hasSingle_; // 0 for boundary-unreachable ones
    // Prediction per decoding-graph edge pair, keyed (lo << 32) | hi.
    std::unordered_map<uint64_t, uint32_t> pair_;
};

} // namespace vlq

#endif // VLQ_COMPUTE_SHOT_CLASSIFIER_H
