#ifndef VLQ_COMPUTE_COMPUTE_REGISTRY_H
#define VLQ_COMPUTE_COMPUTE_REGISTRY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compute/compute_backend.h"

namespace vlq {

class Decoder;
class DetectorErrorModel;
class FaultSampler;

/** Which compute backend a Monte-Carlo run uses. */
enum class ComputeKind : uint8_t { Scalar, Simd };

/**
 * Factory signature every registered backend provides. The backend
 * holds references to all three collaborators; they must outlive it
 * (in practice all four are per-point locals of the driver).
 */
using ComputeMaker = std::unique_ptr<ComputeBackend> (*)(
    const DetectorErrorModel& dem, const FaultSampler& sampler,
    const Decoder& decoder);

/** One entry of the compute-backend registry. */
struct ComputeRegistration
{
    ComputeKind kind;
    const char* name;    // canonical lowercase name
    const char* aliases; // space-separated alternative spellings
    ComputeMaker maker;
};

/**
 * The compute registry: the built-in backends plus anything added via
 * registerComputeBackend(). The Monte-Carlo engine, the benches, and
 * the scan job service all instantiate backends through
 * makeComputeBackend(), so a new backend (GPU, say) only needs a
 * registry entry -- no switch statements to chase. Mirrors the
 * decoder registry (decoder/decoder_factory.h).
 */
const std::vector<ComputeRegistration>& computeRegistry();

/**
 * Register (or, for an existing kind, replace) a backend. Not
 * thread-safe; call during startup before sampling begins.
 */
void registerComputeBackend(const ComputeRegistration& registration);

/** Instantiate the registered backend for `kind`. */
std::unique_ptr<ComputeBackend>
makeComputeBackend(ComputeKind kind, const DetectorErrorModel& dem,
                   const FaultSampler& sampler, const Decoder& decoder);

/**
 * Instantiate by case-insensitive name or alias.
 * @return nullptr when the name matches no registered backend.
 */
std::unique_ptr<ComputeBackend>
makeComputeBackend(std::string_view name, const DetectorErrorModel& dem,
                   const FaultSampler& sampler, const Decoder& decoder);

/** Canonical name of a kind ("scalar", "simd"). */
const char* computeKindName(ComputeKind kind);

/** Parse a name or alias back to a kind. */
std::optional<ComputeKind> parseComputeKind(std::string_view name);

/** Comma-separated canonical names, for usage/error messages. */
std::string computeKindList();

/**
 * Read the backend selection from the environment (variable
 * VLQ_COMPUTE unless overridden). Returns `fallback` when the
 * variable is unset; a set-but-unknown value is a hard error that
 * lists the valid keys -- silently falling back would turn a typo
 * into a garbage run. McOptions::compute defaults through this, so
 * VLQ_COMPUTE is ambient for every driver; explicit --compute flags
 * override it.
 */
ComputeKind computeKindFromEnv(ComputeKind fallback,
                               const char* variable = "VLQ_COMPUTE");

} // namespace vlq

#endif // VLQ_COMPUTE_COMPUTE_REGISTRY_H
