#ifndef VLQ_MSD_PROTOCOLS_H
#define VLQ_MSD_PROTOCOLS_H

#include <string>
#include <vector>

namespace vlq {

/**
 * Resource model of a T-state distillation protocol (paper Sec. VII).
 *
 * All three protocols implement 15-to-1 Bravyi-Haah distillation; they
 * differ in layout. "Fast" and "Small" are the published lattice-surgery
 * layouts of Litinski (arXiv:1905.06903 and Quantum 3, 128); "VQubits"
 * is the paper's protocol using one transmon patch with 6 logical qubits
 * virtualized in the attached cavities and transversal CNOTs.
 */
struct DistillationProtocol
{
    std::string name;

    /** Patches of chip area one running copy occupies. */
    double patchesPerCopy = 1.0;

    /** Timesteps between successive T states from one copy. */
    double stepsPerTState = 1.0;

    /** Transmons per copy at d = 5 (Table II). */
    int transmonsAtD5 = 0;

    /** Depth-10 cavities per copy at d = 5 (Table II). */
    int cavitiesAtD5 = 0;

    /** Total qubits at d = 5 counting each cavity as 10 (Table II). */
    int totalQubitsAtD5() const
    {
        return transmonsAtD5 + 10 * cavitiesAtD5;
    }

    /**
     * T states per timestep when `patches` patches of chip are filled
     * with copies (fractional copies allowed, as in the paper's Fig. 13
     * arithmetic).
     */
    double ratePerStep(double patches) const
    {
        return patches / patchesPerCopy / stepsPerTState;
    }

    /** Patches needed to produce one T state per timestep (Fig. 13b). */
    double patchesForUnitRate() const
    {
        return patchesPerCopy * stepsPerTState;
    }
};

/** Fast lattice-surgery block [Litinski'19a]: 1 T / 6 steps / ~30
 *  patches, 1499 transmons at d=5. */
DistillationProtocol fastLatticeProtocol();

/** Small lattice-surgery block [Litinski'19b]: 1 T / 11 steps / 11
 *  patches, 549 transmons at d=5. */
DistillationProtocol smallLatticeProtocol();

/**
 * The paper's VQubits protocol: one patch of transmons, 6 logical
 * qubits in cavities, 110 steps solo or 99 in lock-step pairs.
 * @param natural select the Natural (49-transmon) or Compact
 *        (29-transmon) embedding for the patch.
 * @param paired  lock-step pairs (99 steps) vs solo (110 steps).
 */
DistillationProtocol vqubitsProtocol(bool natural = true,
                                     bool paired = true);

/** All Fig. 13 protocols in display order. */
std::vector<DistillationProtocol> figure13Protocols();

} // namespace vlq

#endif // VLQ_MSD_PROTOCOLS_H
