#ifndef VLQ_MSD_FACTORY_H
#define VLQ_MSD_FACTORY_H

#include "arch/device.h"
#include "msd/distillation_circuit.h"
#include "msd/protocols.h"

namespace vlq {

/** Result of scheduling a distillation program on the 2.5D machine. */
struct FactoryScheduleResult
{
    /** Makespan in timesteps (d error-correction cycles each). */
    int timesteps = 0;

    /** Peak logical qubits simultaneously allocated. */
    int peakQubits = 0;

    /** Worst error-correction staleness during the run. */
    int maxStaleness = 0;

    /** Number of transversal CNOTs issued. */
    int transversalCnots = 0;
};

/**
 * Schedule the 15-to-1 program on a single VQubits stack using
 * transversal CNOTs, and measure its makespan. The paper reports 110
 * timesteps for this protocol (99 in lock-step pairs); the measured
 * makespan of our scheduler is reported alongside those constants by
 * the Fig. 13 benchmark.
 */
FactoryScheduleResult scheduleFifteenToOne(const DeviceConfig& device);

/** Fig. 13a: T states per step with `patches` patches filled. */
struct RateRow
{
    std::string name;
    double rate = 0.0;
    double patchesForUnitRate = 0.0;
};

/** Compute Fig. 13 rows for the given chip budget in patches. */
std::vector<RateRow> figure13Rows(double patches);

} // namespace vlq

#endif // VLQ_MSD_FACTORY_H
