#ifndef VLQ_MSD_DISTILLATION_CIRCUIT_H
#define VLQ_MSD_DISTILLATION_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace vlq {

/** Kinds of logical operations in a distillation program. */
enum class LogicalOpKind : uint8_t
{
    InitZero,    // |0>
    InitPlus,    // |+>
    InitT,       // inject a raw (noisy) T state
    Cnot,
    MeasureZ,
    MeasureX,
};

/** One logical operation over program qubit ids. */
struct LogicalOp
{
    LogicalOpKind kind;
    int q0 = -1;
    int q1 = -1; // CNOT target

    std::string str() const;
};

/**
 * The 15-to-1 T-state distillation program (Bravyi-Haah [17], laid out
 * as in the paper's Sec. VII): 16 qubit initializations, 35 CNOTs and
 * 15 measurements, organized in five rounds of three raw T states so
 * the whole program runs within 6 concurrently-live logical qubits --
 * matching the paper's "single patch of transmons with 6 logical qubits
 * stored in the attached cavities".
 *
 * The program below reproduces the paper's exact op counts and
 * dependency shape for scheduling purposes; see DESIGN.md Sec. 5 for
 * the substitution note (the paper gives counts, not the netlist).
 */
struct DistillationProgram
{
    int numQubits = 0;            // distinct program qubit ids
    int maxLiveQubits = 0;        // peak simultaneously-live qubits
    std::vector<LogicalOp> ops;

    int countOps(LogicalOpKind kind) const;

    static DistillationProgram fifteenToOne();
};

} // namespace vlq

#endif // VLQ_MSD_DISTILLATION_CIRCUIT_H
