#include "msd/factory.h"

#include <map>

#include "core/logical_machine.h"
#include "util/logging.h"

namespace vlq {

FactoryScheduleResult
scheduleFifteenToOne(const DeviceConfig& device)
{
    VLQ_ASSERT(device.cavityDepth >= 7,
               "15-to-1 needs 6 resident qubits + 1 free mode");
    DistillationProgram prog = DistillationProgram::fifteenToOne();
    LogicalMachine machine(device);

    FactoryScheduleResult result;
    std::map<int, LogicalQubit> live; // program qubit -> machine handle
    PhysicalAddress stack{0, 0};

    for (const auto& op : prog.ops) {
        switch (op.kind) {
          case LogicalOpKind::InitZero:
          case LogicalOpKind::InitPlus:
          case LogicalOpKind::InitT: {
            LogicalQubit q = machine.allocAt(stack);
            live[op.q0] = q;
            machine.initQubit(q);
            result.peakQubits = std::max(result.peakQubits,
                                         machine.numAllocated());
            break;
          }
          case LogicalOpKind::Cnot:
            machine.cnotTransversal(live.at(op.q0), live.at(op.q1));
            ++result.transversalCnots;
            break;
          case LogicalOpKind::MeasureZ:
          case LogicalOpKind::MeasureX:
            machine.measureQubit(live.at(op.q0),
                                 op.kind == LogicalOpKind::MeasureZ
                                     ? "Z" : "X");
            live.erase(op.q0);
            break;
        }
    }
    result.timesteps = machine.currentStep();
    result.maxStaleness = machine.maxStaleness();
    VLQ_ASSERT(result.peakQubits <= prog.maxLiveQubits,
               "live-qubit budget exceeded");
    return result;
}

std::vector<RateRow>
figure13Rows(double patches)
{
    std::vector<RateRow> rows;
    for (const auto& proto : figure13Protocols()) {
        RateRow row;
        row.name = proto.name;
        row.rate = proto.ratePerStep(patches);
        row.patchesForUnitRate = proto.patchesForUnitRate();
        rows.push_back(row);
    }
    return rows;
}

} // namespace vlq
