#include "msd/distillation_circuit.h"

#include <bit>
#include <sstream>

#include "util/logging.h"

namespace vlq {

std::string
LogicalOp::str() const
{
    std::ostringstream ss;
    switch (kind) {
      case LogicalOpKind::InitZero: ss << "init|0> q" << q0; break;
      case LogicalOpKind::InitPlus: ss << "init|+> q" << q0; break;
      case LogicalOpKind::InitT: ss << "injectT q" << q0; break;
      case LogicalOpKind::Cnot: ss << "cnot q" << q0 << " -> q" << q1;
        break;
      case LogicalOpKind::MeasureZ: ss << "measZ q" << q0; break;
      case LogicalOpKind::MeasureX: ss << "measX q" << q0; break;
    }
    return ss.str();
}

int
DistillationProgram::countOps(LogicalOpKind kind) const
{
    int n = 0;
    for (const auto& op : ops)
        if (op.kind == kind)
            ++n;
    return n;
}

DistillationProgram
DistillationProgram::fifteenToOne()
{
    // Qubit ids: 0 = output, 1..4 = parity accumulators (the four
    // "corner" T states e_1..e_4 of the punctured Reed-Muller code),
    // 5..15 = the remaining eleven T states, injected one at a time so
    // at most 6 logical qubits are ever live (output + 4 accumulators
    // + 1 rotating injection slot) -- the paper's cavity budget.
    DistillationProgram prog;
    prog.numQubits = 16;
    auto& ops = prog.ops;

    ops.push_back(LogicalOp{LogicalOpKind::InitPlus, 0, -1});
    for (int a = 1; a <= 4; ++a)
        ops.push_back(LogicalOp{LogicalOpKind::InitT, a, -1});

    // The seven positions whose parity folds into the output qubit:
    // all five codewords of weight >= 3 plus two weight-2 words.
    auto toOutput = [](int v) {
        int w = std::popcount(static_cast<unsigned>(v));
        return w >= 3 || v == 3 || v == 5;
    };

    int nextId = 5;
    for (int v = 1; v <= 15; ++v) {
        if (std::popcount(static_cast<unsigned>(v)) == 1)
            continue; // corners are the accumulators themselves
        int q = nextId++;
        ops.push_back(LogicalOp{LogicalOpKind::InitT, q, -1});
        for (int a = 0; a < 4; ++a) {
            if (v & (1 << a))
                ops.push_back(LogicalOp{LogicalOpKind::Cnot, q, 1 + a});
        }
        if (toOutput(v))
            ops.push_back(LogicalOp{LogicalOpKind::Cnot, q, 0});
        ops.push_back(LogicalOp{LogicalOpKind::MeasureX, q, -1});
    }
    for (int a = 1; a <= 4; ++a)
        ops.push_back(LogicalOp{LogicalOpKind::MeasureZ, a, -1});

    prog.maxLiveQubits = 6;

    // Invariants from the paper: 16 inits, 35 CNOTs, 15 measurements.
    int inits = prog.countOps(LogicalOpKind::InitZero)
              + prog.countOps(LogicalOpKind::InitPlus)
              + prog.countOps(LogicalOpKind::InitT);
    VLQ_ASSERT(inits == 16, "15-to-1 must have 16 initializations");
    VLQ_ASSERT(prog.countOps(LogicalOpKind::Cnot) == 35,
               "15-to-1 must have 35 CNOTs");
    int meas = prog.countOps(LogicalOpKind::MeasureZ)
             + prog.countOps(LogicalOpKind::MeasureX);
    VLQ_ASSERT(meas == 15, "15-to-1 must have 15 measurements");
    return prog;
}

} // namespace vlq
