#include "msd/protocols.h"

#include "arch/device.h"

namespace vlq {

DistillationProtocol
fastLatticeProtocol()
{
    DistillationProtocol p;
    p.name = "Fast";
    p.patchesPerCopy = 30.0;
    p.stepsPerTState = 6.0;
    p.transmonsAtD5 = 1499;
    p.cavitiesAtD5 = 0;
    return p;
}

DistillationProtocol
smallLatticeProtocol()
{
    DistillationProtocol p;
    p.name = "Small";
    p.patchesPerCopy = 11.0;
    p.stepsPerTState = 11.0;
    p.transmonsAtD5 = 549;
    p.cavitiesAtD5 = 0;
    return p;
}

DistillationProtocol
vqubitsProtocol(bool natural, bool paired)
{
    DistillationProtocol p;
    p.name = natural ? "VQubits (natural)" : "VQubits (compact)";
    p.patchesPerCopy = 1.0;
    // 110 timesteps per T state on a single patch; lock-step pairs
    // amortize to 99 (paper Sec. VII).
    p.stepsPerTState = paired ? 99.0 : 110.0;
    PatchCost cost = patchCost(
        natural ? EmbeddingKind::Natural : EmbeddingKind::Compact, 5);
    p.transmonsAtD5 = cost.transmons;
    p.cavitiesAtD5 = cost.cavities;
    return p;
}

std::vector<DistillationProtocol>
figure13Protocols()
{
    return {fastLatticeProtocol(), smallLatticeProtocol(),
            vqubitsProtocol(true, true)};
}

} // namespace vlq
