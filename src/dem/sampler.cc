#include "dem/sampler.h"

namespace vlq {

FaultSampler::FaultSampler(const DetectorErrorModel& dem)
    : numDetectors_(dem.numDetectors())
{
    channels_.reserve(dem.channels().size());
    for (const auto& ch : dem.channels()) {
        FlatChannel fc;
        fc.begin = static_cast<uint32_t>(outcomes_.size());
        double cum = 0.0;
        for (const auto& o : ch.outcomes) {
            FlatOutcome fo;
            cum += o.probability;
            fo.cumulative = cum;
            fo.begin = static_cast<uint32_t>(detectorIndices_.size());
            detectorIndices_.insert(detectorIndices_.end(),
                                    o.detectors.begin(), o.detectors.end());
            fo.end = static_cast<uint32_t>(detectorIndices_.size());
            fo.observables = o.observables;
            outcomes_.push_back(fo);
        }
        fc.end = static_cast<uint32_t>(outcomes_.size());
        fc.total = cum;
        if (fc.end > fc.begin)
            channels_.push_back(fc);
    }
}

FaultSampler::Shot
FaultSampler::sample(Rng& rng) const
{
    Shot shot;
    shot.detectors.resize(numDetectors_);
    sampleInto(rng, shot.detectors, shot.observables);
    return shot;
}

void
FaultSampler::sampleInto(Rng& rng, BitVec& detectors,
                         uint32_t& observables) const
{
    detectors.clear();
    observables = 0;
    for (const auto& ch : channels_) {
        double u = rng.nextDouble();
        if (u >= ch.total)
            continue;
        // Linear scan: channels have at most 15 outcomes.
        for (uint32_t i = ch.begin; i < ch.end; ++i) {
            const FlatOutcome& o = outcomes_[i];
            if (u < o.cumulative) {
                for (uint32_t j = o.begin; j < o.end; ++j)
                    detectors.flip(detectorIndices_[j]);
                observables ^= o.observables;
                break;
            }
        }
    }
}

} // namespace vlq
