#include "dem/sampler.h"

#include <bit>
#include <cmath>
#include <map>

#include "obs/obs.h"
#include "util/logging.h"

namespace vlq {

FaultSampler::FaultSampler(const DetectorErrorModel& dem)
    : numDetectors_(dem.numDetectors()),
      numObservables_(dem.numObservables()),
      numErasureSites_(dem.numErasureSites())
{
    channels_.reserve(dem.channels().size());
    for (const auto& ch : dem.channels()) {
        FlatChannel fc;
        fc.erasureSite = ch.erasureSite;
        fc.begin = static_cast<uint32_t>(outcomes_.size());
        double cum = 0.0;
        for (const auto& o : ch.outcomes) {
            FlatOutcome fo;
            cum += o.probability;
            fo.cumulative = cum;
            fo.begin = static_cast<uint32_t>(detectorIndices_.size());
            detectorIndices_.insert(detectorIndices_.end(),
                                    o.detectors.begin(), o.detectors.end());
            fo.end = static_cast<uint32_t>(detectorIndices_.size());
            fo.observables = o.observables;
            outcomes_.push_back(fo);
        }
        fc.end = static_cast<uint32_t>(outcomes_.size());
        fc.total = cum;
        if (fc.end > fc.begin)
            channels_.push_back(fc);
    }

    // Group channels by firing probability for the skip-sampling path.
    // Noise models use a handful of distinct rates, so the group count
    // is small; std::map keeps group order (and therefore the sampled
    // stream) deterministic for a given model.
    std::map<double, std::vector<uint32_t>> byProb;
    for (uint32_t c = 0; c < channels_.size(); ++c)
        if (channels_[c].total > 0.0)
            byProb[channels_[c].total].push_back(c);
    for (const auto& [p, chans] : byProb) {
        ChannelGroup g;
        g.probability = p;
        g.alwaysFires = p >= 1.0;
        g.invLogOneMinusP =
            g.alwaysFires ? 0.0 : 1.0 / std::log1p(-p);
        g.fullExitU = g.alwaysFires
            ? 1.0
            : 1.0 - std::pow(1.0 - p,
                             static_cast<double>(chans.size()));
        g.begin = static_cast<uint32_t>(groupChannels_.size());
        groupChannels_.insert(groupChannels_.end(), chans.begin(),
                              chans.end());
        g.end = static_cast<uint32_t>(groupChannels_.size());
        groups_.push_back(g);
    }
}

FaultSampler::Shot
FaultSampler::sample(Rng& rng) const
{
    Shot shot;
    shot.detectors.resize(numDetectors_);
    shot.erasures.resize(numErasureSites_);
    sampleInto(rng, shot.detectors, shot.observables, shot.erasures);
    return shot;
}

void
FaultSampler::sampleInto(Rng& rng, BitVec& detectors,
                         uint32_t& observables) const
{
    // Heralds discarded; the RNG stream is identical either way.
    thread_local BitVec scratchErasures;
    scratchErasures.resize(numErasureSites_);
    sampleInto(rng, detectors, observables, scratchErasures);
}

void
FaultSampler::sampleInto(Rng& rng, BitVec& detectors,
                         uint32_t& observables, BitVec& erasures) const
{
    detectors.clear();
    observables = 0;
    erasures.clear();
    for (const auto& ch : channels_) {
        double u = rng.nextDouble();
        if (u >= ch.total)
            continue;
        if (ch.erasureSite >= 0)
            erasures.set(static_cast<uint32_t>(ch.erasureSite), true);
        // Linear scan: channels have at most 15 outcomes.
        for (uint32_t i = ch.begin; i < ch.end; ++i) {
            const FlatOutcome& o = outcomes_[i];
            if (u < o.cumulative) {
                for (uint32_t j = o.begin; j < o.end; ++j)
                    detectors.flip(detectorIndices_[j]);
                observables ^= o.observables;
                break;
            }
        }
    }
}

void
FaultSampler::fireChannel(const FlatChannel& ch, double u,
                          uint64_t laneBit, uint32_t laneWord,
                          ShotBatch& batch) const
{
    if (ch.erasureSite >= 0)
        batch.erasureRow(static_cast<uint32_t>(ch.erasureSite))
            [laneWord] |= laneBit;
    // u is uniform in [0, ch.total): the outcome choice conditioned on
    // the channel firing, matching the scalar path's distribution. The
    // last outcome also catches u rounding up to exactly ch.total --
    // the skip already committed this channel to firing, so falling
    // through without applying anything would skew the distribution.
    for (uint32_t i = ch.begin; i < ch.end; ++i) {
        const FlatOutcome& o = outcomes_[i];
        if (u < o.cumulative || i + 1 == ch.end) {
            for (uint32_t j = o.begin; j < o.end; ++j)
                batch.detectorRow(detectorIndices_[j])[laneWord] ^=
                    laneBit;
            uint32_t mask = o.observables;
            while (mask) {
                uint32_t b =
                    static_cast<uint32_t>(std::countr_zero(mask));
                batch.observableRow(b)[laneWord] ^= laneBit;
                mask &= mask - 1;
            }
            return;
        }
    }
}

void
FaultSampler::sampleBatchInto(const Rng& root, ShotBatch& batch) const
{
    VLQ_ASSERT(batch.numDetectors() == numDetectors_
                   && batch.numObservables() == numObservables_,
               "ShotBatch not reset for this sampler's model");
    VLQ_ASSERT(batch.numErasureSites() == numErasureSites_,
               "ShotBatch erasure rows not sized for this model");
    obs::StageTimer obsTimer("sampler.sample_batch");
    const uint32_t shots = batch.numShots();
    for (uint32_t s = 0; s < shots; ++s) {
        Rng rng = root.split(batch.firstTrial() + s);
        const uint32_t laneWord = s / ShotBatch::kWordBits;
        const uint64_t laneBit = uint64_t{1}
            << (s % ShotBatch::kWordBits);
        for (const ChannelGroup& g : groups_) {
            if (g.alwaysFires) {
                for (uint32_t i = g.begin; i < g.end; ++i) {
                    const FlatChannel& ch =
                        channels_[groupChannels_[i]];
                    fireChannel(ch, rng.nextDouble() * ch.total,
                                laneBit, laneWord, batch);
                }
                continue;
            }
            // Geometric skip within the group: draw how many channels
            // stay silent before the next firing one. Expected draws
            // per trial are O(groups + faults), not O(channels).
            uint32_t i = g.begin;
            while (i < g.end) {
                double u = rng.nextDouble();
                // Common case: the whole group stays silent. The exit
                // test u >= 1-(1-p)^remaining equals "skip >= remaining"
                // without paying the log; it is exact for the first
                // draw (remaining == group size) and skipped after a
                // fire, where the log path decides as before.
                if (i == g.begin && u >= g.fullExitU)
                    break;
                double k = std::floor(std::log1p(-u)
                                      * g.invLogOneMinusP);
                if (!(k < static_cast<double>(g.end - i)))
                    break;
                i += static_cast<uint32_t>(k);
                const FlatChannel& ch = channels_[groupChannels_[i]];
                fireChannel(ch, rng.nextDouble() * ch.total, laneBit,
                            laneWord, batch);
                ++i;
            }
        }
    }
    if (obs::metricsEnabled()) {
        static const obs::Counter batches =
            obs::Counter::get("sampler.batches");
        static const obs::Counter shotsSampled =
            obs::Counter::get("sampler.shots");
        batches.add(1);
        shotsSampled.add(shots);
    }
}

void
FaultSampler::sampleBatchIntoBlocked(const Rng& root,
                                     ShotBatch& batch) const
{
    VLQ_ASSERT(batch.numDetectors() == numDetectors_
                   && batch.numObservables() == numObservables_,
               "ShotBatch not reset for this sampler's model");
    VLQ_ASSERT(batch.numErasureSites() == numErasureSites_,
               "ShotBatch erasure rows not sized for this model");
    obs::StageTimer obsTimer("sampler.sample_batch");
    // Uniforms are drawn kBlock at a time into a stack buffer. A trial
    // may generate a few more values than it consumes; that is
    // harmless because every trial owns a private split stream, and
    // within the trial the buffered values are consumed in generation
    // order -- the exact sequence sampleBatchInto() would draw.
    constexpr uint32_t kBlock = 32;
    double u[kBlock];
    const uint32_t shots = batch.numShots();
    for (uint32_t s = 0; s < shots; ++s) {
        Rng rng = root.split(batch.firstTrial() + s);
        uint32_t at = kBlock;
        auto nextU = [&]() {
            if (at == kBlock) {
                rng.fillDoubles(u, kBlock);
                at = 0;
            }
            return u[at++];
        };
        const uint32_t laneWord = s / ShotBatch::kWordBits;
        const uint64_t laneBit = uint64_t{1}
            << (s % ShotBatch::kWordBits);
        for (const ChannelGroup& g : groups_) {
            if (g.alwaysFires) {
                for (uint32_t i = g.begin; i < g.end; ++i) {
                    const FlatChannel& ch =
                        channels_[groupChannels_[i]];
                    fireChannel(ch, nextU() * ch.total, laneBit,
                                laneWord, batch);
                }
                continue;
            }
            uint32_t i = g.begin;
            while (i < g.end) {
                double v = nextU();
                if (i == g.begin && v >= g.fullExitU)
                    break;
                double k = std::floor(std::log1p(-v)
                                      * g.invLogOneMinusP);
                if (!(k < static_cast<double>(g.end - i)))
                    break;
                i += static_cast<uint32_t>(k);
                const FlatChannel& ch = channels_[groupChannels_[i]];
                fireChannel(ch, nextU() * ch.total, laneBit, laneWord,
                            batch);
                ++i;
            }
        }
    }
    if (obs::metricsEnabled()) {
        static const obs::Counter batches =
            obs::Counter::get("sampler.batches");
        static const obs::Counter shotsSampled =
            obs::Counter::get("sampler.shots");
        batches.add(1);
        shotsSampled.add(shots);
    }
}

} // namespace vlq
