#ifndef VLQ_DEM_SHOT_BATCH_H
#define VLQ_DEM_SHOT_BATCH_H

#include <cstdint>
#include <vector>

#include "pauli/bitvec.h"

namespace vlq {

/**
 * A batch of sampled shots in transposed, bit-packed layout.
 *
 * Instead of one detector BitVec per shot, the batch stores one word
 * row per *detector*: bit s of detector d's row is shot s's outcome
 * for that detector (and likewise one row per observable). Shots pack
 * 64 to a word, so whole-batch operations -- "which shots saw any
 * event at all", "which shots failed" -- collapse to a handful of
 * word ops, and decoders can gather per-shot event lists with one
 * sparse sweep over the rows instead of re-scanning a BitVec per
 * shot. This is the layout Stim-style frame samplers use to reach
 * orders-of-magnitude sampler throughput.
 *
 * The batch also records which Monte-Carlo trials it covers
 * (`firstTrial`, `numShots`): shot s is trial firstTrial + s, which
 * is what keeps batched runs bit-identical to any other batching of
 * the same trials.
 */
class ShotBatch
{
  public:
    /** Shots per packed word. */
    static constexpr uint32_t kWordBits = 64;

    ShotBatch() = default;

    /**
     * Size for a batch of `numShots` shots of a model with the given
     * detector/observable counts, covering trials
     * [firstTrial, firstTrial + numShots). Zeroes all rows. Backing
     * storage is reused across calls (no steady-state allocation).
     * `numErasureSites` adds one row per heralded-erasure site; 0 for
     * models without erasure (no overhead).
     */
    void reset(uint32_t numDetectors, uint32_t numObservables,
               uint32_t numShots, uint64_t firstTrial = 0,
               uint32_t numErasureSites = 0);

    uint32_t numShots() const { return numShots_; }
    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }
    uint32_t numErasureSites() const { return numErasureSites_; }
    uint64_t firstTrial() const { return firstTrial_; }

    /** Words per row: ceil(numShots / 64). */
    uint32_t wordsPerRow() const { return wordsPerRow_; }

    /** Row of packed shot bits for one detector. */
    uint64_t* detectorRow(uint32_t detector)
    {
        return detectorBits_.wordData()
            + static_cast<size_t>(detector) * wordsPerRow_;
    }
    const uint64_t* detectorRow(uint32_t detector) const
    {
        return detectorBits_.wordData()
            + static_cast<size_t>(detector) * wordsPerRow_;
    }

    /** Row of packed shot bits for one observable. */
    uint64_t* observableRow(uint32_t observable)
    {
        return observableBits_.wordData()
            + static_cast<size_t>(observable) * wordsPerRow_;
    }
    const uint64_t* observableRow(uint32_t observable) const
    {
        return observableBits_.wordData()
            + static_cast<size_t>(observable) * wordsPerRow_;
    }

    /** Row of packed herald bits for one erasure site. */
    uint64_t* erasureRow(uint32_t site)
    {
        return erasureBits_.wordData()
            + static_cast<size_t>(site) * wordsPerRow_;
    }
    const uint64_t* erasureRow(uint32_t site) const
    {
        return erasureBits_.wordData()
            + static_cast<size_t>(site) * wordsPerRow_;
    }

    /** Shot s's outcome for one detector. */
    bool detector(uint32_t shot, uint32_t det) const
    {
        return (detectorRow(det)[shot / kWordBits]
                >> (shot % kWordBits)) & 1;
    }

    /** Whether erasure site `site` was heralded in shot s. */
    bool erased(uint32_t shot, uint32_t site) const
    {
        return (erasureRow(site)[shot / kWordBits]
                >> (shot % kWordBits)) & 1;
    }

    /** Shot s's observable flips, re-assembled into a bitmask. */
    uint32_t observables(uint32_t shot) const;

    /**
     * Extract shot s's detector column into a per-shot BitVec (sized
     * to numDetectors). The bridge to scalar decode().
     */
    void extractShot(uint32_t shot, BitVec& detectors) const;

    /**
     * Word of lanes with at least one detection event: bit s of word
     * `wordIndex` is set iff shot wordIndex*64+s has any event. One
     * OR-sweep over the rows; lets batch decoders skip trivial shots
     * without touching them.
     */
    uint64_t nonTrivialMask(uint32_t wordIndex) const;

    /**
     * Word of lanes with at least one heralded erasure: bit s of word
     * `wordIndex` is set iff shot wordIndex*64+s saw any herald. Lets
     * erasure-aware decoders keep the erasure-free fast path.
     */
    uint64_t erasedLanesMask(uint32_t wordIndex) const;

    /**
     * Gather per-shot detection-event lists in one sparse sweep:
     * events[s] receives the flipped detector indices of shot s,
     * ascending (same order as BitVec::onesIndices). `events` is
     * resized/cleared; inner vectors keep their capacity.
     */
    void gatherEvents(std::vector<std::vector<uint32_t>>& events) const;

    /**
     * Gather per-shot heralded-erasure site lists, ascending, same
     * contract as gatherEvents.
     */
    void gatherErasures(std::vector<std::vector<uint32_t>>& sites) const;

  private:
    uint32_t numShots_ = 0;
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    uint32_t numErasureSites_ = 0;
    uint32_t wordsPerRow_ = 0;
    uint64_t firstTrial_ = 0;
    BitVec detectorBits_;   // numDetectors rows of wordsPerRow words
    BitVec observableBits_; // numObservables rows of wordsPerRow words
    BitVec erasureBits_;    // numErasureSites rows of wordsPerRow words
};

} // namespace vlq

#endif // VLQ_DEM_SHOT_BATCH_H
