#ifndef VLQ_DEM_DETECTOR_MODEL_H
#define VLQ_DEM_DETECTOR_MODEL_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace vlq {

/**
 * One possible outcome of a fault channel: with `probability`, the
 * listed detectors and observables flip.
 */
struct FaultOutcome
{
    double probability = 0.0;
    std::vector<uint32_t> detectors;   // sorted, deduplicated
    uint32_t observables = 0;          // bitmask over observables
};

/**
 * An independent physical fault mechanism (one noise channel of the
 * circuit). Outcomes are mutually exclusive; probabilities sum to at
 * most 1 (the remainder is "no error"). Outcomes whose signature is
 * empty are dropped -- they are indistinguishable from no error.
 */
struct FaultChannel
{
    /** Index of the originating operation in the source circuit. */
    uint32_t opIndex = 0;

    std::vector<FaultOutcome> outcomes;

    /** Total probability that any (visible) outcome fires. */
    double totalProbability() const;
};

/** Metadata of one detector, copied from the circuit. */
struct DetectorMeta
{
    CheckBasis basis = CheckBasis::Z;
    float x = 0.0f;
    float y = 0.0f;
    float t = 0.0f;
};

/**
 * Detector error model: the complete map from physical fault mechanisms
 * to detector/observable flips for a given noisy circuit.
 *
 * Built by backward sensitivity propagation: walking the circuit in
 * reverse while maintaining, per qubit, the set of detectors an X or Z
 * error at that point would flip. This is O(ops x detectors/64) -- far
 * cheaper than forward-propagating every fault -- and exact for
 * Clifford+Pauli circuits. The forward Pauli-frame simulator provides an
 * independent implementation used to cross-validate this builder in the
 * test suite.
 */
class DetectorErrorModel
{
  public:
    /** Build the model for a circuit with detectors/observables. */
    static DetectorErrorModel build(const Circuit& circuit);

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    const std::vector<FaultChannel>& channels() const { return channels_; }

    const std::vector<DetectorMeta>& detectorMeta() const { return meta_; }

    /** Sum over channels of their total probability (diagnostics). */
    double totalFaultMass() const;

  private:
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    std::vector<FaultChannel> channels_;
    std::vector<DetectorMeta> meta_;
};

} // namespace vlq

#endif // VLQ_DEM_DETECTOR_MODEL_H
