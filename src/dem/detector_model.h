#ifndef VLQ_DEM_DETECTOR_MODEL_H
#define VLQ_DEM_DETECTOR_MODEL_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace vlq {

/**
 * One possible outcome of a fault channel: with `probability`, the
 * listed detectors and observables flip.
 */
struct FaultOutcome
{
    double probability = 0.0;
    std::vector<uint32_t> detectors;   // sorted, deduplicated
    uint32_t observables = 0;          // bitmask over observables
};

/**
 * An independent physical fault mechanism (one noise channel of the
 * circuit). Outcomes are mutually exclusive; probabilities sum to at
 * most 1 (the remainder is "no error"). Outcomes whose signature is
 * empty are dropped -- they are indistinguishable from no error --
 * except for heralded channels, which keep them so the herald fires
 * with the channel's full physical probability.
 */
struct FaultChannel
{
    /** Index of the originating operation in the source circuit. */
    uint32_t opIndex = 0;

    std::vector<FaultOutcome> outcomes;

    /** True for heralded-erasure channels: firing raises a herald. */
    bool heralded = false;

    /**
     * Dense index of this channel among heralded channels (the bit it
     * sets in a shot's erasure mask), or -1 when not heralded.
     */
    int32_t erasureSite = -1;

    /**
     * Total probability that any recorded outcome fires. Outcomes of
     * one channel are mutually exclusive, so this is their plain sum
     * (independent channels sharing a signature are instead combined
     * with the XOR rule downstream, in the decoding graph).
     */
    double totalProbability() const;
};

/** Metadata of one detector, copied from the circuit. */
struct DetectorMeta
{
    CheckBasis basis = CheckBasis::Z;
    float x = 0.0f;
    float y = 0.0f;
    float t = 0.0f;
};

/**
 * Detector error model: the complete map from physical fault mechanisms
 * to detector/observable flips for a given noisy circuit.
 *
 * Built by backward sensitivity propagation: walking the circuit in
 * reverse while maintaining, per qubit, the set of detectors an X or Z
 * error at that point would flip. This is O(ops x detectors/64) -- far
 * cheaper than forward-propagating every fault -- and exact for
 * Clifford+Pauli circuits. The forward Pauli-frame simulator provides an
 * independent implementation used to cross-validate this builder in the
 * test suite.
 */
class DetectorErrorModel
{
  public:
    /** Build the model for a circuit with detectors/observables. */
    static DetectorErrorModel build(const Circuit& circuit);

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    /** Number of heralded-erasure sites (bits in a shot erasure mask). */
    uint32_t numErasureSites() const { return numErasureSites_; }

    const std::vector<FaultChannel>& channels() const { return channels_; }

    const std::vector<DetectorMeta>& detectorMeta() const { return meta_; }

    /** Sum over channels of their total probability (diagnostics). */
    double totalFaultMass() const;

  private:
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    uint32_t numErasureSites_ = 0;
    std::vector<FaultChannel> channels_;
    std::vector<DetectorMeta> meta_;
};

} // namespace vlq

#endif // VLQ_DEM_DETECTOR_MODEL_H
