#include "dem/detector_model.h"

#include <algorithm>

#include "pauli/bitvec.h"
#include "util/logging.h"

namespace vlq {

double
FaultChannel::totalProbability() const
{
    // Outcomes of one channel are mutually exclusive physical events, so
    // exclusive summation is exact here. The XOR combination rule
    // p = p1(1-p2) + p2(1-p1) applies only across *independent* channels
    // and lives in DecodingGraph, where contributions from different
    // channels meet on a shared edge.
    double p = 0.0;
    for (const auto& o : outcomes)
        p += o.probability;
    VLQ_ASSERT(p <= 1.0 + 1e-9, "fault channel mass exceeds 1");
    return p;
}

namespace {

/** Convert a signature bit vector into a FaultOutcome (or empty). */
FaultOutcome
toOutcome(const BitVec& sig, uint32_t numDetectors, double probability)
{
    FaultOutcome out;
    out.probability = probability;
    for (uint32_t bit : sig.onesIndices()) {
        if (bit < numDetectors)
            out.detectors.push_back(bit);
        else
            out.observables |= 1u << (bit - numDetectors);
    }
    return out;
}

} // namespace

DetectorErrorModel
DetectorErrorModel::build(const Circuit& circuit)
{
    DetectorErrorModel dem;
    dem.numDetectors_ = static_cast<uint32_t>(circuit.detectors().size());
    dem.numObservables_ =
        static_cast<uint32_t>(circuit.observables().size());
    VLQ_ASSERT(dem.numObservables_ <= 32, "too many observables");

    for (const auto& d : circuit.detectors())
        dem.meta_.push_back(DetectorMeta{d.basis, d.x, d.y, d.t});

    const uint32_t width = dem.numDetectors_ + dem.numObservables_;
    const uint32_t nQubits = circuit.numQubits();

    // detSet[m]: which detectors/observables contain measurement m.
    std::vector<BitVec> detSet(circuit.numMeasurements(), BitVec(width));
    for (uint32_t d = 0; d < circuit.detectors().size(); ++d)
        for (uint32_t m : circuit.detectors()[d].measurements)
            detSet[m].flip(d);
    for (uint32_t o = 0; o < circuit.observables().size(); ++o)
        for (uint32_t m : circuit.observables()[o].measurements)
            detSet[m].flip(dem.numDetectors_ + o);

    // Backward sensitivity sets: dx[q] = detectors flipped by an X error
    // on q at the current (reverse) position; dz likewise.
    std::vector<BitVec> dx(nQubits, BitVec(width));
    std::vector<BitVec> dz(nQubits, BitVec(width));

    BitVec scratch(width);
    const auto& ops = circuit.ops();
    for (size_t idx = ops.size(); idx-- > 0;) {
        const Operation& op = ops[idx];
        switch (op.code) {
          case OpCode::MEASURE_Z: {
            // An X error before the measurement flips the record (and
            // persists). Record-flip noise is its own channel.
            uint32_t m = static_cast<uint32_t>(op.meas);
            dx[op.q0] ^= detSet[m];
            if (op.p > 0.0) {
                FaultChannel ch;
                ch.opIndex = static_cast<uint32_t>(idx);
                FaultOutcome o = toOutcome(detSet[m], dem.numDetectors_,
                                           op.p);
                if (!o.detectors.empty() || o.observables != 0)
                    ch.outcomes.push_back(std::move(o));
                if (!ch.outcomes.empty())
                    dem.channels_.push_back(std::move(ch));
            }
            break;
          }
          case OpCode::RESET:
            dx[op.q0].clear();
            dz[op.q0].clear();
            break;
          case OpCode::H:
            std::swap(dx[op.q0], dz[op.q0]);
            break;
          case OpCode::S:
            // X before S becomes Y after: sensitive to both sets.
            dx[op.q0] ^= dz[op.q0];
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            break; // Pauli gates do not change Pauli-frame sensitivity
          case OpCode::CNOT:
            // Forward: X(c) -> X(c)X(t), Z(t) -> Z(c)Z(t).
            dx[op.q0] ^= dx[op.q1];
            dz[op.q1] ^= dz[op.q0];
            break;
          case OpCode::SWAP:
            std::swap(dx[op.q0], dx[op.q1]);
            std::swap(dz[op.q0], dz[op.q1]);
            break;
          case OpCode::DEPOLARIZE1: {
            FaultChannel ch;
            ch.opIndex = static_cast<uint32_t>(idx);
            const double p3 = op.p / 3.0;
            // X
            FaultOutcome ox = toOutcome(dx[op.q0], dem.numDetectors_, p3);
            // Z
            FaultOutcome oz = toOutcome(dz[op.q0], dem.numDetectors_, p3);
            // Y
            scratch = dx[op.q0];
            scratch ^= dz[op.q0];
            FaultOutcome oy = toOutcome(scratch, dem.numDetectors_, p3);
            for (auto* o : {&ox, &oy, &oz})
                if (!o->detectors.empty() || o->observables != 0)
                    ch.outcomes.push_back(std::move(*o));
            if (!ch.outcomes.empty())
                dem.channels_.push_back(std::move(ch));
            break;
          }
          case OpCode::DEPOLARIZE2: {
            FaultChannel ch;
            ch.opIndex = static_cast<uint32_t>(idx);
            const double p15 = op.p / 15.0;
            for (int code = 1; code < 16; ++code) {
                int pa = code >> 2;
                int pb = code & 3;
                scratch.clear();
                if (pa & 1)
                    scratch ^= dx[op.q0];
                if (pa & 2)
                    scratch ^= dz[op.q0];
                if (pb & 1)
                    scratch ^= dx[op.q1];
                if (pb & 2)
                    scratch ^= dz[op.q1];
                FaultOutcome o = toOutcome(scratch, dem.numDetectors_,
                                           p15);
                if (!o.detectors.empty() || o.observables != 0)
                    ch.outcomes.push_back(std::move(o));
            }
            if (!ch.outcomes.empty())
                dem.channels_.push_back(std::move(ch));
            break;
          }
          case OpCode::X_ERROR:
          case OpCode::Y_ERROR:
          case OpCode::Z_ERROR: {
            FaultChannel ch;
            ch.opIndex = static_cast<uint32_t>(idx);
            scratch.clear();
            if (op.code != OpCode::Z_ERROR)
                scratch ^= dx[op.q0];
            if (op.code != OpCode::X_ERROR)
                scratch ^= dz[op.q0];
            FaultOutcome o = toOutcome(scratch, dem.numDetectors_, op.p);
            if (!o.detectors.empty() || o.observables != 0)
                ch.outcomes.push_back(std::move(o));
            if (!ch.outcomes.empty())
                dem.channels_.push_back(std::move(ch));
            break;
          }
          case OpCode::PAULI_CHANNEL_1: {
            FaultChannel ch;
            ch.opIndex = static_cast<uint32_t>(idx);
            FaultOutcome ox = toOutcome(dx[op.q0], dem.numDetectors_,
                                        op.p);
            scratch = dx[op.q0];
            scratch ^= dz[op.q0];
            FaultOutcome oy = toOutcome(scratch, dem.numDetectors_,
                                        op.py);
            FaultOutcome oz = toOutcome(dz[op.q0], dem.numDetectors_,
                                        op.pz);
            for (auto* o : {&ox, &oy, &oz}) {
                if (o->probability > 0.0
                    && (!o->detectors.empty() || o->observables != 0)) {
                    ch.outcomes.push_back(std::move(*o));
                }
            }
            if (!ch.outcomes.empty())
                dem.channels_.push_back(std::move(ch));
            break;
          }
          case OpCode::HERALDED_ERASE: {
            // The erased qubit is replaced by the maximally mixed state:
            // uniform I/X/Y/Z, each p/4. Empty signatures (always the I
            // branch, possibly more) are KEPT so the channel fires --
            // and the herald raises -- with the full probability p.
            FaultChannel ch;
            ch.opIndex = static_cast<uint32_t>(idx);
            ch.heralded = true;
            const double p4 = op.p / 4.0;
            scratch.clear();
            ch.outcomes.push_back(
                toOutcome(scratch, dem.numDetectors_, p4)); // I
            ch.outcomes.push_back(
                toOutcome(dx[op.q0], dem.numDetectors_, p4)); // X
            scratch = dx[op.q0];
            scratch ^= dz[op.q0];
            ch.outcomes.push_back(
                toOutcome(scratch, dem.numDetectors_, p4)); // Y
            ch.outcomes.push_back(
                toOutcome(dz[op.q0], dem.numDetectors_, p4)); // Z
            dem.channels_.push_back(std::move(ch));
            break;
          }
        }
    }

    // Reverse to circuit order (cosmetic: keeps opIndex ascending), then
    // number the heralded channels in that final order.
    std::reverse(dem.channels_.begin(), dem.channels_.end());
    for (auto& ch : dem.channels_)
        if (ch.heralded)
            ch.erasureSite =
                static_cast<int32_t>(dem.numErasureSites_++);
    return dem;
}

double
DetectorErrorModel::totalFaultMass() const
{
    double mass = 0.0;
    for (const auto& ch : channels_)
        mass += ch.totalProbability();
    return mass;
}

} // namespace vlq
