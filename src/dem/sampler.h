#ifndef VLQ_DEM_SAMPLER_H
#define VLQ_DEM_SAMPLER_H

#include <cstdint>
#include <vector>

#include "dem/detector_model.h"
#include "pauli/bitvec.h"
#include "util/rng.h"

namespace vlq {

/**
 * Fast Monte-Carlo sampler over a detector error model.
 *
 * Each trial draws every fault channel independently (preserving the
 * correlations *within* a channel: a two-qubit depolarizing event picks
 * exactly one of its 15 outcomes) and XORs the chosen outcomes'
 * signatures into a detector bit vector and an observable mask. This is
 * equivalent to, and much faster than, re-simulating the circuit with
 * the Pauli-frame simulator; the equivalence is checked statistically in
 * the test suite.
 */
class FaultSampler
{
  public:
    explicit FaultSampler(const DetectorErrorModel& dem);

    /** Result of one sampled trial. */
    struct Shot
    {
        BitVec detectors;
        uint32_t observables = 0;
    };

    /** Sample one trial. */
    Shot sample(Rng& rng) const;

    /** Sample into preallocated storage (hot path). */
    void sampleInto(Rng& rng, BitVec& detectors,
                    uint32_t& observables) const;

    uint32_t numDetectors() const { return numDetectors_; }

  private:
    struct FlatOutcome
    {
        double cumulative; // upper cumulative bound within the channel
        uint32_t begin;    // range into detectorIndices_
        uint32_t end;
        uint32_t observables;
    };
    struct FlatChannel
    {
        double total;      // total visible probability
        uint32_t begin;    // range into outcomes_
        uint32_t end;
    };

    uint32_t numDetectors_ = 0;
    std::vector<FlatChannel> channels_;
    std::vector<FlatOutcome> outcomes_;
    std::vector<uint32_t> detectorIndices_;
};

} // namespace vlq

#endif // VLQ_DEM_SAMPLER_H
