#ifndef VLQ_DEM_SAMPLER_H
#define VLQ_DEM_SAMPLER_H

#include <cstdint>
#include <vector>

#include "dem/detector_model.h"
#include "dem/shot_batch.h"
#include "pauli/bitvec.h"
#include "util/rng.h"

namespace vlq {

/**
 * Fast Monte-Carlo sampler over a detector error model.
 *
 * Each trial draws every fault channel independently (preserving the
 * correlations *within* a channel: a two-qubit depolarizing event picks
 * exactly one of its 15 outcomes) and XORs the chosen outcomes'
 * signatures into a detector bit vector and an observable mask. This is
 * equivalent to, and much faster than, re-simulating the circuit with
 * the Pauli-frame simulator; the equivalence is checked statistically in
 * the test suite.
 *
 * Two sampling paths share the channel tables:
 *
 * - sampleInto(): the reference path; one uniform draw per channel.
 * - sampleBatchInto(): the Monte-Carlo hot path. Channels are grouped
 *   by firing probability at construction, and each trial visits only
 *   the channels that actually fire, found by geometric skip-sampling
 *   within each group (draws scale with the *fault* count, not the
 *   channel count -- orders of magnitude fewer below threshold).
 *   Outcomes land in a ShotBatch's transposed bit-packed rows. Every
 *   trial draws from its own RNG stream split from the root, so
 *   results are a pure function of (root seed, trial index): batching
 *   and threading cannot change what any trial samples.
 */
class FaultSampler
{
  public:
    explicit FaultSampler(const DetectorErrorModel& dem);

    /** Result of one sampled trial. */
    struct Shot
    {
        BitVec detectors;
        uint32_t observables = 0;
        /** Heralded-erasure mask, one bit per erasure site. */
        BitVec erasures;
    };

    /** Sample one trial. */
    Shot sample(Rng& rng) const;

    /** Sample into preallocated storage (hot path). */
    void sampleInto(Rng& rng, BitVec& detectors,
                    uint32_t& observables) const;

    /**
     * Like sampleInto, additionally recording fired heralds into
     * `erasures` (must be sized to numErasureSites). Draws the exact
     * same RNG stream as the two-argument overload.
     */
    void sampleInto(Rng& rng, BitVec& detectors, uint32_t& observables,
                    BitVec& erasures) const;

    /**
     * Fill a whole batch: shot s of `batch` samples trial
     * batch.firstTrial() + s from root.split(that trial). The batch
     * must have been reset() for this model's detector/observable
     * counts.
     */
    void sampleBatchInto(const Rng& root, ShotBatch& batch) const;

    /**
     * Blocked-RNG variant of sampleBatchInto() for the simd compute
     * backend: each trial's uniforms are generated in fixed-size
     * blocks (Rng::fillDoubles keeps the generator state in registers
     * for a whole block) and the skip-sampling loop consumes them
     * from the buffer. Every trial still draws its own split stream
     * in the same order, so the sampled batch is bit-identical to
     * sampleBatchInto() -- the cross-backend fuzz tests check this.
     * Logs for the geometric skips stay on-demand: the common case
     * exits a group on the plain u >= fullExitU compare and never
     * pays the log1p.
     */
    void sampleBatchIntoBlocked(const Rng& root, ShotBatch& batch) const;

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }
    uint32_t numErasureSites() const { return numErasureSites_; }

  private:
    struct FlatOutcome
    {
        double cumulative; // upper cumulative bound within the channel
        uint32_t begin;    // range into detectorIndices_
        uint32_t end;
        uint32_t observables;
    };
    struct FlatChannel
    {
        double total;      // total visible probability
        uint32_t begin;    // range into outcomes_
        uint32_t end;
        int32_t erasureSite = -1; // herald bit set on fire, or -1
    };
    /** Channels sharing one firing probability (skip-sampling unit). */
    struct ChannelGroup
    {
        double probability;  // shared channel total, in (0, 1)
        double invLogOneMinusP; // 1 / log1p(-probability), < 0
        double fullExitU;    // P(some channel of the group fires)
        uint32_t begin;      // range into groupChannels_
        uint32_t end;
        bool alwaysFires;    // probability >= 1: no skipping
    };

    void fireChannel(const FlatChannel& ch, double u, uint64_t laneBit,
                     uint32_t laneWord, ShotBatch& batch) const;

    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    uint32_t numErasureSites_ = 0;
    std::vector<FlatChannel> channels_;
    std::vector<FlatOutcome> outcomes_;
    std::vector<uint32_t> detectorIndices_;
    std::vector<ChannelGroup> groups_;
    std::vector<uint32_t> groupChannels_; // channel indices by group
};

} // namespace vlq

#endif // VLQ_DEM_SAMPLER_H
