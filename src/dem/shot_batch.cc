#include "dem/shot_batch.h"

#include <bit>

#include "util/logging.h"

namespace vlq {

void
ShotBatch::reset(uint32_t numDetectors, uint32_t numObservables,
                 uint32_t numShots, uint64_t firstTrial,
                 uint32_t numErasureSites)
{
    VLQ_ASSERT(numShots > 0, "ShotBatch::reset needs at least one shot");
    numShots_ = numShots;
    numDetectors_ = numDetectors;
    numObservables_ = numObservables;
    numErasureSites_ = numErasureSites;
    firstTrial_ = firstTrial;
    wordsPerRow_ = (numShots + kWordBits - 1) / kWordBits;
    size_t rowBits = static_cast<size_t>(wordsPerRow_) * kWordBits;
    detectorBits_.resize(numDetectors * rowBits);
    detectorBits_.clear();
    observableBits_.resize(numObservables * rowBits);
    observableBits_.clear();
    erasureBits_.resize(numErasureSites * rowBits);
    erasureBits_.clear();
}

uint32_t
ShotBatch::observables(uint32_t shot) const
{
    uint32_t mask = 0;
    uint32_t wi = shot / kWordBits;
    uint32_t bit = shot % kWordBits;
    for (uint32_t o = 0; o < numObservables_; ++o)
        mask |= static_cast<uint32_t>((observableRow(o)[wi] >> bit) & 1)
            << o;
    return mask;
}

void
ShotBatch::extractShot(uint32_t shot, BitVec& detectors) const
{
    if (detectors.size() != numDetectors_)
        detectors.resize(numDetectors_);
    detectors.clear();
    uint32_t wi = shot / kWordBits;
    uint32_t bit = shot % kWordBits;
    uint64_t* out = detectors.wordData();
    for (uint32_t d = 0; d < numDetectors_; ++d) {
        uint64_t v = (detectorRow(d)[wi] >> bit) & 1;
        out[d / kWordBits] |= v << (d % kWordBits);
    }
}

uint64_t
ShotBatch::nonTrivialMask(uint32_t wordIndex) const
{
    uint64_t acc = 0;
    const uint64_t* words = detectorBits_.wordData() + wordIndex;
    for (uint32_t d = 0; d < numDetectors_; ++d)
        acc |= words[static_cast<size_t>(d) * wordsPerRow_];
    return acc;
}

uint64_t
ShotBatch::erasedLanesMask(uint32_t wordIndex) const
{
    uint64_t acc = 0;
    const uint64_t* words = erasureBits_.wordData() + wordIndex;
    for (uint32_t e = 0; e < numErasureSites_; ++e)
        acc |= words[static_cast<size_t>(e) * wordsPerRow_];
    return acc;
}

void
ShotBatch::gatherEvents(
    std::vector<std::vector<uint32_t>>& events) const
{
    if (events.size() < numShots_)
        events.resize(numShots_);
    for (uint32_t s = 0; s < numShots_; ++s)
        events[s].clear();
    // One sparse sweep: detectors ascending, so each shot's list comes
    // out sorted for free.
    for (uint32_t d = 0; d < numDetectors_; ++d) {
        const uint64_t* row = detectorRow(d);
        for (uint32_t wi = 0; wi < wordsPerRow_; ++wi) {
            uint64_t w = row[wi];
            while (w) {
                uint32_t lane =
                    static_cast<uint32_t>(std::countr_zero(w));
                uint32_t shot = wi * kWordBits + lane;
                if (shot < numShots_)
                    events[shot].push_back(d);
                w &= w - 1;
            }
        }
    }
}

void
ShotBatch::gatherErasures(
    std::vector<std::vector<uint32_t>>& sites) const
{
    if (sites.size() < numShots_)
        sites.resize(numShots_);
    for (uint32_t s = 0; s < numShots_; ++s)
        sites[s].clear();
    for (uint32_t e = 0; e < numErasureSites_; ++e) {
        const uint64_t* row = erasureRow(e);
        for (uint32_t wi = 0; wi < wordsPerRow_; ++wi) {
            uint64_t w = row[wi];
            while (w) {
                uint32_t lane =
                    static_cast<uint32_t>(std::countr_zero(w));
                uint32_t shot = wi * kWordBits + lane;
                if (shot < numShots_)
                    sites[shot].push_back(e);
                w &= w - 1;
            }
        }
    }
}

} // namespace vlq
