#ifndef VLQ_OBS_METRICS_H
#define VLQ_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vlq {
namespace obs {

/**
 * Metrics core of the observability layer: a process-wide registry of
 * named counters, gauges, and log-scale histograms, built so the
 * Monte-Carlo hot loop can be instrumented permanently:
 *
 *  - Disabled (the default), an instrumentation site costs one relaxed
 *    atomic load and the registry is never even allocated -- the
 *    "zero-cost-when-disabled" contract test_obs pins down.
 *  - Enabled, every writing thread owns a lock-free shard (plain
 *    relaxed atomics, no CAS loops on the counter path), so the MC
 *    thread pool never contends on a metric. Shards of exited threads
 *    fold into a retired accumulator, and snapshotMetrics() merges
 *    retired + live shards under the registry mutex -- scrapes see
 *    every update of every thread that has finished, and an atomically
 *    consistent-enough view of the ones still running.
 *
 * Handles (Counter/Gauge/Histogram) are small ids, cheap to copy and
 * to cache in function-local statics at instrumentation sites:
 *
 *     if (obs::metricsEnabled()) {
 *         static const obs::Counter c = obs::Counter::get("uf.growth");
 *         c.add(1);
 *     }
 *
 * The guard keeps the static un-constructed (and the registry
 * unallocated) until metrics are actually turned on.
 */

namespace detail {
/** Bit 0: metrics, bit 1: tracing. Shared so one load guards both. */
extern std::atomic<uint32_t> gObsFlags;
constexpr uint32_t kMetricsBit = 1u;
constexpr uint32_t kTraceBit = 2u;
inline uint32_t obsFlags()
{
    return gObsFlags.load(std::memory_order_relaxed);
}
} // namespace detail

/** Whether metric recording is on (one relaxed load; hot-path guard). */
inline bool metricsEnabled()
{
    return (detail::obsFlags() & detail::kMetricsBit) != 0;
}

void setMetricsEnabled(bool on);

/**
 * True once the registry singleton has been allocated. Purely a test
 * hook: the disabled-by-default build must never create it.
 */
bool registryCreated();

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Intern `name`, creating the registry on first use. */
    static Counter get(std::string_view name);

    void add(uint64_t delta = 1) const;

    uint32_t id() const { return id_; }

  private:
    explicit Counter(uint32_t id) : id_(id) {}
    uint32_t id_;
};

/** Last-write-wins instantaneous value (thread count, batch size). */
class Gauge
{
  public:
    static Gauge get(std::string_view name);

    void set(int64_t value) const;

    uint32_t id() const { return id_; }

  private:
    explicit Gauge(uint32_t id) : id_(id) {}
    uint32_t id_;
};

/**
 * Log-scale (power-of-two bucket) histogram for latency-like values.
 * Bucket 0 holds zeros; bucket i >= 1 holds values in [2^(i-1), 2^i).
 * Values are unitless to the registry; the pipeline records
 * nanoseconds everywhere (reports label them as such).
 */
class Histogram
{
  public:
    static Histogram get(std::string_view name);

    void record(uint64_t value) const;

    uint32_t id() const { return id_; }

  private:
    explicit Histogram(uint32_t id) : id_(id) {}
    uint32_t id_;
};

/** Number of power-of-two histogram buckets (covers uint64 range). */
constexpr uint32_t kHistogramBuckets = 65;

/** Merged view of one histogram across all shards. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0; // 0 when empty
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    /**
     * Quantile estimate (q in [0, 1]) by geometric interpolation
     * within the covering bucket, clamped to [min, max]. 0 if empty.
     */
    double quantile(double q) const;

    /** Arithmetic mean (0 if empty). */
    double mean() const
    {
        return count ? static_cast<double>(sum)
                / static_cast<double>(count) : 0.0;
    }
};

/** Point-in-time merge of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /** Value of a counter by name (0 when absent). */
    uint64_t counter(std::string_view name) const;

    /** Histogram by name (nullptr when absent). */
    const HistogramSnapshot* histogram(std::string_view name) const;
};

/**
 * Merge retired and live shards into one consistent snapshot. Safe to
 * call at any time; for exact totals call it with worker threads
 * joined (the MC driver always has -- ThreadPool::parallelFor joins).
 */
MetricsSnapshot snapshotMetrics();

/**
 * Canonical labeled metric name: `base{key="value"}` (Prometheus-style
 * escaping of backslash and double quote in the value). The registry
 * itself is label-unaware -- a labeled name is interned like any
 * other -- but every multiplexed producer (the scan job service's
 * per-job counters) must build names through this helper so labels
 * stay parseable and one convention holds across the report.
 */
std::string labeledName(std::string_view base, std::string_view key,
                        std::string_view value);

} // namespace obs
} // namespace vlq

#endif // VLQ_OBS_METRICS_H
