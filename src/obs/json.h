#ifndef VLQ_OBS_JSON_H
#define VLQ_OBS_JSON_H

#include <string>
#include <string_view>

namespace vlq {
namespace obs {

/** JSON-escape and quote a string ("a\"b" -> "\"a\\\"b\""). */
std::string jsonQuote(std::string_view s);

/**
 * Render a double as a JSON number: finite values round-trip through
 * %.17g trimmed; NaN/inf (not representable in JSON) become null.
 */
std::string jsonNumber(double value);

/**
 * Minimal strict JSON syntax checker (objects, arrays, strings,
 * numbers, true/false/null; rejects trailing garbage). Used by the
 * test suite to validate emitted reports and traces without an
 * external parser dependency.
 *
 * @return true when `text` is one well-formed JSON value; on failure
 *         returns false and fills *err (when non-null) with a
 *         byte-offset diagnostic.
 */
bool jsonLint(std::string_view text, std::string* err = nullptr);

} // namespace obs
} // namespace vlq

#endif // VLQ_OBS_JSON_H
