#include "obs/report.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace vlq {
namespace obs {

namespace {

struct ReportState
{
    std::mutex mutex;
    std::vector<PointReport> points;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
};

ReportState&
state()
{
    static ReportState* s = new ReportState();
    return *s;
}

double
processCpuSeconds()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    auto toSec = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec)
            + static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return toSec(usage.ru_utime) + toSec(usage.ru_stime);
#else
    return 0.0;
#endif
}

void
appendHistogram(std::string& out, const HistogramSnapshot& h)
{
    out += "{\"unit\":\"ns\",\"count\":" + std::to_string(h.count)
        + ",\"sum\":" + std::to_string(h.sum)
        + ",\"mean\":" + jsonNumber(h.mean())
        + ",\"min\":" + std::to_string(h.min)
        + ",\"max\":" + std::to_string(h.max)
        + ",\"p50\":" + jsonNumber(h.quantile(0.50))
        + ",\"p90\":" + jsonNumber(h.quantile(0.90))
        + ",\"p99\":" + jsonNumber(h.quantile(0.99)) + "}";
}

} // namespace

void
reportPoint(const PointReport& point)
{
    if (!metricsEnabled())
        return;
    ReportState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.points.push_back(point);
}

std::vector<PointReport>
reportedPoints()
{
    ReportState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.points;
}

std::string
buildReportJson()
{
    ReportState& rs = state();
    MetricsSnapshot snap = snapshotMetrics();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - rs.start)
                      .count();
    double cpu = processCpuSeconds();

    std::string out = "{\n\"schema\":\"vlq-metrics-report/1\",\n";

    // Run-level wall/CPU split.
    out += "\"run\":{\"wall_seconds\":" + jsonNumber(wall)
        + ",\"cpu_seconds\":" + jsonNumber(cpu) + ",\"utilization\":"
        + jsonNumber(wall > 0.0 ? cpu / wall : 0.0)
        + ",\"hardware_threads\":"
        + std::to_string(std::thread::hardware_concurrency())
        + ",\"trace_dropped_events\":"
        + std::to_string(traceDroppedEvents()) + "},\n";

    // Per-point throughput.
    out += "\"points\":[";
    {
        std::lock_guard<std::mutex> lock(rs.mutex);
        bool first = true;
        for (const PointReport& p : rs.points) {
            if (!first)
                out += ",";
            first = false;
            out += "\n{\"embedding\":" + jsonQuote(p.embedding)
                + ",\"distance\":" + std::to_string(p.distance)
                + ",\"p\":" + jsonNumber(p.physicalP) + ",\"basis\":\""
                + p.basis + "\",\"trials\":" + std::to_string(p.trials)
                + ",\"failures\":" + std::to_string(p.failures)
                + ",\"session_trials\":"
                + std::to_string(p.sessionTrials) + ",\"wall_seconds\":"
                + jsonNumber(p.wallSeconds) + ",\"shots_per_sec\":"
                + jsonNumber(p.shotsPerSec) + "}";
        }
    }
    out += "\n],\n";

    out += "\"counters\":{";
    {
        bool first = true;
        for (const auto& [name, value] : snap.counters) {
            out += std::string(first ? "\n" : ",\n") + jsonQuote(name)
                + ":" + std::to_string(value);
            first = false;
        }
    }
    out += "\n},\n";

    out += "\"gauges\":{";
    {
        bool first = true;
        for (const auto& [name, value] : snap.gauges) {
            out += std::string(first ? "\n" : ",\n") + jsonQuote(name)
                + ":" + std::to_string(value);
            first = false;
        }
    }
    out += "\n},\n";

    out += "\"histograms\":{";
    {
        bool first = true;
        for (const auto& [name, h] : snap.histograms) {
            out += std::string(first ? "\n" : ",\n") + jsonQuote(name)
                + ":";
            appendHistogram(out, h);
            first = false;
        }
    }
    out += "\n},\n";

    // Derived headline numbers, precomputed so a CI log (or a human)
    // does not have to re-derive them from raw counters.
    out += "\"derived\":{";
    {
        bool first = true;
        uint64_t exact = snap.counter("uf.decode.exact_fastpath");
        uint64_t growth = snap.counter("uf.decode.growth");
        if (exact + growth > 0) {
            out += "\n\"uf_fastpath_hit_rate\":"
                + jsonNumber(static_cast<double>(exact)
                             / static_cast<double>(exact + growth));
            first = false;
        }
        uint64_t shots = snap.counter("sampler.shots");
        if (shots > 0 && wall > 0.0) {
            out += std::string(first ? "\n" : ",\n")
                + "\"total_shots_per_sec\":"
                + jsonNumber(static_cast<double>(shots) / wall);
            first = false;
        }
        uint64_t decoded = snap.counter("decode.shots");
        if (decoded > 0) {
            out += std::string(first ? "\n" : ",\n")
                + "\"trivial_shot_fraction\":"
                + jsonNumber(
                    static_cast<double>(
                        snap.counter("decode.trivial_shots"))
                    / static_cast<double>(decoded));
            first = false;
        }
        (void)first;
    }
    out += "\n}\n}\n";
    return out;
}

bool
writeReportJson(const std::string& path, std::string* err)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
        if (err)
            *err = "cannot open metrics report file '" + path + "'";
        return false;
    }
    out << buildReportJson();
    out.flush();
    if (!out.good()) {
        if (err)
            *err = "failed writing metrics report file '" + path + "'";
        return false;
    }
    return true;
}

} // namespace obs
} // namespace vlq
