#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "util/logging.h"

namespace vlq {
namespace obs {

namespace detail {
std::atomic<uint32_t> gObsFlags{0};
} // namespace detail

namespace {

/**
 * Fixed metric-id capacities. Shards are allocated at full capacity so
 * the hot path indexes a flat array with no growth (growth would race
 * with scrapes). Far above current usage; exceeding one is a bug in
 * instrumentation, reported fatally at registration (cold path).
 */
constexpr uint32_t kMaxCounters = 192;
constexpr uint32_t kMaxGauges = 48;
constexpr uint32_t kMaxHistograms = 64;

/** One histogram's lock-free per-thread storage. */
struct HistShard
{
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
};

/** One thread's lock-free metric storage. */
struct Shard
{
    std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
    std::array<HistShard, kMaxHistograms> hists;
};

/** Accumulated values of shards whose threads have exited. */
struct RetiredTotals
{
    std::array<uint64_t, kMaxCounters> counters{};
    std::array<HistogramSnapshot, kMaxHistograms> hists{};
};

uint32_t
bucketIndex(uint64_t value)
{
    // Bucket 0: zeros; bucket i: [2^(i-1), 2^i).
    return static_cast<uint32_t>(std::bit_width(value));
}

void
mergeHistShard(const HistShard& shard, HistogramSnapshot& into)
{
    uint64_t c = shard.count.load(std::memory_order_relaxed);
    if (c == 0)
        return;
    into.count += c;
    into.sum += shard.sum.load(std::memory_order_relaxed);
    uint64_t mn = shard.min.load(std::memory_order_relaxed);
    uint64_t mx = shard.max.load(std::memory_order_relaxed);
    if (into.count == c || mn < into.min)
        into.min = mn;
    into.max = std::max(into.max, mx);
    for (uint32_t b = 0; b < kHistogramBuckets; ++b)
        into.buckets[b] +=
            shard.buckets[b].load(std::memory_order_relaxed);
}

class Registry
{
  public:
    static Registry& instance()
    {
        static Registry* reg = [] {
            Registry* r = new Registry();
            created_.store(true, std::memory_order_release);
            return r;
        }();
        return *reg;
    }

    static bool created()
    {
        return created_.load(std::memory_order_acquire);
    }

    uint32_t intern(std::map<std::string, uint32_t, std::less<>>& names,
                    std::string_view name, uint32_t cap,
                    const char* kind)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = names.find(name);
        if (it != names.end())
            return it->second;
        if (names.size() >= cap) {
            const std::string msg = "obs: too many "
                + std::string(kind) + " metrics (cap "
                + std::to_string(cap) + ") registering '"
                + std::string(name) + "'";
            VLQ_FATAL(msg.c_str());
        }
        uint32_t id = static_cast<uint32_t>(names.size());
        names.emplace(std::string(name), id);
        return id;
    }

    uint32_t internCounter(std::string_view name)
    {
        return intern(counterNames_, name, kMaxCounters, "counter");
    }
    uint32_t internGauge(std::string_view name)
    {
        return intern(gaugeNames_, name, kMaxGauges, "gauge");
    }
    uint32_t internHistogram(std::string_view name)
    {
        return intern(histNames_, name, kMaxHistograms, "histogram");
    }

    void setGauge(uint32_t id, int64_t value)
    {
        gauges_[id].store(value, std::memory_order_relaxed);
    }

    /** The calling thread's shard, created and registered on demand. */
    Shard& localShard();

    void retire(Shard* shard)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (uint32_t i = 0; i < kMaxCounters; ++i)
            retired_.counters[i] +=
                shard->counters[i].load(std::memory_order_relaxed);
        for (uint32_t h = 0; h < kMaxHistograms; ++h)
            mergeHistShard(shard->hists[h], retired_.hists[h]);
        std::erase(live_, shard);
        delete shard;
    }

    MetricsSnapshot snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::array<uint64_t, kMaxCounters> counters = retired_.counters;
        std::array<HistogramSnapshot, kMaxHistograms> hists =
            retired_.hists;
        for (Shard* shard : live_) {
            for (uint32_t i = 0; i < kMaxCounters; ++i)
                counters[i] += shard->counters[i].load(
                    std::memory_order_relaxed);
            for (uint32_t h = 0; h < kMaxHistograms; ++h)
                mergeHistShard(shard->hists[h], hists[h]);
        }

        MetricsSnapshot snap;
        snap.counters.reserve(counterNames_.size());
        for (const auto& [name, id] : counterNames_)
            snap.counters.emplace_back(name, counters[id]);
        snap.gauges.reserve(gaugeNames_.size());
        for (const auto& [name, id] : gaugeNames_)
            snap.gauges.emplace_back(
                name, gauges_[id].load(std::memory_order_relaxed));
        snap.histograms.reserve(histNames_.size());
        for (const auto& [name, id] : histNames_) {
            HistogramSnapshot h = hists[id];
            if (h.count == 0)
                h.min = 0;
            snap.histograms.emplace_back(name, h);
        }
        return snap;
    }

  private:
    static std::atomic<bool> created_;

    std::mutex mutex_;
    std::map<std::string, uint32_t, std::less<>> counterNames_;
    std::map<std::string, uint32_t, std::less<>> gaugeNames_;
    std::map<std::string, uint32_t, std::less<>> histNames_;
    std::array<std::atomic<int64_t>, kMaxGauges> gauges_{};
    std::vector<Shard*> live_;
    RetiredTotals retired_;
};

std::atomic<bool> Registry::created_{false};

/**
 * Thread-local shard handle. The holder (not the raw pointer) is
 * thread_local so its destructor runs at thread exit and folds the
 * shard's values into the retired accumulator -- the MC pool's
 * short-lived workers would otherwise take their counts with them.
 */
struct ShardHolder
{
    Shard* shard = nullptr;
    ~ShardHolder()
    {
        if (shard)
            Registry::instance().retire(shard);
    }
};

thread_local ShardHolder tShard;

Shard&
Registry::localShard()
{
    if (!tShard.shard) {
        Shard* shard = new Shard();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            live_.push_back(shard);
        }
        tShard.shard = shard;
    }
    return *tShard.shard;
}

} // namespace

void
setMetricsEnabled(bool on)
{
    if (on) {
        (void)Registry::instance();
        detail::gObsFlags.fetch_or(detail::kMetricsBit,
                                   std::memory_order_relaxed);
    } else {
        detail::gObsFlags.fetch_and(~detail::kMetricsBit,
                                    std::memory_order_relaxed);
    }
}

bool
registryCreated()
{
    return Registry::created();
}

Counter
Counter::get(std::string_view name)
{
    return Counter(Registry::instance().internCounter(name));
}

void
Counter::add(uint64_t delta) const
{
    Registry::instance().localShard().counters[id_].fetch_add(
        delta, std::memory_order_relaxed);
}

Gauge
Gauge::get(std::string_view name)
{
    return Gauge(Registry::instance().internGauge(name));
}

void
Gauge::set(int64_t value) const
{
    Registry::instance().setGauge(id_, value);
}

Histogram
Histogram::get(std::string_view name)
{
    return Histogram(Registry::instance().internHistogram(name));
}

void
Histogram::record(uint64_t value) const
{
    HistShard& h = Registry::instance().localShard().hists[id_];
    h.buckets[bucketIndex(value)].fetch_add(1,
                                            std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    // Min/max are per-thread-exclusive except for the relaxed loads of
    // a scrape, so a load-compare-store (not CAS) is race-free here.
    if (value < h.min.load(std::memory_order_relaxed))
        h.min.store(value, std::memory_order_relaxed);
    if (value > h.max.load(std::memory_order_relaxed))
        h.max.store(value, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count);
    uint64_t seen = 0;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        uint64_t next = seen + buckets[b];
        if (static_cast<double>(next) >= target) {
            // Geometric interpolation inside bucket b's range.
            double lo = b == 0 ? 0.0 : std::ldexp(1.0, int(b) - 1);
            double hi = b == 0 ? 0.0 : std::ldexp(1.0, int(b));
            double frac = buckets[b] == 0 ? 0.0
                : (target - static_cast<double>(seen))
                    / static_cast<double>(buckets[b]);
            double est = lo + (hi - lo) * frac;
            est = std::clamp(est, static_cast<double>(min),
                             static_cast<double>(max));
            return est;
        }
        seen = next;
    }
    return static_cast<double>(max);
}

uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto& [n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

const HistogramSnapshot*
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto& [n, h] : histograms)
        if (n == name)
            return &h;
    return nullptr;
}

MetricsSnapshot
snapshotMetrics()
{
    if (!Registry::created())
        return MetricsSnapshot{};
    return Registry::instance().snapshot();
}

std::string
labeledName(std::string_view base, std::string_view key,
            std::string_view value)
{
    std::string name;
    name.reserve(base.size() + key.size() + value.size() + 6);
    name.append(base);
    name += '{';
    name.append(key);
    name += "=\"";
    for (char c : value) {
        if (c == '\\' || c == '"')
            name += '\\';
        name += c;
    }
    name += "\"}";
    return name;
}

} // namespace obs
} // namespace vlq
