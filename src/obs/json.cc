#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace vlq {
namespace obs {

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof esc, "\\u%04x", c);
            out += esc;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

namespace {

/** Recursive-descent JSON syntax checker. */
class Lint
{
  public:
    explicit Lint(std::string_view text) : text_(text) {}

    bool run(std::string* err)
    {
        skipWs();
        if (!value()) {
            fill(err);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error_ = "trailing garbage";
            fill(err);
            return false;
        }
        return true;
    }

  private:
    void fill(std::string* err)
    {
        if (err)
            *err = error_ + " at byte " + std::to_string(pos_);
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t'
                          || peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool fail(const char* why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool string()
    {
        if (eof() || peek() != '"')
            return fail("expected string");
        ++pos_;
        while (!eof()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                if (eof())
                    return fail("truncated escape");
                char e = text_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (eof() || !std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return fail("bad \\u escape");
                        ++pos_;
                    }
                } else if (e != '"' && e != '\\' && e != '/'
                           && e != 'b' && e != 'f' && e != 'n'
                           && e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
            }
        }
        return fail("unterminated string");
    }

    bool number()
    {
        size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("malformed number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof()
                || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed fraction");
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (eof()
                || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed exponent");
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool value()
    {
        if (++depth_ > 256)
            return fail("nesting too deep");
        skipWs();
        if (eof())
            return fail("unexpected end of input");
        bool ok;
        switch (peek()) {
        case '{':
            ok = object();
            break;
        case '[':
            ok = array();
            break;
        case '"':
            ok = string();
            break;
        case 't':
            ok = literal("true");
            break;
        case 'f':
            ok = literal("false");
            break;
        case 'n':
            ok = literal("null");
            break;
        default:
            ok = number();
            break;
        }
        --depth_;
        return ok;
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return fail("expected ':' in object");
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (!eof() && peek() == ',') {
                ++pos_;
                continue;
            }
            if (!eof() && peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (!eof() && peek() == ',') {
                ++pos_;
                continue;
            }
            if (!eof() && peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

bool
jsonLint(std::string_view text, std::string* err)
{
    return Lint(text).run(err);
}

} // namespace obs
} // namespace vlq
