#include "obs/obs.h"

#include <mutex>

#include "obs/report.h"
#include "util/env.h"

namespace vlq {
namespace obs {

namespace {

std::mutex gPathMutex;
std::string gMetricsJsonPath;
std::string gTraceJsonPath;

} // namespace

void
initFromEnv()
{
    std::string metricsJson = envString("VLQ_METRICS_JSON", "");
    std::string trace = envString("VLQ_TRACE", "");
    if (envInt("VLQ_METRICS", 0) != 0 || !metricsJson.empty())
        setMetricsEnabled(true);
    if (!trace.empty())
        setTraceEnabled(true);
    std::lock_guard<std::mutex> lock(gPathMutex);
    if (!metricsJson.empty())
        gMetricsJsonPath = metricsJson;
    if (!trace.empty())
        gTraceJsonPath = trace;
}

void
applyCliPaths(const std::string& metricsJsonPath,
              const std::string& traceJsonPath)
{
    if (!metricsJsonPath.empty())
        setMetricsEnabled(true);
    if (!traceJsonPath.empty())
        setTraceEnabled(true);
    std::lock_guard<std::mutex> lock(gPathMutex);
    if (!metricsJsonPath.empty())
        gMetricsJsonPath = metricsJsonPath;
    if (!traceJsonPath.empty())
        gTraceJsonPath = traceJsonPath;
}

std::string
configuredMetricsJsonPath()
{
    std::lock_guard<std::mutex> lock(gPathMutex);
    return gMetricsJsonPath;
}

std::string
configuredTraceJsonPath()
{
    std::lock_guard<std::mutex> lock(gPathMutex);
    return gTraceJsonPath;
}

bool
finalize(std::string* err)
{
    std::string metricsPath = configuredMetricsJsonPath();
    std::string tracePath = configuredTraceJsonPath();
    if (!metricsPath.empty() && !writeReportJson(metricsPath, err))
        return false;
    if (!tracePath.empty() && !writeTraceJson(tracePath, err))
        return false;
    return true;
}

} // namespace obs
} // namespace vlq
