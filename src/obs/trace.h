#ifndef VLQ_OBS_TRACE_H
#define VLQ_OBS_TRACE_H

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace vlq {
namespace obs {

/**
 * Span/event tracing exported as a Chrome `trace_event` JSON timeline
 * (load the file at chrome://tracing or https://ui.perfetto.dev).
 *
 * Events buffer into lock-free thread-local vectors; each pipeline
 * thread renders as one timeline lane ("tid"): lane 0 is the main
 * thread, and ThreadPool assigns worker w lane w+1, so successive
 * parallelFor generations of pool threads share stable lanes and the
 * sample/gather/decode/commit spans of one batch read as one row.
 * Event names must be string literals (they are stored by pointer).
 *
 * Buffers are bounded (drops are counted, never blocking); exited
 * threads move their buffers into a retired list so the exporter sees
 * every pool worker's spans after joins.
 */

/** Whether span recording is on (one relaxed load; hot-path guard). */
inline bool traceEnabled()
{
    return (detail::obsFlags() & detail::kTraceBit) != 0;
}

void setTraceEnabled(bool on);

/** Nanoseconds on the steady trace clock (shared by StageTimer). */
uint64_t traceNowNs();

/**
 * Record one complete ("ph":"X") span on the calling thread's lane.
 * `name` must outlive the trace (use string literals).
 */
void traceSpan(const char* name, uint64_t startNs, uint64_t durNs);

/**
 * Record one counter ("ph":"C") sample: a stepped value-over-time
 * track in the viewer (e.g. cumulative UF fast-path hits).
 */
void traceCounter(const char* name, uint64_t value);

/**
 * Pin the calling thread to timeline lane `lane` (0 = main). Called by
 * ThreadPool for its workers; lanes persist for the thread's lifetime.
 */
void traceSetThreadLane(uint32_t lane);

/** Events discarded because a per-thread buffer filled up. */
uint64_t traceDroppedEvents();

/**
 * Drain-free JSON export of everything recorded so far (retired and
 * live buffers). Call with worker threads joined for a complete view.
 */
std::string traceToJson();

/**
 * Write traceToJson() to `path`.
 * @return true on success; false with *err filled otherwise.
 */
bool writeTraceJson(const std::string& path, std::string* err);

} // namespace obs
} // namespace vlq

#endif // VLQ_OBS_TRACE_H
