#ifndef VLQ_OBS_OBS_H
#define VLQ_OBS_OBS_H

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlq {
namespace obs {

/**
 * Umbrella header of the observability layer: the RAII stage timer
 * used at every pipeline instrumentation point, plus the env/CLI glue
 * the executables share.
 *
 * Enabling knobs (all off by default -- the disabled pipeline is
 * bit-identical and within noise of an uninstrumented build):
 *
 *   VLQ_METRICS=1           record metrics (report printed nowhere;
 *                           snapshotMetrics()/tests consume them)
 *   VLQ_METRICS_JSON=path   record metrics and write the end-of-run
 *                           JSON report to `path` on finalize()
 *   VLQ_TRACE=path          record spans and write a Chrome
 *                           trace_event JSON timeline to `path`
 *   --metrics-json/--trace-json   CLI equivalents (applyCliPaths)
 *
 * Multiplexed producers (the scan job service runs many jobs through
 * one registry) keep per-producer counts by interning labeled names
 * via labeledName() (metrics.h) -- e.g. `service.job.trials{job="x"}`
 * -- guarded by metricsEnabled() like every other site, so the
 * zero-cost-when-disabled contract holds regardless of how many jobs
 * a server session runs. The JSON helpers (obs/json.h) are shared
 * beyond the metrics report: the service's vlq-scan-job/1 event
 * stream is built on jsonQuote/jsonNumber and tested with jsonLint.
 */

/** True when either metrics or tracing is on (one relaxed load). */
inline bool anyEnabled()
{
    return detail::obsFlags() != 0;
}

/**
 * RAII scoped timer for one pipeline stage: on destruction records the
 * elapsed nanoseconds into the histogram named `name` (when metrics
 * are on) and emits a complete-span trace event of the same name on
 * the calling thread's lane (when tracing is on). Fully inert -- no
 * clock read, no allocation -- when both are off:
 *
 *     void FaultSampler::sampleBatchInto(...) {
 *         obs::StageTimer timer("sampler.sample_batch");
 *         ...
 *     }
 *
 * `name` must be a string literal (stored by pointer).
 */
class StageTimer
{
  public:
    explicit StageTimer(const char* name)
    {
        flags_ = detail::obsFlags();
        if (flags_ == 0)
            return;
        name_ = name;
        start_ = traceNowNs();
    }

    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

    ~StageTimer()
    {
        if (!name_)
            return;
        uint64_t dur = traceNowNs() - start_;
        if (flags_ & detail::kMetricsBit)
            Histogram::get(name_).record(dur);
        if (flags_ & detail::kTraceBit)
            traceSpan(name_, start_, dur);
    }

  private:
    const char* name_ = nullptr;
    uint64_t start_ = 0;
    uint32_t flags_ = 0;
};

/**
 * Enable metrics/tracing from VLQ_METRICS, VLQ_METRICS_JSON and
 * VLQ_TRACE. Call once near the top of main(), before the pipeline
 * runs; harmless when none of the variables are set.
 */
void initFromEnv();

/**
 * Apply the shared --metrics-json/--trace-json CLI flags (empty =
 * flag absent, keeps the env-derived setting). A non-empty path
 * enables the corresponding collection.
 */
void applyCliPaths(const std::string& metricsJsonPath,
                   const std::string& traceJsonPath);

/** Output paths currently configured (env or CLI), empty = none. */
std::string configuredMetricsJsonPath();
std::string configuredTraceJsonPath();

/**
 * Write every configured output (metrics report, trace timeline).
 * Call at the end of main(); a no-op when nothing was configured.
 * @return true on success; false with *err filled otherwise.
 */
bool finalize(std::string* err);

} // namespace obs
} // namespace vlq

#endif // VLQ_OBS_OBS_H
