#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <vector>

namespace vlq {
namespace obs {

namespace {

/** Per-thread buffers are bounded; overflow counts drops. */
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

enum class EventKind : uint8_t { Span, Counter };

struct TraceEvent
{
    const char* name;  // string literal, stored by pointer
    uint64_t startNs;
    uint64_t value;    // Span: duration ns; Counter: sampled value
    uint32_t lane;
    EventKind kind;
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::vector<TraceEvent>> retired;
    std::vector<const std::vector<TraceEvent>*> live;
    std::atomic<uint64_t> dropped{0};
};

TraceState&
state()
{
    static TraceState* s = new TraceState();
    return *s;
}

struct ThreadBuffer
{
    std::vector<TraceEvent> events;
    bool registered = false;

    ~ThreadBuffer()
    {
        if (!registered)
            return;
        TraceState& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        std::erase(s.live, &events);
        if (!events.empty())
            s.retired.push_back(std::move(events));
    }
};

thread_local ThreadBuffer tBuffer;
thread_local uint32_t tLane = 0; // 0 = main / unpinned

void
record(const char* name, uint64_t startNs, uint64_t value,
       EventKind kind)
{
    ThreadBuffer& buf = tBuffer;
    if (!buf.registered) {
        TraceState& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.live.push_back(&buf.events);
        buf.registered = true;
    }
    if (buf.events.size() >= kMaxEventsPerThread) {
        state().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events.push_back(TraceEvent{name, startNs, value, tLane, kind});
}

void
appendJsonString(std::string& out, const char* s)
{
    out += '"';
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof esc, "\\u%04x", c);
            out += esc;
        } else {
            out += c;
        }
    }
    out += '"';
}

void
appendEvent(std::string& out, const TraceEvent& e, bool& first)
{
    char buf[160];
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"name\":";
    appendJsonString(out, e.name);
    if (e.kind == EventKind::Span) {
        std::snprintf(buf, sizeof buf,
                      ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      static_cast<double>(e.startNs) / 1000.0,
                      static_cast<double>(e.value) / 1000.0, e.lane);
    } else {
        std::snprintf(buf, sizeof buf,
                      ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"value\":%llu}}",
                      static_cast<double>(e.startNs) / 1000.0, e.lane,
                      static_cast<unsigned long long>(e.value));
    }
    out += buf;
}

} // namespace

void
setTraceEnabled(bool on)
{
    if (on) {
        (void)state();
        (void)traceNowNs(); // pin the clock epoch before any span
        detail::gObsFlags.fetch_or(detail::kTraceBit,
                                   std::memory_order_relaxed);
    } else {
        detail::gObsFlags.fetch_and(~detail::kTraceBit,
                                    std::memory_order_relaxed);
    }
}

uint64_t
traceNowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

void
traceSpan(const char* name, uint64_t startNs, uint64_t durNs)
{
    record(name, startNs, durNs, EventKind::Span);
}

void
traceCounter(const char* name, uint64_t value)
{
    record(name, traceNowNs(), value, EventKind::Counter);
}

void
traceSetThreadLane(uint32_t lane)
{
    tLane = lane;
}

uint64_t
traceDroppedEvents()
{
    return state().dropped.load(std::memory_order_relaxed);
}

std::string
traceToJson()
{
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);

    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    std::set<uint32_t> lanes;
    for (const auto& buffer : s.retired)
        for (const TraceEvent& e : buffer) {
            lanes.insert(e.lane);
            appendEvent(out, e, first);
        }
    for (const auto* buffer : s.live)
        for (const TraceEvent& e : *buffer) {
            lanes.insert(e.lane);
            appendEvent(out, e, first);
        }

    // Lane names: metadata events label the rows in the viewer.
    for (uint32_t lane : lanes) {
        char name[32];
        if (lane == 0)
            std::snprintf(name, sizeof name, "main");
        else
            std::snprintf(name, sizeof name, "worker-%u", lane);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,\"args\":{\"name\":"
                      "\"%s\"}}",
                      first ? "" : ",\n", lane, name);
        first = false;
        out += buf;
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeTraceJson(const std::string& path, std::string* err)
{
    std::ofstream outFile(path, std::ios::trunc);
    if (!outFile.is_open()) {
        if (err)
            *err = "cannot open trace file '" + path + "'";
        return false;
    }
    outFile << traceToJson();
    outFile.flush();
    if (!outFile.good()) {
        if (err)
            *err = "failed writing trace file '" + path + "'";
        return false;
    }
    return true;
}

} // namespace obs
} // namespace vlq
