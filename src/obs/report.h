#ifndef VLQ_OBS_REPORT_H
#define VLQ_OBS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace vlq {
namespace obs {

/**
 * Structured end-of-run report: everything a perf claim needs in one
 * JSON document -- per-point throughput, the merged metric registry
 * (stage latency histograms with quantiles, pipeline counters, the UF
 * fast-path hit rate), and the run's wall/CPU split. Written by the
 * --metrics-json / VLQ_METRICS_JSON knobs of the scan executables and
 * validated in CI by tools/check_metrics.py.
 *
 * Schema (referenced by check_metrics.py and README):
 *
 *   {"schema": "vlq-metrics-report/1",
 *    "run": {"wall_seconds", "cpu_seconds", "utilization",
 *            "hardware_threads", "trace_dropped_events"},
 *    "points": [{"embedding", "distance", "p", "basis", "trials",
 *                "failures", "session_trials", "wall_seconds",
 *                "shots_per_sec"}],
 *    "counters": {name: value},
 *    "gauges": {name: value},
 *    "histograms": {name: {"unit": "ns", "count", "sum", "mean",
 *                          "min", "max", "p50", "p90", "p99"}},
 *    "derived": {"uf_fastpath_hit_rate"?, "total_shots_per_sec"?}}
 */

/** One Monte-Carlo data point's contribution to the report. */
struct PointReport
{
    std::string embedding;
    int distance = 0;
    double physicalP = 0.0;
    char basis = 'Z';
    uint64_t trials = 0;        // global committed trials (with resume)
    uint64_t failures = 0;
    uint64_t sessionTrials = 0; // trials actually sampled this process
    double wallSeconds = 0.0;
    double shotsPerSec = 0.0;   // sessionTrials / wallSeconds
};

/**
 * Append one point (thread-safe). The MC engine calls this for every
 * finished basis point when metrics are enabled; no-op otherwise.
 */
void reportPoint(const PointReport& point);

/** Points reported so far, in completion order. */
std::vector<PointReport> reportedPoints();

/** Build the full report document (always well-formed JSON). */
std::string buildReportJson();

/**
 * Write buildReportJson() to `path`.
 * @return true on success; false with *err filled otherwise.
 */
bool writeReportJson(const std::string& path, std::string* err);

} // namespace obs
} // namespace vlq

#endif // VLQ_OBS_REPORT_H
