#ifndef VLQ_MC_CHECKPOINT_H
#define VLQ_MC_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/generator_common.h"
#include "mc/monte_carlo.h"

namespace vlq {

/**
 * Checkpoint/resume for long Monte-Carlo runs.
 *
 * Production threshold and sensitivity scans run 1e8-1e9 trials per
 * (embedding, distance, p) point and must survive preemption. The
 * engine makes resuming cheap and *exactly* verifiable: every trial
 * samples from an RNG stream derived from (seed, trial index), and
 * batches commit strictly in trial order, so the committed frontier of
 * a killed run is a prefix of the uninterrupted run's trial sequence.
 * Restarting from that frontier therefore reproduces the uninterrupted
 * failure counts bit-identically -- including the stop trial of
 * McOptions::targetFailures early-stopped runs.
 *
 * On-disk format (text, one state file per run, written atomically by
 * writing to `<path>.tmp` and renaming over `<path>`):
 *
 *     vlq-mc-checkpoint 1
 *     fingerprint <16 hex digits>
 *     config <canonical key=value summary of the run configuration>
 *     meta <key>=<value>
 *     ...
 *     point <16 hex key> trials=<N> failures=<M> done=<0|1>
 *     ...
 *     end <point count>
 *
 * `meta` lines are optional, fingerprint-exempt annotations (written
 * sorted by key): provenance that may legally differ between two
 * resumable runs of the same configuration. The engine records the
 * compute backend here (`meta compute=simd`) because backends are
 * bit-identical by contract -- a run checkpointed under one backend
 * may resume under another, so the backend must not gate resume the
 * way the fingerprint does.
 *
 * The fingerprint is a hash of the canonical config summary (seed,
 * trial budget, batch size, decoder, early-stop target, and -- for grid
 * scans -- embedding, schedule and the distances/ps grid). Opening a
 * file whose fingerprint does not match the current run is a hard
 * error: silently mixing counts from different configurations would
 * corrupt the estimate. Each `point` line is the committed frontier of
 * one (generator config, basis) Monte-Carlo point, keyed by a hash of
 * the full point configuration; `done` marks points whose budget is
 * exhausted (or whose early-stop target fired), which a resumed grid
 * scan skips without regenerating circuits. The trailing `end` line
 * makes truncation detectable.
 *
 * Checkpoints are also the suspend/resume mechanism of the scan job
 * service (src/service/): cooperative preemption
 * (McOptions::preempt) persists the running point's frontier with
 * done=0 at a batch boundary, and a preempted or killed job resumes
 * from its file bit-identically. Because save() writes points sorted
 * and doubles canonically, a job checkpoint stamped with the same
 * thresholdScanFingerprint as a solo threshold_scan run is
 * byte-identical to the solo run's file -- `cmp` is a valid equality
 * check, which CI uses after a SIGKILL loop.
 */

/** Committed Monte-Carlo frontier of one (config, basis) point. */
struct CheckpointEntry
{
    /** Trials committed in order from trial 0. */
    uint64_t trialsDone = 0;

    /** Failures among the committed trials. */
    uint64_t failures = 0;

    /** True when the point is finished (budget done or early stop). */
    bool done = false;
};

/** FNV-1a 64-bit hash (the checkpoint key/fingerprint hash). */
uint64_t fnv1a64(std::string_view text);

/** 16-digit zero-padded hex, the format of keys in checkpoint files. */
std::string hex16(uint64_t value);

/** Format a double so that equal values round-trip to equal text. */
std::string canonicalDouble(double value);

/**
 * Stable identity of one Monte-Carlo point: a hash over the embedding,
 * the memory basis, and every count-affecting GeneratorConfig field
 * (patch shape, rounds, cavity depth, schedule, gap model, and the
 * full noise model including hardware parameters). Two points with the
 * same key sample identical trial streams under the same run seed.
 */
uint64_t checkpointPointKey(EmbeddingKind embedding,
                            const GeneratorConfig& config);

/**
 * Canonical fingerprint summary of a standalone estimate: the
 * engine-level knobs that define the trial stream and stop rule
 * (seed, trials, batchSize, decoder, targetFailures). Grid scanners
 * extend this with their grid (see scanThreshold / runSensitivity).
 */
std::string mcRunFingerprintSummary(const McOptions& options);

/**
 * In-memory image of one checkpoint file. Not thread-safe; the engine
 * mutates it only from the batch-commit path, which is serialized.
 */
class McCheckpoint
{
  public:
    /** Disabled (not bound to a path) until open() succeeds. */
    McCheckpoint() = default;

    /**
     * Bind to `path` and load any existing file there.
     *
     * A missing file starts an empty checkpoint (fresh run). An
     * existing file must carry a supported format version, the exact
     * fingerprint hash of `summary`, and structurally valid contents
     * through the trailing `end` marker. A leftover `<path>.tmp` from
     * a crash mid-save is ignored (the rename never happened, so the
     * main file is the last consistent state).
     *
     * @return empty string on success, else a description of why the
     *         file was rejected (corrupt, truncated, version mismatch,
     *         fingerprint mismatch); the checkpoint stays disabled.
     *         The message is complete and user-facing: callers (the
     *         scan CLIs, the job service's per-job error events)
     *         surface it verbatim.
     */
    std::string open(const std::string& path, const std::string& summary);

    bool enabled() const { return !path_.empty(); }
    const std::string& path() const { return path_; }

    /** Fingerprint hash of the bound run configuration. */
    uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Set a fingerprint-exempt metadata annotation (in memory; save()
     * persists). Keys and values must be single space-free tokens.
     * Setting an existing key overwrites it -- meta records the last
     * run's provenance, not history.
     */
    void setMeta(const std::string& key, const std::string& value);

    /** Look up a metadata value ("" when absent). */
    std::string meta(const std::string& key) const;

    /** Look up a point's committed frontier (nullptr when absent). */
    const CheckpointEntry* find(uint64_t pointKey) const;

    /** Set a point's committed frontier (in memory; save() persists). */
    void update(uint64_t pointKey, const CheckpointEntry& entry);

    size_t numPoints() const { return entries_.size(); }

    /**
     * Persist atomically: serialize to `<path>.tmp`, then rename over
     * `<path>`. Points are written sorted by key, so two runs that
     * commit the same frontiers produce byte-identical files.
     *
     * @return empty string on success, else the failure description.
     */
    std::string save() const;

  private:
    std::string path_;
    uint64_t fingerprint_ = 0;
    std::string summary_;
    std::map<std::string, std::string> meta_;
    std::map<uint64_t, CheckpointEntry> entries_;
};

} // namespace vlq

#endif // VLQ_MC_CHECKPOINT_H
