#include "mc/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <vector>

#include "compute/compute_backend.h"
#include "compute/compute_registry.h"
#include "core/generator_registry.h"
#include "decoder/decoder_factory.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "mc/checkpoint.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace vlq {

double
LogicalErrorPoint::combinedRate() const
{
    double pz = basisZ.rate();
    double px = basisX.rate();
    return 1.0 - (1.0 - pz) * (1.0 - px);
}

std::string
McProgress::heartbeatString() const
{
    // Defensive on both ends: a default-constructed or adversarial
    // McProgress (inf/NaN rate, negative ETA) must render as unknown,
    // never as "inf shots/s" or a garbage cast of a huge double.
    const bool rateKnown = std::isfinite(shotsPerSec) && shotsPerSec > 0.0;
    std::ostringstream os;
    if (rateKnown)
        os << TablePrinter::sci(shotsPerSec, 1) << " shots/s";
    else
        os << "-- shots/s";
    os << ", eta ";
    if (rateKnown && std::isfinite(etaSeconds) && etaSeconds >= 0.0)
        os << static_cast<uint64_t>(etaSeconds) << "s";
    else
        os << "--";
    return os.str();
}

namespace {

/**
 * Commits batch results strictly in batch-index order, regardless of
 * which worker finished them first. This is what makes the running
 * failure stream, the progress callbacks, and -- crucially -- the
 * early-stop point deterministic: the run always stops right after
 * the targetFailures-th failing *trial*, a property of the sampled
 * outcomes alone, never of thread scheduling or batch size.
 *
 * A run resumed from a checkpoint starts with the checkpoint's
 * committed frontier (resumeTrials/resumeFailures): batch 0 then
 * covers trials [resumeTrials, resumeTrials + batchSize), and all
 * counts stay global to the full budget, so the committed stream is
 * the exact suffix of the uninterrupted run's stream.
 */
class BatchSequencer
{
  public:
    BatchSequencer(uint64_t trials, uint32_t batchSize,
                   const McOptions& options, uint64_t resumeTrials,
                   uint64_t resumeFailures,
                   std::function<void(uint64_t, uint64_t)> commitHook)
        : trials_(trials), batchSize_(batchSize),
          resumeTrials_(resumeTrials), target_(options.targetFailures),
          progress_(options.progress), preempt_(options.preempt),
          commitHook_(std::move(commitHook)), failures_(resumeFailures),
          trialsDone_(resumeTrials),
          start_(std::chrono::steady_clock::now())
    {
    }

    /** Workers poll this (lock-free) to stop pulling new batches. */
    bool stopped() const
    {
        return stopFlag_.load(std::memory_order_relaxed);
    }

    /**
     * Hand in one finished batch: `failingTrials` are the global
     * indices of this batch's failing trials, ascending.
     */
    void submit(uint64_t batchIndex,
                std::vector<uint64_t> failingTrials)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace(batchIndex, std::move(failingTrials));
        while (!done_) {
            auto it = pending_.find(nextToCommit_);
            if (it == pending_.end())
                break;
            std::vector<uint64_t> fails = std::move(it->second);
            pending_.erase(it);
            const uint64_t prevTrials = trialsDone_;
            const uint64_t prevFailures = failures_;
            uint64_t batchEnd =
                std::min(trials_, resumeTrials_
                                      + (nextToCommit_ + 1)
                                            * static_cast<uint64_t>(
                                                batchSize_));
            if (target_ > 0) {
                for (uint64_t t : fails) {
                    ++failures_;
                    if (failures_ >= target_) {
                        trialsDone_ = t + 1;
                        done_ = true;
                        stopFlag_.store(true,
                                        std::memory_order_relaxed);
                        break;
                    }
                }
            } else {
                failures_ += fails.size();
            }
            if (!done_)
                trialsDone_ = batchEnd;
            ++nextToCommit_;
            if (obs::metricsEnabled()) {
                static const obs::Counter batches =
                    obs::Counter::get("mc.batches_committed");
                static const obs::Counter trialsCtr =
                    obs::Counter::get("mc.trials_committed");
                static const obs::Counter failuresCtr =
                    obs::Counter::get("mc.failures");
                batches.add(1);
                trialsCtr.add(trialsDone_ - prevTrials);
                failuresCtr.add(failures_ - prevFailures);
            }
            if (progress_) {
                McProgress p{trialsDone_, failures_, trials_};
                p.elapsedSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
                const uint64_t session = trialsDone_ - resumeTrials_;
                if (p.elapsedSeconds > 0.0 && session > 0) {
                    double rate = static_cast<double>(session)
                        / p.elapsedSeconds;
                    // Clamp: the first heartbeat after a resume can
                    // land before the steady clock has advanced
                    // measurably, making the naive ratio 0, inf, or
                    // NaN. Unknown values stay at their sentinels
                    // (0 / -1) so renderers print "--", not garbage.
                    if (std::isfinite(rate) && rate > 0.0) {
                        p.shotsPerSec = rate;
                        double eta = done_ || trialsDone_ >= trials_
                            ? 0.0
                            : static_cast<double>(trials_ - trialsDone_)
                                / rate;
                        if (std::isfinite(eta))
                            p.etaSeconds = eta;
                    }
                }
                progress_(p);
            }
            if (commitHook_ && !done_)
                commitHook_(trialsDone_, failures_);
            // Preemption boundary: the batch just committed is the
            // clean suspend point. Everything already committed stays
            // (and is what the checkpoint persists); everything still
            // pending is discarded and will be resampled after resume
            // -- bit-identically, since each trial owns its RNG
            // stream.
            if (!done_ && preempt_ && preempt_()) {
                preempted_ = true;
                done_ = true;
                stopFlag_.store(true, std::memory_order_relaxed);
            }
        }
        if (done_)
            pending_.clear();
    }

    /** True when McOptions::preempt cut the run short. */
    bool preempted() const { return preempted_; }

    BinomialEstimate result() const
    {
        BinomialEstimate est;
        est.successes = failures_;
        est.trials = trialsDone_;
        return est;
    }

  private:
    const uint64_t trials_;
    const uint32_t batchSize_;
    const uint64_t resumeTrials_;
    const uint64_t target_;
    const std::function<void(const McProgress&)>& progress_;
    const std::function<bool()>& preempt_;
    const std::function<void(uint64_t, uint64_t)> commitHook_;

    std::mutex mutex_;
    std::map<uint64_t, std::vector<uint64_t>> pending_;
    uint64_t nextToCommit_ = 0;
    uint64_t failures_ = 0;
    uint64_t trialsDone_ = 0;
    bool done_ = false;
    bool preempted_ = false;
    std::atomic<bool> stopFlag_{false};
    const std::chrono::steady_clock::time_point start_;
};

} // namespace

BinomialEstimate
estimateLogicalErrorBasis(EmbeddingKind embedding,
                          const GeneratorConfig& config,
                          const McOptions& options)
{
    const uint64_t trials = options.trials;
    if (trials == 0)
        return BinomialEstimate{};

    // Checkpoint/resume: bind the state file (validating its config
    // fingerprint), and look up this point's committed frontier. Done
    // points return their stored counts without even generating the
    // circuit, so a resumed grid scan skips completed points entirely.
    McCheckpoint checkpoint;
    uint64_t pointKey = 0;
    uint64_t resumeTrials = 0;
    uint64_t resumeFailures = 0;
    if (!options.checkpointPath.empty()) {
        pointKey = checkpointPointKey(embedding, config);
        std::string err = checkpoint.open(
            options.checkpointPath,
            options.checkpointFingerprint.empty()
                ? mcRunFingerprintSummary(options)
                : options.checkpointFingerprint);
        if (!err.empty())
            VLQ_FATAL(err.c_str());
        if (const CheckpointEntry* entry = checkpoint.find(pointKey)) {
            BinomialEstimate est;
            est.successes = entry->failures;
            est.trials = entry->trialsDone;
            if (entry->done)
                return est;
            resumeTrials = entry->trialsDone;
            resumeFailures = entry->failures;
            if (resumeTrials >= trials) {
                // The frontier already covers the budget (killed
                // between the last commit and the done flag).
                checkpoint.update(pointKey, {resumeTrials, resumeFailures,
                                             true});
                std::string saveErr = checkpoint.save();
                if (!saveErr.empty())
                    VLQ_FATAL(saveErr.c_str());
                return est;
            }
        }
    }

    GeneratedCircuit gen = generateMemoryCircuit(embedding, config);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);

    std::unique_ptr<Decoder> decoder = makeDecoder(options.decoder, dem);
    std::unique_ptr<ComputeBackend> compute =
        makeComputeBackend(options.compute, dem, sampler, *decoder);
    if (checkpoint.enabled()) {
        // Record the backend in the checkpoint's fingerprint-exempt
        // metadata: backends are bit-identical, so a run may legally
        // resume under a different one -- the recorded name is
        // provenance, not a compatibility gate.
        checkpoint.setMeta("compute", compute->name());
    }

    // Distinguish the two bases in the trial RNG stream.
    uint64_t baseSeed = options.seed
        ^ (config.memoryBasis == CheckBasis::X ? 0xbadc0ffee0ddf00dULL : 0);
    const Rng root(baseSeed);

    const uint32_t batchSize = std::max<uint32_t>(1, options.batchSize);
    const uint64_t numBatches =
        (trials - resumeTrials + batchSize - 1) / batchSize;

    // Periodic frontier persistence, throttled to checkpointEveryTrials
    // committed trials; runs in commit order under the sequencer lock.
    std::function<void(uint64_t, uint64_t)> commitHook;
    if (checkpoint.enabled()) {
        const uint64_t every = options.checkpointEveryTrials > 0
            ? options.checkpointEveryTrials : uint64_t{65536};
        commitHook = [&checkpoint, pointKey, every,
                      lastSaved = resumeTrials](uint64_t trialsDone,
                                                uint64_t failures)
            mutable {
            if (trialsDone - lastSaved < every)
                return;
            checkpoint.update(pointKey, {trialsDone, failures, false});
            std::string err = checkpoint.save();
            if (!err.empty())
                VLQ_FATAL(err.c_str());
            lastSaved = trialsDone;
        };
    }

    BatchSequencer sequencer(trials, batchSize, options, resumeTrials,
                             resumeFailures, std::move(commitHook));
    std::atomic<uint64_t> nextBatch{0};

    ThreadPool pool(options.threads);
    unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        pool.numThreads(), numBatches));
    const auto pointStart = std::chrono::steady_clock::now();
    if (obs::metricsEnabled()) {
        static const obs::Gauge threadsGauge =
            obs::Gauge::get("mc.threads");
        static const obs::Gauge batchGauge =
            obs::Gauge::get("mc.batch_size");
        threadsGauge.set(workers);
        batchGauge.set(batchSize);
    }
    // Each worker pulls batch indices from a shared counter (dynamic
    // load balancing; under early stop, low indices -- the ones that
    // decide the stop point -- are processed first).
    pool.parallelFor(workers, [&](uint64_t wBegin, uint64_t wEnd,
                                  unsigned) {
        (void)wBegin;
        (void)wEnd;
        ShotBatch batch;
        std::vector<uint32_t> predictions;
        std::vector<uint64_t> failingTrials;
        while (!sequencer.stopped()) {
            uint64_t b = nextBatch.fetch_add(1,
                                             std::memory_order_relaxed);
            if (b >= numBatches)
                break;
            obs::StageTimer batchTimer("mc.batch");
            uint64_t begin = resumeTrials + b * batchSize;
            uint32_t count = static_cast<uint32_t>(
                std::min<uint64_t>(batchSize, trials - begin));
            batch.reset(dem.numDetectors(), dem.numObservables(), count,
                        begin, dem.numErasureSites());
            compute->sampleBatch(root, batch);
            predictions.resize(count);
            compute->decodeBatch(batch,
                                 std::span<uint32_t>(predictions));
            compute->countFailures(batch, predictions, failingTrials);
            sequencer.submit(b, failingTrials);
        }
    });

    BinomialEstimate est = sequencer.result();
    if (sequencer.preempted()) {
        // Suspend, don't finish: persist the committed frontier with
        // done=false so a later run (same options, same checkpoint)
        // resumes from this exact batch boundary. The partial point is
        // deliberately not reported to obs -- the resuming run reports
        // it once, when it actually completes.
        if (options.preempted)
            *options.preempted = true;
        if (checkpoint.enabled()) {
            checkpoint.update(pointKey, {est.trials, est.successes,
                                         false});
            std::string err = checkpoint.save();
            if (!err.empty())
                VLQ_FATAL(err.c_str());
        }
        return est;
    }
    if (obs::metricsEnabled()) {
        obs::PointReport pr;
        pr.embedding = embeddingKindName(embedding);
        pr.distance = config.distance;
        pr.physicalP = config.noise.p2;
        pr.basis = config.memoryBasis == CheckBasis::X ? 'X' : 'Z';
        pr.trials = est.trials;
        pr.failures = est.successes;
        pr.sessionTrials = est.trials - resumeTrials;
        pr.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - pointStart)
                .count();
        pr.shotsPerSec = pr.wallSeconds > 0.0
            ? static_cast<double>(pr.sessionTrials) / pr.wallSeconds
            : 0.0;
        obs::reportPoint(pr);
    }
    if (checkpoint.enabled()) {
        // The point is finished (budget exhausted or early stop fired):
        // persist the final frontier with the done flag.
        checkpoint.update(pointKey, {est.trials, est.successes, true});
        std::string err = checkpoint.save();
        if (!err.empty())
            VLQ_FATAL(err.c_str());
    }
    return est;
}

LogicalErrorPoint
estimateLogicalError(EmbeddingKind embedding, const GeneratorConfig& config,
                     const McOptions& options)
{
    LogicalErrorPoint point;
    point.distance = config.distance;
    point.physicalP = config.noise.p2;

    GeneratorConfig cz = config;
    cz.memoryBasis = CheckBasis::Z;
    point.basisZ = estimateLogicalErrorBasis(embedding, cz, options);

    GeneratorConfig cx = config;
    cx.memoryBasis = CheckBasis::X;
    point.basisX = estimateLogicalErrorBasis(embedding, cx, options);
    return point;
}

} // namespace vlq
