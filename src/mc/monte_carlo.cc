#include "mc/monte_carlo.h"

#include <atomic>
#include <memory>

#include "decoder/decoder_factory.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace vlq {

double
LogicalErrorPoint::combinedRate() const
{
    double pz = basisZ.rate();
    double px = basisX.rate();
    return 1.0 - (1.0 - pz) * (1.0 - px);
}

BinomialEstimate
estimateLogicalErrorBasis(EmbeddingKind embedding,
                          const GeneratorConfig& config,
                          const McOptions& options)
{
    GeneratedCircuit gen = generateMemoryCircuit(embedding, config);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);

    std::unique_ptr<Decoder> decoder = makeDecoder(options.decoder, dem);

    // Distinguish the two bases in the trial RNG stream.
    uint64_t baseSeed = options.seed
        ^ (config.memoryBasis == CheckBasis::X ? 0xbadc0ffee0ddf00dULL : 0);
    Rng root(baseSeed);

    std::atomic<uint64_t> failures{0};
    ThreadPool pool(options.threads);
    pool.parallelFor(options.trials,
                     [&](uint64_t begin, uint64_t end, unsigned) {
        BitVec detectors(dem.numDetectors());
        uint32_t observables = 0;
        uint64_t local = 0;
        for (uint64_t i = begin; i < end; ++i) {
            Rng rng = root.split(i);
            sampler.sampleInto(rng, detectors, observables);
            uint32_t predicted = decoder->decode(detectors);
            if (predicted != observables)
                ++local;
        }
        failures.fetch_add(local, std::memory_order_relaxed);
    });

    BinomialEstimate est;
    est.successes = failures.load();
    est.trials = options.trials;
    return est;
}

LogicalErrorPoint
estimateLogicalError(EmbeddingKind embedding, const GeneratorConfig& config,
                     const McOptions& options)
{
    LogicalErrorPoint point;
    point.distance = config.distance;
    point.physicalP = config.noise.p2;

    GeneratorConfig cz = config;
    cz.memoryBasis = CheckBasis::Z;
    point.basisZ = estimateLogicalErrorBasis(embedding, cz, options);

    GeneratorConfig cx = config;
    cx.memoryBasis = CheckBasis::X;
    point.basisX = estimateLogicalErrorBasis(embedding, cx, options);
    return point;
}

} // namespace vlq
