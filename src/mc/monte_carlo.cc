#include "mc/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "decoder/decoder_factory.h"
#include "dem/detector_model.h"
#include "dem/sampler.h"
#include "dem/shot_batch.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace vlq {

double
LogicalErrorPoint::combinedRate() const
{
    double pz = basisZ.rate();
    double px = basisX.rate();
    return 1.0 - (1.0 - pz) * (1.0 - px);
}

namespace {

/**
 * Commits batch results strictly in batch-index order, regardless of
 * which worker finished them first. This is what makes the running
 * failure stream, the progress callbacks, and -- crucially -- the
 * early-stop point deterministic: the run always stops right after
 * the targetFailures-th failing *trial*, a property of the sampled
 * outcomes alone, never of thread scheduling or batch size.
 */
class BatchSequencer
{
  public:
    BatchSequencer(uint64_t trials, uint32_t batchSize,
                   const McOptions& options)
        : trials_(trials), batchSize_(batchSize),
          target_(options.targetFailures),
          progress_(options.progress)
    {
    }

    /** Workers poll this (lock-free) to stop pulling new batches. */
    bool stopped() const
    {
        return stopFlag_.load(std::memory_order_relaxed);
    }

    /**
     * Hand in one finished batch: `failingTrials` are the global
     * indices of this batch's failing trials, ascending.
     */
    void submit(uint64_t batchIndex,
                std::vector<uint64_t> failingTrials)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace(batchIndex, std::move(failingTrials));
        while (!done_) {
            auto it = pending_.find(nextToCommit_);
            if (it == pending_.end())
                break;
            std::vector<uint64_t> fails = std::move(it->second);
            pending_.erase(it);
            uint64_t batchEnd =
                std::min(trials_, (nextToCommit_ + 1)
                                      * static_cast<uint64_t>(batchSize_));
            if (target_ > 0) {
                for (uint64_t t : fails) {
                    ++failures_;
                    if (failures_ >= target_) {
                        trialsDone_ = t + 1;
                        done_ = true;
                        stopFlag_.store(true,
                                        std::memory_order_relaxed);
                        break;
                    }
                }
            } else {
                failures_ += fails.size();
            }
            if (!done_)
                trialsDone_ = batchEnd;
            ++nextToCommit_;
            if (progress_)
                progress_(McProgress{trialsDone_, failures_, trials_});
        }
        if (done_)
            pending_.clear();
    }

    BinomialEstimate result() const
    {
        BinomialEstimate est;
        est.successes = failures_;
        est.trials = trialsDone_;
        return est;
    }

  private:
    const uint64_t trials_;
    const uint32_t batchSize_;
    const uint64_t target_;
    const std::function<void(const McProgress&)>& progress_;

    std::mutex mutex_;
    std::map<uint64_t, std::vector<uint64_t>> pending_;
    uint64_t nextToCommit_ = 0;
    uint64_t failures_ = 0;
    uint64_t trialsDone_ = 0;
    bool done_ = false;
    std::atomic<bool> stopFlag_{false};
};

} // namespace

BinomialEstimate
estimateLogicalErrorBasis(EmbeddingKind embedding,
                          const GeneratorConfig& config,
                          const McOptions& options)
{
    GeneratedCircuit gen = generateMemoryCircuit(embedding, config);
    DetectorErrorModel dem = DetectorErrorModel::build(gen.circuit);
    FaultSampler sampler(dem);

    std::unique_ptr<Decoder> decoder = makeDecoder(options.decoder, dem);

    // Distinguish the two bases in the trial RNG stream.
    uint64_t baseSeed = options.seed
        ^ (config.memoryBasis == CheckBasis::X ? 0xbadc0ffee0ddf00dULL : 0);
    const Rng root(baseSeed);

    const uint64_t trials = options.trials;
    if (trials == 0)
        return BinomialEstimate{};
    const uint32_t batchSize = std::max<uint32_t>(1, options.batchSize);
    const uint64_t numBatches = (trials + batchSize - 1) / batchSize;

    BatchSequencer sequencer(trials, batchSize, options);
    std::atomic<uint64_t> nextBatch{0};

    ThreadPool pool(options.threads);
    unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        pool.numThreads(), numBatches));
    // Each worker pulls batch indices from a shared counter (dynamic
    // load balancing; under early stop, low indices -- the ones that
    // decide the stop point -- are processed first).
    pool.parallelFor(workers, [&](uint64_t wBegin, uint64_t wEnd,
                                  unsigned) {
        (void)wBegin;
        (void)wEnd;
        ShotBatch batch;
        std::vector<uint32_t> predictions;
        std::vector<uint64_t> failingTrials;
        while (!sequencer.stopped()) {
            uint64_t b = nextBatch.fetch_add(1,
                                             std::memory_order_relaxed);
            if (b >= numBatches)
                break;
            uint64_t begin = b * batchSize;
            uint32_t count = static_cast<uint32_t>(
                std::min<uint64_t>(batchSize, trials - begin));
            batch.reset(dem.numDetectors(), dem.numObservables(), count,
                        begin);
            sampler.sampleBatchInto(root, batch);
            predictions.resize(count);
            decoder->decodeBatch(batch, std::span<uint32_t>(predictions));
            failingTrials.clear();
            for (uint32_t s = 0; s < count; ++s)
                if (predictions[s] != batch.observables(s))
                    failingTrials.push_back(begin + s);
            sequencer.submit(b, failingTrials);
        }
    });

    return sequencer.result();
}

LogicalErrorPoint
estimateLogicalError(EmbeddingKind embedding, const GeneratorConfig& config,
                     const McOptions& options)
{
    LogicalErrorPoint point;
    point.distance = config.distance;
    point.physicalP = config.noise.p2;

    GeneratorConfig cz = config;
    cz.memoryBasis = CheckBasis::Z;
    point.basisZ = estimateLogicalErrorBasis(embedding, cz, options);

    GeneratorConfig cx = config;
    cx.memoryBasis = CheckBasis::X;
    point.basisX = estimateLogicalErrorBasis(embedding, cx, options);
    return point;
}

} // namespace vlq
