#ifndef VLQ_MC_MONTE_CARLO_H
#define VLQ_MC_MONTE_CARLO_H

#include <cstdint>

#include "core/generator_common.h"
#include "decoder/decoder_factory.h"
#include "util/stats.h"

namespace vlq {

/** Options controlling one Monte-Carlo estimation. */
struct McOptions
{
    uint64_t trials = 2000;
    uint64_t seed = 0x5eed;
    unsigned threads = 0; // 0 = hardware concurrency
    DecoderKind decoder = DecoderKind::Mwpm;
};

/**
 * Logical error estimate for one (setup, distance, p) data point:
 * independent memory-Z and memory-X experiments and their combination.
 */
struct LogicalErrorPoint
{
    int distance = 0;
    double physicalP = 0.0;

    /** Memory experiment with Z-check detectors (decodes X errors). */
    BinomialEstimate basisZ;

    /** Memory experiment with X-check detectors (decodes Z errors). */
    BinomialEstimate basisX;

    /** Per-block logical error rate: 1 - (1-pZ)(1-pX). */
    double combinedRate() const;
};

/**
 * Run the full pipeline for one configuration: generate the memory
 * circuit for both bases, build detector error models, decode sampled
 * shots, and count logical failures.
 *
 * Trials are reproducible: trial i uses an RNG derived from
 * (seed, basis, i) regardless of thread count.
 */
LogicalErrorPoint estimateLogicalError(EmbeddingKind embedding,
                                       const GeneratorConfig& config,
                                       const McOptions& options);

/**
 * Single-basis variant (used by tests and fine-grained sweeps).
 * @return failures out of options.trials.
 */
BinomialEstimate estimateLogicalErrorBasis(EmbeddingKind embedding,
                                           const GeneratorConfig& config,
                                           const McOptions& options);

} // namespace vlq

#endif // VLQ_MC_MONTE_CARLO_H
