#ifndef VLQ_MC_MONTE_CARLO_H
#define VLQ_MC_MONTE_CARLO_H

#include <cstdint>
#include <functional>
#include <string>

#include "compute/compute_registry.h"
#include "core/generator_common.h"
#include "decoder/decoder_factory.h"
#include "util/stats.h"

namespace vlq {

/**
 * Running state streamed to McOptions::progress. All counts are
 * *global* to the point's full trial budget: a run resumed from a
 * checkpoint reports the globally committed trial count and the
 * full-run budget (never per-session counts), so the progress stream
 * is monotone across a kill/resume boundary. The scan job service
 * (src/service/) relies on exactly this property to emit monotone
 * `progress` events across preemption and server restarts (see
 * docs/job-protocol.md).
 */
struct McProgress
{
    uint64_t trialsDone = 0;   // trials committed so far (in order)
    uint64_t failures = 0;     // failures among the committed trials
    uint64_t totalTrials = 0;  // the run's trial budget

    // Heartbeat: liveness fields for long scans. Unlike the counts
    // above these are *session-relative* -- throughput counts only the
    // trials sampled by this process (a resumed run does not get
    // credit for the checkpointed prefix), so the rate and ETA are
    // honest even straight after a resume. Both are clamped by the
    // engine: shotsPerSec is 0 and etaSeconds is -1 whenever no finite
    // positive estimate exists yet (e.g. the first heartbeat after a
    // resume, where the session has committed trials but the elapsed
    // clock reads ~0), never inf/NaN.
    double elapsedSeconds = 0.0; // wall time since this point started
    double shotsPerSec = 0.0;    // session trials / elapsed (0 unknown)
    double etaSeconds = -1.0;    // projected seconds left (-1 unknown)

    /**
     * Render the heartbeat for a status line: "3.1e+04 shots/s, eta
     * 42s", with "--" placeholders while either value is unknown
     * ("-- shots/s, eta --"). Non-finite or negative inputs render as
     * unknown rather than as inf/garbage -- this is the single
     * renderer every status line should use.
     */
    std::string heartbeatString() const;
};

/** Options controlling one Monte-Carlo estimation. */
struct McOptions
{
    uint64_t trials = 2000;
    uint64_t seed = 0x5eed;
    unsigned threads = 0; // 0 = hardware concurrency
    DecoderKind decoder = DecoderKind::Mwpm;

    /**
     * Compute backend running the batch pipeline (sample -> classify
     * -> decode -> count failures); see compute/compute_backend.h.
     * Defaults through VLQ_COMPUTE so the selection is ambient for
     * every driver; `scalar` (the bit-exact reference) when unset.
     * Backends are bit-identical by contract, so this is a pure
     * throughput knob -- like batchSize, it can never change counts.
     */
    ComputeKind compute = computeKindFromEnv(ComputeKind::Scalar);

    /**
     * Shots per work unit: each batch is sampled into a transposed
     * ShotBatch and decoded with Decoder::decodeBatch. Batches shard
     * across the thread pool. Size is a pure throughput knob -- every
     * trial samples from its own RNG stream, so failure counts are
     * bit-identical for any batchSize and thread count.
     */
    uint32_t batchSize = 256;

    /**
     * Early stop: when > 0, stop once this many failures are seen,
     * counting trials strictly in trial order -- the run consumes
     * exactly the trials up to (and including) the targetFailures-th
     * failing trial, regardless of batch size or thread count, so
     * early-stopped counts are as reproducible as full runs. 0 runs
     * the full trial budget.
     */
    uint64_t targetFailures = 0;

    /**
     * Optional streaming callback, invoked after each batch commits
     * (in trial order, under the engine's lock -- keep it cheap).
     * Lets million-trial scans report running failure counts.
     */
    std::function<void(const McProgress&)> progress;

    /**
     * Checkpoint/resume (see mc/checkpoint.h). When non-empty, the
     * driver persists the committed trial frontier of every point to
     * this file (atomically, via write-to-temp + rename) and, on
     * startup, validates the file's config fingerprint and resumes
     * each point from its first uncommitted trial -- bit-identical to
     * an uninterrupted run, including under targetFailures. Points
     * recorded as done are skipped without regenerating circuits.
     * A fingerprint mismatch or corrupt file is a hard error.
     */
    std::string checkpointPath;

    /**
     * Committed trials between periodic checkpoint saves within a
     * point (0 = the 65536 default). The final frontier of a point is
     * always saved when it finishes, regardless of this knob.
     */
    uint64_t checkpointEveryTrials = 0;

    /**
     * Canonical fingerprint summary guarding the checkpoint file.
     * Grid scanners (scanThreshold, runSensitivity) fill this with
     * their grid identity; when left empty the engine derives it from
     * its own knobs (mcRunFingerprintSummary in mc/checkpoint.h).
     */
    std::string checkpointFingerprint;

    /**
     * Cooperative preemption hook. When set, the engine polls it at
     * every batch-commit boundary (in trial order, under the
     * sequencer lock -- keep it cheap); the first time it returns
     * true, workers stop pulling batches, uncommitted batches are
     * discarded, the committed frontier is persisted to the
     * checkpoint with done=false (when checkpointing is on), and the
     * run returns early with the committed counts.
     *
     * Because batches commit strictly in trial order, the preempted
     * frontier is a prefix of the uninterrupted run's trial sequence:
     * re-running the same options with the same checkpoint resumes
     * from the boundary and reproduces the uninterrupted counts
     * bit-identically. This is what makes scheduler preemption cheap
     * -- suspending a job costs one checkpoint save, nothing else.
     */
    std::function<bool()> preempt;

    /**
     * Out-flag for preemption: when non-null, set to true if the run
     * was cut short by `preempt` (and left untouched otherwise, so
     * callers can share one flag across consecutive points).
     */
    bool* preempted = nullptr;
};

/**
 * Logical error estimate for one (setup, distance, p) data point:
 * independent memory-Z and memory-X experiments and their combination.
 */
struct LogicalErrorPoint
{
    int distance = 0;
    double physicalP = 0.0;

    /** Memory experiment with Z-check detectors (decodes X errors). */
    BinomialEstimate basisZ;

    /** Memory experiment with X-check detectors (decodes Z errors). */
    BinomialEstimate basisX;

    /** Per-block logical error rate: 1 - (1-pZ)(1-pX). */
    double combinedRate() const;
};

/**
 * Run the full pipeline for one configuration: generate the memory
 * circuit for both bases, build detector error models, sample and
 * decode whole batches of shots, and count logical failures.
 *
 * Trials are reproducible: trial i uses an RNG derived from
 * (seed, basis, i) regardless of thread count or batch size, and
 * early-stopped runs cut at a trial index that depends only on the
 * sampled outcomes.
 */
LogicalErrorPoint estimateLogicalError(EmbeddingKind embedding,
                                       const GeneratorConfig& config,
                                       const McOptions& options);

/**
 * Single-basis variant (used by tests, fine-grained sweeps, and the
 * scan job service, which drives one (config, basis) point at a time
 * so it can preempt and resume at point granularity too).
 * @return failures out of the consumed trials (== options.trials
 *         unless targetFailures stopped the run early or
 *         McOptions::preempt suspended it at a batch boundary).
 */
BinomialEstimate estimateLogicalErrorBasis(EmbeddingKind embedding,
                                           const GeneratorConfig& config,
                                           const McOptions& options);

} // namespace vlq

#endif // VLQ_MC_MONTE_CARLO_H
