#include "mc/threshold.h"

#include <cmath>
#include <sstream>

#include "core/generator_registry.h"
#include "mc/checkpoint.h"
#include "util/stats.h"

namespace vlq {

std::string
thresholdScanFingerprint(const EvaluationSetup& setup,
                         const ThresholdScanConfig& config)
{
    std::ostringstream os;
    os << "scan=threshold " << mcRunFingerprintSummary(config.mc)
       << " embedding=" << embeddingKindName(setup.embedding)
       << " schedule="
       << (setup.schedule == ExtractionSchedule::Interleaved
               ? "interleaved" : "aao")
       << " k=" << config.cavityDepth
       << " scaleCoherence=" << (config.scaleCoherence ? 1 : 0)
       << " gap="
       << (config.gapModel == PagingGapModel::PerRound ? "per-round"
                                                       : "block-once")
       << " distances=";
    for (size_t i = 0; i < config.distances.size(); ++i)
        os << (i ? "," : "") << config.distances[i];
    os << " ps=";
    for (size_t i = 0; i < config.physicalPs.size(); ++i)
        os << (i ? "," : "") << canonicalDouble(config.physicalPs[i]);
    if (!config.distances.empty() && !config.physicalPs.empty()) {
        GeneratorConfig gc;
        gc.distance = config.distances.front();
        gc.cavityDepth = config.cavityDepth;
        gc.schedule = setup.schedule;
        gc.gapModel = config.gapModel;
        gc.noise = NoiseModel::atPhysicalRate(config.physicalPs.front(),
                                              config.hardware,
                                              config.scaleCoherence);
        os << " base=" << hex16(checkpointPointKey(setup.embedding, gc));
    }
    return os.str();
}

ThresholdResult
scanThreshold(const EvaluationSetup& setup, const ThresholdScanConfig& config)
{
    ThresholdResult result;
    result.setup = setup;

    // Grid-level checkpointing: stamp the scan's fingerprint so every
    // point shares one validated state file and a resumed scan skips
    // its completed points entirely.
    McOptions mc = config.mc;
    if (!mc.checkpointPath.empty() && mc.checkpointFingerprint.empty())
        mc.checkpointFingerprint = thresholdScanFingerprint(setup, config);

    for (int d : config.distances) {
        ThresholdCurve curve;
        curve.distance = d;
        for (double p : config.physicalPs) {
            GeneratorConfig gc;
            gc.distance = d;
            gc.cavityDepth = config.cavityDepth;
            gc.schedule = setup.schedule;
            gc.gapModel = config.gapModel;
            gc.noise = NoiseModel::atPhysicalRate(
                p, config.hardware, config.scaleCoherence);
            LogicalErrorPoint point =
                estimateLogicalError(setup.embedding, gc, mc);
            if (config.pointProgress)
                config.pointProgress(point);
            curve.physicalPs.push_back(p);
            curve.points.push_back(point);
        }
        result.curves.push_back(std::move(curve));
    }
    result.pth = estimateThresholdFromCurves(result.curves);
    return result;
}

double
suppressionFactor(const std::vector<ThresholdCurve>& curves,
                  double physicalP)
{
    if (curves.empty() || curves.front().physicalPs.empty())
        return -1.0;
    // Sampled p closest to the requested one (log distance).
    size_t best = 0;
    double bestDist = 1e300;
    for (size_t j = 0; j < curves.front().physicalPs.size(); ++j) {
        double d = std::fabs(std::log(curves.front().physicalPs[j])
                             - std::log(physicalP));
        if (d < bestDist) {
            bestDist = d;
            best = j;
        }
    }
    double logSum = 0.0;
    int count = 0;
    for (size_t i = 0; i + 1 < curves.size(); ++i) {
        if (best >= curves[i].points.size() ||
            best >= curves[i + 1].points.size())
            continue;
        double hi = curves[i].points[best].combinedRate();
        double lo = curves[i + 1].points[best].combinedRate();
        if (hi <= 0.0 || lo <= 0.0)
            continue;
        logSum += std::log(hi / lo);
        ++count;
    }
    if (count == 0)
        return -1.0;
    return std::exp(logSum / count);
}

double
estimateThresholdFromCurves(const std::vector<ThresholdCurve>& curves)
{
    std::vector<double> crossings;
    for (size_t i = 0; i + 1 < curves.size(); ++i) {
        const ThresholdCurve& a = curves[i];
        const ThresholdCurve& b = curves[i + 1];
        if (a.physicalPs != b.physicalPs)
            continue;
        std::vector<double> ya;
        std::vector<double> yb;
        for (size_t j = 0; j < a.points.size(); ++j) {
            ya.push_back(a.points[j].combinedRate());
            yb.push_back(b.points[j].combinedRate());
        }
        double x = logLogCrossing(a.physicalPs, ya, yb);
        if (x > 0)
            crossings.push_back(x);
    }
    if (crossings.empty())
        return -1.0;
    return median(crossings);
}

} // namespace vlq
