#ifndef VLQ_MC_THRESHOLD_H
#define VLQ_MC_THRESHOLD_H

#include <vector>

#include "mc/memory_experiment.h"
#include "mc/monte_carlo.h"

namespace vlq {

/** Logical-error curve for one code distance. */
struct ThresholdCurve
{
    int distance = 0;
    std::vector<double> physicalPs;
    std::vector<LogicalErrorPoint> points;
};

/** Full threshold scan for one setup. */
struct ThresholdResult
{
    EvaluationSetup setup;
    std::vector<ThresholdCurve> curves;

    /**
     * Estimated threshold: the median crossing of consecutive-distance
     * curve pairs in log-log space, or -1 when no crossing is found in
     * the scanned range.
     */
    double pth = -1.0;
};

/** Parameters of a threshold scan. */
struct ThresholdScanConfig
{
    std::vector<int> distances{3, 5, 7};
    std::vector<double> physicalPs;
    int cavityDepth = 10;
    bool scaleCoherence = false;
    PagingGapModel gapModel = PagingGapModel::BlockOnce;
    HardwareParams hardware;

    /**
     * Monte-Carlo engine options shared by every (d, p) point. The
     * batching/early-stop/progress knobs (McOptions::batchSize,
     * targetFailures, progress) apply per point; progress streams the
     * running failure count of the point being sampled.
     */
    McOptions mc;

    /** Optional: called as each (distance, p) point finishes. */
    std::function<void(const LogicalErrorPoint&)> pointProgress;
};

/** Run the scan (the engine behind the Fig. 11 benchmark). */
ThresholdResult scanThreshold(const EvaluationSetup& setup,
                              const ThresholdScanConfig& config);

/**
 * Canonical checkpoint fingerprint of a threshold scan: the engine
 * knobs plus the setup identity and the (distances, ps) grid, with the
 * hardware/coherence context folded in via a representative point key.
 * Resuming a scan whose grid or setup changed is a hard error rather
 * than a silent mix of incompatible counts.
 *
 * Public because the scan job service stamps its per-job checkpoints
 * with exactly this summary: a job's state file is then byte-identical
 * to the checkpoint of a solo threshold_scan run with the same knobs,
 * which is how CI proves service results bit-identical to solo runs.
 */
std::string thresholdScanFingerprint(const EvaluationSetup& setup,
                                     const ThresholdScanConfig& config);

/** Compute the threshold estimate from finished curves. */
double estimateThresholdFromCurves(
    const std::vector<ThresholdCurve>& curves);

/**
 * Error-suppression factor Lambda at one physical rate: the average
 * ratio p_L(d) / p_L(d+2) across consecutive distances at the sampled
 * p closest to `physicalP`. Lambda > 1 means increasing the distance
 * suppresses logical errors (the paper's Sec. V claim that slopes are
 * stable and decay is exponential in d below threshold).
 *
 * @return the geometric-mean suppression factor, or -1 when rates are
 *         zero/insufficient for a ratio.
 */
double suppressionFactor(const std::vector<ThresholdCurve>& curves,
                         double physicalP);

} // namespace vlq

#endif // VLQ_MC_THRESHOLD_H
