#include "mc/memory_experiment.h"

namespace vlq {

std::string
EvaluationSetup::name() const
{
    if (embedding == EmbeddingKind::Baseline2D)
        return "Baseline";
    std::string n = embeddingName(embedding);
    n += ", ";
    n += scheduleName(schedule);
    return n;
}

std::vector<EvaluationSetup>
paperSetups()
{
    return {
        {EmbeddingKind::Baseline2D, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::Interleaved},
        {EmbeddingKind::Compact, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Compact, ExtractionSchedule::Interleaved},
    };
}

} // namespace vlq
