#include "mc/memory_experiment.h"

#include "core/generator_registry.h"

namespace vlq {

std::string
EvaluationSetup::name() const
{
    const GeneratorBackend& backend = generatorBackend(embedding);
    std::string n = backend.display;
    if (!backend.virtualized)
        return n; // the memoryless baseline has no schedule axis
    n += ", ";
    n += scheduleName(schedule);
    return n;
}

bool
EvaluationSetup::virtualized() const
{
    return generatorBackend(embedding).virtualized;
}

std::vector<EvaluationSetup>
paperSetups()
{
    return {
        {EmbeddingKind::Baseline2D, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Natural, ExtractionSchedule::Interleaved},
        {EmbeddingKind::Compact, ExtractionSchedule::AllAtOnce},
        {EmbeddingKind::Compact, ExtractionSchedule::Interleaved},
    };
}

} // namespace vlq
