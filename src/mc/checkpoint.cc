#include "mc/checkpoint.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/generator_registry.h"
#include "obs/obs.h"
#include "decoder/decoder_factory.h"

namespace vlq {

namespace {

constexpr int kFormatVersion = 1;
constexpr const char* kMagic = "vlq-mc-checkpoint";

/** Strict full-string parse of an unsigned decimal or hex token. */
bool
parseU64Token(std::string_view text, int base, uint64_t& out)
{
    if (text.empty() || text.front() == '-' || text.front() == '+')
        return false;
    std::string buf(text);
    errno = 0;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(buf.c_str(), &end, base);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<uint64_t>(parsed);
    return true;
}

/** "key=value" field of a point line, with a strict numeric value. */
bool
parseField(std::string_view token, std::string_view key, uint64_t& out)
{
    if (token.size() <= key.size() + 1 ||
        token.substr(0, key.size()) != key || token[key.size()] != '=')
        return false;
    return parseU64Token(token.substr(key.size() + 1), 10, out);
}

} // namespace

std::string
hex16(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
    return std::string(buf);
}

uint64_t
fnv1a64(std::string_view text)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
canonicalDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return std::string(buf);
}

uint64_t
checkpointPointKey(EmbeddingKind embedding, const GeneratorConfig& config)
{
    std::ostringstream os;
    const NoiseModel& n = config.noise;
    const HardwareParams& hw = n.hw;
    os << "embedding=" << embeddingKindName(embedding)
       << " basis=" << (config.memoryBasis == CheckBasis::X ? 'X' : 'Z')
       << " d=" << config.distance << " dx=" << config.distanceX
       << " dz=" << config.distanceZ << " rounds=" << config.rounds
       << " k=" << config.cavityDepth << " schedule="
       << (config.schedule == ExtractionSchedule::Interleaved
               ? "interleaved" : "aao")
       << " gap="
       << (config.gapModel == PagingGapModel::PerRound ? "per-round"
                                                       : "block-once")
       << " p2=" << canonicalDouble(n.p2) << " pTm=" << canonicalDouble(n.pTm)
       << " pLS=" << canonicalDouble(n.pLoadStore)
       << " p1=" << canonicalDouble(n.p1)
       << " pMeas=" << canonicalDouble(n.pMeas)
       << " pReset=" << canonicalDouble(n.pReset)
       << " idleScale=" << canonicalDouble(n.idleScale)
       << " t1T=" << canonicalDouble(hw.t1Transmon)
       << " t1C=" << canonicalDouble(hw.t1Cavity)
       << " tG1=" << canonicalDouble(hw.tGate1)
       << " tG2=" << canonicalDouble(hw.tGate2)
       << " tTm=" << canonicalDouble(hw.tGateTm)
       << " tLS=" << canonicalDouble(hw.tLoadStore)
       << " tM=" << canonicalDouble(hw.tMeasure)
       << " tR=" << canonicalDouble(hw.tReset);
    // Composite noise sources change the generated circuit, so they
    // must change the key. Appended only when some source is active:
    // uniform configs keep their pre-composite keys, so existing
    // checkpoint files keep resuming.
    const CompositeNoiseModel& cn = config.noise;
    if (!cn.isUniform()) {
        os << " biasX=" << canonicalDouble(cn.bias.rX)
           << " biasY=" << canonicalDouble(cn.bias.rY)
           << " biasZ=" << canonicalDouble(cn.bias.rZ)
           << " p01=" << canonicalDouble(cn.readout.p0to1)
           << " p10=" << canonicalDouble(cn.readout.p1to0)
           << " tPhiT=" << canonicalDouble(cn.dephasing.tPhiTransmonNs)
           << " tPhiC=" << canonicalDouble(cn.dephasing.tPhiCavityNs)
           << " gamma=" << canonicalDouble(cn.damping.gamma)
           << " pErase=" << canonicalDouble(cn.erasure.fraction)
           << " herald=" << (cn.erasure.heralded ? 1 : 0);
    }
    return fnv1a64(os.str());
}

std::string
mcRunFingerprintSummary(const McOptions& options)
{
    std::ostringstream os;
    os << "seed=" << options.seed << " trials=" << options.trials
       << " batch=" << options.batchSize << " decoder="
       << decoderKindName(options.decoder)
       << " target=" << options.targetFailures;
    return os.str();
}

std::string
McCheckpoint::open(const std::string& path, const std::string& summary)
{
    path_.clear();
    entries_.clear();
    meta_.clear();
    summary_ = summary;
    fingerprint_ = fnv1a64(summary);

    std::ifstream in(path);
    if (!in.is_open()) {
        // Fresh run: no state yet (a leftover <path>.tmp from a crash
        // mid-save is deliberately ignored -- its rename never
        // happened, so it was never the committed state).
        path_ = path;
        return "";
    }

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);

    auto reject = [&path](const std::string& why) {
        return "checkpoint file '" + path + "' rejected: " + why;
    };

    if (lines.empty())
        return reject("empty file");

    // Header: magic + version.
    {
        std::istringstream hs(lines[0]);
        std::string magic;
        long long version = -1;
        hs >> magic >> version;
        if (magic != kMagic)
            return reject("not a vlq-mc-checkpoint file");
        if (version != kFormatVersion)
            return reject("unsupported format version "
                          + std::to_string(version) + " (expected "
                          + std::to_string(kFormatVersion) + ")");
    }
    if (lines.size() < 4)
        return reject("truncated file (missing header or end marker)");

    // Fingerprint line.
    {
        std::istringstream fs(lines[1]);
        std::string tag;
        std::string hexValue;
        fs >> tag >> hexValue;
        uint64_t fileFingerprint = 0;
        if (tag != "fingerprint"
            || !parseU64Token(hexValue, 16, fileFingerprint))
            return reject("malformed fingerprint line");
        if (lines[2].rfind("config ", 0) != 0)
            return reject("malformed config line");
        if (fileFingerprint != fingerprint_) {
            return reject(
                "config fingerprint mismatch -- the file records a "
                "different run\n  file:    " + lines[2].substr(7)
                + "\n  current: " + summary
                + "\nDelete the file (or point --checkpoint elsewhere) "
                  "to start fresh.");
        }
    }

    // Body: optional meta lines, then point lines, closed by the end
    // marker.
    size_t i = 3;
    for (; i < lines.size(); ++i) {
        std::istringstream ps(lines[i]);
        std::string tag;
        ps >> tag;
        if (tag == "end")
            break;
        if (tag == "meta") {
            std::string kv;
            std::string extra;
            ps >> kv;
            if (ps >> extra)
                return reject("trailing junk on line "
                              + std::to_string(i + 1));
            size_t eq = kv.find('=');
            if (eq == 0 || eq == std::string::npos)
                return reject("malformed meta line "
                              + std::to_string(i + 1));
            meta_[kv.substr(0, eq)] = kv.substr(eq + 1);
            continue;
        }
        if (tag != "point")
            return reject("malformed line " + std::to_string(i + 1)
                          + ": '" + lines[i] + "'");
        std::string keyText;
        std::string trialsText;
        std::string failuresText;
        std::string doneText;
        std::string extra;
        ps >> keyText >> trialsText >> failuresText >> doneText;
        if (ps >> extra)
            return reject("trailing junk on line " + std::to_string(i + 1));
        uint64_t key = 0;
        CheckpointEntry entry;
        uint64_t doneValue = 0;
        if (!parseU64Token(keyText, 16, key)
            || !parseField(trialsText, "trials", entry.trialsDone)
            || !parseField(failuresText, "failures", entry.failures)
            || !parseField(doneText, "done", doneValue) || doneValue > 1)
            return reject("malformed point line " + std::to_string(i + 1));
        entry.done = doneValue != 0;
        if (entry.failures > entry.trialsDone)
            return reject("corrupt counts on line " + std::to_string(i + 1)
                          + " (failures > trials)");
        if (!entries_.emplace(key, entry).second)
            return reject("duplicate point key " + keyText);
    }
    if (i >= lines.size())
        return reject("truncated file (no end marker)");
    {
        std::istringstream es(lines[i]);
        std::string tag;
        std::string countText;
        es >> tag >> countText;
        uint64_t count = 0;
        if (!parseU64Token(countText, 10, count)
            || count != entries_.size())
            return reject("end marker count mismatch (file truncated or "
                          "edited)");
    }
    for (size_t j = i + 1; j < lines.size(); ++j)
        if (!lines[j].empty())
            return reject("trailing junk after end marker");

    path_ = path;
    return "";
}

void
McCheckpoint::setMeta(const std::string& key, const std::string& value)
{
    meta_[key] = value;
}

std::string
McCheckpoint::meta(const std::string& key) const
{
    auto it = meta_.find(key);
    return it == meta_.end() ? "" : it->second;
}

const CheckpointEntry*
McCheckpoint::find(uint64_t pointKey) const
{
    auto it = entries_.find(pointKey);
    return it == entries_.end() ? nullptr : &it->second;
}

void
McCheckpoint::update(uint64_t pointKey, const CheckpointEntry& entry)
{
    entries_[pointKey] = entry;
}

std::string
McCheckpoint::save() const
{
    if (path_.empty())
        return "checkpoint not bound to a path";
    obs::StageTimer obsTimer("checkpoint.save");
    if (obs::metricsEnabled()) {
        static const obs::Counter saves =
            obs::Counter::get("checkpoint.saves");
        saves.add(1);
    }
    std::ostringstream os;
    os << kMagic << ' ' << kFormatVersion << '\n'
       << "fingerprint " << hex16(fingerprint_) << '\n'
       << "config " << summary_ << '\n';
    for (const auto& [key, value] : meta_)
        os << "meta " << key << '=' << value << '\n';
    for (const auto& [key, entry] : entries_) {
        os << "point " << hex16(key) << " trials=" << entry.trialsDone
           << " failures=" << entry.failures << " done="
           << (entry.done ? 1 : 0) << '\n';
    }
    os << "end " << entries_.size() << '\n';

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out.is_open())
            return "cannot write checkpoint temp file '" + tmp + "'";
        out << os.str();
        out.flush();
        if (!out.good())
            return "failed writing checkpoint temp file '" + tmp + "'";
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        return "failed renaming '" + tmp + "' over '" + path_ + "': "
               + std::strerror(errno);
    return "";
}

} // namespace vlq
