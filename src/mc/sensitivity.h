#ifndef VLQ_MC_SENSITIVITY_H
#define VLQ_MC_SENSITIVITY_H

#include <functional>
#include <string>
#include <vector>

#include "mc/monte_carlo.h"

namespace vlq {

/**
 * One sensitivity panel of the paper's Fig. 12: a named parameter, a
 * sweep of values, and a mutator that applies a value to a generator
 * configuration (everything else stays at the operating point).
 */
struct SensitivitySpec
{
    std::string name;
    std::string axisLabel;
    std::vector<double> values;
    std::function<void(GeneratorConfig&, double)> apply;
};

/** Result of one panel: rate[value][distance]. */
struct SensitivityResult
{
    SensitivitySpec spec;
    std::vector<int> distances;
    std::vector<std::vector<LogicalErrorPoint>> points;
};

/**
 * Run one panel for the given setup and distances.
 * @param baseConfig the operating point; the spec's mutations are
 *        applied to copies.
 */
SensitivityResult runSensitivity(EmbeddingKind embedding,
                                 const GeneratorConfig& baseConfig,
                                 const SensitivitySpec& spec,
                                 const std::vector<int>& distances,
                                 const McOptions& options);

/**
 * The paper's seven Fig. 12 panels (SC-SC, load/store and SC-mode
 * error rates; cavity and transmon T1; load/store duration; cavity
 * size k), with `points` sweep values per panel.
 */
std::vector<SensitivitySpec> figure12Panels(int points);

} // namespace vlq

#endif // VLQ_MC_SENSITIVITY_H
