#ifndef VLQ_MC_MEMORY_EXPERIMENT_H
#define VLQ_MC_MEMORY_EXPERIMENT_H

#include <string>
#include <vector>

#include "arch/device.h"

namespace vlq {

/**
 * One of the paper's five evaluation setups (Fig. 11): the 2D baseline
 * plus the four (embedding x schedule) combinations of the 2.5D
 * architecture.
 */
struct EvaluationSetup
{
    EmbeddingKind embedding = EmbeddingKind::Baseline2D;
    ExtractionSchedule schedule = ExtractionSchedule::AllAtOnce;

    std::string name() const;

    /** Whether the embedding pages patches through cavities (registry
     *  property; false only for the memoryless 2D baseline). */
    bool virtualized() const;
};

/** The five setups, in the paper's Fig. 11 order. */
std::vector<EvaluationSetup> paperSetups();

} // namespace vlq

#endif // VLQ_MC_MEMORY_EXPERIMENT_H
