#include "mc/sensitivity.h"

#include "util/stats.h"

namespace vlq {

SensitivityResult
runSensitivity(EmbeddingKind embedding, const GeneratorConfig& baseConfig,
               const SensitivitySpec& spec,
               const std::vector<int>& distances, const McOptions& options)
{
    SensitivityResult result;
    result.spec = spec;
    result.distances = distances;
    for (double x : spec.values) {
        std::vector<LogicalErrorPoint> row;
        for (int d : distances) {
            GeneratorConfig cfg = baseConfig;
            cfg.distance = d;
            spec.apply(cfg, x);
            row.push_back(estimateLogicalError(embedding, cfg, options));
        }
        result.points.push_back(std::move(row));
    }
    return result;
}

std::vector<SensitivitySpec>
figure12Panels(int points)
{
    std::vector<SensitivitySpec> panels;

    panels.push_back(SensitivitySpec{
        "SC-SC error sensitivity", "p(SC-SC)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) {
            c.noise.p2 = x;
            c.noise.p1 = x / 10.0;
        }});

    panels.push_back(SensitivitySpec{
        "Load-Store error sensitivity", "p(L/S)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) { c.noise.pLoadStore = x; }});

    panels.push_back(SensitivitySpec{
        "SC-Mode interaction sensitivity", "p(SC-mode)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) { c.noise.pTm = x; }});

    panels.push_back(SensitivitySpec{
        "Cavity T1 sensitivity", "T1,c (s)",
        logspace(1e-5, 1e-1, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.t1Cavity = x * 1e9; // s -> ns
            c.noise.idleScale = 1.0;
        }});

    panels.push_back(SensitivitySpec{
        "Transmon T1 sensitivity", "T1,t (s)",
        logspace(1e-5, 1e-1, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.t1Transmon = x * 1e9;
            c.noise.idleScale = 1.0;
        }});

    panels.push_back(SensitivitySpec{
        "Load-Store gate duration sensitivity", "t(L/S) (s)",
        logspace(1e-7, 1e-4, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.tLoadStore = x * 1e9;
        }});

    {
        std::vector<double> ks;
        for (double k : {2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0})
            ks.push_back(k);
        if (points < 7)
            ks = {2.0, 10.0, 20.0, 30.0};
        panels.push_back(SensitivitySpec{
            "Cavity size sensitivity", "k", ks,
            [](GeneratorConfig& c, double x) {
                c.cavityDepth = static_cast<int>(x);
            }});
    }
    return panels;
}

} // namespace vlq
