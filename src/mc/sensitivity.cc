#include "mc/sensitivity.h"

#include <sstream>

#include "core/generator_registry.h"
#include "mc/checkpoint.h"
#include "util/stats.h"

namespace vlq {

namespace {

/**
 * Canonical checkpoint fingerprint of one sensitivity panel: engine
 * knobs, panel identity, sweep values, distances, and the operating
 * point (folded in via the base config's point key). Panels get
 * distinct fingerprints, so split-panel cluster shards cannot be
 * mixed into the wrong state file.
 */
std::string
sensitivityFingerprint(EmbeddingKind embedding,
                       const GeneratorConfig& baseConfig,
                       const SensitivitySpec& spec,
                       const std::vector<int>& distances,
                       const McOptions& options)
{
    std::ostringstream os;
    os << "scan=sensitivity " << mcRunFingerprintSummary(options)
       << " embedding=" << embeddingKindName(embedding)
       << " panel=" << fnv1a64(spec.name) << " values=";
    for (size_t i = 0; i < spec.values.size(); ++i)
        os << (i ? "," : "") << canonicalDouble(spec.values[i]);
    os << " distances=";
    for (size_t i = 0; i < distances.size(); ++i)
        os << (i ? "," : "") << distances[i];
    os << " base=" << hex16(checkpointPointKey(embedding, baseConfig));
    return os.str();
}

} // namespace

SensitivityResult
runSensitivity(EmbeddingKind embedding, const GeneratorConfig& baseConfig,
               const SensitivitySpec& spec,
               const std::vector<int>& distances, const McOptions& options)
{
    SensitivityResult result;
    result.spec = spec;
    result.distances = distances;

    // Grid-level checkpointing (see scanThreshold): one fingerprinted
    // state file per panel; finished (value, distance) points are
    // skipped on resume.
    McOptions mc = options;
    if (!mc.checkpointPath.empty() && mc.checkpointFingerprint.empty())
        mc.checkpointFingerprint = sensitivityFingerprint(
            embedding, baseConfig, spec, distances, options);

    for (double x : spec.values) {
        std::vector<LogicalErrorPoint> row;
        for (int d : distances) {
            GeneratorConfig cfg = baseConfig;
            cfg.distance = d;
            spec.apply(cfg, x);
            row.push_back(estimateLogicalError(embedding, cfg, mc));
        }
        result.points.push_back(std::move(row));
    }
    return result;
}

std::vector<SensitivitySpec>
figure12Panels(int points)
{
    std::vector<SensitivitySpec> panels;

    panels.push_back(SensitivitySpec{
        "SC-SC error sensitivity", "p(SC-SC)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) {
            c.noise.p2 = x;
            c.noise.p1 = x / 10.0;
        }});

    panels.push_back(SensitivitySpec{
        "Load-Store error sensitivity", "p(L/S)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) { c.noise.pLoadStore = x; }});

    panels.push_back(SensitivitySpec{
        "SC-Mode interaction sensitivity", "p(SC-mode)",
        logspace(1e-4, 1e-2, points),
        [](GeneratorConfig& c, double x) { c.noise.pTm = x; }});

    panels.push_back(SensitivitySpec{
        "Cavity T1 sensitivity", "T1,c (s)",
        logspace(1e-5, 1e-1, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.t1Cavity = x * 1e9; // s -> ns
            c.noise.idleScale = 1.0;
        }});

    panels.push_back(SensitivitySpec{
        "Transmon T1 sensitivity", "T1,t (s)",
        logspace(1e-5, 1e-1, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.t1Transmon = x * 1e9;
            c.noise.idleScale = 1.0;
        }});

    panels.push_back(SensitivitySpec{
        "Load-Store gate duration sensitivity", "t(L/S) (s)",
        logspace(1e-7, 1e-4, points),
        [](GeneratorConfig& c, double x) {
            c.noise.hw.tLoadStore = x * 1e9;
        }});

    {
        std::vector<double> ks;
        for (double k : {2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0})
            ks.push_back(k);
        if (points < 7)
            ks = {2.0, 10.0, 20.0, 30.0};
        panels.push_back(SensitivitySpec{
            "Cavity size sensitivity", "k", ks,
            [](GeneratorConfig& c, double x) {
                c.cavityDepth = static_cast<int>(x);
            }});
    }
    return panels;
}

} // namespace vlq
