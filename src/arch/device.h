#ifndef VLQ_ARCH_DEVICE_H
#define VLQ_ARCH_DEVICE_H

#include <cstdint>
#include <string>

namespace vlq {

/**
 * Which surface-code embedding a device implements. Each kind is backed
 * by an entry in the generator registry (core/generator_registry.h);
 * adding a kind means adding a registration, not chasing switches.
 */
enum class EmbeddingKind : uint8_t {
    /** Conventional 2D transmon grid, no memory (paper's baseline). */
    Baseline2D,
    /** Natural embedding: cavities under data transmons only. */
    Natural,
    /** Compact embedding: merged data/ancilla transmons, all with
     *  cavities. */
    Compact,
    /** Compact on a rectangular dx x dz patch: spends hardware on the
     *  logical basis that needs it, for biased-noise devices. */
    CompactRect,
};

/** How syndrome extraction visits a stack of virtualized patches. */
enum class ExtractionSchedule : uint8_t {
    /** Load a patch, run d rounds, store (paper "All-at-once"). */
    AllAtOnce,
    /** Load, run one round, store; cycle the stack (paper
     *  "Interleaved"). */
    Interleaved,
};

/**
 * Human-readable names for reports. embeddingName resolves to the
 * generator registry's display name, so backends added via
 * registerGenerator() are covered without a switch to extend.
 */
const char* embeddingName(EmbeddingKind kind);
const char* scheduleName(ExtractionSchedule schedule);

/**
 * Per-patch hardware cost of an embedding (DESIGN.md Sec. 6, validated
 * against the paper's Table II and the "11 transmons and 9 cavities"
 * claim).
 */
struct PatchCost
{
    int transmons = 0;
    int cavities = 0;

    /** Total qubit slots counting each depth-k cavity as k (Table II). */
    int totalQubits(int cavityDepth) const
    {
        return transmons + cavities * cavityDepth;
    }
};

/** Cost of one square distance-d patch under the given embedding. */
PatchCost patchCost(EmbeddingKind kind, int distance);

/**
 * Cost of a rectangular dx x dz patch (dx data columns = memory-X
 * distance, dz data rows = memory-Z distance; both odd, >= 3).
 * Resolved through the generator registry, so registered backends
 * price their own hardware.
 */
PatchCost patchCost(EmbeddingKind kind, int dx, int dz);

/**
 * A 2.5D device: a gridWidth x gridHeight array of patch-sized stacks,
 * each with cavityDepth modes per cavity, hosting logical qubits of the
 * given code distance.
 */
struct DeviceConfig
{
    EmbeddingKind embedding = EmbeddingKind::Compact;
    int distance = 3;
    int gridWidth = 1;
    int gridHeight = 1;
    int cavityDepth = 10;

    /**
     * Rectangular-patch overrides: when > 0 they replace `distance`
     * along their axis (patchDx columns, patchDz rows). 0 defers to
     * the embedding backend's shape policy -- the square paper patch
     * for the three paper embeddings, the narrow 3 x d biased-noise
     * patch for compact-rect -- so device costing always prices the
     * patch the generator actually builds.
     */
    int patchDx = 0;
    int patchDz = 0;

    /** Effective patch width (data columns / memory-X distance). */
    int effectiveDx() const;

    /** Effective patch height (data rows / memory-Z distance). */
    int effectiveDz() const;

    /** Number of stacks (patch positions). */
    int numStacks() const { return gridWidth * gridHeight; }

    /** Total transmons across the device. */
    int totalTransmons() const;

    /** Total cavities across the device. */
    int totalCavities() const;

    /**
     * Logical-qubit capacity. One mode per stack is reserved for
     * movement / lattice-surgery ancillas per the paper's Sec. III-D
     * when reserveFreeMode is true.
     */
    int logicalCapacity(bool reserveFreeMode = true) const;

    std::string str() const;
};

} // namespace vlq

#endif // VLQ_ARCH_DEVICE_H
