#ifndef VLQ_ARCH_DEVICE_H
#define VLQ_ARCH_DEVICE_H

#include <cstdint>
#include <string>

namespace vlq {

/** Which surface-code embedding a device implements. */
enum class EmbeddingKind : uint8_t {
    /** Conventional 2D transmon grid, no memory (paper's baseline). */
    Baseline2D,
    /** Natural embedding: cavities under data transmons only. */
    Natural,
    /** Compact embedding: merged data/ancilla transmons, all with
     *  cavities. */
    Compact,
};

/** How syndrome extraction visits a stack of virtualized patches. */
enum class ExtractionSchedule : uint8_t {
    /** Load a patch, run d rounds, store (paper "All-at-once"). */
    AllAtOnce,
    /** Load, run one round, store; cycle the stack (paper
     *  "Interleaved"). */
    Interleaved,
};

/** Human-readable names for reports. */
const char* embeddingName(EmbeddingKind kind);
const char* scheduleName(ExtractionSchedule schedule);

/**
 * Per-patch hardware cost of an embedding (DESIGN.md Sec. 6, validated
 * against the paper's Table II and the "11 transmons and 9 cavities"
 * claim).
 */
struct PatchCost
{
    int transmons = 0;
    int cavities = 0;

    /** Total qubit slots counting each depth-k cavity as k (Table II). */
    int totalQubits(int cavityDepth) const
    {
        return transmons + cavities * cavityDepth;
    }
};

/** Cost of one distance-d patch under the given embedding. */
PatchCost patchCost(EmbeddingKind kind, int distance);

/**
 * A 2.5D device: a gridWidth x gridHeight array of patch-sized stacks,
 * each with cavityDepth modes per cavity, hosting logical qubits of the
 * given code distance.
 */
struct DeviceConfig
{
    EmbeddingKind embedding = EmbeddingKind::Compact;
    int distance = 3;
    int gridWidth = 1;
    int gridHeight = 1;
    int cavityDepth = 10;

    /** Number of stacks (patch positions). */
    int numStacks() const { return gridWidth * gridHeight; }

    /** Total transmons across the device. */
    int totalTransmons() const;

    /** Total cavities across the device. */
    int totalCavities() const;

    /**
     * Logical-qubit capacity. One mode per stack is reserved for
     * movement / lattice-surgery ancillas per the paper's Sec. III-D
     * when reserveFreeMode is true.
     */
    int logicalCapacity(bool reserveFreeMode = true) const;

    std::string str() const;
};

} // namespace vlq

#endif // VLQ_ARCH_DEVICE_H
