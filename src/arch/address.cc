#include "arch/address.h"

#include <cstdlib>
#include <sstream>

namespace vlq {

std::string
PhysicalAddress::str() const
{
    std::ostringstream ss;
    ss << "P(" << sx << "," << sy << ")";
    return ss.str();
}

std::string
VirtualAddress::str() const
{
    std::ostringstream ss;
    ss << stack.str() << "[" << mode << "]";
    return ss.str();
}

int
stackDistance(const PhysicalAddress& a, const PhysicalAddress& b)
{
    return std::abs(a.sx - b.sx) + std::abs(a.sy - b.sy);
}

} // namespace vlq
