#ifndef VLQ_ARCH_ADDRESS_H
#define VLQ_ARCH_ADDRESS_H

#include <cstdint>
#include <functional>
#include <string>

namespace vlq {

/**
 * Physical address of a logical-qubit slot: the 2D patch of transmons
 * (stack coordinates, in units of patches) a logical qubit is loaded
 * into for computation.
 */
struct PhysicalAddress
{
    int sx = 0;
    int sy = 0;

    bool operator==(const PhysicalAddress& o) const
    {
        return sx == o.sx && sy == o.sy;
    }

    std::string str() const;
};

/**
 * Virtual address of a logical qubit: a stack (physical patch position)
 * plus the cavity-mode index where the patch is stored. The paper's
 * addressing scheme (Sec. III-A): logical qubit q_L maps to the pair
 * (P_xy, z).
 */
struct VirtualAddress
{
    PhysicalAddress stack;
    int mode = 0;

    bool operator==(const VirtualAddress& o) const
    {
        return stack == o.stack && mode == o.mode;
    }

    std::string str() const;
};

/** Manhattan distance between two stacks (patch units). */
int stackDistance(const PhysicalAddress& a, const PhysicalAddress& b);

} // namespace vlq

template <>
struct std::hash<vlq::PhysicalAddress>
{
    size_t operator()(const vlq::PhysicalAddress& a) const
    {
        return std::hash<int>()(a.sx) * 1000003u ^ std::hash<int>()(a.sy);
    }
};

template <>
struct std::hash<vlq::VirtualAddress>
{
    size_t operator()(const vlq::VirtualAddress& a) const
    {
        return std::hash<vlq::PhysicalAddress>()(a.stack) * 16777619u
             ^ std::hash<int>()(a.mode);
    }
};

#endif // VLQ_ARCH_ADDRESS_H
