#include "arch/device.h"

#include <sstream>

#include "core/generator_registry.h"
#include "util/logging.h"

namespace vlq {

const char*
embeddingName(EmbeddingKind kind)
{
    return generatorBackend(kind).display;
}

const char*
scheduleName(ExtractionSchedule schedule)
{
    switch (schedule) {
      case ExtractionSchedule::AllAtOnce: return "All-at-once";
      case ExtractionSchedule::Interleaved: return "Interleaved";
    }
    VLQ_PANIC("invalid ExtractionSchedule");
}

// patchCost() is defined in core/generator_registry.cc: each registered
// embedding backend prices its own patches, so cost stays in lock-step
// with the generators without a switch to extend here.

int
DeviceConfig::effectiveDx() const
{
    return generatorBackend(embedding)
        .shape(distance, patchDx, patchDz).first;
}

int
DeviceConfig::effectiveDz() const
{
    return generatorBackend(embedding)
        .shape(distance, patchDx, patchDz).second;
}

int
DeviceConfig::totalTransmons() const
{
    return numStacks()
        * patchCost(embedding, effectiveDx(), effectiveDz()).transmons;
}

int
DeviceConfig::totalCavities() const
{
    return numStacks()
        * patchCost(embedding, effectiveDx(), effectiveDz()).cavities;
}

int
DeviceConfig::logicalCapacity(bool reserveFreeMode) const
{
    if (patchCost(embedding, effectiveDx(), effectiveDz()).cavities == 0)
        return numStacks();
    int perStack = cavityDepth - (reserveFreeMode ? 1 : 0);
    return numStacks() * perStack;
}

std::string
DeviceConfig::str() const
{
    std::ostringstream ss;
    ss << embeddingName(embedding) << " d=" << distance;
    if (effectiveDx() != distance || effectiveDz() != distance)
        ss << " patch=" << effectiveDx() << "x" << effectiveDz();
    ss << " grid=" << gridWidth << "x" << gridHeight << " k="
       << cavityDepth;
    return ss.str();
}

} // namespace vlq
