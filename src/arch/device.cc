#include "arch/device.h"

#include <sstream>

#include "util/logging.h"

namespace vlq {

const char*
embeddingName(EmbeddingKind kind)
{
    switch (kind) {
      case EmbeddingKind::Baseline2D: return "Baseline2D";
      case EmbeddingKind::Natural: return "Natural";
      case EmbeddingKind::Compact: return "Compact";
    }
    VLQ_PANIC("invalid EmbeddingKind");
}

const char*
scheduleName(ExtractionSchedule schedule)
{
    switch (schedule) {
      case ExtractionSchedule::AllAtOnce: return "All-at-once";
      case ExtractionSchedule::Interleaved: return "Interleaved";
    }
    VLQ_PANIC("invalid ExtractionSchedule");
}

PatchCost
patchCost(EmbeddingKind kind, int distance)
{
    VLQ_ASSERT(distance >= 3 && distance % 2 == 1, "bad distance");
    int d = distance;
    PatchCost cost;
    switch (kind) {
      case EmbeddingKind::Baseline2D:
        // d^2 data + (d^2 - 1) ancilla transmons, no memory.
        cost.transmons = 2 * d * d - 1;
        cost.cavities = 0;
        break;
      case EmbeddingKind::Natural:
        // Same transmon count; every data transmon gains a cavity.
        cost.transmons = 2 * d * d - 1;
        cost.cavities = d * d;
        break;
      case EmbeddingKind::Compact:
        // Every ancilla merges into a neighboring data transmon except
        // the d-1 boundary ancillas whose merge target falls outside
        // the patch (paper Fig. 7; d=3 -> 11 transmons, 9 cavities).
        cost.transmons = d * d + (d - 1);
        cost.cavities = d * d;
        break;
    }
    return cost;
}

int
DeviceConfig::totalTransmons() const
{
    return numStacks() * patchCost(embedding, distance).transmons;
}

int
DeviceConfig::totalCavities() const
{
    return numStacks() * patchCost(embedding, distance).cavities;
}

int
DeviceConfig::logicalCapacity(bool reserveFreeMode) const
{
    if (embedding == EmbeddingKind::Baseline2D)
        return numStacks();
    int perStack = cavityDepth - (reserveFreeMode ? 1 : 0);
    return numStacks() * perStack;
}

std::string
DeviceConfig::str() const
{
    std::ostringstream ss;
    ss << embeddingName(embedding) << " d=" << distance << " grid="
       << gridWidth << "x" << gridHeight << " k=" << cavityDepth;
    return ss.str();
}

} // namespace vlq
