#ifndef VLQ_UTIL_TABLE_H
#define VLQ_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace vlq {

/**
 * Simple aligned ASCII table printer for benchmark output.
 *
 * Benchmarks regenerate the paper's tables and figure series; this
 * printer produces the rows in a stable, diff-friendly format.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Convenience: format in scientific notation. */
    static std::string sci(double v, int precision = 3);

    /** Render the table to a stream. */
    void print(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vlq

#endif // VLQ_UTIL_TABLE_H
