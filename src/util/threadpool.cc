#include "util/threadpool.h"

#include <algorithm>

#include "obs/trace.h"

namespace vlq {

ThreadPool::ThreadPool(unsigned numThreads)
    : numThreads_(numThreads)
{
    if (numThreads_ == 0) {
        numThreads_ = std::max(1u, std::thread::hardware_concurrency());
    }
}

void
ThreadPool::parallelFor(
    uint64_t n,
    const std::function<void(uint64_t, uint64_t, unsigned)>& body) const
{
    if (n == 0)
        return;
    unsigned workers = static_cast<unsigned>(
        std::min<uint64_t>(numThreads_, n));
    if (workers <= 1) {
        body(0, n, 0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers);
    uint64_t chunk = (n + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
        uint64_t begin = static_cast<uint64_t>(w) * chunk;
        uint64_t end = std::min(n, begin + chunk);
        if (begin >= end)
            break;
        threads.emplace_back([&body, begin, end, w] {
            // Worker w always renders on trace lane w+1 (lane 0 is the
            // main thread), so successive parallelFor generations of
            // short-lived pool threads share stable timeline lanes.
            obs::traceSetThreadLane(w + 1);
            body(begin, end, w);
        });
    }
    for (auto& t : threads)
        t.join();
}

} // namespace vlq
