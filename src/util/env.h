#ifndef VLQ_UTIL_ENV_H
#define VLQ_UTIL_ENV_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vlq {

/**
 * Environment-variable helpers used by benchmarks to scale Monte-Carlo
 * effort without recompiling (e.g. VLQ_TRIALS, VLQ_FULL, VLQ_SEED).
 * Each returns the fallback when the variable is unset or malformed.
 */
int64_t envInt(const char* name, int64_t fallback);
double envDouble(const char* name, double fallback);

/**
 * Unsigned count knob (trials, shots, batch sizes, seeds): envInt
 * clamped at zero, so "VLQ_TRIALS=-5" cannot underflow a uint64_t.
 */
uint64_t envU64(const char* name, uint64_t fallback);
std::string envString(const char* name, const std::string& fallback);

/**
 * Like envString but normalized to ASCII lowercase, for
 * case-insensitive choice knobs (e.g. VLQ_DECODER=MWPM).
 */
std::string envLower(const char* name, const std::string& fallback);

/** ASCII-lowercase a string (shared by the choice-knob parsers). */
std::string asciiLower(std::string_view s);

/**
 * True when `word` appears in the space-separated `list` (shared by
 * the registry alias matchers).
 */
bool nameListContains(std::string_view list, std::string_view word);

/**
 * Strict integer parse for CLI arguments: the whole string must be a
 * base-10 integer (optional sign, no trailing junk) that fits int64.
 * @return std::nullopt on empty/malformed/out-of-range input, so
 *         callers can print a usage message instead of silently
 *         running with atoi's 0.
 */
std::optional<int64_t> parseInt64(std::string_view text);

/**
 * Parse the benches' shared flag set: [--csv <path>]. On success
 * returns true with csvPath filled (empty when the flag is absent);
 * on any other argument prints a usage message to stderr and returns
 * false.
 */
bool parseCsvFlag(int argc, char** argv, std::string& csvPath);

} // namespace vlq

#endif // VLQ_UTIL_ENV_H
