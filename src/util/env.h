#ifndef VLQ_UTIL_ENV_H
#define VLQ_UTIL_ENV_H

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace vlq {

/**
 * Environment-variable helpers used by benchmarks to scale Monte-Carlo
 * effort without recompiling (e.g. VLQ_TRIALS, VLQ_FULL, VLQ_SEED).
 * Each returns the fallback when the variable is unset or malformed,
 * and prints a warning for malformed *set* values -- a typo'd
 * VLQ_TRIALS=1e9 must not silently become the default. Parsing is
 * strict: leading whitespace, trailing garbage, and values that
 * overflow the target type all count as malformed (no strtoll-style
 * truncation to LLONG_MAX/HUGE_VAL).
 */
int64_t envInt(const char* name, int64_t fallback);
double envDouble(const char* name, double fallback);

/**
 * Unsigned count knob (trials, shots, batch sizes, seeds): envInt
 * clamped at zero, so "VLQ_TRIALS=-5" cannot underflow a uint64_t.
 */
uint64_t envU64(const char* name, uint64_t fallback);
std::string envString(const char* name, const std::string& fallback);

/**
 * Like envString but normalized to ASCII lowercase, for
 * case-insensitive choice knobs (e.g. VLQ_DECODER=MWPM).
 */
std::string envLower(const char* name, const std::string& fallback);

/** ASCII-lowercase a string (shared by the choice-knob parsers). */
std::string asciiLower(std::string_view s);

/**
 * True when `word` appears in the space-separated `list` (shared by
 * the registry alias matchers).
 */
bool nameListContains(std::string_view list, std::string_view word);

/**
 * Strict integer parse for CLI arguments: the whole string must be a
 * base-10 integer (optional sign, no leading whitespace, no trailing
 * junk) that fits int64 -- out-of-range values are rejected, never
 * truncated.
 * @return std::nullopt on empty/malformed/out-of-range input, so
 *         callers can print a usage message instead of silently
 *         running with atoi's 0.
 */
std::optional<int64_t> parseInt64(std::string_view text);

/** One "--flag <value>" option of a CLI flag set. */
struct FlagSpec
{
    std::string_view flag; // e.g. "--csv"
    std::string* value;    // receives the flag's argument
};

/**
 * Parse CLI arguments consisting solely of "--flag <value>" pairs
 * drawn from `flags`. Unknown arguments (including typos like --cvs),
 * stray positionals, and a flag missing its value all print a usage
 * message listing the accepted flags to stderr and return false --
 * never silently ignore an argument: on a multi-minute bench a typo'd
 * flag must fail fast instead of running with defaults.
 */
bool parseFlagArgs(int argc, char** argv,
                   std::initializer_list<FlagSpec> flags);

/**
 * Parse the benches' shared flag set: [--csv <path>]. On success
 * returns true with csvPath filled (empty when the flag is absent);
 * on any other argument prints a usage message to stderr and returns
 * false.
 */
bool parseCsvFlag(int argc, char** argv, std::string& csvPath);

/**
 * For executables that take no arguments: reject any argv with a
 * usage message on stderr (returns false) so extra/typo'd arguments
 * fail fast instead of being silently ignored.
 */
bool requireNoArgs(int argc, char** argv);

} // namespace vlq

#endif // VLQ_UTIL_ENV_H
