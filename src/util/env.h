#ifndef VLQ_UTIL_ENV_H
#define VLQ_UTIL_ENV_H

#include <cstdint>
#include <string>
#include <string_view>

namespace vlq {

/**
 * Environment-variable helpers used by benchmarks to scale Monte-Carlo
 * effort without recompiling (e.g. VLQ_TRIALS, VLQ_FULL, VLQ_SEED).
 * Each returns the fallback when the variable is unset or malformed.
 */
int64_t envInt(const char* name, int64_t fallback);
double envDouble(const char* name, double fallback);

/**
 * Unsigned count knob (trials, shots, batch sizes, seeds): envInt
 * clamped at zero, so "VLQ_TRIALS=-5" cannot underflow a uint64_t.
 */
uint64_t envU64(const char* name, uint64_t fallback);
std::string envString(const char* name, const std::string& fallback);

/**
 * Like envString but normalized to ASCII lowercase, for
 * case-insensitive choice knobs (e.g. VLQ_DECODER=MWPM).
 */
std::string envLower(const char* name, const std::string& fallback);

/** ASCII-lowercase a string (shared by the choice-knob parsers). */
std::string asciiLower(std::string_view s);

} // namespace vlq

#endif // VLQ_UTIL_ENV_H
