#include "util/csv.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vlq {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
CsvWriter::addNumericRow(const std::vector<double>& values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.12g", v);
        cells.emplace_back(buf);
    }
    addRow(std::move(cells));
}

std::string
CsvWriter::escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::str() const
{
    std::ostringstream ss;
    for (size_t i = 0; i < headers_.size(); ++i)
        ss << (i ? "," : "") << escape(headers_[i]);
    ss << "\n";
    for (const auto& row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            ss << (i ? "," : "") << escape(row[i]);
        ss << "\n";
    }
    return ss.str();
}

bool
CsvWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << str();
    return static_cast<bool>(out);
}

} // namespace vlq
