#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace vlq {

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stderrOfMean() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(variance() / static_cast<double>(n_));
}

double
BinomialEstimate::rate() const
{
    if (trials == 0)
        return 0.0;
    return static_cast<double>(successes) / static_cast<double>(trials);
}

std::pair<double, double>
BinomialEstimate::wilson(double z) const
{
    if (trials == 0)
        return {0.0, 1.0};
    double n = static_cast<double>(trials);
    double p = rate();
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double center = (p + z2 / (2.0 * n)) / denom;
    double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
                / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double
logLogCrossing(const std::vector<double>& xs,
               const std::vector<double>& y1,
               const std::vector<double>& y2)
{
    // Work on the log of everything; skip zero samples (no logical errors
    // observed) since they carry no crossing information.
    for (size_t i = 0; i + 1 < xs.size(); ++i) {
        if (y1[i] <= 0 || y2[i] <= 0 || y1[i + 1] <= 0 || y2[i + 1] <= 0)
            continue;
        double d0 = std::log(y1[i]) - std::log(y2[i]);
        double d1 = std::log(y1[i + 1]) - std::log(y2[i + 1]);
        if (d0 == 0.0)
            return xs[i];
        if ((d0 < 0) != (d1 < 0)) {
            // Linear interpolation of the log-difference zero in log-x.
            double t = d0 / (d0 - d1);
            double lx = std::log(xs[i])
                      + t * (std::log(xs[i + 1]) - std::log(xs[i]));
            return std::exp(lx);
        }
    }
    return -1.0;
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

std::vector<double>
logspace(double lo, double hi, int n)
{
    std::vector<double> out;
    out.reserve(static_cast<size_t>(n));
    double llo = std::log(lo);
    double lhi = std::log(hi);
    for (int i = 0; i < n; ++i) {
        double t = (n == 1) ? 0.0
                            : static_cast<double>(i)
                              / static_cast<double>(n - 1);
        out.push_back(std::exp(llo + t * (lhi - llo)));
    }
    return out;
}

} // namespace vlq
