#ifndef VLQ_UTIL_LOGGING_H
#define VLQ_UTIL_LOGGING_H

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vlq {

/**
 * Error-reporting helpers in the gem5 spirit:
 *  - vlqPanic: an internal invariant was violated (a library bug); aborts.
 *  - vlqFatal: the caller supplied an impossible configuration; exits.
 *  - vlqWarn:  something is suspicious but execution can continue.
 */
[[noreturn]] inline void
vlqPanic(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
vlqFatalImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

inline void
vlqWarnImpl(const char* file, int line, const char* msg)
{
    // Format into one buffer and emit it with a single stream write,
    // so warnings racing in from pool threads never interleave
    // mid-line (each stdio call locks the stream, but a fprintf that
    // formats piecewise may still split across flushes).
    char buf[512];
    std::snprintf(buf, sizeof(buf), "warn: %s:%d: %s\n", file, line,
                  msg);
    std::fputs(buf, stderr);
}

} // namespace vlq

#define VLQ_PANIC(msg) ::vlq::vlqPanic(__FILE__, __LINE__, (msg))
#define VLQ_FATAL(msg) ::vlq::vlqFatalImpl(__FILE__, __LINE__, (msg))
#define VLQ_WARN(msg) ::vlq::vlqWarnImpl(__FILE__, __LINE__, (msg))

/**
 * Warn exactly once per call site, however many threads race through
 * it: the first thread to flip the site's atomic flag prints, everyone
 * else skips. Use for per-shot/per-channel diagnostics that would
 * otherwise flood stderr from a million-trial scan.
 */
#define VLQ_WARN_ONCE(msg) \
    do { \
        static ::std::atomic<bool> vlqWarnedHere_{false}; \
        if (!vlqWarnedHere_.exchange(true, \
                                     ::std::memory_order_relaxed)) \
            VLQ_WARN(msg); \
    } while (0)

/** Assert an invariant that must hold regardless of user input. */
#define VLQ_ASSERT(cond, msg) \
    do { \
        if (!(cond)) \
            VLQ_PANIC(msg); \
    } while (0)

#endif // VLQ_UTIL_LOGGING_H
