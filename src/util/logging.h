#ifndef VLQ_UTIL_LOGGING_H
#define VLQ_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>

namespace vlq {

/**
 * Error-reporting helpers in the gem5 spirit:
 *  - vlqPanic: an internal invariant was violated (a library bug); aborts.
 *  - vlqFatal: the caller supplied an impossible configuration; exits.
 *  - vlqWarn:  something is suspicious but execution can continue.
 */
[[noreturn]] inline void
vlqPanic(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
vlqFatalImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

inline void
vlqWarnImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "warn: %s:%d: %s\n", file, line, msg);
}

} // namespace vlq

#define VLQ_PANIC(msg) ::vlq::vlqPanic(__FILE__, __LINE__, (msg))
#define VLQ_FATAL(msg) ::vlq::vlqFatalImpl(__FILE__, __LINE__, (msg))
#define VLQ_WARN(msg) ::vlq::vlqWarnImpl(__FILE__, __LINE__, (msg))

/** Assert an invariant that must hold regardless of user input. */
#define VLQ_ASSERT(cond, msg) \
    do { \
        if (!(cond)) \
            VLQ_PANIC(msg); \
    } while (0)

#endif // VLQ_UTIL_LOGGING_H
