#ifndef VLQ_UTIL_THREADPOOL_H
#define VLQ_UTIL_THREADPOOL_H

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace vlq {

/**
 * Minimal fork-join helper for embarrassingly parallel Monte-Carlo work.
 *
 * parallelFor splits [0, n) into contiguous chunks, runs each chunk on
 * its own thread, and joins. Workers receive (begin, end, workerIndex)
 * so they can maintain per-worker accumulators and RNG streams without
 * synchronization. With numThreads == 1 the body runs inline, which is
 * the common case on single-core machines and keeps results trivially
 * deterministic.
 */
class ThreadPool
{
  public:
    /**
     * @param numThreads worker count; 0 means hardware concurrency.
     */
    explicit ThreadPool(unsigned numThreads = 0);

    /** Number of workers this pool will use. */
    unsigned numThreads() const { return numThreads_; }

    /**
     * Run body(begin, end, worker) over a partition of [0, n).
     * Blocks until all workers finish.
     */
    void parallelFor(
        uint64_t n,
        const std::function<void(uint64_t, uint64_t, unsigned)>& body) const;

  private:
    unsigned numThreads_;
};

} // namespace vlq

#endif // VLQ_UTIL_THREADPOOL_H
