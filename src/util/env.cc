#include "util/env.h"

#include <cctype>
#include <cstdlib>

namespace vlq {

int64_t
envInt(const char* name, int64_t fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char* end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

uint64_t
envU64(const char* name, uint64_t fallback)
{
    int64_t v = envInt(name, static_cast<int64_t>(fallback));
    return v < 0 ? fallback : static_cast<uint64_t>(v);
}

double
envDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

std::string
envString(const char* name, const std::string& fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::string(v);
}

std::string
envLower(const char* name, const std::string& fallback)
{
    return asciiLower(envString(name, fallback));
}

std::string
asciiLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace vlq
