#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vlq {

namespace {

/** Warn once per read about a set-but-unusable value. */
void
warnMalformed(const char* name, const char* value, const char* why)
{
    std::fprintf(stderr,
                 "warn: ignoring %s='%s' (%s); using the default\n",
                 name, value, why);
}

} // namespace

int64_t
envInt(const char* name, int64_t fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    std::optional<int64_t> parsed = parseInt64(v);
    if (!parsed) {
        warnMalformed(name, v, "not a base-10 int64");
        return fallback;
    }
    return *parsed;
}

uint64_t
envU64(const char* name, uint64_t fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    std::optional<int64_t> parsed = parseInt64(v);
    if (!parsed) {
        warnMalformed(name, v, "not a base-10 int64");
        return fallback;
    }
    if (*parsed < 0) {
        warnMalformed(name, v, "negative count");
        return fallback;
    }
    return static_cast<uint64_t>(*parsed);
}

double
envDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    if (std::isspace(static_cast<unsigned char>(*v))) {
        warnMalformed(name, v, "leading whitespace");
        return fallback;
    }
    errno = 0;
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') {
        warnMalformed(name, v, "not a number");
        return fallback;
    }
    if (errno == ERANGE || !std::isfinite(parsed)) {
        // Covers both overflow spellings: "1e999" (ERANGE) and a
        // literal "inf"/"nan" (parsed but useless as a rate/knob).
        warnMalformed(name, v, "not a finite value");
        return fallback;
    }
    return parsed;
}

std::string
envString(const char* name, const std::string& fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::string(v);
}

std::string
envLower(const char* name, const std::string& fallback)
{
    return asciiLower(envString(name, fallback));
}

std::string
asciiLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
nameListContains(std::string_view list, std::string_view word)
{
    while (!list.empty()) {
        size_t sep = list.find(' ');
        if (list.substr(0, sep) == word)
            return true;
        if (sep == std::string_view::npos)
            break;
        list.remove_prefix(sep + 1);
    }
    return false;
}

namespace {

void
printFlagUsage(const char* argv0, std::initializer_list<FlagSpec> flags)
{
    std::fprintf(stderr, "usage: %s", argv0);
    for (const FlagSpec& spec : flags)
        std::fprintf(stderr, " [%.*s <value>]",
                     static_cast<int>(spec.flag.size()), spec.flag.data());
    std::fprintf(stderr, "\n");
}

} // namespace

bool
parseFlagArgs(int argc, char** argv, std::initializer_list<FlagSpec> flags)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        const FlagSpec* match = nullptr;
        for (const FlagSpec& spec : flags)
            if (arg == spec.flag)
                match = &spec;
        if (!match) {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         argv[i]);
            printFlagUsage(argv[0], flags);
            return false;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
            printFlagUsage(argv[0], flags);
            return false;
        }
        *match->value = argv[++i];
    }
    return true;
}

bool
parseCsvFlag(int argc, char** argv, std::string& csvPath)
{
    csvPath.clear();
    return parseFlagArgs(argc, argv, {{"--csv", &csvPath}});
}

bool
requireNoArgs(int argc, char** argv)
{
    if (argc <= 1)
        return true;
    std::fprintf(stderr,
                 "error: unknown argument '%s'\nusage: %s  (takes no "
                 "arguments)\n",
                 argv[1], argv[0]);
    return false;
}

std::optional<int64_t>
parseInt64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // strtoll skips leading whitespace; a strict CLI/env parse must
    // not, so " 42" and whitespace-only values are rejected here.
    if (std::isspace(static_cast<unsigned char>(text.front())))
        return std::nullopt;
    // NUL-terminate for strtoll; CLI arguments are short.
    std::string buf(text);
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(buf.c_str(), &end, 10);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<int64_t>(parsed);
}

} // namespace vlq
