#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace vlq {

int64_t
envInt(const char* name, int64_t fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char* end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

uint64_t
envU64(const char* name, uint64_t fallback)
{
    int64_t v = envInt(name, static_cast<int64_t>(fallback));
    return v < 0 ? fallback : static_cast<uint64_t>(v);
}

double
envDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

std::string
envString(const char* name, const std::string& fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::string(v);
}

std::string
envLower(const char* name, const std::string& fallback)
{
    return asciiLower(envString(name, fallback));
}

std::string
asciiLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
nameListContains(std::string_view list, std::string_view word)
{
    while (!list.empty()) {
        size_t sep = list.find(' ');
        if (list.substr(0, sep) == word)
            return true;
        if (sep == std::string_view::npos)
            break;
        list.remove_prefix(sep + 1);
    }
    return false;
}

bool
parseCsvFlag(int argc, char** argv, std::string& csvPath)
{
    csvPath.clear();
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg == "--csv" && i + 1 < argc) {
            csvPath = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--csv <path>]\n", argv[0]);
            return false;
        }
    }
    return true;
}

std::optional<int64_t>
parseInt64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // NUL-terminate for strtoll; CLI arguments are short.
    std::string buf(text);
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(buf.c_str(), &end, 10);
    if (end == buf.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<int64_t>(parsed);
}

} // namespace vlq
