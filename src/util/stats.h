#ifndef VLQ_UTIL_STATS_H
#define VLQ_UTIL_STATS_H

#include <cstdint>
#include <utility>
#include <vector>

namespace vlq {

/** Running mean / variance accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than 2 samples). */
    double variance() const;

    /** Standard error of the mean. */
    double stderrOfMean() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Result of a binomial estimate: k successes out of n trials.
 * Provides the point estimate and a Wilson score confidence interval,
 * which behaves well for the small success counts typical of
 * logical-error-rate estimation.
 */
struct BinomialEstimate
{
    uint64_t successes = 0;
    uint64_t trials = 0;

    /** Point estimate k/n (0 if no trials). */
    double rate() const;

    /**
     * Wilson score interval.
     * @param z normal quantile (1.96 for 95% confidence).
     * @return {low, high} bounds on the underlying probability.
     */
    std::pair<double, double> wilson(double z = 1.96) const;
};

/**
 * Find the crossing point of two curves y1(x), y2(x) sampled at shared
 * x values, interpolating linearly in log-log space. Used for threshold
 * estimation: the threshold is where the distance-d and distance-d'
 * logical error curves intersect.
 *
 * @return crossing x, or a negative value if the curves do not cross
 *         within the sampled range.
 */
double
logLogCrossing(const std::vector<double>& xs,
               const std::vector<double>& y1,
               const std::vector<double>& y2);

/** Median of a vector (by copy); returns 0 for an empty input. */
double median(std::vector<double> values);

/** Generate n log-spaced points in [lo, hi] inclusive. n >= 2. */
std::vector<double> logspace(double lo, double hi, int n);

} // namespace vlq

#endif // VLQ_UTIL_STATS_H
