#include "util/rng.h"

namespace vlq {

namespace {

/** splitmix64 step; used to expand seeds into full 256-bit states. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : seed_(seed)
{
    uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

void
Rng::fillDoubles(double* out, uint32_t n)
{
    uint64_t s0 = state_[0];
    uint64_t s1 = state_[1];
    uint64_t s2 = state_[2];
    uint64_t s3 = state_[3];
    for (uint32_t i = 0; i < n; ++i) {
        const uint64_t result = rotl(s1 * 5, 7) * 9;
        const uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
        out[i] = static_cast<double>(result >> 11) * 0x1.0p-53;
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    // Debiased modulo via rejection sampling.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

Rng
Rng::split(uint64_t streamIndex) const
{
    // Mix the base seed with the stream index through splitmix64 twice to
    // decorrelate consecutive stream indices.
    uint64_t s = seed_ ^ (0xdeadbeefcafef00dULL + streamIndex);
    splitmix64(s);
    uint64_t mixed = splitmix64(s);
    return Rng(mixed);
}

} // namespace vlq
