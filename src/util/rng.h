#ifndef VLQ_UTIL_RNG_H
#define VLQ_UTIL_RNG_H

#include <cstdint>

namespace vlq {

/**
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Monte-Carlo experiments need a fast, reproducible, splittable RNG.
 * xoshiro256** passes BigCrush and is far faster than std::mt19937_64.
 * Seeding uses splitmix64 so that nearby integer seeds give uncorrelated
 * streams, which lets trial workers derive independent generators from
 * (seed, trialIndex).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Fill `out[0..n)` with the next n uniform doubles, bit-identical
     * to n sequential nextDouble() calls. The generator state lives in
     * registers for the whole block, so bulk consumers (the blocked
     * batch sampler) pay the state load/store once per block instead
     * of once per draw.
     */
    void fillDoubles(double* out, uint32_t n);

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) { return nextDouble() < p; }

    /**
     * Derive an independent generator for a sub-stream.
     * @param streamIndex index of the sub-stream (e.g. a trial number).
     */
    Rng split(uint64_t streamIndex) const;

  private:
    uint64_t state_[4];
    uint64_t seed_;
};

} // namespace vlq

#endif // VLQ_UTIL_RNG_H
