#ifndef VLQ_UTIL_CSV_H
#define VLQ_UTIL_CSV_H

#include <string>
#include <vector>

namespace vlq {

/**
 * Minimal CSV writer for benchmark series (one file per figure panel,
 * suitable for direct plotting). Values are written with full double
 * precision; cells containing commas/quotes are quoted.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience numeric row. */
    void addNumericRow(const std::vector<double>& values);

    /** Render to a string (header + rows). */
    std::string str() const;

    /**
     * Write to a file.
     * @return true on success.
     */
    bool writeFile(const std::string& path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;

    static std::string escape(const std::string& cell);
};

} // namespace vlq

#endif // VLQ_UTIL_CSV_H
