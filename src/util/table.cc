#include "util/table.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace vlq {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
TablePrinter::sci(double v, int precision)
{
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(precision) << v;
    return ss.str();
}

void
TablePrinter::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? " |" : " | ");
        }
        os << "\n";
    };

    printRow(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-');
        os << "|";
    }
    os << "\n";
    for (const auto& row : rows_)
        printRow(row);
}

} // namespace vlq
