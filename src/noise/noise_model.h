#ifndef VLQ_NOISE_NOISE_MODEL_H
#define VLQ_NOISE_NOISE_MODEL_H

#include <cstdint>

#include "noise/hardware_params.h"

namespace vlq {

/** Physical location kind of a circuit wire. */
enum class WireKind : unsigned char { Transmon = 0, CavityMode = 1 };

/**
 * Complete error model for one simulation configuration.
 *
 * Follows the paper's Section IV-A: every n-qubit gate of the same n is
 * equally error-prone, all errors are Pauli, storage error over a
 * duration dt is lambda = 1 - exp(-dt / T1), and in threshold sweeps all
 * gate errors and coherence-derived idle errors scale together from the
 * single parameter p = probability of an SC-SC two-qubit gate error.
 *
 * Derived rates (documented in DESIGN.md; the paper fixes only the
 * sweep parameter): p2 = pTm = pLoadStore = p, p1 = p/10, pMeas = p,
 * pReset = 0 (the paper assumes efficient error-free reset). Fields are
 * public so sensitivity studies (Fig. 12) can vary one source at a time.
 */
struct NoiseModel
{
    HardwareParams hw;

    /** SC-SC two-qubit depolarizing probability. */
    double p2 = 2.0e-3;

    /** Transmon-mode two-qubit depolarizing probability. */
    double pTm = 2.0e-3;

    /** Load/store depolarizing probability (on transmon+mode pair). */
    double pLoadStore = 2.0e-3;

    /** Single-qubit gate depolarizing probability. */
    double p1 = 2.0e-4;

    /** Measurement record flip probability. */
    double pMeas = 2.0e-3;

    /** Reset error probability (X after reset). */
    double pReset = 0.0;

    /**
     * Linear idle-error scale factor applied on top of the Table-I
     * coherence times; 1.0 reproduces Table I exactly. Threshold sweeps
     * with scaled coherence set this to p / pRef.
     */
    double idleScale = 1.0;

    /**
     * Build the model for sweep parameter p.
     *
     * @param p physical error rate (SC-SC two-qubit gate error).
     * @param hw hardware timing/coherence parameters.
     * @param scaleCoherence when true (paper's "vary all gate errors and
     *        coherence times together"), idle errors scale linearly in
     *        p relative to pRef; when false, coherence stays at the
     *        Table-I operating point while gate errors sweep.
     * @param pRef reference operating point (paper Sec. VI uses 2e-3).
     */
    static NoiseModel atPhysicalRate(double p,
                                     const HardwareParams& hw,
                                     bool scaleCoherence = true,
                                     double pRef = 2.0e-3);

    /**
     * Depolarizing probability for a wire idling dtNs nanoseconds.
     * Capped at 0.75 (maximally mixing). The first time the cap binds in
     * a run a warning is printed, so large-idleScale sensitivity scans
     * cannot silently flatten; every bind is also counted (see
     * idleCapBindCount).
     */
    double idleError(WireKind kind, double dtNs) const;

    /** Number of idleError calls that hit the 0.75 cap so far. */
    static uint64_t idleCapBindCount();

    /** Reset the cap-bind counter (tests). The warn-once latch is a
     *  per-process VLQ_WARN_ONCE site and stays fired. */
    static void resetIdleCapDiagnostics();
};

} // namespace vlq

#endif // VLQ_NOISE_NOISE_MODEL_H
