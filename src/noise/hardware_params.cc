#include "noise/hardware_params.h"

namespace vlq {

HardwareParams
HardwareParams::baselineTransmons()
{
    HardwareParams hw;
    // Baseline column of Table I: no cavity; cavity fields are unused
    // but kept at the memory values so accidental use is visible in
    // sensitivity sweeps rather than dividing by zero.
    return hw;
}

HardwareParams
HardwareParams::transmonsWithMemory()
{
    HardwareParams hw;
    return hw;
}

} // namespace vlq
