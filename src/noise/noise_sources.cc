#include "noise/noise_sources.h"

#include <cmath>

#include "util/logging.h"

namespace vlq {

void
BiasedPauliSource::split(double p, double& px, double& py,
                         double& pz) const
{
    VLQ_ASSERT(rX >= 0.0 && rY >= 0.0 && rZ >= 0.0,
               "negative Pauli bias ratio");
    double s = rX + rY + rZ;
    VLQ_ASSERT(s > 0.0, "all Pauli bias ratios zero");
    px = p * rX / s;
    py = p * rY / s;
    pz = p * rZ / s;
}

double
ReadoutFlipSource::effectiveFlip(double pMeas) const
{
    double p01 = p0to1 >= 0.0 ? p0to1 : pMeas;
    double p10 = p1to0 >= 0.0 ? p1to0 : pMeas;
    return (p01 + p10) / 2.0;
}

double
IdleDephasingSource::dephasingError(WireKind kind, double dtNs) const
{
    double tPhi = (kind == WireKind::Transmon) ? tPhiTransmonNs
                                               : tPhiCavityNs;
    if (tPhi <= 0.0 || dtNs <= 0.0)
        return 0.0;
    return 0.5 * (1.0 - std::exp(-dtNs / tPhi));
}

void
AmplitudeDampingSource::twirl(double gamma, double& px, double& py,
                              double& pz)
{
    VLQ_ASSERT(gamma >= 0.0 && gamma <= 1.0,
               "damping gamma outside [0, 1]");
    px = gamma / 4.0;
    py = gamma / 4.0;
    double half = (1.0 - std::sqrt(1.0 - gamma)) / 2.0;
    pz = half * half;
}

} // namespace vlq
