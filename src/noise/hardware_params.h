#ifndef VLQ_NOISE_HARDWARE_PARAMS_H
#define VLQ_NOISE_HARDWARE_PARAMS_H

namespace vlq {

/**
 * Hardware timing and coherence parameters (paper Table I).
 *
 * All durations are in nanoseconds, coherence times too. The paper's
 * Table I gives: T1 transmon 100 us, T1 cavity 1 ms, transmon-transmon
 * gate 200 ns, single-qubit gate 50 ns, transmon-mode gate 200 ns,
 * load/store 150 ns. Measurement and reset durations are NOT reported in
 * the paper; the defaults below are typical superconducting values and
 * are documented as assumptions in DESIGN.md.
 */
struct HardwareParams
{
    /** Transmon relaxation time (ns). Table I: 100 us. */
    double t1Transmon = 100.0e3;

    /** Cavity-mode relaxation time (ns). Table I: 1 ms. */
    double t1Cavity = 1.0e6;

    /** Single-qubit gate duration (ns). Table I: 50 ns. */
    double tGate1 = 50.0;

    /** Transmon-transmon two-qubit gate duration (ns). Table I: 200 ns. */
    double tGate2 = 200.0;

    /** Transmon-mode two-qubit gate duration (ns). Table I: 200 ns. */
    double tGateTm = 200.0;

    /** Load/store (transmon-mediated iSWAP) duration (ns). Table I:
     *  150 ns. */
    double tLoadStore = 150.0;

    /** Measurement duration (ns). Assumption; not in Table I. */
    double tMeasure = 300.0;

    /** Active reset duration (ns). Assumption; not in Table I. */
    double tReset = 100.0;

    /** Baseline transmon-only hardware (no cavities attached). */
    static HardwareParams baselineTransmons();

    /** Transmons with memory (cavities attached), Table I right column. */
    static HardwareParams transmonsWithMemory();
};

} // namespace vlq

#endif // VLQ_NOISE_HARDWARE_PARAMS_H
