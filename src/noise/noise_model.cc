#include "noise/noise_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/logging.h"

namespace vlq {

namespace {

std::atomic<uint64_t> idleCapBinds{0};

} // namespace

NoiseModel
NoiseModel::atPhysicalRate(double p, const HardwareParams& hw,
                           bool scaleCoherence, double pRef)
{
    NoiseModel nm;
    nm.hw = hw;
    nm.p2 = p;
    nm.pTm = p;
    nm.pLoadStore = p;
    nm.p1 = p / 10.0;
    nm.pMeas = p;
    nm.pReset = 0.0;
    nm.idleScale = scaleCoherence ? (p / pRef) : 1.0;
    return nm;
}

double
NoiseModel::idleError(WireKind kind, double dtNs) const
{
    if (dtNs <= 0.0)
        return 0.0;
    double t1 = (kind == WireKind::Transmon) ? hw.t1Transmon : hw.t1Cavity;
    if (t1 <= 0.0)
        return 0.0;
    double lambda = 1.0 - std::exp(-dtNs / t1);
    double scaled = lambda * idleScale;
    if (scaled > 0.75) {
        idleCapBinds.fetch_add(1, std::memory_order_relaxed);
        VLQ_WARN_ONCE("idle error saturated at 0.75 (maximally "
                      "mixing); idleScale is too large for this "
                      "duration and the sweep will flatten");
        return 0.75;
    }
    return scaled;
}

uint64_t
NoiseModel::idleCapBindCount()
{
    return idleCapBinds.load(std::memory_order_relaxed);
}

void
NoiseModel::resetIdleCapDiagnostics()
{
    // Resets the bind counter only; the VLQ_WARN_ONCE site keeps its
    // fired state -- the warning is per-process, the count per-test.
    idleCapBinds.store(0, std::memory_order_relaxed);
}

} // namespace vlq
