#include "noise/noise_model.h"

#include <algorithm>
#include <cmath>

namespace vlq {

NoiseModel
NoiseModel::atPhysicalRate(double p, const HardwareParams& hw,
                           bool scaleCoherence, double pRef)
{
    NoiseModel nm;
    nm.hw = hw;
    nm.p2 = p;
    nm.pTm = p;
    nm.pLoadStore = p;
    nm.p1 = p / 10.0;
    nm.pMeas = p;
    nm.pReset = 0.0;
    nm.idleScale = scaleCoherence ? (p / pRef) : 1.0;
    return nm;
}

double
NoiseModel::idleError(WireKind kind, double dtNs) const
{
    if (dtNs <= 0.0)
        return 0.0;
    double t1 = (kind == WireKind::Transmon) ? hw.t1Transmon : hw.t1Cavity;
    if (t1 <= 0.0)
        return 0.0;
    double lambda = 1.0 - std::exp(-dtNs / t1);
    return std::min(0.75, lambda * idleScale);
}

} // namespace vlq
