#ifndef VLQ_NOISE_NOISE_SOURCES_H
#define VLQ_NOISE_NOISE_SOURCES_H

#include "noise/noise_model.h"

namespace vlq {

/**
 * Composable per-channel noise sources.
 *
 * The flat NoiseModel collapses every error mechanism into uniform Pauli
 * depolarizing with a handful of scalar rates. Each struct below is one
 * independent physical mechanism that can be switched on individually;
 * CompositeNoiseModel bundles them on top of the flat model. Every
 * source defaults to *disabled*, in which case generators emit exactly
 * the same operation stream as the flat model (bit-identical circuits,
 * DEMs and seeded Monte-Carlo counts).
 */

/**
 * Biased Pauli errors: distribute each gate class's depolarizing budget
 * over X:Y:Z in the given ratios instead of uniformly. Equal ratios
 * (the default) are exactly the uniform depolarizing channel and keep
 * the DEPOLARIZE1/2 emission path. With bias enabled, two-qubit gate
 * errors are modeled as independent single-qubit biased channels on
 * each operand carrying half the gate budget each (the standard
 * biased-noise simplification; a correlated 2-qubit biased channel is
 * not representable in the IR).
 */
struct BiasedPauliSource
{
    double rX = 1.0;
    double rY = 1.0;
    double rZ = 1.0;

    bool enabled() const { return !(rX == rY && rY == rZ); }

    /** Split a total budget p into px/py/pz according to the ratios. */
    void split(double p, double& px, double& py, double& pz) const;
};

/**
 * Asymmetric readout: the recorded outcome flips 0->1 with probability
 * p0to1 and 1->0 with p1to0. A negative value inherits the flat pMeas.
 * Detector error models cannot represent state-dependent flips, so the
 * emitted flip probability is the state-averaged (p0to1 + p1to0) / 2 —
 * exactly pMeas when both sides inherit.
 */
struct ReadoutFlipSource
{
    double p0to1 = -1.0;
    double p1to0 = -1.0;

    bool enabled() const { return p0to1 >= 0.0 || p1to0 >= 0.0; }

    /** State-averaged flip probability given the flat fallback. */
    double effectiveFlip(double pMeas) const;
};

/**
 * Pure-dephasing idle noise on top of the T1-derived depolarizing idle
 * error: an extra Z error with probability (1 - exp(-dt/Tphi))/2 per
 * idle window, with distinct Tphi for transmons and cavity modes.
 * Tphi <= 0 disables the respective wire kind.
 */
struct IdleDephasingSource
{
    double tPhiTransmonNs = 0.0;
    double tPhiCavityNs = 0.0;

    bool enabled() const
    {
        return tPhiTransmonNs > 0.0 || tPhiCavityNs > 0.0;
    }

    /** Z-error probability for a wire of the given kind idling dtNs. */
    double dephasingError(WireKind kind, double dtNs) const;
};

/**
 * Amplitude damping after every gate, Pauli-twirled so the stabilizer
 * pipeline can sample it: damping strength gamma twirls to
 * pX = pY = gamma/4, pZ = ((1 - sqrt(1-gamma)) / 2)^2.
 * gamma <= 0 disables the source.
 */
struct AmplitudeDampingSource
{
    double gamma = 0.0;

    bool enabled() const { return gamma > 0.0; }

    /** Twirled Pauli weights of an amplitude-damping channel. */
    static void twirl(double gamma, double& px, double& py, double& pz);
};

/**
 * Qubit loss / erasure: a fraction of each gate's error budget is
 * converted from depolarizing to erasure. An erased qubit is replaced
 * by the maximally mixed state (uniform I/X/Y/Z). When heralded, the
 * erasure location is flagged to the decoder, which seeds union-find
 * clusters on the corresponding edges at zero weight — the known
 * erasure-threshold win. When unheralded it degrades to plain
 * depolarizing of strength 3p/4 (the Pauli mass of the mixed state).
 */
struct ErasureSource
{
    /** Fraction of each gate error budget converted to erasure. */
    double fraction = 0.0;
    bool heralded = true;

    bool enabled() const { return fraction > 0.0; }
};

/**
 * The flat NoiseModel plus the composable sources. Inherits so every
 * existing `config.noise.p2`-style knob (sensitivity panels, benches,
 * checkpoints) keeps working. Assigning a flat NoiseModel resets all
 * sources to their disabled defaults.
 */
struct CompositeNoiseModel : public NoiseModel
{
    BiasedPauliSource bias;
    ReadoutFlipSource readout;
    IdleDephasingSource dephasing;
    AmplitudeDampingSource damping;
    ErasureSource erasure;

    CompositeNoiseModel() = default;
    CompositeNoiseModel(const NoiseModel& flat)
        : NoiseModel(flat)
    {
    }

    /**
     * True when every source is disabled and generators must emit the
     * byte-identical uniform-Pauli operation stream of the flat model.
     */
    bool isUniform() const
    {
        return !bias.enabled() && !readout.enabled()
            && !dephasing.enabled() && !damping.enabled()
            && !erasure.enabled();
    }

    /** Measurement flip probability after the readout source. */
    double measFlip() const { return readout.effectiveFlip(pMeas); }
};

} // namespace vlq

#endif // VLQ_NOISE_NOISE_SOURCES_H
