#ifndef VLQ_DECODER_DECODING_GRAPH_H
#define VLQ_DECODER_DECODING_GRAPH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dem/detector_model.h"

namespace vlq {

/** One (deduplicated) edge of the decoding graph. */
struct DecodingEdge
{
    uint32_t a = 0;            // smaller endpoint
    uint32_t b = 0;            // larger endpoint (may be the boundary)
    double probability = 0.0;  // combined independent flip probability
    double weight = 0.0;       // log-likelihood ratio ln((1-p)/p)
    uint32_t observables = 0;  // observable mask of the dominant fault
};

/**
 * Sparse decoding graph derived from a detector error model.
 *
 * Nodes are detectors plus one virtual boundary node (index
 * numDetectors()). Every fault outcome flipping one detector contributes
 * a boundary edge; two detectors, a regular edge; more than two (rare
 * correlated events) are greedily decomposed into known edges. Parallel
 * contributions combine as independent flip probabilities
 * (p = p1 + p2 - 2 p1 p2) and edge weights are the standard
 * log-likelihood ratios ln((1-p)/p).
 *
 * This is the shared substrate of all decoder backends: the matching
 * path runs all-pairs shortest paths over it, and the union-find path
 * grows clusters directly on the adjacency lists.
 */
class DecodingGraph
{
  public:
    /** Diagnostics from graph construction. */
    struct BuildStats
    {
        /** Outcomes with >2 detectors that fit known edges. */
        uint32_t decomposed = 0;
        /** Outcomes with >2 detectors needing arbitrary pairing. */
        uint32_t forcedPairings = 0;
        /** Edges whose contributions disagreed on the observable. */
        uint32_t observableConflicts = 0;
    };

    DecodingGraph() = default;

    /** Start a hand-built graph with the given detector count. */
    explicit DecodingGraph(uint32_t numDetectors);

    /** Derive the graph from a detector error model. */
    static DecodingGraph build(const DetectorErrorModel& dem);

    /**
     * Merge one fault contribution into the edge (a, b); b may be
     * boundaryNode(). Parallel contributions combine independently and
     * the strongest contribution's observable mask wins. Call
     * finalize() after the last contribution.
     */
    void addContribution(uint32_t a, uint32_t b, double probability,
                         uint32_t observables);

    /** Recompute weights and adjacency after addContribution calls. */
    void finalize();

    /** Number of detector nodes (excludes the boundary). */
    uint32_t numDetectors() const { return numDetectors_; }

    /** Total node count including the boundary. */
    uint32_t numNodes() const { return numDetectors_ + 1; }

    /** Index of the virtual boundary node. */
    uint32_t boundaryNode() const { return numDetectors_; }

    const std::vector<DecodingEdge>& edges() const { return edges_; }

    /** Indices into edges() of the edges incident to node v. */
    const std::vector<uint32_t>& incidentEdges(uint32_t v) const
    {
        return adjacency_[v];
    }

    /** The endpoint of edge e that is not v. */
    uint32_t otherEndpoint(uint32_t e, uint32_t v) const
    {
        const DecodingEdge& edge = edges_[e];
        return edge.a == v ? edge.b : edge.a;
    }

    /**
     * Index of the edge between a and b (either order; b may be the
     * boundary), or -1 when no fault contributes such an edge.
     */
    int32_t findEdge(uint32_t a, uint32_t b) const;

    /**
     * Structure-of-arrays mirror of edges() + incidentEdges(), rebuilt
     * by finalize(). Hot decoder loops (union-find growth, Dijkstra
     * searches, forest peeling) walk these contiguous arrays instead of
     * chasing vector<vector> adjacency lists and 40-byte edge structs.
     * Slot order matches incidentEdges() exactly and the per-edge
     * arrays are parallel to edges(), so iteration-order-dependent
     * tie-breaks (and therefore decoder output) are unchanged.
     */
    struct SoA
    {
        /**
         * CSR adjacency over all nodes including the boundary: the
         * incident slots of node v are [vertexBegin[v],
         * vertexBegin[v + 1]).
         */
        std::vector<uint32_t> vertexBegin;
        std::vector<uint32_t> slotEdge;  // edge index at each slot
        std::vector<uint32_t> slotOther; // opposite endpoint at the slot

        /** Flat per-edge fields, parallel to edges(). */
        std::vector<uint32_t> edgeA;
        std::vector<uint32_t> edgeB;
        std::vector<double> edgeWeight;
        std::vector<uint32_t> edgeObs;
    };

    const SoA& soa() const { return soa_; }

    /** Smallest positive edge weight (0 when the graph is empty). */
    double minWeight() const { return minWeight_; }

    const BuildStats& stats() const { return stats_; }

  private:
    uint32_t numDetectors_ = 0;
    std::vector<DecodingEdge> edges_;
    std::vector<std::vector<uint32_t>> adjacency_;
    SoA soa_;
    std::vector<double> bestContribution_; // per edge, for obs arbitration
    double minWeight_ = 0.0;
    BuildStats stats_;

    uint32_t edgeIndexFor(uint32_t a, uint32_t b);
    // Map from packed (a << 32 | b) key to edge index.
    std::unordered_map<uint64_t, uint32_t> edgeIndex_;
};

} // namespace vlq

#endif // VLQ_DECODER_DECODING_GRAPH_H
