#ifndef VLQ_DECODER_DECODER_H
#define VLQ_DECODER_DECODER_H

#include <cstdint>

#include "pauli/bitvec.h"

namespace vlq {

/** Interface shared by the decoders (enables decoder ablations). */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Predict the observable flips explaining a detection-event set.
     * @param detectorFlips one bit per detector.
     * @return predicted observable bitmask.
     */
    virtual uint32_t decode(const BitVec& detectorFlips) const = 0;
};

} // namespace vlq

#endif // VLQ_DECODER_DECODER_H
