#ifndef VLQ_DECODER_DECODER_H
#define VLQ_DECODER_DECODER_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pauli/bitvec.h"

namespace vlq {

class ShotBatch;

/** Interface shared by the decoders (enables decoder ablations). */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Predict the observable flips explaining a detection-event set.
     * @param detectorFlips one bit per detector.
     * @return predicted observable bitmask.
     */
    virtual uint32_t decode(const BitVec& detectorFlips) const = 0;

    /**
     * Decode every shot of a batch: predictions[s] receives the
     * predicted observable bitmask for shot s. `predictions` must
     * hold at least batch.numShots() entries.
     *
     * The base implementation skips event-free shots word-parallel
     * and falls back to scalar decode() for the rest; backends
     * override it to reuse per-shot scratch (event lists, cluster
     * arenas, edge buffers) across the whole batch. Overrides must
     * agree with decode() shot-for-shot -- the batched Monte-Carlo
     * engine's reproducibility contract depends on it, and the test
     * suite checks it for every registered backend.
     */
    virtual void decodeBatch(const ShotBatch& batch,
                             std::span<uint32_t> predictions) const;

  protected:
    /**
     * Shared decodeBatch core for event-list backends: gathers
     * per-shot event lists with one sparse sweep (reusing a
     * per-thread scratch) and calls `decodeEvents` per shot. The
     * per-shot std::function indirection is noise next to any real
     * decode.
     */
    void decodeBatchEvents(
        const ShotBatch& batch, std::span<uint32_t> predictions,
        const std::function<uint32_t(const std::vector<uint32_t>&)>&
            decodeEvents) const;
};

} // namespace vlq

#endif // VLQ_DECODER_DECODER_H
