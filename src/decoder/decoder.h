#ifndef VLQ_DECODER_DECODER_H
#define VLQ_DECODER_DECODER_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pauli/bitvec.h"

namespace vlq {

class ShotBatch;

/** Interface shared by the decoders (enables decoder ablations). */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Predict the observable flips explaining a detection-event set.
     * @param detectorFlips one bit per detector.
     * @return predicted observable bitmask.
     */
    virtual uint32_t decode(const BitVec& detectorFlips) const = 0;

    /**
     * Decode every shot of a batch: predictions[s] receives the
     * predicted observable bitmask for shot s. `predictions` must
     * hold at least batch.numShots() entries. Forwards to the masked
     * overload with every lane selected.
     */
    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions) const
    {
        decodeBatch(batch, predictions, {});
    }

    /**
     * Masked batch decode: `laneMask` holds one bit per shot in the
     * batch's transposed lane layout (laneMask[s / 64] bit s % 64;
     * word count batch.wordsPerRow()). Only shots with a set bit are
     * decoded; cleared lanes are skipped entirely and their
     * `predictions` entries are left untouched -- compute backends
     * use this to route trivial/near-trivial syndromes through a
     * classifier lookup and hand the general decoder the rest. An
     * empty span selects every lane.
     *
     * The base implementation skips event-free shots word-parallel
     * and falls back to scalar decode() for the rest; backends
     * override it to reuse per-shot scratch (event lists, cluster
     * arenas, edge buffers) across the whole batch. Overrides must
     * agree with decode() shot-for-shot on every selected lane -- the
     * batched Monte-Carlo engine's reproducibility contract depends
     * on it, and the test suite checks it for every registered
     * backend.
     */
    virtual void decodeBatch(const ShotBatch& batch,
                             std::span<uint32_t> predictions,
                             std::span<const uint64_t> laneMask) const;

  protected:
    /** True when `laneMask` (empty = all) selects shot s. */
    static bool laneSelected(std::span<const uint64_t> laneMask,
                             uint32_t s)
    {
        return laneMask.empty()
               || ((laneMask[s / 64] >> (s % 64)) & 1) != 0;
    }

    /**
     * Shared decodeBatch core for event-list backends: gathers
     * per-shot event lists with one sparse sweep (reusing a
     * per-thread scratch) and calls `decodeEvents` per selected shot
     * (see decodeBatch for laneMask semantics). The per-shot
     * std::function indirection is noise next to any real decode.
     */
    void decodeBatchEvents(
        const ShotBatch& batch, std::span<uint32_t> predictions,
        std::span<const uint64_t> laneMask,
        const std::function<uint32_t(const std::vector<uint32_t>&)>&
            decodeEvents) const;
};

} // namespace vlq

#endif // VLQ_DECODER_DECODER_H
