#include "decoder/decoder_factory.h"

#include <string>

#include "decoder/mwpm_decoder.h"
#include "decoder/union_find.h"
#include "util/env.h"
#include "util/logging.h"

namespace vlq {

namespace {

std::unique_ptr<Decoder>
makeMwpm(const DetectorErrorModel& dem)
{
    return std::make_unique<MwpmDecoder>(dem);
}

std::unique_ptr<Decoder>
makeGreedy(const DetectorErrorModel& dem)
{
    return std::make_unique<GreedyDecoder>(dem);
}

std::unique_ptr<Decoder>
makeUnionFind(const DetectorErrorModel& dem)
{
    return std::make_unique<UnionFindDecoder>(dem);
}

std::vector<DecoderRegistration>&
mutableRegistry()
{
    static std::vector<DecoderRegistration> registry{
        {DecoderKind::Mwpm, "mwpm", "blossom matching", makeMwpm},
        {DecoderKind::Greedy, "greedy", "", makeGreedy},
        {DecoderKind::UnionFind, "union-find", "unionfind uf",
         makeUnionFind},
    };
    return registry;
}

} // namespace

const std::vector<DecoderRegistration>&
decoderRegistry()
{
    return mutableRegistry();
}

void
registerDecoder(const DecoderRegistration& registration)
{
    for (DecoderRegistration& entry : mutableRegistry()) {
        if (entry.kind == registration.kind) {
            entry = registration;
            return;
        }
    }
    mutableRegistry().push_back(registration);
}

std::unique_ptr<Decoder>
makeDecoder(DecoderKind kind, const DetectorErrorModel& dem)
{
    for (const DecoderRegistration& entry : decoderRegistry())
        if (entry.kind == kind)
            return entry.maker(dem);
    // Unreachable for the built-in kinds; fail safe to the reference
    // decoder rather than crash.
    return makeMwpm(dem);
}

std::unique_ptr<Decoder>
makeDecoder(std::string_view name, const DetectorErrorModel& dem)
{
    std::optional<DecoderKind> kind = parseDecoderKind(name);
    if (!kind)
        return nullptr;
    return makeDecoder(*kind, dem);
}

const char*
decoderKindName(DecoderKind kind)
{
    for (const DecoderRegistration& entry : decoderRegistry())
        if (entry.kind == kind)
            return entry.name;
    return "unknown";
}

std::optional<DecoderKind>
parseDecoderKind(std::string_view name)
{
    std::string lowered = asciiLower(name);
    if (lowered.empty())
        return std::nullopt;
    for (const DecoderRegistration& entry : decoderRegistry()) {
        if (lowered == entry.name
            || nameListContains(entry.aliases, lowered))
            return entry.kind;
    }
    return std::nullopt;
}

std::string
decoderKindList()
{
    std::string out;
    for (const DecoderRegistration& entry : decoderRegistry()) {
        if (!out.empty())
            out += ", ";
        out += entry.name;
    }
    return out;
}

DecoderKind
decoderKindFromEnv(DecoderKind fallback, const char* variable)
{
    std::string value = envLower(variable, "");
    if (value.empty())
        return fallback;
    std::optional<DecoderKind> kind = parseDecoderKind(value);
    if (!kind) {
        const std::string msg = std::string(variable) + "=" + value
            + " is not a registered decoder (valid: "
            + decoderKindList() + ")";
        VLQ_FATAL(msg.c_str());
    }
    return *kind;
}

} // namespace vlq
