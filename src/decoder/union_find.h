#ifndef VLQ_DECODER_UNION_FIND_H
#define VLQ_DECODER_UNION_FIND_H

#include <cstdint>
#include <vector>

#include "decoder/decoder.h"
#include "decoder/decoding_graph.h"
#include "dem/detector_model.h"

namespace vlq {

/**
 * Weighted union-find decoder (Delfosse & Nickerson style).
 *
 * Edge weights are quantized into integer growth ticks. Every defect
 * (detection event) starts as its own cluster; growth is event-driven:
 * each round, every *active* cluster -- odd defect parity and no
 * boundary contact -- claims its frontier edges (an edge claimed from
 * both endpoints fills twice as fast) and time advances by the
 * smallest tick count that fills some edge. A filled ("grown") edge
 * merges its endpoint clusters (union by frontier size, find with path
 * compression); newly absorbed vertices contribute their incident
 * edges to the frontier. Contact with the virtual boundary node
 * freezes a cluster without unioning into it: two clusters that each
 * reached the boundary before reaching each other are strictly better
 * off matching to the boundary separately, so keeping them apart is
 * exact and stops the shared boundary node from chaining unrelated
 * clusters together. Growth stops when no active cluster remains.
 *
 * Each finished cluster is then peeled independently. Small clusters
 * -- the bulk of the work below threshold -- get an exact
 * minimum-weight matching of their defects over global shortest-path
 * distances: the defect-to-boundary option comes from a table built by
 * one Dijkstra at construction, and defect-pair distances from lazy
 * target-directed Dijkstras memoized across shots (global distances do
 * not depend on the shot, so the cache preserves reproducibility; a
 * pair costing more than its two boundary chains combined is provably
 * never matched, which bounds each search). Large clusters fall back
 * to the classic linear peel of a spanning forest of their grown
 * edges. The XOR of observable masks along the chosen paths is the
 * correction. No all-pairs tables and no global blossom search: the
 * fast backend for large-distance Monte-Carlo scans, agreeing with
 * MWPM on small syndromes up to genuine weight degeneracy.
 */
class UnionFindDecoder : public Decoder
{
  public:
    /** Diagnostics of one decode call (tests and tuning). */
    struct DecodeInfo
    {
        uint32_t growthRounds = 0;
        uint32_t initialClusters = 0;
        uint32_t matchedPairs = 0;     // defect-defect correction chains
        uint32_t boundaryMatches = 0;  // defect-boundary chains
    };

    /**
     * @param granularity ticks assigned to the minimum-weight edge;
     *        larger values track relative edge weights more faithfully
     *        at the cost of more (cheap) growth rounds.
     */
    explicit UnionFindDecoder(const DetectorErrorModel& dem,
                              uint32_t granularity = 32);

    /** Decode over a pre-built (possibly hand-built) graph. */
    explicit UnionFindDecoder(DecodingGraph graph,
                              uint32_t granularity = 32);

    uint32_t decode(const BitVec& detectorFlips) const override;

    /** decode() variant that also reports diagnostics. */
    uint32_t decode(const BitVec& detectorFlips, DecodeInfo* info) const;

    const DecodingGraph& graph() const { return graph_; }

    /** Growth ticks of edge e (the quantized weight). */
    uint32_t edgeCapacity(uint32_t e) const { return capacity_[e]; }

  private:
    DecodingGraph graph_;
    std::vector<uint16_t> capacity_;
    // Global shortest path to the boundary per detector (one Dijkstra
    // at construction) -- the boundary option of the cluster matching.
    std::vector<double> boundaryDist_;
    std::vector<uint32_t> boundaryObs_;
    // Distinguishes this instance in the per-thread pair-distance
    // cache (distances are per-graph, the cache per thread).
    uint64_t cacheEpoch_ = 0;
};

} // namespace vlq

#endif // VLQ_DECODER_UNION_FIND_H
