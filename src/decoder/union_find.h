#ifndef VLQ_DECODER_UNION_FIND_H
#define VLQ_DECODER_UNION_FIND_H

#include <cstdint>
#include <vector>

#include "decoder/decoder.h"
#include "decoder/decoding_graph.h"
#include "dem/detector_model.h"

namespace vlq {

/** Tuning knobs of the union-find decoder. */
struct UnionFindOptions
{
    /**
     * Ticks assigned to the minimum-weight edge; larger values track
     * relative edge weights more faithfully at the cost of more
     * (cheap) growth rounds.
     */
    uint32_t granularity = 32;

    /**
     * Syndromes with at most this many detection events skip cluster
     * growth entirely and get one exact minimum-weight matching of
     * all defects over global shortest-path distances -- the same
     * formulation as the blossom decoder, solved by branch-and-bound,
     * so small syndromes (the bulk of every below-threshold shot) are
     * decoded MWPM-exactly at a fraction of the growth path's cost.
     * 0 disables the fast path (tests of the growth machinery do
     * this); values are clamped to 16 to bound the branch-and-bound.
     */
    uint32_t exactSyndromeThreshold = 10;
};

/**
 * Weighted union-find decoder (Delfosse & Nickerson style).
 *
 * Edge weights are quantized into integer growth ticks. Every defect
 * (detection event) starts as its own cluster; growth is event-driven:
 * each round, every *active* cluster -- odd defect parity and no
 * boundary contact -- claims its frontier edges (an edge claimed from
 * both endpoints fills twice as fast) and time advances by the
 * smallest tick count that fills some edge. A filled ("grown") edge
 * merges its endpoint clusters (union by frontier size, find with path
 * compression); newly absorbed vertices contribute their incident
 * edges to the frontier. Contact with the virtual boundary node
 * freezes a cluster without unioning into it: two clusters that each
 * reached the boundary before reaching each other are strictly better
 * off matching to the boundary separately, so keeping them apart is
 * exact and stops the shared boundary node from chaining unrelated
 * clusters together. Growth stops when no active cluster remains.
 *
 * Each finished cluster is then peeled independently. Small clusters
 * -- the bulk of the work below threshold -- get an exact
 * minimum-weight matching of their defects over global shortest-path
 * distances: the defect-to-boundary option comes from a table built by
 * one Dijkstra at construction, and defect-pair distances from lazy
 * target-directed Dijkstras memoized across shots (global distances do
 * not depend on the shot, so the cache preserves reproducibility; a
 * pair costing more than its two boundary chains combined is provably
 * never matched, which bounds each search). Large clusters fall back
 * to the classic linear peel of a spanning forest of their grown
 * edges. The XOR of observable masks along the chosen paths is the
 * correction. No all-pairs tables and no global blossom search: the
 * fast backend for large-distance Monte-Carlo scans, agreeing with
 * MWPM on small syndromes up to genuine weight degeneracy.
 *
 * Syndromes below UnionFindOptions::exactSyndromeThreshold events
 * short-circuit growth altogether (see the option's doc): the scratch
 * arenas use monotonic stamps, so that fast path touches only
 * O(events) state per shot -- the property the batched Monte-Carlo
 * engine leans on.
 */
class UnionFindDecoder : public Decoder
{
  public:
    /** Diagnostics of one decode call (tests and tuning). */
    struct DecodeInfo
    {
        uint32_t growthRounds = 0;
        uint32_t initialClusters = 0;
        uint32_t matchedPairs = 0;     // defect-defect correction chains
        uint32_t boundaryMatches = 0;  // defect-boundary chains
    };

    explicit UnionFindDecoder(const DetectorErrorModel& dem,
                              UnionFindOptions options = {});

    /** Decode over a pre-built (possibly hand-built) graph. */
    explicit UnionFindDecoder(DecodingGraph graph,
                              UnionFindOptions options = {});

    uint32_t decode(const BitVec& detectorFlips) const override;

    /**
     * Batched decode: per-shot event lists are gathered with one
     * sparse sweep over the transposed batch, and the cluster arenas
     * and the memoized pair-distance cache stay hot across the whole
     * batch (they are thread-local, so cross-shot reuse is free).
     * When the batch carries heralded-erasure rows, each shot's
     * erased edges are seeded at zero weight (see decodeWithErasures).
     */
    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions,
                     std::span<const uint64_t> laneMask) const override;
    using Decoder::decodeBatch;

    /** decode() variant that also reports diagnostics. */
    uint32_t decode(const BitVec& detectorFlips, DecodeInfo* info) const;

    /**
     * Erasure-aware decode: `erasures` holds one bit per DEM erasure
     * site (FaultSampler::Shot::erasures). The edges of heralded sites
     * are grown to full support at time zero -- erasure costs nothing,
     * the Delfosse-Nickerson zero-weight seeding -- before ordinary
     * weighted growth, and clusters containing erased edges peel on
     * their spanning forests (exact for erasure-only shots). Requires
     * construction from a DetectorErrorModel (the graph alone cannot
     * map sites to edges).
     */
    uint32_t decodeWithErasures(const BitVec& detectorFlips,
                                const BitVec& erasures,
                                DecodeInfo* info = nullptr) const;

    /**
     * Lower-level erasure decode on explicit edge indices (hand-built
     * graph tests and the batched path).
     */
    uint32_t decodeErasedEdges(const BitVec& detectorFlips,
                               const std::vector<uint32_t>& erasedEdges,
                               DecodeInfo* info = nullptr) const;

    /** Edges seeded by each heralded-erasure site (diagnostics). */
    const std::vector<std::vector<uint32_t>>& erasureSiteEdges() const
    {
        return erasureSiteEdges_;
    }

    const DecodingGraph& graph() const { return graph_; }

    /** Growth ticks of edge e (the quantized weight). */
    uint32_t edgeCapacity(uint32_t e) const { return capacity_[e]; }

  private:
    /**
     * The decode core, on a pre-extracted ascending event list.
     * `erasedEdges` (possibly with duplicates) is pre-grown at zero
     * weight; pass an empty list for ordinary decoding.
     */
    uint32_t decodeEvents(const std::vector<uint32_t>& events,
                          const std::vector<uint32_t>& erasedEdges,
                          DecodeInfo* info) const;

    /** Flatten fired erasure-site indices into their edges. */
    void mapErasureSites(const std::vector<uint32_t>& sites,
                         std::vector<uint32_t>& edges) const;

    DecodingGraph graph_;
    /** Edge indices seeded by each heralded-erasure site. */
    std::vector<std::vector<uint32_t>> erasureSiteEdges_;
    uint32_t exactSyndromeThreshold_ = 0;
    std::vector<uint16_t> capacity_;
    // Global shortest path to the boundary per detector (one Dijkstra
    // at construction) -- the boundary option of the cluster matching.
    std::vector<double> boundaryDist_;
    std::vector<uint32_t> boundaryObs_;
    // Distinguishes this instance in the per-thread pair-distance
    // cache (distances are per-graph, the cache per thread).
    uint64_t cacheEpoch_ = 0;
};

} // namespace vlq

#endif // VLQ_DECODER_UNION_FIND_H
