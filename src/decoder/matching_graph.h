#ifndef VLQ_DECODER_MATCHING_GRAPH_H
#define VLQ_DECODER_MATCHING_GRAPH_H

#include <cstdint>
#include <vector>

#include "dem/detector_model.h"

namespace vlq {

/**
 * Decoding graph derived from a detector error model.
 *
 * Nodes are detectors plus one virtual boundary node. Every fault
 * outcome flipping one detector contributes a boundary edge; two
 * detectors, a regular edge; more than two (rare correlated events) are
 * greedily decomposed into known edges. Parallel contributions combine
 * as independent flip probabilities (p = p1 + p2 - 2 p1 p2) and edge
 * weights are the standard log-likelihood ratios ln((1-p)/p).
 *
 * After build(), all-pairs shortest paths (with the XOR of observable
 * masks along each path) are precomputed so per-trial decoding only
 * needs table lookups.
 */
class MatchingGraph
{
  public:
    /** Diagnostics from graph construction. */
    struct BuildStats
    {
        /** Outcomes with >2 detectors that fit known edges. */
        uint32_t decomposed = 0;
        /** Outcomes with >2 detectors needing arbitrary pairing. */
        uint32_t forcedPairings = 0;
        /** Edges whose contributions disagreed on the observable. */
        uint32_t observableConflicts = 0;
    };

    static MatchingGraph build(const DetectorErrorModel& dem);

    /** Number of detector nodes (excludes the boundary). */
    uint32_t numNodes() const { return numNodes_; }

    /** Shortest-path weight between two detectors. */
    double distance(uint32_t a, uint32_t b) const;

    /** XOR of observable masks along the shortest a-b path. */
    uint32_t pathObservables(uint32_t a, uint32_t b) const;

    /** Shortest-path weight from a detector to the boundary. */
    double boundaryDistance(uint32_t a) const;

    /** Observable mask along the shortest path to the boundary. */
    uint32_t boundaryObservables(uint32_t a) const;

    const BuildStats& stats() const { return stats_; }

    /** Number of distinct (deduplicated) edges, boundary included. */
    size_t numEdges() const { return edgeCount_; }

  private:
    uint32_t numNodes_ = 0;
    size_t edgeCount_ = 0;
    BuildStats stats_;

    // Dense tables: index boundary as node numNodes_.
    std::vector<float> dist_;     // (numNodes_+1)^2
    std::vector<uint8_t> obs_;    // observable masks along paths

    uint32_t stride() const { return numNodes_ + 1; }
};

} // namespace vlq

#endif // VLQ_DECODER_MATCHING_GRAPH_H
