#ifndef VLQ_DECODER_MATCHING_GRAPH_H
#define VLQ_DECODER_MATCHING_GRAPH_H

#include <cstdint>
#include <vector>

#include "decoder/decoding_graph.h"
#include "dem/detector_model.h"

namespace vlq {

/**
 * Dense all-pairs view of the decoding graph used by the matching
 * decoders (exact blossom MWPM and the greedy ablation).
 *
 * The sparse edge structure comes from DecodingGraph (shared with the
 * union-find backend); on top of it this precomputes all-pairs shortest
 * paths (with the XOR of observable masks along each path) so per-trial
 * decoding only needs table lookups.
 */
class MatchingGraph
{
  public:
    using BuildStats = DecodingGraph::BuildStats;

    static MatchingGraph build(const DetectorErrorModel& dem);

    /** Run all-pairs shortest paths over an existing sparse graph. */
    static MatchingGraph build(const DecodingGraph& graph);

    /** Number of detector nodes (excludes the boundary). */
    uint32_t numNodes() const { return numNodes_; }

    /** Shortest-path weight between two detectors. */
    double distance(uint32_t a, uint32_t b) const;

    /** XOR of observable masks along the shortest a-b path. */
    uint32_t pathObservables(uint32_t a, uint32_t b) const;

    /** Shortest-path weight from a detector to the boundary. */
    double boundaryDistance(uint32_t a) const;

    /** Observable mask along the shortest path to the boundary. */
    uint32_t boundaryObservables(uint32_t a) const;

    const BuildStats& stats() const { return stats_; }

    /** Number of distinct (deduplicated) edges, boundary included. */
    size_t numEdges() const { return edgeCount_; }

  private:
    uint32_t numNodes_ = 0;
    size_t edgeCount_ = 0;
    BuildStats stats_;

    // Dense tables: index boundary as node numNodes_.
    std::vector<float> dist_;     // (numNodes_+1)^2
    std::vector<uint8_t> obs_;    // observable masks along paths

    uint32_t stride() const { return numNodes_ + 1; }
};

} // namespace vlq

#endif // VLQ_DECODER_MATCHING_GRAPH_H
