#include "decoder/mwpm_decoder.h"

#include <algorithm>
#include <cmath>

#include "decoder/blossom.h"
#include "dem/shot_batch.h"
#include "util/logging.h"

namespace vlq {

MwpmDecoder::MwpmDecoder(const DetectorErrorModel& dem)
    : graph_(MatchingGraph::build(dem))
{
}

uint32_t
MwpmDecoder::decode(const BitVec& detectorFlips) const
{
    return decodeEvents(detectorFlips.onesIndices());
}

void
MwpmDecoder::decodeBatch(const ShotBatch& batch,
                         std::span<uint32_t> predictions,
                         std::span<const uint64_t> laneMask) const
{
    decodeBatchEvents(batch, predictions, laneMask,
                      [this](const std::vector<uint32_t>& events) {
                          return decodeEvents(events);
                      });
}

uint32_t
MwpmDecoder::decodeEvents(const std::vector<uint32_t>& events) const
{
    const int m = static_cast<int>(events.size());
    if (m == 0)
        return 0;

    // Nodes 0..m-1: events; m..2m-1: private boundary copies. The edge
    // buffer keeps its capacity across shots of a batch.
    static thread_local std::vector<MatchEdge> edges;
    edges.clear();
    edges.reserve(static_cast<size_t>(m) * m + m);
    for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
            double w = graph_.distance(events[static_cast<size_t>(i)],
                                       events[static_cast<size_t>(j)]);
            if (std::isfinite(w))
                edges.push_back(MatchEdge{i, j, w});
        }
        double wb =
            graph_.boundaryDistance(events[static_cast<size_t>(i)]);
        if (std::isfinite(wb))
            edges.push_back(MatchEdge{i, m + i, wb});
        for (int j = i + 1; j < m; ++j)
            edges.push_back(MatchEdge{m + i, m + j, 0.0});
    }

    std::vector<int> mate = minWeightPerfectMatching(2 * m, edges);

    uint32_t obs = 0;
    for (int i = 0; i < m; ++i) {
        int j = mate[static_cast<size_t>(i)];
        if (j == m + i) {
            obs ^= graph_.boundaryObservables(
                events[static_cast<size_t>(i)]);
        } else if (j > i && j < m) {
            obs ^= graph_.pathObservables(events[static_cast<size_t>(i)],
                                          events[static_cast<size_t>(j)]);
        }
    }
    return obs;
}

GreedyDecoder::GreedyDecoder(const DetectorErrorModel& dem)
    : graph_(MatchingGraph::build(dem))
{
}

uint32_t
GreedyDecoder::decode(const BitVec& detectorFlips) const
{
    return decodeEvents(detectorFlips.onesIndices());
}

void
GreedyDecoder::decodeBatch(const ShotBatch& batch,
                           std::span<uint32_t> predictions,
                           std::span<const uint64_t> laneMask) const
{
    decodeBatchEvents(batch, predictions, laneMask,
                      [this](const std::vector<uint32_t>& events) {
                          return decodeEvents(events);
                      });
}

uint32_t
GreedyDecoder::decodeEvents(const std::vector<uint32_t>& events) const
{
    const size_t m = events.size();
    if (m == 0)
        return 0;

    struct Cand
    {
        double w;
        uint32_t i;
        uint32_t j; // j == i means boundary
    };
    static thread_local std::vector<Cand> cands;
    cands.clear();
    for (uint32_t i = 0; i < m; ++i) {
        for (uint32_t j = i + 1; j < m; ++j) {
            double w = graph_.distance(events[i], events[j]);
            if (std::isfinite(w))
                cands.push_back(Cand{w, i, j});
        }
        double wb = graph_.boundaryDistance(events[i]);
        if (std::isfinite(wb))
            cands.push_back(Cand{wb, i, i});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.w < b.w; });

    static thread_local std::vector<uint8_t> used;
    used.assign(m, 0);
    uint32_t obs = 0;
    for (const auto& c : cands) {
        if (used[c.i] || (c.j != c.i && used[c.j]))
            continue;
        used[c.i] = 1;
        if (c.j == c.i) {
            obs ^= graph_.boundaryObservables(events[c.i]);
        } else {
            used[c.j] = 1;
            obs ^= graph_.pathObservables(events[c.i], events[c.j]);
        }
    }
    return obs;
}

} // namespace vlq
