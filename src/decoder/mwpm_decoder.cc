#include "decoder/mwpm_decoder.h"

#include <algorithm>
#include <cmath>

#include "decoder/blossom.h"
#include "util/logging.h"

namespace vlq {

MwpmDecoder::MwpmDecoder(const DetectorErrorModel& dem)
    : graph_(MatchingGraph::build(dem))
{
}

uint32_t
MwpmDecoder::decode(const BitVec& detectorFlips) const
{
    std::vector<uint32_t> events = detectorFlips.onesIndices();
    const int m = static_cast<int>(events.size());
    if (m == 0)
        return 0;

    // Nodes 0..m-1: events; m..2m-1: private boundary copies.
    std::vector<MatchEdge> edges;
    edges.reserve(static_cast<size_t>(m) * m + m);
    for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
            double w = graph_.distance(events[static_cast<size_t>(i)],
                                       events[static_cast<size_t>(j)]);
            if (std::isfinite(w))
                edges.push_back(MatchEdge{i, j, w});
        }
        double wb =
            graph_.boundaryDistance(events[static_cast<size_t>(i)]);
        if (std::isfinite(wb))
            edges.push_back(MatchEdge{i, m + i, wb});
        for (int j = i + 1; j < m; ++j)
            edges.push_back(MatchEdge{m + i, m + j, 0.0});
    }

    std::vector<int> mate = minWeightPerfectMatching(2 * m, edges);

    uint32_t obs = 0;
    for (int i = 0; i < m; ++i) {
        int j = mate[static_cast<size_t>(i)];
        if (j == m + i) {
            obs ^= graph_.boundaryObservables(
                events[static_cast<size_t>(i)]);
        } else if (j > i && j < m) {
            obs ^= graph_.pathObservables(events[static_cast<size_t>(i)],
                                          events[static_cast<size_t>(j)]);
        }
    }
    return obs;
}

GreedyDecoder::GreedyDecoder(const DetectorErrorModel& dem)
    : graph_(MatchingGraph::build(dem))
{
}

uint32_t
GreedyDecoder::decode(const BitVec& detectorFlips) const
{
    std::vector<uint32_t> events = detectorFlips.onesIndices();
    const size_t m = events.size();
    if (m == 0)
        return 0;

    struct Cand
    {
        double w;
        uint32_t i;
        uint32_t j; // j == i means boundary
    };
    std::vector<Cand> cands;
    for (uint32_t i = 0; i < m; ++i) {
        for (uint32_t j = i + 1; j < m; ++j) {
            double w = graph_.distance(events[i], events[j]);
            if (std::isfinite(w))
                cands.push_back(Cand{w, i, j});
        }
        double wb = graph_.boundaryDistance(events[i]);
        if (std::isfinite(wb))
            cands.push_back(Cand{wb, i, i});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.w < b.w; });

    std::vector<bool> used(m, false);
    uint32_t obs = 0;
    for (const auto& c : cands) {
        if (used[c.i] || (c.j != c.i && used[c.j]))
            continue;
        used[c.i] = true;
        if (c.j == c.i) {
            obs ^= graph_.boundaryObservables(events[c.i]);
        } else {
            used[c.j] = true;
            obs ^= graph_.pathObservables(events[c.i], events[c.j]);
        }
    }
    return obs;
}

} // namespace vlq
