#include "decoder/matching_graph.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace vlq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

MatchingGraph
MatchingGraph::build(const DetectorErrorModel& dem)
{
    return build(DecodingGraph::build(dem));
}

MatchingGraph
MatchingGraph::build(const DecodingGraph& graph)
{
    MatchingGraph g;
    g.numNodes_ = graph.numDetectors();
    g.edgeCount_ = graph.edges().size();
    g.stats_ = graph.stats();

    const uint32_t n = g.stride();
    g.dist_.assign(static_cast<size_t>(n) * n,
                   std::numeric_limits<float>::infinity());
    g.obs_.assign(static_cast<size_t>(n) * n, 0);

    std::vector<double> dist(n);
    std::vector<uint32_t> pobs(n);
    using QItem = std::pair<double, uint32_t>;
    for (uint32_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(pobs.begin(), pobs.end(), 0u);
        dist[src] = 0.0;
        std::priority_queue<QItem, std::vector<QItem>,
                            std::greater<QItem>> pq;
        pq.push({0.0, src});
        while (!pq.empty()) {
            auto [d, v] = pq.top();
            pq.pop();
            if (d > dist[v])
                continue;
            for (uint32_t ei : graph.incidentEdges(v)) {
                const DecodingEdge& e = graph.edges()[ei];
                uint32_t to = e.a == v ? e.b : e.a;
                double nd = d + e.weight;
                if (nd < dist[to]) {
                    dist[to] = nd;
                    pobs[to] = pobs[v] ^ e.observables;
                    pq.push({nd, to});
                }
            }
        }
        for (uint32_t t = 0; t < n; ++t) {
            g.dist_[static_cast<size_t>(src) * n + t] =
                static_cast<float>(dist[t]);
            g.obs_[static_cast<size_t>(src) * n + t] =
                static_cast<uint8_t>(pobs[t]);
        }
    }
    return g;
}

double
MatchingGraph::distance(uint32_t a, uint32_t b) const
{
    return dist_[static_cast<size_t>(a) * stride() + b];
}

uint32_t
MatchingGraph::pathObservables(uint32_t a, uint32_t b) const
{
    return obs_[static_cast<size_t>(a) * stride() + b];
}

double
MatchingGraph::boundaryDistance(uint32_t a) const
{
    return distance(a, numNodes_);
}

uint32_t
MatchingGraph::boundaryObservables(uint32_t a) const
{
    return pathObservables(a, numNodes_);
}

} // namespace vlq
