#include "decoder/matching_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/logging.h"

namespace vlq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct EdgeAccumulator
{
    double p = 0.0;
    uint32_t obs = 0;
    double bestContribution = 0.0;
};

/** Independent-flip combination of two probabilities. */
double
combineP(double a, double b)
{
    return a + b - 2.0 * a * b;
}

double
weightOf(double p)
{
    double clamped = std::min(std::max(p, 1e-14), 0.499999);
    return std::log((1.0 - clamped) / clamped);
}

} // namespace

MatchingGraph
MatchingGraph::build(const DetectorErrorModel& dem)
{
    MatchingGraph g;
    g.numNodes_ = dem.numDetectors();
    const uint32_t boundary = g.numNodes_;

    // Accumulate edges keyed by node pair (boundary edges use the
    // boundary id as second node).
    std::map<std::pair<uint32_t, uint32_t>, EdgeAccumulator> acc;
    auto addContribution = [&](uint32_t a, uint32_t b, double p,
                               uint32_t obsMask) {
        if (a > b)
            std::swap(a, b);
        EdgeAccumulator& e = acc[{a, b}];
        e.p = combineP(e.p, p);
        if (p > e.bestContribution) {
            if (e.bestContribution > 0.0 && e.obs != obsMask)
                ++g.stats_.observableConflicts;
            e.obs = obsMask;
            e.bestContribution = p;
        } else if (e.obs != obsMask) {
            ++g.stats_.observableConflicts;
        }
    };

    // Pass 1: collect 1- and 2-detector outcomes, and note known pairs.
    std::set<std::pair<uint32_t, uint32_t>> knownPairs;
    std::set<uint32_t> knownBoundary;
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            if (o.detectors.size() == 1) {
                knownBoundary.insert(o.detectors[0]);
            } else if (o.detectors.size() == 2) {
                uint32_t a = o.detectors[0];
                uint32_t b = o.detectors[1];
                knownPairs.insert({std::min(a, b), std::max(a, b)});
            }
        }
    }
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            if (o.detectors.empty()) {
                continue; // pure observable flips are undetectable
            } else if (o.detectors.size() == 1) {
                addContribution(o.detectors[0], boundary, o.probability,
                                o.observables);
            } else if (o.detectors.size() == 2) {
                addContribution(o.detectors[0], o.detectors[1],
                                o.probability, o.observables);
            } else {
                // Decompose into known pairs; leftovers pair arbitrarily.
                std::vector<uint32_t> rest(o.detectors.begin(),
                                           o.detectors.end());
                std::vector<std::pair<uint32_t, uint32_t>> pieces;
                bool usedKnown = false;
                for (size_t i = 0; i < rest.size();) {
                    bool found = false;
                    for (size_t j = i + 1; j < rest.size(); ++j) {
                        auto key = std::make_pair(
                            std::min(rest[i], rest[j]),
                            std::max(rest[i], rest[j]));
                        if (knownPairs.count(key)) {
                            pieces.push_back(key);
                            rest.erase(rest.begin()
                                       + static_cast<long>(j));
                            rest.erase(rest.begin()
                                       + static_cast<long>(i));
                            found = true;
                            usedKnown = true;
                            break;
                        }
                    }
                    if (!found)
                        ++i;
                }
                // Leftovers: pair consecutively, odd one to boundary.
                bool forced = false;
                for (size_t i = 0; i + 1 < rest.size(); i += 2) {
                    pieces.push_back({std::min(rest[i], rest[i + 1]),
                                      std::max(rest[i], rest[i + 1])});
                    forced = true;
                }
                if (rest.size() % 2 == 1) {
                    pieces.push_back({rest.back(), boundary});
                    forced = !knownBoundary.count(rest.back());
                }
                if (forced)
                    ++g.stats_.forcedPairings;
                else if (usedKnown)
                    ++g.stats_.decomposed;
                // Attribute the observable mask to the first piece.
                for (size_t i = 0; i < pieces.size(); ++i) {
                    addContribution(pieces[i].first, pieces[i].second,
                                    o.probability,
                                    i == 0 ? o.observables : 0);
                }
            }
        }
    }

    g.edgeCount_ = acc.size();

    // Adjacency for Dijkstra over nodes 0..numNodes_ (boundary last).
    struct Adj
    {
        uint32_t to;
        double w;
        uint32_t obs;
    };
    std::vector<std::vector<Adj>> adj(g.stride());
    for (const auto& [key, e] : acc) {
        double w = weightOf(e.p);
        adj[key.first].push_back(Adj{key.second, w, e.obs});
        adj[key.second].push_back(Adj{key.first, w, e.obs});
    }

    const uint32_t n = g.stride();
    g.dist_.assign(static_cast<size_t>(n) * n,
                   std::numeric_limits<float>::infinity());
    g.obs_.assign(static_cast<size_t>(n) * n, 0);

    std::vector<double> dist(n);
    std::vector<uint32_t> pobs(n);
    using QItem = std::pair<double, uint32_t>;
    for (uint32_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(pobs.begin(), pobs.end(), 0u);
        dist[src] = 0.0;
        std::priority_queue<QItem, std::vector<QItem>,
                            std::greater<QItem>> pq;
        pq.push({0.0, src});
        while (!pq.empty()) {
            auto [d, v] = pq.top();
            pq.pop();
            if (d > dist[v])
                continue;
            for (const auto& e : adj[v]) {
                double nd = d + e.w;
                if (nd < dist[e.to]) {
                    dist[e.to] = nd;
                    pobs[e.to] = pobs[v] ^ e.obs;
                    pq.push({nd, e.to});
                }
            }
        }
        for (uint32_t t = 0; t < n; ++t) {
            g.dist_[static_cast<size_t>(src) * n + t] =
                static_cast<float>(dist[t]);
            g.obs_[static_cast<size_t>(src) * n + t] =
                static_cast<uint8_t>(pobs[t]);
        }
    }
    return g;
}

double
MatchingGraph::distance(uint32_t a, uint32_t b) const
{
    return dist_[static_cast<size_t>(a) * stride() + b];
}

uint32_t
MatchingGraph::pathObservables(uint32_t a, uint32_t b) const
{
    return obs_[static_cast<size_t>(a) * stride() + b];
}

double
MatchingGraph::boundaryDistance(uint32_t a) const
{
    return distance(a, numNodes_);
}

uint32_t
MatchingGraph::boundaryObservables(uint32_t a) const
{
    return pathObservables(a, numNodes_);
}

} // namespace vlq
