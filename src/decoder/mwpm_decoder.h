#ifndef VLQ_DECODER_MWPM_DECODER_H
#define VLQ_DECODER_MWPM_DECODER_H

#include <cstdint>
#include <vector>

#include "decoder/decoder.h"
#include "decoder/matching_graph.h"
#include "dem/detector_model.h"
#include "pauli/bitvec.h"

namespace vlq {

/**
 * Minimum-weight perfect-matching decoder (the paper's "maximum
 * likelihood perfect matching").
 *
 * Detection events form a complete graph weighted by precomputed
 * shortest-path distances in the decoding graph; each event also gets a
 * private boundary copy, and boundary copies interconnect at zero
 * weight so unused ones pair off. The exact blossom algorithm finds the
 * minimum-weight perfect matching, and the XOR of the observable masks
 * along the matched paths is the correction's effect on the logicals.
 */
class MwpmDecoder : public Decoder
{
  public:
    explicit MwpmDecoder(const DetectorErrorModel& dem);

    uint32_t decode(const BitVec& detectorFlips) const override;

    /**
     * Batched decode: event lists come from one sparse sweep over the
     * batch and the edge-list buffer is reused across shots (the
     * all-pairs distance table is precomputed, so per-shot setup is
     * the only scratch left to amortize).
     */
    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions,
                     std::span<const uint64_t> laneMask) const override;
    using Decoder::decodeBatch;

    const MatchingGraph& graph() const { return graph_; }

  private:
    uint32_t decodeEvents(const std::vector<uint32_t>& events) const;

    MatchingGraph graph_;
};

/**
 * Greedy matching decoder: repeatedly matches the closest available
 * pair (or event-boundary). Used as a decoder-quality ablation; it is
 * strictly weaker than MWPM and lowers the threshold.
 */
class GreedyDecoder : public Decoder
{
  public:
    explicit GreedyDecoder(const DetectorErrorModel& dem);

    uint32_t decode(const BitVec& detectorFlips) const override;

    /** Batched decode reusing the candidate-pair buffer per shot. */
    void decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions,
                     std::span<const uint64_t> laneMask) const override;
    using Decoder::decodeBatch;

    const MatchingGraph& graph() const { return graph_; }

  private:
    uint32_t decodeEvents(const std::vector<uint32_t>& events) const;

    MatchingGraph graph_;
};

} // namespace vlq

#endif // VLQ_DECODER_MWPM_DECODER_H
