#include "decoder/decoding_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace vlq {

namespace {

/** Independent-flip combination of two probabilities. */
double
combineP(double a, double b)
{
    return a + b - 2.0 * a * b;
}

double
weightOf(double p)
{
    double clamped = std::min(std::max(p, 1e-14), 0.499999);
    return std::log((1.0 - clamped) / clamped);
}

} // namespace

DecodingGraph::DecodingGraph(uint32_t numDetectors)
    : numDetectors_(numDetectors)
{
}

int32_t
DecodingGraph::findEdge(uint32_t a, uint32_t b) const
{
    if (a > b)
        std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto it = edgeIndex_.find(key);
    return it == edgeIndex_.end() ? -1
                                  : static_cast<int32_t>(it->second);
}

uint32_t
DecodingGraph::edgeIndexFor(uint32_t a, uint32_t b)
{
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto [it, inserted] =
        edgeIndex_.try_emplace(key, static_cast<uint32_t>(edges_.size()));
    if (inserted) {
        DecodingEdge e;
        e.a = a;
        e.b = b;
        edges_.push_back(e);
        bestContribution_.push_back(0.0);
    }
    return it->second;
}

void
DecodingGraph::addContribution(uint32_t a, uint32_t b, double probability,
                               uint32_t observables)
{
    if (a > b)
        std::swap(a, b);
    uint32_t idx = edgeIndexFor(a, b);
    DecodingEdge& e = edges_[idx];
    e.probability = combineP(e.probability, probability);
    if (probability > bestContribution_[idx]) {
        if (bestContribution_[idx] > 0.0 && e.observables != observables)
            ++stats_.observableConflicts;
        e.observables = observables;
        bestContribution_[idx] = probability;
    } else if (e.observables != observables) {
        ++stats_.observableConflicts;
    }
}

void
DecodingGraph::finalize()
{
    minWeight_ = 0.0;
    adjacency_.assign(numNodes(), {});
    for (uint32_t i = 0; i < edges_.size(); ++i) {
        DecodingEdge& e = edges_[i];
        e.weight = weightOf(e.probability);
        adjacency_[e.a].push_back(i);
        if (e.b != e.a)
            adjacency_[e.b].push_back(i);
        if (minWeight_ == 0.0 || e.weight < minWeight_)
            minWeight_ = e.weight;
    }

    // Mirror into the structure-of-arrays view in identical order.
    const uint32_t n = numNodes();
    const uint32_t m = static_cast<uint32_t>(edges_.size());
    soa_.vertexBegin.assign(n + 1, 0);
    for (uint32_t v = 0; v < n; ++v)
        soa_.vertexBegin[v + 1] =
            soa_.vertexBegin[v]
            + static_cast<uint32_t>(adjacency_[v].size());
    const uint32_t slots = soa_.vertexBegin[n];
    soa_.slotEdge.resize(slots);
    soa_.slotOther.resize(slots);
    for (uint32_t v = 0; v < n; ++v) {
        uint32_t at = soa_.vertexBegin[v];
        for (uint32_t e : adjacency_[v]) {
            soa_.slotEdge[at] = e;
            soa_.slotOther[at] =
                edges_[e].a == v ? edges_[e].b : edges_[e].a;
            ++at;
        }
    }
    soa_.edgeA.resize(m);
    soa_.edgeB.resize(m);
    soa_.edgeWeight.resize(m);
    soa_.edgeObs.resize(m);
    for (uint32_t i = 0; i < m; ++i) {
        soa_.edgeA[i] = edges_[i].a;
        soa_.edgeB[i] = edges_[i].b;
        soa_.edgeWeight[i] = edges_[i].weight;
        soa_.edgeObs[i] = edges_[i].observables;
    }
}

DecodingGraph
DecodingGraph::build(const DetectorErrorModel& dem)
{
    DecodingGraph g(dem.numDetectors());
    const uint32_t boundary = g.boundaryNode();

    // Pass 1: note the pairs/boundary hits that known fault outcomes
    // produce, so correlated (>2 detector) outcomes can be decomposed
    // into edges the graph already understands.
    std::set<std::pair<uint32_t, uint32_t>> knownPairs;
    std::set<uint32_t> knownBoundary;
    for (const auto& ch : dem.channels()) {
        for (const auto& o : ch.outcomes) {
            if (o.detectors.size() == 1) {
                knownBoundary.insert(o.detectors[0]);
            } else if (o.detectors.size() == 2) {
                uint32_t a = o.detectors[0];
                uint32_t b = o.detectors[1];
                knownPairs.insert({std::min(a, b), std::max(a, b)});
            }
        }
    }

    // Pass 2: accumulate every outcome into edges. Outcomes of ONE
    // channel are mutually exclusive, so same-signature outcomes within
    // a channel sum exactly (e.g. the X and Y branches of a depolarizing
    // event often land on the same edge); only the per-channel
    // aggregates combine with the independent-flip XOR rule
    // p = p1(1-p2) + p2(1-p1) in addContribution. Feeding exclusive
    // outcomes through the XOR rule undercounts -- measurably so in
    // high-p sweeps.
    struct ExclusivePiece
    {
        uint32_t a;
        uint32_t b;
        double probability; // exclusive sum over the channel
        double best;        // largest single contribution
        uint32_t observables;
    };
    std::vector<ExclusivePiece> pieces1and2;
    for (const auto& ch : dem.channels()) {
        pieces1and2.clear();
        auto accumulate = [&](uint32_t a, uint32_t b, double p,
                              uint32_t obs) {
            if (a > b)
                std::swap(a, b);
            for (auto& piece : pieces1and2) {
                if (piece.a == a && piece.b == b) {
                    piece.probability += p;
                    if (p > piece.best) {
                        piece.best = p;
                        piece.observables = obs;
                    }
                    return;
                }
            }
            pieces1and2.push_back(ExclusivePiece{a, b, p, p, obs});
        };
        for (const auto& o : ch.outcomes) {
            if (o.detectors.empty()) {
                continue; // pure observable flips are undetectable
            } else if (o.detectors.size() == 1) {
                accumulate(o.detectors[0], boundary, o.probability,
                           o.observables);
            } else if (o.detectors.size() == 2) {
                accumulate(o.detectors[0], o.detectors[1],
                           o.probability, o.observables);
            } else {
                // Decompose into known pairs; leftovers pair arbitrarily.
                std::vector<uint32_t> rest(o.detectors.begin(),
                                           o.detectors.end());
                std::vector<std::pair<uint32_t, uint32_t>> pieces;
                bool usedKnown = false;
                for (size_t i = 0; i < rest.size();) {
                    bool found = false;
                    for (size_t j = i + 1; j < rest.size(); ++j) {
                        auto key = std::make_pair(
                            std::min(rest[i], rest[j]),
                            std::max(rest[i], rest[j]));
                        if (knownPairs.count(key)) {
                            pieces.push_back(key);
                            rest.erase(rest.begin()
                                       + static_cast<long>(j));
                            rest.erase(rest.begin()
                                       + static_cast<long>(i));
                            found = true;
                            usedKnown = true;
                            break;
                        }
                    }
                    if (!found)
                        ++i;
                }
                // Leftovers: pair consecutively, odd one to boundary.
                bool forced = false;
                for (size_t i = 0; i + 1 < rest.size(); i += 2) {
                    pieces.push_back({std::min(rest[i], rest[i + 1]),
                                      std::max(rest[i], rest[i + 1])});
                    forced = true;
                }
                if (rest.size() % 2 == 1) {
                    pieces.push_back({rest.back(), boundary});
                    forced = !knownBoundary.count(rest.back());
                }
                if (forced)
                    ++g.stats_.forcedPairings;
                else if (usedKnown)
                    ++g.stats_.decomposed;
                // Attribute the observable mask to the first piece.
                for (size_t i = 0; i < pieces.size(); ++i) {
                    g.addContribution(pieces[i].first, pieces[i].second,
                                      o.probability,
                                      i == 0 ? o.observables : 0);
                }
            }
        }
        for (const auto& piece : pieces1and2)
            g.addContribution(piece.a, piece.b, piece.probability,
                              piece.observables);
    }

    g.finalize();
    return g;
}

} // namespace vlq
