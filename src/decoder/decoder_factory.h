#ifndef VLQ_DECODER_DECODER_FACTORY_H
#define VLQ_DECODER_DECODER_FACTORY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "decoder/decoder.h"

namespace vlq {

class DetectorErrorModel;

/** Which decoder backend a Monte-Carlo run uses. */
enum class DecoderKind : uint8_t { Mwpm, Greedy, UnionFind };

/** Factory signature every registered backend provides. */
using DecoderMaker =
    std::unique_ptr<Decoder> (*)(const DetectorErrorModel& dem);

/** One entry of the decoder registry. */
struct DecoderRegistration
{
    DecoderKind kind;
    const char* name;    // canonical lowercase name
    const char* aliases; // space-separated alternative spellings
    DecoderMaker maker;
};

/**
 * The decoder registry: the built-in backends plus anything added via
 * registerDecoder(). Monte-Carlo, the benches, and the examples all
 * instantiate decoders through makeDecoder(), so a new backend only
 * needs a registry entry -- no switch statements to chase.
 */
const std::vector<DecoderRegistration>& decoderRegistry();

/**
 * Register (or, for an existing kind, replace) a backend. Not
 * thread-safe; call during startup before decoding begins.
 */
void registerDecoder(const DecoderRegistration& registration);

/** Instantiate the registered backend for `kind`. */
std::unique_ptr<Decoder> makeDecoder(DecoderKind kind,
                                     const DetectorErrorModel& dem);

/**
 * Instantiate by case-insensitive name or alias.
 * @return nullptr when the name matches no registered backend.
 */
std::unique_ptr<Decoder> makeDecoder(std::string_view name,
                                     const DetectorErrorModel& dem);

/** Canonical name of a kind ("mwpm", "greedy", "union-find"). */
const char* decoderKindName(DecoderKind kind);

/** Parse a name or alias back to a kind. */
std::optional<DecoderKind> parseDecoderKind(std::string_view name);

/** Comma-separated canonical names, for usage/error messages. */
std::string decoderKindList();

/**
 * Read the decoder selection from the environment (variable
 * VLQ_DECODER unless overridden). Returns `fallback` when the
 * variable is unset; a set-but-unknown value (e.g. a typo'd
 * VLQ_DECODER=mwmp) is a hard error that lists the valid keys --
 * silently falling back would turn a typo into a garbage run.
 */
DecoderKind decoderKindFromEnv(DecoderKind fallback,
                               const char* variable = "VLQ_DECODER");

} // namespace vlq

#endif // VLQ_DECODER_DECODER_FACTORY_H
