#include "decoder/decoder.h"

#include "dem/shot_batch.h"
#include "util/logging.h"

namespace vlq {

void
Decoder::decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions) const
{
    VLQ_ASSERT(predictions.size() >= batch.numShots(),
               "decodeBatch predictions span too small");
    BitVec detectors(batch.numDetectors());
    for (uint32_t wi = 0; wi < batch.wordsPerRow(); ++wi) {
        uint64_t nonTrivial = batch.nonTrivialMask(wi);
        uint32_t base = wi * ShotBatch::kWordBits;
        uint32_t lanes = std::min<uint32_t>(ShotBatch::kWordBits,
                                            batch.numShots() - base);
        for (uint32_t lane = 0; lane < lanes; ++lane) {
            uint32_t s = base + lane;
            if (!((nonTrivial >> lane) & 1)) {
                predictions[s] = 0;
                continue;
            }
            batch.extractShot(s, detectors);
            predictions[s] = decode(detectors);
        }
    }
}

void
Decoder::decodeBatchEvents(
    const ShotBatch& batch, std::span<uint32_t> predictions,
    const std::function<uint32_t(const std::vector<uint32_t>&)>&
        decodeEvents) const
{
    VLQ_ASSERT(predictions.size() >= batch.numShots(),
               "decodeBatch predictions span too small");
    static thread_local std::vector<std::vector<uint32_t>> events;
    batch.gatherEvents(events);
    for (uint32_t s = 0; s < batch.numShots(); ++s)
        predictions[s] = decodeEvents(events[s]);
}

} // namespace vlq
