#include "decoder/decoder.h"

#include "dem/shot_batch.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace vlq {

namespace {

/** Shots skipped (all-zero syndrome) vs decoded, per finished batch. */
void
countBatchShots(uint32_t shots, uint32_t trivial)
{
    if (!obs::metricsEnabled())
        return;
    static const obs::Counter batches =
        obs::Counter::get("decode.batches");
    static const obs::Counter decoded = obs::Counter::get("decode.shots");
    static const obs::Counter trivialShots =
        obs::Counter::get("decode.trivial_shots");
    batches.add(1);
    decoded.add(shots);
    trivialShots.add(trivial);
}

} // namespace

void
Decoder::decodeBatch(const ShotBatch& batch,
                     std::span<uint32_t> predictions,
                     std::span<const uint64_t> laneMask) const
{
    VLQ_ASSERT(predictions.size() >= batch.numShots(),
               "decodeBatch predictions span too small");
    obs::StageTimer obsTimer("decode.batch");
    uint32_t selected = 0;
    uint32_t trivial = 0;
    BitVec detectors(batch.numDetectors());
    for (uint32_t wi = 0; wi < batch.wordsPerRow(); ++wi) {
        uint64_t nonTrivial = batch.nonTrivialMask(wi);
        uint64_t mask = laneMask.empty() ? ~0ULL : laneMask[wi];
        uint32_t base = wi * ShotBatch::kWordBits;
        uint32_t lanes = std::min<uint32_t>(ShotBatch::kWordBits,
                                            batch.numShots() - base);
        for (uint32_t lane = 0; lane < lanes; ++lane) {
            uint32_t s = base + lane;
            if (!((mask >> lane) & 1))
                continue;
            ++selected;
            if (!((nonTrivial >> lane) & 1)) {
                predictions[s] = 0;
                ++trivial;
                continue;
            }
            batch.extractShot(s, detectors);
            predictions[s] = decode(detectors);
        }
    }
    countBatchShots(selected, trivial);
}

void
Decoder::decodeBatchEvents(
    const ShotBatch& batch, std::span<uint32_t> predictions,
    std::span<const uint64_t> laneMask,
    const std::function<uint32_t(const std::vector<uint32_t>&)>&
        decodeEvents) const
{
    VLQ_ASSERT(predictions.size() >= batch.numShots(),
               "decodeBatch predictions span too small");
    obs::StageTimer obsTimer("decode.batch");
    static thread_local std::vector<std::vector<uint32_t>> events;
    {
        obs::StageTimer gatherTimer("decode.gather");
        batch.gatherEvents(events);
    }
    uint32_t selected = 0;
    uint32_t trivial = 0;
    for (uint32_t s = 0; s < batch.numShots(); ++s) {
        if (!laneSelected(laneMask, s))
            continue;
        ++selected;
        if (events[s].empty())
            ++trivial;
        predictions[s] = decodeEvents(events[s]);
    }
    countBatchShots(selected, trivial);
}

} // namespace vlq
