#include "decoder/union_find.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

namespace vlq {

namespace {

/**
 * Per-thread workspace. Sized to the graph on every decode (vectors
 * keep their capacity between shots, so steady-state decoding does not
 * allocate) and shared safely across decoder instances because decode()
 * never yields mid-use.
 */
struct Scratch
{
    // Cluster state, indexed by node; parity/btouch are valid at roots.
    std::vector<uint32_t> parent;
    std::vector<uint8_t> parity;
    std::vector<uint8_t> btouch;
    std::vector<uint8_t> absorbed;
    std::vector<uint8_t> defect;
    std::vector<std::vector<uint32_t>> frontier;
    std::vector<uint32_t> stamp;
    std::vector<uint32_t> active;
    std::vector<uint32_t> nextActive;

    // Edge state.
    std::vector<uint16_t> support;
    std::vector<uint8_t> grown;
    std::vector<uint32_t> grownList;
    std::vector<uint32_t> edgeStamp;
    std::vector<uint8_t> edgeMult;
    std::vector<uint32_t> roundEdges;
    std::vector<uint32_t> mergeQueue;

    // Peeling state. Dijkstra arrays are cleared through `touched` so
    // each search pays only for what it explored; the pair cache holds
    // global defect-pair distances, which are shot-independent, so it
    // persists across shots (keyed to the owning decoder's epoch).
    std::vector<std::vector<uint32_t>> clusterDefects; // by root
    std::vector<std::vector<uint32_t>> clusterEdges;   // by root
    std::vector<uint32_t> roots;
    std::vector<uint32_t> touched;
    std::vector<double> dist;
    std::vector<uint32_t> pathObs;
    std::vector<uint8_t> finalized;
    // Large-cluster forest peel.
    std::vector<std::vector<uint32_t>> treeAdj; // by vertex
    std::vector<uint32_t> bfsVerts;
    std::vector<uint32_t> order;
    std::vector<uint32_t> parentEdge;
    uint64_t cacheEpoch = 0;
    std::unordered_map<uint64_t, std::pair<double, uint32_t>> pairCache;

    void reset(uint32_t numNodes, uint32_t numEdges, uint64_t epoch)
    {
        parent.resize(numNodes);
        for (uint32_t i = 0; i < numNodes; ++i)
            parent[i] = i;
        parity.assign(numNodes, 0);
        btouch.assign(numNodes, 0);
        absorbed.assign(numNodes, 0);
        defect.assign(numNodes, 0);
        if (frontier.size() < numNodes)
            frontier.resize(numNodes);
        for (uint32_t i = 0; i < numNodes; ++i)
            frontier[i].clear();
        stamp.assign(numNodes, 0);
        active.clear();
        nextActive.clear();
        support.assign(numEdges, 0);
        grown.assign(numEdges, 0);
        grownList.clear();
        edgeStamp.assign(numEdges, 0);
        edgeMult.resize(numEdges); // stamp-guarded, no clear needed
        roundEdges.clear();
        mergeQueue.clear();
        if (clusterDefects.size() < numNodes) {
            clusterDefects.resize(numNodes);
            clusterEdges.resize(numNodes);
            treeAdj.resize(numNodes);
        }
        parentEdge.resize(numNodes);
        roots.clear();
        bfsVerts.clear();
        order.clear();
        touched.clear();
        dist.assign(numNodes,
                    std::numeric_limits<double>::infinity());
        pathObs.assign(numNodes, 0);
        finalized.assign(numNodes, 0);
        if (cacheEpoch != epoch) {
            cacheEpoch = epoch;
            pairCache.clear();
        }
    }

    uint32_t find(uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }
};

Scratch&
scratch()
{
    static thread_local Scratch s;
    return s;
}

} // namespace

UnionFindDecoder::UnionFindDecoder(const DetectorErrorModel& dem,
                                   uint32_t granularity)
    : UnionFindDecoder(DecodingGraph::build(dem), granularity)
{
}

UnionFindDecoder::UnionFindDecoder(DecodingGraph graph,
                                   uint32_t granularity)
    : graph_(std::move(graph))
{
    static std::atomic<uint64_t> nextEpoch{1};
    cacheEpoch_ = nextEpoch.fetch_add(1, std::memory_order_relaxed);
    if (granularity == 0)
        granularity = 1;
    const double minW = graph_.minWeight();
    capacity_.resize(graph_.edges().size());
    for (size_t i = 0; i < capacity_.size(); ++i) {
        double ticks = minW > 0.0
            ? graph_.edges()[i].weight / minW
                * static_cast<double>(granularity)
            : static_cast<double>(granularity);
        capacity_[i] = static_cast<uint16_t>(
            std::clamp<long long>(std::llround(ticks), 1, 60000));
    }

    // One Dijkstra from the boundary gives every detector's global
    // shortest boundary path (weight and observables) -- the matching's
    // defect-to-boundary option, for free at decode time.
    const uint32_t n = graph_.numNodes();
    boundaryDist_.assign(n, std::numeric_limits<double>::infinity());
    boundaryObs_.assign(n, 0);
    boundaryDist_[graph_.boundaryNode()] = 0.0;
    using QItem = std::pair<double, uint32_t>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>>
        pq;
    pq.push({0.0, graph_.boundaryNode()});
    std::vector<uint8_t> done(n, 0);
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (done[v])
            continue;
        done[v] = 1;
        for (uint32_t e : graph_.incidentEdges(v)) {
            const DecodingEdge& edge = graph_.edges()[e];
            uint32_t to = edge.a == v ? edge.b : edge.a;
            double nd = d + edge.weight;
            if (nd < boundaryDist_[to]) {
                boundaryDist_[to] = nd;
                boundaryObs_[to] =
                    boundaryObs_[v] ^ edge.observables;
                pq.push({nd, to});
            }
        }
    }
}

uint32_t
UnionFindDecoder::decode(const BitVec& detectorFlips) const
{
    return decode(detectorFlips, nullptr);
}

uint32_t
UnionFindDecoder::decode(const BitVec& detectorFlips,
                         DecodeInfo* info) const
{
    if (info)
        *info = DecodeInfo{};
    std::vector<uint32_t> events = detectorFlips.onesIndices();
    if (events.empty())
        return 0;

    const uint32_t n = graph_.numNodes();
    const uint32_t numEdges = static_cast<uint32_t>(graph_.edges().size());
    const uint32_t boundary = graph_.boundaryNode();

    Scratch& s = scratch();
    s.reset(n, numEdges, cacheEpoch_);
    s.btouch[boundary] = 1;
    s.absorbed[boundary] = 1;

    for (uint32_t v : events) {
        s.parity[v] = 1;
        s.defect[v] = 1;
        s.absorbed[v] = 1;
        const auto& inc = graph_.incidentEdges(v);
        s.frontier[v].assign(inc.begin(), inc.end());
        s.active.push_back(v);
    }
    if (info)
        info->initialClusters = static_cast<uint32_t>(events.size());

    // A vertex first reached by cluster growth contributes its incident
    // edges so the cluster keeps expanding past it. The boundary never
    // grows (absorbed from the start).
    auto ensureAbsorbed = [&](uint32_t v) {
        if (s.absorbed[v])
            return;
        s.absorbed[v] = 1;
        auto& f = s.frontier[v];
        for (uint32_t e : graph_.incidentEdges(v))
            if (!s.grown[e])
                f.push_back(e);
    };

    auto mergeEdge = [&](uint32_t e) {
        const DecodingEdge& edge = graph_.edges()[e];
        ensureAbsorbed(edge.a);
        ensureAbsorbed(edge.b);
        uint32_t u = s.find(edge.a);
        uint32_t v = s.find(edge.b);
        if (u == v)
            return; // cycle within one cluster: not a forest edge
        // Boundary contact freezes a cluster but does NOT union it
        // into the boundary component: two clusters that each reached
        // the boundary before reaching each other are strictly better
        // off matching to the boundary separately, so keeping them
        // apart is exact -- and it stops the shared boundary node from
        // chaining unrelated clusters into one giant matching problem.
        if (u == boundary || v == boundary) {
            s.btouch[u == boundary ? v : u] = 1;
            return;
        }
        if (s.frontier[u].size() < s.frontier[v].size())
            std::swap(u, v);
        s.parent[v] = u;
        s.parity[u] ^= s.parity[v];
        s.btouch[u] |= s.btouch[v];
        auto& fu = s.frontier[u];
        auto& fv = s.frontier[v];
        fu.insert(fu.end(), fv.begin(), fv.end());
        fv.clear();
    };

    // Growth is event-driven: each round, every active cluster claims
    // its frontier edges (an edge claimed from both endpoints grows at
    // twice the rate), then time advances by the smallest number of
    // ticks that fills some claimed edge. Rounds therefore scale with
    // merge/freeze events, not with the weight quantization.
    uint32_t rounds = 0;
    while (!s.active.empty()) {
        ++rounds;
        s.roundEdges.clear();
        uint32_t delta = UINT32_MAX;
        for (uint32_t root : s.active) {
            auto& fr = s.frontier[root];
            size_t keep = 0;
            for (size_t i = 0; i < fr.size(); ++i) {
                uint32_t e = fr[i];
                if (s.grown[e])
                    continue;
                uint32_t remaining = capacity_[e] - s.support[e];
                if (s.edgeStamp[e] != rounds) {
                    s.edgeStamp[e] = rounds;
                    s.edgeMult[e] = 1;
                    s.roundEdges.push_back(e);
                    delta = std::min(delta, remaining);
                } else {
                    // Claimed again (other endpoint or a duplicate
                    // list entry): fills proportionally faster.
                    uint32_t m = ++s.edgeMult[e];
                    delta = std::min(delta, (remaining + m - 1) / m);
                }
                fr[keep++] = e;
            }
            fr.resize(keep);
        }
        if (s.roundEdges.empty())
            break; // odd clusters with nowhere left to grow
        s.mergeQueue.clear();
        for (uint32_t e : s.roundEdges) {
            uint32_t grownTo = s.support[e]
                + static_cast<uint32_t>(s.edgeMult[e]) * delta;
            if (grownTo >= capacity_[e]) {
                s.support[e] = capacity_[e];
                s.grown[e] = 1;
                s.grownList.push_back(e);
                s.mergeQueue.push_back(e);
            } else {
                s.support[e] = static_cast<uint16_t>(grownTo);
            }
        }
        for (uint32_t e : s.mergeQueue)
            mergeEdge(e);

        s.nextActive.clear();
        for (uint32_t root : s.active) {
            uint32_t r = s.find(root);
            if (s.stamp[r] == rounds)
                continue;
            s.stamp[r] = rounds;
            if (s.parity[r] && !s.btouch[r])
                s.nextActive.push_back(r);
        }
        s.active.swap(s.nextActive);
    }

    // Peeling. Group defects (and grown edges) by cluster root; each
    // cluster resolves independently. Small clusters -- the bulk of
    // the work below threshold -- get a minimum-weight matching of
    // their defects on global shortest-path distances, which is what
    // makes the result agree with MWPM on small syndromes up to
    // genuine weight degeneracy. Large clusters (rare, near or above
    // threshold) fall back to the classic linear peel of a spanning
    // forest of their grown edges.
    for (uint32_t v : events) {
        uint32_t r = s.find(v);
        if (s.clusterDefects[r].empty())
            s.roots.push_back(r);
        s.clusterDefects[r].push_back(v);
    }
    for (uint32_t e : s.grownList) {
        const DecodingEdge& edge = graph_.edges()[e];
        if (edge.a == boundary || edge.b == boundary)
            continue; // boundary exits use the precomputed table
        s.clusterEdges[s.find(edge.a)].push_back(e);
    }

    constexpr size_t kExactMatching = 6;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    uint32_t obs = 0;
    uint32_t matchedPairs = 0;
    uint32_t boundaryMatches = 0;
    using QItem = std::pair<double, uint32_t>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>>
        pq;

    // Classic union-find peeling for one large cluster: build a BFS
    // spanning tree of the cluster's grown edges, peel it leaves-first
    // XOR-ing a tree edge whenever the child side carries a defect,
    // and send any leftover root defect to the boundary via the table.
    auto peelForest = [&](uint32_t r,
                          const std::vector<uint32_t>& defects) {
        for (uint32_t e : s.clusterEdges[r]) {
            const DecodingEdge& edge = graph_.edges()[e];
            for (uint32_t v : {edge.a, edge.b}) {
                if (s.treeAdj[v].empty())
                    s.bfsVerts.push_back(v);
            }
            s.treeAdj[edge.a].push_back(e);
            s.treeAdj[edge.b].push_back(e);
        }
        uint32_t root = defects[0];
        s.order.clear();
        s.order.push_back(root);
        s.finalized[root] = 1;
        for (size_t qi = 0; qi < s.order.size(); ++qi) {
            uint32_t v = s.order[qi];
            for (uint32_t e : s.treeAdj[v]) {
                const DecodingEdge& edge = graph_.edges()[e];
                uint32_t to = edge.a == v ? edge.b : edge.a;
                if (!s.finalized[to]) {
                    s.finalized[to] = 1;
                    s.parentEdge[to] = e;
                    s.order.push_back(to);
                }
            }
        }
        for (size_t qi = s.order.size(); qi-- > 1;) {
            uint32_t v = s.order[qi];
            if (!s.defect[v])
                continue;
            const DecodingEdge& edge =
                graph_.edges()[s.parentEdge[v]];
            uint32_t u = edge.a == v ? edge.b : edge.a;
            obs ^= edge.observables;
            s.defect[v] = 0;
            s.defect[u] ^= 1;
            ++matchedPairs;
        }
        if (s.defect[root]) {
            s.defect[root] = 0;
            if (std::isfinite(boundaryDist_[root])) {
                obs ^= boundaryObs_[root];
                ++boundaryMatches;
            }
        }
        for (uint32_t v : s.order)
            s.finalized[v] = 0;
        for (uint32_t v : s.bfsVerts)
            s.treeAdj[v].clear();
        s.bfsVerts.clear();
    };

    auto pairKey = [](uint32_t u, uint32_t v) {
        return (static_cast<uint64_t>(std::min(u, v)) << 32)
            | std::max(u, v);
    };
    uint32_t searchId = rounds; // reuse s.stamp, values past growth's
    std::vector<double> pairW;
    std::vector<uint32_t> pairObs;
    std::vector<double> bndW;
    std::vector<uint32_t> bndObs;
    for (uint32_t r : s.roots) {
        const auto& defects = s.clusterDefects[r];
        const size_t k = defects.size();
        if (k > kExactMatching) {
            peelForest(r, defects);
            s.clusterEdges[r].clear();
            s.clusterDefects[r].clear();
            continue;
        }
        pairW.assign(k * k, kInf);
        pairObs.assign(k * k, 0);
        bndW.resize(k);
        bndObs.resize(k);
        for (size_t i = 0; i < k; ++i) {
            bndW[i] = boundaryDist_[defects[i]];
            bndObs[i] = boundaryObs_[defects[i]];
        }

        // Defect-pair shortest paths, globally exact and memoized
        // across shots (a global distance does not depend on the
        // shot). Cache misses are filled by one multi-target Dijkstra
        // per source defect, pruned at bndW[src] + max remaining bndW:
        // a pair costing more than its two boundary chains combined
        // can never enter a minimum matching, so recording it as
        // unreachable is exact (and cacheable). Paths never route
        // through the boundary node -- boundary pairing is a separate
        // option, exactly as in the blossom formulation.
        for (size_t i = 0; i + 1 < k; ++i) {
            uint32_t src = defects[i];
            ++searchId;
            uint32_t targets = 0;
            double maxBnd = 0.0;
            for (size_t j = i + 1; j < k; ++j) {
                auto it = s.pairCache.find(pairKey(src, defects[j]));
                if (it != s.pairCache.end()) {
                    pairW[i * k + j] = pairW[j * k + i] =
                        it->second.first;
                    pairObs[i * k + j] = pairObs[j * k + i] =
                        it->second.second;
                    continue;
                }
                s.stamp[defects[j]] = searchId;
                ++targets;
                maxBnd = std::max(maxBnd, bndW[j]);
            }
            if (targets == 0)
                continue;
            const double limit = bndW[i] + maxBnd;
            bool pruned = false;
            s.dist[src] = 0.0;
            s.touched.push_back(src);
            pq.push({0.0, src});
            while (!pq.empty()) {
                auto [d, x] = pq.top();
                pq.pop();
                if (s.finalized[x])
                    continue;
                s.finalized[x] = 1;
                if (d > limit) {
                    pruned = true;
                    break;
                }
                if (s.stamp[x] == searchId && x != src) {
                    size_t j = 0;
                    for (size_t jj = i + 1; jj < k; ++jj)
                        if (defects[jj] == x) {
                            j = jj;
                            break;
                        }
                    pairW[i * k + j] = pairW[j * k + i] = d;
                    pairObs[i * k + j] = pairObs[j * k + i] =
                        s.pathObs[x];
                    s.pairCache.emplace(pairKey(src, x),
                                        std::make_pair(d,
                                                       s.pathObs[x]));
                    s.stamp[x] = 0;
                    if (--targets == 0)
                        break;
                }
                for (uint32_t e : graph_.incidentEdges(x)) {
                    const DecodingEdge& edge = graph_.edges()[e];
                    uint32_t to = edge.a == x ? edge.b : edge.a;
                    if (to == boundary)
                        continue;
                    double nd = d + edge.weight;
                    if (nd < s.dist[to]) {
                        if (s.dist[to] == kInf)
                            s.touched.push_back(to);
                        s.dist[to] = nd;
                        s.pathObs[to] = s.pathObs[x] ^ edge.observables;
                        pq.push({nd, to});
                    }
                }
            }
            while (!pq.empty())
                pq.pop();
            for (uint32_t x : s.touched) {
                s.dist[x] = kInf;
                s.pathObs[x] = 0;
                s.finalized[x] = 0;
            }
            s.touched.clear();
            if (pruned) {
                // Remaining targets are provably boundary-dominated.
                for (size_t j = i + 1; j < k; ++j) {
                    if (s.stamp[defects[j]] == searchId) {
                        s.pairCache.emplace(
                            pairKey(src, defects[j]),
                            std::make_pair(kInf, 0u));
                        s.stamp[defects[j]] = 0;
                    }
                }
            } else {
                for (size_t j = i + 1; j < k; ++j)
                    if (s.stamp[defects[j]] == searchId)
                        s.stamp[defects[j]] = 0;
            }
        }

        // Exact minimum-weight matching of the defects (boundary
        // optional), by branch-and-bound over pairings.
        double bestW = kInf;
        uint32_t bestObs = 0;
        uint32_t bestPairs = 0;
        uint32_t bestBnds = 0;
        auto search = [&](auto&& self, uint32_t used, double w,
                          uint32_t o, uint32_t pairs,
                          uint32_t bnds) -> void {
            if (w >= bestW)
                return;
            size_t i = 0;
            while (i < k && ((used >> i) & 1u))
                ++i;
            if (i == k) {
                bestW = w;
                bestObs = o;
                bestPairs = pairs;
                bestBnds = bnds;
                return;
            }
            uint32_t mi = used | (1u << i);
            if (std::isfinite(bndW[i]))
                self(self, mi, w + bndW[i], o ^ bndObs[i], pairs,
                     bnds + 1);
            for (size_t j = i + 1; j < k; ++j) {
                if ((used >> j) & 1u)
                    continue;
                double wij = pairW[i * k + j];
                if (std::isfinite(wij))
                    self(self, mi | (1u << j), w + wij,
                         o ^ pairObs[i * k + j], pairs + 1, bnds);
            }
        };
        search(search, 0, 0.0, 0, 0, 0);
        if (std::isfinite(bestW)) {
            obs ^= bestObs;
            matchedPairs += bestPairs;
            boundaryMatches += bestBnds;
        }

        s.clusterEdges[r].clear();
        s.clusterDefects[r].clear();
    }

    if (info) {
        info->growthRounds = rounds;
        info->matchedPairs = matchedPairs;
        info->boundaryMatches = boundaryMatches;
    }
    return obs;
}

} // namespace vlq
