#include "decoder/union_find.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "dem/shot_batch.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace vlq {

namespace {

/**
 * Per-thread workspace. Sized to the graph on first contact (vectors
 * keep their capacity between shots, so steady-state decoding does not
 * allocate) and shared safely across decoder instances because decode()
 * never yields mid-use.
 *
 * Stamps (stamp, edgeStamp) compare against a monotonically increasing
 * per-thread counter instead of being cleared per shot, and the
 * Dijkstra arrays (dist, pathObs, finalized) are restored through
 * `touched` by every user: the exact-matching fast path therefore
 * touches only O(events) scratch state per shot. Only the growth path
 * pays the full per-shot reset of the cluster arenas.
 */
struct Scratch
{
    // Cluster state, indexed by node; parity/btouch are valid at roots.
    std::vector<uint32_t> parent;
    std::vector<uint8_t> parity;
    std::vector<uint8_t> btouch;
    std::vector<uint8_t> absorbed;
    std::vector<uint8_t> defect;
    std::vector<std::vector<uint32_t>> frontier;
    std::vector<uint64_t> stamp;
    std::vector<uint32_t> active;
    std::vector<uint32_t> nextActive;

    // Edge growth state, consolidated into one 16-byte record so the
    // latency-bound frontier scan pays one cache line per edge visit
    // instead of five (support/grown/stamp/mult/capacity lived in
    // separate arrays before; the claim loop was ~5x slower for it).
    // `claimStamp` doubles as a lazy per-shot reset: any stamp older
    // than the shot's base stamp means support/grown are stale and
    // read as zero, so no O(numEdges) clear runs per shot.
    struct EdgeState
    {
        uint64_t claimStamp = 0;
        uint16_t support = 0;
        uint16_t capacity = 0; // copied per decoder epoch
        uint8_t mult = 0;
        uint8_t grown = 0;
        uint8_t pad[2] = {0, 0};
    };
    std::vector<EdgeState> edge;
    std::vector<uint32_t> grownList;
    std::vector<uint32_t> roundEdges;
    std::vector<uint32_t> mergeQueue;
    // Erasure state: per-edge flag (set/cleared per shot through the
    // erased list) and the (vertex, edge) pairs of erased
    // boundary-incident edges -- a cluster holding one has a free
    // boundary exit for its leftover defect.
    std::vector<uint8_t> erasedEdge;
    std::vector<std::pair<uint32_t, uint32_t>> erasedBoundary;

    // Peeling state. Dijkstra arrays are cleared through `touched` so
    // each search pays only for what it explored; the pair cache holds
    // global defect-pair distances, which are shot-independent, so it
    // persists across shots (keyed to the owning decoder's epoch).
    std::vector<std::vector<uint32_t>> clusterDefects; // by root
    std::vector<std::vector<uint32_t>> clusterEdges;   // by root
    std::vector<uint32_t> roots;
    std::vector<uint32_t> touched;
    std::vector<double> dist;
    std::vector<uint32_t> pathObs;
    std::vector<uint8_t> finalized;
    // Large-cluster forest peel.
    std::vector<std::vector<uint32_t>> treeAdj; // by vertex
    std::vector<uint32_t> bfsVerts;
    std::vector<uint32_t> order;
    std::vector<uint32_t> parentEdge;
    // Exact-matching workspace (persists across shots of a batch).
    std::vector<double> pairW;
    std::vector<uint32_t> pairObs;
    std::vector<double> bndW;
    std::vector<uint32_t> bndObs;
    std::vector<double> defLB;
    std::priority_queue<std::pair<double, uint32_t>,
                        std::vector<std::pair<double, uint32_t>>,
                        std::greater<std::pair<double, uint32_t>>>
        pq;
    uint64_t counter = 0; // stamp source; never reset
    uint64_t cacheEpoch = 0;
    std::unordered_map<uint64_t, std::pair<double, uint32_t>> pairCache;
    // For small graphs the pair cache is a flat lazy matrix instead:
    // O(1) array reads beat hash lookups ~10x, and the gather phase of
    // the exact matcher is lookup-bound once the cache is warm.
    uint32_t flatN = 0; // matrix side, 0 = use the hash map
    std::vector<uint8_t> pairKnownFlat;
    std::vector<double> pairDistFlat;
    std::vector<uint32_t> pairObsFlat;
    // Sources whose full distance row is already cached: the first
    // cache miss from a defect vertex runs one full single-source
    // Dijkstra and stores every reachable pair, so a warm steady state
    // does no priority-queue work at all.
    std::vector<uint8_t> srcDone;

    /** Size arrays for a graph; clears nothing (fast-path entry). */
    void ensure(uint32_t numNodes, uint32_t numEdges, uint64_t epoch,
                const std::vector<uint16_t>& capacity)
    {
        if (parent.size() < numNodes) {
            size_t old = parent.size();
            parent.resize(numNodes);
            for (size_t i = old; i < numNodes; ++i)
                parent[i] = static_cast<uint32_t>(i);
            parity.resize(numNodes, 0);
            btouch.resize(numNodes, 0);
            absorbed.resize(numNodes, 0);
            defect.resize(numNodes, 0);
            frontier.resize(numNodes);
            stamp.resize(numNodes, 0);
            clusterDefects.resize(numNodes);
            clusterEdges.resize(numNodes);
            treeAdj.resize(numNodes);
            parentEdge.resize(numNodes);
            dist.resize(numNodes,
                        std::numeric_limits<double>::infinity());
            pathObs.resize(numNodes, 0);
            finalized.resize(numNodes, 0);
        }
        if (edge.size() < numEdges) {
            edge.resize(numEdges);
            erasedEdge.resize(numEdges, 0);
        }
        if (cacheEpoch != epoch) {
            cacheEpoch = epoch;
            // The capacity copy rides in the consolidated edge record;
            // refresh it whenever the owning decoder changes.
            for (uint32_t e = 0; e < numEdges; ++e)
                edge[e].capacity = capacity[e];
            pairCache.clear();
            // Covers d=11 surface-code DEMs (721 nodes, ~6.8 MB of
            // flat matrix per thread); beyond that the quadratic
            // footprint stops paying for itself and the hash map wins.
            constexpr uint32_t kFlatCacheMaxNodes = 1024;
            flatN = numNodes <= kFlatCacheMaxNodes ? numNodes : 0;
            size_t cells = static_cast<size_t>(flatN) * flatN;
            pairKnownFlat.assign(cells, 0);
            pairDistFlat.resize(cells);
            pairObsFlat.resize(cells);
            srcDone.assign(numNodes, 0);
        }
    }

    bool cacheFind(uint32_t u, uint32_t v, double& w, uint32_t& o)
    {
        if (flatN) {
            size_t idx = static_cast<size_t>(u) * flatN + v;
            if (!pairKnownFlat[idx])
                return false;
            w = pairDistFlat[idx];
            o = pairObsFlat[idx];
            return true;
        }
        uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32)
            | std::max(u, v);
        auto it = pairCache.find(key);
        if (it == pairCache.end())
            return false;
        w = it->second.first;
        o = it->second.second;
        return true;
    }

    void cacheStore(uint32_t u, uint32_t v, double w, uint32_t o)
    {
        if (flatN) {
            size_t a = static_cast<size_t>(u) * flatN + v;
            size_t b = static_cast<size_t>(v) * flatN + u;
            pairKnownFlat[a] = pairKnownFlat[b] = 1;
            pairDistFlat[a] = pairDistFlat[b] = w;
            pairObsFlat[a] = pairObsFlat[b] = o;
            return;
        }
        uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32)
            | std::max(u, v);
        pairCache.emplace(key, std::make_pair(w, o));
    }

    /** Per-shot reset of the node-side cluster arenas (growth-path
     *  entry). The stamp, Dijkstra, and edge-growth arrays are
     *  deliberately left alone -- they are maintained by the
     *  monotonic-counter / touched-list / claimStamp protocols. */
    void reset(uint32_t numNodes)
    {
        for (uint32_t i = 0; i < numNodes; ++i)
            parent[i] = i;
        std::fill_n(parity.begin(), numNodes, uint8_t{0});
        std::fill_n(btouch.begin(), numNodes, uint8_t{0});
        std::fill_n(absorbed.begin(), numNodes, uint8_t{0});
        std::fill_n(defect.begin(), numNodes, uint8_t{0});
        for (uint32_t i = 0; i < numNodes; ++i)
            frontier[i].clear();
        active.clear();
        nextActive.clear();
        grownList.clear();
        roundEdges.clear();
        mergeQueue.clear();
        roots.clear();
        bfsVerts.clear();
        order.clear();
        touched.clear();
    }

    uint32_t find(uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }
};

Scratch&
scratch()
{
    static thread_local Scratch s;
    return s;
}

/** Shared empty erased-edge list for the non-erasure entry points. */
const std::vector<uint32_t> kNoErasedEdges;

} // namespace

UnionFindDecoder::UnionFindDecoder(const DetectorErrorModel& dem,
                                   UnionFindOptions options)
    : UnionFindDecoder(DecodingGraph::build(dem), options)
{
    // Map each heralded-erasure site to the graph edges its outcomes
    // land on, so a raised herald can seed exactly those edges at zero
    // weight. Outcomes with empty signatures (the I branch, or Paulis
    // the detectors cannot see) have no edge to seed and are skipped.
    erasureSiteEdges_.resize(dem.numErasureSites());
    const uint32_t boundary = graph_.boundaryNode();
    for (const auto& ch : dem.channels()) {
        if (ch.erasureSite < 0)
            continue;
        auto& edges =
            erasureSiteEdges_[static_cast<uint32_t>(ch.erasureSite)];
        for (const auto& o : ch.outcomes) {
            int32_t e = -1;
            if (o.detectors.size() == 1)
                e = graph_.findEdge(o.detectors[0], boundary);
            else if (o.detectors.size() == 2)
                e = graph_.findEdge(o.detectors[0], o.detectors[1]);
            if (e < 0)
                continue;
            uint32_t eu = static_cast<uint32_t>(e);
            if (std::find(edges.begin(), edges.end(), eu) == edges.end())
                edges.push_back(eu);
        }
    }
}

UnionFindDecoder::UnionFindDecoder(DecodingGraph graph,
                                   UnionFindOptions options)
    : graph_(std::move(graph)),
      exactSyndromeThreshold_(
          std::min<uint32_t>(options.exactSyndromeThreshold, 16))
{
    static std::atomic<uint64_t> nextEpoch{1};
    cacheEpoch_ = nextEpoch.fetch_add(1, std::memory_order_relaxed);
    uint32_t granularity = std::max<uint32_t>(options.granularity, 1);
    const double minW = graph_.minWeight();
    capacity_.resize(graph_.edges().size());
    for (size_t i = 0; i < capacity_.size(); ++i) {
        double ticks = minW > 0.0
            ? graph_.edges()[i].weight / minW
                * static_cast<double>(granularity)
            : static_cast<double>(granularity);
        capacity_[i] = static_cast<uint16_t>(
            std::clamp<long long>(std::llround(ticks), 1, 60000));
    }

    // One Dijkstra from the boundary gives every detector's global
    // shortest boundary path (weight and observables) -- the matching's
    // defect-to-boundary option, for free at decode time.
    const uint32_t n = graph_.numNodes();
    boundaryDist_.assign(n, std::numeric_limits<double>::infinity());
    boundaryObs_.assign(n, 0);
    boundaryDist_[graph_.boundaryNode()] = 0.0;
    using QItem = std::pair<double, uint32_t>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>>
        pq;
    pq.push({0.0, graph_.boundaryNode()});
    std::vector<uint8_t> done(n, 0);
    const DecodingGraph::SoA& soa = graph_.soa();
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (done[v])
            continue;
        done[v] = 1;
        for (uint32_t si = soa.vertexBegin[v];
             si < soa.vertexBegin[v + 1]; ++si) {
            uint32_t e = soa.slotEdge[si];
            uint32_t to = soa.slotOther[si];
            double nd = d + soa.edgeWeight[e];
            if (nd < boundaryDist_[to]) {
                boundaryDist_[to] = nd;
                boundaryObs_[to] =
                    boundaryObs_[v] ^ soa.edgeObs[e];
                pq.push({nd, to});
            }
        }
    }
}

uint32_t
UnionFindDecoder::decode(const BitVec& detectorFlips) const
{
    return decodeEvents(detectorFlips.onesIndices(), kNoErasedEdges,
                        nullptr);
}

uint32_t
UnionFindDecoder::decode(const BitVec& detectorFlips,
                         DecodeInfo* info) const
{
    return decodeEvents(detectorFlips.onesIndices(), kNoErasedEdges,
                        info);
}

uint32_t
UnionFindDecoder::decodeWithErasures(const BitVec& detectorFlips,
                                     const BitVec& erasures,
                                     DecodeInfo* info) const
{
    thread_local std::vector<uint32_t> edges;
    mapErasureSites(erasures.onesIndices(), edges);
    return decodeEvents(detectorFlips.onesIndices(), edges, info);
}

uint32_t
UnionFindDecoder::decodeErasedEdges(
    const BitVec& detectorFlips,
    const std::vector<uint32_t>& erasedEdges, DecodeInfo* info) const
{
    return decodeEvents(detectorFlips.onesIndices(), erasedEdges, info);
}

void
UnionFindDecoder::mapErasureSites(const std::vector<uint32_t>& sites,
                                  std::vector<uint32_t>& edges) const
{
    edges.clear();
    for (uint32_t site : sites) {
        // Graph-built decoders have no site map; heralds are then
        // decoded as ordinary syndromes.
        if (site >= erasureSiteEdges_.size())
            continue;
        const auto& se = erasureSiteEdges_[site];
        edges.insert(edges.end(), se.begin(), se.end());
    }
}

namespace {

/** Cumulative per-thread decode-path tallies for the trace's counter
 *  tracks ("ph":"C"): the timeline shows fast-path vs general-growth
 *  decode mix evolving per worker lane. */
thread_local uint64_t tUfExactShots = 0;
thread_local uint64_t tUfGrowthShots = 0;
thread_local uint64_t tUfErasureShots = 0;

void
traceDecodeMix()
{
    obs::traceCounter("uf.exact_fastpath", tUfExactShots);
    obs::traceCounter("uf.growth", tUfGrowthShots);
    if (tUfErasureShots > 0)
        obs::traceCounter("uf.erasure_seeded", tUfErasureShots);
}

} // namespace

void
UnionFindDecoder::decodeBatch(const ShotBatch& batch,
                              std::span<uint32_t> predictions,
                              std::span<const uint64_t> laneMask) const
{
    if (batch.numErasureSites() == 0 || erasureSiteEdges_.empty()) {
        const bool tracing = obs::traceEnabled();
        decodeBatchEvents(
            batch, predictions, laneMask,
            [this, tracing](const std::vector<uint32_t>& events) {
                if (tracing && !events.empty()) {
                    if (events.size() <= exactSyndromeThreshold_)
                        ++tUfExactShots;
                    else
                        ++tUfGrowthShots;
                }
                return decodeEvents(events, kNoErasedEdges, nullptr);
            });
        if (tracing)
            traceDecodeMix();
        return;
    }
    // Erasure-aware batch: gather event and herald lists with one
    // sparse sweep each, then decode per shot with the herald's edges
    // seeded at zero weight.
    VLQ_ASSERT(predictions.size() >= batch.numShots(),
               "predictions span smaller than the batch");
    obs::StageTimer obsTimer("decode.batch");
    thread_local std::vector<std::vector<uint32_t>> events;
    thread_local std::vector<std::vector<uint32_t>> sites;
    thread_local std::vector<uint32_t> edges;
    {
        obs::StageTimer gatherTimer("decode.gather");
        batch.gatherEvents(events);
        batch.gatherErasures(sites);
    }
    const bool tracing = obs::traceEnabled();
    uint32_t selected = 0;
    uint32_t trivial = 0;
    for (uint32_t s = 0; s < batch.numShots(); ++s) {
        if (!laneSelected(laneMask, s))
            continue;
        ++selected;
        obs::StageTimer seedTimer(
            !sites[s].empty() ? "uf.erasure_seed" : nullptr);
        mapErasureSites(sites[s], edges);
        if (tracing && !events[s].empty()) {
            if (!edges.empty())
                ++tUfErasureShots;
            else if (events[s].size() <= exactSyndromeThreshold_)
                ++tUfExactShots;
            else
                ++tUfGrowthShots;
        }
        if (events[s].empty())
            ++trivial;
        predictions[s] = decodeEvents(events[s], edges, nullptr);
    }
    if (tracing)
        traceDecodeMix();
    if (obs::metricsEnabled()) {
        static const obs::Counter batches =
            obs::Counter::get("decode.batches");
        static const obs::Counter decoded =
            obs::Counter::get("decode.shots");
        static const obs::Counter trivialShots =
            obs::Counter::get("decode.trivial_shots");
        batches.add(1);
        decoded.add(selected);
        trivialShots.add(trivial);
    }
}

uint32_t
UnionFindDecoder::decodeEvents(const std::vector<uint32_t>& events,
                               const std::vector<uint32_t>& erasedEdges,
                               DecodeInfo* info) const
{
    if (info)
        *info = DecodeInfo{};
    // With no detection events there is nothing to correct: erased
    // clusters without defects peel to the empty correction anyway.
    if (events.empty())
        return 0;
    const bool hasErasures = !erasedEdges.empty();

    const uint32_t n = graph_.numNodes();
    const uint32_t numEdges = static_cast<uint32_t>(graph_.edges().size());
    const uint32_t boundary = graph_.boundaryNode();
    const DecodingGraph::SoA& g = graph_.soa();

    Scratch& s = scratch();
    s.ensure(n, numEdges, cacheEpoch_, capacity_);

    constexpr double kInf = std::numeric_limits<double>::infinity();
    uint32_t obs = 0;
    uint32_t matchedPairs = 0;
    uint32_t boundaryMatches = 0;
    auto& pq = s.pq;
    auto& pairW = s.pairW;
    auto& pairObs = s.pairObs;
    auto& bndW = s.bndW;
    auto& bndObs = s.bndObs;
    auto& defLB = s.defLB;

    /**
     * Exact minimum-weight matching of one defect set (boundary
     * optional) over global shortest-path distances. Used for whole
     * small syndromes (fast path) and for small grown clusters.
     *
     * Defect-pair shortest paths are globally exact and memoized
     * across shots (a global distance does not depend on the shot).
     * The first cache miss from a source defect runs one full
     * single-source Dijkstra and stores the entire row, so after the
     * first few batches every query is a pure cache lookup and the
     * steady-state decode does no priority-queue work. Paths never
     * route through the boundary node -- boundary pairing is a
     * separate option, exactly as in the blossom formulation.
     */
    auto matchDefectsExact = [&](const std::vector<uint32_t>& defects) {
        const size_t k = defects.size();
        // Lone defect: the precomputed boundary chain is the matching.
        if (k == 1) {
            if (std::isfinite(boundaryDist_[defects[0]])) {
                obs ^= boundaryObs_[defects[0]];
                ++boundaryMatches;
            }
            return;
        }
        // Defect pair with a warm cache: one compare, no arrays. Ties
        // prefer the boundary, matching the branch-and-bound's order.
        if (k == 2) {
            double w;
            uint32_t o;
            if (s.cacheFind(defects[0], defects[1], w, o)) {
                double b = boundaryDist_[defects[0]]
                    + boundaryDist_[defects[1]];
                if (w < b) {
                    obs ^= o;
                    ++matchedPairs;
                } else if (std::isfinite(b)) {
                    obs ^= boundaryObs_[defects[0]]
                        ^ boundaryObs_[defects[1]];
                    boundaryMatches += 2;
                } else if (std::isfinite(w)) {
                    obs ^= o;
                    ++matchedPairs;
                }
                return;
            }
        }
        pairW.assign(k * k, kInf);
        pairObs.assign(k * k, 0);
        bndW.resize(k);
        bndObs.resize(k);
        for (size_t i = 0; i < k; ++i) {
            bndW[i] = boundaryDist_[defects[i]];
            bndObs[i] = boundaryObs_[defects[i]];
        }

        for (size_t i = 0; i + 1 < k; ++i) {
            uint32_t src = defects[i];
            bool missing = false;
            for (size_t j = i + 1; j < k; ++j) {
                double w;
                uint32_t o;
                if (s.cacheFind(src, defects[j], w, o)) {
                    pairW[i * k + j] = pairW[j * k + i] = w;
                    pairObs[i * k + j] = pairObs[j * k + i] = o;
                } else {
                    missing = true;
                }
            }
            if (!missing || s.srcDone[src])
                continue; // leftover misses are unreachable pairs
            // One full single-source Dijkstra (boundary excluded, as
            // always for pair paths) fills src's whole row of the pair
            // cache, so every later query against src -- from any
            // shot -- is a pure lookup. Distances are unique and the
            // observable mask of a shortest path is path-choice
            // independent for bulk paths (a bulk cycle flips no
            // logical), so filling the row eagerly is bit-identical
            // to the old on-demand pruned searches.
            s.srcDone[src] = 1;
            s.dist[src] = 0.0;
            s.touched.push_back(src);
            pq.push({0.0, src});
            while (!pq.empty()) {
                auto [d, x] = pq.top();
                pq.pop();
                if (s.finalized[x])
                    continue;
                s.finalized[x] = 1;
                if (x != src)
                    s.cacheStore(src, x, d, s.pathObs[x]);
                for (uint32_t si = g.vertexBegin[x];
                     si < g.vertexBegin[x + 1]; ++si) {
                    uint32_t to = g.slotOther[si];
                    if (to == boundary)
                        continue;
                    uint32_t e = g.slotEdge[si];
                    double nd = d + g.edgeWeight[e];
                    if (nd < s.dist[to]) {
                        if (s.dist[to] == kInf)
                            s.touched.push_back(to);
                        s.dist[to] = nd;
                        s.pathObs[to] = s.pathObs[x] ^ g.edgeObs[e];
                        pq.push({nd, to});
                    }
                }
            }
            for (uint32_t x : s.touched) {
                s.dist[x] = kInf;
                s.pathObs[x] = 0;
                s.finalized[x] = 0;
            }
            s.touched.clear();
            for (size_t j = i + 1; j < k; ++j) {
                if (pairW[i * k + j] != kInf)
                    continue;
                double w;
                uint32_t o;
                if (s.cacheFind(src, defects[j], w, o)) {
                    pairW[i * k + j] = pairW[j * k + i] = w;
                    pairObs[i * k + j] = pairObs[j * k + i] = o;
                }
            }
        }

        // Exact minimum-weight matching of the defects (boundary
        // optional), by branch-and-bound over pairings. Each defect
        // must pay at least min(boundary, cheapest pair / 2) in any
        // completion; the sum of those per-defect floors over the
        // unmatched set is an admissible bound that prunes most of
        // the pairing tree at the larger defect counts.
        defLB.resize(k);
        for (size_t i = 0; i < k; ++i) {
            double floor_i = bndW[i];
            for (size_t j = 0; j < k; ++j)
                if (j != i)
                    floor_i = std::min(floor_i, 0.5 * pairW[i * k + j]);
            defLB[i] = std::isfinite(floor_i) ? floor_i : 0.0;
        }
        // A greedy nearest-available pairing seeds the incumbent, so
        // the branch-and-bound starts with a near-optimal bound and
        // spends its time proving optimality, not finding it. When the
        // greedy weight already equals the optimum, keeping its answer
        // is a legitimate minimum-weight (degenerate) solution.
        double bestW = kInf;
        uint32_t bestObs = 0;
        uint32_t bestPairs = 0;
        uint32_t bestBnds = 0;
        if (k >= 5) {
            uint32_t gUsed = 0;
            double gW = 0.0;
            uint32_t gObs = 0;
            uint32_t gPairs = 0;
            uint32_t gBnds = 0;
            bool feasible = true;
            for (size_t i = 0; i < k && feasible; ++i) {
                if ((gUsed >> i) & 1u)
                    continue;
                double best = bndW[i];
                int bj = -1;
                for (size_t j = i + 1; j < k; ++j)
                    if (!((gUsed >> j) & 1u)
                        && pairW[i * k + j] < best) {
                        best = pairW[i * k + j];
                        bj = static_cast<int>(j);
                    }
                if (!std::isfinite(best)) {
                    feasible = false;
                    break;
                }
                gUsed |= 1u << i;
                if (bj >= 0) {
                    gUsed |= 1u << bj;
                    gObs ^= pairObs[i * k + static_cast<size_t>(bj)];
                    ++gPairs;
                } else {
                    gObs ^= bndObs[i];
                    ++gBnds;
                }
                gW += best;
            }
            if (feasible) {
                bestW = gW;
                bestObs = gObs;
                bestPairs = gPairs;
                bestBnds = gBnds;
            }
        }
        auto search = [&](auto&& self, uint32_t used, double w,
                          double lbRemaining, uint32_t o,
                          uint32_t pairs, uint32_t bnds) -> void {
            if (w + lbRemaining >= bestW)
                return;
            size_t i = 0;
            while (i < k && ((used >> i) & 1u))
                ++i;
            if (i == k) {
                bestW = w;
                bestObs = o;
                bestPairs = pairs;
                bestBnds = bnds;
                return;
            }
            uint32_t mi = used | (1u << i);
            if (std::isfinite(bndW[i]))
                self(self, mi, w + bndW[i], lbRemaining - defLB[i],
                     o ^ bndObs[i], pairs, bnds + 1);
            for (size_t j = i + 1; j < k; ++j) {
                if ((used >> j) & 1u)
                    continue;
                double wij = pairW[i * k + j];
                if (std::isfinite(wij))
                    self(self, mi | (1u << j), w + wij,
                         lbRemaining - defLB[i] - defLB[j],
                         o ^ pairObs[i * k + j], pairs + 1, bnds);
            }
        };
        double lb0 = 0.0;
        for (size_t i = 0; i < k; ++i)
            lb0 += defLB[i];
        search(search, 0, 0.0, lb0, 0, 0, 0);
        if (std::isfinite(bestW)) {
            obs ^= bestObs;
            matchedPairs += bestPairs;
            boundaryMatches += bestBnds;
        }
    };

    // Fast path: a small syndrome is matched exactly as one global
    // problem -- identical to the blossom formulation, so the result
    // is MWPM-exact -- with no growth and no arena reset. Erased
    // shots must take the growth path: the global distances know
    // nothing about the (free) erased edges.
    if (!hasErasures && events.size() <= exactSyndromeThreshold_) {
        if (obs::metricsEnabled()) {
            static const obs::Counter fastPath =
                obs::Counter::get("uf.decode.exact_fastpath");
            fastPath.add(1);
        }
        matchDefectsExact(events);
        if (info) {
            info->initialClusters =
                static_cast<uint32_t>(events.size());
            info->matchedPairs = matchedPairs;
            info->boundaryMatches = boundaryMatches;
        }
        return obs;
    }

    if (obs::metricsEnabled()) {
        static const obs::Counter growth =
            obs::Counter::get("uf.decode.growth");
        growth.add(1);
        if (hasErasures) {
            static const obs::Counter erasureShots =
                obs::Counter::get("uf.decode.erasure_shots");
            erasureShots.add(1);
        }
    }
    s.reset(n);
    s.btouch[boundary] = 1;
    s.absorbed[boundary] = 1;

    // Any edge whose claimStamp predates this shot still carries the
    // previous shot's growth state; fetching it through freshEdge
    // re-zeroes support/grown lazily (bit-identical to an eager
    // per-shot clear, without the O(numEdges) sweep).
    const uint64_t shotBase = ++s.counter;
    auto freshEdge = [&](uint32_t e) -> Scratch::EdgeState& {
        Scratch::EdgeState& es = s.edge[e];
        if (es.claimStamp < shotBase) {
            es.claimStamp = shotBase;
            es.support = 0;
            es.grown = 0;
        }
        return es;
    };

    for (uint32_t v : events) {
        s.parity[v] = 1;
        s.defect[v] = 1;
        s.absorbed[v] = 1;
        s.frontier[v].assign(
            g.slotEdge.begin() + g.vertexBegin[v],
            g.slotEdge.begin() + g.vertexBegin[v + 1]);
        s.active.push_back(v);
    }
    if (info)
        info->initialClusters = static_cast<uint32_t>(events.size());

    // A vertex first reached by cluster growth contributes its incident
    // edges so the cluster keeps expanding past it. The boundary never
    // grows (absorbed from the start).
    auto ensureAbsorbed = [&](uint32_t v) {
        if (s.absorbed[v])
            return;
        s.absorbed[v] = 1;
        auto& f = s.frontier[v];
        for (uint32_t si = g.vertexBegin[v]; si < g.vertexBegin[v + 1];
             ++si) {
            uint32_t e = g.slotEdge[si];
            if (!freshEdge(e).grown)
                f.push_back(e);
        }
    };

    auto mergeEdge = [&](uint32_t e) {
        const uint32_t ea = g.edgeA[e];
        const uint32_t eb = g.edgeB[e];
        ensureAbsorbed(ea);
        ensureAbsorbed(eb);
        uint32_t u = s.find(ea);
        uint32_t v = s.find(eb);
        if (u == v)
            return; // cycle within one cluster: not a forest edge
        // Boundary contact freezes a cluster but does NOT union it
        // into the boundary component: two clusters that each reached
        // the boundary before reaching each other are strictly better
        // off matching to the boundary separately, so keeping them
        // apart is exact -- and it stops the shared boundary node from
        // chaining unrelated clusters into one giant matching problem.
        if (u == boundary || v == boundary) {
            s.btouch[u == boundary ? v : u] = 1;
            return;
        }
        if (s.frontier[u].size() < s.frontier[v].size())
            std::swap(u, v);
        s.parent[v] = u;
        s.parity[u] ^= s.parity[v];
        s.btouch[u] |= s.btouch[v];
        auto& fu = s.frontier[u];
        auto& fv = s.frontier[v];
        fu.insert(fu.end(), fv.begin(), fv.end());
        fv.clear();
    };

    // Zero-weight erasure seeding (Delfosse-Nickerson): every erased
    // edge is grown to full support at time zero -- traversing it
    // costs nothing -- and its endpoint clusters merge before ordinary
    // weighted growth starts. Erased boundary edges freeze their
    // cluster (free boundary exit) and are remembered so peeling can
    // discharge a leftover defect through them.
    if (hasErasures) {
        s.erasedBoundary.clear();
        for (uint32_t e : erasedEdges) {
            VLQ_ASSERT(e < numEdges, "erased edge index out of range");
            if (s.erasedEdge[e])
                continue; // two heralds over one edge seed it once
            s.erasedEdge[e] = 1;
            if (g.edgeA[e] == boundary || g.edgeB[e] == boundary)
                s.erasedBoundary.push_back(
                    {g.edgeA[e] == boundary ? g.edgeB[e] : g.edgeA[e],
                     e});
            Scratch::EdgeState& es = freshEdge(e);
            es.support = es.capacity;
            es.grown = 1;
            s.grownList.push_back(e);
            mergeEdge(e);
        }
        // Pre-merging can move roots off the defect vertices, pair
        // defects into even clusters, or freeze clusters at the
        // boundary -- rebuild the active list from the merged state.
        const uint64_t seedId = ++s.counter;
        s.nextActive.clear();
        for (uint32_t v : events) {
            uint32_t r = s.find(v);
            if (s.stamp[r] == seedId)
                continue;
            s.stamp[r] = seedId;
            if (s.parity[r] && !s.btouch[r])
                s.nextActive.push_back(r);
        }
        s.active.swap(s.nextActive);
    }

    // Growth is event-driven: each round, every active cluster claims
    // its frontier edges (an edge claimed from both endpoints grows at
    // twice the rate), then time advances by the smallest number of
    // ticks that fills some claimed edge. Rounds therefore scale with
    // merge/freeze events, not with the weight quantization.
    uint32_t rounds = 0;
    while (!s.active.empty()) {
        ++rounds;
        const uint64_t roundId = ++s.counter;
        s.roundEdges.clear();
        uint32_t delta = UINT32_MAX;
        for (uint32_t root : s.active) {
            auto& fr = s.frontier[root];
            size_t keep = 0;
            for (size_t i = 0; i < fr.size(); ++i) {
                // The scan is latency-bound on the random EdgeState
                // loads; prefetching a few iterations ahead overlaps
                // the misses (the indices are already in fr).
                if (i + 4 < fr.size())
                    __builtin_prefetch(&s.edge[fr[i + 4]], 1, 1);
                uint32_t e = fr[i];
                Scratch::EdgeState& es = freshEdge(e);
                if (es.grown)
                    continue;
                uint32_t remaining =
                    static_cast<uint32_t>(es.capacity - es.support);
                if (es.claimStamp != roundId) {
                    es.claimStamp = roundId;
                    es.mult = 1;
                    s.roundEdges.push_back(e);
                    delta = std::min(delta, remaining);
                } else {
                    // Claimed again (other endpoint or a duplicate
                    // list entry): fills proportionally faster.
                    uint32_t m = ++es.mult;
                    delta = std::min(delta, (remaining + m - 1) / m);
                }
                fr[keep++] = e;
            }
            fr.resize(keep);
        }
        if (s.roundEdges.empty())
            break; // odd clusters with nowhere left to grow
        s.mergeQueue.clear();
        for (uint32_t e : s.roundEdges) {
            Scratch::EdgeState& es = s.edge[e];
            uint32_t grownTo = es.support
                + static_cast<uint32_t>(es.mult) * delta;
            if (grownTo >= es.capacity) {
                es.support = es.capacity;
                es.grown = 1;
                s.grownList.push_back(e);
                s.mergeQueue.push_back(e);
            } else {
                es.support = static_cast<uint16_t>(grownTo);
            }
        }
        for (uint32_t e : s.mergeQueue)
            mergeEdge(e);

        s.nextActive.clear();
        for (uint32_t root : s.active) {
            uint32_t r = s.find(root);
            if (s.stamp[r] == roundId)
                continue;
            s.stamp[r] = roundId;
            if (s.parity[r] && !s.btouch[r])
                s.nextActive.push_back(r);
        }
        s.active.swap(s.nextActive);
    }

    // Peeling. Group defects (and grown edges) by cluster root; each
    // cluster resolves independently. Small clusters -- the bulk of
    // the work below threshold -- get a minimum-weight matching of
    // their defects on global shortest-path distances, which is what
    // makes the result agree with MWPM on small syndromes up to
    // genuine weight degeneracy. Large clusters (rare, near or above
    // threshold) fall back to the classic linear peel of a spanning
    // forest of their grown edges.
    for (uint32_t v : events) {
        uint32_t r = s.find(v);
        if (s.clusterDefects[r].empty())
            s.roots.push_back(r);
        s.clusterDefects[r].push_back(v);
    }
    for (uint32_t e : s.grownList) {
        if (g.edgeA[e] == boundary || g.edgeB[e] == boundary)
            continue; // boundary exits use the precomputed table
        s.clusterEdges[s.find(g.edgeA[e])].push_back(e);
    }

    constexpr size_t kExactMatching = 6;

    // Classic union-find peeling for one large (or erased) cluster:
    // build a BFS spanning tree of the cluster's grown edges, peel it
    // leaves-first XOR-ing a tree edge whenever the child side carries
    // a defect, and send any leftover root defect to the boundary --
    // through the cluster's erased boundary edge when it has one (the
    // free exit, exact for erasure-only shots), otherwise via the
    // global table. Erased edges sit in the tree like any grown edge,
    // which is what makes peeling exact on pure-erasure clusters.
    auto peelForest = [&](uint32_t r,
                          const std::vector<uint32_t>& defects,
                          bool hasExit, uint32_t exitVertex,
                          uint32_t exitObs) {
        for (uint32_t e : s.clusterEdges[r]) {
            for (uint32_t v : {g.edgeA[e], g.edgeB[e]}) {
                if (s.treeAdj[v].empty())
                    s.bfsVerts.push_back(v);
            }
            s.treeAdj[g.edgeA[e]].push_back(e);
            s.treeAdj[g.edgeB[e]].push_back(e);
        }
        // Rooting at the erased boundary exit makes the leftover
        // defect (if any) land exactly where the free exit is.
        uint32_t root = hasExit ? exitVertex : defects[0];
        s.order.clear();
        s.order.push_back(root);
        s.finalized[root] = 1;
        for (size_t qi = 0; qi < s.order.size(); ++qi) {
            uint32_t v = s.order[qi];
            for (uint32_t e : s.treeAdj[v]) {
                uint32_t to = g.edgeA[e] == v ? g.edgeB[e] : g.edgeA[e];
                if (!s.finalized[to]) {
                    s.finalized[to] = 1;
                    s.parentEdge[to] = e;
                    s.order.push_back(to);
                }
            }
        }
        for (size_t qi = s.order.size(); qi-- > 1;) {
            uint32_t v = s.order[qi];
            if (!s.defect[v])
                continue;
            const uint32_t pe = s.parentEdge[v];
            uint32_t u = g.edgeA[pe] == v ? g.edgeB[pe] : g.edgeA[pe];
            obs ^= g.edgeObs[pe];
            s.defect[v] = 0;
            s.defect[u] ^= 1;
            ++matchedPairs;
        }
        if (s.defect[root]) {
            s.defect[root] = 0;
            if (hasExit) {
                obs ^= exitObs;
                ++boundaryMatches;
            } else if (std::isfinite(boundaryDist_[root])) {
                obs ^= boundaryObs_[root];
                ++boundaryMatches;
            }
        }
        for (uint32_t v : s.order)
            s.finalized[v] = 0;
        for (uint32_t v : s.bfsVerts)
            s.treeAdj[v].clear();
        s.bfsVerts.clear();
    };

    for (uint32_t r : s.roots) {
        const auto& defects = s.clusterDefects[r];
        // A cluster holding erased edges peels on its spanning forest:
        // the forest includes the free erased edges, which the global
        // distances of the exact matcher cannot see. An erased
        // boundary edge additionally gives the cluster a free exit.
        bool erased = false;
        bool hasExit = false;
        uint32_t exitVertex = 0;
        uint32_t exitObs = 0;
        if (hasErasures) {
            for (uint32_t e : s.clusterEdges[r]) {
                if (s.erasedEdge[e]) {
                    erased = true;
                    break;
                }
            }
            for (const auto& [v, e] : s.erasedBoundary) {
                if (s.find(v) == r) {
                    hasExit = true;
                    exitVertex = v;
                    exitObs = g.edgeObs[e];
                    break;
                }
            }
        }
        if (defects.size() > kExactMatching || erased || hasExit)
            peelForest(r, defects, hasExit, exitVertex, exitObs);
        else
            matchDefectsExact(defects);
        s.clusterEdges[r].clear();
        s.clusterDefects[r].clear();
    }

    if (hasErasures) {
        for (uint32_t e : erasedEdges)
            s.erasedEdge[e] = 0;
        s.erasedBoundary.clear();
    }

    if (info) {
        info->growthRounds = rounds;
        info->matchedPairs = matchedPairs;
        info->boundaryMatches = boundaryMatches;
    }
    return obs;
}

} // namespace vlq
