#ifndef VLQ_DECODER_BLOSSOM_H
#define VLQ_DECODER_BLOSSOM_H

#include <cstdint>
#include <vector>

namespace vlq {

/** An undirected weighted edge for matching problems. */
struct MatchEdge
{
    int u = 0;
    int v = 0;
    double weight = 0.0;
};

/**
 * Exact maximum-weight matching in general graphs.
 *
 * Implementation of Galil's O(V^3) blossom algorithm (the formulation
 * popularized by van Rantwijk and used by networkx). Weights are scaled
 * to even integers internally so that all dual-variable arithmetic is
 * exact; results are deterministic.
 *
 * @param numVertices vertex count (vertices are 0..numVertices-1).
 * @param edges       edge list; parallel edges and self-loops are
 *                    rejected.
 * @param maxCardinality when true, only maximum-cardinality matchings
 *                    are considered (needed to force perfect matchings).
 * @return mate[v] = matched partner of v, or -1 when unmatched.
 */
std::vector<int> maxWeightMatching(int numVertices,
                                   const std::vector<MatchEdge>& edges,
                                   bool maxCardinality);

/**
 * Exact minimum-weight perfect matching: complement weights and run
 * max-cardinality maximum-weight matching. The graph must admit a
 * perfect matching (checked: aborts otherwise).
 */
std::vector<int> minWeightPerfectMatching(
    int numVertices, const std::vector<MatchEdge>& edges);

} // namespace vlq

#endif // VLQ_DECODER_BLOSSOM_H
