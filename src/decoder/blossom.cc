#include "decoder/blossom.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace vlq {

namespace {

/**
 * State of one maximum-weight-matching run. Vertex ids are 0..n-1;
 * blossom ids n..2n-1. Edge endpoints are indexed 2k and 2k+1 for edge
 * k, so p^1 is the opposite endpoint and p/2 the edge.
 */
class Matcher
{
  public:
    Matcher(int n, const std::vector<MatchEdge>& input, bool maxCardinality)
        : n_(n), maxCard_(maxCardinality)
    {
        edges_.reserve(input.size());
        int64_t maxw = 0;
        for (const auto& e : input) {
            VLQ_ASSERT(e.u != e.v, "self loop in matching graph");
            VLQ_ASSERT(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                       "matching edge endpoint out of range");
            // Scale to even integers for exact dual arithmetic.
            int64_t w = 2 * llround(e.weight * kScale);
            edges_.push_back(Edge{e.u, e.v, w});
            maxw = std::max(maxw, w);
        }
        const int m = static_cast<int>(edges_.size());

        endpoint_.resize(2 * m);
        neighbend_.assign(n_, {});
        for (int k = 0; k < m; ++k) {
            endpoint_[2 * k] = edges_[k].u;
            endpoint_[2 * k + 1] = edges_[k].v;
            neighbend_[edges_[k].u].push_back(2 * k + 1);
            neighbend_[edges_[k].v].push_back(2 * k);
        }

        mate_.assign(n_, -1);
        label_.assign(2 * n_, 0);
        labelend_.assign(2 * n_, -1);
        inblossom_.resize(n_);
        for (int v = 0; v < n_; ++v)
            inblossom_[v] = v;
        blossomparent_.assign(2 * n_, -1);
        blossomchilds_.assign(2 * n_, {});
        blossombase_.resize(2 * n_);
        for (int v = 0; v < n_; ++v)
            blossombase_[v] = v;
        for (int b = n_; b < 2 * n_; ++b)
            blossombase_[b] = -1;
        blossomendps_.assign(2 * n_, {});
        bestedge_.assign(2 * n_, -1);
        blossombestedges_.assign(2 * n_, {});
        hasBestList_.assign(2 * n_, false);
        for (int b = 2 * n_ - 1; b >= n_; --b)
            unusedblossoms_.push_back(b);
        dualvar_.assign(2 * n_, 0);
        for (int v = 0; v < n_; ++v)
            dualvar_[v] = maxw;
        allowedge_.assign(m, false);
    }

    std::vector<int>
    run()
    {
        for (int t = 0; t < n_; ++t) {
            if (!stage())
                break;
        }
        std::vector<int> result(n_, -1);
        for (int v = 0; v < n_; ++v)
            if (mate_[v] >= 0)
                result[v] = endpoint_[mate_[v]];
        for (int v = 0; v < n_; ++v)
            VLQ_ASSERT(result[v] == -1 || result[result[v]] == v,
                       "matching is not symmetric");
        return result;
    }

  private:
    static constexpr double kScale = double{1 << 20};

    struct Edge
    {
        int u;
        int v;
        int64_t w;
    };

    int n_;
    bool maxCard_;
    std::vector<Edge> edges_;
    std::vector<int> endpoint_;
    std::vector<std::vector<int>> neighbend_;
    std::vector<int> mate_;
    std::vector<int> label_;
    std::vector<int> labelend_;
    std::vector<int> inblossom_;
    std::vector<int> blossomparent_;
    std::vector<std::vector<int>> blossomchilds_;
    std::vector<int> blossombase_;
    std::vector<std::vector<int>> blossomendps_;
    std::vector<int> bestedge_;
    std::vector<std::vector<int>> blossombestedges_;
    std::vector<bool> hasBestList_;
    std::vector<int> unusedblossoms_;
    std::vector<int64_t> dualvar_;
    std::vector<bool> allowedge_;
    std::vector<int> queue_;

    int64_t
    slack(int k) const
    {
        return dualvar_[edges_[k].u] + dualvar_[edges_[k].v]
             - 2 * edges_[k].w;
    }

    void
    blossomLeaves(int b, std::vector<int>& out) const
    {
        if (b < n_) {
            out.push_back(b);
            return;
        }
        for (int t : blossomchilds_[b])
            blossomLeaves(t, out);
    }

    void
    assignLabel(int w, int t, int p)
    {
        int b = inblossom_[w];
        VLQ_ASSERT(label_[w] == 0 && label_[b] == 0, "relabel attempt");
        label_[w] = label_[b] = t;
        labelend_[w] = labelend_[b] = p;
        bestedge_[w] = bestedge_[b] = -1;
        if (t == 1) {
            std::vector<int> leaves;
            blossomLeaves(b, leaves);
            queue_.insert(queue_.end(), leaves.begin(), leaves.end());
        } else {
            int base = blossombase_[b];
            VLQ_ASSERT(mate_[base] >= 0, "T-blossom base unmatched");
            assignLabel(endpoint_[mate_[base]], 1, mate_[base] ^ 1);
        }
    }

    int
    scanBlossom(int v, int w)
    {
        std::vector<int> path;
        int base = -1;
        while (v != -1 || w != -1) {
            int b = inblossom_[v];
            if (label_[b] & 4) {
                base = blossombase_[b];
                break;
            }
            VLQ_ASSERT(label_[b] == 1, "scanBlossom expects S-blossom");
            path.push_back(b);
            label_[b] |= 4;
            VLQ_ASSERT(labelend_[b] == mate_[blossombase_[b]],
                       "S-blossom labelend mismatch");
            if (labelend_[b] == -1) {
                v = -1; // root of the tree
            } else {
                v = endpoint_[labelend_[b]];
                b = inblossom_[v];
                VLQ_ASSERT(label_[b] == 2, "expected T-blossom");
                VLQ_ASSERT(labelend_[b] >= 0, "T-blossom without edge");
                v = endpoint_[labelend_[b]];
            }
            if (w != -1)
                std::swap(v, w);
        }
        for (int b : path)
            label_[b] &= ~4;
        return base;
    }

    void
    addBlossom(int base, int k)
    {
        int v = edges_[k].u;
        int w = edges_[k].v;
        int bb = inblossom_[base];
        int bv = inblossom_[v];
        int bw = inblossom_[w];

        VLQ_ASSERT(!unusedblossoms_.empty(), "out of blossom ids");
        int b = unusedblossoms_.back();
        unusedblossoms_.pop_back();

        blossombase_[b] = base;
        blossomparent_[b] = -1;
        blossomparent_[bb] = b;

        std::vector<int> path;
        std::vector<int> endps;
        while (bv != bb) {
            blossomparent_[bv] = b;
            path.push_back(bv);
            endps.push_back(labelend_[bv]);
            VLQ_ASSERT(label_[bv] == 2 ||
                           (label_[bv] == 1 &&
                            labelend_[bv] == mate_[blossombase_[bv]]),
                       "addBlossom trace error");
            VLQ_ASSERT(labelend_[bv] >= 0, "blossom trace without edge");
            v = endpoint_[labelend_[bv]];
            bv = inblossom_[v];
        }
        path.push_back(bb);
        std::reverse(path.begin(), path.end());
        std::reverse(endps.begin(), endps.end());
        endps.push_back(2 * k);
        while (bw != bb) {
            blossomparent_[bw] = b;
            path.push_back(bw);
            endps.push_back(labelend_[bw] ^ 1);
            VLQ_ASSERT(label_[bw] == 2 ||
                           (label_[bw] == 1 &&
                            labelend_[bw] == mate_[blossombase_[bw]]),
                       "addBlossom trace error");
            VLQ_ASSERT(labelend_[bw] >= 0, "blossom trace without edge");
            w = endpoint_[labelend_[bw]];
            bw = inblossom_[w];
        }
        blossomchilds_[b] = std::move(path);
        blossomendps_[b] = std::move(endps);

        VLQ_ASSERT(label_[bb] == 1, "blossom base must be S");
        label_[b] = 1;
        labelend_[b] = labelend_[bb];
        dualvar_[b] = 0;

        std::vector<int> leaves;
        blossomLeaves(b, leaves);
        for (int leaf : leaves) {
            if (label_[inblossom_[leaf]] == 2)
                queue_.push_back(leaf);
            inblossom_[leaf] = b;
        }

        // Recompute best edges into neighboring S-blossoms.
        std::vector<int> bestedgeto(2 * n_, -1);
        for (int child : blossomchilds_[b]) {
            std::vector<std::vector<int>> nblists;
            if (!hasBestList_[child]) {
                std::vector<int> childLeaves;
                blossomLeaves(child, childLeaves);
                for (int leaf : childLeaves) {
                    std::vector<int> ks;
                    ks.reserve(neighbend_[leaf].size());
                    for (int p : neighbend_[leaf])
                        ks.push_back(p / 2);
                    nblists.push_back(std::move(ks));
                }
            } else {
                nblists.push_back(blossombestedges_[child]);
            }
            for (const auto& nblist : nblists) {
                for (int kk : nblist) {
                    int i = edges_[kk].u;
                    int j = edges_[kk].v;
                    if (inblossom_[j] == b)
                        std::swap(i, j);
                    int bj = inblossom_[j];
                    if (bj != b && label_[bj] == 1 &&
                        (bestedgeto[bj] == -1 ||
                         slack(kk) < slack(bestedgeto[bj]))) {
                        bestedgeto[bj] = kk;
                    }
                }
            }
            blossombestedges_[child].clear();
            hasBestList_[child] = false;
            bestedge_[child] = -1;
        }
        blossombestedges_[b].clear();
        for (int kk : bestedgeto)
            if (kk != -1)
                blossombestedges_[b].push_back(kk);
        hasBestList_[b] = true;
        bestedge_[b] = -1;
        for (int kk : blossombestedges_[b])
            if (bestedge_[b] == -1 || slack(kk) < slack(bestedge_[b]))
                bestedge_[b] = kk;
    }

    void
    expandBlossom(int b, bool endstage)
    {
        for (int s : blossomchilds_[b]) {
            blossomparent_[s] = -1;
            if (s < n_) {
                inblossom_[s] = s;
            } else if (endstage && dualvar_[s] == 0) {
                expandBlossom(s, endstage);
            } else {
                std::vector<int> leaves;
                blossomLeaves(s, leaves);
                for (int v : leaves)
                    inblossom_[v] = s;
            }
        }
        if (!endstage && label_[b] == 2) {
            // The expanding blossom was reached through labelend_[b];
            // relabel the even-length path of sub-blossoms between the
            // entry child and the base, and clear labels elsewhere.
            VLQ_ASSERT(labelend_[b] >= 0, "expand without entry edge");
            int entrychild = inblossom_[endpoint_[labelend_[b] ^ 1]];
            int j = 0;
            for (size_t i = 0; i < blossomchilds_[b].size(); ++i)
                if (blossomchilds_[b][i] == entrychild)
                    j = static_cast<int>(i);
            int jstep;
            int endptrick;
            const int nchilds = static_cast<int>(blossomchilds_[b].size());
            if (j & 1) {
                j -= nchilds;
                jstep = 1;
                endptrick = 0;
            } else {
                jstep = -1;
                endptrick = 1;
            }
            auto childAt = [&](int idx) {
                return blossomchilds_[b][static_cast<size_t>(
                    ((idx % nchilds) + nchilds) % nchilds)];
            };
            auto endpAt = [&](int idx) {
                return blossomendps_[b][static_cast<size_t>(
                    ((idx % nchilds) + nchilds) % nchilds)];
            };
            int p = labelend_[b];
            while (j != 0) {
                // Relabel the T-sub-blossom.
                label_[endpoint_[p ^ 1]] = 0;
                label_[endpoint_[endpAt(j - endptrick) ^ endptrick ^ 1]]
                    = 0;
                assignLabel(endpoint_[p ^ 1], 2, p);
                allowedge_[endpAt(j - endptrick) / 2] = true;
                j += jstep;
                p = endpAt(j - endptrick) ^ endptrick;
                allowedge_[p / 2] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom without stepping through.
            int bv = childAt(j);
            label_[endpoint_[p ^ 1]] = 2;
            label_[bv] = 2;
            labelend_[endpoint_[p ^ 1]] = p;
            labelend_[bv] = p;
            bestedge_[bv] = -1;
            // Continue along the blossom until we get back to entrychild.
            j += jstep;
            while (childAt(j) != entrychild) {
                bv = childAt(j);
                if (label_[bv] == 1) {
                    j += jstep;
                    continue;
                }
                std::vector<int> leaves;
                blossomLeaves(bv, leaves);
                int labeled = -1;
                for (int v : leaves) {
                    if (label_[v] != 0) {
                        labeled = v;
                        break;
                    }
                }
                if (labeled != -1) {
                    VLQ_ASSERT(label_[labeled] == 2, "expected T label");
                    VLQ_ASSERT(inblossom_[labeled] == bv,
                               "leaf blossom mismatch");
                    label_[labeled] = 0;
                    label_[endpoint_[mate_[blossombase_[bv]]]] = 0;
                    assignLabel(labeled, 2, labelend_[labeled]);
                }
                j += jstep;
            }
        }
        label_[b] = -1;
        labelend_[b] = -1;
        blossomchilds_[b].clear();
        blossomendps_[b].clear();
        blossombase_[b] = -1;
        blossombestedges_[b].clear();
        hasBestList_[b] = false;
        bestedge_[b] = -1;
        unusedblossoms_.push_back(b);
    }

    void
    augmentBlossom(int b, int v)
    {
        // Bubble up through immediate children to find the one with v.
        int t = v;
        while (blossomparent_[t] != b)
            t = blossomparent_[t];
        if (t >= n_)
            augmentBlossom(t, v);
        int i = 0;
        const int nchilds = static_cast<int>(blossomchilds_[b].size());
        for (int idx = 0; idx < nchilds; ++idx)
            if (blossomchilds_[b][static_cast<size_t>(idx)] == t)
                i = idx;
        int j = i;
        int jstep;
        int endptrick;
        if (i & 1) {
            j -= nchilds;
            jstep = 1;
            endptrick = 0;
        } else {
            jstep = -1;
            endptrick = 1;
        }
        auto childAt = [&](int idx) {
            return blossomchilds_[b][static_cast<size_t>(
                ((idx % nchilds) + nchilds) % nchilds)];
        };
        auto endpAt = [&](int idx) {
            return blossomendps_[b][static_cast<size_t>(
                ((idx % nchilds) + nchilds) % nchilds)];
        };
        while (j != 0) {
            j += jstep;
            t = childAt(j);
            int p = endpAt(j - endptrick) ^ endptrick;
            if (t >= n_)
                augmentBlossom(t, endpoint_[p]);
            j += jstep;
            t = childAt(j);
            if (t >= n_)
                augmentBlossom(t, endpoint_[p ^ 1]);
            mate_[endpoint_[p]] = p ^ 1;
            mate_[endpoint_[p ^ 1]] = p;
        }
        // Rotate so that the child containing v becomes the base.
        std::rotate(blossomchilds_[b].begin(),
                    blossomchilds_[b].begin() + i, blossomchilds_[b].end());
        std::rotate(blossomendps_[b].begin(),
                    blossomendps_[b].begin() + i, blossomendps_[b].end());
        blossombase_[b] = blossombase_[blossomchilds_[b][0]];
        VLQ_ASSERT(blossombase_[b] == v, "augmentBlossom base mismatch");
    }

    void
    augmentMatching(int k)
    {
        for (int side = 0; side < 2; ++side) {
            int s = side == 0 ? edges_[k].u : edges_[k].v;
            int p = side == 0 ? 2 * k + 1 : 2 * k;
            for (;;) {
                int bs = inblossom_[s];
                VLQ_ASSERT(label_[bs] == 1, "augment expects S-blossom");
                VLQ_ASSERT(labelend_[bs] == mate_[blossombase_[bs]],
                           "augment labelend mismatch");
                if (bs >= n_)
                    augmentBlossom(bs, s);
                mate_[s] = p;
                if (labelend_[bs] == -1)
                    break; // reached the root of the tree
                int t = endpoint_[labelend_[bs]];
                int bt = inblossom_[t];
                VLQ_ASSERT(label_[bt] == 2, "augment expects T-blossom");
                VLQ_ASSERT(labelend_[bt] >= 0, "T-blossom without edge");
                s = endpoint_[labelend_[bt]];
                int j = endpoint_[labelend_[bt] ^ 1];
                VLQ_ASSERT(blossombase_[bt] == t, "T base mismatch");
                if (bt >= n_)
                    augmentBlossom(bt, j);
                mate_[j] = labelend_[bt];
                p = labelend_[bt] ^ 1;
            }
        }
    }

    /** One stage: grow trees until an augmenting path is found.
     *  @return true if the matching was augmented. */
    bool
    stage()
    {
        for (int b = 0; b < 2 * n_; ++b) {
            label_[b] = 0;
            bestedge_[b] = -1;
        }
        for (int b = n_; b < 2 * n_; ++b) {
            blossombestedges_[b].clear();
            hasBestList_[b] = false;
        }
        std::fill(allowedge_.begin(), allowedge_.end(), false);
        queue_.clear();
        for (int v = 0; v < n_; ++v)
            if (mate_[v] == -1 && label_[inblossom_[v]] == 0)
                assignLabel(v, 1, -1);

        bool augmented = false;
        for (;;) {
            while (!queue_.empty() && !augmented) {
                int v = queue_.back();
                queue_.pop_back();
                VLQ_ASSERT(label_[inblossom_[v]] == 1, "queue not S");
                for (int p : neighbend_[v]) {
                    int k = p / 2;
                    int w = endpoint_[p];
                    if (inblossom_[v] == inblossom_[w])
                        continue;
                    int64_t kslack = 0;
                    if (!allowedge_[k]) {
                        kslack = slack(k);
                        if (kslack <= 0)
                            allowedge_[k] = true;
                    }
                    if (allowedge_[k]) {
                        if (label_[inblossom_[w]] == 0) {
                            assignLabel(w, 2, p ^ 1);
                        } else if (label_[inblossom_[w]] == 1) {
                            int base = scanBlossom(v, w);
                            if (base >= 0) {
                                addBlossom(base, k);
                            } else {
                                augmentMatching(k);
                                augmented = true;
                                break;
                            }
                        } else if (label_[w] == 0) {
                            VLQ_ASSERT(label_[inblossom_[w]] == 2,
                                       "inconsistent label");
                            label_[w] = 2;
                            labelend_[w] = p ^ 1;
                        }
                    } else if (label_[inblossom_[w]] == 1) {
                        int bv = inblossom_[v];
                        if (bestedge_[bv] == -1 ||
                            kslack < slack(bestedge_[bv])) {
                            bestedge_[bv] = k;
                        }
                    } else if (label_[w] == 0) {
                        if (bestedge_[w] == -1 ||
                            kslack < slack(bestedge_[w])) {
                            bestedge_[w] = k;
                        }
                    }
                }
            }
            if (augmented)
                break;

            // Compute the dual adjustment.
            int deltatype = -1;
            int64_t delta = 0;
            int deltaedge = -1;
            int deltablossom = -1;

            if (!maxCard_) {
                deltatype = 1;
                int64_t minDual = dualvar_[0];
                for (int v = 1; v < n_; ++v)
                    minDual = std::min(minDual, dualvar_[v]);
                delta = std::max<int64_t>(0, minDual);
            }
            for (int v = 0; v < n_; ++v) {
                if (label_[inblossom_[v]] == 0 && bestedge_[v] != -1) {
                    int64_t d = slack(bestedge_[v]);
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 2;
                        deltaedge = bestedge_[v];
                    }
                }
            }
            for (int b = 0; b < 2 * n_; ++b) {
                if (blossomparent_[b] == -1 && label_[b] == 1 &&
                    bestedge_[b] != -1) {
                    int64_t kslack = slack(bestedge_[b]);
                    VLQ_ASSERT(kslack % 2 == 0, "odd slack");
                    int64_t d = kslack / 2;
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 3;
                        deltaedge = bestedge_[b];
                    }
                }
            }
            for (int b = n_; b < 2 * n_; ++b) {
                if (blossombase_[b] >= 0 && blossomparent_[b] == -1 &&
                    label_[b] == 2 &&
                    (deltatype == -1 || dualvar_[b] < delta)) {
                    delta = dualvar_[b];
                    deltatype = 4;
                    deltablossom = b;
                }
            }
            if (deltatype == -1) {
                // No further improvement possible (max-cardinality
                // optimum); make the final dual update non-negative.
                deltatype = 1;
                int64_t minDual = dualvar_[0];
                for (int v = 1; v < n_; ++v)
                    minDual = std::min(minDual, dualvar_[v]);
                delta = std::max<int64_t>(0, minDual);
            }

            // Apply the dual adjustment.
            for (int v = 0; v < n_; ++v) {
                int l = label_[inblossom_[v]];
                if (l == 1)
                    dualvar_[v] -= delta;
                else if (l == 2)
                    dualvar_[v] += delta;
            }
            for (int b = n_; b < 2 * n_; ++b) {
                if (blossombase_[b] >= 0 && blossomparent_[b] == -1) {
                    if (label_[b] == 1)
                        dualvar_[b] += delta;
                    else if (label_[b] == 2)
                        dualvar_[b] -= delta;
                }
            }

            if (deltatype == 1) {
                break; // optimum reached
            } else if (deltatype == 2) {
                allowedge_[deltaedge] = true;
                int i = edges_[deltaedge].u;
                if (label_[inblossom_[i]] == 0)
                    i = edges_[deltaedge].v;
                VLQ_ASSERT(label_[inblossom_[i]] == 1, "delta2 not S");
                queue_.push_back(i);
            } else if (deltatype == 3) {
                allowedge_[deltaedge] = true;
                int i = edges_[deltaedge].u;
                VLQ_ASSERT(label_[inblossom_[i]] == 1, "delta3 not S");
                queue_.push_back(i);
            } else {
                expandBlossom(deltablossom, false);
            }
        }

        // Expand all T-blossoms with zero dual at the end of the stage.
        for (int b = n_; b < 2 * n_; ++b) {
            if (blossomparent_[b] == -1 && blossombase_[b] >= 0 &&
                label_[b] == 2 && dualvar_[b] == 0) {
                expandBlossom(b, true);
            }
        }
        return augmented;
    }
};

} // namespace

std::vector<int>
maxWeightMatching(int numVertices, const std::vector<MatchEdge>& edges,
                  bool maxCardinality)
{
    if (numVertices == 0 || edges.empty())
        return std::vector<int>(static_cast<size_t>(numVertices), -1);
    Matcher matcher(numVertices, edges, maxCardinality);
    return matcher.run();
}

std::vector<int>
minWeightPerfectMatching(int numVertices, const std::vector<MatchEdge>& edges)
{
    // Complement weights: maximizing sum of (maxW + 1 - w) over a
    // maximum-cardinality matching minimizes sum(w) over perfect
    // matchings.
    double maxw = 0.0;
    for (const auto& e : edges)
        maxw = std::max(maxw, e.weight);
    std::vector<MatchEdge> flipped = edges;
    for (auto& e : flipped)
        e.weight = maxw + 1.0 - e.weight;
    std::vector<int> mate = maxWeightMatching(numVertices, flipped, true);
    for (int v = 0; v < numVertices; ++v)
        VLQ_ASSERT(mate[static_cast<size_t>(v)] >= 0,
                   "graph admits no perfect matching");
    return mate;
}

} // namespace vlq
