#include "sim/frame.h"

#include "util/logging.h"

namespace vlq {

FrameSimulator::FrameSimulator(const Circuit& circuit)
    : circuit_(circuit)
{
}

void
FrameSimulator::applyGate(const Operation& op, BitVec& x, BitVec& z,
                          BitVec& measFlips)
{
    switch (op.code) {
      case OpCode::H: {
        bool xb = x.get(op.q0);
        bool zb = z.get(op.q0);
        x.set(op.q0, zb);
        z.set(op.q0, xb);
        break;
      }
      case OpCode::S:
        // S X S^dag = Y: an X frame gains a Z component.
        if (x.get(op.q0))
            z.flip(op.q0);
        break;
      case OpCode::X:
      case OpCode::Y:
      case OpCode::Z:
        // Pauli gates conjugate Pauli frames to themselves (up to phase).
        break;
      case OpCode::CNOT:
        // X on control spreads to target; Z on target spreads to control.
        if (x.get(op.q0))
            x.flip(op.q1);
        if (z.get(op.q1))
            z.flip(op.q0);
        break;
      case OpCode::SWAP: {
        bool xa = x.get(op.q0), za = z.get(op.q0);
        bool xb = x.get(op.q1), zb = z.get(op.q1);
        x.set(op.q0, xb);
        z.set(op.q0, zb);
        x.set(op.q1, xa);
        z.set(op.q1, za);
        break;
      }
      case OpCode::RESET:
        x.set(op.q0, false);
        z.set(op.q0, false);
        break;
      case OpCode::MEASURE_Z:
        // The recorded outcome differs from the reference iff an X
        // component sits on the qubit. The frame survives measurement.
        if (x.get(op.q0))
            measFlips.flip(static_cast<size_t>(op.meas));
        break;
      default:
        break; // noise ops handled by callers
    }
}

BitVec
FrameSimulator::sampleMeasurementFlips(Rng& rng) const
{
    BitVec x(circuit_.numQubits());
    BitVec z(circuit_.numQubits());
    BitVec meas(circuit_.numMeasurements());

    for (const auto& op : circuit_.ops()) {
        switch (op.code) {
          case OpCode::DEPOLARIZE1: {
            double u = rng.nextDouble();
            if (u < op.p) {
                int which = static_cast<int>(u / op.p * 3.0);
                if (which > 2)
                    which = 2;
                // 0 -> X, 1 -> Y, 2 -> Z
                if (which != 2)
                    x.flip(op.q0);
                if (which != 0)
                    z.flip(op.q0);
            }
            break;
          }
          case OpCode::DEPOLARIZE2: {
            double u = rng.nextDouble();
            if (u < op.p) {
                int which = static_cast<int>(u / op.p * 15.0);
                if (which > 14)
                    which = 14;
                // Index 0..14 -> non-identity pair (pa, pb), pa*4+pb != 0.
                int code = which + 1;
                int pa = code >> 2;
                int pb = code & 3;
                // Two-bit encoding: bit0 = X part, bit1 = Z part.
                if (pa & 1)
                    x.flip(op.q0);
                if (pa & 2)
                    z.flip(op.q0);
                if (pb & 1)
                    x.flip(op.q1);
                if (pb & 2)
                    z.flip(op.q1);
            }
            break;
          }
          case OpCode::X_ERROR:
            if (rng.bernoulli(op.p))
                x.flip(op.q0);
            break;
          case OpCode::Y_ERROR:
            if (rng.bernoulli(op.p)) {
                x.flip(op.q0);
                z.flip(op.q0);
            }
            break;
          case OpCode::Z_ERROR:
            if (rng.bernoulli(op.p))
                z.flip(op.q0);
            break;
          case OpCode::PAULI_CHANNEL_1: {
            double u = rng.nextDouble();
            // Cumulative scan over the exclusive X/Y/Z branches.
            if (u < op.p) {
                x.flip(op.q0);
            } else if (u < op.p + op.py) {
                x.flip(op.q0);
                z.flip(op.q0);
            } else if (u < op.p + op.py + op.pz) {
                z.flip(op.q0);
            }
            break;
          }
          case OpCode::HERALDED_ERASE: {
            double u = rng.nextDouble();
            if (u < op.p) {
                // Erased: uniform I/X/Y/Z replacement state.
                int which = static_cast<int>(u / op.p * 4.0);
                if (which > 3)
                    which = 3;
                if (which == 1 || which == 2)
                    x.flip(op.q0);
                if (which == 2 || which == 3)
                    z.flip(op.q0);
            }
            break;
          }
          case OpCode::MEASURE_Z:
            applyGate(op, x, z, meas);
            if (op.p > 0.0 && rng.bernoulli(op.p))
                meas.flip(static_cast<size_t>(op.meas));
            break;
          default:
            applyGate(op, x, z, meas);
            break;
        }
    }
    return meas;
}

BitVec
FrameSimulator::propagateInjected(size_t opIndex, Pauli p0, Pauli p1) const
{
    VLQ_ASSERT(opIndex < circuit_.ops().size(), "op index out of range");
    BitVec x(circuit_.numQubits());
    BitVec z(circuit_.numQubits());
    BitVec meas(circuit_.numMeasurements());

    const auto& faultOp = circuit_.ops()[opIndex];
    if (pauliX(p0))
        x.flip(faultOp.q0);
    if (pauliZ(p0))
        z.flip(faultOp.q0);
    if (p1 != Pauli::I) {
        VLQ_ASSERT(opIsTwoQubit(faultOp.code),
                   "second Pauli on a one-qubit op");
        if (pauliX(p1))
            x.flip(faultOp.q1);
        if (pauliZ(p1))
            z.flip(faultOp.q1);
    }

    for (size_t i = opIndex + 1; i < circuit_.ops().size(); ++i)
        applyGate(circuit_.ops()[i], x, z, meas);
    return meas;
}

BitVec
FrameSimulator::propagateMeasurementFlip(size_t opIndex) const
{
    const auto& op = circuit_.ops()[opIndex];
    VLQ_ASSERT(op.code == OpCode::MEASURE_Z, "not a measurement");
    BitVec meas(circuit_.numMeasurements());
    meas.flip(static_cast<size_t>(op.meas));
    return meas;
}

BitVec
FrameSimulator::detectorFlips(const Circuit& circuit, const BitVec& measFlips)
{
    BitVec out(circuit.detectors().size());
    for (size_t d = 0; d < circuit.detectors().size(); ++d) {
        bool flip = false;
        for (uint32_t m : circuit.detectors()[d].measurements)
            flip ^= measFlips.get(m);
        out.set(d, flip);
    }
    return out;
}

uint32_t
FrameSimulator::observableFlips(const Circuit& circuit,
                                const BitVec& measFlips)
{
    uint32_t mask = 0;
    for (size_t o = 0; o < circuit.observables().size(); ++o) {
        bool flip = false;
        for (uint32_t m : circuit.observables()[o].measurements)
            flip ^= measFlips.get(m);
        if (flip)
            mask |= (1u << o);
    }
    return mask;
}

} // namespace vlq
