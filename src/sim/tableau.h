#ifndef VLQ_SIM_TABLEAU_H
#define VLQ_SIM_TABLEAU_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "pauli/bitvec.h"
#include "pauli/pauli_string.h"
#include "util/rng.h"

namespace vlq {

/**
 * Aaronson-Gottesman stabilizer tableau simulator (CHP).
 *
 * Simulates Clifford circuits on hundreds of qubits exactly. Used to
 * verify that syndrome-extraction circuits measure the intended
 * stabilizers deterministically (quiescence) and that logical operations
 * act correctly on code states -- checks the Pauli-frame simulator cannot
 * perform because it only tracks deviations from a reference run.
 */
class TableauSimulator
{
  public:
    /** Initialize n qubits in |0...0>. */
    explicit TableauSimulator(size_t n, uint64_t seed = 12345);

    size_t numQubits() const { return n_; }

    /** @{ Clifford gates. */
    void h(size_t q);
    void s(size_t q);
    void x(size_t q);
    void y(size_t q);
    void z(size_t q);
    void cnot(size_t control, size_t target);
    void swapGate(size_t a, size_t b);
    /** @} */

    /**
     * Measure qubit q in the Z basis.
     * @param wasDeterministic set (if non-null) to whether the outcome
     *        was fixed by the state.
     * @return measured bit.
     */
    bool measureZ(size_t q, bool* wasDeterministic = nullptr);

    /** Reset qubit q to |0> (measure, then flip if needed). */
    void reset(size_t q);

    /**
     * Sign of a Pauli observable on the current state.
     * @return +1 or -1 when `p` (tensored with identity) stabilizes the
     *         state up to sign; 0 when the outcome would be random.
     */
    int pauliSign(const PauliString& p);

    /**
     * Execute all gate/measure/reset ops of a circuit, ignoring noise
     * channels (noiseless reference run).
     * @return measurement record bits in order.
     */
    std::vector<bool> runCircuit(const Circuit& circuit);

  private:
    size_t n_;
    // Rows 0..n-1 are destabilizers, n..2n-1 stabilizers; row 2n is
    // scratch. Each row is a Pauli string with a sign bit.
    std::vector<BitVec> xs_;
    std::vector<BitVec> zs_;
    std::vector<uint8_t> r_;
    Rng rng_;

    void rowsum(size_t h, size_t i);
    static int g(bool x1, bool z1, bool x2, bool z2);
};

/**
 * Conjugates a signed Pauli string through a Clifford circuit:
 * P -> U P U^dagger.
 *
 * Used for process verification of logical gates: a transversal CNOT is
 * correct iff it maps logical XC -> XC XT, ZT -> ZC ZT, XT -> XT,
 * ZC -> ZC, and preserves the stabilizer group.
 */
class PauliPropagator
{
  public:
    /**
     * @param pauli operator to conjugate (modified in place).
     * @param sign  +1 or -1, updated in place.
     * @param circuit gate sequence (noise/measure/reset not allowed).
     */
    static void conjugate(PauliString& pauli, int& sign,
                          const Circuit& circuit);
};

} // namespace vlq

#endif // VLQ_SIM_TABLEAU_H
