#include "sim/tomography.h"

#include <cmath>

#include "pauli/pauli_string.h"
#include "sim/statevector.h"
#include "util/logging.h"

namespace vlq {

namespace {

/** Decode a base-4 index into an n-qubit Pauli string. */
PauliString
indexToPauli(size_t index, size_t n)
{
    PauliString p(n);
    static const Pauli order[4] = {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z};
    for (size_t q = 0; q < n; ++q) {
        p.set(q, order[index % 4]);
        index /= 4;
    }
    return p;
}

/**
 * Tr(P_i U P_j U^dag) / 2^n computed via 2^n state-vector runs: for each
 * computational basis state |b>, accumulate <b| P_i U P_j U^dag |b>.
 * Phases of Y are handled by tracking the i-factors of P acting on basis
 * states explicitly through the state-vector simulator (applyPauli drops
 * global phase, so we use matrix-free expectation instead).
 */
double
ptmEntry(const std::function<void(StateVector&)>& applyU,
         const std::function<void(StateVector&)>& applyUdag,
         const PauliString& pi, const PauliString& pj, size_t n)
{
    // Tr(A) = sum_b <b| A |b>. Build A|b> = P_i U P_j U^dag |b> step by
    // step. applyPauli ignores the global phase of Y = i XZ, so apply Y
    // as X then Z and track the residual phase i^(#Y) per operator.
    std::complex<double> total{0.0, 0.0};
    size_t dim = size_t{1} << n;

    auto applyTrackedPauli = [&](StateVector& sv, const PauliString& p,
                                 std::complex<double>& phase) {
        for (size_t q = 0; q < p.size(); ++q) {
            switch (p.get(q)) {
              case Pauli::I:
                break;
              case Pauli::X:
                sv.x(q);
                break;
              case Pauli::Z:
                sv.z(q);
                break;
              case Pauli::Y:
                // Y = i X Z: apply Z then X and multiply phase by i.
                sv.z(q);
                sv.x(q);
                phase *= std::complex<double>{0.0, 1.0};
                break;
            }
        }
    };

    for (size_t b = 0; b < dim; ++b) {
        StateVector sv(n);
        // Prepare |b>.
        for (size_t q = 0; q < n; ++q)
            if ((b >> q) & 1)
                sv.x(q);
        std::complex<double> phase{1.0, 0.0};
        applyUdag(sv);
        applyTrackedPauli(sv, pj, phase);
        applyU(sv);
        applyTrackedPauli(sv, pi, phase);
        // <b | sv>
        total += phase * sv.amplitudes()[b];
    }
    return (total / static_cast<double>(dim)).real();
}

} // namespace

Tomography::Ptm
Tomography::ofCircuit(const Circuit& circuit, size_t n)
{
    VLQ_ASSERT(n <= 3, "PTM dimension too large");
    size_t dim = 1;
    for (size_t i = 0; i < n; ++i)
        dim *= 4;

    // Build the inverse circuit (reversed ops; H, CNOT, SWAP, X, Y, Z
    // are involutions; S inverse = S S S).
    auto applyU = [&](StateVector& sv) { sv.runUnitary(circuit); };
    auto applyUdag = [&](StateVector& sv) {
        const auto& ops = circuit.ops();
        for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
            switch (it->code) {
              case OpCode::H: sv.h(it->q0); break;
              case OpCode::S: sv.sdg(it->q0); break;
              case OpCode::X: sv.x(it->q0); break;
              case OpCode::Y: sv.y(it->q0); break;
              case OpCode::Z: sv.z(it->q0); break;
              case OpCode::CNOT: sv.cnot(it->q0, it->q1); break;
              case OpCode::SWAP: sv.swapGate(it->q0, it->q1); break;
              case OpCode::MEASURE_Z:
              case OpCode::RESET:
                VLQ_PANIC("tomography: non-unitary op");
              default:
                break;
            }
        }
    };

    Ptm r(dim, std::vector<double>(dim, 0.0));
    for (size_t i = 0; i < dim; ++i) {
        PauliString pi = indexToPauli(i, n);
        for (size_t j = 0; j < dim; ++j) {
            PauliString pj = indexToPauli(j, n);
            r[i][j] = ptmEntry(applyU, applyUdag, pi, pj, n);
        }
    }
    return r;
}

Tomography::Ptm
Tomography::idealCnot(size_t n, size_t control, size_t target)
{
    Circuit c(static_cast<uint32_t>(n));
    c.cnot(static_cast<uint32_t>(control), static_cast<uint32_t>(target));
    return ofCircuit(c, n);
}

double
Tomography::maxDifference(const Ptm& a, const Ptm& b)
{
    VLQ_ASSERT(a.size() == b.size(), "PTM size mismatch");
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a[i].size(); ++j)
            worst = std::max(worst, std::abs(a[i][j] - b[i][j]));
    return worst;
}

double
Tomography::processFidelity(const Ptm& a, const Ptm& b)
{
    VLQ_ASSERT(a.size() == b.size(), "PTM size mismatch");
    double trace = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a[i].size(); ++j)
            trace += a[i][j] * b[i][j];
    return trace / static_cast<double>(a.size());
}

} // namespace vlq
