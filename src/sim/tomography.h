#ifndef VLQ_SIM_TOMOGRAPHY_H
#define VLQ_SIM_TOMOGRAPHY_H

#include <functional>
#include <vector>

#include "circuit/circuit.h"

namespace vlq {

/**
 * Process tomography utilities.
 *
 * The Pauli transfer matrix (PTM) of an n-qubit unitary channel U is
 * R[i][j] = Tr(P_i U P_j U^dag) / 2^n over the 4^n Pauli basis. Two
 * unitaries implement the same channel iff their PTMs agree. The paper
 * verifies its transversal CNOT this way (Sec. III-B); we expose the
 * same check for both the bare physical gate sequence and embedded
 * logical operations on small registers.
 */
class Tomography
{
  public:
    /** Dense PTM, row-major, dimension 4^n x 4^n. Keep n <= 3. */
    using Ptm = std::vector<std::vector<double>>;

    /**
     * PTM of the unitary implemented by a circuit on n qubits.
     * The circuit must be purely unitary (no measure/reset).
     */
    static Ptm ofCircuit(const Circuit& circuit, size_t n);

    /** PTM of an ideal CNOT with the given control/target on n qubits. */
    static Ptm idealCnot(size_t n, size_t control, size_t target);

    /** Max absolute entry-wise difference between two PTMs. */
    static double maxDifference(const Ptm& a, const Ptm& b);

    /**
     * Process fidelity between two unitary channels given as PTMs:
     * F_pro = Tr(Ra^T Rb) / 4^n.
     */
    static double processFidelity(const Ptm& a, const Ptm& b);
};

} // namespace vlq

#endif // VLQ_SIM_TOMOGRAPHY_H
