#include "sim/statevector.h"

#include <cmath>

#include "util/logging.h"

namespace vlq {

StateVector::StateVector(size_t n)
    : n_(n), amps_(size_t{1} << n, Amp{0.0, 0.0})
{
    VLQ_ASSERT(n <= 24, "state vector too large");
    amps_[0] = Amp{1.0, 0.0};
}

void
StateVector::apply1(size_t q, const Amp u[2][2])
{
    VLQ_ASSERT(q < n_, "qubit out of range");
    size_t stride = size_t{1} << q;
    for (size_t base = 0; base < amps_.size(); base += 2 * stride) {
        for (size_t i = base; i < base + stride; ++i) {
            Amp a0 = amps_[i];
            Amp a1 = amps_[i + stride];
            amps_[i] = u[0][0] * a0 + u[0][1] * a1;
            amps_[i + stride] = u[1][0] * a0 + u[1][1] * a1;
        }
    }
}

void
StateVector::h(size_t q)
{
    const double inv = 1.0 / std::sqrt(2.0);
    const Amp u[2][2] = {{inv, inv}, {inv, -inv}};
    apply1(q, u);
}

void
StateVector::s(size_t q)
{
    const Amp u[2][2] = {{1.0, 0.0}, {0.0, Amp{0.0, 1.0}}};
    apply1(q, u);
}

void
StateVector::sdg(size_t q)
{
    const Amp u[2][2] = {{1.0, 0.0}, {0.0, Amp{0.0, -1.0}}};
    apply1(q, u);
}

void
StateVector::t(size_t q)
{
    const double inv = 1.0 / std::sqrt(2.0);
    const Amp u[2][2] = {{1.0, 0.0}, {0.0, Amp{inv, inv}}};
    apply1(q, u);
}

void
StateVector::tdg(size_t q)
{
    const double inv = 1.0 / std::sqrt(2.0);
    const Amp u[2][2] = {{1.0, 0.0}, {0.0, Amp{inv, -inv}}};
    apply1(q, u);
}

void
StateVector::x(size_t q)
{
    const Amp u[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
    apply1(q, u);
}

void
StateVector::y(size_t q)
{
    const Amp u[2][2] = {{0.0, Amp{0.0, -1.0}}, {Amp{0.0, 1.0}, 0.0}};
    apply1(q, u);
}

void
StateVector::z(size_t q)
{
    const Amp u[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
    apply1(q, u);
}

void
StateVector::cnot(size_t control, size_t target)
{
    VLQ_ASSERT(control < n_ && target < n_ && control != target,
               "bad cnot operands");
    size_t cbit = size_t{1} << control;
    size_t tbit = size_t{1} << target;
    for (size_t i = 0; i < amps_.size(); ++i) {
        if ((i & cbit) && !(i & tbit))
            std::swap(amps_[i], amps_[i | tbit]);
    }
}

void
StateVector::cz(size_t a, size_t b)
{
    VLQ_ASSERT(a < n_ && b < n_ && a != b, "bad cz operands");
    size_t abit = size_t{1} << a;
    size_t bbit = size_t{1} << b;
    for (size_t i = 0; i < amps_.size(); ++i) {
        if ((i & abit) && (i & bbit))
            amps_[i] = -amps_[i];
    }
}

void
StateVector::swapGate(size_t a, size_t b)
{
    cnot(a, b);
    cnot(b, a);
    cnot(a, b);
}

void
StateVector::applyPauli(const PauliString& p)
{
    for (size_t q = 0; q < p.size(); ++q) {
        switch (p.get(q)) {
          case Pauli::I: break;
          case Pauli::X: x(q); break;
          case Pauli::Y: y(q); break;
          case Pauli::Z: z(q); break;
        }
    }
}

double
StateVector::probOne(size_t q) const
{
    size_t bit = size_t{1} << q;
    double p = 0.0;
    for (size_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p += std::norm(amps_[i]);
    return p;
}

bool
StateVector::measureZ(size_t q, Rng& rng)
{
    double p1 = probOne(q);
    bool outcome = rng.nextDouble() < p1;
    size_t bit = size_t{1} << q;
    double keep = outcome ? p1 : 1.0 - p1;
    double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
    for (size_t i = 0; i < amps_.size(); ++i) {
        bool one = (i & bit) != 0;
        if (one == outcome)
            amps_[i] *= scale;
        else
            amps_[i] = 0.0;
    }
    return outcome;
}

void
StateVector::reset(size_t q, Rng& rng)
{
    if (measureZ(q, rng))
        x(q);
}

void
StateVector::runUnitary(const Circuit& circuit)
{
    VLQ_ASSERT(circuit.numQubits() <= n_, "circuit larger than register");
    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H: h(op.q0); break;
          case OpCode::S: s(op.q0); break;
          case OpCode::X: x(op.q0); break;
          case OpCode::Y: y(op.q0); break;
          case OpCode::Z: z(op.q0); break;
          case OpCode::CNOT: cnot(op.q0, op.q1); break;
          case OpCode::SWAP: swapGate(op.q0, op.q1); break;
          case OpCode::MEASURE_Z:
          case OpCode::RESET:
            VLQ_PANIC("runUnitary: non-unitary op");
          default:
            break; // noise channels ignored
        }
    }
}

double
StateVector::expectation(const PauliString& p) const
{
    StateVector tmp = *this;
    tmp.applyPauli(p);
    Amp v{0.0, 0.0};
    for (size_t i = 0; i < amps_.size(); ++i)
        v += std::conj(amps_[i]) * tmp.amps_[i];
    return v.real();
}

StateVector::Amp
StateVector::overlap(const StateVector& other) const
{
    VLQ_ASSERT(n_ == other.n_, "overlap register size mismatch");
    Amp v{0.0, 0.0};
    for (size_t i = 0; i < amps_.size(); ++i)
        v += std::conj(other.amps_[i]) * amps_[i];
    return v;
}

void
StateVector::normalize()
{
    double norm2 = 0.0;
    for (const auto& a : amps_)
        norm2 += std::norm(a);
    double scale = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (auto& a : amps_)
        a *= scale;
}

} // namespace vlq
