#ifndef VLQ_SIM_STATEVECTOR_H
#define VLQ_SIM_STATEVECTOR_H

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "pauli/pauli_string.h"
#include "util/rng.h"

namespace vlq {

/**
 * Dense state-vector simulator for small registers (<= ~20 qubits).
 *
 * The paper verifies the transversal CNOT "via process tomography"; the
 * tomography module uses this simulator to reconstruct the process of
 * the physical transmon-mode gate sequences. It also backs cross-checks
 * of the tableau simulator on random Clifford circuits.
 */
class StateVector
{
  public:
    using Amp = std::complex<double>;

    /** Initialize n qubits in |0...0>. */
    explicit StateVector(size_t n);

    size_t numQubits() const { return n_; }

    /** @{ Gates. T and Tdg make the set universal. */
    void h(size_t q);
    void s(size_t q);
    void sdg(size_t q);
    void t(size_t q);
    void tdg(size_t q);
    void x(size_t q);
    void y(size_t q);
    void z(size_t q);
    void cnot(size_t control, size_t target);
    void cz(size_t a, size_t b);
    void swapGate(size_t a, size_t b);
    /** @} */

    /** Apply an arbitrary 2x2 unitary to qubit q. */
    void apply1(size_t q, const Amp u[2][2]);

    /** Apply a Pauli string (phase ignored). */
    void applyPauli(const PauliString& p);

    /** Probability of measuring qubit q as 1. */
    double probOne(size_t q) const;

    /** Measure qubit q (collapses the state). */
    bool measureZ(size_t q, Rng& rng);

    /** Reset qubit q to |0>. */
    void reset(size_t q, Rng& rng);

    /** Execute the unitary part of a circuit (noise ops ignored;
     *  measure/reset are rejected). */
    void runUnitary(const Circuit& circuit);

    /** <psi| P |psi> for a Pauli observable (real by Hermiticity). */
    double expectation(const PauliString& p) const;

    /** Inner product <other|this>. */
    Amp overlap(const StateVector& other) const;

    /** Raw amplitudes (size 2^n). */
    const std::vector<Amp>& amplitudes() const { return amps_; }

    /** Normalize (useful after numerical drift in long circuits). */
    void normalize();

  private:
    size_t n_;
    std::vector<Amp> amps_;
};

} // namespace vlq

#endif // VLQ_SIM_STATEVECTOR_H
