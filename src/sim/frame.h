#ifndef VLQ_SIM_FRAME_H
#define VLQ_SIM_FRAME_H

#include <cstdint>

#include "circuit/circuit.h"
#include "pauli/bitvec.h"
#include "pauli/pauli.h"
#include "util/rng.h"

namespace vlq {

/**
 * Pauli-frame simulator.
 *
 * Tracks a Pauli error frame (X and Z flip bits per qubit) through a
 * Clifford circuit. Measurement results are recorded as *flips relative
 * to the noiseless reference execution*, which is exactly what detectors
 * and observables consume. This is the standard technique for
 * circuit-level surface-code Monte Carlo: exponentially cheaper than
 * state simulation and exact for Pauli noise.
 */
class FrameSimulator
{
  public:
    explicit FrameSimulator(const Circuit& circuit);

    /**
     * Sample one noisy execution.
     * @return bit vector of measurement-record flips.
     */
    BitVec sampleMeasurementFlips(Rng& rng) const;

    /**
     * Noiseless execution with a single injected fault: the Pauli
     * (p0 on op.q0, p1 on op.q1) is applied at the position of
     * ops()[opIndex] and propagated to the end.
     * Used to cross-validate the detector-error-model builder.
     */
    BitVec propagateInjected(size_t opIndex, Pauli p0,
                             Pauli p1 = Pauli::I) const;

    /**
     * Noiseless execution where the record of the measurement at
     * ops()[opIndex] (which must be a MEASURE_Z) is flipped.
     */
    BitVec propagateMeasurementFlip(size_t opIndex) const;

    /** XOR measurement flips into detector flips. */
    static BitVec detectorFlips(const Circuit& circuit,
                                const BitVec& measFlips);

    /** XOR measurement flips into an observable-flip bitmask. */
    static uint32_t observableFlips(const Circuit& circuit,
                                    const BitVec& measFlips);

  private:
    const Circuit& circuit_;

    /** Apply one gate op to the frame (noise ops are skipped). */
    static void applyGate(const Operation& op, BitVec& x, BitVec& z,
                          BitVec& measFlips);
};

} // namespace vlq

#endif // VLQ_SIM_FRAME_H
