#include "sim/tableau.h"

#include "util/logging.h"

namespace vlq {

TableauSimulator::TableauSimulator(size_t n, uint64_t seed)
    : n_(n), rng_(seed)
{
    xs_.assign(2 * n + 1, BitVec(n));
    zs_.assign(2 * n + 1, BitVec(n));
    r_.assign(2 * n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
        xs_[i].set(i, true);          // destabilizer X_i
        zs_[n + i].set(i, true);      // stabilizer Z_i
    }
}

int
TableauSimulator::g(bool x1, bool z1, bool x2, bool z2)
{
    // Exponent of i contributed when multiplying single-qubit Paulis
    // (x1,z1) * (x2,z2); from Aaronson & Gottesman (2004), Sec. III.
    if (!x1 && !z1)
        return 0;
    if (x1 && z1)
        return (z2 ? 1 : 0) - (x2 ? 1 : 0);
    if (x1 && !z1)
        return (z2 ? 1 : 0) * (2 * (x2 ? 1 : 0) - 1);
    // !x1 && z1
    return (x2 ? 1 : 0) * (1 - 2 * (z2 ? 1 : 0));
}

void
TableauSimulator::rowsum(size_t h, size_t i)
{
    // Row h *= row i, tracking the sign exactly.
    int phase = 2 * r_[h] + 2 * r_[i];
    for (size_t j = 0; j < n_; ++j) {
        phase += g(xs_[i].get(j), zs_[i].get(j),
                   xs_[h].get(j), zs_[h].get(j));
    }
    phase = ((phase % 4) + 4) % 4;
    VLQ_ASSERT(phase == 0 || phase == 2, "rowsum produced imaginary phase");
    r_[h] = static_cast<uint8_t>(phase == 2);
    xs_[h] ^= xs_[i];
    zs_[h] ^= zs_[i];
}

void
TableauSimulator::h(size_t q)
{
    for (size_t i = 0; i < 2 * n_; ++i) {
        bool xb = xs_[i].get(q);
        bool zb = zs_[i].get(q);
        if (xb && zb)
            r_[i] ^= 1;
        xs_[i].set(q, zb);
        zs_[i].set(q, xb);
    }
}

void
TableauSimulator::s(size_t q)
{
    for (size_t i = 0; i < 2 * n_; ++i) {
        bool xb = xs_[i].get(q);
        bool zb = zs_[i].get(q);
        if (xb && zb)
            r_[i] ^= 1;
        zs_[i].set(q, xb != zb);
    }
}

void
TableauSimulator::x(size_t q)
{
    for (size_t i = 0; i < 2 * n_; ++i)
        if (zs_[i].get(q))
            r_[i] ^= 1;
}

void
TableauSimulator::z(size_t q)
{
    for (size_t i = 0; i < 2 * n_; ++i)
        if (xs_[i].get(q))
            r_[i] ^= 1;
}

void
TableauSimulator::y(size_t q)
{
    for (size_t i = 0; i < 2 * n_; ++i)
        if (xs_[i].get(q) != zs_[i].get(q))
            r_[i] ^= 1;
}

void
TableauSimulator::cnot(size_t control, size_t target)
{
    for (size_t i = 0; i < 2 * n_; ++i) {
        bool xc = xs_[i].get(control);
        bool zc = zs_[i].get(control);
        bool xt = xs_[i].get(target);
        bool zt = zs_[i].get(target);
        if (xc && zt && (xt == zc))
            r_[i] ^= 1;
        xs_[i].set(target, xt != xc);
        zs_[i].set(control, zc != zt);
    }
}

void
TableauSimulator::swapGate(size_t a, size_t b)
{
    cnot(a, b);
    cnot(b, a);
    cnot(a, b);
}

bool
TableauSimulator::measureZ(size_t q, bool* wasDeterministic)
{
    // Find a stabilizer that anticommutes with Z_q.
    size_t p = 2 * n_;
    for (size_t i = n_; i < 2 * n_; ++i) {
        if (xs_[i].get(q)) {
            p = i;
            break;
        }
    }

    if (p != 2 * n_) {
        // Random outcome.
        if (wasDeterministic)
            *wasDeterministic = false;
        for (size_t i = 0; i < 2 * n_; ++i) {
            if (i != p && xs_[i].get(q))
                rowsum(i, p);
        }
        // Destabilizer p-n takes the old stabilizer row p.
        xs_[p - n_] = xs_[p];
        zs_[p - n_] = zs_[p];
        r_[p - n_] = r_[p];
        // Stabilizer row p becomes +/- Z_q with a random sign.
        xs_[p].clear();
        zs_[p].clear();
        zs_[p].set(q, true);
        bool outcome = rng_.bernoulli(0.5);
        r_[p] = static_cast<uint8_t>(outcome);
        return outcome;
    }

    // Deterministic outcome: accumulate into the scratch row.
    if (wasDeterministic)
        *wasDeterministic = true;
    size_t scratch = 2 * n_;
    xs_[scratch].clear();
    zs_[scratch].clear();
    r_[scratch] = 0;
    for (size_t i = 0; i < n_; ++i) {
        if (xs_[i].get(q))
            rowsum(scratch, i + n_);
    }
    return r_[scratch] != 0;
}

void
TableauSimulator::reset(size_t q)
{
    if (measureZ(q))
        x(q);
}

int
TableauSimulator::pauliSign(const PauliString& p)
{
    VLQ_ASSERT(p.size() <= n_, "pauliSign: operator larger than register");
    // The observable is in the stabilizer group iff measuring it is
    // deterministic. Check commutation with all stabilizers first.
    for (size_t i = n_; i < 2 * n_; ++i) {
        // Symplectic product between row i and p.
        bool acc = false;
        for (size_t j = 0; j < p.size(); ++j) {
            bool xi = xs_[i].get(j), zi = zs_[i].get(j);
            bool xp = p.xBits().get(j), zp = p.zBits().get(j);
            acc ^= (xi && zp) != (zi && xp);
        }
        if (acc)
            return 0; // anticommutes: random outcome
    }

    // Express p as a product of stabilizers using destabilizer pairing:
    // p anticommutes with destabilizer i iff stabilizer i is in the
    // product. Accumulate the product in the scratch row and compare.
    size_t scratch = 2 * n_;
    xs_[scratch].clear();
    zs_[scratch].clear();
    r_[scratch] = 0;
    for (size_t i = 0; i < n_; ++i) {
        bool acc = false;
        for (size_t j = 0; j < p.size(); ++j) {
            bool xi = xs_[i].get(j), zi = zs_[i].get(j);
            bool xp = p.xBits().get(j), zp = p.zBits().get(j);
            acc ^= (xi && zp) != (zi && xp);
        }
        if (acc)
            rowsum(scratch, i + n_);
    }

    // The scratch row must now equal p up to sign.
    for (size_t j = 0; j < p.size(); ++j) {
        if (xs_[scratch].get(j) != p.xBits().get(j) ||
            zs_[scratch].get(j) != p.zBits().get(j)) {
            return 0; // not in the group (commutes but independent)
        }
    }
    for (size_t j = p.size(); j < n_; ++j) {
        if (xs_[scratch].get(j) || zs_[scratch].get(j))
            return 0;
    }
    return r_[scratch] ? -1 : +1;
}

std::vector<bool>
TableauSimulator::runCircuit(const Circuit& circuit)
{
    VLQ_ASSERT(circuit.numQubits() <= n_, "circuit larger than register");
    std::vector<bool> records;
    records.reserve(circuit.numMeasurements());
    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H: h(op.q0); break;
          case OpCode::S: s(op.q0); break;
          case OpCode::X: x(op.q0); break;
          case OpCode::Y: y(op.q0); break;
          case OpCode::Z: z(op.q0); break;
          case OpCode::CNOT: cnot(op.q0, op.q1); break;
          case OpCode::SWAP: swapGate(op.q0, op.q1); break;
          case OpCode::RESET: reset(op.q0); break;
          case OpCode::MEASURE_Z:
            records.push_back(measureZ(op.q0));
            break;
          default:
            break; // ignore noise channels: reference run
        }
    }
    return records;
}

void
PauliPropagator::conjugate(PauliString& pauli, int& sign,
                           const Circuit& circuit)
{
    for (const auto& op : circuit.ops()) {
        bool xq, zq, xt, zt;
        switch (op.code) {
          case OpCode::H:
            xq = pauli.xBits().get(op.q0);
            zq = pauli.zBits().get(op.q0);
            if (xq && zq)
                sign = -sign; // H Y H = -Y
            pauli.xBits().set(op.q0, zq);
            pauli.zBits().set(op.q0, xq);
            break;
          case OpCode::S:
            xq = pauli.xBits().get(op.q0);
            zq = pauli.zBits().get(op.q0);
            if (xq && zq)
                sign = -sign; // S Y S^dag = -X
            pauli.zBits().set(op.q0, xq != zq);
            break;
          case OpCode::X:
            if (pauli.zBits().get(op.q0))
                sign = -sign;
            break;
          case OpCode::Z:
            if (pauli.xBits().get(op.q0))
                sign = -sign;
            break;
          case OpCode::Y:
            if (pauli.xBits().get(op.q0) != pauli.zBits().get(op.q0))
                sign = -sign;
            break;
          case OpCode::CNOT:
            xq = pauli.xBits().get(op.q0);
            zq = pauli.zBits().get(op.q0);
            xt = pauli.xBits().get(op.q1);
            zt = pauli.zBits().get(op.q1);
            if (xq && zt && (xt == zq))
                sign = -sign;
            pauli.xBits().set(op.q1, xt != xq);
            pauli.zBits().set(op.q0, zq != zt);
            break;
          case OpCode::SWAP: {
            Pauli a = pauli.get(op.q0);
            Pauli b = pauli.get(op.q1);
            pauli.set(op.q0, b);
            pauli.set(op.q1, a);
            break;
          }
          case OpCode::MEASURE_Z:
          case OpCode::RESET:
            VLQ_PANIC("PauliPropagator: non-unitary op in circuit");
          default:
            break; // noise channels ignored
        }
    }
}

} // namespace vlq
