#include "pauli/bitvec.h"

#include <bit>

#include "util/logging.h"

namespace vlq {

BitVec::BitVec(size_t bits)
    : bits_(bits), words_((bits + 63) / 64, 0)
{
}

void
BitVec::resize(size_t bits)
{
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
    maskTail();
}

bool
BitVec::get(size_t i) const
{
    VLQ_ASSERT(i < bits_, "BitVec::get out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
}

void
BitVec::set(size_t i, bool v)
{
    VLQ_ASSERT(i < bits_, "BitVec::set out of range");
    uint64_t mask = uint64_t{1} << (i & 63);
    if (v)
        words_[i >> 6] |= mask;
    else
        words_[i >> 6] &= ~mask;
}

void
BitVec::flip(size_t i)
{
    VLQ_ASSERT(i < bits_, "BitVec::flip out of range");
    words_[i >> 6] ^= uint64_t{1} << (i & 63);
}

void
BitVec::clear()
{
    for (auto& w : words_)
        w = 0;
}

BitVec&
BitVec::operator^=(const BitVec& other)
{
    VLQ_ASSERT(bits_ == other.bits_, "BitVec xor size mismatch");
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

BitVec&
BitVec::operator&=(const BitVec& other)
{
    VLQ_ASSERT(bits_ == other.bits_, "BitVec and size mismatch");
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

bool
BitVec::operator==(const BitVec& other) const
{
    return bits_ == other.bits_ && words_ == other.words_;
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words_)
        total += static_cast<size_t>(std::popcount(w));
    return total;
}

bool
BitVec::none() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

std::vector<uint32_t>
BitVec::onesIndices() const
{
    std::vector<uint32_t> out;
    for (size_t wi = 0; wi < words_.size(); ++wi) {
        uint64_t w = words_[wi];
        while (w) {
            unsigned bit = static_cast<unsigned>(std::countr_zero(w));
            out.push_back(static_cast<uint32_t>(wi * 64 + bit));
            w &= w - 1;
        }
    }
    return out;
}

bool
BitVec::andParity(const BitVec& other) const
{
    VLQ_ASSERT(bits_ == other.bits_, "BitVec andParity size mismatch");
    uint64_t acc = 0;
    for (size_t i = 0; i < words_.size(); ++i)
        acc ^= words_[i] & other.words_[i];
    return std::popcount(acc) % 2 != 0;
}

void
BitVec::maskTail()
{
    size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty())
        words_.back() &= (uint64_t{1} << tail) - 1;
}

} // namespace vlq
