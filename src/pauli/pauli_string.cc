#include "pauli/pauli_string.h"

#include "util/logging.h"

namespace vlq {

PauliString::PauliString(size_t n)
    : xs_(n), zs_(n)
{
}

PauliString
PauliString::fromString(const std::string& s)
{
    PauliString out(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        out.set(i, pauliFromName(s[i]));
    return out;
}

Pauli
PauliString::get(size_t i) const
{
    return makePauli(xs_.get(i), zs_.get(i));
}

void
PauliString::set(size_t i, Pauli p)
{
    xs_.set(i, pauliX(p));
    zs_.set(i, pauliZ(p));
}

PauliString&
PauliString::operator*=(const PauliString& other)
{
    VLQ_ASSERT(size() == other.size(), "PauliString size mismatch");
    xs_ ^= other.xs_;
    zs_ ^= other.zs_;
    return *this;
}

bool
PauliString::isIdentity() const
{
    return xs_.none() && zs_.none();
}

size_t
PauliString::weight() const
{
    size_t w = 0;
    for (size_t i = 0; i < size(); ++i)
        if (get(i) != Pauli::I)
            ++w;
    return w;
}

bool
PauliString::commutesWith(const PauliString& other) const
{
    VLQ_ASSERT(size() == other.size(), "PauliString size mismatch");
    // Symplectic inner product: parity of (x1 & z2) xor (z1 & x2).
    bool a = xs_.andParity(other.zs_);
    bool b = zs_.andParity(other.xs_);
    return a == b;
}

bool
PauliString::operator==(const PauliString& other) const
{
    return xs_ == other.xs_ && zs_ == other.zs_;
}

std::string
PauliString::str() const
{
    std::string out;
    out.reserve(size());
    for (size_t i = 0; i < size(); ++i)
        out += pauliName(get(i));
    return out;
}

} // namespace vlq
