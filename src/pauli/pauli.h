#ifndef VLQ_PAULI_PAULI_H
#define VLQ_PAULI_PAULI_H

#include <cstdint>
#include <string>

namespace vlq {

/**
 * Single-qubit Pauli operator. Encoded in two bits as (x, z):
 * I = (0,0), X = (1,0), Z = (0,1), Y = (1,1).
 *
 * The (x, z) encoding makes multiplication an XOR and lets Pauli strings
 * pack into two bit vectors; the surface code corrects X and Z parts
 * independently, so this split mirrors the decoding structure.
 */
enum class Pauli : uint8_t { I = 0, X = 1, Z = 2, Y = 3 };

/** X component of p (true for X and Y). */
inline bool pauliX(Pauli p) { return static_cast<uint8_t>(p) & 1; }

/** Z component of p (true for Z and Y). */
inline bool pauliZ(Pauli p) { return static_cast<uint8_t>(p) & 2; }

/** Build a Pauli from its (x, z) components. */
Pauli makePauli(bool x, bool z);

/** Product of two Paulis, ignoring phase (group is abelian mod phase). */
Pauli pauliProduct(Pauli a, Pauli b);

/**
 * Phase exponent of the product a*b as a power of i in {0,1,2,3},
 * i.e. a*b = i^k (a xor b). Identity pairs give k = 0.
 */
int pauliProductPhase(Pauli a, Pauli b);

/** True if a and b commute (always true if either is I or a == b). */
bool pauliCommutes(Pauli a, Pauli b);

/** One-letter name: "I", "X", "Y" or "Z". */
std::string pauliName(Pauli p);

/** Parse a one-letter name; anything unrecognized is an error. */
Pauli pauliFromName(char c);

} // namespace vlq

#endif // VLQ_PAULI_PAULI_H
