#include "pauli/pauli.h"

#include "util/logging.h"

namespace vlq {

Pauli
makePauli(bool x, bool z)
{
    return static_cast<Pauli>((x ? 1 : 0) | (z ? 2 : 0));
}

Pauli
pauliProduct(Pauli a, Pauli b)
{
    return static_cast<Pauli>(
        static_cast<uint8_t>(a) ^ static_cast<uint8_t>(b));
}

int
pauliProductPhase(Pauli a, Pauli b)
{
    // i^k phases of single-qubit Pauli products, from the algebra
    // XZ = -iY, ZX = iY, XY = iZ, ... Encoded as a lookup keyed by
    // (a, b) with rows/cols ordered I, X, Z, Y.
    static const int phase[4][4] = {
        // b:  I   X   Z   Y        a:
        {0, 0, 0, 0},           // I
        {0, 0, 3, 1},           // X  (XZ = -iY -> 3, XY = iZ -> 1)
        {0, 1, 0, 3},           // Z  (ZX = iY -> 1, ZY = -iX -> 3)
        {0, 3, 1, 0},           // Y  (YX = -iZ -> 3, YZ = iX -> 1)
    };
    return phase[static_cast<int>(a)][static_cast<int>(b)];
}

bool
pauliCommutes(Pauli a, Pauli b)
{
    // Symplectic form: anticommute iff x_a z_b + z_a x_b is odd.
    bool anti = (pauliX(a) && pauliZ(b)) != (pauliZ(a) && pauliX(b));
    return !anti;
}

std::string
pauliName(Pauli p)
{
    switch (p) {
      case Pauli::I: return "I";
      case Pauli::X: return "X";
      case Pauli::Z: return "Z";
      case Pauli::Y: return "Y";
    }
    VLQ_PANIC("invalid Pauli");
}

Pauli
pauliFromName(char c)
{
    switch (c) {
      case 'I': case 'i': return Pauli::I;
      case 'X': case 'x': return Pauli::X;
      case 'Z': case 'z': return Pauli::Z;
      case 'Y': case 'y': return Pauli::Y;
      default: VLQ_FATAL("unrecognized Pauli letter");
    }
}

} // namespace vlq
