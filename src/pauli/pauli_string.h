#ifndef VLQ_PAULI_PAULI_STRING_H
#define VLQ_PAULI_PAULI_STRING_H

#include <cstdint>
#include <string>

#include "pauli/bitvec.h"
#include "pauli/pauli.h"

namespace vlq {

/**
 * An n-qubit Pauli operator stored as two bit vectors (X part, Z part),
 * phase ignored. This is the workhorse representation for error frames,
 * stabilizers and logical operators.
 */
class PauliString
{
  public:
    PauliString() = default;

    /** Identity on n qubits. */
    explicit PauliString(size_t n);

    /**
     * Parse from letters, e.g. "XIZY". String length fixes the qubit
     * count.
     */
    static PauliString fromString(const std::string& s);

    /** Number of qubits. */
    size_t size() const { return xs_.size(); }

    /** Pauli acting on qubit i. */
    Pauli get(size_t i) const;

    /** Set the Pauli acting on qubit i. */
    void set(size_t i, Pauli p);

    /** Multiply (XOR) another string into this one; phase dropped. */
    PauliString& operator*=(const PauliString& other);

    /** True when every site is I. */
    bool isIdentity() const;

    /** Number of non-identity sites. */
    size_t weight() const;

    /** True if this commutes with other (symplectic inner product = 0). */
    bool commutesWith(const PauliString& other) const;

    bool operator==(const PauliString& other) const;

    /** Render as letters, e.g. "XIZY". */
    std::string str() const;

    /** Direct access to the X/Z component bit vectors. */
    const BitVec& xBits() const { return xs_; }
    const BitVec& zBits() const { return zs_; }
    BitVec& xBits() { return xs_; }
    BitVec& zBits() { return zs_; }

  private:
    BitVec xs_;
    BitVec zs_;
};

} // namespace vlq

#endif // VLQ_PAULI_PAULI_STRING_H
