#ifndef VLQ_PAULI_BITVEC_H
#define VLQ_PAULI_BITVEC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vlq {

/**
 * Dynamic bit vector with the word-level operations the decoders and
 * simulators need: XOR accumulation, popcount, parity, and iteration
 * over set bits. std::vector<bool> lacks word access; std::bitset is
 * fixed-size -- so we roll our own, packed into 64-bit words.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Create an all-zero vector of the given bit length. */
    explicit BitVec(size_t bits);

    /** Number of addressable bits. */
    size_t size() const { return bits_; }

    /** Grow (or shrink) to a new size; new bits are zero. */
    void resize(size_t bits);

    /** Read bit i. */
    bool get(size_t i) const;

    /** Set bit i to v. */
    void set(size_t i, bool v);

    /** Toggle bit i. */
    void flip(size_t i);

    /** Zero all bits. */
    void clear();

    /** XOR another vector of the same size into this one. */
    BitVec& operator^=(const BitVec& other);

    /** AND another vector of the same size into this one. */
    BitVec& operator&=(const BitVec& other);

    /** Equality compares sizes and contents. */
    bool operator==(const BitVec& other) const;

    /** Number of set bits. */
    size_t popcount() const;

    /** Parity (popcount mod 2). */
    bool parity() const { return popcount() % 2 != 0; }

    /** True if no bit is set. */
    bool none() const;

    /** Indices of all set bits, ascending. */
    std::vector<uint32_t> onesIndices() const;

    /** Parity of this AND other (symplectic-style inner product term). */
    bool andParity(const BitVec& other) const;

    /** Raw word access for tests and fast paths. */
    const std::vector<uint64_t>& words() const { return words_; }

    /**
     * Mutable raw word access for word-parallel fast paths (the batched
     * sampler writes transposed shot words directly). Callers must not
     * set bits past size(); maskTail() is not re-applied.
     */
    uint64_t* wordData() { return words_.data(); }
    const uint64_t* wordData() const { return words_.data(); }

    /** Number of backing 64-bit words. */
    size_t numWords() const { return words_.size(); }

  private:
    size_t bits_ = 0;
    std::vector<uint64_t> words_;

    void maskTail();
};

} // namespace vlq

#endif // VLQ_PAULI_BITVEC_H
