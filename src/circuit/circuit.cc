#include "circuit/circuit.h"

#include <sstream>

#include "util/logging.h"

namespace vlq {

bool
opIsNoise(OpCode code)
{
    switch (code) {
      case OpCode::DEPOLARIZE1:
      case OpCode::DEPOLARIZE2:
      case OpCode::X_ERROR:
      case OpCode::Y_ERROR:
      case OpCode::Z_ERROR:
      case OpCode::PAULI_CHANNEL_1:
      case OpCode::HERALDED_ERASE:
        return true;
      default:
        return false;
    }
}

bool
opIsTwoQubit(OpCode code)
{
    switch (code) {
      case OpCode::CNOT:
      case OpCode::SWAP:
      case OpCode::DEPOLARIZE2:
        return true;
      default:
        return false;
    }
}

const char*
opName(OpCode code)
{
    switch (code) {
      case OpCode::H: return "H";
      case OpCode::S: return "S";
      case OpCode::X: return "X";
      case OpCode::Y: return "Y";
      case OpCode::Z: return "Z";
      case OpCode::CNOT: return "CNOT";
      case OpCode::SWAP: return "SWAP";
      case OpCode::RESET: return "RESET";
      case OpCode::MEASURE_Z: return "MEASURE_Z";
      case OpCode::DEPOLARIZE1: return "DEPOLARIZE1";
      case OpCode::DEPOLARIZE2: return "DEPOLARIZE2";
      case OpCode::X_ERROR: return "X_ERROR";
      case OpCode::Y_ERROR: return "Y_ERROR";
      case OpCode::Z_ERROR: return "Z_ERROR";
      case OpCode::PAULI_CHANNEL_1: return "PAULI_CHANNEL_1";
      case OpCode::HERALDED_ERASE: return "HERALDED_ERASE";
    }
    VLQ_PANIC("invalid OpCode");
}

Circuit::Circuit(uint32_t numQubits)
    : numQubits_(numQubits)
{
}

void
Circuit::checkQubit(uint32_t q) const
{
    VLQ_ASSERT(q < numQubits_, "qubit index out of range");
}

void
Circuit::append1(OpCode code, uint32_t q, double p)
{
    checkQubit(q);
    ops_.push_back(Operation{code, q, 0, p, -1});
}

void
Circuit::append2(OpCode code, uint32_t a, uint32_t b, double p)
{
    checkQubit(a);
    checkQubit(b);
    VLQ_ASSERT(a != b, "two-qubit op on identical qubits");
    ops_.push_back(Operation{code, a, b, p, -1});
}

void Circuit::h(uint32_t q) { append1(OpCode::H, q); }
void Circuit::s(uint32_t q) { append1(OpCode::S, q); }
void Circuit::x(uint32_t q) { append1(OpCode::X, q); }
void Circuit::y(uint32_t q) { append1(OpCode::Y, q); }
void Circuit::z(uint32_t q) { append1(OpCode::Z, q); }

void
Circuit::cnot(uint32_t control, uint32_t target)
{
    append2(OpCode::CNOT, control, target);
}

void
Circuit::swapGate(uint32_t a, uint32_t b)
{
    append2(OpCode::SWAP, a, b);
}

void
Circuit::reset(uint32_t q)
{
    append1(OpCode::RESET, q);
}

uint32_t
Circuit::measureZ(uint32_t q, double flipP)
{
    checkQubit(q);
    uint32_t index = numMeasurements_++;
    ops_.push_back(Operation{OpCode::MEASURE_Z, q, 0, flipP,
                             static_cast<int32_t>(index)});
    return index;
}

void
Circuit::depolarize1(uint32_t q, double p)
{
    if (p > 0.0)
        append1(OpCode::DEPOLARIZE1, q, p);
}

void
Circuit::depolarize2(uint32_t a, uint32_t b, double p)
{
    if (p > 0.0)
        append2(OpCode::DEPOLARIZE2, a, b, p);
}

void
Circuit::xError(uint32_t q, double p)
{
    if (p > 0.0)
        append1(OpCode::X_ERROR, q, p);
}

void
Circuit::yError(uint32_t q, double p)
{
    if (p > 0.0)
        append1(OpCode::Y_ERROR, q, p);
}

void
Circuit::zError(uint32_t q, double p)
{
    if (p > 0.0)
        append1(OpCode::Z_ERROR, q, p);
}

void
Circuit::pauliChannel1(uint32_t q, double px, double py, double pz)
{
    if (px < 0.0 || py < 0.0 || pz < 0.0)
        VLQ_FATAL("pauliChannel1: negative probability");
    if (px + py + pz > 1.0)
        VLQ_FATAL("pauliChannel1: probabilities exceed 1");
    if (px + py + pz <= 0.0)
        return;
    checkQubit(q);
    Operation op{OpCode::PAULI_CHANNEL_1, q, 0, px, -1};
    op.py = py;
    op.pz = pz;
    ops_.push_back(op);
}

void
Circuit::heraldedErase(uint32_t q, double p)
{
    if (p > 0.0)
        append1(OpCode::HERALDED_ERASE, q, p);
}

uint32_t
Circuit::addDetector(Detector detector)
{
    for (uint32_t m : detector.measurements)
        VLQ_ASSERT(m < numMeasurements_, "detector references future record");
    detectors_.push_back(std::move(detector));
    return static_cast<uint32_t>(detectors_.size() - 1);
}

uint32_t
Circuit::addObservable()
{
    observables_.push_back(Observable{});
    return static_cast<uint32_t>(observables_.size() - 1);
}

void
Circuit::observableInclude(uint32_t observable, uint32_t measurement)
{
    VLQ_ASSERT(observable < observables_.size(), "bad observable index");
    VLQ_ASSERT(measurement < numMeasurements_,
               "observable references future record");
    observables_[observable].measurements.push_back(measurement);
}

size_t
Circuit::countOps(OpCode code) const
{
    size_t n = 0;
    for (const auto& op : ops_)
        if (op.code == code)
            ++n;
    return n;
}

double
Circuit::totalNoiseMass() const
{
    double mass = 0.0;
    for (const auto& op : ops_) {
        if (opIsNoise(op.code))
            mass += op.p + op.py + op.pz;
        else if (op.code == OpCode::MEASURE_Z)
            mass += op.p;
    }
    return mass;
}

std::string
Circuit::str() const
{
    std::ostringstream ss;
    for (const auto& op : ops_) {
        ss << opName(op.code) << " " << op.q0;
        if (opIsTwoQubit(op.code))
            ss << " " << op.q1;
        if (op.p != 0.0)
            ss << " p=" << op.p;
        if (op.code == OpCode::PAULI_CHANNEL_1)
            ss << " py=" << op.py << " pz=" << op.pz;
        if (op.meas >= 0)
            ss << " m" << op.meas;
        ss << "\n";
    }
    return ss.str();
}

} // namespace vlq
