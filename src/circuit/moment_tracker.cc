#include "circuit/moment_tracker.h"

#include "util/logging.h"

namespace vlq {

MomentTracker::MomentTracker(uint32_t numWires)
    : live_(numWires, false),
      touched_(numWires, false),
      idleTotal_(numWires, 0.0)
{
}

void
MomentTracker::setLive(uint32_t wire, bool live)
{
    VLQ_ASSERT(wire < live_.size(), "MomentTracker wire out of range");
    live_[wire] = live;
}

uint32_t
MomentTracker::liveCount() const
{
    uint32_t n = 0;
    for (bool b : live_)
        if (b)
            ++n;
    return n;
}

void
MomentTracker::beginMoment(double durationNs)
{
    VLQ_ASSERT(!inMoment_, "nested moment");
    VLQ_ASSERT(durationNs >= 0.0, "negative moment duration");
    inMoment_ = true;
    momentDuration_ = durationNs;
    for (size_t i = 0; i < touched_.size(); ++i)
        touched_[i] = false;
}

void
MomentTracker::touch(uint32_t wire)
{
    VLQ_ASSERT(inMoment_, "touch outside moment");
    VLQ_ASSERT(wire < touched_.size(), "MomentTracker wire out of range");
    touched_[wire] = true;
}

void
MomentTracker::endMoment(const IdleEmitter& emit)
{
    VLQ_ASSERT(inMoment_, "endMoment without beginMoment");
    inMoment_ = false;
    now_ += momentDuration_;
    if (momentDuration_ <= 0.0)
        return;
    for (uint32_t w = 0; w < live_.size(); ++w) {
        if (live_[w] && !touched_[w]) {
            idleTotal_[w] += momentDuration_;
            if (emit)
                emit(w, momentDuration_);
        }
    }
}

void
MomentTracker::wait(double durationNs, const IdleEmitter& emit)
{
    VLQ_ASSERT(!inMoment_, "wait inside moment");
    if (durationNs <= 0.0)
        return;
    now_ += durationNs;
    for (uint32_t w = 0; w < live_.size(); ++w) {
        if (live_[w]) {
            idleTotal_[w] += durationNs;
            if (emit)
                emit(w, durationNs);
        }
    }
}

} // namespace vlq
