#ifndef VLQ_CIRCUIT_CIRCUIT_H
#define VLQ_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace vlq {

/**
 * Operation codes for the Clifford + noise circuit IR.
 *
 * The IR deliberately contains only what the VLQ evaluation needs:
 * Clifford gates (H, S, X, Y, Z, CNOT, SWAP), reset and Z-basis
 * measurement, and explicit Pauli noise channels. Loads/stores between a
 * transmon and a cavity mode are represented as SWAP plus their own noise
 * channels, so every architecture variant lowers to the same IR.
 */
enum class OpCode : uint8_t {
    H,
    S,
    X,
    Y,
    Z,
    CNOT,
    SWAP,
    RESET,
    MEASURE_Z,
    /** 1-qubit depolarizing: X, Y, Z each with probability p/3. */
    DEPOLARIZE1,
    /** 2-qubit depolarizing: each of the 15 non-identity Paulis, p/15. */
    DEPOLARIZE2,
    X_ERROR,
    Y_ERROR,
    Z_ERROR,
    /**
     * 1-qubit Pauli channel with independent X/Y/Z weights: X with
     * probability `p`, Y with `py`, Z with `pz` (mutually exclusive).
     */
    PAULI_CHANNEL_1,
    /**
     * Heralded erasure: with probability `p` the qubit is erased — it is
     * replaced by the maximally mixed state (uniform I/X/Y/Z, each p/4)
     * and a classical herald flag is raised for the decoder.
     */
    HERALDED_ERASE,
};

/** True for noise channels (including measurement flips handled apart). */
bool opIsNoise(OpCode code);

/** True for operations acting on two qubits. */
bool opIsTwoQubit(OpCode code);

/** Stable mnemonic, e.g. "CNOT". */
const char* opName(OpCode code);

/**
 * One instruction. For MEASURE_Z, `p` is the classical flip probability
 * of the recorded outcome and `meas` is the measurement record index.
 */
struct Operation
{
    OpCode code;
    uint32_t q0 = 0;
    uint32_t q1 = 0;
    double p = 0.0;
    int32_t meas = -1;
    /** Y/Z weights; meaningful only for PAULI_CHANNEL_1. */
    double py = 0.0;
    double pz = 0.0;
};

/** Which parity-check family a detector belongs to. */
enum class CheckBasis : uint8_t { Z = 0, X = 1 };

/**
 * A detector is a parity of measurement records that is deterministic in
 * the absence of noise; a flip signals a nearby fault. Coordinates are
 * diagnostic (plaquette position and round).
 */
struct Detector
{
    std::vector<uint32_t> measurements;
    CheckBasis basis = CheckBasis::Z;
    float x = 0.0f;
    float y = 0.0f;
    float t = 0.0f;
};

/**
 * A logical observable: parity of measurement records whose flip is a
 * logical error. The decoder's job is to predict these flips.
 */
struct Observable
{
    std::vector<uint32_t> measurements;
};

/**
 * A quantum circuit with noise annotations, measurement records,
 * detectors and logical observables.
 *
 * Append-only builder API; the detector error model and all simulators
 * consume the finished op list.
 */
class Circuit
{
  public:
    /** Create an empty circuit on a fixed number of qubits (wires). */
    explicit Circuit(uint32_t numQubits);

    uint32_t numQubits() const { return numQubits_; }
    uint32_t numMeasurements() const { return numMeasurements_; }

    /** @{ Clifford gate appends. */
    void h(uint32_t q);
    void s(uint32_t q);
    void x(uint32_t q);
    void y(uint32_t q);
    void z(uint32_t q);
    void cnot(uint32_t control, uint32_t target);
    void swapGate(uint32_t a, uint32_t b);
    void reset(uint32_t q);
    /** @} */

    /**
     * Z-basis measurement with classical flip probability flipP.
     * @return the measurement record index.
     */
    uint32_t measureZ(uint32_t q, double flipP = 0.0);

    /** @{ Noise appends; silently skipped when p <= 0. */
    void depolarize1(uint32_t q, double p);
    void depolarize2(uint32_t a, uint32_t b, double p);
    void xError(uint32_t q, double p);
    void yError(uint32_t q, double p);
    void zError(uint32_t q, double p);
    /** Exclusive X/Y/Z channel; skipped when px + py + pz <= 0. */
    void pauliChannel1(uint32_t q, double px, double py, double pz);
    /** Heralded erasure with probability p; skipped when p <= 0. */
    void heraldedErase(uint32_t q, double p);
    /** @} */

    /** Register a detector; returns its index. */
    uint32_t addDetector(Detector detector);

    /** Register a new (empty) observable; returns its index. */
    uint32_t addObservable();

    /** Add a measurement record to an existing observable. */
    void observableInclude(uint32_t observable, uint32_t measurement);

    const std::vector<Operation>& ops() const { return ops_; }
    const std::vector<Detector>& detectors() const { return detectors_; }
    const std::vector<Observable>& observables() const
    {
        return observables_;
    }

    /** Count operations with the given opcode. */
    size_t countOps(OpCode code) const;

    /** Total probability-weighted noise channels (diagnostics). */
    double totalNoiseMass() const;

    /** Human-readable dump, one op per line. */
    std::string str() const;

  private:
    uint32_t numQubits_;
    uint32_t numMeasurements_ = 0;
    std::vector<Operation> ops_;
    std::vector<Detector> detectors_;
    std::vector<Observable> observables_;

    void checkQubit(uint32_t q) const;
    void append1(OpCode code, uint32_t q, double p = 0.0);
    void append2(OpCode code, uint32_t a, uint32_t b, double p = 0.0);
};

} // namespace vlq

#endif // VLQ_CIRCUIT_CIRCUIT_H
