#ifndef VLQ_CIRCUIT_MOMENT_TRACKER_H
#define VLQ_CIRCUIT_MOMENT_TRACKER_H

#include <cstdint>
#include <functional>
#include <vector>

namespace vlq {

/**
 * Lock-step schedule bookkeeping for circuit generators.
 *
 * Syndrome-extraction circuits execute in "moments": all gates in a
 * moment run in parallel and the moment lasts as long as its slowest
 * gate. Any *live* wire (a wire currently storing information that
 * matters -- data wherever it is held, or an ancilla between its reset
 * and measurement) that is not touched during a moment accumulates idle
 * time and must receive a decoherence channel.
 *
 * The tracker is noise-model agnostic: at the end of each moment it
 * reports (wire, idleDuration) pairs to a caller-supplied emitter, which
 * converts durations into error channels using the hardware parameters.
 */
class MomentTracker
{
  public:
    /** Called for every live wire that idled: (wire, idleNanoseconds). */
    using IdleEmitter = std::function<void(uint32_t, double)>;

    explicit MomentTracker(uint32_t numWires);

    /** Mark a wire as carrying live information (or not). */
    void setLive(uint32_t wire, bool live);

    bool isLive(uint32_t wire) const { return live_[wire]; }

    /** Number of currently live wires. */
    uint32_t liveCount() const;

    /** Open a moment lasting durationNs. Moments may not nest. */
    void beginMoment(double durationNs);

    /** Mark a wire busy during the open moment. */
    void touch(uint32_t wire);

    /**
     * Close the moment: every live, untouched wire idles for the whole
     * moment and is reported to `emit`.
     */
    void endMoment(const IdleEmitter& emit);

    /**
     * A pure waiting period: every live wire idles for durationNs
     * (used for the cavity paging gap between correction slots).
     */
    void wait(double durationNs, const IdleEmitter& emit);

    /** Wall-clock time accumulated so far (ns). */
    double now() const { return now_; }

    /** Total idle time accumulated per wire (ns), for diagnostics. */
    const std::vector<double>& idleTotals() const { return idleTotal_; }

  private:
    std::vector<bool> live_;
    std::vector<bool> touched_;
    std::vector<double> idleTotal_;
    double now_ = 0.0;
    double momentDuration_ = 0.0;
    bool inMoment_ = false;
};

} // namespace vlq

#endif // VLQ_CIRCUIT_MOMENT_TRACKER_H
