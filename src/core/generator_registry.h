#ifndef VLQ_CORE_GENERATOR_REGISTRY_H
#define VLQ_CORE_GENERATOR_REGISTRY_H

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arch/device.h"
#include "core/generator_common.h"

namespace vlq {

/** Factory signature every registered embedding backend provides. */
using GeneratorFn = GeneratedCircuit (*)(const GeneratorConfig& config);

/** Per-patch hardware cost of a dx x dz patch under a backend. */
using PatchCostFn = PatchCost (*)(int dx, int dz);

/**
 * Resolve requested patch dimensions (distance plus the optional
 * distanceX/distanceZ overrides, 0 = unset) to the {dx, dz} the
 * backend actually builds. This is the single source of truth for
 * backend shape policy: the generator, patchCost-based device
 * accounting, and reports all resolve through it, so a backend with a
 * non-square default (compact-rect) cannot have its circuits and its
 * hardware costs quietly describe different patches.
 */
using PatchShapeFn = std::pair<int, int> (*)(int distance, int distanceX,
                                             int distanceZ);

/**
 * One embedding backend of the circuit-generator registry: how to name
 * it, how to generate a memory circuit under it, and what its patches
 * cost. The Monte-Carlo driver, the benches, and the examples all go
 * through this table (via makeGenerator / generateMemoryCircuit /
 * patchCost), so a new hardware layout -- another cavity depth
 * trade-off, a biased-noise patch shape, a non-square grid -- is one
 * registration, with no scheduler or call-site churn.
 */
struct GeneratorBackend
{
    EmbeddingKind kind;

    /** Canonical lowercase name ("compact-rect"). */
    const char* name;

    /** Space-separated alternative spellings ("compactrect rect"). */
    const char* aliases;

    /** Display name used in reports and figure CSVs ("Compact"). */
    const char* display;

    /**
     * True when the backend pages patches through cavities, i.e. the
     * cavityDepth / ExtractionSchedule knobs are meaningful. False for
     * the memoryless 2D baseline.
     */
    bool virtualized;

    /** Generate the memory-experiment circuit. */
    GeneratorFn generate;

    /** Price a dx x dz patch. */
    PatchCostFn cost;

    /** Resolve requested dimensions to the patch actually built. */
    PatchShapeFn shape;
};

/**
 * The default shape policy: explicit overrides win, unset axes fall
 * back to the square `distance` patch. Reusable by registrations.
 */
std::pair<int, int> squarePatchShape(int distance, int distanceX,
                                     int distanceZ);

/**
 * The generator registry: the paper's three embeddings, the
 * rectangular Compact variant, plus anything added via
 * registerGenerator().
 */
const std::vector<GeneratorBackend>& generatorRegistry();

/**
 * Register (or, for an existing kind, replace) a backend. Not
 * thread-safe; call during startup before generating circuits.
 */
void registerGenerator(const GeneratorBackend& registration);

/** Look up a registered backend; panics when `kind` is unregistered. */
const GeneratorBackend& generatorBackend(EmbeddingKind kind);

/**
 * The compact-rect shape policy: explicit overrides win; with neither
 * set, narrow to 3 columns x `distance` rows (minimum memory-X
 * protection, full memory-Z protection -- the biased-noise default).
 * This 3-arg form is the registry shape hook (resource estimation has
 * no noise model in hand); the generator itself uses the bias-aware
 * overload below.
 */
std::pair<int, int> compactRectPatchShape(int distance, int distanceX,
                                          int distanceZ);

/**
 * Bias-aware compact-rect default: explicit overrides still win, and
 * a uniform bias (disabled source) keeps the historical {3, distance}
 * default bit-identically. With bias enabled, the default column
 * count is derived from the Pauli mass ratios: equal logical
 * suppression under the ~(p/pth)^(d/2) scaling needs side lengths
 * proportional to the log error masses, so dx ~= distance * ln(mZ) /
 * ln(mX+mY), rounded to odd and clamped to [3, distance]. Strongly
 * Z-biased noise narrows toward 3 columns; X-leaning noise keeps the
 * full square (no protection can be shed).
 */
std::pair<int, int> compactRectPatchShape(int distance, int distanceX,
                                          int distanceZ,
                                          const BiasedPauliSource& bias);

/** The registered generator function for `kind` (never null). */
GeneratorFn makeGenerator(EmbeddingKind kind);

/**
 * Look up by case-insensitive name or alias.
 * @return nullptr when the name matches no registered backend.
 */
GeneratorFn makeGenerator(std::string_view name);

/** Canonical registry name of a kind ("baseline", "compact-rect"). */
const char* embeddingKindName(EmbeddingKind kind);

/** Parse a name or alias back to a kind. */
std::optional<EmbeddingKind> parseEmbeddingKind(std::string_view name);

/** Comma-separated canonical names, for usage/error messages. */
std::string embeddingKindList();

/**
 * Read the embedding selection from the environment (variable
 * VLQ_EMBEDDING unless overridden). Returns `fallback` when the
 * variable is unset; a set-but-unknown value (e.g. a typo'd
 * VLQ_EMBEDDING=compct) is a hard error that lists the valid keys --
 * silently falling back would turn a typo into a garbage run.
 */
EmbeddingKind embeddingKindFromEnv(EmbeddingKind fallback,
                                   const char* variable = "VLQ_EMBEDDING");

} // namespace vlq

#endif // VLQ_CORE_GENERATOR_REGISTRY_H
