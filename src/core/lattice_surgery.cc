#include "core/lattice_surgery.h"

namespace vlq {

std::vector<SurgeryStep>
latticeSurgeryCnotSequence()
{
    // Fig. 4: |A> = |0> ancilla; merge A,T in the X basis; split;
    // merge A,C in the Z basis; split; measure A in the X basis.
    // Merges and splits each take one timestep (d cycles); the final
    // split+measure takes two.
    return {
        {"create ancilla patch A = |0>", 1},
        {"merge A and T (measure X parity A+T)", 1},
        {"split A / T", 1},
        {"merge A and C (measure Z parity A+C)", 1},
        {"split A / C", 1},
        {"measure A in the X basis (fixups from outcomes)", 1},
    };
}

} // namespace vlq
