#ifndef VLQ_CORE_EMBEDDING_H
#define VLQ_CORE_EMBEDDING_H

#include <array>
#include <cstdint>
#include <vector>

#include "surface/layout.h"

namespace vlq {

/**
 * Compact-embedding merge map (paper Fig. 7): every Z ancilla co-locates
 * with its upper-right (NE) data transmon and every X ancilla with its
 * lower-left (SW) data transmon; the opposite pairings keep 4-way grid
 * connectivity. Boundary checks whose merge corner falls outside the
 * patch keep a dedicated transmon: (dx-1)/2 + (dz-1)/2 of them on a
 * dx x dz patch, i.e. d-1 on the paper's square patches.
 */
struct CompactMerge
{
    /** Per plaquette: merged data index, or -1 for an unmerged check. */
    std::vector<int32_t> mergedData;

    /** Per plaquette: dense index among unmerged checks, or -1. */
    std::vector<int32_t> unmergedIndex;

    /** Number of unmerged (dedicated-transmon) checks. */
    int numUnmerged = 0;

    /** Per data index: plaquette merged onto this transmon, or -1. */
    std::vector<int32_t> checkAtData;

    static CompactMerge build(const SurfaceLayout& layout);
};

/**
 * The Compact syndrome-extraction schedule (paper Fig. 10).
 *
 * Plaquettes are split into four groups: A/B partition the X checks and
 * C/D the Z checks along alternating grid columns. Each group starts its
 * four-CNOT window at a fixed slot of the repeating 8-slot cycle
 * (A=0, C=2, B=4, D=6 in the paper's A0D2, A1D3, A2C0, ... sequence),
 * and each check visits its corners in a fixed order. A valid schedule
 * must satisfy three families of constraints:
 *
 *  1. no data qubit is touched by two checks in the same slot;
 *  2. no check needs a data qubit loaded into a transmon while that
 *     transmon is serving as another check's ancilla (merge conflicts);
 *  3. interleaved neighboring checks still measure the intended
 *     stabilizers (verified by a noiseless tableau run).
 *
 * solve() searches group parity axes, start-slot assignments and corner
 * orders for a schedule satisfying all three, preferring orders whose
 * ancilla "hook" errors lie perpendicular to the matching logical
 * direction.
 */
struct CompactSchedule
{
    /** Group ids. */
    enum Group : uint8_t { A = 0, B = 1, C = 2, D = 3 };

    /** Start slot (0..7) of each group's window in the 8-slot cycle. */
    std::array<int, 4> startSlot{0, 4, 2, 6};

    /** Corner visited at each step by X checks (values are
     *  PlaquetteCorner). */
    std::array<int, 4> orderX{NW, NE, SW, SE};

    /** Corner visited at each step by Z checks. */
    std::array<int, 4> orderZ{NW, SW, NE, SE};

    /** Group X checks by column parity (true) or row parity (false). */
    bool xGroupByColumn = true;

    /** Group Z checks by column parity (true) or row parity (false). */
    bool zGroupByColumn = true;

    /** Group of a plaquette under this schedule. */
    Group groupOf(const Plaquette& p) const;

    /** Corner order used by a plaquette's basis. */
    const std::array<int, 4>& orderOf(CheckBasis basis) const
    {
        return basis == CheckBasis::X ? orderX : orderZ;
    }

    /**
     * Slot (within the 8-slot cycle, may exceed 7 for wrapped windows)
     * of a check's step-i CNOT: startSlot[group] + i.
     */
    int slotOfStep(const Plaquette& p, int step) const;

    /**
     * Find a valid schedule for the given layout. Results are
     * deterministic; the solver caches nothing itself (callers do).
     * Aborts if no valid schedule exists (which would indicate a broken
     * layout, not user error).
     */
    static CompactSchedule solve(const SurfaceLayout& layout);

    /**
     * Check constraint families 1 and 2 structurally.
     * @return true when conflict-free.
     */
    bool conflictFree(const SurfaceLayout& layout,
                      const CompactMerge& merge) const;

    /**
     * Check constraint family 3: noiseless quiescence of all
     * consecutive-round detectors under this schedule, for both
     * initialization bases, via a tableau simulation.
     */
    bool measuresStabilizers(const SurfaceLayout& layout) const;

    /**
     * Hook quality score: number of check types whose mid-window ancilla
     * errors spread onto data pairs perpendicular to the dangerous
     * logical direction (0..2, higher is better).
     */
    int hookScore() const;
};

} // namespace vlq

#endif // VLQ_CORE_EMBEDDING_H
